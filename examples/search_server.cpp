// A sharded mini search tier — scatter-gather serving with SLOs.
//
// search_engine.cpp demonstrates the single-threaded query path; this
// example is the deployment shape the paper motivates ("interactive
// search", latency budgets, heavy traffic): a ShardedEngine partitions
// the document-id universe into shards, each with its own planner
// engine, and every conjunctive query scatters across all shards with a
// per-query deadline.  Concurrent front-end threads drive a Bing-like
// query log through admission control, and the run reports a serving
// SLO table — p50/p95/p99 latency plus deadline-miss and rejection
// counts per thread count (docs/SERVING.md).
//
//   ./build/examples/search_server
//   ./build/examples/search_server 200000   # more queries
//   ./build/examples/search_server 20000 /tmp/index.fsisnap
//     # second run cold-starts from the per-shard snapshot images
//     # (docs/PERSISTENCE.md): the posting-list build is skipped and
//     # every shard is mmap'd zero-copy.  An unreadable or corrupt
//     # snapshot is reported with its typed SnapshotError and the
//     # server falls back to rebuilding (and re-saving) the index.
//
//   ./build/examples/search_server 20000 /tmp/index.fsisnap 16 5000
//     # 16 shards, 5000µs per-query deadline

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fsi.h"
#include "util/stats.h"
#include "util/timer.h"
#include "workload/corpus.h"

int main(int argc, char** argv) {
  using namespace fsi;

  const std::size_t num_queries =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  const std::string snapshot_path = argc > 2 ? argv[2] : "";
  const std::size_t num_shards =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 8;
  const std::chrono::microseconds deadline{
      argc > 4 ? std::strtol(argv[4], nullptr, 10) : 5000};

  SyntheticCorpus::Options co;
  co.num_docs = 1 << 17;
  co.vocabulary = 4000;
  SyntheticCorpus corpus(co);

  QueryWorkload::Options qo;
  qo.num_queries = num_queries;
  QueryWorkload workload(corpus, qo);

  // One ShardedSet per vocabulary term: the serving tier's "index".
  // Either cold-started from per-shard snapshot images or built from the
  // corpus postings.  ShardedEngine is immovable (it owns the scatter
  // pool), hence the prvalue-into-new constructions below.
  std::unique_ptr<LoadedShardedSnapshot> loaded;
  std::unique_ptr<ShardedEngine> built;
  bool need_rebuild = snapshot_path.empty();
  if (!snapshot_path.empty()) {
    Timer load;
    try {
      loaded.reset(new LoadedShardedSnapshot(
          ShardedEngine::LoadSnapshot(snapshot_path)));
      std::size_t mapped = 0, zero_copy = 0, total = 0;
      for (const SnapshotInfo& info : loaded->shard_infos) {
        mapped += info.mapped_bytes;
        zero_copy += info.sets_zero_copy;
        total += info.sets_total;
      }
      std::printf(
          "cold start from %s: %.1f ms (%zu shards, %zu sets, "
          "%zu bytes mapped, %zu/%zu sets zero-copy)\n",
          snapshot_path.c_str(), load.ElapsedMillis(),
          loaded->engine.num_shards(), loaded->sets.size(), mapped,
          zero_copy, total);
    } catch (const storage::SnapshotError& error) {
      // The old behaviour was a silent exit on an unreadable snapshot;
      // surface the typed error and rebuild instead.  A plain missing
      // file (kIo on the manifest) is the normal first run — quiet.
      if (error.code() != storage::SnapshotErrorCode::kIo) {
        std::fprintf(stderr,
                     "warning: snapshot %s unusable (%s); rebuilding\n",
                     snapshot_path.c_str(), error.what());
      }
      need_rebuild = true;
    }
  }
  if (loaded == nullptr) {
    std::printf("building sharded index (%zu shards, Planner per shard)...\n",
                num_shards);
    built.reset(new ShardedEngine(
        {.num_shards = num_shards,
         .universe_bound = static_cast<Elem>(corpus.num_docs())}));
    (void)need_rebuild;
  }
  ShardedEngine& engine = loaded ? loaded->engine : *built;

  std::vector<ShardedSet> sets;
  if (loaded) {
    sets = std::move(loaded->sets);
  } else {
    sets.reserve(corpus.num_terms());
    for (std::size_t t = 0; t < corpus.num_terms(); ++t) {
      sets.push_back(engine.Prepare(corpus.postings(t)));
    }
    if (!snapshot_path.empty()) {
      std::vector<const ShardedSet*> ptrs;
      ptrs.reserve(sets.size());
      for (const ShardedSet& set : sets) ptrs.push_back(&set);
      engine.SaveSnapshot(snapshot_path,
                          std::span<const ShardedSet* const>(ptrs));
      std::printf("saved snapshot: %s (next run cold-starts from it)\n",
                  snapshot_path.c_str());
    }
  }

  // The query log: term-id tuples resolved to sharded-set pointers.
  std::vector<ShardedEngine::ShardedQuery> log;
  log.reserve(workload.queries().size());
  for (const TermQuery& q : workload.queries()) {
    ShardedEngine::ShardedQuery query;
    query.reserve(q.size());
    for (std::size_t t : q) query.push_back(&sets[t]);
    log.push_back(std::move(query));
  }

  std::printf(
      "serving %zu conjunctive queries over %zu documents "
      "(%zu shards, %lldus deadline, %zu-slot admission gate)\n\n",
      log.size(), corpus.num_docs(), engine.num_shards(),
      static_cast<long long>(deadline.count()),
      engine.options().max_in_flight);
  std::printf("%9s %9s %11s %8s %8s %8s %8s %8s %8s\n", "frontends",
              "wall_ms", "queries/s", "p50_us", "p95_us", "p99_us", "ok",
              "partial", "rejected");

  const std::size_t hw = ThreadPool::DefaultConcurrency();
  std::vector<std::size_t> frontend_counts = {1, 2, 4};
  if (hw > 4) frontend_counts.push_back(hw);

  for (std::size_t frontends : frontend_counts) {
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> ok{0}, partial{0}, rejected{0};
    std::mutex merge_mutex;
    SampleStats latency;  // guarded by merge_mutex

    Timer wall;
    std::vector<std::thread> threads;
    threads.reserve(frontends);
    for (std::size_t f = 0; f < frontends; ++f) {
      threads.emplace_back([&] {
        std::vector<double> local;
        local.reserve(log.size());
        for (;;) {
          const std::size_t i =
              cursor.fetch_add(1, std::memory_order_relaxed);
          if (i >= log.size()) break;
          ServeResult result = engine.Serve(
              std::span<const ShardedSet* const>(log[i].data(),
                                                 log[i].size()),
              {.deadline = deadline, .count_only = true});
          switch (result.status) {
            case ServeStatus::kOk:
              ok.fetch_add(1, std::memory_order_relaxed);
              break;
            case ServeStatus::kRejected:
              rejected.fetch_add(1, std::memory_order_relaxed);
              break;
            default:  // kPartial / kExpired: deadline misses
              partial.fetch_add(1, std::memory_order_relaxed);
              break;
          }
          if (result.status != ServeStatus::kRejected) {
            local.push_back(result.wall_micros);
          }
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        for (double micros : local) latency.Add(micros);
      });
    }
    for (std::thread& thread : threads) thread.join();
    const double wall_ms = wall.ElapsedMillis();
    std::printf("%9zu %9.1f %11.0f %8.1f %8.1f %8.1f %8zu %8zu %8zu\n",
                frontends, wall_ms,
                wall_ms > 0 ? static_cast<double>(log.size()) /
                                  (wall_ms * 1e-3)
                            : 0.0,
                latency.Percentile(0.50), latency.Percentile(0.95),
                latency.Percentile(0.99), ok.load(), partial.load(),
                rejected.load());
  }

  const ServeCounters counters = engine.counters();
  std::printf(
      "\nserving counters: %llu admitted, %llu rejected, %llu deadline "
      "misses, %llu served\n",
      static_cast<unsigned long long>(counters.admitted),
      static_cast<unsigned long long>(counters.rejected),
      static_cast<unsigned long long>(counters.deadline_misses),
      static_cast<unsigned long long>(counters.served));
  std::printf(
      "scatter pool: %zu workers; every query fans out over %zu shards\n"
      "and gathers until its deadline — misses degrade to partial\n"
      "results instead of blocking (docs/SERVING.md).\n",
      engine.num_threads(), engine.num_shards());
  return 0;
}
