// A concurrent mini search tier — servicing a query log across threads.
//
// search_engine.cpp demonstrates the single-threaded query path; this
// example is the deployment shape the paper motivates ("interactive
// search", latency budgets, heavy traffic): one InvertedIndex whose
// prepared posting-list structures are shared, read-only, by a pool of
// workers, and a Bing-like query log executed as one concurrent batch
// per thread count.  Expect near-linear throughput scaling up to the
// physical core count while tail latency stays flat — the concurrency
// contract (const Engine + PreparedSets shareable; Query objects
// per-thread) made measurable.
//
//   ./build/examples/search_server
//   ./build/examples/search_server 200000   # more queries
//   ./build/examples/search_server 20000 /tmp/index.fsisnap
//     # second run cold-starts from the snapshot (docs/PERSISTENCE.md):
//     # the index build is skipped and postings are mmap'd zero-copy

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "fsi.h"
#include "index/inverted_index.h"
#include "util/timer.h"
#include "workload/corpus.h"

int main(int argc, char** argv) {
  using namespace fsi;

  const std::string snapshot_path = argc > 2 ? argv[2] : "";

  SyntheticCorpus::Options co;
  co.num_docs = 1 << 17;
  co.vocabulary = 4000;
  SyntheticCorpus corpus(co);

  QueryWorkload::Options qo;
  qo.num_queries = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  QueryWorkload workload(corpus, qo);

  std::unique_ptr<InvertedIndex> index;
  if (!snapshot_path.empty() && std::ifstream(snapshot_path).good()) {
    // Cold start: the whole build below is replaced by one mmap.
    Timer load;
    SnapshotInfo info;
    // new from the prvalue (not make_unique): InvertedIndex is immovable,
    // so the Open() result must construct the heap object directly.
    index.reset(new InvertedIndex(InvertedIndex::Open(snapshot_path, {}, &info)));
    std::printf(
        "cold start from %s: %.1f ms (%s, %zu bytes mapped, "
        "%zu/%zu sets zero-copy)\n",
        snapshot_path.c_str(), load.ElapsedMillis(), info.load_mode.c_str(),
        info.mapped_bytes, info.sets_zero_copy, info.sets_total);
  } else {
    std::printf("building corpus + index (Hybrid engine)...\n");
    // Invert the postings into per-document term lists and feed the index.
    index = std::make_unique<InvertedIndex>(Engine("Hybrid"));
    std::vector<std::vector<std::string>> docs(corpus.num_docs());
    for (std::size_t t = 0; t < corpus.num_terms(); ++t) {
      for (Elem d : corpus.postings(t)) {
        docs[d].push_back("t" + std::to_string(t));
      }
    }
    for (Elem d = 0; d < corpus.num_docs(); ++d) {
      if (!docs[d].empty()) index->AddDocument(d, docs[d]);
    }
    index->Finalize();
    if (!snapshot_path.empty()) {
      index->Save(snapshot_path);
      std::printf("saved snapshot: %s (next run cold-starts from it)\n",
                  snapshot_path.c_str());
    }
  }

  // The query log, as term strings — what a front-end would hand us.
  std::vector<std::vector<std::string>> log;
  log.reserve(workload.queries().size());
  for (const TermQuery& q : workload.queries()) {
    std::vector<std::string> terms;
    terms.reserve(q.size());
    for (std::size_t t : q) terms.push_back("t" + std::to_string(t));
    log.push_back(std::move(terms));
  }

  std::printf(
      "servicing %zu conjunctive queries over %zu documents\n\n",
      log.size(), index->num_documents());
  std::printf("%8s %10s %12s %10s %10s %10s %9s\n", "threads", "wall_ms",
              "queries/s", "p50_us", "p95_us", "max_us", "speedup");

  const std::size_t hw = ThreadPool::DefaultConcurrency();
  std::vector<std::size_t> thread_counts = {1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);

  double base_qps = 0.0;
  for (std::size_t threads : thread_counts) {
    BatchStats stats;
    std::vector<std::size_t> counts =
        index->BatchCount(log, {.num_threads = threads}, &stats);
    if (threads == 1) base_qps = stats.queries_per_second;
    std::size_t total = 0;
    for (std::size_t c : counts) total += c;
    std::printf("%8zu %10.1f %12.0f %10.1f %10.1f %10.1f %8.2fx\n", threads,
                stats.wall_ms, stats.queries_per_second, stats.p50_micros,
                stats.p95_micros, stats.max_micros,
                base_qps > 0 ? stats.queries_per_second / base_qps : 1.0);
    if (threads == thread_counts.front()) {
      std::printf("%8s   (total matches across the log: %zu)\n", "", total);
    }
  }
  std::printf(
      "\nhardware concurrency: %zu; every batch shares one Engine and one\n"
      "set of prepared posting-list structures — only Query objects and\n"
      "scratch buffers are per-thread.\n",
      hw);
  return 0;
}
