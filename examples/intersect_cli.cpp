// intersect_cli — command-line set intersection over files.
//
// A small operational tool: each input file holds one sorted set (one
// decimal element per line, '#' comments allowed); the tool pre-processes
// them with the chosen algorithm, intersects, and prints the result (or
// just its size and timing with --stats).
//
//   intersect_cli [--algorithm SPEC] [--stats] [--explain] [--threshold T]
//                 [--force-scalar] [--save-index PATH] FILE...
//   intersect_cli --load-index PATH [--stats] [--explain]
//   intersect_cli --dump-calibration PATH
//   intersect_cli --list
//
// By default the cost-model planner picks the algorithm per query
// (docs/PLANNER.md); SPEC overrides it with any registry spec — a name,
// optionally with options: "RanGroupScan:m=2,w=4".  --explain prints the
// chosen plan (set order, algorithm per step, predicted cost) and the
// predicted-vs-measured summary instead of the result elements.  --list
// prints every registered algorithm — including whether it exposes a cost
// hook to the planner — plus the active SIMD kernel variant, so benchmark
// reports are self-describing.  --force-scalar disables the vectorized
// kernels for this run (equivalent to launching with FSI_FORCE_SCALAR=1).
//
// Persistence (docs/PERSISTENCE.md): --save-index writes the prepared
// engine image to PATH after the query; --load-index skips the input
// files entirely and mmaps a previously saved image (with --stats
// reporting the load mode and mapped bytes).  --dump-calibration runs the
// planner's startup measurement once and writes the resulting cost
// constants as JSON — the file FSI_PLANNER_CALIBRATION can point at.
//
// Examples:
//   ./build/examples/intersect_cli a.txt b.txt
//   ./build/examples/intersect_cli --explain a.txt b.txt c.txt
//   ./build/examples/intersect_cli --algorithm Merge --stats a.txt b.txt c.txt
//   ./build/examples/intersect_cli --algorithm RanGroupScan:m=2 a.txt b.txt
//   ./build/examples/intersect_cli --threshold 2 a.txt b.txt c.txt

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/ran_group_scan.h"
#include "core/threshold.h"
#include "fsi.h"
#include "util/timer.h"

namespace {

fsi::ElemList ReadSetFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  fsi::ElemList set;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    char* end = nullptr;
    unsigned long v = std::strtoul(line.c_str(), &end, 10);
    if (end == line.c_str()) {
      std::fprintf(stderr, "error: %s: bad line '%s'\n", path.c_str(),
                   line.c_str());
      std::exit(2);
    }
    set.push_back(static_cast<fsi::Elem>(v));
  }
  return set;
}

void PrintKernelVariant(std::FILE* stream) {
  std::fprintf(stream, "kernel dispatch: %s (cpu supports %s%s)\n",
               std::string(fsi::simd::LevelName(fsi::simd::ActiveLevel()))
                   .c_str(),
               std::string(fsi::simd::LevelName(fsi::simd::DetectCpuLevel()))
                   .c_str(),
               fsi::simd::ForceScalarEnv() ? "; FSI_FORCE_SCALAR set" : "");
}

void ListAlgorithms() {
  PrintKernelVariant(stdout);
  std::printf("%-22s %-10s %-6s %-5s %s\n", "name", "structure", "max-k",
              "cost", "options (always: seed=<int>)");
  for (const fsi::AlgorithmDescriptor* d :
       fsi::AlgorithmRegistry::Global().Descriptors(/*include_hidden=*/true)) {
    std::string max_k = d->max_query_sets == SIZE_MAX
                            ? "any"
                            : std::to_string(d->max_query_sets);
    // "cost": whether the algorithm exposes a cost hook, i.e. whether the
    // planner can select it (docs/PLANNER.md).
    std::printf("%-22s %-10s %-6s %-5s %s\n", d->name.c_str(),
                d->compressed ? "compressed" : "plain", max_k.c_str(),
                d->cost != nullptr ? "yes" : "-",
                d->options_help.empty() ? "-" : d->options_help.c_str());
  }
}

void Usage() {
  std::fprintf(stderr,
               "usage: intersect_cli [--algorithm SPEC] [--stats] "
               "[--explain] [--threshold T] [--force-scalar] FILE...\n"
               "       intersect_cli --list\n"
               "  SPEC: registry spec, e.g. Merge, Planner (default: the\n"
               "        cost-model planner), or with options: "
               "RanGroupScan:m=2,w=4\n"
               "  --explain: print the chosen plan and predicted vs "
               "measured cost\n"
               "        instead of the result elements\n"
               "  --list: print the active kernel variant, every registered\n"
               "        algorithm, whether it exposes a cost hook, and its "
               "options\n"
               "  --threshold T: elements in at least T of the input sets "
               "(forces RanGroupScan)\n"
               "  --force-scalar: disable SIMD kernels for this run "
               "(= FSI_FORCE_SCALAR=1)\n"
               "  --save-index PATH: after the query, save the prepared "
               "engine image\n"
               "        (snapshot file, docs/PERSISTENCE.md)\n"
               "  --load-index PATH: mmap a saved image instead of reading "
               "FILEs;\n"
               "        the query runs over every set in the snapshot\n"
               "  --dump-calibration PATH: measure the planner cost "
               "constants and\n"
               "        write them as JSON (usable via "
               "FSI_PLANNER_CALIBRATION)\n");
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsi;
  std::string algorithm_spec = "Planner";
  bool stats = false;
  bool explain = false;
  std::size_t threshold = 0;
  std::string save_index;
  std::string load_index;
  std::string dump_calibration;
  std::vector<std::string> files;
  // First pass: --force-scalar must act before anything resolves the
  // kernel dispatch table (it is resolved once per process, on first use).
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--force-scalar") {
      setenv("FSI_FORCE_SCALAR", "1", /*overwrite=*/1);
    }
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--algorithm" && i + 1 < argc) {
      algorithm_spec = argv[++i];
    } else if (arg == "--list") {
      ListAlgorithms();
      return 0;
    } else if (arg == "--force-scalar") {
      // handled in the first pass
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--threshold" && i + 1 < argc) {
      threshold = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--save-index" && i + 1 < argc) {
      save_index = argv[++i];
    } else if (arg == "--load-index" && i + 1 < argc) {
      load_index = argv[++i];
    } else if (arg == "--dump-calibration" && i + 1 < argc) {
      dump_calibration = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (!dump_calibration.empty()) {
    // Measure() (not Process()) so FSI_PLANNER_CALIBRATION in the
    // environment cannot feed the dump back into itself.
    std::ofstream out(dump_calibration, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   dump_calibration.c_str());
      return 2;
    }
    out << PlannerCalibration::Measure().ToJson() << "\n";
    return out ? 0 : 2;
  }
  if (threshold > 0 && (!save_index.empty() || !load_index.empty())) {
    std::fprintf(stderr,
                 "error: --threshold queries run on raw structures and do "
                 "not combine with --save-index/--load-index\n");
    return 1;
  }
  if (!load_index.empty() && !files.empty()) {
    std::fprintf(stderr,
                 "error: --load-index replaces the input FILEs (the query "
                 "runs over every set in the snapshot)\n");
    return 1;
  }
  if (load_index.empty() && files.size() < 2) Usage();
  if (explain && threshold > 0) {
    std::fprintf(stderr,
                 "error: --explain does not apply to --threshold queries "
                 "(they always run on RanGroupScan structures)\n");
    return 1;
  }

  std::vector<ElemList> sets;
  for (const auto& f : files) sets.push_back(ReadSetFile(f));

  Timer total;
  ElemList result;
  double preprocess_ms = 0;
  double query_ms = 0;
  std::size_t elements_scanned = 0;
  std::size_t num_sets = sets.size();
  std::optional<SnapshotInfo> snapshot_info;
  if (threshold > 0) {
    // t-threshold queries run on the raw RanGroupScan structures.  The
    // raw Preprocess path skips validation in Release, and these files
    // come from outside — check them explicitly.
    RanGroupScanIntersection scan;
    Timer pre;
    std::vector<std::unique_ptr<PreprocessedSet>> owned;
    std::vector<const PreprocessedSet*> views;
    for (std::size_t i = 0; i < sets.size(); ++i) {
      try {
        CheckSortedUnique(sets[i], files[i]);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
      owned.push_back(scan.Preprocess(sets[i]));
      views.push_back(owned.back().get());
      elements_scanned += sets[i].size();
    }
    preprocess_ms = pre.ElapsedMillis();
    ThresholdIntersection thresh(&scan);
    Timer q;
    result = thresh.AtLeast(views, threshold);
    query_ms = q.ElapsedMillis();
  } else if (!load_index.empty()) {
    // Cold start from a saved image: mmap, reconstruct, query — no file
    // parsing, no preprocessing, no planner calibration.
    std::optional<LoadedSnapshot> loaded;
    Timer pre;
    try {
      loaded = Engine::LoadSnapshot(load_index);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    preprocess_ms = pre.ElapsedMillis();
    snapshot_info = loaded->info;
    num_sets = loaded->sets.size();
    if (num_sets < 2) {
      std::fprintf(stderr, "error: %s: snapshot holds %zu set(s); "
                   "an intersection needs at least 2\n",
                   load_index.c_str(), num_sets);
      return 2;
    }
    Query query = loaded->engine.Query(loaded->sets);
    QueryStats qs = query.ExecuteInto(&result);
    query_ms = qs.wall_micros / 1000.0;
    elements_scanned = qs.elements_scanned;
    if (explain) {
      std::printf("%s", query.Explain().ToString().c_str());
      std::printf("predicted: %.1f us  measured: %.1f us  result: %zu "
                  "elements\n",
                  qs.predicted_micros, qs.wall_micros, result.size());
    }
  } else {
    // Validate operator input even in Release: files come from outside.
    std::unique_ptr<Engine> engine;
    try {
      engine = std::make_unique<Engine>(
          algorithm_spec, EngineOptions{.validation = ValidationPolicy::kFull});
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    Timer pre;
    std::vector<PreparedSet> prepared;
    try {
      for (const auto& s : sets) prepared.push_back(engine->Prepare(s));
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    preprocess_ms = pre.ElapsedMillis();
    if (!save_index.empty()) {
      try {
        engine->SaveSnapshot(save_index, std::span<const PreparedSet>(prepared));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
      std::fprintf(stderr, "saved index: %s (%zu sets)\n", save_index.c_str(),
                   prepared.size());
    }
    Query query = engine->Query(prepared);
    QueryStats qs = query.ExecuteInto(&result);
    query_ms = qs.wall_micros / 1000.0;
    elements_scanned = qs.elements_scanned;
    if (explain) {
      std::printf("%s", query.Explain().ToString().c_str());
      std::printf("predicted: %.1f us  measured: %.1f us  result: %zu "
                  "elements\n",
                  qs.predicted_micros, qs.wall_micros, result.size());
    }
  }

  if (stats) {
    PrintKernelVariant(stderr);
    if (snapshot_info) {
      std::fprintf(stderr,
                   "snapshot: %s  load: %s  mapped: %zu bytes  spec: %s  "
                   "sets: %zu (%zu zero-copy, %zu rebuilt, %zu mutable)  "
                   "calibration: %s\n",
                   load_index.c_str(), snapshot_info->load_mode.c_str(),
                   snapshot_info->mapped_bytes, snapshot_info->spec.c_str(),
                   snapshot_info->sets_total, snapshot_info->sets_zero_copy,
                   snapshot_info->sets_rebuilt, snapshot_info->sets_mutable,
                   snapshot_info->calibration_source.empty()
                       ? "-"
                       : snapshot_info->calibration_source.c_str());
    }
    std::fprintf(stderr,
                 "sets: %zu  result: %zu elements  scanned: %zu elements  "
                 "preprocess: %.3f ms  query: %.3f ms  total: %.3f ms\n",
                 num_sets, result.size(), elements_scanned, preprocess_ms,
                 query_ms, total.ElapsedMillis());
  } else if (!explain) {
    for (Elem x : result) std::printf("%u\n", x);
  }
  return 0;
}
