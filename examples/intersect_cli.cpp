// intersect_cli — command-line set intersection over files.
//
// A small operational tool: each input file holds one sorted set (one
// decimal element per line, '#' comments allowed); the tool pre-processes
// them with the chosen algorithm, intersects, and prints the result (or
// just its size and timing with --stats).
//
//   intersect_cli [--algorithm NAME] [--stats] [--threshold T] FILE...
//
// Examples:
//   ./build/examples/intersect_cli a.txt b.txt
//   ./build/examples/intersect_cli --algorithm Merge --stats a.txt b.txt c.txt
//   ./build/examples/intersect_cli --threshold 2 a.txt b.txt c.txt

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/intersector.h"
#include "core/ran_group_scan.h"
#include "core/threshold.h"
#include "util/timer.h"

namespace {

fsi::ElemList ReadSetFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  fsi::ElemList set;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    char* end = nullptr;
    unsigned long v = std::strtoul(line.c_str(), &end, 10);
    if (end == line.c_str()) {
      std::fprintf(stderr, "error: %s: bad line '%s'\n", path.c_str(),
                   line.c_str());
      std::exit(2);
    }
    set.push_back(static_cast<fsi::Elem>(v));
  }
  return set;
}

void Usage() {
  std::fprintf(stderr,
               "usage: intersect_cli [--algorithm NAME] [--stats] "
               "[--threshold T] FILE...\n"
               "  NAME: Merge, SvS, RanGroupScan, HashBin, Hybrid, ... "
               "(default Hybrid)\n"
               "  --threshold T: elements in at least T of the input sets "
               "(forces RanGroupScan)\n");
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsi;
  std::string algorithm_name = "Hybrid";
  bool stats = false;
  std::size_t threshold = 0;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--algorithm" && i + 1 < argc) {
      algorithm_name = argv[++i];
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--threshold" && i + 1 < argc) {
      threshold = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (!arg.empty() && arg[0] == '-') {
      Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() < 2) Usage();

  std::vector<ElemList> sets;
  for (const auto& f : files) sets.push_back(ReadSetFile(f));

  Timer total;
  ElemList result;
  double preprocess_ms = 0;
  double query_ms = 0;
  if (threshold > 0) {
    RanGroupScanIntersection scan;
    Timer pre;
    std::vector<std::unique_ptr<PreprocessedSet>> owned;
    std::vector<const PreprocessedSet*> views;
    for (const auto& s : sets) {
      owned.push_back(scan.Preprocess(s));
      views.push_back(owned.back().get());
    }
    preprocess_ms = pre.ElapsedMillis();
    ThresholdIntersection thresh(&scan);
    Timer q;
    result = thresh.AtLeast(views, threshold);
    query_ms = q.ElapsedMillis();
  } else {
    std::unique_ptr<IntersectionAlgorithm> algorithm;
    try {
      algorithm = CreateAlgorithm(algorithm_name);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    Timer pre;
    std::vector<std::unique_ptr<PreprocessedSet>> owned;
    std::vector<const PreprocessedSet*> views;
    for (const auto& s : sets) {
      owned.push_back(algorithm->Preprocess(s));
      views.push_back(owned.back().get());
    }
    preprocess_ms = pre.ElapsedMillis();
    Timer q;
    algorithm->Intersect(views, &result);
    query_ms = q.ElapsedMillis();
  }

  if (stats) {
    std::fprintf(stderr,
                 "sets: %zu  result: %zu elements  preprocess: %.3f ms  "
                 "query: %.3f ms  total: %.3f ms\n",
                 sets.size(), result.size(), preprocess_ms, query_ms,
                 total.ElapsedMillis());
  } else {
    for (Elem x : result) std::printf("%u\n", x);
  }
  return 0;
}
