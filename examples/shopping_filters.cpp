// Faceted product filtering — the paper's motivating measurement came from
// the Bing *Shopping* portal: conjunctive attribute predicates over a
// product catalog ("evaluation of conjunctive predicates").
//
// Each attribute value (brand=X, color=Y, price-band=Z, ...) has a posting
// list of product ids; a filter combination is a set intersection.  The
// example shows the paper's key observation live: the intersection is
// usually orders of magnitude smaller than the smallest filter list ("for
// 94% of queries the full intersection was at least one order of magnitude
// smaller than the document frequency of the least frequent keyword"), and
// group filtering exploits exactly that.  Facet *counts* (the numbers next
// to each filter checkbox) use the count-only sink — no caller-visible
// result vector.
//
//   ./build/examples/shopping_filters

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "fsi.h"
#include "util/rng.h"

int main() {
  using namespace fsi;
  const Elem kProducts = 500000;
  Xoshiro256 rng(2026);

  // Catalog: every product gets one value per attribute dimension.
  struct Dimension {
    std::string name;
    std::vector<std::string> values;
    std::vector<double> popularity;  // sampling weights
  };
  std::vector<Dimension> dims = {
      {"brand", {"acme", "globex", "initech", "umbrella", "hooli"},
       {0.4, 0.3, 0.15, 0.1, 0.05}},
      {"color", {"black", "white", "red", "blue"}, {0.4, 0.3, 0.2, 0.1}},
      {"price", {"budget", "mid", "premium"}, {0.5, 0.35, 0.15}},
      {"ships", {"today", "this-week"}, {0.3, 0.7}},
  };

  std::map<std::string, ElemList> postings;
  for (Elem p = 0; p < kProducts; ++p) {
    for (const Dimension& d : dims) {
      double u = rng.NextDouble();
      std::size_t v = 0;
      double acc = 0;
      for (; v + 1 < d.values.size(); ++v) {
        acc += d.popularity[v];
        if (u < acc) break;
      }
      postings[d.name + "=" + d.values[v]].push_back(p);
    }
  }

  Engine engine("Hybrid");
  std::map<std::string, PreparedSet> structures;
  for (auto& [value, list] : postings) {
    structures[value] = engine.Prepare(list);
  }

  std::vector<std::vector<std::string>> filter_queries = {
      {"brand=acme", "color=red"},
      {"brand=hooli", "color=blue", "price=premium"},
      {"brand=globex", "color=black", "price=budget", "ships=today"},
      {"price=premium", "ships=today"},
  };
  std::printf("%-55s %10s %10s %9s\n", "filter", "min-list", "matches",
              "time(us)");
  for (const auto& q : filter_queries) {
    std::vector<const PreparedSet*> sets;
    std::string label;
    std::size_t min_list = SIZE_MAX;
    for (const std::string& f : q) {
      sets.push_back(&structures[f]);
      min_list = std::min(min_list, structures[f].size());
      if (!label.empty()) label += " & ";
      label += f;
    }
    // Facet counting needs only the cardinality: count-only, unordered.
    Query query = engine.Query(sets);
    std::size_t matches = query.Unordered().Count();
    std::printf("%-55s %10zu %10zu %9.1f\n", label.c_str(), min_list,
                matches, query.stats().wall_micros);
  }

  // A "show first page" query: materialize at most 10 product ids.
  PreparedSet& acme = structures["brand=acme"];
  PreparedSet& today = structures["ships=today"];
  ElemList page = engine.Query({&acme, &today}).Limit(10).Materialize();
  std::printf("\nfirst page of brand=acme & ships=today (%zu shown):",
              page.size());
  for (Elem p : page) std::printf(" %u", p);
  std::printf("\n");
  return 0;
}
