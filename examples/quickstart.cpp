// Quickstart: pre-process two sets once, intersect them fast.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "fsi.h"

int main() {
  using namespace fsi;

  // Two sorted, duplicate-free sets (e.g. posting lists of two keywords).
  ElemList rock = {2, 3, 5, 8, 13, 21, 34, 55, 89, 144};
  ElemList jazz = {1, 2, 4, 8, 16, 32, 64, 128};

  // Zero-config: the default engine is the cost-model planner, which
  // picks the intersection algorithm per query from the set sizes and
  // calibrated machine constants (docs/PLANNER.md).  An explicit registry
  // spec — Engine("Hybrid"), Engine("RanGroupScan:m=2,w=4") — pins one
  // algorithm instead.
  Engine engine;

  // Pre-processing happens once per set (think: index build time).  The
  // returned PreparedSet owns its structure *and* a reference to the
  // engine's algorithm — no lifetime rules to remember.
  PreparedSet rock_pre = engine.Prepare(rock);
  PreparedSet jazz_pre = engine.Prepare(jazz);

  // ...queries reuse the pre-processed structures.
  ElemList both = engine.Query({&rock_pre, &jazz_pre}).Materialize();

  std::printf("documents tagged rock AND jazz:");
  for (Elem doc : both) std::printf(" %u", doc);
  std::printf("\n");  // expected: 2 8

  // Count-only and limited queries skip output the caller doesn't want
  // (the intersection itself still runs in full).
  std::size_t count = engine.Query({&rock_pre, &jazz_pre}).Count();
  ElemList top1 = engine.Query({&rock_pre, &jazz_pre}).Limit(1).Materialize();
  std::printf("count-only: %zu matches, first match: %u\n", count, top1[0]);

  // Visitor sink: consume results without receiving a vector.
  std::printf("visited:");
  engine.Query({&rock_pre, &jazz_pre}).Visit([](Elem doc) {
    std::printf(" %u", doc);
  });
  std::printf("\n");

  // Per-query stats come with every execution.
  fsi::Query query = engine.Query({&rock_pre, &jazz_pre});
  ElemList same = query.Materialize();
  std::printf("one-liner agrees: %s  (scanned %zu elements in %.1f us)\n",
              same == both ? "yes" : "no", query.stats().elements_scanned,
              query.stats().wall_micros);

  // Explain() shows what the planner chose and what it predicted; compare
  // stats().predicted_micros with stats().wall_micros after running.
  std::printf("%s", query.Explain().ToString().c_str());
  return 0;
}
