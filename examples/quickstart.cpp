// Quickstart: pre-process two sets once, intersect them fast.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/intersector.h"

int main() {
  using namespace fsi;

  // Two sorted, duplicate-free sets (e.g. posting lists of two keywords).
  ElemList rock = {2, 3, 5, 8, 13, 21, 34, 55, 89, 144};
  ElemList jazz = {1, 2, 4, 8, 16, 32, 64, 128};

  // Pick an algorithm.  "Hybrid" is the recommended default: it switches
  // between RanGroupScan (balanced sizes) and HashBin (skewed sizes) per
  // query, as the paper suggests (Section 3.4).
  auto algorithm = CreateAlgorithm("Hybrid");

  // Pre-processing happens once per set (think: index build time)...
  auto rock_pre = algorithm->Preprocess(rock);
  auto jazz_pre = algorithm->Preprocess(jazz);

  // ...queries reuse the pre-processed structures.
  std::vector<const PreprocessedSet*> query = {rock_pre.get(),
                                               jazz_pre.get()};
  ElemList both;
  algorithm->Intersect(query, &both);

  std::printf("documents tagged rock AND jazz:");
  for (Elem doc : both) std::printf(" %u", doc);
  std::printf("\n");  // expected: 2 8

  // One-liner for ad-hoc use (pre-processes internally):
  ElemList same = algorithm->IntersectLists(
      std::vector<ElemList>{rock, jazz});
  std::printf("one-liner agrees: %s\n", same == both ? "yes" : "no");
  return 0;
}
