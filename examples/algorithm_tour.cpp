// A tour of every algorithm in the library on one workload: demonstrates
// the registry, structure sizes, and how relative performance shifts with
// the size ratio — a miniature of the paper's Section 4 in one executable.
//
//   ./build/examples/algorithm_tour

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "fsi.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/synthetic.h"

namespace {

void RunScenario(const char* title, const std::vector<fsi::ElemList>& lists) {
  using namespace fsi;
  std::printf("\n%s\n", title);
  std::printf("%-22s %10s %12s %12s\n", "algorithm", "time(us)", "result",
              "struct(KiB)");
  for (auto name : AlgorithmRegistry::Global().Names(/*compressed=*/false,
                                                     /*include_hidden=*/false)) {
    Engine engine(name);
    if (lists.size() > engine.max_query_sets()) continue;
    std::vector<PreparedSet> prepared;
    std::size_t words = 0;
    for (const auto& l : lists) {
      prepared.push_back(engine.Prepare(l));
      words += prepared.back().SizeInWords();
    }
    // One reusable query, median-of-5 timing.
    Query query = engine.Query(prepared);
    double best = 1e18;
    ElemList out;
    for (int rep = 0; rep < 5; ++rep) {
      Timer t;
      query.ExecuteInto(&out);
      best = std::min(best, t.ElapsedMillis() * 1000.0);
    }
    std::printf("%-22s %10.1f %12zu %12.1f\n", std::string(name).c_str(),
                best, out.size(), static_cast<double>(words) * 8.0 / 1024.0);
  }
}

}  // namespace

int main() {
  using namespace fsi;
  Xoshiro256 rng(7);

  auto balanced =
      GenerateIntersectingSets({200000, 200000}, 2000, 1 << 22, rng);
  RunScenario("balanced pair: |L1| = |L2| = 200k, r = 1% "
              "(RanGroupScan/IntGroup territory)",
              balanced);

  auto skewed = GenerateIntersectingSets({2000, 200000}, 20, 1 << 22, rng);
  RunScenario("skewed pair: |L1| = 2k, |L2| = 200k, sr = 100 "
              "(Hash/HashBin territory)",
              skewed);

  auto multi =
      GenerateIntersectingSets({50000, 100000, 200000}, 500, 1 << 22, rng);
  RunScenario("three sets (RanGroupScan's filtering advantage grows with k)",
              multi);
  return 0;
}
