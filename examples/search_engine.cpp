// A miniature in-memory search engine — the paper's headline application
// ("the key operations in enterprise and web search").
//
// Builds an inverted index over a synthetic Wikipedia-like corpus, runs a
// Bing-like conjunctive query workload through two engines (Merge baseline
// vs the paper's Hybrid), and reports per-query latency statistics — the
// user-facing metric the paper motivates with [10, 17] ("increases in
// latency directly leading to fewer search queries being issued").
//
//   ./build/examples/search_engine

#include <cstdio>
#include <string>
#include <vector>

#include "fsi.h"
#include "index/inverted_index.h"
#include "util/stats.h"
#include "util/timer.h"
#include "workload/corpus.h"

int main() {
  using namespace fsi;

  std::printf("building corpus...\n");
  SyntheticCorpus::Options co;
  co.num_docs = 1 << 17;
  co.vocabulary = 4000;
  SyntheticCorpus corpus(co);

  QueryWorkload::Options qo;
  qo.num_queries = 400;
  QueryWorkload workload(corpus, qo);

  // Two engines over the same corpus.  Terms are named "t<rank>".
  for (const char* spec : {"Merge", "Hybrid"}) {
    InvertedIndex index{Engine(spec)};
    // Feed documents: invert the postings into per-document term lists.
    std::vector<std::vector<std::string>> docs(corpus.num_docs());
    for (std::size_t t = 0; t < corpus.num_terms(); ++t) {
      for (Elem d : corpus.postings(t)) {
        docs[d].push_back("t" + std::to_string(t));
      }
    }
    Timer build;
    for (Elem d = 0; d < corpus.num_docs(); ++d) {
      if (!docs[d].empty()) index.AddDocument(d, docs[d]);
    }
    index.Finalize();
    double build_ms = build.ElapsedMillis();

    SampleStats latency;
    std::size_t total_results = 0;
    std::size_t total_scanned = 0;
    for (const TermQuery& q : workload.queries()) {
      std::vector<std::string> terms;
      for (std::size_t t : q) terms.push_back("t" + std::to_string(t));
      QueryStats stats;
      ElemList results = index.Query(terms, &stats);
      latency.Add(stats.wall_micros);
      total_results += results.size();
      total_scanned += stats.elements_scanned;
    }
    std::printf(
        "%-7s index: %6.0f ms build, %5.1f MiB | query latency: "
        "mean %7.1f us, p95 %7.1f us, max %8.1f us | %zu results, "
        "%.1f M elements scanned\n",
        spec, build_ms,
        static_cast<double>(index.SizeInWords()) * 8.0 / (1 << 20),
        latency.Mean(), latency.Percentile(0.95), latency.Max(),
        total_results, static_cast<double>(total_scanned) * 1e-6);
  }
  return 0;
}
