#!/usr/bin/env python3
"""Condense Google-Benchmark JSON outputs into one BENCH_pr.json summary.

Usage: bench_summary.py <dir-with-*.json> > BENCH_pr.json

Reads every ``*.json`` benchmark export in the directory (skipping files
that are not Google-Benchmark output) and emits a single JSON document:
one compact row per benchmark, plus the fig13 thread-scaling ratios
(throughput at N workers over the single-thread baseline, per algorithm)
— the number the concurrency layer exists to improve.  The CI
bench-smoke job prints this to the job log and uploads the raw exports
as an artifact, so the perf trajectory of a branch is one artifact
download away.
"""

import json
import os
import re
import sys


def load_exports(directory):
    exports = {}
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json") or name == "BENCH_pr.json":
            continue
        path = os.path.join(directory, name)
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError):
            continue
        # Require the full Google-Benchmark signature ("context" +
        # "benchmarks"), so a prior summary — which also carries a
        # "benchmarks" key — is never re-ingested and double-counted.
        if isinstance(data, dict) and "context" in data and "benchmarks" in data:
            exports[name] = data
    return exports


def row(bench):
    out = {
        "name": bench.get("name"),
        "real_time": bench.get("real_time"),
        "time_unit": bench.get("time_unit"),
    }
    for key in ("items_per_second", "result_size", "threads", "p95_us"):
        if key in bench:
            out[key] = bench[key]
    return out


def fig13_scaling(benchmarks):
    """Per-algorithm queries/s by thread count and speedup vs 1 thread."""
    qps = {}  # algorithm -> {threads: items_per_second}
    pattern = re.compile(r"^fig13/([^/]+)/threads:(\d+)")
    for bench in benchmarks:
        match = pattern.match(bench.get("name", ""))
        if not match or "items_per_second" not in bench:
            continue
        alg, threads = match.group(1), int(match.group(2))
        qps.setdefault(alg, {})[threads] = bench["items_per_second"]
    scaling = {}
    for alg, by_threads in sorted(qps.items()):
        base = by_threads.get(1)
        entry = {
            "queries_per_second": {
                str(t): round(v, 1) for t, v in sorted(by_threads.items())
            }
        }
        if base:
            entry["speedup_vs_1_thread"] = {
                str(t): round(v / base, 2)
                for t, v in sorted(by_threads.items())
            }
        scaling[alg] = entry
    return scaling


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__.strip())
    directory = sys.argv[1]
    exports = load_exports(directory)

    summary = {
        "commit": os.environ.get("GITHUB_SHA", "local"),
        "ref": os.environ.get("GITHUB_REF", ""),
        "sources": list(exports),
        "benchmarks": [],
    }
    all_benchmarks = []
    for name, data in exports.items():
        for bench in data.get("benchmarks", []):
            all_benchmarks.append(bench)
            summary["benchmarks"].append(dict(row(bench), file=name))

    scaling = fig13_scaling(all_benchmarks)
    if scaling:
        summary["fig13_thread_scaling"] = scaling

    json.dump(summary, sys.stdout, indent=2)
    print()


if __name__ == "__main__":
    main()
