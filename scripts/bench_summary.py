#!/usr/bin/env python3
"""Condense Google-Benchmark JSON outputs into one BENCH_pr.json summary.

Usage: bench_summary.py <dir-with-*.json> > BENCH_pr.json

Reads every ``*.json`` benchmark export in the directory (skipping files
that are not Google-Benchmark output) plus any ``fig07_real_workload.txt``
and ``fig_planner.txt`` text reports, and emits a single JSON document:
one compact row per benchmark, the fig13 thread-scaling ratios
(throughput at N workers over the single-thread baseline, per algorithm),
a ``planner_vs_best_static`` section condensing the fig_planner report
(planner mean time over the best/worst static choice, per query class,
plus the cost-model prediction accuracy — the numbers CI gates on), a
``mutation_overhead`` section condensing the fig_mutation export (query
latency at each delta-fill level over the empty-delta baseline, the
post-compaction ratio, compaction cost and insert throughput), a
``cold_start_speedup`` section condensing the fig_coldstart export
(prepare-from-scratch over mmap-load time — the snapshot persistence
gate, docs/PERSISTENCE.md), a ``sharding_scaling`` section condensing
the fig_sharding export (queries/s and p50/p95/p99 latency per
shard-count × thread-count configuration, plus the speedup of each
shard count over the single-shard baseline — the scatter-gather serving
gate, docs/SERVING.md), a ``query_algebra`` section condensing the
fig_algebra export (expression-evaluation time per OR-width × depth ×
cache-hit-rate shape and the memoized-over-cold speedup — the
expression-cache gate, docs/ALGEBRA.md), a ``compressed_decode`` section
condensing the fig08 export (the off/auto time ratio of the
``decode_kernel`` row pairs per field width plus the whole-query
simd=off/auto ratios — the SIMD-decode gate, docs/COMPRESSION.md), and —
when the directory has a ``scalar/`` subdirectory holding a second run
made with FSI_FORCE_SCALAR=1 — a ``simd_speedup`` section with the
per-benchmark scalar/simd time ratios, the number the SIMD kernel layer
exists to improve.  The CI bench-smoke job prints this to the job log and
uploads the raw exports as an artifact, so the perf trajectory of a
branch is one artifact download away.
"""

import json
import os
import re
import sys


# Shared row shape of the fig07 and fig_planner text tables:
# <algorithm> <number> <number> <percent>%
TABLE_ROW = re.compile(
    r"^(\w+)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)%\s*$", re.MULTILINE)

PLANNER_METRIC = re.compile(
    r"^(planner_vs_\w+|predicted_within_2x)\s+([\d.]+)\s*$", re.MULTILINE)


def load_planner_text(directory):
    """The fig_planner report as one summary section (or None)."""
    path = os.path.join(directory, "fig_planner.txt")
    try:
        with open(path) as f:
            text = f.read()
    except OSError:
        return None
    section = {"mean_ms": {}, "vs_best_by_k": {}}
    for alg, mean_ms, worst_ms, win in TABLE_ROW.findall(text):
        section["mean_ms"][alg] = float(mean_ms)
    for key, value in PLANNER_METRIC.findall(text):
        if key == "planner_vs_best_static":
            section["vs_best_overall"] = float(value)
        elif key == "planner_vs_worst_static":
            section["vs_worst_overall"] = float(value)
        elif key == "predicted_within_2x":
            section["predicted_within_2x"] = float(value)
        elif key.startswith("planner_vs_best_k"):
            section["vs_best_by_k"][key[len("planner_vs_best_k"):]] = (
                float(value))
    if "vs_best_overall" not in section:
        return None
    return section


def load_fig07_text(directory):
    """Rows of the fig07 text report, as benchmark-like dicts."""
    path = os.path.join(directory, "fig07_real_workload.txt")
    rows = []
    try:
        with open(path) as f:
            text = f.read()
    except OSError:
        return rows
    for alg, normalized, mean_ms, win in TABLE_ROW.findall(text):
        rows.append({
            "name": "fig07/" + alg,
            "real_time": float(mean_ms),
            "time_unit": "ms",
            "normalized_to_merge": float(normalized),
            "win_share_percent": float(win),
        })
    return rows


def simd_speedup(directory, benchmarks):
    """scalar_time / simd_time per benchmark, from the scalar/ subdirectory.

    The bench-smoke job runs the same subset twice — once as built
    (CPU-dispatched SIMD kernels) into the artifact root, once with
    FSI_FORCE_SCALAR=1 into scalar/.  Ratios > 1 mean the vectorized
    kernels win.
    """
    scalar_dir = os.path.join(directory, "scalar")
    if not os.path.isdir(scalar_dir):
        return {}
    scalar_rows = []
    for data in load_exports(scalar_dir).values():
        scalar_rows.extend(data.get("benchmarks", []))
    scalar_rows.extend(load_fig07_text(scalar_dir))
    scalar_times = {
        b["name"]: b["real_time"]
        for b in scalar_rows
        if b.get("name") and b.get("real_time")
    }
    speedup = {}
    for bench in benchmarks:
        name = bench.get("name")
        simd_time = bench.get("real_time")
        scalar_time = scalar_times.get(name)
        if name and simd_time and scalar_time:
            speedup[name] = round(scalar_time / simd_time, 2)
    return speedup


def load_exports(directory):
    exports = {}
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json") or name == "BENCH_pr.json":
            continue
        path = os.path.join(directory, name)
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError):
            continue
        # Require the full Google-Benchmark signature ("context" +
        # "benchmarks"), so a prior summary — which also carries a
        # "benchmarks" key — is never re-ingested and double-counted.
        if isinstance(data, dict) and "context" in data and "benchmarks" in data:
            exports[name] = data
    return exports


def row(bench):
    out = {
        "name": bench.get("name"),
        "real_time": bench.get("real_time"),
        "time_unit": bench.get("time_unit"),
    }
    for key in ("items_per_second", "result_size", "threads", "shards",
                "p50_us", "p95_us", "p99_us"):
        if key in bench:
            out[key] = bench[key]
    return out


def mutation_overhead(benchmarks):
    """Query-latency overhead of the mutable-set delta tier (fig_mutation).

    Ratios are latencies normalized to the fill:0 baseline — a freshly
    prepared mutable set with an empty delta.  ``overhead_vs_fill`` is the
    default ordered sink (fixup = two linear merges; CI gates on it);
    ``unordered_overhead_vs_fill`` is the .Unordered() sink, which pays a
    Bloom-gated screening pass over the whole result.
    ``post_compaction_ratio`` is the ordered query after Compact() folded
    a 10% delta back into the base; the mutability layer's contract is
    that it returns to ~1.0.

    Benchmark JSON names carry the registered label plus one trailing
    ``/<arg>`` component per Args() value, so all matching here is prefix
    based (e.g. ``mutation/query_vs_fill/fill:10/10/0``).
    """
    rows = [
        b for b in benchmarks
        if b.get("name", "").startswith("mutation/") and b.get("real_time")
    ]

    def find(prefix):
        for b in rows:
            name = b["name"]
            if name == prefix or name.startswith(prefix + "/"):
                return b
        return None

    def fill_curve(stem, baseline):
        pattern = re.compile(r"^" + re.escape(stem) + r"/fill:(\d+)(/|$)")
        curve = {}
        for b in rows:
            match = pattern.match(b["name"])
            if match and int(match.group(1)) > 0:
                curve[match.group(1)] = round(b["real_time"] / baseline, 2)
        return curve

    base = find("mutation/query_vs_fill/fill:0")
    if not base:
        return None
    baseline = base["real_time"]
    section = {
        "baseline_us": round(baseline, 3),
        "overhead_vs_fill": fill_curve("mutation/query_vs_fill", baseline),
    }
    ubase = find("mutation/query_vs_fill_unordered/fill:0")
    if ubase:
        section["unordered_baseline_us"] = round(ubase["real_time"], 3)
        section["unordered_overhead_vs_fill"] = fill_curve(
            "mutation/query_vs_fill_unordered", ubase["real_time"])
    post = find("mutation/post_compaction")
    if post:
        section["post_compaction_ratio"] = round(
            post["real_time"] / baseline, 2)
    compact_pattern = re.compile(r"^mutation/compact_cost/fill:(\d+)(/|$)")
    compact = {}
    for b in rows:
        match = compact_pattern.match(b["name"])
        if match:
            compact[match.group(1)] = round(b["real_time"], 3)
    if compact:
        section["compact_cost_ms"] = compact
    inserts = find("mutation/insert_throughput")
    if inserts and inserts.get("items_per_second"):
        section["inserts_per_second"] = round(inserts["items_per_second"], 1)
    return section


def cold_start_speedup(benchmarks):
    """prepare_ms / load_ms from the fig_coldstart export (or None).

    ``coldstart/prepare`` rebuilds every structure from raw lists;
    ``coldstart/load`` is Engine::LoadSnapshot mmap'ing the saved image.
    The ratio is the whole point of the persistence layer — CI gates it
    at >= 10x (docs/PERSISTENCE.md).
    """
    def find(prefix):
        for b in benchmarks:
            name = b.get("name", "")
            if ((name == prefix or name.startswith(prefix + "/"))
                    and b.get("real_time")):
                return b
        return None

    prepare = find("coldstart/prepare")
    load = find("coldstart/load")
    if not prepare or not load:
        return None
    section = {
        "prepare_ms": round(prepare["real_time"], 2),
        "load_ms": round(load["real_time"], 2),
        "speedup": round(prepare["real_time"] / load["real_time"], 2),
    }
    counters = {k: load[k] for k in ("mapped_MiB", "sets") if k in load}
    section.update(counters)
    return section


def sharding_scaling(benchmarks):
    """The fig_sharding latency/throughput table, per query mix.

    Benchmark names are ``sharding/<mix>/shards:S/threads:T``; each row
    carries items_per_second plus p50/p95/p99 latency counters from the
    serving layer's ServeBatch.  ``speedup_vs_1_shard`` is the
    items_per_second ratio of each shard count over shards:1 at the same
    thread count — scatter-gather's per-query parallelism, the number CI
    gates at >= 3x for 8 shards (docs/SERVING.md, docs/BENCHMARKS.md).
    """
    pattern = re.compile(r"^sharding/([^/]+)/shards:(\d+)/threads:(\d+)")
    configs = {}  # mix -> {(shards, threads): bench}
    for bench in benchmarks:
        match = pattern.match(bench.get("name", ""))
        if not match or "items_per_second" not in bench:
            continue
        mix, shards, threads = (match.group(1), int(match.group(2)),
                                int(match.group(3)))
        configs.setdefault(mix, {})[(shards, threads)] = bench
    if not configs:
        return None
    section = {}
    for mix, by_config in sorted(configs.items()):
        table = {}
        speedups = {}
        for (shards, threads), bench in sorted(by_config.items()):
            key = "shards:%d/threads:%d" % (shards, threads)
            table[key] = {
                "queries_per_second": round(bench["items_per_second"], 1),
            }
            for counter in ("p50_us", "p95_us", "p99_us"):
                if counter in bench:
                    table[key][counter] = round(bench[counter], 1)
            base = by_config.get((1, threads))
            if base and base.get("items_per_second"):
                speedups[key] = round(
                    bench["items_per_second"] / base["items_per_second"], 2)
        entry = {"configs": table}
        if speedups:
            entry["speedup_vs_1_shard"] = speedups
        section[mix] = entry
    return section


def query_algebra(benchmarks):
    """The fig_algebra expression-evaluation table, by tree shape.

    Benchmark names are ``algebra/width:W/depth:D/hit:H`` where H is the
    controlled ExprCache hit rate (0, 50 or 100 percent).  For each
    (width, depth) shape the section records the per-hit-rate time and
    ``memo_speedup`` — the hit:0 time over the hit:100 time, i.e. how
    much cheaper re-evaluating a fully memoized tree is than a cold
    evaluation.  CI gates ``best_memo_speedup`` at >= 5x
    (docs/ALGEBRA.md, "Memoization").
    """
    pattern = re.compile(r"^algebra/width:(\d+)/depth:(\d+)/hit:(\d+)$")
    shapes = {}  # (width, depth) -> {hit: real_time}
    for bench in benchmarks:
        match = pattern.match(bench.get("name", ""))
        if not match or not bench.get("real_time"):
            continue
        width, depth, hit = match.groups()
        shapes.setdefault((width, depth), {})[hit] = bench["real_time"]
    if not shapes:
        return None
    section = {"configs": {}}
    best = 0.0
    for (width, depth), by_hit in sorted(shapes.items()):
        key = "width:%s/depth:%s" % (width, depth)
        entry = {
            "time_us_by_hit_pct": {h: round(t, 2)
                                   for h, t in sorted(by_hit.items())}
        }
        cold, hot = by_hit.get("0"), by_hit.get("100")
        if cold and hot:
            entry["memo_speedup"] = round(cold / hot, 2)
            best = max(best, entry["memo_speedup"])
        section["configs"][key] = entry
    if best:
        section["best_memo_speedup"] = best
    return section


def compressed_decode(benchmarks):
    """The fig08 SIMD-decode comparison, kernel-level and whole-query.

    ``kernel_speedup`` is the off/auto time ratio of the
    ``fig08/decode_kernel/w:W/simd:{auto,off}`` row pairs — the dispatched
    bit-unpacking kernels against the scalar reference over a flat ~1M-field
    buffer, per field width.  ``min_kernel_speedup`` is what CI gates at
    >= 1.5x on AVX2 runners (docs/COMPRESSION.md).  ``query_speedup`` is
    the same ratio for the whole-query ``fig08/<alg>/n:N`` vs
    ``fig08/<alg>:simd=off/n:N`` pairs; those decode one ~8-element group
    at a time, where the kernel intentionally stays scalar, so values
    near 1.0 are expected — the column exists to catch the dispatched
    path *losing* end-to-end.
    """
    kernel_pattern = re.compile(r"^fig08/decode_kernel/w:(\d+)/simd:(auto|off)")
    query_pattern = re.compile(r"^fig08/([A-Za-z_]+?)(:simd=off)?/n:(\d+)")
    kernel = {}  # width -> {mode: real_time}
    queries = {}  # (alg, n) -> {mode: real_time}
    for bench in benchmarks:
        name = bench.get("name", "")
        time = bench.get("real_time")
        if not time:
            continue
        match = kernel_pattern.match(name)
        if match:
            kernel.setdefault(match.group(1), {})[match.group(2)] = time
            continue
        match = query_pattern.match(name)
        if match and match.group(1) != "decode_kernel":
            alg, off, n = match.group(1), match.group(2), match.group(3)
            queries.setdefault((alg, n), {})["off" if off else "auto"] = time
    if not kernel and not queries:
        return None
    section = {}
    if kernel:
        section["kernel_speedup"] = {
            "w:%s" % w: round(t["off"] / t["auto"], 2)
            for w, t in sorted(kernel.items(), key=lambda kv: int(kv[0]))
            if "off" in t and "auto" in t
        }
        if section["kernel_speedup"]:
            section["min_kernel_speedup"] = min(
                section["kernel_speedup"].values())
    query_speedup = {
        "%s/n:%s" % (alg, n): round(t["off"] / t["auto"], 2)
        for (alg, n), t in sorted(queries.items())
        if "off" in t and "auto" in t
    }
    if query_speedup:
        section["query_speedup"] = query_speedup
    return section


def fig13_scaling(benchmarks):
    """Per-algorithm queries/s by thread count and speedup vs 1 thread."""
    qps = {}  # algorithm -> {threads: items_per_second}
    pattern = re.compile(r"^fig13/([^/]+)/threads:(\d+)")
    for bench in benchmarks:
        match = pattern.match(bench.get("name", ""))
        if not match or "items_per_second" not in bench:
            continue
        alg, threads = match.group(1), int(match.group(2))
        qps.setdefault(alg, {})[threads] = bench["items_per_second"]
    scaling = {}
    for alg, by_threads in sorted(qps.items()):
        base = by_threads.get(1)
        entry = {
            "queries_per_second": {
                str(t): round(v, 1) for t, v in sorted(by_threads.items())
            }
        }
        if base:
            entry["speedup_vs_1_thread"] = {
                str(t): round(v / base, 2)
                for t, v in sorted(by_threads.items())
            }
        scaling[alg] = entry
    return scaling


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__.strip())
    directory = sys.argv[1]
    exports = load_exports(directory)

    summary = {
        "commit": os.environ.get("GITHUB_SHA", "local"),
        "ref": os.environ.get("GITHUB_REF", ""),
        "sources": list(exports),
        "benchmarks": [],
    }
    all_benchmarks = []
    for name, data in exports.items():
        for bench in data.get("benchmarks", []):
            all_benchmarks.append(bench)
            summary["benchmarks"].append(dict(row(bench), file=name))
    fig07_rows = load_fig07_text(directory)
    if fig07_rows:
        summary["sources"].append("fig07_real_workload.txt")
    for bench in fig07_rows:
        all_benchmarks.append(bench)
        summary["benchmarks"].append(
            dict(bench, file="fig07_real_workload.txt"))

    scaling = fig13_scaling(all_benchmarks)
    if scaling:
        summary["fig13_thread_scaling"] = scaling

    sharding = sharding_scaling(all_benchmarks)
    if sharding:
        summary["sharding_scaling"] = sharding

    mutation = mutation_overhead(all_benchmarks)
    if mutation:
        summary["mutation_overhead"] = mutation

    coldstart = cold_start_speedup(all_benchmarks)
    if coldstart:
        summary["cold_start_speedup"] = coldstart

    algebra = query_algebra(all_benchmarks)
    if algebra:
        summary["query_algebra"] = algebra

    decode = compressed_decode(all_benchmarks)
    if decode:
        summary["compressed_decode"] = decode

    planner = load_planner_text(directory)
    if planner:
        summary["sources"].append("fig_planner.txt")
        summary["planner_vs_best_static"] = planner

    speedup = simd_speedup(directory, all_benchmarks)
    if speedup:
        summary["simd_speedup"] = speedup

    json.dump(summary, sys.stdout, indent=2)
    print()


if __name__ == "__main__":
    main()
