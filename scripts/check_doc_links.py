#!/usr/bin/env python3
"""Validate cross-references in the repo's Markdown docs.

Usage: check_doc_links.py [repo-root]

Scans README.md and docs/*.md for Markdown links and checks that

* relative file links point at files that exist in the repo, and
* intra-document anchors (``#section``) match a heading in the target.

External (http/https/mailto) links are not fetched — CI must not depend
on the network — but their syntax is still parsed.  Exits non-zero with
one line per broken reference, so the CI step fails loudly when a doc
rename or move leaves a dangling link.
"""

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
EXTERNAL = ("http://", "https://", "mailto:")


def heading_anchor(heading):
    """GitHub-style anchor: lowercase, spaces to dashes, strip punctuation."""
    anchor = heading.strip().lower()
    anchor = re.sub(r"[`*_]", "", anchor)
    anchor = re.sub(r"[^\w\- ]", "", anchor)
    return anchor.replace(" ", "-")


FENCE_RE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)


def anchors_in(path):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    # '#' lines inside fenced code blocks are not headings.
    text = FENCE_RE.sub("", text)
    anchors = set()
    seen = {}
    for heading in HEADING_RE.findall(text):
        anchor = heading_anchor(heading)
        # GitHub suffixes duplicate headings: second "Options" -> options-1.
        count = seen.get(anchor, 0)
        seen[anchor] = count + 1
        anchors.add(anchor if count == 0 else f"{anchor}-{count}")
    return anchors


def doc_files(root):
    files = []
    for name in ("README.md", "CHANGES.md", "ROADMAP.md"):
        path = os.path.join(root, name)
        if os.path.isfile(path):
            files.append(path)
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                files.append(os.path.join(docs, name))
    return files


def check(root):
    errors = []
    for doc in doc_files(root):
        with open(doc, encoding="utf-8") as f:
            text = f.read()
        rel_doc = os.path.relpath(doc, root)
        for target in LINK_RE.findall(text):
            if target.startswith(EXTERNAL):
                continue
            path_part, _, fragment = target.partition("#")
            if not path_part:  # pure in-page anchor
                if fragment and heading_anchor(fragment) not in anchors_in(doc):
                    errors.append(f"{rel_doc}: broken anchor '#{fragment}'")
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(doc), path_part))
            if not os.path.exists(resolved):
                errors.append(f"{rel_doc}: broken link '{target}'")
                continue
            if fragment and resolved.endswith(".md"):
                if heading_anchor(fragment) not in anchors_in(resolved):
                    errors.append(
                        f"{rel_doc}: broken anchor '{target}'")
    return errors


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    errors = check(root)
    for error in errors:
        print(error)
    if errors:
        sys.exit(f"{len(errors)} broken doc reference(s)")
    print(f"doc links OK ({len(doc_files(root))} files checked)")


if __name__ == "__main__":
    main()
