#!/usr/bin/env bash
# Tier-1 verify: the exact recipe CI and the ROADMAP use.  Run from the
# repo root (or anywhere — the script cd's to its own repo).
#
#   ./scripts/verify.sh                          # Release
#   BUILD_TYPE=Debug ./scripts/verify.sh
#   FSI_WERROR=ON ./scripts/verify.sh            # strict build, as CI runs it
#   FSI_SANITIZE=thread ./scripts/verify.sh      # TSan, as the tsan CI job
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_TYPE=${BUILD_TYPE:-Release}
BUILD_DIR=${BUILD_DIR:-build}

# Propagate the strictness/sanitizer knobs from the environment so a local
# run can reproduce any CI job exactly.  Always passed (defaulting to OFF):
# an unset variable must reset a previously-configured build dir, not
# silently inherit a sanitizer from the CMake cache.
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE="$BUILD_TYPE" \
  -DFSI_WERROR="${FSI_WERROR:-OFF}" \
  -DFSI_SANITIZE="${FSI_SANITIZE:-OFF}"
cmake --build "$BUILD_DIR" -j

# Planner calibration cache: the cost-model planner re-measures its
# machine constants (~100 ms) in every process that builds a default
# engine, which across a whole ctest run adds real minutes.  Measure once
# into a build artifact and point every test process at it
# (FSI_PLANNER_CALIBRATION, docs/PLANNER.md).  CI caches the file across
# runs of the same job flavor.  Opt out (e.g. to test the measurement
# path itself) with FSI_CALIBRATION_CACHE=off.
# Absolute path: ctest below runs from inside $BUILD_DIR, and the
# variable may outlive this script's working directory entirely.
CALIBRATION_FILE="$(cd "$BUILD_DIR" && pwd)/planner_calibration.json"
if [ "${FSI_CALIBRATION_CACHE:-on}" != "off" ] \
   && [ -x "$BUILD_DIR/examples/intersect_cli" ]; then
  if [ ! -s "$CALIBRATION_FILE" ]; then
    "$BUILD_DIR/examples/intersect_cli" --dump-calibration "$CALIBRATION_FILE"
  fi
  export FSI_PLANNER_CALIBRATION="$CALIBRATION_FILE"
  echo "planner calibration: $CALIBRATION_FILE"
fi

cd "$BUILD_DIR"
ctest --output-on-failure -j "$(nproc)"
