#!/usr/bin/env bash
# Tier-1 verify: the exact recipe CI and the ROADMAP use.  Run from the
# repo root (or anywhere — the script cd's to its own repo).
#
#   ./scripts/verify.sh            # Release
#   BUILD_TYPE=Debug ./scripts/verify.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_TYPE=${BUILD_TYPE:-Release}
BUILD_DIR=${BUILD_DIR:-build}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE="$BUILD_TYPE"
cmake --build "$BUILD_DIR" -j
cd "$BUILD_DIR"
ctest --output-on-failure -j
