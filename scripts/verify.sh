#!/usr/bin/env bash
# Tier-1 verify: the exact recipe CI and the ROADMAP use.  Run from the
# repo root (or anywhere — the script cd's to its own repo).
#
#   ./scripts/verify.sh                          # Release
#   BUILD_TYPE=Debug ./scripts/verify.sh
#   FSI_WERROR=ON ./scripts/verify.sh            # strict build, as CI runs it
#   FSI_SANITIZE=thread ./scripts/verify.sh      # TSan, as the tsan CI job
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_TYPE=${BUILD_TYPE:-Release}
BUILD_DIR=${BUILD_DIR:-build}

# Propagate the strictness/sanitizer knobs from the environment so a local
# run can reproduce any CI job exactly.  Always passed (defaulting to OFF):
# an unset variable must reset a previously-configured build dir, not
# silently inherit a sanitizer from the CMake cache.
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE="$BUILD_TYPE" \
  -DFSI_WERROR="${FSI_WERROR:-OFF}" \
  -DFSI_SANITIZE="${FSI_SANITIZE:-OFF}"
cmake --build "$BUILD_DIR" -j
cd "$BUILD_DIR"
ctest --output-on-failure -j "$(nproc)"
