// Fixed-width bit-packed array.
//
// The multi-resolution structure (Section 3.2.1 / Theorem 3.8) keeps the
// first(y, L^z) pointers as offsets relative to left(L^z), stored in
// O(log |L^z|) bits each — that is what makes the whole structure O(n)
// words.  This utility provides exactly that: an array of `count` unsigned
// fields of `field_bits` bits each, packed into 64-bit words.

#ifndef FSI_UTIL_PACKED_ARRAY_H_
#define FSI_UTIL_PACKED_ARRAY_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fsi {

class PackedArray {
 public:
  PackedArray() = default;

  /// Creates `count` zero-initialized fields of `field_bits` bits
  /// (1 <= field_bits <= 57; fields never straddle more than two words at
  /// that width, and we read/write via unaligned 64-bit windows).
  PackedArray(std::size_t count, int field_bits)
      : count_(count),
        bits_(field_bits),
        mask_((std::uint64_t{1} << field_bits) - 1),
        words_((count * static_cast<std::size_t>(field_bits) + 63) / 64 + 1,
               0) {
    assert(field_bits >= 1 && field_bits <= 57);
  }

  std::size_t size() const { return count_; }
  int field_bits() const { return bits_; }

  /// Maximum representable field value (also used as the "absent" sentinel
  /// by the multi-resolution structure).
  std::uint64_t max_value() const { return mask_; }

  std::uint64_t Get(std::size_t i) const {
    assert(i < count_);
    std::size_t bit = i * static_cast<std::size_t>(bits_);
    std::size_t word = bit >> 6;
    int shift = static_cast<int>(bit & 63);
    std::uint64_t lo = words_[word] >> shift;
    if (shift + bits_ > 64) {
      lo |= words_[word + 1] << (64 - shift);
    }
    return lo & mask_;
  }

  void Set(std::size_t i, std::uint64_t value) {
    assert(i < count_);
    assert(value <= mask_);
    std::size_t bit = i * static_cast<std::size_t>(bits_);
    std::size_t word = bit >> 6;
    int shift = static_cast<int>(bit & 63);
    words_[word] = (words_[word] & ~(mask_ << shift)) | (value << shift);
    if (shift + bits_ > 64) {
      int spill = shift + bits_ - 64;
      std::uint64_t hi_mask = (std::uint64_t{1} << spill) - 1;
      words_[word + 1] =
          (words_[word + 1] & ~hi_mask) | (value >> (64 - shift));
    }
  }

  /// Heap footprint in 64-bit words.
  std::size_t SizeInWords() const { return words_.size(); }

 private:
  std::size_t count_ = 0;
  int bits_ = 1;
  std::uint64_t mask_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace fsi

#endif  // FSI_UTIL_PACKED_ARRAY_H_
