// Bit-level primitives shared by every module.
//
// The paper's central device is the "word representation" of a set
// A ⊆ [w] = {0, ..., w-1}: a single machine word whose y-th bit is 1 iff
// y ∈ A (Section 3.1).  Intersection of two such sets is a bitwise AND, and
// the elements of A are recovered with the lowest-1-bit loop of footnote 1.
// This header implements those primitives plus the SWAR helpers used by the
// BPP baseline.

#ifndef FSI_UTIL_BITS_H_
#define FSI_UTIL_BITS_H_

#include <bit>
#include <cstdint>

namespace fsi {

/// Machine word width in bits.  The paper calls this `w`; all analysis and
/// all group-size constants (sqrt(w) = 8) assume 64-bit words.
inline constexpr int kWordBits = 64;

/// floor(sqrt(w)) — the fixed group width of Algorithm 1 and the expected
/// group size of Algorithms 3-5.
inline constexpr int kSqrtWordBits = 8;

/// Number of bits needed to address a position inside a word (log2 w).
inline constexpr int kLogWordBits = 6;

/// Word representation of a set over universe [64].
using Word = std::uint64_t;

/// Returns a word with only bit `y` set (y in [0, 64)).
constexpr Word WordBit(int y) { return Word{1} << y; }

/// Isolates the lowest set bit of `v` (paper footnote 1:
/// `((v - 1) XOR v) AND v`; equivalent to `v & -v`).
constexpr Word LowestBit(Word v) { return v & (~v + 1); }

/// Index of the lowest set bit.  Precondition: v != 0.
constexpr int LowestBitIndex(Word v) { return std::countr_zero(v); }

/// Number of set bits.
constexpr int PopCount(Word v) { return std::popcount(v); }

/// floor(log2(v)).  Precondition: v != 0.
constexpr int FloorLog2(std::uint64_t v) {
  return 63 - std::countl_zero(v);
}

/// ceil(log2(v)) for v >= 1 (CeilLog2(1) == 0).
constexpr int CeilLog2(std::uint64_t v) {
  return v <= 1 ? 0 : FloorLog2(v - 1) + 1;
}

/// Calls `fn(y)` for every set bit index y of `v`, lowest first — the
/// element-retrieval loop from footnote 1 of the paper.
template <typename Fn>
constexpr void ForEachBit(Word v, Fn&& fn) {
  while (v != 0) {
    fn(LowestBitIndex(v));
    v &= v - 1;  // clear lowest set bit
  }
}

// ---------------------------------------------------------------------------
// SWAR (SIMD-within-a-register) helpers for byte-packed signatures.
// Used by the simplified BPP baseline: k 8-bit signatures are packed into a
// word and a probe signature is matched against all of them with O(1) word
// operations.
// ---------------------------------------------------------------------------

inline constexpr Word kSwarLow = 0x0101010101010101ULL;
inline constexpr Word kSwarHigh = 0x8080808080808080ULL;

/// Replicates byte `b` into all 8 lanes of a word.
constexpr Word BroadcastByte(std::uint8_t b) { return kSwarLow * b; }

/// True iff any byte lane of `v` is zero (classic haszero trick).
constexpr bool HasZeroByte(Word v) {
  return ((v - kSwarLow) & ~v & kSwarHigh) != 0;
}

/// True iff any byte lane of `packed` equals `b`.
constexpr bool HasByte(Word packed, std::uint8_t b) {
  return HasZeroByte(packed ^ BroadcastByte(b));
}

}  // namespace fsi

#endif  // FSI_UTIL_BITS_H_
