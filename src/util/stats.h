// Small statistics accumulators used by the benchmark harness to report the
// mean / percentile rows the paper's figures and worst-case-latency table
// are built from.

#ifndef FSI_UTIL_STATS_H_
#define FSI_UTIL_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace fsi {

/// Accumulates samples and reports mean, min, max and percentiles.
class SampleStats {
 public:
  void Add(double v) { samples_.push_back(v); }

  std::size_t count() const { return samples_.size(); }

  double Mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (double v : samples_) sum += v;
    return sum / static_cast<double>(samples_.size());
  }

  double Min() const {
    return samples_.empty()
               ? 0.0
               : *std::min_element(samples_.begin(), samples_.end());
  }

  double Max() const {
    return samples_.empty()
               ? 0.0
               : *std::max_element(samples_.begin(), samples_.end());
  }

  /// p in [0, 1]; nearest-rank percentile.
  double Percentile(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    double rank = p * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<std::size_t>(std::floor(rank));
    auto hi = static_cast<std::size_t>(std::ceil(rank));
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
  }

  double StdDev() const {
    if (samples_.size() < 2) return 0.0;
    double mean = Mean();
    double acc = 0.0;
    for (double v : samples_) acc += (v - mean) * (v - mean);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
  }

 private:
  std::vector<double> samples_;
};

}  // namespace fsi

#endif  // FSI_UTIL_STATS_H_
