// Monotonic wall-clock timing for the benchmark harness and examples.

#ifndef FSI_UTIL_TIMER_H_
#define FSI_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace fsi {

/// A simple stopwatch over the steady (monotonic) clock.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in nanoseconds since construction or the last Reset().
  std::int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed time in fractional milliseconds.
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fsi

#endif  // FSI_UTIL_TIMER_H_
