// Deterministic pseudo-random number generation.
//
// Every randomized component of the library (hash-function families, the
// Feistel permutation, workload generators) is seeded explicitly so that
// experiments and tests are exactly reproducible.  We implement SplitMix64
// (for seeding / mixing) and xoshiro256** (general-purpose stream); both are
// public-domain algorithms by Blackman & Vigna.

#ifndef FSI_UTIL_RNG_H_
#define FSI_UTIL_RNG_H_

#include <cstdint>
#include <limits>

namespace fsi {

/// SplitMix64: a tiny, high-quality 64-bit mixer.  Useful both as a stream
/// generator and as a finalizer for seeding other generators.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mixing of a 64-bit value (one SplitMix64 step without the
/// golden-ratio increment).
constexpr std::uint64_t Mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256**: fast all-purpose generator with 256-bit state.
/// Satisfies the UniformRandomBitGenerator concept so it can be used with
/// <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) : s_{} {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() { return Next(); }

  constexpr std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift reduction
  /// (slightly biased for huge bounds; negligible for our use).
  constexpr std::uint64_t Below(std::uint64_t bound) {
    __extension__ using Uint128 = unsigned __int128;
    return static_cast<std::uint64_t>((static_cast<Uint128>(Next()) * bound) >>
                                      64);
  }

  /// Uniform double in [0, 1).
  constexpr double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace fsi

#endif  // FSI_UTIL_RNG_H_
