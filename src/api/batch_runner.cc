#include "api/batch_runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <latch>
#include <mutex>
#include <utility>

#include "api/expr.h"
#include "util/stats.h"
#include "util/timer.h"

namespace fsi {

BatchRunner::BatchRunner(Engine engine, BatchOptions options)
    : engine_(std::move(engine)),
      options_(options),
      pool_(options.num_threads) {}

std::vector<ElemList> BatchRunner::Materialize(
    std::span<const BatchQuery> queries) {
  std::vector<ElemList> results;
  Execute(queries, Sink::kMaterialize, &results, nullptr, nullptr);
  return results;
}

std::vector<std::size_t> BatchRunner::Count(
    std::span<const BatchQuery> queries) {
  std::vector<std::size_t> counts;
  Execute(queries, Sink::kCount, nullptr, &counts, nullptr);
  return counts;
}

std::size_t BatchRunner::Visit(
    std::span<const BatchQuery> queries,
    const std::function<void(std::size_t, std::span<const Elem>)>& visit) {
  Execute(queries, Sink::kVisit, nullptr, nullptr, &visit);
  return stats_.total_results;
}

std::vector<ElemList> BatchRunner::Materialize(std::span<const Expr> queries) {
  std::vector<ElemList> results;
  ExecuteExprs(queries, Sink::kMaterialize, &results, nullptr, nullptr);
  return results;
}

std::vector<std::size_t> BatchRunner::Count(std::span<const Expr> queries) {
  std::vector<std::size_t> counts;
  ExecuteExprs(queries, Sink::kCount, nullptr, &counts, nullptr);
  return counts;
}

std::size_t BatchRunner::Visit(
    std::span<const Expr> queries,
    const std::function<void(std::size_t, std::span<const Elem>)>& visit) {
  ExecuteExprs(queries, Sink::kVisit, nullptr, nullptr, &visit);
  return stats_.total_results;
}

void BatchRunner::Execute(
    std::span<const BatchQuery> queries, Sink sink,
    std::vector<ElemList>* results, std::vector<std::size_t>* counts,
    const std::function<void(std::size_t, std::span<const Elem>)>* visit) {
  // Build every query up front, on this thread: validation errors (empty
  // handles, cross-engine sets, arity overflow) throw here, before any
  // worker runs, with the all-or-nothing semantics of Engine::Query.
  std::vector<fsi::Query> built;
  built.reserve(queries.size());
  for (const BatchQuery& q : queries) {
    fsi::Query query = engine_.Query(q);
    if (!options_.ordered || sink == Sink::kCount) query.Unordered();
    query.Limit(options_.limit);
    built.push_back(std::move(query));
  }
  ExecuteBuilt(std::move(built), sink, results, counts, visit);
}

void BatchRunner::ExecuteExprs(
    std::span<const Expr> queries, Sink sink,
    std::vector<ElemList>* results, std::vector<std::size_t>* counts,
    const std::function<void(std::size_t, std::span<const Elem>)>* visit) {
  // Same serial build contract as the flat path: empty handles, foreign
  // leaves, and malformed trees throw here, and the optimizer runs once
  // per query before any worker starts.
  std::vector<fsi::Query> built;
  built.reserve(queries.size());
  for (const Expr& e : queries) {
    fsi::Query query = engine_.Query(e);
    if (!options_.ordered || sink == Sink::kCount) query.Unordered();
    query.Limit(options_.limit);
    built.push_back(std::move(query));
  }
  ExecuteBuilt(std::move(built), sink, results, counts, visit);
}

void BatchRunner::ExecuteBuilt(
    std::vector<fsi::Query> built, Sink sink,
    std::vector<ElemList>* results, std::vector<std::size_t>* counts,
    const std::function<void(std::size_t, std::span<const Elem>)>* visit) {
  const std::size_t n = built.size();

  stats_ = BatchStats{};
  stats_.num_queries = n;
  stats_.num_threads = pool_.num_threads();
  if (results != nullptr) results->assign(n, ElemList{});
  if (counts != nullptr) counts->assign(n, 0);
  if (n == 0) return;

  // Merged under `merge_mutex` by each task as it finishes.
  std::vector<double> wall_micros;
  wall_micros.reserve(n);
  std::exception_ptr first_error;
  std::mutex merge_mutex;

  std::atomic<std::size_t> cursor{0};
  const std::size_t num_tasks = std::min(pool_.num_threads(), n);
  std::latch done(static_cast<std::ptrdiff_t>(num_tasks));
  Timer batch_timer;

  auto submit_task = [&, sink] {
    pool_.Submit([&, sink] {
      // Everything except the final CountDown stays inside the try:
      // an exception escaping a pool task would terminate the process
      // (thread_pool.h), so user errors (a throwing visitor) and even a
      // bad_alloc in the merge are captured and rethrown on the caller.
      try {
        std::vector<double> local_micros;
        std::size_t local_scanned = 0;
        std::size_t local_results = 0;
        double local_predicted = 0.0;
        ElemList scratch;
        for (;;) {
          const std::size_t i =
              cursor.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) break;
          fsi::Query& query = built[i];
          ElemList* out =
              (sink == Sink::kMaterialize) ? &(*results)[i] : &scratch;
          const QueryStats qs = query.ExecuteInto(out);
          if (sink == Sink::kCount) (*counts)[i] = qs.result_size;
          if (sink == Sink::kVisit) {
            (*visit)(i, std::span<const Elem>(*out));
          }
          local_micros.push_back(qs.wall_micros);
          local_scanned += qs.elements_scanned;
          local_results += qs.result_size;
          local_predicted += qs.predicted_micros;
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        wall_micros.insert(wall_micros.end(), local_micros.begin(),
                           local_micros.end());
        stats_.elements_scanned += local_scanned;
        stats_.total_results += local_results;
        stats_.predicted_micros += local_predicted;
      } catch (...) {
        std::lock_guard<std::mutex> lock(merge_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      done.count_down();
    });
  };

  // If a Submit itself throws (allocation failure), the workers already
  // fanned out still reference this frame's locals — never unwind past
  // them: cancel the remaining work, balance the latch for the tasks
  // that were not submitted, and wait before rethrowing.
  std::size_t submitted = 0;
  try {
    for (; submitted < num_tasks; ++submitted) submit_task();
  } catch (...) {
    cursor.store(n, std::memory_order_relaxed);
    done.count_down(static_cast<std::ptrdiff_t>(num_tasks - submitted));
    done.wait();
    throw;
  }
  done.wait();
  stats_.wall_ms = batch_timer.ElapsedMillis();

  if (first_error) std::rethrow_exception(first_error);

  SampleStats per_query;
  for (double micros : wall_micros) per_query.Add(micros);
  stats_.p50_micros = per_query.Percentile(0.50);
  stats_.p95_micros = per_query.Percentile(0.95);
  stats_.p99_micros = per_query.Percentile(0.99);
  stats_.max_micros = per_query.Max();
  if (stats_.wall_ms > 0.0) {
    stats_.queries_per_second =
        static_cast<double>(n) / (stats_.wall_ms * 1e-3);
  }
}

}  // namespace fsi
