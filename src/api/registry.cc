#include "api/registry.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "api/planner.h"
#include "baseline/adaptive.h"
#include "baseline/baeza_yates.h"
#include "baseline/bpp.h"
#include "baseline/compressed_baselines.h"
#include "baseline/hash_intersect.h"
#include "baseline/lookup.h"
#include "baseline/merge.h"
#include "baseline/skip_list_intersect.h"
#include "baseline/small_adaptive.h"
#include "baseline/svs.h"
#include "core/compressed_scan.h"
#include "core/int_group.h"
#include "core/intersector.h"
#include "core/ran_group.h"
#include "core/ran_group_scan.h"
#include "simd/intersect_kernels.h"

namespace fsi {

namespace {

struct ParsedSpec {
  std::string name;
  std::vector<std::pair<std::string, std::string>> kv;
};

ParsedSpec ParseSpec(std::string_view spec) {
  ParsedSpec parsed;
  std::string_view::size_type colon = spec.find(':');
  parsed.name = std::string(spec.substr(0, colon));
  if (parsed.name.empty()) {
    throw std::invalid_argument("AlgorithmRegistry: empty algorithm name");
  }
  if (colon == std::string_view::npos) return parsed;
  std::string_view rest = spec.substr(colon + 1);
  while (!rest.empty()) {
    std::string_view::size_type comma = rest.find(',');
    std::string_view item = rest.substr(0, comma);
    rest = (comma == std::string_view::npos) ? std::string_view()
                                             : rest.substr(comma + 1);
    if (item.empty()) continue;
    std::string_view::size_type eq = item.find('=');
    std::string_view key = item.substr(0, eq);
    // A bare key is shorthand for key=1 (flag style: "memoize").
    std::string_view value =
        (eq == std::string_view::npos) ? std::string_view("1")
                                       : item.substr(eq + 1);
    if (key.empty()) {
      throw std::invalid_argument(parsed.name +
                                  ": empty option key in spec '" +
                                  std::string(spec) + "'");
    }
    parsed.kv.emplace_back(std::string(key), std::string(value));
  }
  return parsed;
}

std::uint64_t ParseUint64(const AlgorithmOptions& /*ctx*/,
                          std::string_view key, std::string_view value,
                          std::string_view algorithm) {
  std::string buf(value);
  char* end = nullptr;
  unsigned long long v = std::strtoull(buf.c_str(), &end, 0);
  if (end == buf.c_str() || *end != '\0') {
    throw std::invalid_argument(std::string(algorithm) + ": option '" +
                                std::string(key) + "' expects an integer, got '" +
                                buf + "'");
  }
  return static_cast<std::uint64_t>(v);
}

/// Consumes the shared "simd" option key (auto|off; also on/1/scalar/0),
/// defaulting to the CPU-dispatched kernels.
simd::Mode TakeSimd(AlgorithmOptions& o) {
  std::optional<std::string_view> raw = o.Take("simd");
  if (!raw) return simd::Mode::kAuto;
  try {
    return simd::ParseMode(*raw);
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument(std::string(o.algorithm()) +
                                ": option 'simd' expects auto|off, got '" +
                                std::string(*raw) + "'");
  }
}

}  // namespace

void AlgorithmOptions::BadValue(std::string_view key, std::string_view value,
                                std::string_view expected) const {
  throw std::invalid_argument(algorithm_ + ": option '" + std::string(key) +
                              "' expects " + std::string(expected) +
                              ", got '" + std::string(value) + "'");
}

std::optional<std::string_view> AlgorithmOptions::Take(std::string_view key) {
  for (std::size_t i = 0; i < kv_.size(); ++i) {
    if (kv_[i].first == key) {
      consumed_[i] = true;
      return std::string_view(kv_[i].second);
    }
  }
  return std::nullopt;
}

int AlgorithmOptions::TakeInt(std::string_view key, int def) {
  std::optional<std::string_view> raw = Take(key);
  if (!raw) return def;
  std::string buf(*raw);
  char* end = nullptr;
  long v = std::strtol(buf.c_str(), &end, 0);
  if (end == buf.c_str() || *end != '\0') BadValue(key, *raw, "an integer");
  return static_cast<int>(v);
}

std::size_t AlgorithmOptions::TakeSize(std::string_view key, std::size_t def) {
  std::optional<std::string_view> raw = Take(key);
  if (!raw) return def;
  std::string buf(*raw);
  char* end = nullptr;
  unsigned long long v = std::strtoull(buf.c_str(), &end, 0);
  if (end == buf.c_str() || *end != '\0' || buf[0] == '-') {
    BadValue(key, *raw, "a non-negative integer");
  }
  return static_cast<std::size_t>(v);
}

double AlgorithmOptions::TakeDouble(std::string_view key, double def) {
  std::optional<std::string_view> raw = Take(key);
  if (!raw) return def;
  std::string buf(*raw);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || *end != '\0') BadValue(key, *raw, "a number");
  return v;
}

bool AlgorithmOptions::TakeBool(std::string_view key, bool def) {
  std::optional<std::string_view> raw = Take(key);
  if (!raw) return def;
  std::string_view v = *raw;
  if (v == "1" || v == "true" || v == "on" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "off" || v == "no") return false;
  BadValue(key, v, "a boolean (0/1/true/false/on/off)");
}

std::vector<std::string_view> AlgorithmOptions::UnconsumedKeys() const {
  std::vector<std::string_view> keys;
  for (std::size_t i = 0; i < kv_.size(); ++i) {
    if (!consumed_[i]) keys.push_back(kv_[i].first);
  }
  return keys;
}

AlgorithmRegistry& AlgorithmRegistry::Global() {
  static AlgorithmRegistry* registry = [] {
    auto* r = new AlgorithmRegistry();

    // --- The Section 4 cast (uncompressed), in the historical listing
    // order of UncompressedAlgorithmNames(). -------------------------------
    r->Register({.name = "Merge",
                 .options_help = "simd=auto|off",
                 .cost = &MergeIntersection::StepCost,
                 .make = [](AlgorithmOptions& o) {
                   return std::make_unique<MergeIntersection>(TakeSimd(o));
                 }});
    r->Register({.name = "SkipList",
                 .make = [](AlgorithmOptions& o) {
                   return std::make_unique<SkipListIntersection>(o.seed());
                 }});
    r->Register({.name = "Hash",
                 .make = [](AlgorithmOptions& o) {
                   return std::make_unique<HashIntersection>(o.seed());
                 }});
    r->Register({.name = "BPP",
                 .max_query_sets = 2,
                 .make = [](AlgorithmOptions& o) {
                   return std::make_unique<BppIntersection>(o.seed());
                 }});
    r->Register({.name = "Lookup",
                 .options_help = "bucket=<power of two>",
                 .make = [](AlgorithmOptions& o) {
                   return std::make_unique<LookupIntersection>(
                       o.TakeInt("bucket", 32));
                 }});
    r->Register({.name = "SvS",
                 .options_help = "simd=auto|off",
                 .cost = &SvsIntersection::StepCost,
                 .make = [](AlgorithmOptions& o) {
                   return std::make_unique<SvsIntersection>(TakeSimd(o));
                 }});
    r->Register({.name = "Adaptive",
                 .make = [](AlgorithmOptions&) {
                   return std::make_unique<AdaptiveIntersection>();
                 }});
    r->Register({.name = "BaezaYates",
                 .options_help = "simd=auto|off",
                 .make = [](AlgorithmOptions& o) {
                   return std::make_unique<BaezaYatesIntersection>(TakeSimd(o));
                 }});
    r->Register({.name = "SmallAdaptive",
                 .make = [](AlgorithmOptions&) {
                   return std::make_unique<SmallAdaptiveIntersection>();
                 }});
    r->Register({.name = "IntGroup",
                 .max_query_sets = 2,
                 .options_help = "s=<group size>,simd=auto|off",
                 .make = [](AlgorithmOptions& o) {
                   IntGroupIntersection::Options opts;
                   opts.seed = o.seed();
                   opts.group_size = o.TakeSize("s", opts.group_size);
                   opts.simd = TakeSimd(o);
                   return std::make_unique<IntGroupIntersection>(opts);
                 }});
    r->Register({.name = "RanGroup",
                 .options_help = "two_set_optimal=<bool>,single_resolution=<bool>",
                 .make = [](AlgorithmOptions& o) {
                   RanGroupIntersection::Options opts;
                   opts.seed = o.seed();
                   opts.two_set_optimal =
                       o.TakeBool("two_set_optimal", opts.two_set_optimal);
                   opts.single_resolution =
                       o.TakeBool("single_resolution", opts.single_resolution);
                   return std::make_unique<RanGroupIntersection>(opts);
                 }});
    auto make_scan = [](AlgorithmOptions& o, int default_m) {
      RanGroupScanIntersection::Options opts;
      opts.seed = o.seed();
      opts.m = o.TakeInt("m", default_m);
      opts.group_width = o.TakeSize("w", opts.group_width);
      opts.memoize = o.TakeBool("memoize", opts.memoize);
      opts.simd = TakeSimd(o);
      return std::make_unique<RanGroupScanIntersection>(opts);
    };
    r->Register({.name = "RanGroupScan",
                 .options_help =
                     "m=<images>,w=<group width>,memoize=<bool>,simd=auto|off",
                 .cost = &RanGroupScanIntersection::StepCost,
                 .make = [make_scan](AlgorithmOptions& o) {
                   return make_scan(o, 4);
                 }});
    r->Register({.name = "RanGroupScan2",
                 .options_help =
                     "m=<images>,w=<group width>,memoize=<bool>,simd=auto|off",
                 .hidden = true,  // alias: RanGroupScan with m = 2
                 .cost = &RanGroupScanIntersection::StepCost,
                 .make = [make_scan](AlgorithmOptions& o) {
                   return make_scan(o, 2);
                 }});
    r->Register({.name = "HashBin",
                 .cost = &HashBinIntersection::StepCost,
                 .make = [](AlgorithmOptions& o) {
                   HashBinIntersection::Options opts;
                   opts.seed = o.seed();
                   return std::make_unique<HashBinIntersection>(opts);
                 }});
    r->Register({.name = "Hybrid",
                 .options_help =
                     "skew_threshold=<ratio>,m=<images>,w=<group width>,"
                     "memoize=<bool>,simd=auto|off",
                 .cost = &HybridIntersection::StepCost,
                 .make = [](AlgorithmOptions& o) {
                   HybridIntersection::Options opts;
                   opts.scan.seed = o.seed();
                   opts.scan.m = o.TakeInt("m", opts.scan.m);
                   opts.scan.group_width =
                       o.TakeSize("w", opts.scan.group_width);
                   opts.scan.memoize = o.TakeBool("memoize", opts.scan.memoize);
                   opts.scan.simd = TakeSimd(o);
                   opts.skew_threshold =
                       o.TakeDouble("skew_threshold", opts.skew_threshold);
                   return std::make_unique<HybridIntersection>(opts);
                 }});

    // --- The cost-model planner (api/planner.h): the zero-config default
    // path of fsi::Engine, also reachable as the spec "Planner" or the
    // hidden alias "auto". ------------------------------------------------
    auto make_planner = [](AlgorithmOptions& o) {
      PlannerAlgorithm::Options opts;
      opts.scan.seed = o.seed();
      opts.scan.m = o.TakeInt("m", opts.scan.m);
      opts.scan.group_width = o.TakeSize("w", opts.scan.group_width);
      opts.scan.simd = TakeSimd(o);
      opts.calibration = o.TakeBool("calibration", opts.calibration);
      return std::make_unique<PlannerAlgorithm>(opts);
    };
    r->Register({.name = "Planner",
                 .options_help =
                     "calibration=on|off,m=<images>,w=<group width>,"
                     "simd=auto|off",
                 .make = make_planner});
    r->Register({.name = "auto",
                 .options_help =
                     "calibration=on|off,m=<images>,w=<group width>,"
                     "simd=auto|off",
                 .hidden = true,  // alias for "Planner"
                 .make = make_planner});

    // --- The Section 4.1 cast (compressed structures). --------------------
    r->Register({.name = "Merge_Gamma",
                 .compressed = true,
                 .cost = &CompressedMergeIntersection::StepCost,
                 .make = [](AlgorithmOptions&) {
                   return std::make_unique<CompressedMergeIntersection>(
                       EliasCodec::kGamma);
                 }});
    r->Register({.name = "Merge_Delta",
                 .compressed = true,
                 .cost = &CompressedMergeIntersection::StepCost,
                 .make = [](AlgorithmOptions&) {
                   return std::make_unique<CompressedMergeIntersection>(
                       EliasCodec::kDelta);
                 }});
    r->Register({.name = "Lookup_Gamma",
                 .compressed = true,
                 .cost = &CompressedLookupIntersection::StepCost,
                 .make = [](AlgorithmOptions&) {
                   return std::make_unique<CompressedLookupIntersection>(
                       EliasCodec::kGamma);
                 }});
    r->Register({.name = "Lookup_Delta",
                 .compressed = true,
                 .cost = &CompressedLookupIntersection::StepCost,
                 .make = [](AlgorithmOptions&) {
                   return std::make_unique<CompressedLookupIntersection>(
                       EliasCodec::kDelta);
                 }});
    auto make_compressed_scan = [](AlgorithmOptions& o, ScanCodec codec) {
      CompressedScanIntersection::Options opts;
      opts.seed = o.seed();
      opts.codec = codec;
      opts.m = o.TakeInt("m", opts.m);
      opts.simd = TakeSimd(o);
      return std::make_unique<CompressedScanIntersection>(opts);
    };
    r->Register({.name = "RanGroupScan_Lowbits",
                 .compressed = true,
                 .options_help = "m=<images>,simd=auto|off",
                 .cost = &CompressedScanIntersection::StepCost,
                 .make = [make_compressed_scan](AlgorithmOptions& o) {
                   return make_compressed_scan(o, ScanCodec::kLowbits);
                 }});
    r->Register({.name = "RanGroupScan_Gamma",
                 .compressed = true,
                 .options_help = "m=<images>,simd=auto|off",
                 .cost = &CompressedScanIntersection::StepCost,
                 .make = [make_compressed_scan](AlgorithmOptions& o) {
                   return make_compressed_scan(o, ScanCodec::kGamma);
                 }});
    r->Register({.name = "RanGroupScan_Delta",
                 .compressed = true,
                 .options_help = "m=<images>,simd=auto|off",
                 .cost = &CompressedScanIntersection::StepCost,
                 .make = [make_compressed_scan](AlgorithmOptions& o) {
                   return make_compressed_scan(o, ScanCodec::kDelta);
                 }});
    return r;
  }();
  return *registry;
}

void AlgorithmRegistry::Register(AlgorithmDescriptor descriptor) {
  if (descriptor.name.empty()) {
    throw std::invalid_argument("AlgorithmRegistry: descriptor needs a name");
  }
  if (!descriptor.make) {
    throw std::invalid_argument("AlgorithmRegistry: descriptor '" +
                                descriptor.name + "' needs a factory");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (index_.contains(std::string_view(descriptor.name))) {
    throw std::invalid_argument("AlgorithmRegistry: duplicate algorithm '" +
                                descriptor.name + "'");
  }
  descriptors_.push_back(std::move(descriptor));
  const AlgorithmDescriptor& stored = descriptors_.back();
  index_.emplace(std::string_view(stored.name), &stored);
}

const AlgorithmDescriptor* AlgorithmRegistry::Find(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : it->second;
}

std::unique_ptr<IntersectionAlgorithm> AlgorithmRegistry::Create(
    std::string_view spec, std::uint64_t seed) const {
  ParsedSpec parsed = ParseSpec(spec);
  const AlgorithmDescriptor* descriptor = Find(parsed.name);
  if (descriptor == nullptr) {
    throw std::invalid_argument(
        "AlgorithmRegistry: unknown algorithm '" + parsed.name +
        "' (run intersect_cli --list for the registered names)");
  }
  AlgorithmOptions options(parsed.name, seed, std::move(parsed.kv));
  if (std::optional<std::string_view> s = options.Take("seed")) {
    options.seed_ = ParseUint64(options, "seed", *s, parsed.name);
  }
  std::unique_ptr<IntersectionAlgorithm> algorithm = descriptor->make(options);
  std::vector<std::string_view> leftover = options.UnconsumedKeys();
  if (!leftover.empty()) {
    std::string message = parsed.name + ": unknown option '" +
                          std::string(leftover.front()) + "'";
    message += descriptor->options_help.empty()
                   ? " (this algorithm takes only 'seed')"
                   : " (supported: seed=<int>," + descriptor->options_help +
                         ")";
    throw std::invalid_argument(message);
  }
  return algorithm;
}

std::vector<std::string_view> AlgorithmRegistry::Names(
    bool include_hidden) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string_view> names;
  names.reserve(descriptors_.size());
  for (const AlgorithmDescriptor& d : descriptors_) {
    if (d.hidden && !include_hidden) continue;
    names.emplace_back(d.name);
  }
  return names;
}

std::vector<std::string_view> AlgorithmRegistry::Names(
    bool compressed, bool include_hidden) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string_view> names;
  for (const AlgorithmDescriptor& d : descriptors_) {
    if (d.compressed != compressed) continue;
    if (d.hidden && !include_hidden) continue;
    names.emplace_back(d.name);
  }
  return names;
}

std::vector<const AlgorithmDescriptor*> AlgorithmRegistry::Descriptors(
    bool include_hidden) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const AlgorithmDescriptor*> out;
  out.reserve(descriptors_.size());
  for (const AlgorithmDescriptor& d : descriptors_) {
    if (d.hidden && !include_hidden) continue;
    out.push_back(&d);
  }
  return out;
}

}  // namespace fsi
