#include "api/thread_pool.h"

#include <stdexcept>
#include <utility>

namespace fsi {

std::size_t ThreadPool::DefaultConcurrency() {
  std::size_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultConcurrency();
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      throw std::runtime_error("ThreadPool: Submit after Shutdown");
    }
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      // Drain-before-exit: only stop once the queue is empty, so every
      // task submitted before Shutdown() still runs.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace fsi
