// A fixed-size worker pool — the execution substrate of fsi::BatchRunner.
//
// Deliberately minimal: a mutex-protected FIFO drained by N workers parked
// on one condition variable.  No work stealing, no priorities, no futures —
// the batch layer partitions its own work (an atomic query cursor), so the
// pool only ever holds a handful of long-running tasks and a lock-free
// deque would buy nothing.  What *is* guaranteed:
//
//  * Graceful shutdown: Shutdown() (and the destructor) stops accepting new
//    tasks, drains every task already submitted, then joins the workers —
//    submitted work is never silently dropped.
//  * Submit() after shutdown is a checked std::runtime_error.
//  * Tasks may not touch the pool that runs them (no recursive Submit) —
//    the one restriction, checked only by deadlock.

#ifndef FSI_API_THREAD_POOL_H_
#define FSI_API_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fsi {

/// A fixed set of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  /// Starts `num_threads` workers; 0 means DefaultConcurrency().
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Equivalent to Shutdown(): drains pending tasks, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task.  Throws std::runtime_error after Shutdown().
  /// Tasks must not exit via exception — one that throws escapes the
  /// worker thread and terminates the process (std::terminate); catch
  /// inside the task and hand the error back yourself, as BatchRunner
  /// does with its first-exception slot.
  void Submit(std::function<void()> task);

  /// Stops accepting tasks, runs everything already queued to completion,
  /// and joins the workers.  Idempotent; safe to call before destruction.
  void Shutdown();

  /// Number of worker threads.
  std::size_t num_threads() const { return workers_.size(); }

  /// std::thread::hardware_concurrency(), clamped to at least 1 (the
  /// standard permits it to return 0 when undeterminable).
  static std::size_t DefaultConcurrency();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;
};

}  // namespace fsi

#endif  // FSI_API_THREAD_POOL_H_
