// The cost-model query planner: fsi::PlannerAlgorithm.
//
// The paper's Figure 7 shows that no single intersection algorithm wins
// everywhere — RanGroupScan took 61.6% of the real-workload queries,
// RanGroup 16%, HashBin 7.7%, and the competitors the rest.  The Hybrid
// facade (core/intersector.h) already chooses between two of them online;
// the planner generalizes that choice to the whole portfolio, the way
// database systems pick operators from a cost model:
//
//   fsi::Engine engine;                       // zero-config: the planner
//   fsi::PreparedSet a = engine.Prepare(...); // builds plain + scan forms
//   fsi::PreparedSet b = engine.Prepare(...);
//   fsi::ElemList r = engine.Query({&a, &b}).Materialize();
//   fsi::QueryPlan plan = engine.Query({&a, &b}).Explain();
//
// What the planner does, per query:
//  (a) orders the k sets smallest-first (optimal under the uniform-density
//      model: the candidate set shrinks by the same expected factor
//      n_j / U at every later step regardless of order, so starting from
//      the smallest candidate minimizes every step's work) and estimates
//      each intermediate result size from the universe density
//      (est *= n_j / U — the "density correction" applied to every
//      cost formula after the first step);
//  (b) selects the algorithm per intersection step from the registry
//      descriptors that publish a cost hook (core/cost.h), comparing the
//      paper's bounds — O(n1+n2) merge, O(n1 log(n2/n1)) galloping/HashBin
//      (Theorem 3.11), O(mn/sqrt(w) + r) RanGroupScan (Theorem 3.9) —
//      evaluated with per-machine constants;
//  (c) calibrates those constants at startup with a microbenchmark sweep
//      (PlannerCalibration::Measure), overridable with
//      FSI_PLANNER_CALIBRATION=off (pins the built-in defaults, so CI is
//      deterministic) or FSI_PLANNER_CALIBRATION=<file.json> (loads a
//      serialized calibration; see ToJson/FromJson).
//
// Execution: a PreparedSet of a planner engine holds *two* structures —
// the PlainSet sorted array (serves Merge and SvS) and the RanGroupScan
// block layout (serves RanGroupScan, and HashBin via its globally-sorted
// g-value array, exactly as Hybrid does).  When every step picks the same
// algorithm the query runs as one native k-way call; mixed plans run
// step-by-step, later steps intersecting the sorted intermediate result
// against the next PlainSet by merge or galloping.
//
// The registry spec is "Planner" (alias "auto"); fsi::Engine's default
// constructor uses it, making the planner the zero-config path.

#ifndef FSI_API_PLANNER_H_
#define FSI_API_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/registry.h"
#include "baseline/merge.h"
#include "baseline/plain_set.h"
#include "baseline/svs.h"
#include "core/algorithm.h"
#include "core/compressed_scan.h"
#include "core/cost.h"
#include "core/ran_group_scan.h"

namespace fsi {

/// The calibrated machine constants plus where they came from.
struct PlannerCalibration {
  CostConstants constants;
  /// "default" (FSI_PLANNER_CALIBRATION=off or calibration=off),
  /// "measured" (the startup microbenchmark sweep) or "json" (loaded).
  std::string source = "default";

  /// Serializes the constants to a single-object JSON document.
  std::string ToJson() const;

  /// Parses a document produced by ToJson (unknown keys are ignored;
  /// missing or malformed constants throw std::invalid_argument).
  static PlannerCalibration FromJson(std::string_view json);

  /// The microbenchmark sweep: times each portfolio algorithm on
  /// synthetic workloads shaped to isolate its constant (sparse and
  /// dense balanced pairs for merge_ns / scan_ns / scan_result_ns, a
  /// 16x-skewed pair for gallop_ns / hashbin_ns), all sized past the L2
  /// cache to match the memory-resident posting-list regime.
  /// Deterministic inputs; ~100 ms, run once per process (Process()).
  static PlannerCalibration Measure(std::uint64_t seed = 0x5ca1ab1eULL);

  /// The process-wide calibration, resolved once from the environment:
  /// FSI_PLANNER_CALIBRATION=off -> built-in defaults, =<path> -> FromJson
  /// of that file's contents, unset/on -> Measure().  Cached after the
  /// first call; throws std::invalid_argument if a file fails to load.
  static const PlannerCalibration& Process();
};

/// One step of a query plan.  For the first step both sizes are exact; for
/// later steps `left_size` is the density-corrected estimate of the
/// intermediate result (`left_estimated` is then true).
struct PlanStep {
  /// Registry name of the chosen algorithm for this step.
  std::string algorithm;
  std::size_t left_size = 0;
  std::size_t right_size = 0;
  bool left_estimated = false;
  /// Estimated result size of this step.
  double est_result = 0.0;
  /// Predicted cost of this step, microseconds.
  double predicted_micros = 0.0;
};

/// The chosen plan for one multi-set query, returned by Query::Explain().
struct QueryPlan {
  /// Input positions in execution order (sorted by set size ascending).
  std::vector<std::size_t> order;
  /// One entry per pairwise step (k-1 entries for a k-set query; empty for
  /// k <= 1 or when an input set is empty).
  std::vector<PlanStep> steps;
  /// True when every step chose the same algorithm and the query executes
  /// as one native k-way call on the prepared structures.
  bool uniform = true;
  /// Sum of the step predictions, microseconds (the value mirrored into
  /// QueryStats::predicted_micros).
  double predicted_micros = 0.0;
  /// Estimated final result size.
  double est_result = 0.0;
  /// True when the plan came from the planner; false for the single-step
  /// pseudo-plan synthesized for an explicit-spec engine.
  bool planned = false;
  /// How many of the query's inputs hold the block-compressed
  /// representation (EngineOptions::space_budget_bytes) — the Explain()
  /// evidence for the space-budget dial.  0 for all-uncompressed queries.
  std::size_t compressed_inputs = 0;
  /// Expression queries only (Engine::Query(const Expr&)): the rendered
  /// expression tree with per-node cardinality estimates and algorithm
  /// annotations (api/expr.h).  Empty for flat conjunctive plans.
  std::string tree;

  /// Human-readable rendering (the intersect_cli --explain output).
  std::string ToString() const;
};

/// The composite preprocessed form of one set under the planner.  Two
/// representations exist behind this one type:
///  - uncompressed (the default): the PlainSet sorted array plus the
///    RanGroupScan block structure (`has_plain()` is true);
///  - compressed (picked by Engine's space-budget dial): a single
///    CompressedScanSet block stream — no sorted array, ~4x smaller.
/// Callers that need raw elements must check `has_plain()` first; the
/// planner decodes compressed inputs on demand.
class PlannedSet : public PreprocessedSet {
 public:
  PlannedSet(std::unique_ptr<PreprocessedSet> plain,
             std::unique_ptr<PreprocessedSet> scan)
      : plain_(std::move(plain)), scan_(std::move(scan)) {}

  /// The compressed representation (space-budget dial).
  explicit PlannedSet(std::unique_ptr<CompressedScanSet> cscan)
      : cscan_(std::move(cscan)) {}

  std::size_t size() const override {
    return plain_ ? plain_->size() : cscan_->size();
  }
  std::size_t SizeInWords() const override {
    return plain_ ? plain_->SizeInWords() + scan_->SizeInWords()
                  : cscan_->SizeInWords();
  }
  std::uint64_t NumGroups() const override {
    return plain_ ? scan_->NumGroups() : cscan_->NumGroups();
  }

  /// True for the uncompressed two-structure representation; false when
  /// this set holds only the compressed block stream.
  bool has_plain() const { return plain_ != nullptr; }

  const PreprocessedSet* plain() const { return plain_.get(); }
  const PreprocessedSet* scan() const { return scan_.get(); }
  const CompressedScanSet* cscan() const { return cscan_.get(); }
  /// The sorted raw elements (the PlainSet view).  Only valid when
  /// has_plain(); compressed sets must be decoded instead.
  std::span<const Elem> elems() const {
    return static_cast<const PlainSet*>(plain_.get())->elems();
  }
  /// The largest element, available for both representations (drives the
  /// planner's universe estimate without decoding).
  Elem max_elem() const {
    if (!plain_) return cscan_->max_elem();
    std::span<const Elem> e = elems();
    return e.empty() ? 0 : e.back();
  }

  /// Appends both component structures to `payload` (kind kPlanned: the
  /// PlainSet's elems ref plus the ScanSet's three refs and t/m).
  void WriteFlat(storage::PayloadWriter& payload,
                 storage::SetRecord& record) const {
    static_cast<const PlainSet*>(plain_.get())->WriteFlat(payload, record);
    static_cast<const ScanSet*>(scan_.get())->WriteFlat(payload, record);
    record.kind = static_cast<std::uint32_t>(storage::SetKind::kPlanned);
  }

  /// Reconstructs a PlannedSet whose spans alias `payload` (zero-copy;
  /// the backing bytes must outlive it).
  static std::unique_ptr<PlannedSet> ViewFlat(
      std::span<const std::byte> payload, const storage::SetRecord& record) {
    return std::make_unique<PlannedSet>(PlainSet::ViewFlat(payload, record),
                                        ScanSet::ViewFlat(payload, record));
  }

 private:
  std::unique_ptr<PreprocessedSet> plain_;
  std::unique_ptr<PreprocessedSet> scan_;
  /// Compressed representation; mutually exclusive with plain_/scan_.
  std::unique_ptr<CompressedScanSet> cscan_;
};

/// The planner, packaged as a registry algorithm ("Planner", alias
/// "auto") so every Engine/BatchRunner/InvertedIndex feature works
/// unchanged on top of it.  Thread-compatible like every algorithm: a
/// const instance may be shared across threads.
class PlannerAlgorithm : public IntersectionAlgorithm {
 public:
  struct Options {
    /// Options of the internal RanGroupScan instance (seed, m, group
    /// width, simd mode); the seed also feeds the HashBin g-value path,
    /// which shares the scan structure's permutation.
    RanGroupScanIntersection::Options scan;
    /// Machine constants; when unset, PlannerCalibration::Process() (the
    /// env-governed startup calibration) decides.
    std::optional<CostConstants> constants;
    /// false pins the built-in CostConstants defaults regardless of the
    /// environment (registry option "calibration=off").
    bool calibration = true;
  };

  PlannerAlgorithm() : PlannerAlgorithm(Options()) {}
  explicit PlannerAlgorithm(const Options& options);

  std::string_view name() const override { return "Planner"; }

  std::unique_ptr<PreprocessedSet> Preprocess(
      std::span<const Elem> set) const override;

  /// Builds the compressed representation of one set (the space-budget
  /// dial's long-tail choice): a PlannedSet holding only a Lowbits
  /// CompressedScanSet — ~4x smaller than Preprocess's two structures,
  /// decoded block-by-block at query time through the SIMD kernels.
  std::unique_ptr<PreprocessedSet> PreprocessCompressed(
      std::span<const Elem> set) const;

  void Intersect(std::span<const PreprocessedSet* const> sets,
                 ElemList* out) const override;

  void IntersectUnordered(std::span<const PreprocessedSet* const> sets,
                          ElemList* out) const override;

  /// Plans a query without executing it (every pointer must come from this
  /// instance's Preprocess).  Pure and cheap — a few float operations per
  /// candidate per step.
  QueryPlan Plan(std::span<const PreprocessedSet* const> sets) const;

  /// Executes a plan previously produced by Plan() over the *same* sets —
  /// what fsi::Query uses so each query is planned exactly once (the raw
  /// Intersect entry points plan internally).
  void ExecutePlan(std::span<const PreprocessedSet* const> sets,
                   const QueryPlan& plan, bool ordered, ElemList* out) const;

  /// The machine constants this instance plans with.
  const CostConstants& constants() const { return constants_; }
  /// The internal RanGroupScan instance whose permutation every
  /// PlannedSet's scan structure shares — the t-of-k threshold fast path
  /// (api/expr.h, core/threshold.h) count-merges through it.
  const RanGroupScanIntersection& scan_algorithm() const { return scan_; }
  /// The internal compressed-scan instance behind PreprocessCompressed
  /// (same seed-derived permutation as scan_algorithm(), m = 1, Lowbits).
  const CompressedScanIntersection& compressed_algorithm() const {
    return cscan_;
  }
  /// Where the constants came from ("default", "measured", "json",
  /// "explicit" or "snapshot").
  std::string_view calibration_source() const { return calibration_source_; }

  /// Replaces the machine constants after construction — the snapshot
  /// load path, which constructs with calibration=off (skipping the
  /// ~100 ms startup measurement) and then installs the constants stamped
  /// into the snapshot.  Not thread-safe: call before the instance is
  /// shared.
  void OverrideConstants(const CostConstants& constants, std::string source) {
    constants_ = constants;
    calibration_source_ = std::move(source);
  }

 private:
  /// Decodes a compressed PlannedSet to its sorted raw elements (the
  /// mixed-plan and k==1 paths).
  void DecodeCompressed(const PlannedSet& set, ElemList* out) const;

  CostConstants constants_;
  std::string calibration_source_;
  MergeIntersection merge_;
  SvsIntersection svs_;
  RanGroupScanIntersection scan_;
  CompressedScanIntersection cscan_;
  /// Kernel table for the mixed-chain merge/gallop steps.
  const simd::Kernels* kernels_;
  /// Registry descriptors of the executable portfolio (cost hook present),
  /// resolved once at construction: Merge, SvS, RanGroupScan, HashBin.
  std::vector<const AlgorithmDescriptor*> candidates_;
};

/// Plans `sets` under `algorithm`: the full cost-model plan when the
/// algorithm is a PlannerAlgorithm, otherwise a single-entry pseudo-plan
/// carrying the algorithm's own cost prediction when its registry
/// descriptor publishes a hook (predicted_micros == 0 when it does not).
/// This is what Query::Explain() and QueryStats::predicted_micros use.
QueryPlan PlanQuery(const IntersectionAlgorithm& algorithm,
                    std::span<const PreprocessedSet* const> sets);

/// The explicit-spec pseudo-plan with the registry lookup pre-resolved:
/// `hook` is the descriptor's cost hook (may be null).  The Engine caches
/// the hook at construction and calls this per query, so query building
/// never takes the registry mutex.
QueryPlan PlanExplicit(const IntersectionAlgorithm& algorithm,
                       std::span<const PreprocessedSet* const> sets,
                       StepCostFn hook);

}  // namespace fsi

#endif  // FSI_API_PLANNER_H_
