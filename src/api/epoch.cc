#include "api/epoch.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace fsi {

// ---------------------------------------------------------------------------
// EpochManager
//
// Memory-ordering sketch (all epoch traffic is seq_cst; the proof only
// needs the release-sequence rule, but seq_cst keeps the Dekker-style
// pin-vs-scan race obviously sound and costs nothing off the hot path):
//
//   writer:  publish new state (release)            reader:  pinned := e
//            er := fetch_add(global_epoch)                   g := global_epoch
//            scan pinned slots                               retry if g != e
//            free retired iff every pin > its epoch          ... dereference ...
//
// A reader pinned at p > er read p through the RMW chain headed by the
// fetch_add at er, so it synchronizes with that retirement — and with the
// publication sequenced before it — and therefore observes the *new*
// state; only readers pinned at p <= er can hold the old pointer, and
// those block reclamation.  A reader whose pin store raced behind the
// scan re-reads the bumped global epoch and retries, so its final pin is
// > er and the same argument applies.

EpochManager& EpochManager::Global() {
  static EpochManager* manager = new EpochManager();  // leaked singleton
  return *manager;
}

EpochManager::ThreadSlot* EpochManager::AcquireSlot() {
  struct SlotLease {
    ThreadSlot* slot = nullptr;
    ~SlotLease() {
      if (slot != nullptr) {
        slot->pinned.store(0, std::memory_order_release);
        slot->in_use.store(false, std::memory_order_release);
      }
    }
  };
  thread_local SlotLease lease;
  if (lease.slot != nullptr) return lease.slot;
  // Reuse a slot released by an exited thread, if any.
  for (ThreadSlot* slot = slots_head_.load(std::memory_order_acquire);
       slot != nullptr; slot = slot->next) {
    bool expected = false;
    if (slot->in_use.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
      slot->depth = 0;
      lease.slot = slot;
      return slot;
    }
  }
  // Push a fresh slot; slots are never freed (the list only grows).
  ThreadSlot* slot = new ThreadSlot();
  ThreadSlot* head = slots_head_.load(std::memory_order_relaxed);
  do {
    slot->next = head;
  } while (!slots_head_.compare_exchange_weak(head, slot,
                                              std::memory_order_release,
                                              std::memory_order_relaxed));
  lease.slot = slot;
  return slot;
}

void EpochManager::Pin(ThreadSlot* slot) {
  if (slot->depth++ > 0) return;  // reentrant: outer guard already pinned
  std::uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    slot->pinned.store(epoch, std::memory_order_seq_cst);
    std::uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
    if (now == epoch) return;
    epoch = now;  // an epoch bump raced past the pin: re-announce
  }
}

void EpochManager::Unpin(ThreadSlot* slot) {
  if (--slot->depth == 0) {
    slot->pinned.store(0, std::memory_order_release);
  }
}

std::uint64_t EpochManager::MinPinnedEpoch() const {
  std::uint64_t min_pinned = std::numeric_limits<std::uint64_t>::max();
  for (ThreadSlot* slot = slots_head_.load(std::memory_order_acquire);
       slot != nullptr; slot = slot->next) {
    std::uint64_t pinned = slot->pinned.load(std::memory_order_seq_cst);
    if (pinned != 0) min_pinned = std::min(min_pinned, pinned);
  }
  return min_pinned;
}

void EpochManager::Retire(void* object, void (*deleter)(void*)) {
  std::uint64_t epoch = global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(retired_mutex_);
    retired_.push_back(RetiredObject{object, deleter, epoch});
  }
  TryReclaim();
}

void EpochManager::TryReclaim() {
  std::uint64_t min_pinned = MinPinnedEpoch();
  std::vector<RetiredObject> ready;
  {
    std::lock_guard<std::mutex> lock(retired_mutex_);
    auto still_pinned = [min_pinned](const RetiredObject& r) {
      return r.epoch >= min_pinned;
    };
    auto split =
        std::stable_partition(retired_.begin(), retired_.end(), still_pinned);
    ready.assign(std::make_move_iterator(split),
                 std::make_move_iterator(retired_.end()));
    retired_.erase(split, retired_.end());
  }
  // Deleters run outside the lock: they may recurse into Retire.
  for (const RetiredObject& r : ready) r.deleter(r.object);
}

std::size_t EpochManager::retired_count() const {
  std::lock_guard<std::mutex> lock(retired_mutex_);
  return retired_.size();
}

EpochGuard::EpochGuard() : slot_(EpochManager::Global().AcquireSlot()) {
  EpochManager::Global().Pin(slot_);
}

EpochGuard::~EpochGuard() { EpochManager::Global().Unpin(slot_); }

// ---------------------------------------------------------------------------
// BackgroundCompactor

BackgroundCompactor& BackgroundCompactor::Global() {
  static BackgroundCompactor* compactor =
      new BackgroundCompactor();  // leaked singleton
  return *compactor;
}

void BackgroundCompactor::Schedule(std::function<void()> task) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!worker_started_) {
    worker_started_ = true;
    // Detached: the leaked singleton outlives every task, and process
    // exit never waits on an idle worker.
    std::thread(&BackgroundCompactor::RunWorker, this).detach();
  }
  queue_.push_back(std::move(task));
  wake_.notify_one();
}

void BackgroundCompactor::RunWorker() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return !queue_.empty(); });
      task = std::move(queue_.front());
      queue_.pop_front();
      running_task_ = true;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      running_task_ = false;
      ++completed_;
    }
    idle_.notify_all();
  }
}

void BackgroundCompactor::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && !running_task_; });
}

std::uint64_t BackgroundCompactor::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

// ---------------------------------------------------------------------------
// MutableSetCore

namespace {

/// Skip-list retire hook: route unlinked nodes through the epoch manager
/// (every skip-list operation in this file runs under an EpochGuard).
void RetireSkipListNode(void* /*context*/, void* node, void (*deleter)(void*)) {
  EpochManager::Global().Retire(node, deleter);
}

}  // namespace

MutableSetCore::MutableSetCore(
    std::shared_ptr<const IntersectionAlgorithm> algorithm, ElemList base,
    MutableSetOptions options)
    : algorithm_(std::move(algorithm)),
      options_(options),
      staged_inserts_(&RetireSkipListNode, nullptr),
      staged_erases_(&RetireSkipListNode, nullptr) {
  auto* state = new MutableSetState();
  state->base = std::make_shared<const ElemList>(std::move(base));
  state->structure =
      std::shared_ptr<const PreprocessedSet>(algorithm_->Preprocess(
          *state->base));
  state->live_size = state->base->size();
  state->version = 1;
  state_.store(state, std::memory_order_release);
}

MutableSetCore::~MutableSetCore() {
  // No readers can exist (shared ownership: queries, handles and pending
  // compaction tasks all hold the core alive); superseded states were
  // retired at publication and are reclaimed independently.
  delete state_.load(std::memory_order_relaxed);
}

bool MutableSetCore::Insert(Elem value) {
  EpochGuard guard;  // covers the skip-list mutation (node retirement)
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const MutableSetState* current = state_.load(std::memory_order_acquire);
  std::optional<DeltaSnapshot> next_delta =
      DeltaInsert(*current->base, current->delta, value);
  if (!next_delta.has_value()) return false;
  // Mirror the delta into the point-lookup tier before publishing; either
  // order is linearizable (Contains never reads the published delta), but
  // mirroring first keeps the "skip lists == published delta" invariant
  // trivially inductive under writer_mutex_.
  if (next_delta->erases != current->delta.erases) {
    staged_erases_.Erase(value);  // the insert revoked a tombstone
  } else {
    staged_inserts_.Insert(value);
  }
  MutableSetState next{current->structure, current->base,
                       std::move(*next_delta), current->live_size + 1,
                       current->version + 1};
  PublishLocked(std::move(next));
  return true;
}

bool MutableSetCore::Erase(Elem value) {
  EpochGuard guard;
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const MutableSetState* current = state_.load(std::memory_order_acquire);
  std::optional<DeltaSnapshot> next_delta =
      DeltaErase(*current->base, current->delta, value);
  if (!next_delta.has_value()) return false;
  if (next_delta->inserts != current->delta.inserts) {
    staged_inserts_.Erase(value);  // the erase revoked a pending insert
  } else {
    staged_erases_.Insert(value);
  }
  MutableSetState next{current->structure, current->base,
                       std::move(*next_delta), current->live_size - 1,
                       current->version + 1};
  PublishLocked(std::move(next));
  return true;
}

bool MutableSetCore::Contains(Elem value) const {
  EpochGuard guard;
  // Probe order matters against compaction, which publishes the rebuilt
  // base *before* clearing the staged lists: a probe that misses a staged
  // entry because compaction removed it observes (through the unlink it
  // read) a state whose base already absorbed that entry.
  if (staged_erases_.Contains(value)) return false;
  if (staged_inserts_.Contains(value)) return true;
  const MutableSetState* current = state_.load(std::memory_order_acquire);
  const ElemList& base = *current->base;
  const simd::Kernels& kernels = simd::DispatchedKernels();
  std::size_t i = kernels.lower_bound(base.data(), base.size(), value);
  return i < base.size() && base[i] == value;
}

MutableSetState MutableSetCore::Snapshot() const {
  EpochGuard guard;
  // Copying the state (five shared_ptr/scalar fields) while pinned yields
  // an owning snapshot that stays consistent forever.
  return *state_.load(std::memory_order_acquire);
}

std::size_t MutableSetCore::size() const {
  EpochGuard guard;
  return state_.load(std::memory_order_acquire)->live_size;
}

std::size_t MutableSetCore::delta_size() const {
  EpochGuard guard;
  return state_.load(std::memory_order_acquire)->delta.size();
}

std::uint64_t MutableSetCore::version() const {
  EpochGuard guard;
  return state_.load(std::memory_order_acquire)->version;
}

void MutableSetCore::PublishLocked(MutableSetState next) {
  const auto* fresh = new MutableSetState(std::move(next));
  const MutableSetState* old =
      state_.exchange(fresh, std::memory_order_acq_rel);
  EpochManager::Global().Retire(old);
  MaybeScheduleCompactionLocked();
}

void MutableSetCore::MaybeScheduleCompactionLocked() {
  if (!options_.background_compaction || compaction_scheduled_) return;
  const MutableSetState* current = state_.load(std::memory_order_relaxed);
  std::size_t threshold = std::max<std::size_t>(
      std::max<std::size_t>(options_.compact_min, 1),
      static_cast<std::size_t>(options_.compact_fill *
                               static_cast<double>(current->base->size())));
  if (current->delta.size() < threshold) return;
  compaction_scheduled_ = true;
  std::shared_ptr<MutableSetCore> self = shared_from_this();
  BackgroundCompactor::Global().Schedule(
      [self] { self->RunBackgroundCompaction(); });
}

void MutableSetCore::RunBackgroundCompaction() {
  MutableSetState snap = Snapshot();
  std::shared_ptr<const PreprocessedSet> structure;
  std::shared_ptr<const ElemList> base;
  if (!snap.delta.empty()) {
    // The expensive part — merge + Preprocess — runs off-lock: writers
    // stay unblocked for the whole rebuild.
    ElemList effective = MergeEffective(*snap.base, snap.delta);
    structure = std::shared_ptr<const PreprocessedSet>(
        algorithm_->Preprocess(effective));
    base = std::make_shared<const ElemList>(std::move(effective));
  }
  bool rearm = false;
  {
    EpochGuard guard;  // covers the staged-list cleanup
    std::lock_guard<std::mutex> lock(writer_mutex_);
    const MutableSetState* current = state_.load(std::memory_order_acquire);
    if (structure != nullptr && current->version == snap.version) {
      MutableSetState next;
      next.structure = std::move(structure);
      next.base = std::move(base);
      next.live_size = next.base->size();
      next.version = current->version + 1;
      const auto* fresh = new MutableSetState(std::move(next));
      const MutableSetState* old =
          state_.exchange(fresh, std::memory_order_acq_rel);
      EpochManager::Global().Retire(old);
      // Clear the staged mirrors only *after* the publish above: a
      // Contains that misses an entry here synchronizes (through the
      // unlink CAS it observed) with the publication, so its base probe
      // sees the compacted state.
      for (Elem e : snap.delta.insert_span()) staged_inserts_.Erase(e);
      for (Elem e : snap.delta.erase_span()) staged_erases_.Erase(e);
    } else {
      rearm = true;  // a mutation won the race; re-check the trigger
    }
    compaction_scheduled_ = false;
    if (rearm) MaybeScheduleCompactionLocked();
  }
  compaction_cv_.notify_all();
}

void MutableSetCore::Compact() {
  EpochGuard guard;  // keeps `current` alive across its retirement below
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const MutableSetState* current = state_.load(std::memory_order_acquire);
  if (current->delta.empty()) return;
  DeltaSnapshot old_delta = current->delta;
  ElemList effective = MergeEffective(*current->base, old_delta);
  MutableSetState next;
  next.structure = std::shared_ptr<const PreprocessedSet>(
      algorithm_->Preprocess(effective));
  next.base = std::make_shared<const ElemList>(std::move(effective));
  next.live_size = next.base->size();
  next.version = current->version + 1;
  const auto* fresh = new MutableSetState(std::move(next));
  const MutableSetState* old =
      state_.exchange(fresh, std::memory_order_acq_rel);
  EpochManager::Global().Retire(old);
  for (Elem e : old_delta.insert_span()) staged_inserts_.Erase(e);
  for (Elem e : old_delta.erase_span()) staged_erases_.Erase(e);
}

void MutableSetCore::WaitForCompaction() const {
  std::unique_lock<std::mutex> lock(writer_mutex_);
  compaction_cv_.wait(lock, [this] { return !compaction_scheduled_; });
}

}  // namespace fsi
