// Concurrent batch execution over one Engine: fsi::BatchRunner.
//
// The paper's motivating workload is interactive search — a stream of
// small conjunctive queries served at high throughput.  The Engine API
// already promises that a const Engine and its PreparedSets may be shared
// across threads (engine.h); this layer makes that contract load-bearing:
//
//   fsi::Engine engine("Hybrid");
//   std::vector<fsi::PreparedSet> sets = ...;        // prepared once
//   std::vector<fsi::BatchQuery> log = ...;          // many small queries
//
//   fsi::BatchRunner runner(engine, {.num_threads = 8});
//   std::vector<fsi::ElemList> results = runner.Materialize(log);
//   runner.stats().queries_per_second;               // merged BatchStats
//
// Execution model.  Queries are validated and built serially on the
// calling thread (so misuse — empty handles, cross-engine sets, arity
// overflow — throws there, before any worker starts), then executed by a
// persistent fsi::ThreadPool.  Workers claim whole queries from an atomic
// cursor: dynamic load balancing without partitioning heuristics, and
// results that are *bitwise identical* to single-threaded execution —
// each query runs exactly as Engine::Query would run it, only the
// assignment of queries to threads varies.
//
// Mutable sets (Engine::PrepareMutable) compose with batches: each query
// snapshots every mutable input when its worker starts executing it, so a
// batch racing concurrent Insert/Erase sees, per query, one consistent
// version of each set — never a torn state.  Different queries of the
// same batch may observe different versions (they start at different
// times); the bitwise-identical-to-serial guarantee therefore holds
// whenever no writer runs during the batch.
//
// What is shared and what is per-thread:
//   shared, read-only:  the Engine's algorithm, every PreparedSet
//                       structure, the query list;
//   per-thread:         the fsi::Query objects (one per batch query, each
//                       touched by exactly one worker), scratch buffers,
//                       and the local time/volume accumulators merged into
//                       BatchStats after the batch completes.
//
// Sinks mirror fsi::Query: Materialize (per-query element vectors),
// Count (per-query sizes only, computed in per-worker scratch), and
// Visit (a callback per query; called concurrently from worker threads,
// so it must be thread-safe across *different* query indices).

#ifndef FSI_API_BATCH_RUNNER_H_
#define FSI_API_BATCH_RUNNER_H_

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "api/engine.h"
#include "api/thread_pool.h"

namespace fsi {

/// One conjunctive query of a batch: the prepared sets to intersect.
/// Every pointer must come from the runner's Engine (or a copy of it) —
/// the same contract, and the same checked errors, as Engine::Query.
using BatchQuery = std::vector<const PreparedSet*>;

/// Construction options for BatchRunner.
struct BatchOptions {
  /// Worker threads; 0 means ThreadPool::DefaultConcurrency().
  std::size_t num_threads = 0;
  /// Materialized results in document-id order (Query default).  Count()
  /// always runs unordered — a result-set size is order-independent.
  bool ordered = true;
  /// Per-query result cap, as Query::Limit.
  std::size_t limit = SIZE_MAX;
};

/// Aggregate statistics of one batch, merged from the per-thread
/// accumulators after the batch completes.
struct BatchStats {
  /// Queries executed.
  std::size_t num_queries = 0;
  /// Worker threads the batch ran on.
  std::size_t num_threads = 0;
  /// Sum of QueryStats::elements_scanned over all queries.
  std::size_t elements_scanned = 0;
  /// Sum of QueryStats::predicted_micros over all queries — the cost
  /// model's forecast of the batch's total compute.  Compare against the
  /// summed per-query wall times to judge the planner on a workload
  /// (0 when the engine's algorithm publishes no cost model).
  double predicted_micros = 0.0;
  /// Sum of per-query result sizes (after any limit).
  std::size_t total_results = 0;
  /// Wall time of the whole batch, milliseconds.
  double wall_ms = 0.0;
  /// Per-query wall-time percentiles, microseconds.
  double p50_micros = 0.0;
  double p95_micros = 0.0;
  /// The SLO percentile: tail latency one query in a hundred exceeds.
  double p99_micros = 0.0;
  double max_micros = 0.0;
  /// num_queries / batch wall time.
  double queries_per_second = 0.0;
  /// Queries that missed their deadline (kExpired + kPartial).  Always 0
  /// for BatchRunner (no deadlines); filled by ShardedEngine::ServeBatch.
  std::size_t deadline_misses = 0;
  /// Queries refused at admission (kRejected) — excluded from the
  /// latency percentiles.  Always 0 for BatchRunner.
  std::size_t rejected = 0;
};

/// Executes batches of queries against one Engine on a persistent worker
/// pool.  Not itself thread-safe: one thread drives a runner (the pool
/// provides the parallelism); use several runners for concurrent batches.
class BatchRunner {
 public:
  /// The engine is copied (copies share the algorithm instance), so the
  /// runner has no external lifetime requirements.
  explicit BatchRunner(Engine engine, BatchOptions options = {});

  /// Materialize sink: per-query result vectors, index-aligned with
  /// `queries`.  Identical to running each query single-threaded.
  std::vector<ElemList> Materialize(std::span<const BatchQuery> queries);

  /// Count-only sink: per-query result sizes without handing out element
  /// vectors — results are computed into a reusable per-worker scratch
  /// buffer (always unordered internally).
  std::vector<std::size_t> Count(std::span<const BatchQuery> queries);

  /// Visitor sink: `visit(query_index, result_elements)` once per query.
  /// Invoked from worker threads — concurrent calls carry distinct query
  /// indices, but the callable itself must tolerate concurrent entry.
  /// The span is only valid during the call.  Returns the total number of
  /// elements across all results.
  std::size_t Visit(
      std::span<const BatchQuery> queries,
      const std::function<void(std::size_t, std::span<const Elem>)>& visit);

  /// Expression batches: each entry is a boolean expression (api/expr.h)
  /// over this engine's prepared sets, evaluated exactly as
  /// Engine::Query(const Expr&) would evaluate it.  Validation and
  /// optimization run serially on the calling thread (misuse throws
  /// there); execution shares the worker pool, the atomic-cursor load
  /// balancing, and the merged BatchStats of the flat overloads.  All
  /// workers share the engine's ExprCache, so repeated subtrees across a
  /// batch are memoized once.
  std::vector<ElemList> Materialize(std::span<const Expr> queries);
  std::vector<std::size_t> Count(std::span<const Expr> queries);
  std::size_t Visit(
      std::span<const Expr> queries,
      const std::function<void(std::size_t, std::span<const Elem>)>& visit);

  /// Statistics of the most recent batch.
  const BatchStats& stats() const { return stats_; }

  const Engine& engine() const { return engine_; }
  std::size_t num_threads() const { return pool_.num_threads(); }

 private:
  enum class Sink { kMaterialize, kCount, kVisit };

  void Execute(
      std::span<const BatchQuery> queries, Sink sink,
      std::vector<ElemList>* results, std::vector<std::size_t>* counts,
      const std::function<void(std::size_t, std::span<const Elem>)>* visit);
  void ExecuteExprs(
      std::span<const Expr> queries, Sink sink,
      std::vector<ElemList>* results, std::vector<std::size_t>* counts,
      const std::function<void(std::size_t, std::span<const Elem>)>* visit);
  /// Shared execution core: runs already-built queries on the pool and
  /// merges per-thread accumulators into stats_.
  void ExecuteBuilt(
      std::vector<fsi::Query> built, Sink sink,
      std::vector<ElemList>* results, std::vector<std::size_t>* counts,
      const std::function<void(std::size_t, std::span<const Elem>)>* visit);

  Engine engine_;
  BatchOptions options_;
  ThreadPool pool_;
  BatchStats stats_;
};

}  // namespace fsi

#endif  // FSI_API_BATCH_RUNNER_H_
