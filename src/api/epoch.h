// Epoch-based reclamation and the mutable-set runtime (PR 6).
//
// Three pieces turn the pure delta-tier values of core/delta_set.h into
// Insert/Erase that run concurrently with lock-free readers:
//
//  * EpochManager — a process-wide epoch-based memory reclaimer.  Readers
//    pin the global epoch in a per-thread slot (EpochGuard, a handful of
//    atomic ops, no locks); writers retire superseded objects tagged with
//    the epoch current at retirement and free one once every pinned slot
//    has advanced past it.  All epoch bumps are RMWs on one counter, so a
//    reader that pins epoch e > r synchronizes (through the RMW release
//    sequence) with every publication that preceded retirement at r — the
//    reader is guaranteed to observe the *new* state, which is exactly
//    why the old one is safe to free.
//
//  * BackgroundCompactor — one lazily-started process-wide worker thread
//    that runs compaction rebuilds off the writer threads.  The singleton
//    leaks at exit (the repo's registry idiom) so static teardown never
//    races a rebuild.
//
//  * MutableSetCore — one mutable set: an atomically-published
//    MutableSetState (copy-on-write; see core/delta_set.h), a writer
//    mutex serializing mutations, two lock-free skip lists
//    (container/concurrent_skip_list.h) mirroring the delta tier for
//    Contains() point lookups, and the compaction policy.  Readers —
//    Snapshot() and Contains() — never block and never take the writer
//    mutex: a mutation costs them at most a retry-free pointer chase.
//
// Compaction: when the delta tier outgrows the configured fill fraction
// the core schedules a rebuild that merges the delta into the base
// ((base \ erases) ∪ inserts), re-runs the engine algorithm's
// Preprocess off-thread, and publishes the result only if no mutation
// intervened (optimistic version check; a lost race just re-arms the
// trigger).  Readers drain via epoch retirement — no reader ever observes
// a half-swapped structure.

#ifndef FSI_API_EPOCH_H_
#define FSI_API_EPOCH_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "container/concurrent_skip_list.h"
#include "core/delta_set.h"

namespace fsi {

/// Process-wide epoch-based reclamation.  Use via EpochGuard (readers) and
/// Retire (writers); the singleton never destructs.
class EpochManager {
 public:
  static EpochManager& Global();

  /// Defers `deleter(object)` until no epoch pinned at Retire() time is
  /// still active.  Thread-safe; eagerly reclaims what it already can.
  void Retire(void* object, void (*deleter)(void*));

  template <typename T>
  void Retire(const T* object) {
    Retire(const_cast<void*>(static_cast<const void*>(object)),
           [](void* p) { delete static_cast<T*>(p); });
  }

  /// Frees every retired object whose epoch has drained.  Called
  /// internally by Retire; exposed for tests and idle housekeeping.
  void TryReclaim();

  /// Number of objects still awaiting reclamation (test introspection).
  std::size_t retired_count() const;

  /// The current global epoch (test introspection).
  std::uint64_t current_epoch() const {
    return global_epoch_.load(std::memory_order_seq_cst);
  }

 private:
  friend class EpochGuard;

  struct alignas(64) ThreadSlot {
    /// 0 = not pinned; otherwise the epoch this thread read when pinning.
    std::atomic<std::uint64_t> pinned{0};
    /// Pin depth of the owning thread (reentrant guards).
    std::uint64_t depth = 0;
    /// Slots are never freed; exited threads release them for reuse.
    std::atomic<bool> in_use{true};
    ThreadSlot* next = nullptr;
  };

  struct RetiredObject {
    void* object;
    void (*deleter)(void*);
    std::uint64_t epoch;
  };

  EpochManager() = default;
  ~EpochManager() = delete;  // leaked singleton

  ThreadSlot* AcquireSlot();
  void Pin(ThreadSlot* slot);
  void Unpin(ThreadSlot* slot);
  /// Smallest epoch pinned by any thread (UINT64_MAX when none).
  std::uint64_t MinPinnedEpoch() const;

  /// Epoch 0 is reserved as the "not pinned" slot value.
  std::atomic<std::uint64_t> global_epoch_{1};
  std::atomic<ThreadSlot*> slots_head_{nullptr};
  mutable std::mutex retired_mutex_;
  std::vector<RetiredObject> retired_;
};

/// RAII epoch pin for the calling thread.  Cheap (three atomic ops on the
/// common path), reentrant, and lock-free.  Hold one across any read of an
/// epoch-protected pointer *and* everything reached through it.
class EpochGuard {
 public:
  EpochGuard();
  ~EpochGuard();
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager::ThreadSlot* slot_;
};

/// The process-wide compaction worker.  Tasks run one at a time, in
/// submission order, on a single lazily-started thread.
class BackgroundCompactor {
 public:
  static BackgroundCompactor& Global();

  /// Enqueues a task.  Never blocks on task execution.
  void Schedule(std::function<void()> task);

  /// Blocks until every task scheduled before the call has finished (test
  /// and shutdown-ordering helper).
  void Drain();

  /// Tasks executed so far (test introspection).
  std::uint64_t completed() const;

 private:
  BackgroundCompactor() = default;
  ~BackgroundCompactor() = delete;  // leaked singleton

  void RunWorker();

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  bool worker_started_ = false;
  bool running_task_ = false;
  std::uint64_t completed_ = 0;
};

/// The runtime of one mutable prepared set.  Created by
/// Engine::PrepareMutable and shared by every PreparedSet copy of the
/// handle.  Readers (Snapshot, Contains, size, ...) are lock-free; writers
/// (Insert, Erase, Compact) serialize on an internal mutex.
class MutableSetCore : public std::enable_shared_from_this<MutableSetCore> {
 public:
  /// Preprocesses `base` (sorted, duplicate-free) with `algorithm` as the
  /// initial published state.
  MutableSetCore(std::shared_ptr<const IntersectionAlgorithm> algorithm,
                 ElemList base, MutableSetOptions options);
  ~MutableSetCore();

  MutableSetCore(const MutableSetCore&) = delete;
  MutableSetCore& operator=(const MutableSetCore&) = delete;

  /// Adds `value` to the effective set; false when already present.
  bool Insert(Elem value);
  /// Removes `value`; false when not present.
  bool Erase(Elem value);

  /// Lock-free point lookup in the effective set: probes the tombstone and
  /// insert-buffer skip lists first, then the published base — always a
  /// consistent answer, never blocked by writers or compaction.
  bool Contains(Elem value) const;

  /// A consistent copy of the current published state.  The returned value
  /// owns everything it references (shared_ptr copies), so it remains
  /// valid indefinitely — queries execute entirely against it.
  MutableSetState Snapshot() const;

  std::size_t size() const;        // |effective|
  std::size_t delta_size() const;  // |inserts| + |erases|
  std::uint64_t version() const;

  /// Synchronous compaction: merges the delta into the base and rebuilds
  /// the structure, holding the writer mutex throughout (writers block;
  /// readers do not).  No-op when the delta is empty.
  void Compact();

  /// Blocks until no background compaction for this set is scheduled or
  /// running.  (A mutation racing in after the call can re-arm one.)
  void WaitForCompaction() const;

  const IntersectionAlgorithm& algorithm() const { return *algorithm_; }
  const MutableSetOptions& options() const { return options_; }

 private:
  /// Publishes `next` (release store), retires the superseded state via
  /// the epoch manager, and re-arms the compaction trigger.  Caller holds
  /// writer_mutex_.
  void PublishLocked(MutableSetState next);
  void MaybeScheduleCompactionLocked();
  /// The background rebuild: snapshot, merge+preprocess off-lock, publish
  /// only if the version is unchanged.
  void RunBackgroundCompaction();

  std::shared_ptr<const IntersectionAlgorithm> algorithm_;
  MutableSetOptions options_;

  /// The published state; readers load-acquire under an EpochGuard,
  /// writers store-release under writer_mutex_.
  std::atomic<const MutableSetState*> state_;

  mutable std::mutex writer_mutex_;
  mutable std::condition_variable compaction_cv_;
  bool compaction_scheduled_ = false;  // guarded by writer_mutex_

  /// Lock-free mirrors of the published delta tier, serving Contains().
  /// Writers keep them exactly in sync with the published state (skip-list
  /// update and state publication both happen under writer_mutex_);
  /// compaction publishes the rebuilt state *before* clearing them, so a
  /// probe that misses here sees a base that already absorbed the delta.
  ConcurrentSkipList<Elem> staged_inserts_;
  ConcurrentSkipList<Elem> staged_erases_;
};

}  // namespace fsi

#endif  // FSI_API_EPOCH_H_
