#include "api/expr.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "api/epoch.h"
#include "api/planner.h"
#include "baseline/plain_set.h"
#include "baseline/svs.h"
#include "core/delta_set.h"
#include "core/threshold.h"
#include "simd/intersect_kernels.h"
#include "util/timer.h"

namespace fsi {

namespace expr_internal {

/// The evaluator's keyhole into PreparedSet's shared ownership (the
/// public surface deliberately hides the raw shared_ptrs).
struct Access {
  static const std::shared_ptr<const PreprocessedSet>& set(
      const PreparedSet& s) {
    return s.set_;
  }
  static const std::shared_ptr<MutableSetCore>& core(const PreparedSet& s) {
    return s.core_;
  }
  static const std::shared_ptr<const IntersectionAlgorithm>& algorithm(
      const PreparedSet& s) {
    return s.algorithm_;
  }
};

}  // namespace expr_internal

namespace {

using expr_internal::Access;

std::shared_ptr<const ExprNode> MakeNode(ExprNode node) {
  return std::make_shared<const ExprNode>(std::move(node));
}

void CheckChildren(const char* builder, const std::vector<Expr>& children,
                   bool require_nonempty) {
  if (require_nonempty && children.empty()) {
    throw std::invalid_argument(std::string("Expr::") + builder +
                                ": at least one child required");
  }
  for (const Expr& c : children) {
    if (c.empty_handle()) {
      throw std::invalid_argument(std::string("Expr::") + builder +
                                  ": empty Expr handle among children");
    }
  }
}

// ---------------------------------------------------------------------------
// Structural fingerprints.
//
// splitmix64-style mixing; 128 bits as two independent chains so that a
// colliding pair would have to collide in both.  Leaf identity is the
// owning shared object's address (structure for immutable handles, the
// mutable core otherwise) — cache entries pin those objects, so a live
// fingerprint can never alias a recycled address.  `with_versions` mixes
// every mutable leaf's version in: the memoization key (a mutation makes
// the old key unreachable); without versions the fingerprint is the
// *structural* identity used for idempotent dedup.
// ---------------------------------------------------------------------------

std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  v += 0x9e3779b97f4a7c15ULL + h;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  return v ^ (v >> 31);
}

ExprKey MixKey(ExprKey h, std::uint64_t v) {
  return ExprKey{Mix(h.hi, v), Mix(h.lo, v ^ 0xd6e8feb86659fd93ULL)};
}

/// Fingerprint of a subtree.  `version_of` supplies the version to mix in
/// for mutable leaves (0 disables); the evaluator passes the version of
/// the snapshot it actually took, so key and data always agree.
template <typename VersionFn>
ExprKey Fingerprint(const ExprNode* n, const VersionFn& version_of) {
  ExprKey key{0x243f6a8885a308d3ULL, 0x13198a2e03707344ULL};
  key = MixKey(key, static_cast<std::uint64_t>(n->kind));
  switch (n->kind) {
    case ExprKind::kSet: {
      const PreparedSet& leaf = n->leaf;
      const void* identity = leaf.is_mutable()
                                 ? static_cast<const void*>(
                                       Access::core(leaf).get())
                                 : static_cast<const void*>(
                                       Access::set(leaf).get());
      key = MixKey(key, reinterpret_cast<std::uintptr_t>(identity));
      if (leaf.is_mutable()) key = MixKey(key, version_of(leaf));
      break;
    }
    case ExprKind::kAtLeast:
      key = MixKey(key, n->threshold);
      [[fallthrough]];
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kDiff:
      for (const Expr& c : n->children) {
        ExprKey ck = Fingerprint(c.node(), version_of);
        key = MixKey(key, ck.hi);
        key = MixKey(key, ck.lo);
      }
      break;
    case ExprKind::kNone:
      break;
  }
  return key;
}

ExprKey StructuralKey(const ExprNode* n) {
  return Fingerprint(n, [](const PreparedSet&) { return std::uint64_t{0}; });
}

bool StructurallyEqual(const Expr& a, const Expr& b) {
  if (a.node() == b.node()) return true;
  return StructuralKey(a.node()) == StructuralKey(b.node());
}

// ---------------------------------------------------------------------------
// The rewrite pass.  Helpers assume already-optimized inputs and return
// optimized trees, so rewrites compose without re-walking.
// ---------------------------------------------------------------------------

Expr OptimizedNode(const Expr& e);
Expr OptAnd(std::vector<Expr> children);
Expr OptOr(std::vector<Expr> children);
Expr OptDiff(Expr include, Expr exclude);
Expr OptAtLeast(std::size_t threshold, std::vector<Expr> children);

/// Order-preserving structural dedup (And/Or idempotence).
void DedupChildren(std::vector<Expr>* children) {
  std::vector<Expr> unique;
  std::vector<ExprKey> keys;
  unique.reserve(children->size());
  for (Expr& c : *children) {
    ExprKey key = StructuralKey(c.node());
    bool seen = false;
    for (const ExprKey& k : keys) {
      if (k == key) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      keys.push_back(key);
      unique.push_back(std::move(c));
    }
  }
  children->swap(unique);
}

Expr OptAnd(std::vector<Expr> children) {
  // Flatten nested Ands; None absorbs the conjunction.
  std::vector<Expr> flat;
  for (Expr& c : children) {
    if (c.kind() == ExprKind::kNone) return Expr::None();
    if (c.kind() == ExprKind::kAnd) {
      for (std::size_t i = 0; i < c.num_children(); ++i) {
        flat.push_back(c.child(i));
      }
    } else {
      flat.push_back(std::move(c));
    }
  }
  // Difference pushdown: ∩ᵢ xᵢ ∩ ∩ⱼ (aⱼ \ bⱼ)  ==  (∩ xᵢ ∩ ∩ aⱼ) \ ∪ bⱼ.
  std::vector<Expr> positives;
  std::vector<Expr> negatives;
  for (Expr& c : flat) {
    if (c.kind() == ExprKind::kDiff) {
      positives.push_back(c.child(0));
      negatives.push_back(c.child(1));
    } else {
      positives.push_back(std::move(c));
    }
  }
  // Diff includes may themselves be conjunctions — re-flatten once.
  std::vector<Expr> expanded;
  for (Expr& p : positives) {
    if (p.kind() == ExprKind::kAnd) {
      for (std::size_t i = 0; i < p.num_children(); ++i) {
        expanded.push_back(p.child(i));
      }
    } else {
      expanded.push_back(std::move(p));
    }
  }
  DedupChildren(&expanded);
  Expr conjunction =
      expanded.size() == 1 ? std::move(expanded[0]) : Expr::And(expanded);
  if (negatives.empty()) return conjunction;
  return OptDiff(std::move(conjunction), OptOr(std::move(negatives)));
}

Expr OptOr(std::vector<Expr> children) {
  std::vector<Expr> flat;
  for (Expr& c : children) {
    if (c.kind() == ExprKind::kNone) continue;  // ∅ drops out of a union
    if (c.kind() == ExprKind::kOr) {
      for (std::size_t i = 0; i < c.num_children(); ++i) {
        flat.push_back(c.child(i));
      }
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return Expr::None();
  DedupChildren(&flat);
  if (flat.size() == 1) return flat[0];
  return Expr::Or(std::move(flat));
}

Expr OptDiff(Expr include, Expr exclude) {
  if (include.kind() == ExprKind::kNone) return Expr::None();
  if (exclude.kind() == ExprKind::kNone) return include;
  if (StructurallyEqual(include, exclude)) return Expr::None();
  if (include.kind() == ExprKind::kDiff) {
    // (a \ b) \ c == a \ (b ∪ c): one subtraction at the top.
    Expr a = include.child(0);
    Expr merged = OptOr({include.child(1), std::move(exclude)});
    return OptDiff(std::move(a), std::move(merged));
  }
  return Expr::Diff(std::move(include), std::move(exclude));
}

Expr OptAtLeast(std::size_t threshold, std::vector<Expr> children) {
  // An empty operand can never contribute to an element's count, so it
  // leaves both the census and the threshold unchanged when dropped.
  std::vector<Expr> live;
  for (Expr& c : children) {
    if (c.kind() != ExprKind::kNone) live.push_back(std::move(c));
  }
  if (threshold > live.size()) return Expr::None();
  if (threshold == live.size()) return OptAnd(std::move(live));
  if (threshold == 1) return OptOr(std::move(live));
  return Expr::AtLeast(threshold, std::move(live));
}

Expr OptimizedNode(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kNone:
      return e;
    case ExprKind::kSet:
      // A *mutable* empty leaf can grow later — never fold it.
      if (!e.leaf().is_mutable() && e.leaf().size() == 0) return Expr::None();
      return e;
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kAtLeast: {
      std::vector<Expr> children;
      children.reserve(e.num_children());
      for (std::size_t i = 0; i < e.num_children(); ++i) {
        children.push_back(OptimizedNode(e.child(i)));
      }
      if (e.kind() == ExprKind::kAnd) return OptAnd(std::move(children));
      if (e.kind() == ExprKind::kOr) return OptOr(std::move(children));
      return OptAtLeast(e.threshold(), std::move(children));
    }
    case ExprKind::kDiff:
      return OptDiff(OptimizedNode(e.child(0)), OptimizedNode(e.child(1)));
  }
  return e;
}

}  // namespace

// ---------------------------------------------------------------------------
// Expr builders.
// ---------------------------------------------------------------------------

std::string_view ToString(ExprKind kind) {
  switch (kind) {
    case ExprKind::kSet:
      return "set";
    case ExprKind::kAnd:
      return "and";
    case ExprKind::kOr:
      return "or";
    case ExprKind::kDiff:
      return "diff";
    case ExprKind::kAtLeast:
      return "at-least";
    case ExprKind::kNone:
      return "none";
  }
  return "unknown";
}

Expr Expr::Set(const PreparedSet& set) {
  if (set.empty_handle()) {
    throw std::invalid_argument("Expr::Set: empty PreparedSet handle");
  }
  ExprNode node;
  node.kind = ExprKind::kSet;
  node.leaf = set;
  return Expr(MakeNode(std::move(node)));
}

Expr Expr::And(std::vector<Expr> children) {
  CheckChildren("And", children, /*require_nonempty=*/true);
  ExprNode node;
  node.kind = ExprKind::kAnd;
  node.children = std::move(children);
  return Expr(MakeNode(std::move(node)));
}

Expr Expr::Or(std::vector<Expr> children) {
  CheckChildren("Or", children, /*require_nonempty=*/true);
  ExprNode node;
  node.kind = ExprKind::kOr;
  node.children = std::move(children);
  return Expr(MakeNode(std::move(node)));
}

Expr Expr::Diff(Expr include, Expr exclude) {
  if (include.empty_handle() || exclude.empty_handle()) {
    throw std::invalid_argument("Expr::Diff: empty Expr handle");
  }
  ExprNode node;
  node.kind = ExprKind::kDiff;
  node.children.push_back(std::move(include));
  node.children.push_back(std::move(exclude));
  return Expr(MakeNode(std::move(node)));
}

Expr Expr::AtLeast(std::size_t threshold, std::vector<Expr> children) {
  if (threshold == 0) {
    throw std::invalid_argument(
        "Expr::AtLeast: threshold must be >= 1 (t = 0 would be the whole "
        "universe, which prepared sets cannot represent)");
  }
  CheckChildren("AtLeast", children, /*require_nonempty=*/true);
  ExprNode node;
  node.kind = ExprKind::kAtLeast;
  node.threshold = threshold;
  node.children = std::move(children);
  return Expr(MakeNode(std::move(node)));
}

Expr Expr::None() {
  ExprNode node;
  node.kind = ExprKind::kNone;
  return Expr(MakeNode(std::move(node)));
}

std::size_t Expr::num_leaves() const {
  if (node_ == nullptr) return 0;
  if (node_->kind == ExprKind::kSet) return 1;
  std::size_t total = 0;
  for (const Expr& c : node_->children) total += c.num_leaves();
  return total;
}

std::string Expr::ToString() const {
  if (node_ == nullptr) return "<empty>";
  std::ostringstream os;
  os << fsi::ToString(node_->kind);
  if (node_->kind == ExprKind::kAtLeast) os << '(' << node_->threshold << ')';
  if (!node_->children.empty()) {
    os << '(';
    for (std::size_t i = 0; i < node_->children.size(); ++i) {
      if (i > 0) os << ", ";
      os << node_->children[i].ToString();
    }
    os << ')';
  }
  return os.str();
}

Expr OptimizeExpr(const Expr& expr) {
  if (expr.empty_handle()) {
    throw std::invalid_argument("OptimizeExpr: empty Expr handle");
  }
  return OptimizedNode(expr);
}

// ---------------------------------------------------------------------------
// ExprCache.
// ---------------------------------------------------------------------------

namespace {
/// Bookkeeping overhead per entry (list/map nodes, pins) — keeps the
/// byte bound honest for many tiny results.
constexpr std::size_t kEntryOverheadBytes = 128;
}  // namespace

std::shared_ptr<const ElemList> ExprCache::Lookup(const ExprKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->elems;
}

void ExprCache::Insert(const ExprKey& key,
                       std::shared_ptr<const ElemList> elems,
                       std::vector<std::shared_ptr<const void>> pins) {
  const std::size_t bytes =
      elems->size() * sizeof(Elem) + pins.size() * sizeof(void*) +
      kEntryOverheadBytes;
  if (bytes > max_bytes_) return;  // larger than the whole cache
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Raced with another worker computing the same node: keep the
    // incumbent (bitwise-identical by construction), refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(elems), std::move(pins), bytes});
  index_.emplace(key, lru_.begin());
  bytes_ += bytes;
  ++stats_.insertions;
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

ExprCacheStats ExprCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ExprCacheStats out = stats_;
  out.entries = index_.size();
  out.bytes = bytes_;
  return out;
}

void ExprCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

// ---------------------------------------------------------------------------
// Evaluation.
// ---------------------------------------------------------------------------

namespace expr_internal {
namespace {

/// Sorted k-way count-merge: emits every element present in at least
/// `threshold` of the lists (counted with multiplicity).  The generic
/// AtLeast path; the all-leaf grouped path runs core/threshold.h instead.
void AtLeastMerge(const std::vector<std::span<const Elem>>& lists,
                  std::size_t threshold, ElemList* out) {
  std::vector<std::size_t> pos(lists.size(), 0);
  for (;;) {
    bool any = false;
    Elem head = 0;
    for (std::size_t i = 0; i < lists.size(); ++i) {
      if (pos[i] < lists[i].size()) {
        if (!any || lists[i][pos[i]] < head) head = lists[i][pos[i]];
        any = true;
      }
    }
    if (!any) break;
    std::size_t count = 0;
    for (std::size_t i = 0; i < lists.size(); ++i) {
      if (pos[i] < lists[i].size() && lists[i][pos[i]] == head) {
        ++count;
        ++pos[i];
      }
    }
    if (count >= threshold) out->push_back(head);
  }
}

/// Sorted union of two lists into *out (cleared).
void UnionPair(std::span<const Elem> a, std::span<const Elem> b,
               ElemList* out) {
  out->clear();
  out->reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(*out));
}

/// The sorted element view of an immutable structure, when it exposes one.
std::optional<std::span<const Elem>> StructureElems(
    const PreprocessedSet* set) {
  if (const auto* planned = dynamic_cast<const PlannedSet*>(set)) {
    // Compressed sets carry no raw array; the caller's generic path
    // materializes them through the algorithm (which decodes on demand).
    if (!planned->has_plain()) return std::nullopt;
    return planned->elems();
  }
  if (const auto* plain = dynamic_cast<const PlainSet*>(set)) {
    return plain->elems();
  }
  return std::nullopt;
}

class Evaluator {
 public:
  Evaluator(const EvalContext& ctx, EvalStats* stats)
      : ctx_(ctx),
        stats_(stats),
        constants_(ctx.planner != nullptr ? ctx.planner->constants()
                                          : CostConstants{}),
        kernels_(simd::DispatchedKernels()) {}

  void Run(const ExprNode* root, ElemList* out) {
    PrepareLeaves(root);
    const NodeState& result = Eval(root);
    out->assign(result.view.begin(), result.view.end());
  }

 private:
  struct NodeState {
    ExprKey key;
    std::optional<MutableSetState> snapshot;  // mutable leaves only
    bool evaluated = false;
    std::span<const Elem> view;
    /// Keeps `view` alive: the leaf structure, the snapshot base array,
    /// or the owned/cached result vector.
    std::shared_ptr<const void> owner;
    std::shared_ptr<const ElemList> owned;  // set when materialized
  };

  /// Phase A: snapshot every mutable leaf once (so fingerprints and data
  /// agree for the whole run — the key mixes the version of the snapshot
  /// this run actually evaluates, not the live version a concurrent
  /// writer may have advanced) and collect the ownership pins cache
  /// entries must retain.  Returns the node's memoization key.
  const ExprKey& PrepareLeaves(const ExprNode* n) {
    if (auto it = states_.find(n); it != states_.end()) {
      return it->second->key;  // shared subtree: one snapshot, one key
    }
    auto state = std::make_unique<NodeState>();
    ExprKey key{0x243f6a8885a308d3ULL, 0x13198a2e03707344ULL};
    key = MixKey(key, static_cast<std::uint64_t>(n->kind));
    if (n->kind == ExprKind::kSet) {
      if (n->leaf.is_mutable()) {
        state->snapshot = Access::core(n->leaf)->Snapshot();
        pins_.push_back(Access::core(n->leaf));
        key = MixKey(key, reinterpret_cast<std::uintptr_t>(
                              Access::core(n->leaf).get()));
        key = MixKey(key, state->snapshot->version);
      } else {
        pins_.push_back(Access::set(n->leaf));
        key = MixKey(key, reinterpret_cast<std::uintptr_t>(
                              Access::set(n->leaf).get()));
      }
    }
    if (n->kind == ExprKind::kAtLeast) key = MixKey(key, n->threshold);
    for (const Expr& c : n->children) {
      const ExprKey child_key = PrepareLeaves(c.node());
      key = MixKey(key, child_key.hi);
      key = MixKey(key, child_key.lo);
    }
    state->key = key;
    NodeState* inserted = state.get();
    states_.emplace(n, std::move(state));
    return inserted->key;
  }

  const NodeState& Eval(const ExprNode* n) {
    NodeState& state = *states_.at(n);
    if (state.evaluated) return state;
    switch (n->kind) {
      case ExprKind::kNone:
        break;
      case ExprKind::kSet:
        EvalLeaf(n, &state);
        break;
      default:
        EvalComposite(n, &state);
        break;
    }
    state.evaluated = true;
    return state;
  }

  void EvalLeaf(const ExprNode* n, NodeState* state) {
    const PreparedSet& leaf = n->leaf;
    if (state->snapshot) {
      const MutableSetState& snap = *state->snapshot;
      stats_->elements_scanned += snap.base->size() + snap.delta.size();
      if (snap.delta.empty()) {
        state->view = std::span<const Elem>(*snap.base);
        state->owner = snap.base;
      } else {
        auto merged = std::make_shared<const ElemList>(
            MergeEffective(*snap.base, snap.delta));
        state->view = std::span<const Elem>(*merged);
        state->owner = merged;
        state->owned = merged;
      }
      return;
    }
    const PreprocessedSet* raw = Access::set(leaf).get();
    stats_->elements_scanned += raw->size();
    if (std::optional<std::span<const Elem>> elems = StructureElems(raw)) {
      state->view = *elems;
      state->owner = Access::set(leaf);
      return;
    }
    // Opaque structure (e.g. a grouped or compressed form): materialize
    // the sorted elements through the algorithm's own k = 1 path.
    ElemList elems;
    const PreprocessedSet* one[1] = {raw};
    ctx_.algorithm->Intersect(std::span<const PreprocessedSet* const>(one, 1),
                              &elems);
    auto owned = std::make_shared<const ElemList>(std::move(elems));
    state->view = std::span<const Elem>(*owned);
    state->owner = owned;
    state->owned = owned;
  }

  void EvalComposite(const ExprNode* n, NodeState* state) {
    if (ctx_.cache != nullptr) {
      if (std::shared_ptr<const ElemList> cached =
              ctx_.cache->Lookup(state->key)) {
        ++stats_->cache_hits;
        state->view = std::span<const Elem>(*cached);
        state->owner = cached;
        state->owned = std::move(cached);
        return;
      }
      ++stats_->cache_misses;
    }
    ElemList result;
    switch (n->kind) {
      case ExprKind::kAnd:
        EvalAnd(n, &result);
        break;
      case ExprKind::kOr:
        EvalOr(n, &result);
        break;
      case ExprKind::kDiff:
        EvalDiff(n, &result);
        break;
      case ExprKind::kAtLeast:
        EvalAtLeast(n, &result);
        break;
      default:
        break;
    }
    auto owned = std::make_shared<const ElemList>(std::move(result));
    state->view = std::span<const Elem>(*owned);
    state->owner = owned;
    state->owned = owned;
    if (ctx_.cache != nullptr) {
      ctx_.cache->Insert(state->key, state->owned, pins_);
    }
  }

  /// All children are immutable leaves — the native k-way engine path
  /// applies (full per-step cost-model plan on a planner engine).
  bool NativeConjunction(const ExprNode* n, ElemList* out) {
    std::vector<const PreprocessedSet*> views;
    views.reserve(n->children.size());
    for (const Expr& c : n->children) {
      if (c.kind() != ExprKind::kSet || c.leaf().is_mutable()) return false;
      views.push_back(Access::set(c.leaf()).get());
    }
    if (ctx_.planner != nullptr) {
      QueryPlan plan = ctx_.planner->Plan(views);
      stats_->predicted_micros += plan.predicted_micros;
      ctx_.planner->ExecutePlan(views, plan, /*ordered=*/true, out);
      return true;
    }
    if (views.size() <= ctx_.algorithm->max_query_sets()) {
      ctx_.algorithm->Intersect(views, out);
      return true;
    }
    return false;  // wider than the native arity: pairwise chain below
  }

  void EvalAnd(const ExprNode* n, ElemList* out) {
    if (NativeConjunction(n, out)) return;
    // Smallest-first pairwise chain over the materialized children,
    // choosing merge vs gallop per step from the calibrated constants —
    // the planner's mixed-chain logic applied to arbitrary subresults.
    std::vector<std::span<const Elem>> lists = ChildViews(n);
    std::sort(lists.begin(), lists.end(),
              [](std::span<const Elem> a, std::span<const Elem> b) {
                return a.size() < b.size();
              });
    if (lists.front().empty()) return;
    out->assign(lists[0].begin(), lists[0].end());
    ElemList next;
    for (std::size_t i = 1; i < lists.size() && !out->empty(); ++i) {
      const double small = static_cast<double>(out->size());
      const double large = static_cast<double>(lists[i].size());
      const double merge_cost = constants_.merge_ns * (small + large);
      const double gallop_cost =
          constants_.gallop_ns * small *
          std::log2(2.0 + large / std::max(1.0, small));
      next.clear();
      if (gallop_cost < merge_cost) {
        GallopEliminate(kernels_, *out, lists[i], &next);
      } else {
        kernels_.intersect_pair(out->data(), out->size(), lists[i].data(),
                                lists[i].size(), &next);
      }
      stats_->predicted_micros += std::min(merge_cost, gallop_cost) * 1e-3;
      out->swap(next);
    }
  }

  void EvalOr(const ExprNode* n, ElemList* out) {
    std::vector<std::span<const Elem>> lists = ChildViews(n);
    // Smallest-first folding keeps intermediate unions small.
    std::sort(lists.begin(), lists.end(),
              [](std::span<const Elem> a, std::span<const Elem> b) {
                return a.size() < b.size();
              });
    out->assign(lists[0].begin(), lists[0].end());
    ElemList next;
    for (std::size_t i = 1; i < lists.size(); ++i) {
      stats_->predicted_micros +=
          constants_.merge_ns *
          static_cast<double>(out->size() + lists[i].size()) * 1e-3;
      UnionPair(*out, lists[i], &next);
      out->swap(next);
    }
  }

  void EvalDiff(const ExprNode* n, ElemList* out) {
    const NodeState& include = Eval(n->children[0].node());
    const NodeState& exclude = Eval(n->children[1].node());
    out->assign(include.view.begin(), include.view.end());
    stats_->predicted_micros +=
        constants_.merge_ns *
        static_cast<double>(include.view.size() + exclude.view.size()) * 1e-3;
    if (!out->empty() && !exclude.view.empty()) {
      SubtractSortedInPlace(out, exclude.view, kernels_);
    }
  }

  void EvalAtLeast(const ExprNode* n, ElemList* out) {
    const std::size_t k = n->children.size();
    const std::size_t t = n->threshold;
    if (t > k) return;  // always empty (unoptimized trees reach here)
    if (EvalAtLeastGrouped(n, out)) return;
    std::vector<std::span<const Elem>> lists = ChildViews(n);
    std::size_t total = 0;
    for (std::span<const Elem> l : lists) total += l.size();
    stats_->predicted_micros +=
        constants_.merge_ns * static_cast<double>(total) *
        std::log2(static_cast<double>(k) + 1.0) * 1e-3;
    AtLeastMerge(lists, t, out);
  }

  /// The Section 6 t-threshold fast path: all children are immutable
  /// leaves whose grouped (ScanSet) structures share one permutation —
  /// planner engines (PlannedSet carries a scan form) and explicit
  /// RanGroupScan engines.  Count-merges the g-ordered arrays with
  /// group-census pruning (core/threshold.h).
  bool EvalAtLeastGrouped(const ExprNode* n, ElemList* out) {
    const RanGroupScanIntersection* scan_algorithm = nullptr;
    if (ctx_.planner != nullptr) {
      scan_algorithm = &ctx_.planner->scan_algorithm();
    } else {
      scan_algorithm =
          dynamic_cast<const RanGroupScanIntersection*>(ctx_.algorithm);
    }
    if (scan_algorithm == nullptr) return false;
    std::vector<const PreprocessedSet*> scans;
    scans.reserve(n->children.size());
    std::size_t total = 0;
    for (const Expr& c : n->children) {
      if (c.kind() != ExprKind::kSet || c.leaf().is_mutable()) return false;
      const PreprocessedSet* raw = Access::set(c.leaf()).get();
      if (const auto* planned = dynamic_cast<const PlannedSet*>(raw)) {
        if (!planned->has_plain()) return false;  // no ScanSet to count-merge
        scans.push_back(planned->scan());
      } else if (dynamic_cast<const ScanSet*>(raw) != nullptr) {
        scans.push_back(raw);
      } else {
        return false;
      }
      total += raw->size();
    }
    stats_->predicted_micros +=
        (constants_.scan_ns * static_cast<double>(total)) * 1e-3;
    ThresholdIntersection threshold(scan_algorithm);
    *out = threshold.AtLeast(scans, n->threshold);
    return true;
  }

  std::vector<std::span<const Elem>> ChildViews(const ExprNode* n) {
    std::vector<std::span<const Elem>> lists;
    lists.reserve(n->children.size());
    for (const Expr& c : n->children) lists.push_back(Eval(c.node()).view);
    return lists;
  }

  const EvalContext& ctx_;
  EvalStats* stats_;
  const CostConstants constants_;
  const simd::Kernels& kernels_;
  std::unordered_map<const ExprNode*, std::unique_ptr<NodeState>> states_;
  std::vector<std::shared_ptr<const void>> pins_;
};

}  // namespace

void Evaluate(const ExprNode& root, const EvalContext& ctx, EvalStats* stats,
              ElemList* out) {
  out->clear();
  Evaluator evaluator(ctx, stats);
  evaluator.Run(&root, out);
}

// ---------------------------------------------------------------------------
// Explain: per-node cardinality estimates + algorithm annotations, no
// execution.  Estimates use the planner's uniform-density model extended
// to the algebra: with U the observed universe and p_i = n_i / U,
//   And  -> U * prod p_i          Or  -> U * (1 - prod (1 - p_i))
//   Diff -> n_l * (1 - p_r)       AtLeast -> U * P(Binom-sum >= t)
// where the threshold tail is the exact Poisson-binomial DP over the
// children's densities.
// ---------------------------------------------------------------------------

namespace {

/// Largest element bound observed across the leaves (exclusive); the
/// density denominator.  Falls back to set sizes for opaque structures
/// and 2^32 when nothing is known.
void MaxLeafBound(const ExprNode* n, double* bound) {
  if (n->kind == ExprKind::kSet) {
    const PreparedSet& leaf = n->leaf;
    if (leaf.is_mutable()) {
      MutableSetState snap = Access::core(leaf)->Snapshot();
      if (!snap.base->empty()) {
        *bound = std::max(*bound, static_cast<double>(snap.base->back()) + 1);
      }
      std::span<const Elem> inserts = snap.delta.insert_span();
      if (!inserts.empty()) {
        *bound = std::max(*bound, static_cast<double>(inserts.back()) + 1);
      }
    } else if (std::optional<std::span<const Elem>> elems =
                   StructureElems(Access::set(leaf).get());
               elems && !elems->empty()) {
      *bound = std::max(*bound, static_cast<double>(elems->back()) + 1);
    } else {
      *bound = std::max(*bound,
                        static_cast<double>(Access::set(leaf).get()->size()));
    }
  }
  for (const Expr& c : n->children) MaxLeafBound(c.node(), bound);
}

class ExprPlanner {
 public:
  ExprPlanner(const EvalContext& ctx, double universe)
      : ctx_(ctx),
        constants_(ctx.planner != nullptr ? ctx.planner->constants()
                                          : CostConstants{}),
        universe_(universe) {}

  double predicted() const { return predicted_; }

  double Render(const ExprNode* n, int depth, std::string* out) {
    std::string children_text;
    std::vector<double> ests;
    ests.reserve(n->children.size());
    for (const Expr& c : n->children) {
      ests.push_back(Render(c.node(), depth + 1, &children_text));
    }
    std::string line(static_cast<std::size_t>(depth) * 2, ' ');
    double est = 0.0;
    char buf[96];
    switch (n->kind) {
      case ExprKind::kSet: {
        est = static_cast<double>(n->leaf.size());
        std::snprintf(buf, sizeof(buf), "set  n=%zu", n->leaf.size());
        line += buf;
        if (n->leaf.is_mutable()) {
          std::snprintf(buf, sizeof(buf), "  (mutable v%llu)",
                        static_cast<unsigned long long>(n->leaf.version()));
          line += buf;
        }
        break;
      }
      case ExprKind::kNone:
        line += "none  est~0";
        break;
      case ExprKind::kAnd: {
        std::string annotation;
        est = EstimateAnd(n, ests, &annotation);
        std::snprintf(buf, sizeof(buf), "and [%s]  est~%.0f",
                      annotation.c_str(), est);
        line += buf;
        break;
      }
      case ExprKind::kOr: {
        est = EstimateOr(ests);
        std::snprintf(buf, sizeof(buf), "or  est~%.0f", est);
        line += buf;
        break;
      }
      case ExprKind::kDiff: {
        est = ests[0] * (1.0 - Density(ests[1]));
        predicted_ += constants_.merge_ns * (ests[0] + ests[1]) * 1e-3;
        std::snprintf(buf, sizeof(buf), "diff  est~%.0f", est);
        line += buf;
        break;
      }
      case ExprKind::kAtLeast: {
        std::string annotation;
        est = EstimateAtLeast(n, ests, &annotation);
        std::snprintf(buf, sizeof(buf), "at-least %zu/%zu [%s]  est~%.0f",
                      n->threshold, n->children.size(), annotation.c_str(),
                      est);
        line += buf;
        break;
      }
    }
    *out += line;
    *out += '\n';
    *out += children_text;
    return est;
  }

 private:
  double Density(double est) const {
    return std::min(1.0, est / universe_);
  }

  bool AllImmutableLeaves(const ExprNode* n,
                          std::vector<const PreprocessedSet*>* views) const {
    for (const Expr& c : n->children) {
      if (c.kind() != ExprKind::kSet || c.leaf().is_mutable()) return false;
      if (views != nullptr) views->push_back(Access::set(c.leaf()).get());
    }
    return true;
  }

  double EstimateAnd(const ExprNode* n, const std::vector<double>& ests,
                     std::string* annotation) {
    std::vector<const PreprocessedSet*> views;
    views.reserve(n->children.size());
    if (AllImmutableLeaves(n, &views)) {
      if (ctx_.planner != nullptr) {
        // Exact plan: the same Plan() the evaluator will execute.
        QueryPlan plan = ctx_.planner->Plan(views);
        predicted_ += plan.predicted_micros;
        *annotation = plan.steps.empty()
                          ? "native"
                          : (plan.uniform ? plan.steps[0].algorithm : "mixed");
        return plan.est_result;
      }
      if (views.size() <= ctx_.algorithm->max_query_sets()) {
        *annotation = std::string(ctx_.algorithm->name());
        return ChainEstimate(ests);
      }
    }
    *annotation = "chain";
    return ChainEstimate(ests);
  }

  /// Smallest-first merge/gallop chain estimate (the evaluator's
  /// non-native path), density-corrected per step.
  double ChainEstimate(std::vector<double> ests) {
    std::sort(ests.begin(), ests.end());
    double running = ests[0];
    for (std::size_t i = 1; i < ests.size(); ++i) {
      const double merge_cost = constants_.merge_ns * (running + ests[i]);
      const double gallop_cost =
          constants_.gallop_ns * running *
          std::log2(2.0 + ests[i] / std::max(1.0, running));
      predicted_ += std::min(merge_cost, gallop_cost) * 1e-3;
      running *= Density(ests[i]);
    }
    return running;
  }

  double EstimateOr(std::vector<double> ests) {
    std::sort(ests.begin(), ests.end());
    double miss = 1.0;  // P(element in none of the children)
    double running = 0.0;
    for (std::size_t i = 0; i < ests.size(); ++i) {
      if (i > 0) {
        predicted_ += constants_.merge_ns * (running + ests[i]) * 1e-3;
      }
      miss *= 1.0 - Density(ests[i]);
      running = universe_ * (1.0 - miss);
    }
    return running;
  }

  double EstimateAtLeast(const ExprNode* n, const std::vector<double>& ests,
                         std::string* annotation) {
    const std::size_t k = n->children.size();
    const std::size_t t = n->threshold;
    double total = 0.0;
    for (double e : ests) total += e;
    if (t > k) {
      *annotation = "empty";
      return 0.0;
    }
    // Exact Poisson-binomial tail over the children's densities.
    std::vector<double> dp(k + 1, 0.0);
    dp[0] = 1.0;
    for (double e : ests) {
      const double p = Density(e);
      for (std::size_t j = k; j >= 1; --j) {
        dp[j] = dp[j] * (1.0 - p) + dp[j - 1] * p;
      }
      dp[0] *= 1.0 - p;
    }
    double tail = 0.0;
    for (std::size_t j = t; j <= k; ++j) tail += dp[j];
    const double est = universe_ * tail;
    const bool grouped =
        (ctx_.planner != nullptr ||
         dynamic_cast<const RanGroupScanIntersection*>(ctx_.algorithm) !=
             nullptr) &&
        AllImmutableLeaves(n, nullptr);
    if (grouped) {
      *annotation = "threshold";
      predicted_ +=
          (constants_.scan_ns * total + constants_.scan_result_ns * est) *
          1e-3;
    } else {
      *annotation = "count-merge";
      predicted_ += constants_.merge_ns * total *
                    std::log2(static_cast<double>(k) + 1.0) * 1e-3;
    }
    return est;
  }

  const EvalContext& ctx_;
  const CostConstants constants_;
  const double universe_;
  double predicted_ = 0.0;
};

}  // namespace

QueryPlan PlanExpr(const ExprNode& root, const EvalContext& ctx) {
  double universe = 0.0;
  MaxLeafBound(&root, &universe);
  if (universe < 1.0) universe = 4294967296.0;  // no sized leaf: full domain
  ExprPlanner planner(ctx, universe);
  QueryPlan plan;
  plan.est_result = planner.Render(&root, 0, &plan.tree);
  plan.predicted_micros = planner.predicted();
  plan.planned = ctx.planner != nullptr;
  return plan;
}

}  // namespace expr_internal

// ---------------------------------------------------------------------------
// Engine / Query glue.
// ---------------------------------------------------------------------------

namespace {

/// Foreign-leaf validation runs on the *unoptimized* tree: constant
/// folding must not hide a cross-engine handle.
void CheckExprLeaves(const ExprNode* n,
                     const IntersectionAlgorithm* algorithm) {
  if (n->kind == ExprKind::kSet &&
      Access::algorithm(n->leaf).get() != algorithm) {
    throw std::invalid_argument(
        "Engine(" + std::string(algorithm->name()) +
        "): Expr leaf was built by a different engine (algorithm '" +
        std::string(n->leaf.algorithm_name()) +
        "'); structures are not interchangeable across engines");
  }
  for (const Expr& c : n->children) CheckExprLeaves(c.node(), algorithm);
}

std::size_t SumLeafSizes(const ExprNode* n) {
  if (n->kind == ExprKind::kSet) return n->leaf.size();
  std::size_t total = 0;
  for (const Expr& c : n->children) total += SumLeafSizes(c.node());
  return total;
}

}  // namespace

fsi::Query Engine::Query(const Expr& expr) const {
  if (expr.empty_handle()) {
    throw std::invalid_argument(std::string(algorithm_->name()) +
                                ": query over an empty Expr handle");
  }
  CheckExprLeaves(expr.node(), algorithm_.get());
  Expr optimized = OptimizeExpr(expr);
  QueryStats base;
  base.num_sets = optimized.num_leaves();
  base.elements_scanned = SumLeafSizes(optimized.node());
  expr_internal::EvalContext ctx{algorithm_.get(), planner_view_,
                                 expr_cache_.get()};
  base.predicted_micros =
      expr_internal::PlanExpr(*optimized.node(), ctx).predicted_micros;
  return fsi::Query(algorithm_, optimized.shared_node(), expr_cache_,
                    planner_view_, base);
}

QueryStats Query::ExecuteExprInto(ElemList* out) {
  Timer timer;
  expr_internal::EvalContext ctx{algorithm_.get(), planner_,
                                 expr_cache_.get()};
  expr_internal::EvalStats eval_stats;
  // Always sorted — which satisfies the Unordered() contract too
  // (unspecified order includes ascending).
  expr_internal::Evaluate(*expr_, ctx, &eval_stats, out);
  if (limit_ < out->size()) out->resize(limit_);
  stats_.elements_scanned = eval_stats.elements_scanned;
  stats_.result_size = out->size();
  stats_.wall_micros = timer.ElapsedMillis() * 1000.0;
  return stats_;
}

}  // namespace fsi
