// The algorithm registry: descriptor-based construction by name.
//
// Every intersection algorithm in the library registers one
// AlgorithmDescriptor — its paper name, whether it operates on compressed
// structures, its query-arity limit, and a factory that understands the
// algorithm's option keys.  Algorithms are then instantiated from a *spec*
// string
//
//   "RanGroupScan"               defaults
//   "RanGroupScan:m=2,w=4"       2 hash images, expected group width 4
//   "Hybrid:skew_threshold=32"   restore the paper's online choice
//   "IntGroup:s=16,seed=42"      wider groups, explicit seed
//
// so benchmarks, tests and operational tools (intersect_cli --list) can
// sweep configurations without recompiling.  Unknown names and unknown or
// malformed option keys are checked errors (std::invalid_argument), never
// silent fallbacks.
//
// New algorithms self-register: define a descriptor and a file-scope
// AlgorithmRegistrar (or call AlgorithmRegistry::Global().Register()
// directly).  The legacy CreateAlgorithm() / *AlgorithmNames() entry
// points in core/intersector.h are thin shims over this registry.

#ifndef FSI_API_REGISTRY_H_
#define FSI_API_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/algorithm.h"
#include "core/cost.h"

namespace fsi {

/// Parsed options of one algorithm spec, handed to the descriptor factory.
/// Factories *consume* the keys they understand via the Take* getters; the
/// registry rejects the spec if any key is left unconsumed, so option typos
/// surface as errors instead of silently ignored settings.
class AlgorithmOptions {
 public:
  /// The seed for this instantiation: the `seed=` option key when present,
  /// otherwise the seed passed to AlgorithmRegistry::Create.
  std::uint64_t seed() const { return seed_; }

  /// Consumes and returns the raw value of `key`, if present.
  std::optional<std::string_view> Take(std::string_view key);

  /// Typed variants; throw std::invalid_argument on malformed values.
  int TakeInt(std::string_view key, int def);
  std::size_t TakeSize(std::string_view key, std::size_t def);
  double TakeDouble(std::string_view key, double def);
  bool TakeBool(std::string_view key, bool def);

  /// Keys never consumed by a Take* call (registry error reporting).
  std::vector<std::string_view> UnconsumedKeys() const;

  /// Algorithm name the options belong to (error message context).
  std::string_view algorithm() const { return algorithm_; }

 private:
  friend class AlgorithmRegistry;
  AlgorithmOptions(std::string_view algorithm, std::uint64_t seed,
                   std::vector<std::pair<std::string, std::string>> kv)
      : algorithm_(algorithm), seed_(seed), kv_(std::move(kv)),
        consumed_(kv_.size(), false) {}

  [[noreturn]] void BadValue(std::string_view key, std::string_view value,
                             std::string_view expected) const;

  std::string algorithm_;
  std::uint64_t seed_;
  std::vector<std::pair<std::string, std::string>> kv_;
  std::vector<bool> consumed_;
};

/// One registered algorithm.
struct AlgorithmDescriptor {
  /// Registry name, matching the paper's figures (e.g. "RanGroupScan").
  std::string name;
  /// True for the Section 4.1 compressed-structure variants.
  bool compressed = false;
  /// Maximum k the algorithm supports (IntGroup: 2; most: unlimited).
  std::size_t max_query_sets = SIZE_MAX;
  /// Human-readable option-key summary for --list output and error
  /// messages, e.g. "m=<int>,w=<int>,memoize=<bool>".  Empty: no options
  /// beyond "seed".
  std::string options_help;
  /// Aliases (e.g. "RanGroupScan2") are registered hidden: creatable by
  /// name but excluded from the default Names() listing.
  bool hidden = false;
  /// Cost hook for the planner (core/cost.h): predicted nanoseconds for one
  /// pairwise intersection step.  nullptr when the algorithm publishes no
  /// cost model — the planner then never selects it, and intersect_cli
  /// --list shows it without a cost column entry.
  StepCostFn cost = nullptr;
  /// Builds an instance; must consume every option key it supports.
  std::function<std::unique_ptr<IntersectionAlgorithm>(AlgorithmOptions&)>
      make;
};

/// Thread-safe process-wide registry.  Registration only appends;
/// descriptors live for the process lifetime, so the string_views returned
/// by Names() remain valid.
class AlgorithmRegistry {
 public:
  /// The global registry, with every built-in algorithm pre-registered.
  static AlgorithmRegistry& Global();

  /// Registers a descriptor; throws std::invalid_argument on a duplicate
  /// or empty name, or a missing factory.
  void Register(AlgorithmDescriptor descriptor);

  /// Looks up a descriptor by exact name (no option suffix); nullptr when
  /// absent.  The pointer stays valid for the registry's lifetime.
  const AlgorithmDescriptor* Find(std::string_view name) const;

  /// Instantiates an algorithm from a spec string "Name[:k=v[,k=v]...]".
  /// Throws std::invalid_argument for unknown names, unknown option keys
  /// and malformed values.
  std::unique_ptr<IntersectionAlgorithm> Create(
      std::string_view spec,
      std::uint64_t seed = kDefaultAlgorithmSeed) const;

  /// Registered names in registration order; hidden aliases only when
  /// `include_hidden`.
  std::vector<std::string_view> Names(bool include_hidden = false) const;

  /// Names filtered on the compressed flag (the Section 4 / Section 4.1
  /// casts); hidden aliases are always excluded.
  std::vector<std::string_view> Names(bool compressed,
                                      bool include_hidden) const;

  /// Descriptors in registration order (for --list style output).
  std::vector<const AlgorithmDescriptor*> Descriptors(
      bool include_hidden = false) const;

 private:
  mutable std::mutex mutex_;
  std::deque<AlgorithmDescriptor> descriptors_;  // stable addresses
  std::unordered_map<std::string_view, const AlgorithmDescriptor*> index_;
};

/// Registers a descriptor at static-initialization time:
///
///   namespace {
///   const fsi::AlgorithmRegistrar kRegisterMine({
///       .name = "Mine", .make = [](fsi::AlgorithmOptions& o) { ... }});
///   }  // namespace
struct AlgorithmRegistrar {
  explicit AlgorithmRegistrar(AlgorithmDescriptor descriptor) {
    AlgorithmRegistry::Global().Register(std::move(descriptor));
  }
};

}  // namespace fsi

#endif  // FSI_API_REGISTRY_H_
