// Boolean query algebra over prepared sets: fsi::Expr.
//
// The flat conjunctive fsi::Query covers the paper's core problem — the
// intersection of k preprocessed sets — but real workloads (shopping
// filters, keyword search) are boolean *expressions*.  Expr extends the
// query surface to an expression tree:
//
//   fsi::Engine engine;                          // any engine
//   fsi::PreparedSet a = engine.Prepare(...);    // leaves are prepared sets
//   fsi::PreparedSet b = engine.Prepare(...);
//   fsi::PreparedSet c = engine.Prepare(...);
//
//   fsi::Expr e = fsi::Expr::Diff(
//       fsi::Expr::And({fsi::Expr::Set(a), fsi::Expr::Set(b)}),
//       fsi::Expr::Set(c));                      // (a ∩ b) \ c
//   fsi::ElemList r = engine.Query(e).Materialize();
//
// Node types (the grammar; docs/ALGEBRA.md walks the rewrites):
//   Set(s)            — leaf: one PreparedSet (immutable or mutable)
//   And({e...})       — intersection of >= 1 subexpressions
//   Or({e...})        — union of >= 1 subexpressions
//   Diff(e, f)        — difference e \ f (the Not against an enclosing
//                       AND context: And({x, Diff(u, y)}) is x ∧ ¬y
//                       relative to u)
//   AtLeast(t, {e...})— elements in at least t of the k subexpressions
//                       (t = k is And, t = 1 is Or; the Section 6
//                       t-threshold machinery, core/threshold.h, serves
//                       the all-leaf case on grouped structures)
//   None()            — the constant empty set (absorbing element)
//
// Engine::Query(expr) first *optimizes* the tree (OptimizeExpr below):
// And/Or flattening and idempotent dedup, difference pushdown
// (And({x, Diff(a,b)}) -> Diff(And({x,a}), b)), threshold degeneration
// (AtLeast(k,·) -> And, AtLeast(1,·) -> Or, t > k -> None), and constant
// folding.  Evaluation then runs bottom-up with smallest-first ordering
// and density-corrected cardinality estimates per node; conjunctions of
// immutable leaves execute through the engine's native k-way path (on a
// planner engine: the full per-step cost-model plan), and all-leaf
// AtLeast nodes on grouped structures run the count-merge of
// core/threshold.h.  Query::Explain() renders the chosen tree.
//
// Memoization: an Engine owns an ExprCache (EngineOptions::
// expr_cache_bytes) memoizing subexpression results keyed on the node's
// structural fingerprint — node kinds, thresholds and leaf identities,
// with each *mutable* leaf's version() mixed in, so Insert/Erase/Compact
// invalidate every cached result over that leaf by changing its key.
// Hot subtrees shared across queries (skewed traffic) are then computed
// once; a cache hit is bitwise-identical to a cold evaluation because
// every evaluation of a node key sees the same leaf snapshots.
//
// Thread-safety matches the engine layer: a const Engine, its
// PreparedSets and Exprs may be shared across threads (Expr is an
// immutable value; copies share nodes), the cache is internally
// synchronized, and each query terminal observes one consistent snapshot
// per mutable leaf.
//
// Arity note: expression queries have no max_query_sets() limit — a
// conjunction wider than the engine algorithm's native arity simply
// evaluates as a pairwise chain.

#ifndef FSI_API_EXPR_H_
#define FSI_API_EXPR_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/engine.h"

namespace fsi {

/// The node types of the boolean algebra.
enum class ExprKind {
  kSet,      // leaf: one PreparedSet
  kAnd,      // intersection
  kOr,       // union
  kDiff,     // difference (exactly two children: include \ exclude)
  kAtLeast,  // t-of-k threshold
  kNone,     // constant empty set
};

std::string_view ToString(ExprKind kind);

class Expr;

/// One immutable tree node.  Public so the evaluator and tests can walk
/// trees; construct through the Expr builders, which validate shape.
struct ExprNode {
  ExprKind kind = ExprKind::kNone;
  /// And/Or/AtLeast: >= 1 children; Diff: exactly {include, exclude}.
  std::vector<Expr> children;
  /// AtLeast only: the threshold t, 1 <= t <= children.size().
  std::size_t threshold = 0;
  /// kSet only: the leaf handle (shared ownership of the structure).
  PreparedSet leaf;
};

/// A value-semantic boolean expression over prepared sets.  Immutable;
/// copies share the underlying nodes, so subtrees can be reused across
/// many queries (which is exactly what the memoization layer rewards).
/// A default-constructed Expr is an empty handle, rejected by
/// Engine::Query — distinct from None(), the valid constant-empty set.
class Expr {
 public:
  Expr() = default;

  /// Leaf over one prepared set (immutable or mutable handle; copies of
  /// the handle share the underlying set).  Throws std::invalid_argument
  /// on an empty handle.
  static Expr Set(const PreparedSet& set);

  /// Intersection of >= 1 subexpressions.  Throws on zero children or
  /// any empty-handle child.
  static Expr And(std::vector<Expr> children);

  /// Union of >= 1 subexpressions.
  static Expr Or(std::vector<Expr> children);

  /// Difference include \ exclude.
  static Expr Diff(Expr include, Expr exclude);

  /// Elements present in at least `threshold` of the children (counted
  /// with multiplicity: a child listed twice contributes twice).  Throws
  /// on threshold == 0 or zero children; threshold > children.size() is
  /// a valid (always-empty) expression.
  static Expr AtLeast(std::size_t threshold, std::vector<Expr> children);

  /// The constant empty set.
  static Expr None();

  bool empty_handle() const { return node_ == nullptr; }
  ExprKind kind() const { return node_->kind; }
  std::size_t num_children() const { return node_->children.size(); }
  const Expr& child(std::size_t i) const { return node_->children[i]; }
  std::size_t threshold() const { return node_->threshold; }
  const PreparedSet& leaf() const { return node_->leaf; }
  /// Leaves in the whole tree (a shared subtree counts once per use).
  std::size_t num_leaves() const;
  /// Grammar rendering, e.g. "diff(and(set, set), set)".
  std::string ToString() const;

  /// The underlying node (never null for a non-empty handle).
  const ExprNode* node() const { return node_.get(); }
  const std::shared_ptr<const ExprNode>& shared_node() const { return node_; }

 private:
  explicit Expr(std::shared_ptr<const ExprNode> node)
      : node_(std::move(node)) {}

  std::shared_ptr<const ExprNode> node_;
};

/// Operator sugar: a & b, a | b, a - b.
inline Expr operator&(const Expr& a, const Expr& b) {
  return Expr::And({a, b});
}
inline Expr operator|(const Expr& a, const Expr& b) {
  return Expr::Or({a, b});
}
inline Expr operator-(const Expr& a, const Expr& b) {
  return Expr::Diff(a, b);
}

/// The algebraic rewrite pass Engine::Query(expr) applies (exposed for
/// tests and Explain).  Semantics-preserving on the *effective* sets:
///  * And/Or flattening (nested same-kind nodes fold into the parent)
///    and idempotent dedup (structurally identical children collapse);
///  * constant folding: an empty immutable leaf becomes None; None
///    absorbs And, drops out of Or, and short-circuits Diff;
///  * difference pushdown: And({x.., Diff(a,b), ..}) ->
///    Diff(And({x..,a,..}), Or({b..})) and Diff(Diff(a,b),c) ->
///    Diff(a, Or({b,c})) — one subtraction at the top instead of one
///    per branch;
///  * threshold degeneration: AtLeast(t,{e...k}) with t == k -> And,
///    t == 1 -> Or, t > k -> None; empty children leave the count.
/// Mutable leaves are never constant-folded (their size can change).
Expr OptimizeExpr(const Expr& expr);

/// Counters of one ExprCache (Engine::expr_cache()->stats()).
struct ExprCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
};

/// A node's structural fingerprint: 128 bits over (kind, threshold,
/// children fingerprints, leaf identity, mutable-leaf version).
struct ExprKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  friend bool operator==(const ExprKey&, const ExprKey&) = default;
};

/// The subexpression result cache: an LRU over (fingerprint -> sorted
/// result list), byte-bounded, shared by every query of an Engine (and
/// its copies).  Internally synchronized — BatchRunner workers hit it
/// concurrently.  Invalidation is structural: a mutable leaf's version()
/// is part of every enclosing fingerprint, so mutations simply stop the
/// stale entries being looked up and the LRU ages them out.
///
/// Entries pin the leaf structures they were computed from (shared
/// ownership), so a freed-and-reallocated structure can never alias a
/// live fingerprint.
class ExprCache {
 public:
  explicit ExprCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

  /// The cached result for `key`, or null.  Counts a hit or miss.
  std::shared_ptr<const ElemList> Lookup(const ExprKey& key);

  /// Inserts (or refreshes) `key`; `pins` keeps the source structures
  /// alive for the entry's lifetime.  Evicts LRU entries past max_bytes.
  void Insert(const ExprKey& key, std::shared_ptr<const ElemList> elems,
              std::vector<std::shared_ptr<const void>> pins);

  ExprCacheStats stats() const;
  void Clear();
  std::size_t max_bytes() const { return max_bytes_; }

 private:
  struct Entry {
    ExprKey key;
    std::shared_ptr<const ElemList> elems;
    std::vector<std::shared_ptr<const void>> pins;
    std::size_t bytes = 0;
  };
  struct KeyHash {
    std::size_t operator()(const ExprKey& k) const {
      return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ULL));
    }
  };

  const std::size_t max_bytes_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<ExprKey, std::list<Entry>::iterator, KeyHash> index_;
  std::size_t bytes_ = 0;
  ExprCacheStats stats_;
};

namespace expr_internal {

/// What the evaluator needs from the engine (all borrowed; the Query
/// object holding them owns shared references).
struct EvalContext {
  const IntersectionAlgorithm* algorithm = nullptr;
  const PlannerAlgorithm* planner = nullptr;  // null on explicit engines
  ExprCache* cache = nullptr;                 // null disables memoization
};

/// Per-run measurements folded into QueryStats by the terminal.
struct EvalStats {
  std::size_t elements_scanned = 0;
  double predicted_micros = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

/// Evaluates an (optimized) tree bottom-up into `*out`, sorted ascending.
/// Takes one consistent snapshot per mutable leaf at entry.
void Evaluate(const ExprNode& root, const EvalContext& ctx, EvalStats* stats,
              ElemList* out);

/// The Explain() walk: cardinality estimates per node, algorithm choice
/// annotations, and the rendered tree (QueryPlan::tree) — no execution.
QueryPlan PlanExpr(const ExprNode& root, const EvalContext& ctx);

}  // namespace expr_internal

}  // namespace fsi

#endif  // FSI_API_EXPR_H_
