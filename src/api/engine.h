// The production entry point: Engine, PreparedSet and Query.
//
// The paper's framework splits a one-time preprocessing stage from an
// online stage intersecting k preprocessed sets.  The raw algorithm API
// (core/algorithm.h) exposes that split literally — `PreprocessedSet*`
// spans, downcasts inside each algorithm, and non-owning lifetime rules.
// This layer wraps it in owning, checked handles:
//
//   fsi::Engine engine("RanGroupScan:m=2");          // registry spec
//   fsi::PreparedSet a = engine.Prepare(list_a);     // owns its structure
//   fsi::PreparedSet b = engine.Prepare(list_b);
//   fsi::ElemList both =
//       engine.Query({&a, &b}).Materialize();        // sorted result
//   std::size_t n = engine.Query({&a, &b}).Limit(10).Count();
//   engine.Query({&a, &b}).Unordered().Visit([](fsi::Elem e) { ... });
//
// Guarantees the raw API cannot give:
//  * A PreparedSet keeps its algorithm alive (shared ownership), so the
//    structure can never outlive the hash functions it was built with.
//  * Using a PreparedSet with an Engine other than the one that built it
//    is a checked std::invalid_argument, not undefined behaviour — the
//    old `static_cast` downcast footgun.
//  * Queries exceeding the algorithm's arity limit (IntGroup: k == 2)
//    are rejected up front.
//  * Input validation is governed by an explicit ValidationPolicy
//    (full O(n) checking on by default in Debug, off in Release).
//
// Thread-safety: a const Engine and its PreparedSets may be shared across
// threads.  Query objects are per-thread values: build one per query (or
// reuse one per thread — terminals may be invoked repeatedly).
// Mutable sets (Engine::PrepareMutable) additionally allow concurrent
// Insert/Erase while readers run lock-free: every query terminal observes
// one consistent snapshot of each mutable input, taken when the terminal
// starts (see docs/ARCHITECTURE.md, "Mutability & epochs").

#ifndef FSI_API_ENGINE_H_
#define FSI_API_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/algorithm.h"
#include "core/cost.h"

namespace fsi {

class PlannerAlgorithm;  // the cost-model planner (api/planner.h)
class MutableSetCore;    // the mutable-set runtime (api/epoch.h)
class Expr;              // boolean expression tree (api/expr.h)
struct ExprNode;
class ExprCache;  // memoized subexpression results (api/expr.h)

namespace expr_internal {
struct Access;  // the expression evaluator's keyhole (api/expr.cc)
}  // namespace expr_internal

namespace storage {
class SnapshotWriter;  // snapshot container (storage/snapshot.h)
class SnapshotReader;
class MappedFile;      // zero-copy backing (storage/mapped_file.h)
}  // namespace storage

/// Construction options for Engine::PrepareMutable — the compaction
/// policy of one mutable set.  Compaction merges the delta tier (insert
/// buffer + erase tombstones, core/delta_set.h) back into the base
/// structure; until it runs, every query pays a fixup pass proportional
/// to the delta size.
struct MutableSetOptions {
  /// Compact when |delta| >= compact_fill * |base| ...
  double compact_fill = 0.10;
  /// ... but never before |delta| reaches this floor (tiny sets would
  /// otherwise recompact on every mutation).
  std::size_t compact_min = 1024;
  /// true: rebuilds run on the process-wide background worker and swap in
  /// atomically (writers never block on a rebuild).  false: no automatic
  /// compaction — call PreparedSet::Compact() explicitly.
  bool background_compaction = true;
};

/// Governs whether Prepare() runs the full O(n) sorted/duplicate-free
/// input validation.  kDefault resolves per build type: enabled in Debug,
/// disabled in Release (where validating every posting list on index
/// build would cost a full extra pass per set).
enum class ValidationPolicy {
  kDefault,
  kFull,  // always validate, any build type
  kOff,   // never validate (caller guarantees sorted, duplicate-free input)
};

/// Resolves a policy against the build type.
constexpr bool ValidationEnabled(ValidationPolicy policy) {
#ifdef NDEBUG
  return policy == ValidationPolicy::kFull;
#else
  return policy != ValidationPolicy::kOff;
#endif
}

/// Per-query measurements, available from Query::stats() after a terminal
/// (Materialize / Count / Visit / Execute) has run.
struct QueryStats {
  /// Number of input sets (k).
  std::size_t num_sets = 0;
  /// Total elements across the input structures — the data volume the
  /// query touches in the worst case.
  std::size_t elements_scanned = 0;
  /// Groups in the coarsest grouped input structure — an upper bound on
  /// the group combinations the randomized-partition algorithms probe.
  /// 0 when the algorithm builds no group decomposition.
  std::uint64_t groups_probed = 0;
  /// Result-set size (after any Limit).
  std::size_t result_size = 0;
  /// Wall time of the last terminal, in microseconds.
  double wall_micros = 0.0;
  /// Cost-model prediction for this query, in microseconds (valid
  /// immediately, like the structural fields).  Filled by the planner's
  /// calibrated model on planner engines, by the algorithm's own cost hook
  /// with the built-in constants on explicit-spec engines, and 0 when the
  /// algorithm publishes no cost model.  Compare against wall_micros to
  /// judge the model (see Query::Explain and docs/PLANNER.md).
  double predicted_micros = 0.0;
};

struct QueryPlan;  // the chosen execution plan (api/planner.h)

/// A value-semantic handle owning one preprocessed set together with a
/// shared reference to the algorithm that built it.  Copyable (copies
/// share the underlying structure); cheap to move.  A default-constructed
/// handle is empty and rejected by Engine::Query.
///
/// Handles come in two flavours:
///  * Engine::Prepare builds an *immutable* set — the original
///    build-once/read-only structure; Insert/Erase throw.
///  * Engine::PrepareMutable builds a *mutable* set: Insert/Erase run
///    concurrently with lock-free readers (queries, Contains), absorbing
///    into a sorted delta tier that background compaction periodically
///    merges back into the base structure (see docs/ARCHITECTURE.md,
///    "Mutability & epochs").  Copies share the same mutable set.
class PreparedSet {
 public:
  PreparedSet() = default;

  bool empty_handle() const { return set_ == nullptr && core_ == nullptr; }
  /// Whether the handle supports Insert/Erase (built by PrepareMutable).
  bool is_mutable() const { return core_ != nullptr; }
  /// Number of elements in the underlying (effective) set.
  std::size_t size() const;
  /// Structure footprint in 64-bit words (including any delta tier).
  std::size_t SizeInWords() const;
  /// Name of the algorithm that built the structure ("" when empty).
  std::string_view algorithm_name() const {
    return algorithm_ ? algorithm_->name() : std::string_view();
  }
  /// Escape hatch to the raw structure.  nullptr when empty — and for
  /// mutable sets, whose current structure is only reachable through a
  /// consistent snapshot (the raw pointer could be compacted away at any
  /// moment).
  const PreprocessedSet* raw() const { return set_.get(); }
  /// True when this set holds the block-compressed representation (picked
  /// by EngineOptions::space_budget_bytes on a planner engine).  Mutable
  /// handles are never compressed.
  bool compressed() const;

  // Mutation API — mutable handles only; the others throw
  // std::logic_error.  All of these are safe to call concurrently with
  // any number of readers (queries over this set, Contains) and with each
  // other; mutations on one set serialize on an internal writer mutex.

  /// Adds `value` to the set; returns false when already present.
  bool Insert(Elem value);
  /// Removes `value` from the set; returns false when not present.
  bool Erase(Elem value);
  /// Lock-free membership probe of the effective set.
  bool Contains(Elem value) const;
  /// |insert buffer| + |erase tombstones| pending against the base.
  std::size_t delta_size() const;
  /// Monotone version counter (bumped by every mutation and compaction).
  std::uint64_t version() const;
  /// Synchronously merges the delta tier into a rebuilt base structure.
  void Compact();
  /// Blocks until no background compaction is scheduled or running for
  /// this set.
  void WaitForCompaction() const;

 private:
  friend class Engine;
  friend struct expr_internal::Access;
  PreparedSet(std::shared_ptr<const IntersectionAlgorithm> algorithm,
              std::shared_ptr<const PreprocessedSet> set)
      : algorithm_(std::move(algorithm)), set_(std::move(set)) {}
  PreparedSet(std::shared_ptr<const IntersectionAlgorithm> algorithm,
              std::shared_ptr<MutableSetCore> core)
      : algorithm_(std::move(algorithm)), core_(std::move(core)) {}

  /// Throws std::logic_error unless is_mutable().
  void RequireMutable(const char* operation) const;

  std::shared_ptr<const IntersectionAlgorithm> algorithm_;
  std::shared_ptr<const PreprocessedSet> set_;  // immutable handles
  std::shared_ptr<MutableSetCore> core_;        // mutable handles
};

/// A fluent, self-contained query: holds shared ownership of everything it
/// needs, so it stays valid even if the Engine and the PreparedSet handles
/// it was built from are destroyed first.
///
/// Builders: Unordered(), Limit(n), CountOnly().  Terminals: Materialize()
/// (sorted unless Unordered), ExecuteInto() (allocation-free hot path),
/// Count(), Visit(fn), Execute().  Terminals may be called repeatedly;
/// each run refreshes stats().
class Query {
 public:
  /// Result in unspecified order — skips the O(r log r) sort the paper's
  /// partition-based algorithms would otherwise pay (Figure 5 regime).
  Query& Unordered() {
    ordered_ = false;
    return *this;
  }
  /// Keep at most `n` result elements (the first n in document-id order
  /// for ordered queries; an arbitrary n otherwise).
  Query& Limit(std::size_t n) {
    limit_ = n;
    return *this;
  }
  /// Declares that only stats().result_size is wanted; Execute() then
  /// discards elements.  Equivalent shortcut: Count().
  Query& CountOnly() {
    count_only_ = true;
    return *this;
  }

  /// Runs the intersection and returns the result elements.
  ElemList Materialize();

  /// Hot path: runs the intersection into `*out` (cleared first) and
  /// returns the stats.  No allocation beyond `out`'s capacity growth.
  QueryStats ExecuteInto(ElemList* out);

  /// Count-only sink: the result-set size (after Limit) without handing
  /// out elements; reuses an internal scratch buffer across runs.
  std::size_t Count();

  /// Visitor sink: invokes `visit(Elem)` per result element without
  /// materializing a caller-owned vector.  A visitor returning bool can
  /// stop early by returning false.  Returns the number visited.
  template <typename Visitor>
  std::size_t Visit(Visitor&& visit) {
    ExecuteInto(&scratch_);
    std::size_t visited = 0;
    for (Elem e : scratch_) {
      if constexpr (std::is_convertible_v<
                        decltype(visit(std::declval<Elem>())), bool>) {
        ++visited;
        if (!visit(e)) break;
      } else {
        visit(e);
        ++visited;
      }
    }
    return visited;
  }

  /// Generic terminal for fluent chains ending in CountOnly(): runs the
  /// query and returns the stats.
  QueryStats Execute();

  /// Stats of the most recent terminal run (structural fields — num_sets,
  /// elements_scanned, groups_probed, predicted_micros — are valid
  /// immediately).
  const QueryStats& stats() const { return stats_; }

  /// The chosen execution plan, without running the query: set order,
  /// algorithm per step, and the cost model's per-step predictions.  On a
  /// planner engine (the default) this is the full cost-model plan; on an
  /// explicit-spec engine it is a single-algorithm pseudo-plan carrying
  /// the descriptor's cost prediction when one is published.
  QueryPlan Explain() const;

 private:
  friend class Engine;
  Query(std::shared_ptr<const IntersectionAlgorithm> algorithm,
        std::vector<const PreprocessedSet*> sets,
        std::vector<std::shared_ptr<const PreprocessedSet>> retained,
        std::vector<std::shared_ptr<MutableSetCore>> cores, QueryStats base,
        const PlannerAlgorithm* planner, std::shared_ptr<const QueryPlan> plan,
        double explicit_predicted)
      : algorithm_(std::move(algorithm)),
        sets_(std::move(sets)),
        retained_(std::move(retained)),
        cores_(std::move(cores)),
        stats_(base),
        planner_(planner),
        plan_(std::move(plan)),
        explicit_predicted_(explicit_predicted) {
    for (const auto& core : cores_) {
      if (core != nullptr) any_mutable_ = true;
    }
  }

  /// The terminal path for queries over >= 1 mutable set: snapshots every
  /// mutable input, re-plans against the snapshot (plans are cheap and a
  /// build-time plan could be arbitrarily stale after mutations), runs
  /// the base intersection, then applies the delta fixup
  /// (core/delta_set.h).  Each terminal run observes one consistent
  /// snapshot per set — concurrent mutations land in later runs.
  QueryStats ExecuteMutableInto(ElemList* out);

  /// Expression-mode construction (Engine::Query(const Expr&)): the query
  /// evaluates `expr` instead of a flat conjunction.  Defined with the
  /// evaluator in api/expr.cc.
  Query(std::shared_ptr<const IntersectionAlgorithm> algorithm,
        std::shared_ptr<const ExprNode> expr, std::shared_ptr<ExprCache> cache,
        const PlannerAlgorithm* planner, QueryStats base)
      : algorithm_(std::move(algorithm)),
        stats_(base),
        planner_(planner),
        expr_(std::move(expr)),
        expr_cache_(std::move(cache)) {}

  /// The terminal path for expression queries: evaluates the optimized
  /// tree bottom-up (api/expr.cc) with one consistent snapshot per
  /// mutable leaf and the engine's memoization cache.
  QueryStats ExecuteExprInto(ElemList* out);

  std::shared_ptr<const IntersectionAlgorithm> algorithm_;
  std::vector<const PreprocessedSet*> sets_;
  std::vector<std::shared_ptr<const PreprocessedSet>> retained_;
  /// Index-aligned with sets_: the mutable-set runtime per input, nullptr
  /// for immutable inputs.  Non-empty only when any input is mutable.
  std::vector<std::shared_ptr<MutableSetCore>> cores_;
  bool any_mutable_ = false;
  bool ordered_ = true;
  std::size_t limit_ = SIZE_MAX;
  bool count_only_ = false;
  ElemList scratch_;  // reused by the Count/Visit/Execute sinks
  QueryStats stats_;
  /// Set on planner engines: the plan computed once at query build, used
  /// by the terminals and Explain() so a query is never planned twice.
  /// Null when any input is mutable — those queries re-plan per terminal
  /// run against a fresh snapshot.
  const PlannerAlgorithm* planner_ = nullptr;
  std::shared_ptr<const QueryPlan> plan_;
  /// Explicit-spec engines only: the cost hook's base prediction, reused
  /// by mutable terminal runs (the hook itself stays with the Engine).
  double explicit_predicted_ = 0.0;
  /// Expression mode (Engine::Query(const Expr&)): the optimized tree and
  /// the engine's subexpression cache.  Null for flat queries.
  std::shared_ptr<const ExprNode> expr_;
  std::shared_ptr<ExprCache> expr_cache_;
};

/// Construction options for Engine.
struct EngineOptions {
  std::uint64_t seed = kDefaultAlgorithmSeed;
  ValidationPolicy validation = ValidationPolicy::kDefault;
  /// Byte budget of the expression-query memoization cache (api/expr.h):
  /// subexpression results keyed on structural fingerprints, shared by
  /// every query of this engine and its copies.  0 disables memoization.
  std::size_t expr_cache_bytes = 16u << 20;
  /// The space-budget dial (planner engines only; setting it on an
  /// explicit-spec engine throws std::invalid_argument).  0 — the default —
  /// means unlimited: every Prepare builds the fast two-structure
  /// representation.  A finite budget caps the total footprint of this
  /// engine's prepared structures (shared across Engine copies): Prepare
  /// keeps building uncompressed while the running total fits, then
  /// switches to the ~4x-smaller compressed block representation
  /// (docs/COMPRESSION.md); PrepareBatch instead flips the sets with the
  /// best bytes-saved-per-predicted-microsecond greedily until the batch
  /// fits.  Results are bitwise identical either way.
  std::size_t space_budget_bytes = 0;
  /// Hot/small carve-out for the dial: sets smaller than this are always
  /// kept uncompressed (compression saves little absolute space and the
  /// decode tax hits every query).  Ignored when space_budget_bytes == 0.
  std::size_t min_compress_size = 1024;
};

/// Options for Engine::LoadSnapshot.
struct SnapshotLoadOptions {
  ValidationPolicy validation = ValidationPolicy::kDefault;
  /// Verify the per-section CRC64s (one linear pass over the file).  The
  /// header checksum is always verified.
  bool verify_checksums = true;
  /// Compaction policy applied to sets loaded as mutable (the snapshot
  /// stores elements, not policy; InvertedIndex::Open threads its saved
  /// policy through here).
  MutableSetOptions mutable_options = {};
};

/// What Engine::LoadSnapshot did — load mode, byte counts, and how each
/// set came back (reported by intersect_cli --stats).
struct SnapshotInfo {
  std::uint32_t version_major = 0;
  std::uint32_t version_minor = 0;
  /// Registry spec the snapshot was saved with (and the loaded engine
  /// reconstructed from).
  std::string spec;
  std::uint64_t seed = 0;
  /// "mmap" (pages lazily, zero-copy) or "read" (heap fallback).
  std::string load_mode;
  /// Size of the mapping (the whole snapshot file).
  std::size_t mapped_bytes = 0;
  /// Base address of the mapping — lets callers (and tests) verify that
  /// loaded structure spans alias it.
  const void* map_base = nullptr;
  std::size_t sets_total = 0;
  /// Sets whose structure spans alias the mapping directly (no per-element
  /// copy or parse).
  std::size_t sets_zero_copy = 0;
  /// Sets stored as raw elements (no flat structure layout registered for
  /// their representation) and re-preprocessed on load.
  std::size_t sets_rebuilt = 0;
  /// Sets restored in the block-compressed representation (space-budget
  /// engines; storage section kSectionCompressed).
  std::size_t sets_compressed = 0;
  /// Mutable sets, loaded as frozen base + empty delta.
  std::size_t sets_mutable = 0;
  /// calibration_source() of the loaded planner ("" for non-planner
  /// engines or snapshots without a calibration section).
  std::string calibration_source;
};

/// The result of Engine::LoadSnapshot: the reconstructed engine, its
/// prepared sets (same order as at save), and the load report.
struct LoadedSnapshot;

/// A thread-safe intersection engine: one algorithm instance (built from a
/// registry spec or adopted), input validation policy, prepared-set
/// construction and query building.  Copyable — copies share the same
/// algorithm instance, so their PreparedSets are interchangeable.
class Engine {
 public:
  /// Zero-config: the cost-model planner (api/planner.h) picks the
  /// algorithm per query.  Equivalent to Engine("Planner").
  Engine() : Engine("Planner") {}

  /// Builds the engine from a registry spec, e.g. "Hybrid" or
  /// "RanGroupScan:m=2,w=4".  Throws std::invalid_argument for unknown
  /// names or malformed options.
  explicit Engine(std::string_view spec, EngineOptions options = {});

  /// Adopts an already-constructed algorithm (e.g. one with custom
  /// Options structs not expressible as a spec string).
  explicit Engine(std::unique_ptr<IntersectionAlgorithm> algorithm,
                  EngineOptions options = {});

  /// Preprocesses one sorted, duplicate-free set into an owning handle.
  /// Runs full input validation when the ValidationPolicy enables it and
  /// throws std::invalid_argument on invalid input.
  PreparedSet Prepare(std::span<const Elem> set) const;
  PreparedSet Prepare(std::initializer_list<Elem> set) const {
    return Prepare(std::span<const Elem>(set.begin(), set.size()));
  }

  /// Preprocesses one sorted, duplicate-free set into a *mutable* handle:
  /// PreparedSet::Insert/Erase then run concurrently with lock-free
  /// readers, and background compaction keeps the structure close to its
  /// freshly-prepared form (see MutableSetOptions).  Queries mixing
  /// mutable and immutable sets are fine.  Costs roughly one extra copy
  /// of the element array over Prepare() (the base elements are retained
  /// for delta merging), so the read-only paths keep using Prepare().
  PreparedSet PrepareMutable(std::span<const Elem> set,
                             MutableSetOptions options = {}) const;
  PreparedSet PrepareMutable(std::initializer_list<Elem> set,
                             MutableSetOptions options = {}) const {
    return PrepareMutable(std::span<const Elem>(set.begin(), set.size()),
                          options);
  }

  /// Prepares many sets at once, applying the space-budget dial globally:
  /// when the whole batch fits the budget uncompressed nothing changes;
  /// otherwise the sets with the best bytes-saved-per-predicted-
  /// microsecond are flipped to the compressed representation, greedily,
  /// until the batch fits (or every eligible set is compressed).  With no
  /// budget (or on a non-planner engine) this is just a Prepare loop.
  /// InvertedIndex::Finalize builds its postings through this.
  std::vector<PreparedSet> PrepareBatch(std::span<const ElemList> lists) const;

  /// The dial's settings and the running footprint it has admitted, in
  /// bytes (0 budget = unlimited; the running total is shared with Engine
  /// copies).
  std::size_t space_budget_bytes() const { return space_budget_bytes_; }
  std::size_t SpaceUsedBytes() const {
    return space_used_ ? static_cast<std::size_t>(space_used_->load()) : 0;
  }

  /// Builds a query over prepared sets.  Every handle must be non-empty
  /// and built by this engine (or a copy of it); violations throw
  /// std::invalid_argument.  An empty query materializes to an empty
  /// result.
  fsi::Query Query(std::initializer_list<const PreparedSet*> sets) const;
  fsi::Query Query(std::span<const PreparedSet* const> sets) const;
  fsi::Query Query(std::span<const PreparedSet> sets) const;

  /// Builds a query over a boolean expression tree (api/expr.h): And/Or/
  /// Diff/AtLeast over prepared-set leaves.  The tree is optimized
  /// (OptimizeExpr) at build; every leaf must be non-empty and built by
  /// this engine.  All sinks and builders compose as with flat queries;
  /// there is no arity limit.  Defined in api/expr.cc.
  fsi::Query Query(const Expr& expr) const;

  /// Convenience one-shot: prepare and intersect plain lists.
  ElemList IntersectLists(std::span<const ElemList> lists) const;

  // Snapshot persistence (docs/PERSISTENCE.md).  SaveSnapshot serializes
  // this engine plus the given prepared sets into one versioned file;
  // LoadSnapshot mmaps such a file and reconstructs the engine and sets,
  // aliasing flat structures directly into the mapping (zero per-element
  // copies).  Planner engines stamp their calibrated cost constants into
  // the file, so loading skips the ~100 ms startup measurement.

  /// Saves this engine and `sets` (handles built by this engine; same
  /// checks as Query) to `path`.  Mutable sets are saved as their current
  /// effective element set and load back as frozen base + empty delta.
  /// Throws std::invalid_argument on foreign/empty handles and
  /// storage::SnapshotError(kIo) on filesystem failure.
  void SaveSnapshot(const std::string& path,
                    std::span<const PreparedSet> sets) const;
  void SaveSnapshot(const std::string& path,
                    std::span<const PreparedSet* const> sets) const;

  /// Appends this engine's sections (engine meta, planner calibration,
  /// set table, payload) to an open writer — the composition point for
  /// containers embedding an engine image (InvertedIndex::Save).
  void WriteSnapshotSections(storage::SnapshotWriter& writer,
                             std::span<const PreparedSet* const> sets) const;

  /// Maps `path` and reconstructs the engine and its prepared sets.
  /// Throws storage::SnapshotError (typed: kIo / kBadMagic / kBadVersion /
  /// kForeignEndian / kAbiMismatch / kTruncated / kChecksum / kCorrupt) on
  /// anything malformed — a corrupt file never reaches undefined behavior.
  static LoadedSnapshot LoadSnapshot(const std::string& path,
                                     SnapshotLoadOptions options = {});

  /// The section-level load, given an already-validated reader.  `backing`
  /// keeps the mapped bytes alive and is retained by every zero-copy set;
  /// when null, the caller must keep the reader's bytes alive for the
  /// lifetime of the returned sets.
  static LoadedSnapshot LoadSnapshotSections(
      const storage::SnapshotReader& reader,
      std::shared_ptr<const storage::MappedFile> backing,
      SnapshotLoadOptions options = {});

  /// The registry spec this engine was built from (an adopted algorithm
  /// reports its name).
  const std::string& spec() const { return spec_; }
  std::uint64_t seed() const { return seed_; }

  std::string_view algorithm_name() const { return algorithm_->name(); }
  const IntersectionAlgorithm& algorithm() const { return *algorithm_; }
  /// The expression-query memoization cache (shared with Engine copies);
  /// null when EngineOptions::expr_cache_bytes == 0.
  const std::shared_ptr<ExprCache>& expr_cache() const { return expr_cache_; }
  /// Maximum query arity of the underlying algorithm.
  std::size_t max_query_sets() const { return algorithm_->max_query_sets(); }
  /// Whether Prepare() validates input (policy resolved per build type).
  bool validation_enabled() const { return validate_; }

 private:
  fsi::Query MakeQuery(std::span<const PreparedSet* const> sets) const;
  /// Resolves planner_view_ / cost_hook_ once, so building a query never
  /// takes the registry mutex.
  void ResolveCostInfo();
  /// Validates the space-budget options against the algorithm and sets up
  /// the shared footprint counter.
  void InitSpaceBudget(const EngineOptions& options);
  /// The streaming representation decision behind Prepare().
  std::unique_ptr<PreprocessedSet> PrepareStructure(
      std::span<const Elem> set) const;

  std::shared_ptr<const IntersectionAlgorithm> algorithm_;
  bool validate_;
  /// The spec/seed the engine was built from — stamped into snapshots so
  /// LoadSnapshot can reconstruct an identical engine.
  std::string spec_;
  std::uint64_t seed_ = kDefaultAlgorithmSeed;
  /// Non-null when algorithm_ is the planner (aliases algorithm_, which
  /// copies share, so the view stays valid across Engine copies).
  const PlannerAlgorithm* planner_view_ = nullptr;
  /// The algorithm's registry cost hook (null when none is published).
  StepCostFn cost_hook_ = nullptr;
  /// Memoized subexpression results for Query(const Expr&); shared across
  /// Engine copies.  Null when disabled.
  std::shared_ptr<ExprCache> expr_cache_;
  /// The space-budget dial (EngineOptions); the running footprint counter
  /// is shared across Engine copies so the budget is engine-wide.
  std::size_t space_budget_bytes_ = 0;
  std::size_t min_compress_size_ = 1024;
  std::shared_ptr<std::atomic<std::uint64_t>> space_used_;
};

struct LoadedSnapshot {
  Engine engine;
  /// Same order as passed to SaveSnapshot.
  std::vector<PreparedSet> sets;
  SnapshotInfo info;
};

}  // namespace fsi

#endif  // FSI_API_ENGINE_H_
