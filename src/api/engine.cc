#include "api/engine.h"

#include <algorithm>
#include <stdexcept>

#include "api/planner.h"
#include "api/registry.h"
#include "util/timer.h"

namespace fsi {

QueryPlan Query::Explain() const {
  if (plan_ != nullptr) return *plan_;
  return PlanQuery(*algorithm_, sets_);
}

ElemList Query::Materialize() {
  ElemList out;
  ExecuteInto(&out);
  return out;
}

QueryStats Query::ExecuteInto(ElemList* out) {
  Timer timer;
  out->clear();
  if (!sets_.empty()) {
    if (planner_ != nullptr) {
      planner_->ExecutePlan(sets_, *plan_, ordered_, out);
    } else if (ordered_) {
      algorithm_->Intersect(sets_, out);
    } else {
      algorithm_->IntersectUnordered(sets_, out);
    }
  }
  if (limit_ < out->size()) out->resize(limit_);
  stats_.result_size = out->size();
  stats_.wall_micros = timer.ElapsedMillis() * 1000.0;
  return stats_;
}

std::size_t Query::Count() {
  ExecuteInto(&scratch_);
  return stats_.result_size;
}

QueryStats Query::Execute() {
  ExecuteInto(&scratch_);
  if (count_only_) scratch_.clear();
  return stats_;
}

Engine::Engine(std::string_view spec, EngineOptions options)
    : algorithm_(AlgorithmRegistry::Global().Create(spec, options.seed)),
      validate_(ValidationEnabled(options.validation)) {
  ResolveCostInfo();
}

Engine::Engine(std::unique_ptr<IntersectionAlgorithm> algorithm,
               EngineOptions options)
    : algorithm_(std::move(algorithm)),
      validate_(ValidationEnabled(options.validation)) {
  if (algorithm_ == nullptr) {
    throw std::invalid_argument("Engine: null algorithm");
  }
  ResolveCostInfo();
}

void Engine::ResolveCostInfo() {
  planner_view_ = dynamic_cast<const PlannerAlgorithm*>(algorithm_.get());
  const AlgorithmDescriptor* descriptor =
      AlgorithmRegistry::Global().Find(algorithm_->name());
  cost_hook_ = descriptor == nullptr ? nullptr : descriptor->cost;
}

PreparedSet Engine::Prepare(std::span<const Elem> set) const {
  if (validate_) CheckSortedUnique(set, algorithm_->name());
  return PreparedSet(algorithm_, std::shared_ptr<const PreprocessedSet>(
                                     algorithm_->Preprocess(set)));
}

fsi::Query Engine::Query(
    std::initializer_list<const PreparedSet*> sets) const {
  return MakeQuery(std::span<const PreparedSet* const>(sets.begin(),
                                                       sets.size()));
}

fsi::Query Engine::Query(std::span<const PreparedSet* const> sets) const {
  return MakeQuery(sets);
}

fsi::Query Engine::Query(std::span<const PreparedSet> sets) const {
  std::vector<const PreparedSet*> pointers;
  pointers.reserve(sets.size());
  for (const PreparedSet& s : sets) pointers.push_back(&s);
  return MakeQuery(pointers);
}

fsi::Query Engine::MakeQuery(std::span<const PreparedSet* const> sets) const {
  if (sets.size() > algorithm_->max_query_sets()) {
    throw std::invalid_argument(
        std::string(algorithm_->name()) + ": query over " +
        std::to_string(sets.size()) + " sets exceeds max_query_sets() == " +
        std::to_string(algorithm_->max_query_sets()));
  }
  std::vector<const PreprocessedSet*> views;
  std::vector<std::shared_ptr<const PreprocessedSet>> retained;
  views.reserve(sets.size());
  retained.reserve(sets.size());
  QueryStats base;
  base.num_sets = sets.size();
  for (const PreparedSet* s : sets) {
    if (s == nullptr || s->empty_handle()) {
      throw std::invalid_argument(std::string(algorithm_->name()) +
                                  ": query over an empty PreparedSet handle");
    }
    if (s->algorithm_.get() != algorithm_.get()) {
      throw std::invalid_argument(
          "Engine(" + std::string(algorithm_->name()) +
          "): PreparedSet was built by a different engine (algorithm '" +
          std::string(s->algorithm_name()) +
          "'); structures are not interchangeable across engines");
    }
    views.push_back(s->set_.get());
    retained.push_back(s->set_);
    base.elements_scanned += s->set_->size();
    std::uint64_t groups = s->set_->NumGroups();
    if (groups > 0) {
      base.groups_probed = (base.groups_probed == 0)
                               ? groups
                               : std::min(base.groups_probed, groups);
    }
  }
  std::shared_ptr<const QueryPlan> plan;
  if (planner_view_ != nullptr) {
    plan = std::make_shared<const QueryPlan>(planner_view_->Plan(views));
    base.predicted_micros = plan->predicted_micros;
  } else if (cost_hook_ != nullptr) {
    base.predicted_micros =
        PlanExplicit(*algorithm_, views, cost_hook_).predicted_micros;
  }
  return fsi::Query(algorithm_, std::move(views), std::move(retained), base,
                    planner_view_, std::move(plan));
}

ElemList Engine::IntersectLists(std::span<const ElemList> lists) const {
  std::vector<PreparedSet> prepared;
  prepared.reserve(lists.size());
  for (const ElemList& list : lists) prepared.push_back(Prepare(list));
  return Query(prepared).Materialize();
}

}  // namespace fsi
