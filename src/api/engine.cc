#include "api/engine.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "api/epoch.h"
#include "api/expr.h"
#include "api/planner.h"
#include "api/registry.h"
#include "baseline/plain_set.h"
#include "core/delta_set.h"
#include "simd/intersect_kernels.h"
#include "util/timer.h"

namespace fsi {
namespace {

/// The sorted element array of a structure that exposes one (the planner's
/// composite and the plain-array baselines); nullopt otherwise.
std::optional<std::span<const Elem>> TryGetElems(const PreprocessedSet* set) {
  if (const auto* planned = dynamic_cast<const PlannedSet*>(set)) {
    // Compressed sets expose no raw array; callers fall back to the
    // algorithm-level intersect, which decodes on demand.
    if (!planned->has_plain()) return std::nullopt;
    return planned->elems();
  }
  if (const auto* plain = dynamic_cast<const PlainSet*>(set)) {
    return plain->elems();
  }
  return std::nullopt;
}

/// Per-set snapshot pass shared by the mutable terminal path and
/// Explain(): fills `views` with the snapshot structures and accumulates
/// the delta-volume totals the fixup cost model needs.
struct MutableQueryView {
  std::vector<MutableSetState> snapshots;     // index-aligned with sets
  std::vector<const PreprocessedSet*> views;  // snapshot structures
  std::size_t total_inserts = 0;
  std::size_t total_erases = 0;
  std::size_t max_base_size = 0;
  bool has_delta() const { return total_inserts + total_erases > 0; }
};

MutableQueryView SnapshotMutableSets(
    std::span<const PreprocessedSet* const> sets,
    std::span<const std::shared_ptr<MutableSetCore>> cores) {
  MutableQueryView view;
  view.snapshots.resize(sets.size());
  view.views.assign(sets.begin(), sets.end());
  for (std::size_t i = 0; i < sets.size(); ++i) {
    if (cores[i] != nullptr) {
      view.snapshots[i] = cores[i]->Snapshot();
      view.views[i] = view.snapshots[i].structure.get();
      view.total_inserts += view.snapshots[i].delta.insert_span().size();
      view.total_erases += view.snapshots[i].delta.erase_span().size();
    }
    view.max_base_size = std::max(view.max_base_size, view.views[i]->size());
  }
  return view;
}

}  // namespace

std::size_t PreparedSet::size() const {
  if (core_ != nullptr) return core_->size();
  return set_ != nullptr ? set_->size() : 0;
}

std::size_t PreparedSet::SizeInWords() const {
  if (core_ != nullptr) {
    MutableSetState snap = core_->Snapshot();
    // Structure + retained base elements + delta tier, in 64-bit words.
    std::size_t elem_words =
        ((snap.base->size() + snap.delta.size()) * sizeof(Elem) + 7) / 8;
    return snap.structure->SizeInWords() + elem_words;
  }
  return set_ != nullptr ? set_->SizeInWords() : 0;
}

bool PreparedSet::compressed() const {
  const auto* planned = dynamic_cast<const PlannedSet*>(set_.get());
  return planned != nullptr && !planned->has_plain();
}

void PreparedSet::RequireMutable(const char* operation) const {
  if (core_ == nullptr) {
    throw std::logic_error(
        std::string("PreparedSet::") + operation +
        ": handle is immutable (built by Engine::Prepare); mutation "
        "requires Engine::PrepareMutable");
  }
}

bool PreparedSet::Insert(Elem value) {
  RequireMutable("Insert");
  return core_->Insert(value);
}

bool PreparedSet::Erase(Elem value) {
  RequireMutable("Erase");
  return core_->Erase(value);
}

bool PreparedSet::Contains(Elem value) const {
  RequireMutable("Contains");
  return core_->Contains(value);
}

std::size_t PreparedSet::delta_size() const {
  return core_ != nullptr ? core_->delta_size() : 0;
}

std::uint64_t PreparedSet::version() const {
  return core_ != nullptr ? core_->version() : 0;
}

void PreparedSet::Compact() {
  RequireMutable("Compact");
  core_->Compact();
}

void PreparedSet::WaitForCompaction() const {
  RequireMutable("WaitForCompaction");
  core_->WaitForCompaction();
}

QueryPlan Query::Explain() const {
  if (expr_ != nullptr) {
    expr_internal::EvalContext ctx{algorithm_.get(), planner_,
                                   expr_cache_.get()};
    return expr_internal::PlanExpr(*expr_, ctx);
  }
  if (any_mutable_) {
    MutableQueryView mv = SnapshotMutableSets(sets_, cores_);
    QueryPlan plan = planner_ != nullptr ? planner_->Plan(mv.views)
                                         : PlanQuery(*algorithm_, mv.views);
    if (mv.has_delta()) {
      const CostConstants constants =
          planner_ != nullptr ? planner_->constants() : CostConstants{};
      PlanStep step;
      step.algorithm = "DeltaMerge";
      step.left_size = static_cast<std::size_t>(plan.est_result);
      step.left_estimated = true;
      step.right_size = mv.total_inserts + mv.total_erases;
      step.est_result = plan.est_result;
      step.predicted_micros =
          DeltaFixupMicros(sets_.size(), plan.est_result, mv.total_erases,
                           mv.total_inserts, mv.max_base_size, constants);
      plan.predicted_micros += step.predicted_micros;
      plan.steps.push_back(std::move(step));
    }
    return plan;
  }
  if (plan_ != nullptr) return *plan_;
  return PlanQuery(*algorithm_, sets_);
}

ElemList Query::Materialize() {
  ElemList out;
  ExecuteInto(&out);
  return out;
}

QueryStats Query::ExecuteInto(ElemList* out) {
  if (expr_ != nullptr) return ExecuteExprInto(out);
  if (any_mutable_) return ExecuteMutableInto(out);
  Timer timer;
  out->clear();
  if (!sets_.empty()) {
    if (planner_ != nullptr) {
      planner_->ExecutePlan(sets_, *plan_, ordered_, out);
    } else if (ordered_) {
      algorithm_->Intersect(sets_, out);
    } else {
      algorithm_->IntersectUnordered(sets_, out);
    }
  }
  if (limit_ < out->size()) out->resize(limit_);
  stats_.result_size = out->size();
  stats_.wall_micros = timer.ElapsedMillis() * 1000.0;
  return stats_;
}

QueryStats Query::ExecuteMutableInto(ElemList* out) {
  Timer timer;
  out->clear();
  const std::size_t k = sets_.size();
  // One consistent snapshot per mutable set; everything below — planning,
  // base intersection, delta fixup — runs against these owned snapshots,
  // immune to concurrent mutation and compaction.
  MutableQueryView mv = SnapshotMutableSets(sets_, cores_);
  // Structural stats reflect the snapshot, not the build-time state.
  stats_.elements_scanned = 0;
  stats_.groups_probed = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (cores_[i] != nullptr) {
      stats_.elements_scanned +=
          mv.snapshots[i].base->size() + mv.snapshots[i].delta.size();
    } else {
      stats_.elements_scanned += sets_[i]->size();
    }
    std::uint64_t groups = mv.views[i]->NumGroups();
    if (groups > 0) {
      stats_.groups_probed = (stats_.groups_probed == 0)
                                 ? groups
                                 : std::min(stats_.groups_probed, groups);
    }
  }
  const simd::Kernels& kernels = simd::DispatchedKernels();
  double est_result = 0.0;
  if (k > 0) {
    // Re-plan against the snapshot: a build-time plan could be
    // arbitrarily stale after mutations, and Plan() is a few float ops
    // per step.
    if (planner_ != nullptr) {
      QueryPlan plan = planner_->Plan(mv.views);
      est_result = plan.est_result;
      stats_.predicted_micros = plan.predicted_micros;
      planner_->ExecutePlan(mv.views, plan, ordered_, out);
    } else {
      std::size_t min_size = mv.views[0]->size();
      for (const PreprocessedSet* v : mv.views) {
        min_size = std::min(min_size, v->size());
      }
      est_result = static_cast<double>(min_size);
      stats_.predicted_micros = explicit_predicted_;
      if (ordered_) {
        algorithm_->Intersect(mv.views, out);
      } else {
        algorithm_->IntersectUnordered(mv.views, out);
      }
    }
  }
  if (mv.has_delta()) {
    stats_.predicted_micros += DeltaFixupMicros(
        k, est_result, mv.total_erases, mv.total_inserts, mv.max_base_size,
        planner_ != nullptr ? planner_->constants() : CostConstants{});
    // Fixup step 1: drop tombstoned elements from the base intersection.
    for (std::size_t i = 0; i < k && !out->empty(); ++i) {
      if (cores_[i] == nullptr) continue;
      std::span<const Elem> erases = mv.snapshots[i].delta.erase_span();
      if (erases.empty()) continue;
      if (ordered_) {
        SubtractSortedInPlace(out, erases, kernels);
      } else {
        SubtractUnorderedInPlace(out, erases, kernels);
      }
    }
    // Fixup step 2: admit insert-buffer elements present in *every*
    // effective set.  Candidates are disjoint from the base intersection
    // (an insert is never a base member of its own set), so the merge in
    // step 3 cannot duplicate.
    std::vector<const DeltaSnapshot*> deltas;
    deltas.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      if (cores_[i] != nullptr) deltas.push_back(&mv.snapshots[i].delta);
    }
    ElemList candidates = UnionInsertBuffers(deltas);
    for (std::size_t i = 0; i < k && !candidates.empty(); ++i) {
      if (cores_[i] != nullptr) {
        FilterByEffectiveMembership(&candidates, *mv.snapshots[i].base,
                                    mv.snapshots[i].delta, kernels);
      } else if (std::optional<std::span<const Elem>> elems =
                     TryGetElems(sets_[i])) {
        IntersectWithSortedSpan(&candidates, *elems, kernels);
      } else {
        // Opaque immutable structure: intersect the (small) candidate
        // list against it with the engine's own algorithm.
        std::unique_ptr<PreprocessedSet> candidate_set(
            algorithm_->Preprocess(candidates));
        const PreprocessedSet* pair[2] = {candidate_set.get(), sets_[i]};
        ElemList kept;
        algorithm_->Intersect(pair, &kept);
        candidates.swap(kept);
      }
    }
    // Fixup step 3: fold the admitted candidates into the result.
    if (!candidates.empty()) {
      if (ordered_) {
        MergeSortedDisjointInPlace(out, candidates, kernels);
      } else {
        out->insert(out->end(), candidates.begin(), candidates.end());
      }
    }
  }
  if (limit_ < out->size()) out->resize(limit_);
  stats_.result_size = out->size();
  stats_.wall_micros = timer.ElapsedMillis() * 1000.0;
  return stats_;
}

std::size_t Query::Count() {
  ExecuteInto(&scratch_);
  return stats_.result_size;
}

QueryStats Query::Execute() {
  ExecuteInto(&scratch_);
  if (count_only_) scratch_.clear();
  return stats_;
}

Engine::Engine(std::string_view spec, EngineOptions options)
    : algorithm_(AlgorithmRegistry::Global().Create(spec, options.seed)),
      validate_(ValidationEnabled(options.validation)),
      spec_(spec),
      seed_(options.seed) {
  ResolveCostInfo();
  InitSpaceBudget(options);
  if (options.expr_cache_bytes > 0) {
    expr_cache_ = std::make_shared<ExprCache>(options.expr_cache_bytes);
  }
}

Engine::Engine(std::unique_ptr<IntersectionAlgorithm> algorithm,
               EngineOptions options)
    : algorithm_(std::move(algorithm)),
      validate_(ValidationEnabled(options.validation)),
      seed_(options.seed) {
  if (algorithm_ == nullptr) {
    throw std::invalid_argument("Engine: null algorithm");
  }
  spec_ = std::string(algorithm_->name());
  ResolveCostInfo();
  InitSpaceBudget(options);
  if (options.expr_cache_bytes > 0) {
    expr_cache_ = std::make_shared<ExprCache>(options.expr_cache_bytes);
  }
}

void Engine::InitSpaceBudget(const EngineOptions& options) {
  space_budget_bytes_ = options.space_budget_bytes;
  min_compress_size_ = options.min_compress_size;
  if (space_budget_bytes_ == 0) return;
  if (planner_view_ == nullptr) {
    throw std::invalid_argument(
        "Engine(" + std::string(algorithm_->name()) +
        "): space_budget_bytes requires the planner engine (spec "
        "\"Planner\"/default) — only its composite sets support the "
        "compressed representation");
  }
  space_used_ = std::make_shared<std::atomic<std::uint64_t>>(0);
}

void Engine::ResolveCostInfo() {
  planner_view_ = dynamic_cast<const PlannerAlgorithm*>(algorithm_.get());
  const AlgorithmDescriptor* descriptor =
      AlgorithmRegistry::Global().Find(algorithm_->name());
  cost_hook_ = descriptor == nullptr ? nullptr : descriptor->cost;
}

PreparedSet Engine::Prepare(std::span<const Elem> set) const {
  if (validate_) CheckSortedUnique(set, algorithm_->name());
  return PreparedSet(algorithm_, std::shared_ptr<const PreprocessedSet>(
                                     PrepareStructure(set)));
}

std::unique_ptr<PreprocessedSet> Engine::PrepareStructure(
    std::span<const Elem> set) const {
  if (space_budget_bytes_ == 0 || set.size() < min_compress_size_) {
    std::unique_ptr<PreprocessedSet> s = algorithm_->Preprocess(set);
    if (space_used_) {
      space_used_->fetch_add(s->SizeInWords() * 8,
                             std::memory_order_relaxed);
    }
    return s;
  }
  // Streaming rule: admit uncompressed while the running total fits the
  // budget; past it, fall back to the compressed representation (whose
  // bytes are still counted — the footprint report stays honest, but
  // there is no cheaper representation to fall further back to).
  std::unique_ptr<PreprocessedSet> u = algorithm_->Preprocess(set);
  const std::uint64_t bytes = u->SizeInWords() * 8;
  const std::uint64_t prev =
      space_used_->fetch_add(bytes, std::memory_order_relaxed);
  if (prev + bytes <= space_budget_bytes_) return u;
  space_used_->fetch_sub(bytes, std::memory_order_relaxed);
  std::unique_ptr<PreprocessedSet> c = planner_view_->PreprocessCompressed(set);
  space_used_->fetch_add(c->SizeInWords() * 8, std::memory_order_relaxed);
  return c;
}

std::vector<PreparedSet> Engine::PrepareBatch(
    std::span<const ElemList> lists) const {
  std::vector<PreparedSet> out;
  out.reserve(lists.size());
  if (space_budget_bytes_ == 0) {
    for (const ElemList& list : lists) out.push_back(Prepare(list));
    return out;
  }
  if (validate_) {
    for (const ElemList& list : lists) {
      CheckSortedUnique(list, algorithm_->name());
    }
  }
  // Build everything uncompressed first; only when the batch blows the
  // budget does any set pay the decode tax.
  std::vector<std::unique_ptr<PreprocessedSet>> built;
  built.reserve(lists.size());
  std::uint64_t total = space_used_->load(std::memory_order_relaxed);
  for (const ElemList& list : lists) {
    built.push_back(algorithm_->Preprocess(list));
    total += built.back()->SizeInWords() * 8;
  }
  if (total > space_budget_bytes_) {
    // Greedy knapsack: flip the sets with the best bytes saved per
    // predicted extra microsecond of future query time (the compressed
    // representation reads at decode_ns instead of merge_ns per element)
    // until the batch fits or every eligible set is compressed.
    const CostConstants& c = planner_view_->constants();
    const double extra_ns = std::max(c.decode_ns - c.merge_ns, 1e-3);
    struct Candidate {
      std::size_t index;
      std::unique_ptr<PreprocessedSet> compressed;
      std::uint64_t saved_bytes;
      double gain;  // bytes per microsecond
    };
    std::vector<Candidate> candidates;
    for (std::size_t i = 0; i < lists.size(); ++i) {
      if (lists[i].size() < min_compress_size_) continue;
      Candidate cand;
      cand.index = i;
      cand.compressed = planner_view_->PreprocessCompressed(lists[i]);
      const std::uint64_t bytes_u = built[i]->SizeInWords() * 8;
      const std::uint64_t bytes_c = cand.compressed->SizeInWords() * 8;
      if (bytes_c >= bytes_u) continue;  // compression lost; keep fast form
      cand.saved_bytes = bytes_u - bytes_c;
      const double extra_micros =
          extra_ns * static_cast<double>(lists[i].size()) * 1e-3;
      cand.gain = static_cast<double>(cand.saved_bytes) /
                  std::max(extra_micros, 1e-9);
      candidates.push_back(std::move(cand));
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.gain > b.gain;
                     });
    for (Candidate& cand : candidates) {
      if (total <= space_budget_bytes_) break;
      total -= cand.saved_bytes;
      built[cand.index] = std::move(cand.compressed);
    }
  }
  std::uint64_t batch_bytes = 0;
  for (const auto& s : built) batch_bytes += s->SizeInWords() * 8;
  space_used_->fetch_add(batch_bytes, std::memory_order_relaxed);
  for (auto& s : built) {
    out.push_back(PreparedSet(
        algorithm_, std::shared_ptr<const PreprocessedSet>(std::move(s))));
  }
  return out;
}

PreparedSet Engine::PrepareMutable(std::span<const Elem> set,
                                   MutableSetOptions options) const {
  if (validate_) CheckSortedUnique(set, algorithm_->name());
  if (options.compact_fill <= 0.0) {
    throw std::invalid_argument(
        "PrepareMutable: compact_fill must be positive");
  }
  return PreparedSet(algorithm_,
                     std::make_shared<MutableSetCore>(
                         algorithm_, ElemList(set.begin(), set.end()),
                         options));
}

fsi::Query Engine::Query(
    std::initializer_list<const PreparedSet*> sets) const {
  return MakeQuery(std::span<const PreparedSet* const>(sets.begin(),
                                                       sets.size()));
}

fsi::Query Engine::Query(std::span<const PreparedSet* const> sets) const {
  return MakeQuery(sets);
}

fsi::Query Engine::Query(std::span<const PreparedSet> sets) const {
  std::vector<const PreparedSet*> pointers;
  pointers.reserve(sets.size());
  for (const PreparedSet& s : sets) pointers.push_back(&s);
  return MakeQuery(pointers);
}

fsi::Query Engine::MakeQuery(std::span<const PreparedSet* const> sets) const {
  if (sets.size() > algorithm_->max_query_sets()) {
    throw std::invalid_argument(
        std::string(algorithm_->name()) + ": query over " +
        std::to_string(sets.size()) + " sets exceeds max_query_sets() == " +
        std::to_string(algorithm_->max_query_sets()));
  }
  std::vector<const PreprocessedSet*> views;
  std::vector<std::shared_ptr<const PreprocessedSet>> retained;
  std::vector<std::shared_ptr<MutableSetCore>> cores;
  bool any_mutable = false;
  views.reserve(sets.size());
  retained.reserve(sets.size());
  cores.reserve(sets.size());
  QueryStats base;
  base.num_sets = sets.size();
  for (const PreparedSet* s : sets) {
    if (s == nullptr || s->empty_handle()) {
      throw std::invalid_argument(std::string(algorithm_->name()) +
                                  ": query over an empty PreparedSet handle");
    }
    if (s->algorithm_.get() != algorithm_.get()) {
      throw std::invalid_argument(
          "Engine(" + std::string(algorithm_->name()) +
          "): PreparedSet was built by a different engine (algorithm '" +
          std::string(s->algorithm_name()) +
          "'); structures are not interchangeable across engines");
    }
    if (s->core_ != nullptr) {
      // Mutable input: record the runtime; the build-time snapshot below
      // only feeds validation and the immediate structural stats — every
      // terminal run takes its own fresh snapshot.
      any_mutable = true;
      MutableSetState snap = s->core_->Snapshot();
      views.push_back(snap.structure.get());
      retained.push_back(std::move(snap.structure));
      cores.push_back(s->core_);
      base.elements_scanned += snap.base->size() + snap.delta.size();
      std::uint64_t groups = views.back()->NumGroups();
      if (groups > 0) {
        base.groups_probed = (base.groups_probed == 0)
                                 ? groups
                                 : std::min(base.groups_probed, groups);
      }
      continue;
    }
    cores.push_back(nullptr);
    views.push_back(s->set_.get());
    retained.push_back(s->set_);
    base.elements_scanned += s->set_->size();
    std::uint64_t groups = s->set_->NumGroups();
    if (groups > 0) {
      base.groups_probed = (base.groups_probed == 0)
                               ? groups
                               : std::min(base.groups_probed, groups);
    }
  }
  std::shared_ptr<const QueryPlan> plan;
  double explicit_predicted = 0.0;
  if (planner_view_ != nullptr) {
    QueryPlan built = planner_view_->Plan(views);
    base.predicted_micros = built.predicted_micros;
    // Mutable queries re-plan per terminal run; retaining the build-time
    // plan would execute stale set orders after mutations.
    if (!any_mutable) {
      plan = std::make_shared<const QueryPlan>(std::move(built));
    }
  } else if (cost_hook_ != nullptr) {
    explicit_predicted =
        PlanExplicit(*algorithm_, views, cost_hook_).predicted_micros;
    base.predicted_micros = explicit_predicted;
  }
  if (!any_mutable) cores.clear();  // no per-run snapshot pass needed
  return fsi::Query(algorithm_, std::move(views), std::move(retained),
                    std::move(cores), base, planner_view_, std::move(plan),
                    explicit_predicted);
}

ElemList Engine::IntersectLists(std::span<const ElemList> lists) const {
  std::vector<PreparedSet> prepared;
  prepared.reserve(lists.size());
  for (const ElemList& list : lists) prepared.push_back(Prepare(list));
  return Query(prepared).Materialize();
}

}  // namespace fsi
