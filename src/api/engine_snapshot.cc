// Engine snapshot persistence: SaveSnapshot / LoadSnapshot and the
// section-level entry points containers compose (InvertedIndex::Save).
//
// Save walks the prepared sets and writes one SetRecord each: structures
// with a flat layout (PlainSet, ScanSet, PlannedSet) append their arrays
// to the payload section via WriteFlat; every other representation falls
// back to its raw sorted elements (kElements, rebuilt by Preprocess on
// load — correct for any algorithm, just not zero-copy); mutable sets
// save their current effective elements (kMutable) and load back as a
// frozen base with an empty delta.  Load resolves each record against the
// mmap'ed payload with ViewFlat, so the reconstructed structures' spans
// alias the mapping — zero per-element copies — and every zero-copy set
// retains the mapping via its deleter, so the file stays mapped exactly
// as long as any handle needs it.
//
// Planner engines additionally stamp their calibrated cost constants into
// a calibration section.  Load then constructs the planner with
// calibration=off (skipping the ~100 ms startup measurement) and installs
// the stamped constants (calibration_source() == "snapshot") — cold start
// must not re-measure what the snapshot already knows.

#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "api/epoch.h"
#include "api/planner.h"
#include "api/registry.h"
#include "baseline/plain_set.h"
#include "core/compressed_scan.h"
#include "core/delta_set.h"
#include "core/ran_group_scan.h"
#include "storage/layout.h"
#include "storage/mapped_file.h"
#include "storage/snapshot.h"

namespace fsi {
namespace {

using storage::SnapshotError;
using storage::SnapshotErrorCode;

// The engine-meta section: a fixed prefix plus the spec string.
struct EngineMetaFixed {
  std::uint64_t seed = 0;
  std::uint32_t set_count = 0;
  std::uint32_t spec_len = 0;
};
static_assert(sizeof(EngineMetaFixed) == 16);

std::vector<std::byte> PackEngineMeta(std::uint64_t seed,
                                      std::size_t set_count,
                                      const std::string& spec) {
  EngineMetaFixed fixed;
  fixed.seed = seed;
  fixed.set_count = static_cast<std::uint32_t>(set_count);
  fixed.spec_len = static_cast<std::uint32_t>(spec.size());
  std::vector<std::byte> bytes(sizeof(fixed) + spec.size());
  std::memcpy(bytes.data(), &fixed, sizeof(fixed));
  std::memcpy(bytes.data() + sizeof(fixed), spec.data(), spec.size());
  return bytes;
}

struct EngineMeta {
  std::uint64_t seed = 0;
  std::size_t set_count = 0;
  std::string spec;
};

EngineMeta ParseEngineMeta(std::span<const std::byte> bytes) {
  if (bytes.size() < sizeof(EngineMetaFixed)) {
    throw SnapshotError(SnapshotErrorCode::kCorrupt,
                        "snapshot: engine meta section too small");
  }
  EngineMetaFixed fixed;
  std::memcpy(&fixed, bytes.data(), sizeof(fixed));
  if (bytes.size() - sizeof(fixed) < fixed.spec_len) {
    throw SnapshotError(SnapshotErrorCode::kCorrupt,
                        "snapshot: engine meta spec truncated");
  }
  EngineMeta meta;
  meta.seed = fixed.seed;
  meta.set_count = fixed.set_count;
  meta.spec.assign(
      reinterpret_cast<const char*>(bytes.data()) + sizeof(fixed),
      fixed.spec_len);
  return meta;
}

std::span<const std::byte> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

/// One compressed set in the kSectionCompressed section.  The matching
/// SetRecord (same index) is written as kElements with the decoded
/// elements, so readers without this section still load the set —
/// uncompressed.  Readers with it restore the compressed image instead
/// and skip the rebuild.
struct CompressedSetRecord {
  std::uint32_t set_index = 0;
  std::uint32_t codec = 0;  // ScanCodec
  std::int32_t t = 0;
  std::uint32_t m = 0;  // image words per group at encode time
  std::uint64_t n = 0;
  std::uint64_t max_elem = 0;
  std::uint64_t bit_count = 0;
  storage::FlatRef bits;
  storage::FlatRef skips;
};
static_assert(sizeof(CompressedSetRecord) == 72 &&
              std::is_trivially_copyable_v<CompressedSetRecord>);

/// Rebuilds one compressed set from its snapshot record.  Everything
/// untrusted funnels through ResolveSpan (bounds/alignment) and
/// CompressedScanSet::FromParts (full checked stream walk): corruption
/// throws SnapshotError(kCorrupt), never reads out of bounds.
std::unique_ptr<const PreprocessedSet> RestoreCompressedSet(
    const IntersectionAlgorithm& algorithm,
    std::span<const std::byte> payload, const CompressedSetRecord& rec) {
  const auto* planner = dynamic_cast<const PlannerAlgorithm*>(&algorithm);
  if (planner == nullptr) {
    throw SnapshotError(
        SnapshotErrorCode::kCorrupt,
        "snapshot: compressed set record in a non-planner snapshot");
  }
  const CompressedScanIntersection& cscan = planner->compressed_algorithm();
  if (rec.codec > static_cast<std::uint32_t>(ScanCodec::kDelta)) {
    throw SnapshotError(SnapshotErrorCode::kCorrupt,
                        "snapshot: compressed set: unknown codec");
  }
  if (static_cast<int>(rec.m) != cscan.m()) {
    throw SnapshotError(
        SnapshotErrorCode::kCorrupt,
        "snapshot: compressed set: image count differs from the engine");
  }
  const auto bits = storage::ResolveSpan<std::uint64_t>(payload, rec.bits,
                                                        "compressed bits");
  const auto skips = storage::ResolveSpan<std::uint64_t>(payload, rec.skips,
                                                         "compressed skips");
  std::unique_ptr<CompressedScanSet> set = CompressedScanSet::FromParts(
      static_cast<std::size_t>(rec.n), rec.t,
      static_cast<ScanCodec>(rec.codec), static_cast<Elem>(rec.max_elem),
      std::vector<std::uint64_t>(bits.begin(), bits.end()),
      static_cast<std::size_t>(rec.bit_count),
      std::vector<std::uint64_t>(skips.begin(), skips.end()), cscan.m(),
      cscan.permutation().domain_bits());
  return std::make_unique<PlannedSet>(std::move(set));
}

/// The registry spec with calibration=off appended — the load path's way
/// of constructing a planner without the startup measurement.  Returns
/// nullopt for specs whose factory rejects the option (non-planner).
std::unique_ptr<IntersectionAlgorithm> TryCreateUncalibrated(
    const std::string& spec, std::uint64_t seed) {
  const std::string spec_off =
      spec + (spec.find(':') == std::string::npos ? ":calibration=off"
                                                  : ",calibration=off");
  try {
    return AlgorithmRegistry::Global().Create(spec_off, seed);
  } catch (const std::invalid_argument&) {
    return nullptr;
  }
}

}  // namespace

void Engine::WriteSnapshotSections(
    storage::SnapshotWriter& writer,
    std::span<const PreparedSet* const> sets) const {
  // Same handle checks as MakeQuery: saving a foreign engine's handle
  // would stamp this engine's spec/seed over a structure built with
  // different hash functions — a checked error, not a corrupt file.
  for (const PreparedSet* s : sets) {
    if (s == nullptr || s->empty_handle()) {
      throw std::invalid_argument(
          "Engine::SaveSnapshot: empty PreparedSet handle");
    }
    if (s->algorithm_.get() != algorithm_.get()) {
      throw std::invalid_argument(
          "Engine::SaveSnapshot: PreparedSet built by a different Engine");
    }
  }

  storage::PayloadWriter payload;
  std::vector<storage::SetRecord> records;
  std::vector<CompressedSetRecord> compressed;
  records.reserve(sets.size());
  for (const PreparedSet* s : sets) {
    storage::SetRecord record;
    if (s->is_mutable()) {
      // Freeze the current effective set; the delta tier restarts empty
      // on load.
      const MutableSetState state = s->core_->Snapshot();
      const ElemList effective =
          state.delta.empty()
              ? *state.base
              : MergeEffective(*state.base, state.delta);
      record.kind = static_cast<std::uint32_t>(storage::SetKind::kMutable);
      record.elems = payload.Append(std::span<const Elem>(effective));
    } else if (const auto* planned =
                   dynamic_cast<const PlannedSet*>(s->raw())) {
      if (planned->has_plain()) {
        planned->WriteFlat(payload, record);
      } else {
        // Compressed representation: the SetRecord itself is kElements
        // (decoded below) so pre-kSectionCompressed readers still load the
        // set, just uncompressed; the compressed image rides in the
        // non-critical compressed section keyed by set index.
        const PreprocessedSet* raw = s->raw();
        const PreprocessedSet* pair[2] = {raw, raw};
        ElemList elems;
        algorithm_->Intersect(pair, &elems);
        record.kind = static_cast<std::uint32_t>(storage::SetKind::kElements);
        record.elems = payload.Append(std::span<const Elem>(elems));

        const CompressedScanSet& cs = *planned->cscan();
        CompressedSetRecord crec;
        crec.set_index = static_cast<std::uint32_t>(records.size());
        crec.codec = static_cast<std::uint32_t>(cs.codec());
        crec.t = cs.t();
        crec.m = static_cast<std::uint32_t>(
            planner_view_->compressed_algorithm().m());
        crec.n = cs.size();
        crec.max_elem = cs.max_elem();
        crec.bit_count = cs.bit_count();
        crec.bits = payload.Append(std::span<const std::uint64_t>(cs.bits()));
        crec.skips = payload.Append(std::span<const std::uint64_t>(cs.skips()));
        compressed.push_back(crec);
      }
    } else if (const auto* scan = dynamic_cast<const ScanSet*>(s->raw())) {
      scan->WriteFlat(payload, record);
    } else if (const auto* plain = dynamic_cast<const PlainSet*>(s->raw())) {
      plain->WriteFlat(payload, record);
    } else {
      // No flat layout registered for this representation: export the
      // sorted elements by self-intersection (exact for every algorithm,
      // and within even IntGroup's k == 2 arity limit) and let load
      // rebuild the structure.
      const PreprocessedSet* raw = s->raw();
      const PreprocessedSet* pair[2] = {raw, raw};
      ElemList elems;
      algorithm_->Intersect(pair, &elems);
      record.kind = static_cast<std::uint32_t>(storage::SetKind::kElements);
      record.elems = payload.Append(std::span<const Elem>(elems));
    }
    records.push_back(record);
  }

  const std::vector<std::byte> meta =
      PackEngineMeta(seed_, sets.size(), spec_);
  writer.AddSection(storage::kSectionEngineMeta, meta,
                    storage::kSectionFlagCritical);
  if (planner_view_ != nullptr) {
    PlannerCalibration calibration;
    calibration.constants = planner_view_->constants();
    calibration.source = std::string(planner_view_->calibration_source());
    const std::string json = calibration.ToJson();
    writer.AddSection(storage::kSectionCalibration, AsBytes(json));
  }
  writer.AddSection(
      storage::kSectionSetTable,
      std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(records.data()),
          records.size() * sizeof(storage::SetRecord)),
      storage::kSectionFlagCritical);
  if (!compressed.empty()) {
    // Non-critical: readers predating kSectionCompressed skip it and
    // rebuild these sets uncompressed from their kElements records.
    writer.AddSection(
        storage::kSectionCompressed,
        std::span<const std::byte>(
            reinterpret_cast<const std::byte*>(compressed.data()),
            compressed.size() * sizeof(CompressedSetRecord)));
  }
  writer.AddSection(storage::kSectionPayload, payload.bytes(),
                    storage::kSectionFlagCritical);
}

void Engine::SaveSnapshot(const std::string& path,
                          std::span<const PreparedSet* const> sets) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw SnapshotError(SnapshotErrorCode::kIo,
                        "snapshot: cannot open '" + path + "' for writing");
  }
  storage::SnapshotWriter writer(out);
  WriteSnapshotSections(writer, sets);
  writer.Finish();
}

void Engine::SaveSnapshot(const std::string& path,
                          std::span<const PreparedSet> sets) const {
  std::vector<const PreparedSet*> ptrs;
  ptrs.reserve(sets.size());
  for (const PreparedSet& s : sets) ptrs.push_back(&s);
  SaveSnapshot(path, std::span<const PreparedSet* const>(ptrs));
}

LoadedSnapshot Engine::LoadSnapshotSections(
    const storage::SnapshotReader& reader,
    std::shared_ptr<const storage::MappedFile> backing,
    SnapshotLoadOptions options) {
  const EngineMeta meta =
      ParseEngineMeta(reader.RequireSection(storage::kSectionEngineMeta,
                                            "engine meta"));

  std::optional<std::string> calibration_json;
  if (auto section = reader.Section(storage::kSectionCalibration)) {
    calibration_json.emplace(
        reinterpret_cast<const char*>(section->data()), section->size());
  }

  std::unique_ptr<IntersectionAlgorithm> algorithm;
  if (calibration_json) {
    algorithm = TryCreateUncalibrated(meta.spec, meta.seed);
  }
  if (algorithm == nullptr) {
    try {
      algorithm = AlgorithmRegistry::Global().Create(meta.spec, meta.seed);
    } catch (const std::invalid_argument& e) {
      throw SnapshotError(SnapshotErrorCode::kCorrupt,
                          "snapshot: cannot reconstruct engine spec '" +
                              meta.spec + "': " + e.what());
    }
  }

  std::string calibration_source;
  if (calibration_json) {
    if (auto* planner = dynamic_cast<PlannerAlgorithm*>(algorithm.get())) {
      PlannerCalibration calibration;
      try {
        calibration = PlannerCalibration::FromJson(*calibration_json);
      } catch (const std::invalid_argument& e) {
        throw SnapshotError(
            SnapshotErrorCode::kCorrupt,
            std::string("snapshot: bad calibration section: ") + e.what());
      }
      planner->OverrideConstants(calibration.constants, "snapshot");
      calibration_source = "snapshot";
    }
  }

  Engine engine(std::move(algorithm),
                EngineOptions{meta.seed, options.validation});
  engine.spec_ = meta.spec;

  const auto table =
      reader.RequireSection(storage::kSectionSetTable, "set table");
  if (table.size() != meta.set_count * sizeof(storage::SetRecord)) {
    throw SnapshotError(SnapshotErrorCode::kCorrupt,
                        "snapshot: set table size inconsistent with meta");
  }
  const auto payload =
      reader.RequireSection(storage::kSectionPayload, "payload");

  // Compressed-set records, keyed by set index.  Absent section → empty
  // map → every kElements record rebuilds uncompressed (old snapshots).
  std::unordered_map<std::uint32_t, CompressedSetRecord> compressed;
  if (auto section = reader.Section(storage::kSectionCompressed)) {
    if (section->size() % sizeof(CompressedSetRecord) != 0) {
      throw SnapshotError(SnapshotErrorCode::kCorrupt,
                          "snapshot: compressed section size is not a "
                          "record multiple");
    }
    const std::size_t count = section->size() / sizeof(CompressedSetRecord);
    for (std::size_t i = 0; i < count; ++i) {
      CompressedSetRecord rec;
      std::memcpy(&rec, section->data() + i * sizeof(rec), sizeof(rec));
      if (rec.set_index >= meta.set_count ||
          !compressed.emplace(rec.set_index, rec).second) {
        throw SnapshotError(SnapshotErrorCode::kCorrupt,
                            "snapshot: compressed section: bad or duplicate "
                            "set index");
      }
    }
  }

  LoadedSnapshot out{std::move(engine), {}, {}};
  out.info.version_major = reader.header().version_major;
  out.info.version_minor = reader.header().version_minor;
  out.info.spec = meta.spec;
  out.info.seed = meta.seed;
  out.info.load_mode = backing != nullptr ? backing->load_mode() : "buffer";
  out.info.mapped_bytes = reader.file().size();
  out.info.map_base = reader.file().data();
  out.info.sets_total = meta.set_count;
  out.info.calibration_source = calibration_source;

  // Zero-copy structures alias the mapping; their deleters retain
  // `backing` so the mapping outlives the last handle.
  const auto adopt = [&backing](std::unique_ptr<const PreprocessedSet> s) {
    return std::shared_ptr<const PreprocessedSet>(
        s.release(),
        [backing](const PreprocessedSet* p) { delete p; });
  };

  out.sets.reserve(meta.set_count);
  for (std::size_t i = 0; i < meta.set_count; ++i) {
    storage::SetRecord record;
    std::memcpy(&record, table.data() + i * sizeof(record), sizeof(record));
    switch (static_cast<storage::SetKind>(record.kind)) {
      case storage::SetKind::kPlain:
        out.sets.push_back(PreparedSet(
            out.engine.algorithm_, adopt(PlainSet::ViewFlat(payload, record))));
        ++out.info.sets_zero_copy;
        break;
      case storage::SetKind::kScan:
        out.sets.push_back(PreparedSet(
            out.engine.algorithm_, adopt(ScanSet::ViewFlat(payload, record))));
        ++out.info.sets_zero_copy;
        break;
      case storage::SetKind::kPlanned:
        out.sets.push_back(PreparedSet(
            out.engine.algorithm_,
            adopt(PlannedSet::ViewFlat(payload, record))));
        ++out.info.sets_zero_copy;
        break;
      case storage::SetKind::kElements: {
        if (const auto it = compressed.find(static_cast<std::uint32_t>(i));
            it != compressed.end()) {
          // The set was prepared under a space budget: restore the
          // compressed image directly instead of rebuilding uncompressed.
          out.sets.push_back(PreparedSet(
              out.engine.algorithm_,
              std::shared_ptr<const PreprocessedSet>(RestoreCompressedSet(
                  *out.engine.algorithm_, payload, it->second))));
          ++out.info.sets_compressed;
          break;
        }
        const auto elems =
            storage::ResolveSpan<Elem>(payload, record.elems, "elements");
        out.sets.push_back(PreparedSet(
            out.engine.algorithm_,
            std::shared_ptr<const PreprocessedSet>(
                out.engine.algorithm_->Preprocess(elems))));
        ++out.info.sets_rebuilt;
        break;
      }
      case storage::SetKind::kMutable: {
        const auto elems =
            storage::ResolveSpan<Elem>(payload, record.elems, "elements");
        out.sets.push_back(
            out.engine.PrepareMutable(elems, options.mutable_options));
        ++out.info.sets_mutable;
        break;
      }
      default:
        throw SnapshotError(
            SnapshotErrorCode::kBadVersion,
            "snapshot: unknown set kind " + std::to_string(record.kind) +
                " (written by a newer version)");
    }
  }
  return out;
}

LoadedSnapshot Engine::LoadSnapshot(const std::string& path,
                                    SnapshotLoadOptions options) {
  // A verifying load touches every page for the CRC pass anyway —
  // prefault the mapping in one go instead of page-by-page.
  auto backing = std::make_shared<const storage::MappedFile>(
      path, /*prefault=*/options.verify_checksums);
  storage::SnapshotReader reader(
      backing->bytes(),
      storage::SnapshotReader::Options{options.verify_checksums});
  return LoadSnapshotSections(reader, std::move(backing), options);
}

}  // namespace fsi
