#include "api/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/hash_bin.h"
#include "util/rng.h"
#include "util/timer.h"

namespace fsi {

namespace {

// ---------------------------------------------------------------------------
// Calibration.
// ---------------------------------------------------------------------------

/// A sorted, duplicate-free set of `n` elements with mean gap ~(max_gap+1)/2.
ElemList MakeCalibrationSet(std::size_t n, std::uint32_t max_gap,
                            Xoshiro256& rng) {
  ElemList set;
  set.reserve(n);
  std::uint32_t x = 0;
  for (std::size_t i = 0; i < n; ++i) {
    x += 1 + static_cast<std::uint32_t>(rng.Below(max_gap));
    set.push_back(x);
  }
  return set;
}

/// Best-of-`reps` wall time of `alg` intersecting `a` and `b`, in
/// nanoseconds, plus the result size (for subtracting the per-result
/// term).  Short measurements need more reps: the minimum filters out
/// cold-cache and scheduler noise.
std::pair<double, std::size_t> TimeIntersect(const IntersectionAlgorithm& alg,
                                             const ElemList& a,
                                             const ElemList& b, int reps) {
  std::unique_ptr<PreprocessedSet> pa = alg.Preprocess(a);
  std::unique_ptr<PreprocessedSet> pb = alg.Preprocess(b);
  const PreprocessedSet* views[2] = {pa.get(), pb.get()};
  std::span<const PreprocessedSet* const> span(views, 2);
  ElemList out;
  double best_ns = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    out.clear();
    Timer timer;
    alg.Intersect(span, &out);
    best_ns = std::min(best_ns, timer.ElapsedMillis() * 1e6);
  }
  return {best_ns, out.size()};
}

/// (measured - result_ns * r) / units, clamped to a sane range so a timer
/// hiccup can never produce a zero or absurd constant.
double Constant(double measured_ns, std::size_t result, double result_ns,
                double units) {
  double net = measured_ns - result_ns * static_cast<double>(result);
  return std::clamp(net / units, 0.02, 500.0);
}

void AppendJsonField(std::string* out, const char* key, double value,
                     const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6g%s", key, value, suffix);
  *out += buf;
}

double ParseJsonNumber(std::string_view json, std::string_view key) {
  std::string quoted = "\"" + std::string(key) + "\"";
  std::string_view::size_type at = json.find(quoted);
  if (at == std::string_view::npos) {
    throw std::invalid_argument("PlannerCalibration: missing key " + quoted);
  }
  at = json.find(':', at + quoted.size());
  if (at == std::string_view::npos) {
    throw std::invalid_argument("PlannerCalibration: no value for " + quoted);
  }
  std::string rest(json.substr(at + 1));
  char* end = nullptr;
  double value = std::strtod(rest.c_str(), &end);
  if (end == rest.c_str() || !std::isfinite(value) || value <= 0.0) {
    throw std::invalid_argument(
        "PlannerCalibration: malformed value for " + quoted +
        " (expects a positive number)");
  }
  return value;
}

constexpr std::string_view kMergeName = "Merge";
constexpr std::string_view kSvsName = "SvS";
constexpr std::string_view kScanName = "RanGroupScan";
constexpr std::string_view kHashBinName = "HashBin";

bool Chainable(std::string_view algorithm) {
  // Steps after the first intersect a plain sorted intermediate against the
  // next PlainSet; only the merge/gallop families run on that shape.
  return algorithm == kMergeName || algorithm == kSvsName;
}

/// The planner's compressed representation: Lowbits (the paper's own
/// codec — O(1) group skips, SIMD fixed-width unpack) with m = 1 image
/// word, sharing the scan structure's seed so the permutation matches.
CompressedScanIntersection::Options CompressedOptions(
    const RanGroupScanIntersection::Options& scan) {
  CompressedScanIntersection::Options o;
  o.seed = scan.seed;
  o.universe_bits = scan.universe_bits;
  o.m = 1;
  o.codec = ScanCodec::kLowbits;
  o.simd = scan.simd;
  return o;
}

}  // namespace

std::string PlannerCalibration::ToJson() const {
  std::string out = "{";
  AppendJsonField(&out, "merge_ns", constants.merge_ns, ", ");
  AppendJsonField(&out, "gallop_ns", constants.gallop_ns, ", ");
  AppendJsonField(&out, "scan_ns", constants.scan_ns, ", ");
  AppendJsonField(&out, "hashbin_ns", constants.hashbin_ns, ", ");
  AppendJsonField(&out, "result_ns", constants.result_ns, ", ");
  AppendJsonField(&out, "scan_result_ns", constants.scan_result_ns, ", ");
  AppendJsonField(&out, "decode_ns", constants.decode_ns, ", ");
  out += "\"source\": \"" + source + "\"}";
  return out;
}

PlannerCalibration PlannerCalibration::FromJson(std::string_view json) {
  PlannerCalibration cal;
  cal.constants.merge_ns = ParseJsonNumber(json, "merge_ns");
  cal.constants.gallop_ns = ParseJsonNumber(json, "gallop_ns");
  cal.constants.scan_ns = ParseJsonNumber(json, "scan_ns");
  cal.constants.hashbin_ns = ParseJsonNumber(json, "hashbin_ns");
  cal.constants.result_ns = ParseJsonNumber(json, "result_ns");
  cal.constants.scan_result_ns = ParseJsonNumber(json, "scan_result_ns");
  // decode_ns joined the format later; files written before the compressed
  // representation keep the built-in default.
  if (json.find("\"decode_ns\"") != std::string_view::npos) {
    cal.constants.decode_ns = ParseJsonNumber(json, "decode_ns");
  }
  cal.source = "json";
  return cal;
}

PlannerCalibration PlannerCalibration::Measure(std::uint64_t seed) {
  PlannerCalibration cal;
  cal.source = "measured";
  const double result_ns = cal.constants.result_ns;
  Xoshiro256 rng(seed);
  // Set sizes are chosen to bust the L2 cache (the balanced pair totals
  // ~512 KiB, the skewed pair's large side ~1 MiB): posting lists in the
  // paper's workloads are memory-resident, not cache-resident, and the
  // constants differ by 3-4x between those regimes.
  const std::size_t kBalanced = std::size_t{1} << 16;
  const double balanced_elems = static_cast<double>(2 * kBalanced);

  // Sparse balanced pair (~0.2% mutual density): the result terms are
  // negligible, so the per-element scan constants fall out directly.
  ElemList a = MakeCalibrationSet(kBalanced, 1024, rng);
  ElemList b = MakeCalibrationSet(kBalanced, 1024, rng);

  auto [merge_t, merge_r] =
      TimeIntersect(MergeIntersection(), a, b, /*reps=*/3);
  cal.constants.merge_ns =
      Constant(merge_t, merge_r, result_ns, balanced_elems);

  auto [scan_t, scan_r] =
      TimeIntersect(RanGroupScanIntersection(), a, b, /*reps=*/3);
  cal.constants.scan_ns = Constant(scan_t, scan_r, result_ns, balanced_elems);

  // Same sparse pair through the compressed Lowbits structure: the extra
  // per-element cost over scan_ns is the block decode (SIMD bit-unpack +
  // group filter through the bit cursor).
  auto [dec_t, dec_r] =
      TimeIntersect(CompressedScanIntersection(), a, b, /*reps=*/3);
  cal.constants.decode_ns = Constant(
      dec_t, dec_r, CostConstants{}.scan_result_ns, balanced_elems);

  // Dense balanced pair (~12% density): with the element term pinned
  // above, the remainder isolates the partition family's per-result cost —
  // g^-1 inversions, the document-order sort, and the surviving-group
  // merges that image filtering can no longer skip.
  ElemList ad = MakeCalibrationSet(kBalanced, 16, rng);
  ElemList bd = MakeCalibrationSet(kBalanced, 16, rng);
  auto [dense_t, dense_r] =
      TimeIntersect(RanGroupScanIntersection(), ad, bd, /*reps=*/3);
  cal.constants.scan_result_ns = std::clamp(
      (dense_t - cal.constants.scan_ns * balanced_elems) /
          static_cast<double>(std::max<std::size_t>(dense_r, 1)),
      1.0, 2000.0);

  // Skewed pair (the galloping / HashBin regime): the small side is a
  // 1-in-16 *random* sample of the large one, so every probe lands but
  // the gallop distances are geometric — the branchy, prefetch-hostile
  // access pattern of a real skewed query (a fixed-stride sample measures
  // 3-4x too fast: perfectly predicted branches).  Ratio 16 sits in the
  // merge-vs-gallop crossover regime, which is exactly where the
  // constant has to be right for the planner to call 2-keyword queries
  // correctly; at extreme ratios every log-bound algorithm wins by
  // orders of magnitude and precision stops mattering.
  const std::size_t kLarge = std::size_t{1} << 18;
  ElemList large = MakeCalibrationSet(kLarge, 16, rng);
  ElemList small;
  for (Elem x : large) {
    if (rng.Below(16) == 0) small.push_back(x);
  }
  const double skew_units =
      static_cast<double>(small.size()) * std::log2(2.0 + 16.0);

  auto [svs_t, svs_r] =
      TimeIntersect(SvsIntersection(), small, large, /*reps=*/5);
  cal.constants.gallop_ns = Constant(svs_t, svs_r, result_ns, skew_units);

  auto [bin_t, bin_r] =
      TimeIntersect(HashBinIntersection(), small, large, /*reps=*/5);
  cal.constants.hashbin_ns =
      Constant(bin_t, bin_r, cal.constants.scan_result_ns, skew_units);

  return cal;
}

const PlannerCalibration& PlannerCalibration::Process() {
  static const PlannerCalibration calibration = [] {
    const char* env = std::getenv("FSI_PLANNER_CALIBRATION");
    std::string_view value = (env == nullptr) ? std::string_view() : env;
    if (value == "off") return PlannerCalibration{};
    if (!value.empty() && value != "on") {
      std::ifstream in{std::string(value)};
      if (!in) {
        throw std::invalid_argument(
            "FSI_PLANNER_CALIBRATION: cannot open calibration file '" +
            std::string(value) + "' (expected off, on, or a JSON file path)");
      }
      std::ostringstream contents;
      contents << in.rdbuf();
      return FromJson(contents.str());
    }
    return Measure();
  }();
  return calibration;
}

// ---------------------------------------------------------------------------
// Plans.
// ---------------------------------------------------------------------------

std::string QueryPlan::ToString() const {
  char buf[160];
  std::string out;
  if (!tree.empty()) {
    // Expression query (Engine::Query(const Expr&)): the rendered tree is
    // the whole story — there is no flat set order.
    std::snprintf(buf, sizeof(buf),
                  "expression plan: predicted %.1f us  est result: %.0f\n",
                  predicted_micros, est_result);
    out = buf;
    out += tree;
    return out;
  }
  if (!planned) {
    out = "plan: explicit algorithm";
    if (!steps.empty()) out += " '" + steps[0].algorithm + "'";
    out += "\n";
  } else {
    out = "plan:\n";
  }
  std::snprintf(buf, sizeof(buf),
                "  sets: %zu  order: [", order.size());
  out += buf;
  for (std::size_t i = 0; i < order.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%zu", i == 0 ? "" : " ", order[i]);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "]  predicted: %.1f us  est result: %.0f\n",
                predicted_micros, est_result);
  out += buf;
  if (compressed_inputs > 0) {
    std::snprintf(buf, sizeof(buf),
                  "  representation: %zu of %zu inputs compressed "
                  "(space budget)\n",
                  compressed_inputs, order.size());
    out += buf;
  }
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const PlanStep& s = steps[i];
    std::snprintf(buf, sizeof(buf),
                  "  step %zu: %-12s left %s%zu  right n=%zu  est r=%.0f  "
                  "predicted %.1f us\n",
                  i + 1, s.algorithm.c_str(), s.left_estimated ? "~" : "n=",
                  s.left_size, s.right_size, s.est_result, s.predicted_micros);
    out += buf;
  }
  if (planned && uniform && !steps.empty()) {
    out += "  executed as one native " + steps[0].algorithm + " call over all " +
           std::to_string(order.size()) + " sets\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// PlannerAlgorithm.
// ---------------------------------------------------------------------------

PlannerAlgorithm::PlannerAlgorithm(const Options& options)
    : merge_(options.scan.simd),
      svs_(options.scan.simd),
      scan_(options.scan),
      cscan_(CompressedOptions(options.scan)),
      kernels_(&simd::Select(options.scan.simd)) {
  if (options.constants.has_value()) {
    constants_ = *options.constants;
    calibration_source_ = "explicit";
  } else if (!options.calibration) {
    constants_ = CostConstants{};
    calibration_source_ = "default";
  } else {
    const PlannerCalibration& process = PlannerCalibration::Process();
    constants_ = process.constants;
    calibration_source_ = process.source;
  }
  for (std::string_view name :
       {kMergeName, kSvsName, kScanName, kHashBinName}) {
    const AlgorithmDescriptor* d = AlgorithmRegistry::Global().Find(name);
    if (d != nullptr && d->cost != nullptr) candidates_.push_back(d);
  }
}

std::unique_ptr<PreprocessedSet> PlannerAlgorithm::Preprocess(
    std::span<const Elem> set) const {
  return std::make_unique<PlannedSet>(merge_.Preprocess(set),
                                      scan_.Preprocess(set));
}

std::unique_ptr<PreprocessedSet> PlannerAlgorithm::PreprocessCompressed(
    std::span<const Elem> set) const {
  std::unique_ptr<PreprocessedSet> cs = cscan_.Preprocess(set);
  return std::make_unique<PlannedSet>(std::unique_ptr<CompressedScanSet>(
      static_cast<CompressedScanSet*>(cs.release())));
}

void PlannerAlgorithm::DecodeCompressed(const PlannedSet& set,
                                        ElemList* out) const {
  const PreprocessedSet* view = set.cscan();
  cscan_.Intersect(std::span<const PreprocessedSet* const>(&view, 1), out);
}

QueryPlan PlannerAlgorithm::Plan(
    std::span<const PreprocessedSet* const> sets) const {
  QueryPlan plan;
  plan.planned = true;
  const std::size_t k = sets.size();
  plan.order.resize(k);
  std::iota(plan.order.begin(), plan.order.end(), std::size_t{0});
  std::stable_sort(plan.order.begin(), plan.order.end(),
                   [&](std::size_t i, std::size_t j) {
                     return sets[i]->size() < sets[j]->size();
                   });
  if (k == 0) return plan;
  for (const PreprocessedSet* s : sets) {
    if (!As<PlannedSet>(*s).has_plain()) ++plan.compressed_inputs;
  }

  const std::size_t n1 = sets[plan.order[0]]->size();
  if (n1 == 0) return plan;  // an empty input: trivially empty, no steps
  if (k == 1) {
    plan.est_result = static_cast<double>(n1);
    const double per_elem = plan.compressed_inputs > 0
                                ? constants_.decode_ns
                                : constants_.merge_ns;
    plan.predicted_micros = per_elem * static_cast<double>(n1) * 1e-3;
    return plan;
  }

  // Universe estimate for the density correction: the intersection of two
  // uniform sets over [0, U) has expected size n_a * n_b / U.
  // max_elem() serves both representations without decoding.
  double universe = 1.0;
  for (const PreprocessedSet* s : sets) {
    universe = std::max(
        universe, static_cast<double>(As<PlannedSet>(*s).max_elem()) + 1.0);
  }

  // Per-step cost of every candidate; the intermediate-size estimates are
  // algorithm-independent (every algorithm computes the same set).
  const std::size_t steps = k - 1;
  std::vector<std::vector<double>> cost(steps,
                                        std::vector<double>(candidates_.size()));
  std::vector<StepCostQuery> features(steps);
  std::vector<bool> left_estimated(steps);
  double est_left = static_cast<double>(n1);
  for (std::size_t j = 0; j < steps; ++j) {
    const std::size_t right = sets[plan.order[j + 1]]->size();
    StepCostQuery& q = features[j];
    q.small_size = static_cast<std::size_t>(std::llround(est_left));
    q.large_size = right;
    q.est_result = std::min(est_left * static_cast<double>(right) / universe,
                            std::min(est_left, static_cast<double>(right)));
    left_estimated[j] = j > 0;
    for (std::size_t c = 0; c < candidates_.size(); ++c) {
      cost[j][c] = candidates_[c]->cost(q, constants_);
    }
    est_left = q.est_result;
  }
  plan.est_result = est_left;

  if (plan.compressed_inputs == k) {
    // Every input is block-compressed: the only executable plan is the
    // native compressed k-way scan (Algorithm 5 over the bit streams,
    // galloping through the skip directory).
    plan.uniform = true;
    for (std::size_t j = 0; j < steps; ++j) {
      PlanStep step;
      step.algorithm = std::string(cscan_.name());
      step.left_size = features[j].small_size;
      step.right_size = features[j].large_size;
      step.left_estimated = left_estimated[j];
      step.est_result = features[j].est_result;
      step.predicted_micros =
          CompressedScanIntersection::StepCost(features[j], constants_) * 1e-3;
      plan.predicted_micros += step.predicted_micros;
      plan.steps.push_back(std::move(step));
    }
    return plan;
  }
  if (plan.compressed_inputs > 0) {
    // Mixed representations: compressed inputs decode to sorted arrays up
    // front (priced once, below), then every step runs the merge/gallop
    // chain over raw spans — the uncompressed structures of the other
    // inputs cannot host a native k-way call that includes these sets.
    plan.uniform = false;
    double decode_elems = 0.0;
    for (const PreprocessedSet* s : sets) {
      const PlannedSet& p = As<PlannedSet>(*s);
      if (!p.has_plain()) decode_elems += static_cast<double>(p.size());
    }
    plan.predicted_micros += constants_.decode_ns * decode_elems * 1e-3;
    for (std::size_t j = 0; j < steps; ++j) {
      std::size_t best = SIZE_MAX;
      for (std::size_t c = 0; c < candidates_.size(); ++c) {
        if (!Chainable(candidates_[c]->name)) continue;
        if (best == SIZE_MAX || cost[j][c] < cost[j][best]) best = c;
      }
      if (best == SIZE_MAX) best = 0;  // registry always has Merge/SvS
      PlanStep step;
      step.algorithm = candidates_[best]->name;
      step.left_size = features[j].small_size;
      step.right_size = features[j].large_size;
      step.left_estimated = left_estimated[j];
      step.est_result = features[j].est_result;
      step.predicted_micros = cost[j][best] * 1e-3;
      plan.predicted_micros += step.predicted_micros;
      plan.steps.push_back(std::move(step));
    }
    return plan;
  }

  // Best uniform plan: one candidate for every step, executed as a single
  // native k-way call.
  std::size_t best_uniform = 0;
  double best_uniform_total = 1e300;
  for (std::size_t c = 0; c < candidates_.size(); ++c) {
    double total = 0.0;
    for (std::size_t j = 0; j < steps; ++j) total += cost[j][c];
    if (total < best_uniform_total) {
      best_uniform_total = total;
      best_uniform = c;
    }
  }

  // Best chain plan: per-step argmin — any candidate for the first step
  // (both inputs have prepared structures), merge/gallop for the rest.
  std::vector<std::size_t> chain(steps);
  double chain_total = 0.0;
  for (std::size_t j = 0; j < steps; ++j) {
    std::size_t best = SIZE_MAX;
    for (std::size_t c = 0; c < candidates_.size(); ++c) {
      if (j > 0 && !Chainable(candidates_[c]->name)) continue;
      if (best == SIZE_MAX || cost[j][c] < cost[j][best]) best = c;
    }
    chain[j] = best;
    chain_total += cost[j][best];
  }

  const bool use_chain = chain_total < best_uniform_total;
  plan.uniform = true;
  plan.steps.reserve(steps);
  for (std::size_t j = 0; j < steps; ++j) {
    const std::size_t c = use_chain ? chain[j] : best_uniform;
    if (use_chain && chain[j] != chain[0]) plan.uniform = false;
    PlanStep step;
    step.algorithm = candidates_[c]->name;
    step.left_size = features[j].small_size;
    step.right_size = features[j].large_size;
    step.left_estimated = left_estimated[j];
    step.est_result = features[j].est_result;
    step.predicted_micros = cost[j][c] * 1e-3;
    plan.predicted_micros += step.predicted_micros;
    plan.steps.push_back(std::move(step));
  }
  return plan;
}

void PlannerAlgorithm::Intersect(std::span<const PreprocessedSet* const> sets,
                                 ElemList* out) const {
  ExecutePlan(sets, Plan(sets), /*ordered=*/true, out);
}

void PlannerAlgorithm::IntersectUnordered(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  ExecutePlan(sets, Plan(sets), /*ordered=*/false, out);
}

void PlannerAlgorithm::ExecutePlan(
    std::span<const PreprocessedSet* const> sets, const QueryPlan& plan,
    bool ordered, ElemList* out) const {
  const std::size_t k = sets.size();
  if (k == 0) return;
  const PlannedSet& smallest = As<PlannedSet>(*sets[plan.order[0]]);
  if (smallest.size() == 0) return;
  if (k == 1) {
    if (!smallest.has_plain()) {
      DecodeCompressed(smallest, out);
      return;
    }
    out->assign(smallest.elems().begin(), smallest.elems().end());
    return;
  }

  std::size_t compressed = 0;
  for (const PreprocessedSet* s : sets) {
    if (!As<PlannedSet>(*s).has_plain()) ++compressed;
  }
  if (compressed == k && plan.uniform && !plan.steps.empty() &&
      plan.steps[0].algorithm == cscan_.name()) {
    // All-compressed native path: Algorithm 5 straight over the k bit
    // streams — no decompression outside surviving windows.
    std::vector<const PreprocessedSet*> views;
    views.reserve(k);
    for (const PreprocessedSet* s : sets) {
      views.push_back(As<PlannedSet>(*s).cscan());
    }
    if (ordered) {
      cscan_.Intersect(views, out);
    } else {
      cscan_.IntersectUnordered(views, out);
    }
    return;
  }
  if (compressed > 0) {
    // Mixed representations: decode each compressed input once, then run
    // the planned merge/gallop chain over raw sorted spans.
    std::vector<ElemList> scratch;
    scratch.reserve(compressed);  // no reallocation: spans stay valid
    std::vector<std::span<const Elem>> view(k);
    for (std::size_t j = 0; j < k; ++j) {
      const PlannedSet& p = As<PlannedSet>(*sets[plan.order[j]]);
      if (p.has_plain()) {
        view[j] = p.elems();
      } else {
        scratch.emplace_back();
        DecodeCompressed(p, &scratch.back());
        view[j] = scratch.back();
      }
    }
    ElemList current(view[0].begin(), view[0].end());
    ElemList next;
    for (std::size_t j = 0; j + 1 < k && !current.empty(); ++j) {
      next.clear();
      if (j < plan.steps.size() && plan.steps[j].algorithm == kSvsName) {
        GallopEliminate(*kernels_, current, view[j + 1], &next);
      } else {
        kernels_->intersect_pair(current.data(), current.size(),
                                 view[j + 1].data(), view[j + 1].size(),
                                 &next);
      }
      current.swap(next);
    }
    out->swap(current);
    return;
  }

  // The HashBin path mirrors HybridIntersection: the ScanSet g-value
  // arrays are globally ascending, which is all HashBinIntersectGvals
  // needs; results come back as g-values and invert through g^-1.  The
  // document-order sort is skipped when the caller asked for an unordered
  // result — it dominates in the large-r regime (see IntersectUnordered
  // in core/algorithm.h) — but chain intermediates must always sort: the
  // following merge/gallop step requires ascending input.
  auto hash_bin = [&](std::span<const PreprocessedSet* const> members,
                      bool sort_result, ElemList* result) {
    std::vector<std::span<const std::uint32_t>> gval_lists;
    gval_lists.reserve(members.size());
    for (const PreprocessedSet* s : members) {
      gval_lists.push_back(
          As<ScanSet>(*As<PlannedSet>(*s).scan()).gvals());
    }
    std::vector<std::uint32_t> result_gvals;
    HashBinIntersectGvals(gval_lists, scan_.permutation().domain_bits(),
                          &result_gvals);
    result->reserve(result_gvals.size());
    for (std::uint32_t gv : result_gvals) {
      result->push_back(static_cast<Elem>(scan_.permutation().Invert(gv)));
    }
    if (sort_result) std::sort(result->begin(), result->end());
  };

  if (plan.uniform && !plan.steps.empty()) {
    const std::string& algorithm = plan.steps[0].algorithm;
    std::vector<const PreprocessedSet*> views;
    views.reserve(k);
    if (algorithm == kScanName) {
      for (const PreprocessedSet* s : sets) {
        views.push_back(As<PlannedSet>(*s).scan());
      }
      if (ordered) {
        scan_.Intersect(views, out);
      } else {
        scan_.IntersectUnordered(views, out);
      }
      return;
    }
    if (algorithm == kHashBinName) {
      // Order is irrelevant to correctness; HashBinIntersectGvals expects
      // smallest-first, which plan.order provides.
      std::vector<const PreprocessedSet*> by_order;
      by_order.reserve(k);
      for (std::size_t i : plan.order) by_order.push_back(sets[i]);
      hash_bin(by_order, /*sort_result=*/ordered, out);
      return;
    }
    for (const PreprocessedSet* s : sets) {
      views.push_back(As<PlannedSet>(*s).plain());
    }
    if (algorithm == kSvsName) {
      svs_.Intersect(views, out);
    } else {
      merge_.Intersect(views, out);
    }
    return;
  }

  // Mixed chain: the first step runs on the two smallest prepared
  // structures; every later step intersects the sorted intermediate
  // against the next PlainSet with the step's merge or gallop kernel.
  ElemList current;
  {
    const PlanStep& first = plan.steps[0];
    const PreprocessedSet* a = sets[plan.order[0]];
    const PreprocessedSet* b = sets[plan.order[1]];
    if (first.algorithm == kScanName) {
      const PreprocessedSet* views[2] = {As<PlannedSet>(*a).scan(),
                                         As<PlannedSet>(*b).scan()};
      scan_.Intersect(std::span<const PreprocessedSet* const>(views, 2),
                      &current);
    } else if (first.algorithm == kHashBinName) {
      const PreprocessedSet* views[2] = {a, b};
      hash_bin(std::span<const PreprocessedSet* const>(views, 2),
               /*sort_result=*/true, &current);
    } else {
      const PreprocessedSet* views[2] = {As<PlannedSet>(*a).plain(),
                                         As<PlannedSet>(*b).plain()};
      std::span<const PreprocessedSet* const> span(views, 2);
      if (first.algorithm == kSvsName) {
        svs_.Intersect(span, &current);
      } else {
        merge_.Intersect(span, &current);
      }
    }
  }
  ElemList next;
  for (std::size_t j = 1; j < plan.steps.size() && !current.empty(); ++j) {
    std::span<const Elem> right = As<PlannedSet>(*sets[plan.order[j + 1]]).elems();
    next.clear();
    if (plan.steps[j].algorithm == kSvsName) {
      GallopEliminate(*kernels_, current, right, &next);
    } else {
      kernels_->intersect_pair(current.data(), current.size(), right.data(),
                               right.size(), &next);
    }
    current.swap(next);
  }
  out->swap(current);
}

QueryPlan PlanQuery(const IntersectionAlgorithm& algorithm,
                    std::span<const PreprocessedSet* const> sets) {
  if (const auto* planner =
          dynamic_cast<const PlannerAlgorithm*>(&algorithm)) {
    return planner->Plan(sets);
  }
  const AlgorithmDescriptor* descriptor =
      AlgorithmRegistry::Global().Find(algorithm.name());
  return PlanExplicit(algorithm, sets,
                      descriptor == nullptr ? nullptr : descriptor->cost);
}

QueryPlan PlanExplicit(const IntersectionAlgorithm& algorithm,
                       std::span<const PreprocessedSet* const> sets,
                       StepCostFn cost) {
  QueryPlan plan;
  plan.planned = false;
  const std::size_t k = sets.size();
  plan.order.resize(k);
  std::iota(plan.order.begin(), plan.order.end(), std::size_t{0});
  std::stable_sort(plan.order.begin(), plan.order.end(),
                   [&](std::size_t i, std::size_t j) {
                     return sets[i]->size() < sets[j]->size();
                   });
  if (k == 0) return plan;
  const std::size_t n1 = sets[plan.order[0]]->size();
  if (n1 == 0) return plan;
  if (k == 1) {
    plan.est_result = static_cast<double>(n1);
    return plan;
  }

  // Built-in constants, deliberately not the calibrated ones: an
  // explicit-spec engine must never trigger the calibration sweep just to
  // annotate its stats.
  const CostConstants constants;

  // Universe estimate: exact for plain/planned structures, else the full
  // element domain (the partition structures store permuted values, whose
  // maximum says nothing about the raw density).
  double universe = 0.0;
  for (const PreprocessedSet* s : sets) {
    std::span<const Elem> elems;
    if (const auto* plain = dynamic_cast<const PlainSet*>(s)) {
      elems = plain->elems();
    } else if (const auto* planned = dynamic_cast<const PlannedSet*>(s)) {
      if (!planned->has_plain()) {
        universe = std::max(universe,
                            static_cast<double>(planned->max_elem()) + 1.0);
        continue;
      }
      elems = planned->elems();
    } else {
      universe = 0.0;
      break;
    }
    if (!elems.empty()) {
      universe = std::max(universe, static_cast<double>(elems.back()) + 1.0);
    }
  }
  if (universe <= 0.0) universe = std::pow(2.0, 32);

  double est_left = static_cast<double>(n1);
  for (std::size_t j = 1; j < k; ++j) {
    const std::size_t right = sets[plan.order[j]]->size();
    StepCostQuery q;
    q.small_size = static_cast<std::size_t>(std::llround(est_left));
    q.large_size = right;
    q.est_result = std::min(est_left * static_cast<double>(right) / universe,
                            std::min(est_left, static_cast<double>(right)));
    PlanStep step;
    step.algorithm = std::string(algorithm.name());
    step.left_size = q.small_size;
    step.right_size = right;
    step.left_estimated = j > 1;
    step.est_result = q.est_result;
    if (cost != nullptr) {
      step.predicted_micros = cost(q, constants) * 1e-3;
      plan.predicted_micros += step.predicted_micros;
    }
    plan.steps.push_back(std::move(step));
    est_left = q.est_result;
  }
  plan.est_result = est_left;
  return plan;
}

}  // namespace fsi
