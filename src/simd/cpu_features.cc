#include "simd/cpu_features.h"

#include <cstdlib>

namespace fsi::simd {

namespace {

Level ProbeCpu() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  // __builtin_cpu_supports reads CPUID once and caches; cheap to call.
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  if (__builtin_cpu_supports("ssse3")) return Level::kSse;
  return Level::kScalar;
#else
  // Non-x86 targets (or MSVC, which lacks per-function target attributes
  // for this dispatch style) run the portable scalar kernels.
  return Level::kScalar;
#endif
}

}  // namespace

Level DetectCpuLevel() {
  static const Level level = ProbeCpu();
  return level;
}

bool ForceScalarEnv() {
  static const bool forced = [] {
    const char* env = std::getenv("FSI_FORCE_SCALAR");
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
  }();
  return forced;
}

Level ActiveLevel() {
  static const Level level =
      ForceScalarEnv() ? Level::kScalar : DetectCpuLevel();
  return level;
}

std::string_view LevelName(Level level) {
  switch (level) {
    case Level::kSse:
      return "sse";
    case Level::kAvx2:
      return "avx2";
    case Level::kScalar:
    default:
      return "scalar";
  }
}

}  // namespace fsi::simd
