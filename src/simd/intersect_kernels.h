// Vectorized inner-loop kernels for set intersection, with runtime dispatch.
//
// The paper's algorithms win by replacing element-vs-element comparisons
// with one word operation over a whole group ("compare an element against
// w elements in O(1)").  This layer applies the identical trick at the
// instruction level: the scan/merge/probe loops every algorithm bottoms
// out in are implemented three times — portable scalar C++, SSE (4 x
// uint32 lanes) and AVX2 (8 x uint32 lanes) — behind one function-pointer
// table.  The table is resolved once per process from CPUID (see
// simd/cpu_features.h) and every variant is *bit-identical*: same output
// elements, same order, so algorithms can switch freely and the property
// tests assert equality directly.
//
// Four kernels cover the library's hot loops:
//
//   intersect_pair  block-wise merge intersection of two sorted unique
//                   arrays (baseline/merge, the RanGroupScan group merges).
//                   The vector variants compare an 8 (or 4) element block
//                   of each list all-against-all per step, then advance
//                   the block whose maximum is smaller — the classic
//                   branch-light block merge.
//   lower_bound     index of the first element >= x.  The vector variants
//                   binary-search down to a small window, then resolve it
//                   with broadcast-compare + popcount instead of the final
//                   branchy binary-search steps (baseline/baeza_yates).
//   gallop_ge       galloping search with the vectorized lower_bound as
//                   its probe (baseline/svs and friends).
//   match_any       appends every a[i] present in b, in i-order; neither
//                   side need be sorted.  This is the RanGroupScan /
//                   IntGroup "group vs element" comparison: one broadcast
//                   compares an element against a whole group per step.
//
// Selection:
//   * ScalarKernels()      — always the portable implementations.
//   * DispatchedKernels()  — resolved once from the CPU, demoted to
//                            scalar when FSI_FORCE_SCALAR is set.
//   * Select(Mode)         — what algorithms call: kAuto -> dispatched,
//                            kOff -> scalar.  Exposed to users as the
//                            registry option "simd=auto|off" on Merge,
//                            SvS, BaezaYates, IntGroup, RanGroupScan and
//                            Hybrid specs.

#ifndef FSI_SIMD_INTERSECT_KERNELS_H_
#define FSI_SIMD_INTERSECT_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "simd/cpu_features.h"

namespace fsi::simd {

/// Per-algorithm kernel selection, settable via the registry option key
/// "simd" ("auto" or "off"/"scalar") on every wired algorithm spec.
enum class Mode {
  kAuto,  // use the process-wide dispatched table (CPU best, env override)
  kOff,   // force the scalar table for this algorithm instance
};

/// Parses a "simd=" option value; throws std::invalid_argument otherwise.
Mode ParseMode(std::string_view value);

/// The kernel table.  All entries are non-null; all variants of one entry
/// produce bit-identical results (same elements, same order).
struct Kernels {
  Level level;

  /// Appends the ascending intersection of two sorted duplicate-free
  /// arrays to *out.
  void (*intersect_pair)(const std::uint32_t* a, std::size_t na,
                         const std::uint32_t* b, std::size_t nb,
                         std::vector<std::uint32_t>* out);

  /// Index of the first element >= x in sorted[0, n); n when none.
  std::size_t (*lower_bound)(const std::uint32_t* sorted, std::size_t n,
                             std::uint32_t x);

  /// Galloping search from position lo: index of the first element >= x in
  /// sorted[lo, n); expected O(log distance).
  std::size_t (*gallop_ge)(const std::uint32_t* sorted, std::size_t n,
                           std::size_t lo, std::uint32_t x);

  /// Appends every a[i] that occurs anywhere in b[0, nb) to *out, in
  /// i-order.  Inputs need not be sorted; both must be duplicate-free for
  /// the result to be a set.
  void (*match_any)(const std::uint32_t* a, std::size_t na,
                    const std::uint32_t* b, std::size_t nb,
                    std::vector<std::uint32_t>* out);
};

/// The portable scalar table (also the FSI_FORCE_SCALAR / simd=off path).
const Kernels& ScalarKernels();

/// The process-wide table resolved once from ActiveLevel().
const Kernels& DispatchedKernels();

/// Table for a mode: kAuto -> DispatchedKernels(), kOff -> ScalarKernels().
inline const Kernels& Select(Mode mode) {
  return mode == Mode::kOff ? ScalarKernels() : DispatchedKernels();
}

/// True when the table executes vector instructions (not the scalar tier).
inline bool Vectorized(const Kernels& kernels) {
  return kernels.level != Level::kScalar;
}

/// Kernel table for an explicit level — kernel unit tests sweep every tier
/// supported by the machine.  Levels above DetectCpuLevel() fall back to
/// the detected one (never returns a table the CPU cannot execute).
const Kernels& KernelsForLevel(Level level);

}  // namespace fsi::simd

#endif  // FSI_SIMD_INTERSECT_KERNELS_H_
