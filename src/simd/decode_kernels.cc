#include "simd/decode_kernels.h"

#include <cassert>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define FSI_SIMD_X86 1
#include <immintrin.h>
#else
#define FSI_SIMD_X86 0
#endif

namespace fsi::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar tier — the reference semantics every vector tier must reproduce
// bit-for-bit.  Extraction matches BitReader::Read exactly: fields are
// MSB-first inside 64-bit words.
// ---------------------------------------------------------------------------

void UnpackBitsScalar(const std::uint64_t* words, std::size_t words_len,
                      std::size_t bit_offset, int width, std::uint32_t base,
                      std::uint32_t* out, std::size_t count) {
  assert(width >= 0 && width <= 32);
  assert(bit_offset + count * static_cast<std::size_t>(width) <=
         words_len * 64);
  (void)words_len;
  if (width == 0) {
    for (std::size_t i = 0; i < count; ++i) out[i] = base;
    return;
  }
  std::size_t p = bit_offset;
  for (std::size_t i = 0; i < count; ++i, p += width) {
    const std::size_t w = p >> 6;
    const int s = static_cast<int>(p & 63);
    std::uint64_t v;
    if (s + width <= 64) {
      v = (words[w] << s) >> (64 - width);
    } else {
      // Field straddles a word boundary (s > 32 here since width <= 32,
      // so both shifts below are by amounts in (0, 64)).
      v = ((words[w] << s) | (words[w + 1] >> (64 - s))) >> (64 - width);
    }
    out[i] = base + static_cast<std::uint32_t>(v);
  }
}

void PrefixSumScalar(std::uint32_t* vals, std::size_t count,
                     std::uint32_t base) {
  std::uint32_t acc = base;
  for (std::size_t i = 0; i < count; ++i) {
    acc += vals[i];
    vals[i] = acc;
  }
}

#if FSI_SIMD_X86

// ---------------------------------------------------------------------------
// SSE tier.  Per-lane variable 64-bit shifts (vpsllvq/vpsrlvq) only exist
// from AVX2 up, so bit-field extraction stays scalar here; the prefix-sum
// network runs 4 uint32 lanes per step.
// ---------------------------------------------------------------------------

__attribute__((target("ssse3"))) void PrefixSumSse(std::uint32_t* vals,
                                                   std::size_t count,
                                                   std::uint32_t base) {
  std::uint32_t carry = base;
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(vals + i));
    // Shift-add prefix network: after two steps lane j holds
    // vals[i] + ... + vals[i + j].
    x = _mm_add_epi32(x, _mm_slli_si128(x, 4));
    x = _mm_add_epi32(x, _mm_slli_si128(x, 8));
    x = _mm_add_epi32(x, _mm_set1_epi32(static_cast<int>(carry)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(vals + i), x);
    carry = static_cast<std::uint32_t>(
        _mm_extract_epi16(x, 6) |
        (_mm_extract_epi16(x, 7) << 16));  // lane 3
  }
  PrefixSumScalar(vals + i, count - i, carry);
}

// ---------------------------------------------------------------------------
// AVX2 tier.
// ---------------------------------------------------------------------------

// One 4-field block, gather-free: the four fields plus any in-word start
// offset span at most 63 + 4*32 = 191 bits, so ONE unaligned 256-bit
// window load starting at the block's first word covers both words of
// every lane.  Per-lane word-pair selection is then two cheap qword
// permutes (vpermd with computed dword indices) instead of two
// high-latency gathers; alignment stays the per-lane variable-shift
// scheme.  Requires (bp >> 6) + 4 <= words_len (caller-checked).
//
// Word index of each lane's field start, relative to the window (0..2),
// becomes dword indices: qword k of the window is dwords (2k, 2k + 1).
// vpermd reads a dword index per output dword, so the selector packs 2k
// into the low half of each qword lane and 2k + 1 into the high half.
//
// MSB-first alignment: (w0 << sh) | (w1 >> (64 - sh)), then >> (64 -
// width).  AVX2 variable shifts by >= 64 yield 0, which is exactly what
// sh == 0 needs for the w1 term.  When a lane's field does not straddle,
// its w1 selector may point one word past its own pair — still inside
// the window, and the shift masks it out.
// Extracts the 4 fields whose absolute bit positions are in `pos` from
// the window loaded at word k0; each qword lane ends up holding its field
// value in the low `width` bits.
__attribute__((target("avx2"), always_inline)) inline __m256i
ExtractLanesAvx2(__m256i win, __m256i pos, long long k0, int width) {
  const __m256i v63 = _mm256_set1_epi64x(63);
  const __m256i v64 = _mm256_set1_epi64x(64);
  const __m256i vone = _mm256_set1_epi64x(1);
  const __m256i vtwo = _mm256_set1_epi64x(2);
  const __m256i norm = _mm256_set1_epi64x(64 - width);
  const __m256i rel = _mm256_sub_epi64(_mm256_srli_epi64(pos, 6),
                                       _mm256_set1_epi64x(k0));
  const __m256i sh = _mm256_and_si256(pos, v63);
  const __m256i d0 = _mm256_slli_epi64(rel, 1);
  const __m256i sel0 = _mm256_or_si256(
      d0, _mm256_slli_epi64(_mm256_add_epi64(d0, vone), 32));
  const __m256i d1 = _mm256_add_epi64(d0, vtwo);
  const __m256i sel1 = _mm256_or_si256(
      d1, _mm256_slli_epi64(_mm256_add_epi64(d1, vone), 32));
  const __m256i w0 = _mm256_permutevar8x32_epi32(win, sel0);
  const __m256i w1 = _mm256_permutevar8x32_epi32(win, sel1);
  const __m256i hi = _mm256_sllv_epi64(w0, sh);
  const __m256i lo = _mm256_srlv_epi64(w1, _mm256_sub_epi64(v64, sh));
  return _mm256_srlv_epi64(_mm256_or_si256(hi, lo), norm);
}

__attribute__((target("avx2"), always_inline)) inline __m128i
UnpackBlock4Avx2(const std::uint64_t* words, std::size_t bp, int width,
                 std::uint32_t base, __m256i lane_bits) {
  const __m256i pack_idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const std::size_t k0 = bp >> 6;
  const __m256i win = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(words + k0));
  const __m256i pos =
      _mm256_add_epi64(_mm256_set1_epi64x(static_cast<long long>(bp)),
                       lane_bits);
  const __m256i v = ExtractLanesAvx2(win, pos, static_cast<long long>(k0),
                                     width);
  // Truncate the four 64-bit lanes to uint32 and add the base.
  const __m256i packed = _mm256_permutevar8x32_epi32(v, pack_idx);
  return _mm_add_epi32(_mm256_castsi256_si128(packed),
                       _mm_set1_epi32(static_cast<int>(base)));
}

// Narrow widths (<= 16): 8 fields plus the start offset span at most
// 63 + 8*16 = 191 bits, so the SAME window feeds two 4-lane extracts —
// twice the work per load, and the two chains run independently.
__attribute__((target("avx2"), always_inline)) inline __m256i
UnpackBlock8Avx2(const std::uint64_t* words, std::size_t bp, int width,
                 std::uint32_t base, __m256i lane_bits_lo,
                 __m256i lane_bits_hi) {
  const std::size_t k0 = bp >> 6;
  const __m256i win = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(words + k0));
  const __m256i bpv = _mm256_set1_epi64x(static_cast<long long>(bp));
  const __m256i v_lo = ExtractLanesAvx2(
      win, _mm256_add_epi64(bpv, lane_bits_lo), static_cast<long long>(k0),
      width);
  const __m256i v_hi = ExtractLanesAvx2(
      win, _mm256_add_epi64(bpv, lane_bits_hi), static_cast<long long>(k0),
      width);
  // Truncate the eight 64-bit lanes to uint32: dwords 0-3 from the low
  // block, 4-7 from the high block, then add the base.
  const __m256i packed = _mm256_blend_epi32(
      _mm256_permutevar8x32_epi32(v_lo,
                                  _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0)),
      _mm256_permutevar8x32_epi32(v_hi,
                                  _mm256_setr_epi32(0, 0, 0, 0, 0, 2, 4, 6)),
      0xF0);
  return _mm256_add_epi32(packed,
                          _mm256_set1_epi32(static_cast<int>(base)));
}

// The vector body stops while 4 whole words remain past the current
// position and the scalar loop finishes the tail — the kernel never
// reads past words + words_len.
__attribute__((target("avx2"))) void UnpackBitsAvx2(
    const std::uint64_t* words, std::size_t words_len, std::size_t bit_offset,
    int width, std::uint32_t base, std::uint32_t* out, std::size_t count) {
  assert(width >= 0 && width <= 32);
  if (width == 0) {
    for (std::size_t i = 0; i < count; ++i) out[i] = base;
    return;
  }
  // Tiny runs (a single compressed group is ~8 fields) lose to the
  // vector setup cost; hand them straight to the scalar loop.
  if (count < 16) {
    UnpackBitsScalar(words, words_len, bit_offset, width, base, out, count);
    return;
  }
  const std::size_t stride = static_cast<std::size_t>(width);
  std::size_t p = bit_offset;
  std::size_t i = 0;
  const __m256i lane_bits = _mm256_setr_epi64x(0, static_cast<long long>(stride),
                                               static_cast<long long>(2 * stride),
                                               static_cast<long long>(3 * stride));
  if (width <= 16) {
    // 8 fields per window; unrolled 2x so the out-of-order core overlaps
    // the two blocks' (fairly long) permute/shift dependency chains.
    const __m256i lane_bits_hi = _mm256_setr_epi64x(
        static_cast<long long>(4 * stride), static_cast<long long>(5 * stride),
        static_cast<long long>(6 * stride), static_cast<long long>(7 * stride));
    while (i + 16 <= count && ((p + 8 * stride) >> 6) + 4 <= words_len) {
      const __m256i a =
          UnpackBlock8Avx2(words, p, width, base, lane_bits, lane_bits_hi);
      const __m256i b = UnpackBlock8Avx2(words, p + 8 * stride, width, base,
                                         lane_bits, lane_bits_hi);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), a);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 8), b);
      i += 16;
      p += 16 * stride;
    }
    while (i + 8 <= count && (p >> 6) + 4 <= words_len) {
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + i),
          UnpackBlock8Avx2(words, p, width, base, lane_bits, lane_bits_hi));
      i += 8;
      p += 8 * stride;
    }
  }
  // Unrolled 2x: the two blocks share no data, so the out-of-order core
  // overlaps their (fairly long) permute/shift dependency chains.
  while (i + 8 <= count && ((p + 4 * stride) >> 6) + 4 <= words_len) {
    const __m128i a = UnpackBlock4Avx2(words, p, width, base, lane_bits);
    const __m128i b =
        UnpackBlock4Avx2(words, p + 4 * stride, width, base, lane_bits);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), a);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4), b);
    i += 8;
    p += 8 * stride;
  }
  while (i + 4 <= count && (p >> 6) + 4 <= words_len) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     UnpackBlock4Avx2(words, p, width, base, lane_bits));
    i += 4;
    p += 4 * stride;
  }
  UnpackBitsScalar(words, words_len, p, width, base, out + i, count - i);
}

__attribute__((target("avx2"))) void PrefixSumAvx2(std::uint32_t* vals,
                                                   std::size_t count,
                                                   std::uint32_t base) {
  std::uint32_t carry = base;
  std::size_t i = 0;
  const __m256i bcast3 = _mm256_set1_epi32(3);
  for (; i + 8 <= count; i += 8) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i));
    // Within each 128-bit half: the 4-lane shift-add network.
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
    // Propagate the low half's total (lane 3) into the high half only.
    const __m256i low_total = _mm256_blend_epi32(
        _mm256_setzero_si256(), _mm256_permutevar8x32_epi32(x, bcast3), 0xF0);
    x = _mm256_add_epi32(x, low_total);
    x = _mm256_add_epi32(x, _mm256_set1_epi32(static_cast<int>(carry)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(vals + i), x);
    carry = static_cast<std::uint32_t>(
        _mm256_extract_epi32(x, 7));  // lane 7
  }
  PrefixSumScalar(vals + i, count - i, carry);
}

#endif  // FSI_SIMD_X86

constexpr DecodeKernels kScalarDecodeTable = {
    Level::kScalar, UnpackBitsScalar, PrefixSumScalar,
};

#if FSI_SIMD_X86
constexpr DecodeKernels kSseDecodeTable = {
    Level::kSse, UnpackBitsScalar, PrefixSumSse,
};
constexpr DecodeKernels kAvx2DecodeTable = {
    Level::kAvx2, UnpackBitsAvx2, PrefixSumAvx2,
};
#endif

}  // namespace

const DecodeKernels& ScalarDecodeKernels() { return kScalarDecodeTable; }

const DecodeKernels& DecodeKernelsForLevel(Level level) {
  // Clamp to what this CPU can execute, then pick the table.
  Level detected = DetectCpuLevel();
  Level effective = level;
  if (static_cast<int>(effective) > static_cast<int>(detected)) {
    effective = detected;
  }
#if FSI_SIMD_X86
  switch (effective) {
    case Level::kAvx2:
      return kAvx2DecodeTable;
    case Level::kSse:
      return kSseDecodeTable;
    case Level::kScalar:
      break;
  }
#endif
  (void)effective;
  return kScalarDecodeTable;
}

const DecodeKernels& DispatchedDecodeKernels() {
  // Resolved once: ActiveLevel() folds in the FSI_FORCE_SCALAR override.
  static const DecodeKernels& kernels = DecodeKernelsForLevel(ActiveLevel());
  return kernels;
}

}  // namespace fsi::simd
