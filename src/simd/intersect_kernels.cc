#include "simd/intersect_kernels.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define FSI_SIMD_X86 1
#include <immintrin.h>
#else
#define FSI_SIMD_X86 0
#endif

namespace fsi::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar tier — the reference semantics every vector tier must reproduce
// bit-for-bit.  These are the library's original inner loops, hoisted here
// so algorithm code and kernel share one definition.
// ---------------------------------------------------------------------------

void IntersectPairScalar(const std::uint32_t* a, std::size_t na,
                         const std::uint32_t* b, std::size_t nb,
                         std::vector<std::uint32_t>* out) {
  const std::uint32_t* pa = a;
  const std::uint32_t* ea = a + na;
  const std::uint32_t* pb = b;
  const std::uint32_t* eb = b + nb;
  while (pa < ea && pb < eb) {
    std::uint32_t va = *pa;
    std::uint32_t vb = *pb;
    if (va == vb) {
      out->push_back(va);
      ++pa;
      ++pb;
    } else {
      // Branch-light advance: exactly one cursor moves.
      pa += (va < vb);
      pb += (vb < va);
    }
  }
}

std::size_t LowerBoundScalar(const std::uint32_t* sorted, std::size_t n,
                             std::uint32_t x) {
  return static_cast<std::size_t>(std::lower_bound(sorted, sorted + n, x) -
                                  sorted);
}

/// Exponential-probe bracketing shared by every gallop_ge tier: writes the
/// half-open window [*win_lo, *win_lo + *win_len) that contains the first
/// element >= x (an empty window at `lo` when no probing is needed).  Each
/// tier resolves the window with its own lower_bound, so the bracketing
/// logic exists exactly once and the tiers cannot drift apart.
void GallopBracket(const std::uint32_t* sorted, std::size_t n, std::size_t lo,
                   std::uint32_t x, std::size_t* win_lo,
                   std::size_t* win_len) {
  if (lo >= n || sorted[lo] >= x) {
    *win_lo = lo;
    *win_len = 0;
    return;
  }
  // Double the step until we overshoot.
  std::size_t step = 1;
  std::size_t prev = lo;
  std::size_t cur = lo + 1;
  while (cur < n && sorted[cur] < x) {
    prev = cur;
    step *= 2;
    cur = lo + step;
  }
  if (cur > n) cur = n;
  *win_lo = prev + 1;
  *win_len = cur - prev - 1;
}

std::size_t GallopGeScalar(const std::uint32_t* sorted, std::size_t n,
                           std::size_t lo, std::uint32_t x) {
  std::size_t win_lo;
  std::size_t win_len;
  GallopBracket(sorted, n, lo, x, &win_lo, &win_len);
  return win_lo + LowerBoundScalar(sorted + win_lo, win_len, x);
}

void MatchAnyScalar(const std::uint32_t* a, std::size_t na,
                    const std::uint32_t* b, std::size_t nb,
                    std::vector<std::uint32_t>* out) {
  for (std::size_t i = 0; i < na; ++i) {
    const std::uint32_t x = a[i];
    for (std::size_t j = 0; j < nb; ++j) {
      if (b[j] == x) {
        out->push_back(x);
        break;  // inputs are duplicate-free: at most one match
      }
    }
  }
}

#if FSI_SIMD_X86

// ---------------------------------------------------------------------------
// Shared lookup tables (plain uint32/uint8 arrays — built without vector
// instructions so static initialization is safe on any CPU; the kernels
// load them with unaligned loads).
// ---------------------------------------------------------------------------

// mask (8 bits, one per 32-bit lane) -> permutevar8x32 index vector that
// packs the selected lanes to the front.  Unselected trailing lanes index
// lane 0; their values are garbage and are trimmed by the final resize.
struct Compact8Table {
  alignas(32) std::uint32_t idx[256][8];
  Compact8Table() {
    for (int mask = 0; mask < 256; ++mask) {
      int k = 0;
      for (int lane = 0; lane < 8; ++lane) {
        if (mask & (1 << lane)) idx[mask][k++] = static_cast<std::uint32_t>(lane);
      }
      for (; k < 8; ++k) idx[mask][k] = 0;
    }
  }
};

// mask (4 bits) -> pshufb byte-shuffle packing the selected dwords.
struct Compact4Table {
  alignas(16) std::uint8_t idx[16][16];
  Compact4Table() {
    for (int mask = 0; mask < 16; ++mask) {
      int k = 0;
      for (int lane = 0; lane < 4; ++lane) {
        if (mask & (1 << lane)) {
          for (int byte = 0; byte < 4; ++byte) {
            idx[mask][4 * k + byte] = static_cast<std::uint8_t>(4 * lane + byte);
          }
          ++k;
        }
      }
      for (; k < 4; ++k) {
        for (int byte = 0; byte < 4; ++byte) {
          idx[mask][4 * k + byte] = 0x80;  // zero-fill; trimmed anyway
        }
      }
    }
  }
};

// Lane-rotation index vectors for permutevar8x32: rot[r][lane] = (lane+r)%8.
struct Rotate8Table {
  alignas(32) std::uint32_t idx[8][8];
  Rotate8Table() {
    for (int r = 0; r < 8; ++r) {
      for (int lane = 0; lane < 8; ++lane) {
        idx[r][lane] = static_cast<std::uint32_t>((lane + r) % 8);
      }
    }
  }
};

// Partial-load masks for _mm256_maskload_epi32: valid[r] has the first r
// lanes enabled.
struct LoadMask8Table {
  alignas(32) std::uint32_t idx[9][8];
  LoadMask8Table() {
    for (int r = 0; r <= 8; ++r) {
      for (int lane = 0; lane < 8; ++lane) {
        idx[r][lane] = lane < r ? 0xffffffffu : 0u;
      }
    }
  }
};

const Compact8Table kCompact8;
const Compact4Table kCompact4;
const Rotate8Table kRotate8;
const LoadMask8Table kLoadMask8;

// Bias making signed 32-bit compares order unsigned values.
constexpr std::uint32_t kSignBias = 0x80000000u;

// ---------------------------------------------------------------------------
// AVX2 tier: 8 x uint32 lanes.  Every function carries a target attribute,
// so the translation unit builds at the baseline ISA and these bodies are
// only entered after the CPUID check in cpu_features.cc.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) void MatchAnyAvx2(
    const std::uint32_t* a, std::size_t na, const std::uint32_t* b,
    std::size_t nb, std::vector<std::uint32_t>* out) {
  for (std::size_t i = 0; i < na; ++i) {
    const std::uint32_t x = a[i];
    const __m256i broadcast = _mm256_set1_epi32(static_cast<int>(x));
    bool found = false;
    std::size_t j = 0;
    for (; j + 8 <= nb && !found; j += 8) {
      const __m256i group = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(b + j));
      const __m256i eq = _mm256_cmpeq_epi32(broadcast, group);
      found = _mm256_movemask_ps(_mm256_castsi256_ps(eq)) != 0;
    }
    if (!found && j < nb) {
      const std::size_t rem = nb - j;
      const __m256i mask = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(kLoadMask8.idx[rem]));
      const __m256i group = _mm256_maskload_epi32(
          reinterpret_cast<const int*>(b + j), mask);
      const __m256i eq = _mm256_cmpeq_epi32(broadcast, group);
      // Masked-out lanes load as 0 and would spuriously match x == 0;
      // keep only the valid lanes' compare bits.
      const int hits = _mm256_movemask_ps(_mm256_castsi256_ps(eq)) &
                       ((1 << rem) - 1);
      found = hits != 0;
    }
    if (found) out->push_back(x);
  }
}

__attribute__((target("avx2"))) std::size_t LowerBoundAvx2(
    const std::uint32_t* sorted, std::size_t n, std::uint32_t x) {
  // Binary-search down to a short window, then resolve the window with
  // broadcast-compare + popcount instead of the final branchy steps.
  std::size_t lo = 0;
  std::size_t len = n;
  while (len > 32) {
    const std::size_t half = len / 2;
    if (sorted[lo + half] < x) {
      lo += half + 1;
      len -= half + 1;
    } else {
      len = half;
    }
  }
  std::size_t less = 0;
  std::size_t j = 0;
  if (len >= 8) {  // skip the vector setup entirely for tiny windows
    const __m256i probe =
        _mm256_set1_epi32(static_cast<int>(x ^ kSignBias));
    const __m256i bias = _mm256_set1_epi32(static_cast<int>(kSignBias));
    for (; j + 8 <= len; j += 8) {
      const __m256i v = _mm256_xor_si256(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(sorted + lo + j)),
          bias);
      const int below = _mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_cmpgt_epi32(probe, v)));
      less += static_cast<std::size_t>(__builtin_popcount(
          static_cast<unsigned>(below)));
    }
  }
  for (; j < len; ++j) less += (sorted[lo + j] < x) ? 1 : 0;
  return lo + less;
}

__attribute__((target("avx2"))) std::size_t GallopGeAvx2(
    const std::uint32_t* sorted, std::size_t n, std::size_t lo,
    std::uint32_t x) {
  std::size_t win_lo;
  std::size_t win_len;
  GallopBracket(sorted, n, lo, x, &win_lo, &win_len);
  return win_lo + LowerBoundAvx2(sorted + win_lo, win_len, x);
}

__attribute__((target("avx2"))) void IntersectPairAvx2(
    const std::uint32_t* a, std::size_t na, const std::uint32_t* b,
    std::size_t nb, std::vector<std::uint32_t>* out) {
  if (na == 0 || nb == 0) return;
  // Short-side cases (the RanGroupScan group merges live here: expected
  // group width ~8): probe each element of the shorter sorted side against
  // the longer one with one broadcast-compare per 8 elements.  Emitting in
  // the short side's order is ascending, exactly the merge output.
  constexpr std::size_t kShort = 16;
  if (na <= kShort || nb <= kShort) {
    if (na <= nb) {
      MatchAnyAvx2(a, na, b, nb, out);
    } else {
      MatchAnyAvx2(b, nb, a, na, out);
    }
    return;
  }
  // Block-wise merge: compare an 8-element block of each list
  // all-against-all (8 lane rotations), pack the matches, then advance the
  // block whose maximum is smaller.  A value matches in at most one block
  // pair and blocks advance monotonically, so matches are emitted exactly
  // once, in ascending order — identical to the two-pointer merge.
  const std::size_t base = out->size();
  out->resize(base + std::min(na, nb) + 8);  // +8: packed-store slack
  std::uint32_t* dst0 = out->data() + base;
  std::uint32_t* dst = dst0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia + 8 <= na && ib + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + ia));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + ib));
    const std::uint32_t amax = a[ia + 7];
    const std::uint32_t bmax = b[ib + 7];
    __m256i eq = _mm256_cmpeq_epi32(va, vb);
    for (int r = 1; r < 8; ++r) {
      const __m256i rot = _mm256_permutevar8x32_epi32(
          vb, _mm256_load_si256(
                  reinterpret_cast<const __m256i*>(kRotate8.idx[r])));
      eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, rot));
    }
    const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(eq));
    const __m256i packed = _mm256_permutevar8x32_epi32(
        va, _mm256_load_si256(
                reinterpret_cast<const __m256i*>(kCompact8.idx[mask])));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), packed);
    dst += __builtin_popcount(static_cast<unsigned>(mask));
    ia += (amax <= bmax) ? 8 : 0;
    ib += (bmax <= amax) ? 8 : 0;
  }
  out->resize(base + static_cast<std::size_t>(dst - dst0));
  IntersectPairScalar(a + ia, na - ia, b + ib, nb - ib, out);
}

// ---------------------------------------------------------------------------
// SSE tier: 4 x uint32 lanes (SSE2 compares + SSSE3 pshufb packing).
// ---------------------------------------------------------------------------

__attribute__((target("ssse3"))) void MatchAnySse(
    const std::uint32_t* a, std::size_t na, const std::uint32_t* b,
    std::size_t nb, std::vector<std::uint32_t>* out) {
  for (std::size_t i = 0; i < na; ++i) {
    const std::uint32_t x = a[i];
    const __m128i broadcast = _mm_set1_epi32(static_cast<int>(x));
    bool found = false;
    std::size_t j = 0;
    for (; j + 4 <= nb && !found; j += 4) {
      const __m128i group =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
      const __m128i eq = _mm_cmpeq_epi32(broadcast, group);
      found = _mm_movemask_ps(_mm_castsi128_ps(eq)) != 0;
    }
    for (; j < nb && !found; ++j) found = (b[j] == x);
    if (found) out->push_back(x);
  }
}

__attribute__((target("ssse3"))) std::size_t LowerBoundSse(
    const std::uint32_t* sorted, std::size_t n, std::uint32_t x) {
  std::size_t lo = 0;
  std::size_t len = n;
  while (len > 16) {
    const std::size_t half = len / 2;
    if (sorted[lo + half] < x) {
      lo += half + 1;
      len -= half + 1;
    } else {
      len = half;
    }
  }
  std::size_t less = 0;
  std::size_t j = 0;
  if (len >= 4) {  // skip the vector setup entirely for tiny windows
    const __m128i probe = _mm_set1_epi32(static_cast<int>(x ^ kSignBias));
    const __m128i bias = _mm_set1_epi32(static_cast<int>(kSignBias));
    for (; j + 4 <= len; j += 4) {
      const __m128i v = _mm_xor_si128(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(sorted + lo + j)),
          bias);
      const int below =
          _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(probe, v)));
      less += static_cast<std::size_t>(__builtin_popcount(
          static_cast<unsigned>(below)));
    }
  }
  for (; j < len; ++j) less += (sorted[lo + j] < x) ? 1 : 0;
  return lo + less;
}

__attribute__((target("ssse3"))) std::size_t GallopGeSse(
    const std::uint32_t* sorted, std::size_t n, std::size_t lo,
    std::uint32_t x) {
  std::size_t win_lo;
  std::size_t win_len;
  GallopBracket(sorted, n, lo, x, &win_lo, &win_len);
  return win_lo + LowerBoundSse(sorted + win_lo, win_len, x);
}

__attribute__((target("ssse3"))) void IntersectPairSse(
    const std::uint32_t* a, std::size_t na, const std::uint32_t* b,
    std::size_t nb, std::vector<std::uint32_t>* out) {
  if (na == 0 || nb == 0) return;
  constexpr std::size_t kShort = 8;
  if (na <= kShort || nb <= kShort) {
    if (na <= nb) {
      MatchAnySse(a, na, b, nb, out);
    } else {
      MatchAnySse(b, nb, a, na, out);
    }
    return;
  }
  const std::size_t base = out->size();
  out->resize(base + std::min(na, nb) + 4);
  std::uint32_t* dst0 = out->data() + base;
  std::uint32_t* dst = dst0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia + 4 <= na && ib + 4 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + ia));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + ib));
    const std::uint32_t amax = a[ia + 3];
    const std::uint32_t bmax = b[ib + 3];
    // All-pairs compare via the three lane rotations of vb.
    const __m128i r1 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1));
    const __m128i r2 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2));
    const __m128i r3 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3));
    __m128i eq = _mm_cmpeq_epi32(va, vb);
    eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, r1));
    eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, r2));
    eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, r3));
    const int mask = _mm_movemask_ps(_mm_castsi128_ps(eq));
    const __m128i packed = _mm_shuffle_epi8(
        va,
        _mm_load_si128(reinterpret_cast<const __m128i*>(kCompact4.idx[mask])));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), packed);
    dst += __builtin_popcount(static_cast<unsigned>(mask));
    ia += (amax <= bmax) ? 4 : 0;
    ib += (bmax <= amax) ? 4 : 0;
  }
  out->resize(base + static_cast<std::size_t>(dst - dst0));
  IntersectPairScalar(a + ia, na - ia, b + ib, nb - ib, out);
}

#endif  // FSI_SIMD_X86

constexpr Kernels kScalarTable = {
    Level::kScalar, IntersectPairScalar, LowerBoundScalar, GallopGeScalar,
    MatchAnyScalar,
};

#if FSI_SIMD_X86
constexpr Kernels kSseTable = {
    Level::kSse, IntersectPairSse, LowerBoundSse, GallopGeSse, MatchAnySse,
};
constexpr Kernels kAvx2Table = {
    Level::kAvx2, IntersectPairAvx2, LowerBoundAvx2, GallopGeAvx2,
    MatchAnyAvx2,
};
#endif

}  // namespace

Mode ParseMode(std::string_view value) {
  if (value == "auto" || value == "on" || value == "1") return Mode::kAuto;
  if (value == "off" || value == "scalar" || value == "0") return Mode::kOff;
  throw std::invalid_argument("simd: expected 'auto' or 'off', got '" +
                              std::string(value) + "'");
}

const Kernels& ScalarKernels() { return kScalarTable; }

const Kernels& KernelsForLevel(Level level) {
  // Clamp to what this CPU can execute, then pick the table.
  Level detected = DetectCpuLevel();
  Level effective = level;
  if (static_cast<int>(effective) > static_cast<int>(detected)) {
    effective = detected;
  }
#if FSI_SIMD_X86
  switch (effective) {
    case Level::kAvx2:
      return kAvx2Table;
    case Level::kSse:
      return kSseTable;
    case Level::kScalar:
      break;
  }
#endif
  (void)effective;
  return kScalarTable;
}

const Kernels& DispatchedKernels() {
  // Resolved once: ActiveLevel() folds in the FSI_FORCE_SCALAR override.
  static const Kernels& kernels = KernelsForLevel(ActiveLevel());
  return kernels;
}

}  // namespace fsi::simd
