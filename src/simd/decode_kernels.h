// Vectorized decode kernels for the compressed structures (Section 4.1 /
// Appendix B), with runtime dispatch.
//
// The compressed block formats bottom out in two dense inner loops:
//
//   unpack_bits  fixed-width bit-field extraction — the Lowbits codec
//                stores each in-group value as exactly `low_bits` bits,
//                MSB-first (codec/bit_stream.h).  The AVX2 tier unpacks
//                four fields per step with 64-bit gathers and per-lane
//                variable shifts (vpsllvq/vpsrlvq); per-lane variable
//                64-bit shifts do not exist below AVX2, so the SSE tier
//                keeps the scalar extraction loop.
//   prefix_sum   gap -> absolute conversion for the Elias γ/δ codecs:
//                the unary/low-bit decode is inherently serial, but the
//                running sum over the decoded gaps vectorizes with the
//                classic shift-add prefix network (4 lanes under SSE,
//                8 under AVX2).
//
// Same contract as simd/intersect_kernels.h: one function-pointer table
// per tier, resolved once per process from CPUID, every tier bit-identical
// to the scalar reference, FSI_FORCE_SCALAR honored, and the per-algorithm
// "simd=auto|off" registry option selecting between the dispatched and the
// scalar table.

#ifndef FSI_SIMD_DECODE_KERNELS_H_
#define FSI_SIMD_DECODE_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "simd/cpu_features.h"
#include "simd/intersect_kernels.h"  // simd::Mode / ParseMode

namespace fsi::simd {

/// The decode kernel table.  All entries are non-null; all variants of one
/// entry produce bit-identical results.
struct DecodeKernels {
  Level level;

  /// Extracts `count` fixed-width bit fields, MSB-first, starting at
  /// absolute bit offset `bit_offset` inside words[0, words_len), adds
  /// `base` to each and stores them to out[0, count).  `width` must be in
  /// [0, 32]; width 0 stores `base` everywhere.  The kernel never reads at
  /// or past words + words_len — callers guarantee
  /// bit_offset + count * width <= words_len * 64.
  void (*unpack_bits)(const std::uint64_t* words, std::size_t words_len,
                      std::size_t bit_offset, int width, std::uint32_t base,
                      std::uint32_t* out, std::size_t count);

  /// In-place inclusive prefix sum with carry-in:
  /// vals[i] <- base + vals[0] + ... + vals[i] (uint32 wraparound
  /// semantics, identical across tiers).
  void (*prefix_sum)(std::uint32_t* vals, std::size_t count,
                     std::uint32_t base);
};

/// The portable scalar table (also the FSI_FORCE_SCALAR / simd=off path).
const DecodeKernels& ScalarDecodeKernels();

/// The process-wide table resolved once from ActiveLevel().
const DecodeKernels& DispatchedDecodeKernels();

/// Table for a mode: kAuto -> dispatched, kOff -> scalar.
inline const DecodeKernels& SelectDecode(Mode mode) {
  return mode == Mode::kOff ? ScalarDecodeKernels() : DispatchedDecodeKernels();
}

/// Table for an explicit level — unit tests sweep every tier supported by
/// the machine.  Levels above DetectCpuLevel() fall back to the detected
/// one (never returns a table the CPU cannot execute).
const DecodeKernels& DecodeKernelsForLevel(Level level);

}  // namespace fsi::simd

#endif  // FSI_SIMD_DECODE_KERNELS_H_
