// Runtime CPU feature detection for the SIMD kernel layer.
//
// The paper's central device is word-level parallelism: comparing one
// element against a group of w elements in O(1) word operations.  SSE and
// AVX2 lanes are the hardware realization of the same idea, so the hot
// inner loops (src/simd/intersect_kernels.h) ship in vectorized variants.
// Which variant runs is decided *once per process*, here:
//
//   * DetectCpuLevel()  — raw CPUID probe: the best level this machine
//                         can execute.
//   * ActiveLevel()     — the level the dispatched kernel table resolved
//                         to: DetectCpuLevel(), downgraded to kScalar when
//                         the FSI_FORCE_SCALAR environment variable is set
//                         (any value but "0" or empty).
//
// Binaries stay portable: every kernel is compiled with per-function
// target attributes, so an AVX2 code path can exist in a binary built
// with plain -O2 and is only entered after the CPUID check passes.

#ifndef FSI_SIMD_CPU_FEATURES_H_
#define FSI_SIMD_CPU_FEATURES_H_

#include <string_view>

namespace fsi::simd {

/// Instruction-set tiers the kernel layer implements, best last.
enum class Level {
  kScalar,  // portable C++ (also the FSI_FORCE_SCALAR / simd=off path)
  kSse,     // 128-bit lanes (SSE2 + SSSE3 shuffles), 4 x uint32
  kAvx2,    // 256-bit lanes, 8 x uint32
};

/// Best level supported by the executing CPU (raw probe; ignores
/// FSI_FORCE_SCALAR).  Constant for the process lifetime.
Level DetectCpuLevel();

/// True when the FSI_FORCE_SCALAR environment variable is set to a value
/// other than "" or "0".  Read once, at first kernel-table resolution.
bool ForceScalarEnv();

/// The level the process-wide dispatched kernel table resolved to —
/// DetectCpuLevel() unless FSI_FORCE_SCALAR demoted it to kScalar.
/// Resolved on first call, constant afterwards (documented in
/// docs/ALGORITHMS.md: set the variable before the first query, not
/// mid-run).
Level ActiveLevel();

/// Human-readable level name: "scalar", "sse", "avx2".
std::string_view LevelName(Level level);

}  // namespace fsi::simd

#endif  // FSI_SIMD_CPU_FEATURES_H_
