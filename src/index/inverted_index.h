// A minimal in-memory inverted index (Witten, Moffat & Bell [23] style).
//
// This is the substrate the paper's motivating applications sit on: "for
// each term t, the inverted index stores a sorted list of all document IDs
// containing t".  The examples (mini search engine, faceted product
// filtering) build an index and evaluate conjunctive queries through any
// IntersectionAlgorithm — demonstrating the library's intended integration
// point: posting lists are pre-processed once at index build time, queries
// intersect the pre-processed structures.

#ifndef FSI_INDEX_INVERTED_INDEX_H_
#define FSI_INDEX_INVERTED_INDEX_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/algorithm.h"

namespace fsi {

/// Inverted index over string terms with pluggable intersection algorithms.
class InvertedIndex {
 public:
  /// `algorithm` pre-processes every posting list at Finalize() time and
  /// answers the conjunctive queries; the index keeps a non-owning pointer,
  /// so the algorithm must outlive the index.
  explicit InvertedIndex(const IntersectionAlgorithm* algorithm)
      : algorithm_(algorithm) {}

  /// Adds a document; doc ids must be strictly increasing across calls.
  void AddDocument(Elem doc_id, std::span<const std::string> terms);

  /// Builds the per-term structures.  Must be called once, after all
  /// AddDocument calls and before any query.
  void Finalize();

  /// Conjunctive query: documents containing *all* terms.  Unknown terms
  /// yield an empty result.
  ElemList Query(std::span<const std::string> terms) const;

  /// Document frequency of a term (0 if unknown).
  std::size_t DocumentFrequency(std::string_view term) const;

  std::size_t num_terms() const { return postings_.size(); }
  std::size_t num_documents() const { return num_documents_; }

  /// Total index footprint in 64-bit words (pre-processed structures).
  std::size_t SizeInWords() const;

 private:
  const IntersectionAlgorithm* algorithm_;
  std::unordered_map<std::string, std::size_t> dictionary_;
  std::vector<ElemList> postings_;
  std::vector<std::unique_ptr<PreprocessedSet>> structures_;
  std::size_t num_documents_ = 0;
  Elem last_doc_id_ = 0;
  bool has_docs_ = false;
  bool finalized_ = false;
};

}  // namespace fsi

#endif  // FSI_INDEX_INVERTED_INDEX_H_
