// A minimal in-memory inverted index (Witten, Moffat & Bell [23] style).
//
// This is the substrate the paper's motivating applications sit on: "for
// each term t, the inverted index stores a sorted list of all document IDs
// containing t".  The examples (mini search engine, faceted product
// filtering) build an index over an fsi::Engine and evaluate conjunctive
// queries through it — demonstrating the library's intended integration
// point: posting lists are pre-processed once at index build time
// (Engine::Prepare), queries intersect the owning PreparedSet handles.

#ifndef FSI_INDEX_INVERTED_INDEX_H_
#define FSI_INDEX_INVERTED_INDEX_H_

#include <cstddef>
#include <deque>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/batch_runner.h"
#include "api/engine.h"

namespace fsi {

/// Inverted index over string terms with a pluggable intersection engine.
///
/// The lifecycle (the README's "index lifecycle" section walks the same
/// stages with examples):
///
///  1. Build — AddDocument* accumulates postings, then exactly one of:
///      * Finalize(): every posting list is pre-processed once
///        (Engine::Prepare, the paper's preprocessing stage); the index
///        is read-only and fully thread-safe for queries, or
///      * FinalizeUpdatable(): posting lists become *mutable* prepared
///        sets — InsertDocument/EraseDocument then apply term-document
///        updates concurrently with lock-free readers (see
///        docs/ARCHITECTURE.md, "Mutability & epochs", for the snapshot
///        semantics each query gets).
///  2. Query — Query/CountMatching intersect the query terms' postings
///     on the calling thread; BatchMatch/BatchCount run a whole query
///     log concurrently via fsi::BatchRunner, bitwise-identical to the
///     serial loop.
///  3. Persist — Save() writes one snapshot file (engine image + term
///     dictionary); Open() mmap-loads it back zero-copy, skipping the
///     whole build, with updatable indexes round-tripping updatable
///     (docs/PERSISTENCE.md).
///
/// For a serving tier with per-query deadlines and admission control,
/// feed per-term postings into a ShardedEngine instead
/// (serve/sharded_engine.h, docs/SERVING.md) — examples/search_server.cpp
/// shows that deployment shape.
class InvertedIndex {
 public:
  /// Zero-config: the cost-model planner picks the intersection algorithm
  /// per query (Engine's default path, api/planner.h).
  InvertedIndex() : InvertedIndex(Engine()) {}

  /// The engine pre-processes every posting list at Finalize() time and
  /// answers the conjunctive queries.  Copying an Engine shares its
  /// algorithm instance, so the index owns everything it needs — no
  /// external lifetime requirements.
  explicit InvertedIndex(Engine engine) : engine_(std::move(engine)) {}

  /// Adds a document; doc ids must be strictly increasing across calls.
  void AddDocument(Elem doc_id, std::span<const std::string> terms);

  /// Builds the per-term structures.  Must be called once, after all
  /// AddDocument calls and before any query.
  void Finalize();

  /// Like Finalize(), but builds every posting list as a *mutable*
  /// prepared set (Engine::PrepareMutable): InsertDocument/EraseDocument
  /// may then run concurrently with queries.  Costs one extra copy of the
  /// posting elements per term (the retained base arrays).
  void FinalizeUpdatable(MutableSetOptions options = {});

  /// Bulk term-document update: adds `doc_id` to the posting list of every
  /// term (creating postings for unseen terms).  Requires
  /// FinalizeUpdatable; safe concurrently with queries and with other
  /// updates.  Unlike AddDocument, doc ids may arrive in any order.
  /// Returns the number of posting lists that actually changed.
  /// Note: num_documents() keeps counting AddDocument builds only.
  std::size_t InsertDocument(Elem doc_id, std::span<const std::string> terms);

  /// Bulk term-document update: removes `doc_id` from the posting list of
  /// every listed term (the caller supplies the document's terms — the
  /// index stores no forward mapping).  Unknown terms and absent ids are
  /// skipped.  Requires FinalizeUpdatable; safe concurrently with queries
  /// and other updates.  Returns the number of posting lists changed.
  std::size_t EraseDocument(Elem doc_id, std::span<const std::string> terms);

  /// Conjunctive query: documents containing *all* terms, in document-id
  /// order.  Unknown terms yield an empty result.  When `stats` is
  /// non-null it receives the per-query measurements.
  ElemList Query(std::span<const std::string> terms,
                 QueryStats* stats = nullptr) const;

  /// Count-only conjunctive query: how many documents match, without
  /// materializing them (the "result size estimation" workload).
  std::size_t CountMatching(std::span<const std::string> terms) const;

  // Boolean queries beyond conjunction, evaluated through the expression
  // algebra (api/expr.h): the engine's optimizer rewrites and orders the
  // tree, and results memoize in the engine's ExprCache.

  /// Disjunctive query: documents containing *any* of the terms, in
  /// document-id order.  Unknown terms are dropped (they match nothing);
  /// no known terms yields an empty result.
  ElemList QueryAny(std::span<const std::string> terms,
                    QueryStats* stats = nullptr) const;

  /// t-of-k query: documents containing at least `min_terms` of the given
  /// terms (listed terms count with multiplicity, matching
  /// Expr::AtLeast).  Unknown terms are dropped; fewer known terms than
  /// `min_terms` yields an empty result.  Throws std::invalid_argument
  /// when `min_terms` is 0.
  ElemList QueryAtLeast(std::span<const std::string> terms,
                        std::size_t min_terms,
                        QueryStats* stats = nullptr) const;

  /// Difference query: documents containing *all* `include` terms and
  /// *none* of the `exclude` terms.  An unknown include term yields an
  /// empty result (as Query does); unknown exclude terms are dropped.
  ElemList QueryExcluding(std::span<const std::string> include,
                          std::span<const std::string> exclude,
                          QueryStats* stats = nullptr) const;

  /// A batch of conjunctive term queries (a query log).
  using TermQueries = std::span<const std::vector<std::string>>;

  /// Executes a query log concurrently via fsi::BatchRunner: per-query
  /// result vectors, index-aligned with `queries`.  Queries containing an
  /// unknown term yield an empty result (as Query does).  Results are
  /// identical to looping Query() single-threaded.  When `stats` is
  /// non-null it receives the merged batch statistics.
  std::vector<ElemList> BatchMatch(TermQueries queries,
                                   BatchOptions options = {},
                                   BatchStats* stats = nullptr) const;

  /// Count-only batch: per-query match counts without handing out
  /// document lists (results land in per-worker scratch buffers),
  /// executed concurrently.
  std::vector<std::size_t> BatchCount(TermQueries queries,
                                      BatchOptions options = {},
                                      BatchStats* stats = nullptr) const;

  /// Document frequency of a term (0 if unknown).  Delta-aware on an
  /// updatable index: reflects InsertDocument/EraseDocument immediately.
  std::size_t DocumentFrequency(std::string_view term) const;

  std::size_t num_terms() const;
  std::size_t num_documents() const { return num_documents_; }
  const Engine& engine() const { return engine_; }
  /// Whether FinalizeUpdatable built the index (updates allowed).
  bool updatable() const { return updatable_; }

  /// Total index footprint in 64-bit words (pre-processed structures).
  std::size_t SizeInWords() const;

  // Snapshot persistence (docs/PERSISTENCE.md): one versioned file
  // holding the engine image (every per-term structure + planner
  // calibration) plus the term dictionary, so a process restart skips the
  // whole build — Open() mmaps the file and queries run zero-copy against
  // the mapping.

  /// Saves the finalized index to `path`.  Requires Finalize() or
  /// FinalizeUpdatable() first (throws std::logic_error otherwise); safe
  /// concurrently with queries and updates (updatable posting lists are
  /// saved as a consistent per-term snapshot).
  void Save(const std::string& path) const;

  /// Loads an index saved by Save().  The engine, per-term structures,
  /// dictionary and update mode are reconstructed; an updatable index
  /// comes back updatable (frozen bases + empty deltas).  When `info` is
  /// non-null it receives the load report.  Throws
  /// storage::SnapshotError on anything malformed.
  static InvertedIndex Open(const std::string& path,
                            SnapshotLoadOptions options = {},
                            SnapshotInfo* info = nullptr);

 private:
  /// The Open() tail: adopts a loaded engine image and rebuilds the
  /// dictionary from the term-table section.  Private so the only path in
  /// is Open() — and a prvalue return, since the shared_mutex member
  /// makes the class immovable.
  InvertedIndex(LoadedSnapshot&& loaded,
                std::span<const std::byte> term_table,
                SnapshotLoadOptions options);

  /// Resolves terms to prepared-set handles; false when a term is unknown.
  bool Resolve(std::span<const std::string> terms,
               std::vector<const PreparedSet*>* sets) const;

  /// Resolves terms to expression leaves, dropping unknown terms.
  /// Expr::Set copies the handle, so the leaves outlive the lock.
  std::vector<Expr> ResolveLeaves(std::span<const std::string> terms) const;

  /// Resolves a query log into `resolved` (skipping empty/unknown-term
  /// queries) and returns the origin map: resolved slot -> query index.
  std::vector<std::size_t> ResolveBatch(
      TermQueries queries, std::vector<BatchQuery>* resolved) const;

  Engine engine_;
  /// Guards dictionary_ / postings_ / structures_ *membership* against
  /// InsertDocument's new-term growth: updates take it exclusive, query
  /// resolution shared.  PreparedSet handles themselves are internally
  /// synchronized (mutable sets), and a std::deque never invalidates
  /// references on push_back — so resolved `const PreparedSet*` pointers
  /// stay valid outside the lock, for as long as the index lives.
  mutable std::shared_mutex membership_mutex_;
  std::unordered_map<std::string, std::size_t> dictionary_;
  std::vector<ElemList> postings_;
  std::deque<PreparedSet> structures_;
  MutableSetOptions mutable_options_;
  std::size_t num_documents_ = 0;
  Elem last_doc_id_ = 0;
  bool has_docs_ = false;
  bool finalized_ = false;
  bool updatable_ = false;
};

}  // namespace fsi

#endif  // FSI_INDEX_INVERTED_INDEX_H_
