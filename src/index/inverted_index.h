// A minimal in-memory inverted index (Witten, Moffat & Bell [23] style).
//
// This is the substrate the paper's motivating applications sit on: "for
// each term t, the inverted index stores a sorted list of all document IDs
// containing t".  The examples (mini search engine, faceted product
// filtering) build an index over an fsi::Engine and evaluate conjunctive
// queries through it — demonstrating the library's intended integration
// point: posting lists are pre-processed once at index build time
// (Engine::Prepare), queries intersect the owning PreparedSet handles.

#ifndef FSI_INDEX_INVERTED_INDEX_H_
#define FSI_INDEX_INVERTED_INDEX_H_

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/batch_runner.h"
#include "api/engine.h"

namespace fsi {

/// Inverted index over string terms with a pluggable intersection engine.
class InvertedIndex {
 public:
  /// Zero-config: the cost-model planner picks the intersection algorithm
  /// per query (Engine's default path, api/planner.h).
  InvertedIndex() : InvertedIndex(Engine()) {}

  /// The engine pre-processes every posting list at Finalize() time and
  /// answers the conjunctive queries.  Copying an Engine shares its
  /// algorithm instance, so the index owns everything it needs — no
  /// external lifetime requirements.
  explicit InvertedIndex(Engine engine) : engine_(std::move(engine)) {}

  /// Adds a document; doc ids must be strictly increasing across calls.
  void AddDocument(Elem doc_id, std::span<const std::string> terms);

  /// Builds the per-term structures.  Must be called once, after all
  /// AddDocument calls and before any query.
  void Finalize();

  /// Conjunctive query: documents containing *all* terms, in document-id
  /// order.  Unknown terms yield an empty result.  When `stats` is
  /// non-null it receives the per-query measurements.
  ElemList Query(std::span<const std::string> terms,
                 QueryStats* stats = nullptr) const;

  /// Count-only conjunctive query: how many documents match, without
  /// materializing them (the "result size estimation" workload).
  std::size_t CountMatching(std::span<const std::string> terms) const;

  /// A batch of conjunctive term queries (a query log).
  using TermQueries = std::span<const std::vector<std::string>>;

  /// Executes a query log concurrently via fsi::BatchRunner: per-query
  /// result vectors, index-aligned with `queries`.  Queries containing an
  /// unknown term yield an empty result (as Query does).  Results are
  /// identical to looping Query() single-threaded.  When `stats` is
  /// non-null it receives the merged batch statistics.
  std::vector<ElemList> BatchMatch(TermQueries queries,
                                   BatchOptions options = {},
                                   BatchStats* stats = nullptr) const;

  /// Count-only batch: per-query match counts without handing out
  /// document lists (results land in per-worker scratch buffers),
  /// executed concurrently.
  std::vector<std::size_t> BatchCount(TermQueries queries,
                                      BatchOptions options = {},
                                      BatchStats* stats = nullptr) const;

  /// Document frequency of a term (0 if unknown).
  std::size_t DocumentFrequency(std::string_view term) const;

  std::size_t num_terms() const { return postings_.size(); }
  std::size_t num_documents() const { return num_documents_; }
  const Engine& engine() const { return engine_; }

  /// Total index footprint in 64-bit words (pre-processed structures).
  std::size_t SizeInWords() const;

 private:
  /// Resolves terms to prepared-set handles; false when a term is unknown.
  bool Resolve(std::span<const std::string> terms,
               std::vector<const PreparedSet*>* sets) const;

  /// Resolves a query log into `resolved` (skipping empty/unknown-term
  /// queries) and returns the origin map: resolved slot -> query index.
  std::vector<std::size_t> ResolveBatch(
      TermQueries queries, std::vector<BatchQuery>* resolved) const;

  Engine engine_;
  std::unordered_map<std::string, std::size_t> dictionary_;
  std::vector<ElemList> postings_;
  std::vector<PreparedSet> structures_;
  std::size_t num_documents_ = 0;
  Elem last_doc_id_ = 0;
  bool has_docs_ = false;
  bool finalized_ = false;
};

}  // namespace fsi

#endif  // FSI_INDEX_INVERTED_INDEX_H_
