#include "index/inverted_index.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include "api/expr.h"
#include "storage/layout.h"
#include "storage/mapped_file.h"
#include "storage/snapshot.h"

namespace fsi {

void InvertedIndex::AddDocument(Elem doc_id,
                                std::span<const std::string> terms) {
  if (finalized_) {
    throw std::logic_error("InvertedIndex: AddDocument after Finalize");
  }
  if (has_docs_ && doc_id <= last_doc_id_) {
    throw std::invalid_argument(
        "InvertedIndex: doc ids must be strictly increasing");
  }
  last_doc_id_ = doc_id;
  has_docs_ = true;
  ++num_documents_;
  for (const std::string& term : terms) {
    auto [it, inserted] = dictionary_.try_emplace(term, postings_.size());
    if (inserted) postings_.emplace_back();
    ElemList& list = postings_[it->second];
    if (list.empty() || list.back() != doc_id) list.push_back(doc_id);
  }
}

void InvertedIndex::Finalize() {
  if (finalized_) throw std::logic_error("InvertedIndex: double Finalize");
  // PrepareBatch sees all postings at once, so under a space budget the
  // representation choice is the global greedy split, not first-come
  // (with no budget it degenerates to a Prepare loop).
  std::vector<PreparedSet> prepared =
      engine_.PrepareBatch(std::span<const ElemList>(postings_));
  for (PreparedSet& s : prepared) structures_.push_back(std::move(s));
  finalized_ = true;
}

void InvertedIndex::FinalizeUpdatable(MutableSetOptions options) {
  if (finalized_) throw std::logic_error("InvertedIndex: double Finalize");
  mutable_options_ = options;
  for (const ElemList& list : postings_) {
    structures_.push_back(engine_.PrepareMutable(list, options));
  }
  finalized_ = true;
  updatable_ = true;
}

std::size_t InvertedIndex::InsertDocument(Elem doc_id,
                                          std::span<const std::string> terms) {
  if (!updatable_) {
    throw std::logic_error(
        "InvertedIndex: InsertDocument requires FinalizeUpdatable");
  }
  std::size_t changed = 0;
  for (const std::string& term : terms) {
    PreparedSet* posting = nullptr;
    {
      std::shared_lock<std::shared_mutex> lock(membership_mutex_);
      auto it = dictionary_.find(term);
      if (it != dictionary_.end()) posting = &structures_[it->second];
    }
    if (posting == nullptr) {
      // Unseen term: grow the dictionary under the exclusive lock.  The
      // deque push_back leaves every previously handed-out posting
      // pointer valid.
      std::unique_lock<std::shared_mutex> lock(membership_mutex_);
      auto [it, inserted] = dictionary_.try_emplace(term, structures_.size());
      if (inserted) {
        ElemList single{doc_id};
        structures_.push_back(engine_.PrepareMutable(single, mutable_options_));
        ++changed;
        continue;
      }
      posting = &structures_[it->second];  // lost the race to another writer
    }
    // PreparedSet::Insert is internally synchronized; no index lock held.
    if (posting->Insert(doc_id)) ++changed;
  }
  return changed;
}

std::size_t InvertedIndex::EraseDocument(Elem doc_id,
                                         std::span<const std::string> terms) {
  if (!updatable_) {
    throw std::logic_error(
        "InvertedIndex: EraseDocument requires FinalizeUpdatable");
  }
  std::size_t changed = 0;
  for (const std::string& term : terms) {
    PreparedSet* posting = nullptr;
    {
      std::shared_lock<std::shared_mutex> lock(membership_mutex_);
      auto it = dictionary_.find(term);
      if (it != dictionary_.end()) posting = &structures_[it->second];
    }
    if (posting == nullptr) continue;  // unknown term: nothing to remove
    if (posting->Erase(doc_id)) ++changed;
  }
  return changed;
}

bool InvertedIndex::Resolve(std::span<const std::string> terms,
                            std::vector<const PreparedSet*>* sets) const {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  sets->reserve(terms.size());
  for (const std::string& term : terms) {
    auto it = dictionary_.find(term);
    if (it == dictionary_.end()) return false;  // unknown term
    sets->push_back(&structures_[it->second]);
  }
  return true;
}

ElemList InvertedIndex::Query(std::span<const std::string> terms,
                              QueryStats* stats) const {
  if (!finalized_) throw std::logic_error("InvertedIndex: not finalized");
  if (stats != nullptr) *stats = QueryStats{};
  if (terms.empty()) return {};
  std::vector<const PreparedSet*> sets;
  if (!Resolve(terms, &sets)) return {};
  fsi::Query query = engine_.Query(sets);
  ElemList out = query.Materialize();
  if (stats != nullptr) *stats = query.stats();
  return out;
}

std::size_t InvertedIndex::CountMatching(
    std::span<const std::string> terms) const {
  if (!finalized_) throw std::logic_error("InvertedIndex: not finalized");
  if (terms.empty()) return 0;
  std::vector<const PreparedSet*> sets;
  if (!Resolve(terms, &sets)) return 0;
  return engine_.Query(sets).Unordered().Count();
}

std::vector<Expr> InvertedIndex::ResolveLeaves(
    std::span<const std::string> terms) const {
  std::vector<Expr> leaves;
  leaves.reserve(terms.size());
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  for (const std::string& term : terms) {
    auto it = dictionary_.find(term);
    if (it == dictionary_.end()) continue;  // unknown term: matches nothing
    leaves.push_back(Expr::Set(structures_[it->second]));
  }
  return leaves;
}

ElemList InvertedIndex::QueryAny(std::span<const std::string> terms,
                                 QueryStats* stats) const {
  if (!finalized_) throw std::logic_error("InvertedIndex: not finalized");
  if (stats != nullptr) *stats = QueryStats{};
  std::vector<Expr> leaves = ResolveLeaves(terms);
  if (leaves.empty()) return {};
  fsi::Query query = engine_.Query(Expr::Or(std::move(leaves)));
  ElemList out = query.Materialize();
  if (stats != nullptr) *stats = query.stats();
  return out;
}

ElemList InvertedIndex::QueryAtLeast(std::span<const std::string> terms,
                                     std::size_t min_terms,
                                     QueryStats* stats) const {
  if (!finalized_) throw std::logic_error("InvertedIndex: not finalized");
  if (min_terms == 0) {
    throw std::invalid_argument("InvertedIndex::QueryAtLeast: min_terms == 0");
  }
  if (stats != nullptr) *stats = QueryStats{};
  std::vector<Expr> leaves = ResolveLeaves(terms);
  // Unknown terms contribute no matches, so a document can reach
  // `min_terms` only among the known leaves.
  if (leaves.size() < min_terms) return {};
  fsi::Query query = engine_.Query(Expr::AtLeast(min_terms, std::move(leaves)));
  ElemList out = query.Materialize();
  if (stats != nullptr) *stats = query.stats();
  return out;
}

ElemList InvertedIndex::QueryExcluding(std::span<const std::string> include,
                                       std::span<const std::string> exclude,
                                       QueryStats* stats) const {
  if (!finalized_) throw std::logic_error("InvertedIndex: not finalized");
  if (stats != nullptr) *stats = QueryStats{};
  if (include.empty()) return {};
  std::vector<const PreparedSet*> sets;
  if (!Resolve(include, &sets)) return {};  // unknown include term
  std::vector<Expr> conj;
  conj.reserve(sets.size());
  for (const PreparedSet* set : sets) conj.push_back(Expr::Set(*set));
  Expr expr = Expr::And(std::move(conj));
  std::vector<Expr> excluded = ResolveLeaves(exclude);
  if (!excluded.empty()) {
    expr = Expr::Diff(std::move(expr), Expr::Or(std::move(excluded)));
  }
  fsi::Query query = engine_.Query(expr);
  ElemList out = query.Materialize();
  if (stats != nullptr) *stats = query.stats();
  return out;
}

std::vector<std::size_t> InvertedIndex::ResolveBatch(
    TermQueries queries, std::vector<BatchQuery>* resolved) const {
  if (!finalized_) throw std::logic_error("InvertedIndex: not finalized");
  std::vector<std::size_t> origin;  // resolved slot -> query index
  resolved->reserve(queries.size());
  origin.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    // Empty and unknown-term queries short-circuit to an empty result
    // (as Query does) without occupying the runner.
    if (queries[i].empty()) continue;
    BatchQuery sets;
    if (Resolve(queries[i], &sets)) {
      resolved->push_back(std::move(sets));
      origin.push_back(i);
    }
  }
  return origin;
}

std::vector<ElemList> InvertedIndex::BatchMatch(TermQueries queries,
                                                BatchOptions options,
                                                BatchStats* stats) const {
  std::vector<BatchQuery> resolved;
  std::vector<std::size_t> origin = ResolveBatch(queries, &resolved);
  BatchRunner runner(engine_, options);
  std::vector<ElemList> partial = runner.Materialize(resolved);
  if (stats != nullptr) *stats = runner.stats();
  std::vector<ElemList> out(queries.size());
  for (std::size_t j = 0; j < partial.size(); ++j) {
    out[origin[j]] = std::move(partial[j]);
  }
  return out;
}

std::vector<std::size_t> InvertedIndex::BatchCount(TermQueries queries,
                                                   BatchOptions options,
                                                   BatchStats* stats) const {
  std::vector<BatchQuery> resolved;
  std::vector<std::size_t> origin = ResolveBatch(queries, &resolved);
  BatchRunner runner(engine_, options);
  std::vector<std::size_t> partial = runner.Count(resolved);
  if (stats != nullptr) *stats = runner.stats();
  std::vector<std::size_t> out(queries.size(), 0);
  for (std::size_t j = 0; j < partial.size(); ++j) {
    out[origin[j]] = partial[j];
  }
  return out;
}

std::size_t InvertedIndex::DocumentFrequency(std::string_view term) const {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  auto it = dictionary_.find(std::string(term));
  if (it == dictionary_.end()) return 0;
  // Post-finalize the prepared structure is authoritative (delta-aware on
  // an updatable index); before finalize only postings_ exists.
  if (finalized_) return structures_[it->second].size();
  return postings_[it->second].size();
}

std::size_t InvertedIndex::num_terms() const {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  return dictionary_.size();
}

std::size_t InvertedIndex::SizeInWords() const {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  std::size_t words = 0;
  for (const auto& s : structures_) words += s.SizeInWords();
  return words;
}

namespace {

// Fixed prefix of the term-table snapshot section; followed by term_count
// packed entries of {set_index:u32, name_len:u32, name bytes}.
struct IndexMetaRecord {
  std::uint64_t num_documents = 0;
  std::uint64_t last_doc_id = 0;
  std::uint32_t has_docs = 0;
  std::uint32_t updatable = 0;
  double compact_fill = 0.0;
  std::uint64_t compact_min = 0;
  std::uint32_t background_compaction = 0;
  std::uint32_t term_count = 0;
};
static_assert(sizeof(IndexMetaRecord) == 48);

template <typename T>
void AppendPod(std::vector<std::byte>* out, const T& value) {
  const std::size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &value, sizeof(T));
}

}  // namespace

void InvertedIndex::Save(const std::string& path) const {
  if (!finalized_) {
    throw std::logic_error("InvertedIndex::Save: index not finalized");
  }
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);

  std::vector<const PreparedSet*> sets;
  sets.reserve(structures_.size());
  for (const PreparedSet& s : structures_) sets.push_back(&s);

  // Deterministic term order: by structure slot (dictionary_ is an
  // unordered map).
  std::vector<std::pair<std::size_t, const std::string*>> terms;
  terms.reserve(dictionary_.size());
  for (const auto& [term, index] : dictionary_) {
    terms.emplace_back(index, &term);
  }
  std::sort(terms.begin(), terms.end());

  IndexMetaRecord meta;
  meta.num_documents = num_documents_;
  meta.last_doc_id = last_doc_id_;
  meta.has_docs = has_docs_ ? 1 : 0;
  meta.updatable = updatable_ ? 1 : 0;
  meta.compact_fill = mutable_options_.compact_fill;
  meta.compact_min = mutable_options_.compact_min;
  meta.background_compaction = mutable_options_.background_compaction ? 1 : 0;
  meta.term_count = static_cast<std::uint32_t>(terms.size());

  std::vector<std::byte> table;
  AppendPod(&table, meta);
  for (const auto& [index, term] : terms) {
    AppendPod(&table, static_cast<std::uint32_t>(index));
    AppendPod(&table, static_cast<std::uint32_t>(term->size()));
    const std::size_t at = table.size();
    table.resize(at + term->size());
    std::memcpy(table.data() + at, term->data(), term->size());
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw storage::SnapshotError(
        storage::SnapshotErrorCode::kIo,
        "snapshot: cannot open '" + path + "' for writing");
  }
  storage::SnapshotWriter writer(out);
  engine_.WriteSnapshotSections(writer, sets);
  writer.AddSection(storage::kSectionTermTable, table,
                    storage::kSectionFlagCritical);
  writer.Finish();
}

InvertedIndex InvertedIndex::Open(const std::string& path,
                                  SnapshotLoadOptions options,
                                  SnapshotInfo* info) {
  using storage::SnapshotError;
  using storage::SnapshotErrorCode;
  auto backing = std::make_shared<const storage::MappedFile>(
      path, /*prefault=*/options.verify_checksums);
  storage::SnapshotReader reader(
      backing->bytes(),
      storage::SnapshotReader::Options{options.verify_checksums});

  const auto table =
      reader.RequireSection(storage::kSectionTermTable, "term table");
  if (table.size() < sizeof(IndexMetaRecord)) {
    throw SnapshotError(SnapshotErrorCode::kCorrupt,
                        "snapshot: term table section too small");
  }
  IndexMetaRecord meta;
  std::memcpy(&meta, table.data(), sizeof(meta));
  if (meta.updatable != 0) {
    options.mutable_options.compact_fill = meta.compact_fill;
    options.mutable_options.compact_min = meta.compact_min;
    options.mutable_options.background_compaction =
        meta.background_compaction != 0;
  }

  LoadedSnapshot loaded =
      Engine::LoadSnapshotSections(reader, backing, options);
  if (info != nullptr) *info = loaded.info;
  // Prvalue return: constructed directly in the caller's storage
  // (guaranteed elision) — InvertedIndex itself is immovable.
  return InvertedIndex(std::move(loaded), table, options);
}

InvertedIndex::InvertedIndex(LoadedSnapshot&& loaded,
                             std::span<const std::byte> term_table,
                             SnapshotLoadOptions options)
    : engine_(std::move(loaded.engine)) {
  using storage::SnapshotError;
  using storage::SnapshotErrorCode;
  IndexMetaRecord meta;
  std::memcpy(&meta, term_table.data(), sizeof(meta));

  structures_.assign(loaded.sets.begin(), loaded.sets.end());
  num_documents_ = meta.num_documents;
  last_doc_id_ = static_cast<Elem>(meta.last_doc_id);
  has_docs_ = meta.has_docs != 0;
  updatable_ = meta.updatable != 0;
  mutable_options_ = options.mutable_options;
  finalized_ = true;
  // postings_ stays empty: post-finalize, structures_ is authoritative
  // everywhere (queries, DocumentFrequency, InsertDocument growth).

  std::size_t at = sizeof(meta);
  dictionary_.reserve(meta.term_count);
  for (std::uint32_t i = 0; i < meta.term_count; ++i) {
    std::uint32_t set_index = 0;
    std::uint32_t name_len = 0;
    if (term_table.size() - at < sizeof(set_index) + sizeof(name_len)) {
      throw SnapshotError(SnapshotErrorCode::kCorrupt,
                          "snapshot: term table truncated");
    }
    std::memcpy(&set_index, term_table.data() + at, sizeof(set_index));
    at += sizeof(set_index);
    std::memcpy(&name_len, term_table.data() + at, sizeof(name_len));
    at += sizeof(name_len);
    if (term_table.size() - at < name_len) {
      throw SnapshotError(SnapshotErrorCode::kCorrupt,
                          "snapshot: term table truncated");
    }
    if (set_index >= structures_.size()) {
      throw SnapshotError(SnapshotErrorCode::kCorrupt,
                          "snapshot: term references missing structure");
    }
    std::string term(
        reinterpret_cast<const char*>(term_table.data()) + at, name_len);
    at += name_len;
    if (!dictionary_.emplace(std::move(term), set_index).second) {
      throw SnapshotError(SnapshotErrorCode::kCorrupt,
                          "snapshot: duplicate term in term table");
    }
  }
}

}  // namespace fsi
