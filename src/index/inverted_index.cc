#include "index/inverted_index.h"

#include <mutex>
#include <stdexcept>

namespace fsi {

void InvertedIndex::AddDocument(Elem doc_id,
                                std::span<const std::string> terms) {
  if (finalized_) {
    throw std::logic_error("InvertedIndex: AddDocument after Finalize");
  }
  if (has_docs_ && doc_id <= last_doc_id_) {
    throw std::invalid_argument(
        "InvertedIndex: doc ids must be strictly increasing");
  }
  last_doc_id_ = doc_id;
  has_docs_ = true;
  ++num_documents_;
  for (const std::string& term : terms) {
    auto [it, inserted] = dictionary_.try_emplace(term, postings_.size());
    if (inserted) postings_.emplace_back();
    ElemList& list = postings_[it->second];
    if (list.empty() || list.back() != doc_id) list.push_back(doc_id);
  }
}

void InvertedIndex::Finalize() {
  if (finalized_) throw std::logic_error("InvertedIndex: double Finalize");
  for (const ElemList& list : postings_) {
    structures_.push_back(engine_.Prepare(list));
  }
  finalized_ = true;
}

void InvertedIndex::FinalizeUpdatable(MutableSetOptions options) {
  if (finalized_) throw std::logic_error("InvertedIndex: double Finalize");
  mutable_options_ = options;
  for (const ElemList& list : postings_) {
    structures_.push_back(engine_.PrepareMutable(list, options));
  }
  finalized_ = true;
  updatable_ = true;
}

std::size_t InvertedIndex::InsertDocument(Elem doc_id,
                                          std::span<const std::string> terms) {
  if (!updatable_) {
    throw std::logic_error(
        "InvertedIndex: InsertDocument requires FinalizeUpdatable");
  }
  std::size_t changed = 0;
  for (const std::string& term : terms) {
    PreparedSet* posting = nullptr;
    {
      std::shared_lock<std::shared_mutex> lock(membership_mutex_);
      auto it = dictionary_.find(term);
      if (it != dictionary_.end()) posting = &structures_[it->second];
    }
    if (posting == nullptr) {
      // Unseen term: grow the dictionary under the exclusive lock.  The
      // deque push_back leaves every previously handed-out posting
      // pointer valid.
      std::unique_lock<std::shared_mutex> lock(membership_mutex_);
      auto [it, inserted] = dictionary_.try_emplace(term, structures_.size());
      if (inserted) {
        ElemList single{doc_id};
        structures_.push_back(engine_.PrepareMutable(single, mutable_options_));
        ++changed;
        continue;
      }
      posting = &structures_[it->second];  // lost the race to another writer
    }
    // PreparedSet::Insert is internally synchronized; no index lock held.
    if (posting->Insert(doc_id)) ++changed;
  }
  return changed;
}

std::size_t InvertedIndex::EraseDocument(Elem doc_id,
                                         std::span<const std::string> terms) {
  if (!updatable_) {
    throw std::logic_error(
        "InvertedIndex: EraseDocument requires FinalizeUpdatable");
  }
  std::size_t changed = 0;
  for (const std::string& term : terms) {
    PreparedSet* posting = nullptr;
    {
      std::shared_lock<std::shared_mutex> lock(membership_mutex_);
      auto it = dictionary_.find(term);
      if (it != dictionary_.end()) posting = &structures_[it->second];
    }
    if (posting == nullptr) continue;  // unknown term: nothing to remove
    if (posting->Erase(doc_id)) ++changed;
  }
  return changed;
}

bool InvertedIndex::Resolve(std::span<const std::string> terms,
                            std::vector<const PreparedSet*>* sets) const {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  sets->reserve(terms.size());
  for (const std::string& term : terms) {
    auto it = dictionary_.find(term);
    if (it == dictionary_.end()) return false;  // unknown term
    sets->push_back(&structures_[it->second]);
  }
  return true;
}

ElemList InvertedIndex::Query(std::span<const std::string> terms,
                              QueryStats* stats) const {
  if (!finalized_) throw std::logic_error("InvertedIndex: not finalized");
  if (stats != nullptr) *stats = QueryStats{};
  if (terms.empty()) return {};
  std::vector<const PreparedSet*> sets;
  if (!Resolve(terms, &sets)) return {};
  fsi::Query query = engine_.Query(sets);
  ElemList out = query.Materialize();
  if (stats != nullptr) *stats = query.stats();
  return out;
}

std::size_t InvertedIndex::CountMatching(
    std::span<const std::string> terms) const {
  if (!finalized_) throw std::logic_error("InvertedIndex: not finalized");
  if (terms.empty()) return 0;
  std::vector<const PreparedSet*> sets;
  if (!Resolve(terms, &sets)) return 0;
  return engine_.Query(sets).Unordered().Count();
}

std::vector<std::size_t> InvertedIndex::ResolveBatch(
    TermQueries queries, std::vector<BatchQuery>* resolved) const {
  if (!finalized_) throw std::logic_error("InvertedIndex: not finalized");
  std::vector<std::size_t> origin;  // resolved slot -> query index
  resolved->reserve(queries.size());
  origin.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    // Empty and unknown-term queries short-circuit to an empty result
    // (as Query does) without occupying the runner.
    if (queries[i].empty()) continue;
    BatchQuery sets;
    if (Resolve(queries[i], &sets)) {
      resolved->push_back(std::move(sets));
      origin.push_back(i);
    }
  }
  return origin;
}

std::vector<ElemList> InvertedIndex::BatchMatch(TermQueries queries,
                                                BatchOptions options,
                                                BatchStats* stats) const {
  std::vector<BatchQuery> resolved;
  std::vector<std::size_t> origin = ResolveBatch(queries, &resolved);
  BatchRunner runner(engine_, options);
  std::vector<ElemList> partial = runner.Materialize(resolved);
  if (stats != nullptr) *stats = runner.stats();
  std::vector<ElemList> out(queries.size());
  for (std::size_t j = 0; j < partial.size(); ++j) {
    out[origin[j]] = std::move(partial[j]);
  }
  return out;
}

std::vector<std::size_t> InvertedIndex::BatchCount(TermQueries queries,
                                                   BatchOptions options,
                                                   BatchStats* stats) const {
  std::vector<BatchQuery> resolved;
  std::vector<std::size_t> origin = ResolveBatch(queries, &resolved);
  BatchRunner runner(engine_, options);
  std::vector<std::size_t> partial = runner.Count(resolved);
  if (stats != nullptr) *stats = runner.stats();
  std::vector<std::size_t> out(queries.size(), 0);
  for (std::size_t j = 0; j < partial.size(); ++j) {
    out[origin[j]] = partial[j];
  }
  return out;
}

std::size_t InvertedIndex::DocumentFrequency(std::string_view term) const {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  auto it = dictionary_.find(std::string(term));
  if (it == dictionary_.end()) return 0;
  // Post-finalize the prepared structure is authoritative (delta-aware on
  // an updatable index); before finalize only postings_ exists.
  if (finalized_) return structures_[it->second].size();
  return postings_[it->second].size();
}

std::size_t InvertedIndex::num_terms() const {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  return dictionary_.size();
}

std::size_t InvertedIndex::SizeInWords() const {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  std::size_t words = 0;
  for (const auto& s : structures_) words += s.SizeInWords();
  return words;
}

}  // namespace fsi
