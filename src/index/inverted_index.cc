#include "index/inverted_index.h"

#include <stdexcept>

namespace fsi {

void InvertedIndex::AddDocument(Elem doc_id,
                                std::span<const std::string> terms) {
  if (finalized_) {
    throw std::logic_error("InvertedIndex: AddDocument after Finalize");
  }
  if (has_docs_ && doc_id <= last_doc_id_) {
    throw std::invalid_argument(
        "InvertedIndex: doc ids must be strictly increasing");
  }
  last_doc_id_ = doc_id;
  has_docs_ = true;
  ++num_documents_;
  for (const std::string& term : terms) {
    auto [it, inserted] = dictionary_.try_emplace(term, postings_.size());
    if (inserted) postings_.emplace_back();
    ElemList& list = postings_[it->second];
    if (list.empty() || list.back() != doc_id) list.push_back(doc_id);
  }
}

void InvertedIndex::Finalize() {
  if (finalized_) throw std::logic_error("InvertedIndex: double Finalize");
  structures_.reserve(postings_.size());
  for (const ElemList& list : postings_) {
    structures_.push_back(algorithm_->Preprocess(list));
  }
  finalized_ = true;
}

ElemList InvertedIndex::Query(std::span<const std::string> terms) const {
  if (!finalized_) throw std::logic_error("InvertedIndex: not finalized");
  ElemList out;
  if (terms.empty()) return out;
  std::vector<const PreprocessedSet*> sets;
  sets.reserve(terms.size());
  for (const std::string& term : terms) {
    auto it = dictionary_.find(term);
    if (it == dictionary_.end()) return out;  // unknown term: empty result
    sets.push_back(structures_[it->second].get());
  }
  algorithm_->Intersect(sets, &out);
  return out;
}

std::size_t InvertedIndex::DocumentFrequency(std::string_view term) const {
  auto it = dictionary_.find(std::string(term));
  return it == dictionary_.end() ? 0 : postings_[it->second].size();
}

std::size_t InvertedIndex::SizeInWords() const {
  std::size_t words = 0;
  for (const auto& s : structures_) words += s->SizeInWords();
  return words;
}

}  // namespace fsi
