// The shard map: which shard owns which slice of the element universe.
//
// The serving layer (serve/sharded_engine.h) partitions the element
// universe into S shards so one query can fan out over S per-shard
// engines.  Because intersection distributes over a partition of the
// universe — (A ∩ B) = ⋃ₛ (Aₛ ∩ Bₛ) when every Aₛ/Bₛ holds only the
// elements of shard s — the partition can be *any* function of the
// element value.  This one is chosen so the scatter-gather layer gets
// two properties for free:
//
//  * O(1) mask+shift lookup: shard(e) = min(e >> shift, S - 1).  The
//    shift is fixed at construction from the universe bound, so routing
//    an element (or splitting a whole posting list) is branch-free
//    arithmetic, never a search (compare OSRM's packed
//    multi_level_partition, which motivates the same trick).
//  * Contiguous ranges in document-id order: shard s owns
//    [s << shift, (s+1) << shift).  Per-shard results are therefore
//    *already globally sorted* relative to each other — the gather step
//    is pure concatenation in shard order, and the sharded result is
//    bitwise-identical to a single engine's ordered result.
//
// Elements at or beyond the declared universe bound clamp into the last
// shard (the min above), which keeps the map total and monotone: a
// too-small bound degrades balance, never correctness.
//
// See docs/SERVING.md for how shard count interacts with thread count
// and deadline budgets.

#ifndef FSI_SERVE_SHARD_MAP_H_
#define FSI_SERVE_SHARD_MAP_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/algorithm.h"

namespace fsi {

/// Partitions the element universe [0, universe_bound) into `num_shards`
/// contiguous, equal-width ranges with mask+shift routing.  Immutable
/// after construction; trivially copyable and thread-safe.
class ShardMap {
 public:
  /// `num_shards` must be a power of two in [1, 2^20] (the routing math
  /// is a shift, and the serving layer scatters one task per shard —
  /// more shards than that is a configuration error, not a deployment).
  /// `universe_bound` is exclusive; 0 means the full 32-bit id space.
  explicit ShardMap(std::size_t num_shards, Elem universe_bound = 0)
      : num_shards_(num_shards) {
    if (num_shards == 0 || !std::has_single_bit(num_shards) ||
        num_shards > (1u << 20)) {
      throw std::invalid_argument(
          "ShardMap: num_shards must be a power of two in [1, 2^20]");
    }
    const int shard_bits = std::countr_zero(num_shards);
    // Bits needed to address the universe: bound 0 -> the full 32.
    const int universe_bits =
        universe_bound == 0
            ? 32
            : std::bit_width(static_cast<std::uint32_t>(universe_bound - 1));
    shift_ = universe_bits > shard_bits
                 ? static_cast<unsigned>(universe_bits - shard_bits)
                 : 0u;
  }

  std::size_t num_shards() const { return num_shards_; }
  unsigned shift() const { return shift_; }

  /// The shard owning element `e` — one shift, one clamp.
  std::size_t shard_of(Elem e) const {
    const std::size_t s = static_cast<std::size_t>(e >> shift_);
    return s < num_shards_ ? s : num_shards_ - 1;
  }

  /// First element routed to shard `s`.
  Elem shard_begin(std::size_t s) const {
    return static_cast<Elem>(static_cast<std::uint64_t>(s) << shift_);
  }

  /// Splits one sorted list into per-shard slices (index-aligned with
  /// shard ids; shards with no elements get empty lists).  Input order
  /// is preserved, so each slice is itself sorted and duplicate-free.
  std::vector<ElemList> Split(std::span<const Elem> sorted) const {
    std::vector<ElemList> slices(num_shards_);
    std::size_t begin = 0;
    for (std::size_t s = 0; s + 1 < num_shards_ && begin < sorted.size();
         ++s) {
      // The slice boundary: first element belonging to a later shard.
      std::size_t end = begin;
      while (end < sorted.size() && shard_of(sorted[end]) == s) ++end;
      if (end > begin) {
        slices[s].assign(sorted.begin() + static_cast<std::ptrdiff_t>(begin),
                         sorted.begin() + static_cast<std::ptrdiff_t>(end));
      }
      begin = end;
    }
    if (begin < sorted.size()) {
      // Everything left belongs to the last non-empty shard encountered
      // above or beyond — which, for sorted input, is exactly the shard
      // of the first remaining element.
      const std::size_t s = shard_of(sorted[begin]);
      slices[s].assign(sorted.begin() + static_cast<std::ptrdiff_t>(begin),
                       sorted.end());
    }
    return slices;
  }

 private:
  std::size_t num_shards_;
  unsigned shift_;
};

}  // namespace fsi

#endif  // FSI_SERVE_SHARD_MAP_H_
