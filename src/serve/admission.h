// Admission control for the serving layer: a bounded in-flight gate.
//
// A serving tier protects its tail latency by refusing work it cannot
// finish in time: once `max_in_flight` queries are being scattered or
// gathered, further arrivals are *rejected* immediately (a typed
// ServeStatus::kRejected, serve/sharded_engine.h) instead of queueing
// behind work that would push every later query past its deadline.
// Rejection is cheap for the caller to retry against a replica; a
// deadline miss after seconds of queueing is not.
//
// The gate is a single atomic counter with compare-exchange admission —
// no mutex, no queue — plus monotone admitted/rejected counters for SLO
// accounting.  RAII tickets make release exception-safe.

#ifndef FSI_SERVE_ADMISSION_H_
#define FSI_SERVE_ADMISSION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace fsi {

/// Bounded-in-flight admission gate.  All members are safe to call
/// concurrently from any number of threads.
class AdmissionController {
 public:
  /// `max_in_flight` == 0 admits nothing (useful for drain/shutdown
  /// states); callers wanting "unbounded" pass SIZE_MAX.
  explicit AdmissionController(std::size_t max_in_flight)
      : max_in_flight_(max_in_flight) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Attempts to admit one query: true (and one slot held) when the
  /// in-flight count was below the bound, false (and `rejected()`
  /// bumped) when the gate is full.
  bool TryAdmit() {
    std::size_t current = in_flight_.load(std::memory_order_relaxed);
    while (current < max_in_flight_) {
      if (in_flight_.compare_exchange_weak(current, current + 1,
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed)) {
        admitted_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Returns one slot taken by a successful TryAdmit().
  void Release() { in_flight_.fetch_sub(1, std::memory_order_release); }

  std::size_t max_in_flight() const { return max_in_flight_; }
  std::size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  std::uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t max_in_flight_;
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

/// RAII slot holder: releases the admission slot on destruction.  Empty
/// (rejected) tickets release nothing.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  explicit AdmissionTicket(AdmissionController* controller)
      : controller_(controller) {}
  AdmissionTicket(AdmissionTicket&& other) noexcept
      : controller_(std::exchange(other.controller_, nullptr)) {}
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept {
    if (this != &other) {
      if (controller_ != nullptr) controller_->Release();
      controller_ = std::exchange(other.controller_, nullptr);
    }
    return *this;
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;
  ~AdmissionTicket() {
    if (controller_ != nullptr) controller_->Release();
  }

  bool admitted() const { return controller_ != nullptr; }

 private:
  AdmissionController* controller_ = nullptr;
};

}  // namespace fsi

#endif  // FSI_SERVE_ADMISSION_H_
