#include "serve/sharded_engine.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <fstream>
#include <mutex>
#include <sstream>
#include <utility>

#include "storage/layout.h"
#include "util/stats.h"
#include "util/timer.h"

namespace fsi {

namespace {

using Clock = std::chrono::steady_clock;

constexpr char kManifestMagic[] = "fsi-sharded-manifest";
constexpr int kManifestVersion = 1;

std::string ShardPath(const std::string& path, std::size_t shard) {
  return path + ".shard" + std::to_string(shard);
}

double Micros(const Timer& timer) {
  return static_cast<double>(timer.ElapsedNanos()) * 1e-3;
}

}  // namespace

std::string_view ToString(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kPartial:
      return "partial";
    case ServeStatus::kExpired:
      return "expired";
    case ServeStatus::kRejected:
      return "rejected";
  }
  return "unknown";
}

/// The shared state of one scattered query.  Owned by shared_ptr: the
/// gather may abandon it at the deadline while shard tasks are still
/// queued, so the tasks (which each hold a reference) must outlive the
/// Serve call that spawned them.  Everything below `mutex` is guarded
/// by it; the per-shard input handles are written once before scatter
/// and read-only afterwards.
struct ShardedEngine::QueryState {
  /// Per-shard copies of the input handles (shared ownership), so a
  /// late task never touches caller-owned ShardedSet objects after a
  /// partial gather returned.  [shard][set].
  std::vector<std::vector<PreparedSet>> inputs;
  /// Expression queries: the per-shard projected trees (one per shard;
  /// each Expr holds shared ownership of its leaves).  Non-empty exactly
  /// when the query is an expression.
  std::vector<Expr> exprs;

  std::mutex mutex;
  std::condition_variable cv;
  std::size_t remaining = 0;
  /// Set by the gather once it stops listening (complete or deadline):
  /// tasks that observe it skip their work entirely.
  bool finalized = false;
  std::exception_ptr error;

  struct Slot {
    ElemList elems;
    QueryStats stats;
    bool computed = false;
  };
  std::vector<Slot> slots;
};

ShardedEngine::ShardedEngine(ShardedEngineOptions options)
    : options_(std::move(options)),
      map_(options_.num_shards, options_.universe_bound),
      tag_(std::make_shared<int>(0)),
      pool_(options_.num_threads),
      admission_(options_.max_in_flight) {
  // Even split of the space budget; a tiny non-zero total still rounds
  // up to 1 per shard so it means "compress aggressively", not "off".
  std::size_t per_shard_budget =
      options_.space_budget_bytes / map_.num_shards();
  if (options_.space_budget_bytes != 0 && per_shard_budget == 0) {
    per_shard_budget = 1;
  }
  engines_.reserve(map_.num_shards());
  for (std::size_t s = 0; s < map_.num_shards(); ++s) {
    engines_.emplace_back(
        options_.spec,
        EngineOptions{.seed = options_.seed,
                      .validation = options_.validation,
                      .space_budget_bytes = per_shard_budget,
                      .min_compress_size = options_.min_compress_size});
  }
}

ShardedEngine::ShardedEngine(ShardedEngineOptions options,
                             std::vector<Engine> engines,
                             std::shared_ptr<const int> tag)
    : options_(std::move(options)),
      map_(options_.num_shards, options_.universe_bound),
      engines_(std::move(engines)),
      tag_(std::move(tag)),
      pool_(options_.num_threads),
      admission_(options_.max_in_flight) {}

ShardedSet ShardedEngine::Prepare(std::span<const Elem> set) const {
  // Split assumes sorted input, so the whole-set check runs up front
  // (per-shard Prepare re-checks each slice under the same policy).
  if (ValidationEnabled(options_.validation)) {
    CheckSortedUnique(set, "ShardedEngine::Prepare");
  }
  std::vector<ElemList> slices = map_.Split(set);
  std::vector<PreparedSet> shards;
  shards.reserve(slices.size());
  for (std::size_t s = 0; s < slices.size(); ++s) {
    shards.push_back(engines_[s].Prepare(slices[s]));
  }
  return ShardedSet(tag_, std::move(shards), set.size());
}

void ShardedEngine::CheckQuery(std::span<const ShardedSet* const> sets) const {
  for (const ShardedSet* set : sets) {
    if (set == nullptr || set->empty_handle()) {
      throw std::invalid_argument(
          "ShardedEngine::Serve: empty ShardedSet handle");
    }
    if (set->tag_ != tag_) {
      throw std::invalid_argument(
          "ShardedEngine::Serve: set was prepared by a different "
          "ShardedEngine");
    }
  }
  const std::size_t max_arity = engines_.front().max_query_sets();
  if (sets.size() > max_arity) {
    throw std::invalid_argument(
        "ShardedEngine::Serve: query has " + std::to_string(sets.size()) +
        " sets but the per-shard algorithm supports at most " +
        std::to_string(max_arity));
  }
}

// --- ShardedExpr -----------------------------------------------------------

ShardedExpr ShardedExpr::Set(const ShardedSet& set) {
  if (set.empty_handle()) {
    throw std::invalid_argument("ShardedExpr::Set: empty ShardedSet handle");
  }
  Node node;
  node.kind = ExprKind::kSet;
  node.leaf = set;
  return ShardedExpr(std::make_shared<const Node>(std::move(node)));
}

namespace {
void CheckShardedChildren(const char* builder,
                          const std::vector<ShardedExpr>& children) {
  if (children.empty()) {
    throw std::invalid_argument(std::string("ShardedExpr::") + builder +
                                ": at least one child required");
  }
  for (const ShardedExpr& c : children) {
    if (c.empty_handle()) {
      throw std::invalid_argument(std::string("ShardedExpr::") + builder +
                                  ": empty handle among children");
    }
  }
}
}  // namespace

ShardedExpr ShardedExpr::And(std::vector<ShardedExpr> children) {
  CheckShardedChildren("And", children);
  Node node;
  node.kind = ExprKind::kAnd;
  node.children = std::move(children);
  return ShardedExpr(std::make_shared<const Node>(std::move(node)));
}

ShardedExpr ShardedExpr::Or(std::vector<ShardedExpr> children) {
  CheckShardedChildren("Or", children);
  Node node;
  node.kind = ExprKind::kOr;
  node.children = std::move(children);
  return ShardedExpr(std::make_shared<const Node>(std::move(node)));
}

ShardedExpr ShardedExpr::Diff(ShardedExpr include, ShardedExpr exclude) {
  if (include.empty_handle() || exclude.empty_handle()) {
    throw std::invalid_argument("ShardedExpr::Diff: empty handle");
  }
  Node node;
  node.kind = ExprKind::kDiff;
  node.children.push_back(std::move(include));
  node.children.push_back(std::move(exclude));
  return ShardedExpr(std::make_shared<const Node>(std::move(node)));
}

ShardedExpr ShardedExpr::AtLeast(std::size_t threshold,
                                 std::vector<ShardedExpr> children) {
  if (threshold == 0) {
    throw std::invalid_argument("ShardedExpr::AtLeast: threshold must be >= 1");
  }
  CheckShardedChildren("AtLeast", children);
  Node node;
  node.kind = ExprKind::kAtLeast;
  node.threshold = threshold;
  node.children = std::move(children);
  return ShardedExpr(std::make_shared<const Node>(std::move(node)));
}

ShardedExpr ShardedExpr::None() {
  return ShardedExpr(std::make_shared<const Node>());
}

std::size_t ShardedExpr::num_leaves() const {
  if (node_ == nullptr) return 0;
  if (node_->kind == ExprKind::kSet) return 1;
  std::size_t total = 0;
  for (const ShardedExpr& c : node_->children) total += c.num_leaves();
  return total;
}

Expr ShardedExpr::Project(std::size_t s) const {
  switch (node_->kind) {
    case ExprKind::kSet:
      return Expr::Set(node_->leaf.shard(s));
    case ExprKind::kNone:
      return Expr::None();
    case ExprKind::kDiff:
      return Expr::Diff(node_->children[0].Project(s),
                        node_->children[1].Project(s));
    default: {
      std::vector<Expr> children;
      children.reserve(node_->children.size());
      for (const ShardedExpr& c : node_->children) {
        children.push_back(c.Project(s));
      }
      if (node_->kind == ExprKind::kAnd) return Expr::And(std::move(children));
      if (node_->kind == ExprKind::kOr) return Expr::Or(std::move(children));
      return Expr::AtLeast(node_->threshold, std::move(children));
    }
  }
}

void ShardedEngine::CheckExpr(const ShardedExpr& expr) const {
  const ShardedExpr::Node* node = expr.node_.get();
  if (node->kind == ExprKind::kSet) {
    if (node->leaf.empty_handle() || node->leaf.tag_ != tag_) {
      throw std::invalid_argument(
          "ShardedEngine::Serve: ShardedExpr leaf was prepared by a "
          "different ShardedEngine");
    }
    if (node->leaf.num_shards() != map_.num_shards()) {
      throw std::invalid_argument(
          "ShardedEngine::Serve: ShardedExpr leaf has a mismatched shard "
          "count");
    }
  }
  for (const ShardedExpr& c : node->children) CheckExpr(c);
}

ServeResult ShardedEngine::Serve(std::span<const ShardedSet* const> sets,
                                 ServeOptions options) const {
  Timer wall;
  CheckQuery(sets);
  const std::size_t num_shards = map_.num_shards();

  if (sets.empty()) {
    // An empty query intersects nothing: complete, empty result, no
    // scatter — mirrors Engine::Query({}).
    ServeResult out;
    out.shards_answered = num_shards;
    out.wall_micros = Micros(wall);
    return out;
  }

  auto state = std::make_shared<QueryState>();
  state->inputs.resize(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    state->inputs[s].reserve(sets.size());
    for (const ShardedSet* set : sets) {
      state->inputs[s].push_back(set->shards_[s]);
    }
  }
  return ServeScattered(std::move(state), options, wall);
}

ServeResult ShardedEngine::Serve(const ShardedExpr& expr,
                                 ServeOptions options) const {
  Timer wall;
  if (expr.empty_handle()) {
    throw std::invalid_argument(
        "ShardedEngine::Serve: empty ShardedExpr handle");
  }
  CheckExpr(expr);
  auto state = std::make_shared<QueryState>();
  const std::size_t num_shards = map_.num_shards();
  state->exprs.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    state->exprs.push_back(expr.Project(s));
  }
  return ServeScattered(std::move(state), options, wall);
}

ServeResult ShardedEngine::ServeScattered(std::shared_ptr<QueryState> state,
                                          ServeOptions options,
                                          Timer& wall) const {
  const std::size_t num_shards = map_.num_shards();
  ServeResult out;

  AdmissionTicket ticket(admission_.TryAdmit() ? &admission_ : nullptr);
  if (!ticket.admitted()) {
    out.status = ServeStatus::kRejected;
    out.shards_missed = num_shards;
    out.wall_micros = Micros(wall);
    return out;
  }

  // Resolve the deadline: per-query value, else the engine default.
  std::optional<Clock::time_point> deadline;
  const std::chrono::microseconds relative =
      options.deadline.value_or(options_.default_deadline);
  const bool has_deadline =
      options.deadline.has_value() || options_.default_deadline.count() > 0;
  if (has_deadline) {
    if (relative.count() <= 0) {
      // Zero or negative budget: expired at admission, nothing scattered.
      deadline_misses_.fetch_add(1, std::memory_order_relaxed);
      out.status = ServeStatus::kExpired;
      out.shards_missed = num_shards;
      out.wall_micros = Micros(wall);
      return out;
    }
    deadline = Clock::now() + relative;
  }

  state->slots.resize(num_shards);
  state->remaining = num_shards;

  auto run_shard = [this, state, options, deadline](std::size_t s) {
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      if (state->finalized) {
        // The gather already returned (deadline) — don't burn pool time
        // computing a result nobody will read.
        --state->remaining;
        return;
      }
    }
    QueryState::Slot slot;
    try {
      if (!deadline || Clock::now() < *deadline) {
        if (!state->exprs.empty()) {
          // Expression query: evaluate the shard's projected tree.  No
          // empty-operand shortcut here — an empty slice only empties
          // conjunctive contexts, and the per-engine optimizer already
          // constant-folds those.
          fsi::Query query = engines_[s].Query(state->exprs[s]);
          if (!options.ordered || options.count_only) query.Unordered();
          query.Limit(options.limit);
          if (options.count_only) {
            query.CountOnly();
            slot.stats = query.Execute();
          } else {
            slot.stats = query.ExecuteInto(&slot.elems);
          }
          slot.computed = true;
        } else {
          const std::vector<PreparedSet>& inputs = state->inputs[s];
          bool any_empty = false;
          for (const PreparedSet& input : inputs) {
            if (input.size() == 0) any_empty = true;
          }
          if (any_empty) {
            // A shard where any operand is empty intersects to empty —
            // answered, no engine call.
            slot.stats.num_sets = inputs.size();
            slot.computed = true;
          } else {
            std::vector<const PreparedSet*> ptrs;
            ptrs.reserve(inputs.size());
            for (const PreparedSet& input : inputs) ptrs.push_back(&input);
            fsi::Query query = engines_[s].Query(
                std::span<const PreparedSet* const>(ptrs.data(), ptrs.size()));
            if (!options.ordered || options.count_only) query.Unordered();
            query.Limit(options.limit);
            if (options.count_only) {
              query.CountOnly();
              slot.stats = query.Execute();
            } else {
              slot.stats = query.ExecuteInto(&slot.elems);
            }
            slot.computed = true;
          }
        }
      }
      // else: the deadline fired before this task started — report the
      // shard as missed (computing anyway could not make the gather).
    } catch (...) {
      std::lock_guard<std::mutex> lock(state->mutex);
      if (!state->error) state->error = std::current_exception();
      slot.computed = false;
    }
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      if (slot.computed) state->slots[s] = std::move(slot);
      --state->remaining;
    }
    state->cv.notify_all();
  };

  // Scatter.  If a Submit itself throws (allocation failure), never
  // unwind past tasks already in flight: balance `remaining` for the
  // unsubmitted shards, drain, rethrow.
  std::size_t submitted = 0;
  try {
    for (; submitted < num_shards; ++submitted) {
      pool_.Submit([run_shard, submitted] { run_shard(submitted); });
    }
  } catch (...) {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->finalized = true;
    state->remaining -= num_shards - submitted;
    state->cv.wait(lock, [&] { return state->remaining == 0; });
    throw;
  }

  // Gather: all shards, or as many as the deadline allows.
  std::unique_lock<std::mutex> lock(state->mutex);
  if (deadline) {
    state->cv.wait_until(lock, *deadline,
                         [&] { return state->remaining == 0; });
  } else {
    state->cv.wait(lock, [&] { return state->remaining == 0; });
  }
  state->finalized = true;
  if (state->error) std::rethrow_exception(state->error);

  std::size_t count_sum = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    QueryState::Slot& slot = state->slots[s];
    if (!slot.computed) {
      ++out.shards_missed;
      continue;
    }
    ++out.shards_answered;
    count_sum += slot.stats.result_size;
    out.elements_scanned += slot.stats.elements_scanned;
    out.predicted_micros += slot.stats.predicted_micros;
    if (!options.count_only && !slot.elems.empty()) {
      // Shards own contiguous id ranges, so appending in shard order
      // keeps the gathered result globally sorted (ordered mode).
      out.elems.insert(out.elems.end(), slot.elems.begin(), slot.elems.end());
    }
  }
  lock.unlock();

  if (!options.count_only && out.elems.size() > options.limit) {
    out.elems.resize(options.limit);
  }
  out.result_size = options.count_only ? std::min(count_sum, options.limit)
                                       : out.elems.size();
  if (out.shards_missed > 0) {
    out.status = ServeStatus::kPartial;
    deadline_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  served_.fetch_add(1, std::memory_order_relaxed);
  out.wall_micros = Micros(wall);
  return out;
}

std::vector<ServeResult> ShardedEngine::ServeBatch(
    std::span<const ShardedQuery> queries, ServeOptions options) {
  batch_stats_ = BatchStats{};
  batch_stats_.num_queries = queries.size();
  batch_stats_.num_threads = pool_.num_threads();

  std::vector<ServeResult> results;
  results.reserve(queries.size());
  SampleStats latency;
  Timer batch_timer;
  for (const ShardedQuery& query : queries) {
    ServeResult result = Serve(
        std::span<const ShardedSet* const>(query.data(), query.size()),
        options);
    switch (result.status) {
      case ServeStatus::kRejected:
        ++batch_stats_.rejected;
        break;
      case ServeStatus::kExpired:
      case ServeStatus::kPartial:
        ++batch_stats_.deadline_misses;
        break;
      case ServeStatus::kOk:
        break;
    }
    if (result.status != ServeStatus::kRejected) {
      latency.Add(result.wall_micros);
      batch_stats_.elements_scanned += result.elements_scanned;
      batch_stats_.predicted_micros += result.predicted_micros;
      batch_stats_.total_results += result.result_size;
    }
    results.push_back(std::move(result));
  }
  batch_stats_.wall_ms = batch_timer.ElapsedMillis();
  batch_stats_.p50_micros = latency.Percentile(0.50);
  batch_stats_.p95_micros = latency.Percentile(0.95);
  batch_stats_.p99_micros = latency.Percentile(0.99);
  batch_stats_.max_micros = latency.Max();
  if (batch_stats_.wall_ms > 0.0) {
    batch_stats_.queries_per_second =
        static_cast<double>(queries.size()) / (batch_stats_.wall_ms * 1e-3);
  }
  return results;
}

ServeCounters ShardedEngine::counters() const {
  ServeCounters counters;
  counters.admitted = admission_.admitted();
  counters.rejected = admission_.rejected();
  counters.deadline_misses =
      deadline_misses_.load(std::memory_order_relaxed);
  counters.served = served_.load(std::memory_order_relaxed);
  counters.in_flight = admission_.in_flight();
  return counters;
}

void ShardedEngine::SaveSnapshot(
    const std::string& path,
    std::span<const ShardedSet* const> sets) const {
  for (const ShardedSet* set : sets) {
    if (set == nullptr || set->empty_handle() || set->tag_ != tag_) {
      throw std::invalid_argument(
          "ShardedEngine::SaveSnapshot: sets must be non-empty handles "
          "prepared by this engine");
    }
  }
  // One independent engine image per shard...
  for (std::size_t s = 0; s < map_.num_shards(); ++s) {
    std::vector<PreparedSet> shard_sets;
    shard_sets.reserve(sets.size());
    for (const ShardedSet* set : sets) shard_sets.push_back(set->shards_[s]);
    engines_[s].SaveSnapshot(ShardPath(path, s),
                             std::span<const PreparedSet>(shard_sets));
  }
  // ... and the manifest last, so a crashed save never leaves a
  // manifest pointing at missing shard images.
  std::ofstream manifest(path, std::ios::trunc);
  manifest << kManifestMagic << ' ' << kManifestVersion << '\n'
           << "num_shards " << map_.num_shards() << '\n'
           << "universe_bound " << options_.universe_bound << '\n'
           << "num_sets " << sets.size() << '\n';
  manifest.flush();
  if (!manifest) {
    throw storage::SnapshotError(storage::SnapshotErrorCode::kIo,
                                 "ShardedEngine::SaveSnapshot: cannot write "
                                 "manifest " + path);
  }
}

LoadedShardedSnapshot ShardedEngine::LoadSnapshot(const std::string& path,
                                                  LoadOptions options) {
  using storage::SnapshotError;
  using storage::SnapshotErrorCode;

  std::ifstream manifest(path);
  if (!manifest) {
    throw SnapshotError(SnapshotErrorCode::kIo,
                        "ShardedEngine::LoadSnapshot: cannot open manifest " +
                            path);
  }
  std::string magic;
  int version = 0;
  manifest >> magic >> version;
  if (!manifest || magic != kManifestMagic) {
    throw SnapshotError(SnapshotErrorCode::kBadMagic,
                        path + " is not a sharded-snapshot manifest");
  }
  if (version != kManifestVersion) {
    throw SnapshotError(SnapshotErrorCode::kBadVersion,
                        path + ": manifest version " +
                            std::to_string(version) + " is unsupported");
  }
  std::size_t num_shards = 0;
  unsigned long long universe_bound = 0;
  std::size_t num_sets = 0;
  std::string key;
  if (!(manifest >> key >> num_shards) || key != "num_shards" ||
      !(manifest >> key >> universe_bound) || key != "universe_bound" ||
      !(manifest >> key >> num_sets) || key != "num_sets") {
    throw SnapshotError(SnapshotErrorCode::kCorrupt,
                        path + ": malformed sharded-snapshot manifest");
  }

  std::vector<Engine> engines;
  engines.reserve(num_shards);
  std::vector<std::vector<PreparedSet>> per_shard_sets;
  per_shard_sets.reserve(num_shards);
  std::vector<SnapshotInfo> infos;
  infos.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    LoadedSnapshot loaded =
        Engine::LoadSnapshot(ShardPath(path, s), options.snapshot);
    if (loaded.sets.size() != num_sets) {
      throw SnapshotError(
          SnapshotErrorCode::kCorrupt,
          ShardPath(path, s) + ": expected " + std::to_string(num_sets) +
              " sets per the manifest, found " +
              std::to_string(loaded.sets.size()));
    }
    engines.push_back(std::move(loaded.engine));
    per_shard_sets.push_back(std::move(loaded.sets));
    infos.push_back(std::move(loaded.info));
  }

  ShardedEngineOptions engine_options;
  engine_options.num_shards = num_shards;
  engine_options.universe_bound = static_cast<Elem>(universe_bound);
  if (!engines.empty()) {
    engine_options.spec = engines.front().spec();
    engine_options.seed = engines.front().seed();
  }
  engine_options.validation = options.snapshot.validation;
  engine_options.num_threads = options.num_threads;
  engine_options.max_in_flight = options.max_in_flight;
  engine_options.default_deadline = options.default_deadline;

  auto tag = std::make_shared<const int>(0);
  std::vector<ShardedSet> sets;
  sets.reserve(num_sets);
  for (std::size_t j = 0; j < num_sets; ++j) {
    std::vector<PreparedSet> shards;
    shards.reserve(num_shards);
    std::size_t total = 0;
    for (std::size_t s = 0; s < num_shards; ++s) {
      total += per_shard_sets[s][j].size();
      shards.push_back(std::move(per_shard_sets[s][j]));
    }
    sets.push_back(ShardedSet(tag, std::move(shards), total));
  }

  return LoadedShardedSnapshot{
      ShardedEngine(std::move(engine_options), std::move(engines), tag),
      std::move(sets), std::move(infos)};
}

}  // namespace fsi
