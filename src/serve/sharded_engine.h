// Sharded scatter-gather serving: one query, S engines, a deadline.
//
// A single fsi::Engine answers one query on one thread.  That is the
// right shape for a batch job; a serving tier with latency SLOs wants
// the opposite trade: spend *more* total work per query to cut its
// wall-clock latency, bound how much work is in flight, and degrade
// gracefully when a deadline fires anyway.  ShardedEngine is that tier:
//
//   fsi::ShardedEngine engine({.num_shards = 8,
//                              .universe_bound = corpus_size});
//   fsi::ShardedSet a = engine.Prepare(posting_a);   // split + prepared
//   fsi::ShardedSet b = engine.Prepare(posting_b);   //   once per shard
//
//   fsi::ServeResult r = engine.Serve({&a, &b}, {.deadline = 2ms});
//   switch (r.status) { ... }          // kOk / kPartial / kExpired / kRejected
//
// The element universe is partitioned into S contiguous ranges by a
// mask+shift ShardMap (serve/shard_map.h); each shard runs a private
// fsi::Engine (its own planner, its own per-shard plans), and a query
// scatters one task per shard onto a shared ThreadPool, then gathers:
// because shards are contiguous ranges, the gather is concatenation in
// shard order and the result is bitwise-identical to a single Engine
// over the unsharded corpus.
//
// The serving semantics, in the order a query meets them:
//
//  1. **Admission** (serve/admission.h): at most `max_in_flight` queries
//     may be between admission and gather completion.  Beyond that,
//     Serve returns ServeStatus::kRejected immediately — typed back-
//     pressure the caller can retry against a replica, instead of a
//     queue that converts overload into universal deadline misses.
//  2. **Deadline at admission**: a query whose deadline is already
//     expired (<= 0, or set in the past) returns kExpired without
//     scattering any work.
//  3. **Deadline mid-gather**: the gather waits for all S shards *until
//     the deadline*.  Shards that answered in time are included; the
//     rest are abandoned (their tasks self-cancel when they observe the
//     finalized flag) and the result carries status kPartial with
//     `shards_missed` > 0 — a smaller-but-valid result set, never a
//     blocked caller.  See docs/SERVING.md, "The partial-result
//     contract".
//
// Serve() is safe to call concurrently from any number of front-end
// threads (admission, counters and the scatter pool are all internally
// synchronized); ServeBatch() mirrors BatchRunner's single-driver
// convention and fills a BatchStats with p50/p95/p99 latency and the
// deadline-miss/rejection counts.  Do not call Serve from inside a task
// running on this engine's own pool (the gather would deadlock the
// pool on itself — same restriction as ThreadPool itself).

#ifndef FSI_SERVE_SHARDED_ENGINE_H_
#define FSI_SERVE_SHARDED_ENGINE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/batch_runner.h"
#include "api/engine.h"
#include "api/expr.h"
#include "api/thread_pool.h"
#include "serve/admission.h"
#include "serve/shard_map.h"
#include "util/timer.h"

namespace fsi {

/// Construction options for ShardedEngine.
struct ShardedEngineOptions {
  /// Shards (per-shard engines); a power of two.  1 is a valid
  /// deployment: admission + deadlines over a single engine.
  std::size_t num_shards = 8;
  /// Exclusive upper bound of the element universe (document-id space).
  /// 0 means the full 32-bit space — fine for correctness, but shard
  /// balance needs the real bound (docs/SERVING.md, "Tuning").
  Elem universe_bound = 0;
  /// Registry spec of every per-shard engine ("Planner" = cost-model
  /// planner per shard, each calibrated/planning over its own slice).
  std::string spec = "Planner";
  std::uint64_t seed = kDefaultAlgorithmSeed;
  ValidationPolicy validation = ValidationPolicy::kDefault;
  /// Scatter-pool workers; 0 means ThreadPool::DefaultConcurrency().
  std::size_t num_threads = 0;
  /// Admission bound: queries in flight beyond this are rejected.
  std::size_t max_in_flight = 1024;
  /// Deadline applied when ServeOptions carries none; <= 0 means no
  /// default deadline.
  std::chrono::microseconds default_deadline{0};
  /// Total space budget across all shards, split evenly into each
  /// per-shard engine's EngineOptions::space_budget_bytes (planner specs
  /// only — the per-shard Engine constructor throws otherwise).  0 means
  /// unlimited.  Results stay bitwise-identical; only the representation
  /// (and decode cost) of budget-evicted sets changes.
  std::size_t space_budget_bytes = 0;
  /// Per-shard EngineOptions::min_compress_size passthrough.  Note the
  /// dial compares each shard's *slice* size against this, and sharding
  /// divides set sizes by ~num_shards — tune it for slice sizes.
  std::size_t min_compress_size = 1024;
};

/// How one served query ended.
enum class ServeStatus {
  kOk,        // all shards answered in time: the complete result
  kPartial,   // deadline fired mid-gather: result from the shards that
              // answered; shards_missed > 0
  kExpired,   // deadline already expired at admission: no work scattered
  kRejected,  // admission bound hit: no work scattered, retry elsewhere
};

std::string_view ToString(ServeStatus status);

/// Per-query serving options.
struct ServeOptions {
  /// Relative deadline for this query; unset inherits the engine's
  /// default_deadline.  A present value <= 0 is an already-expired
  /// deadline (kExpired at admission).
  std::optional<std::chrono::microseconds> deadline;
  /// Result in document-id order (bitwise-identical to an unsharded
  /// Engine).  false skips the guarantee of a globally defined order —
  /// each shard's slice is still internally ordered per its algorithm.
  bool ordered = true;
  /// Keep at most `limit` result elements (per Query::Limit semantics).
  std::size_t limit = SIZE_MAX;
  /// Count only: result_size is filled, elems stays empty.
  bool count_only = false;
};

/// The outcome of one Serve() call.
struct ServeResult {
  ServeStatus status = ServeStatus::kOk;
  /// The gathered result elements (empty for count_only, kExpired and
  /// kRejected).  For kPartial: the union of the shards that answered —
  /// a subset of the true result.
  ElemList elems;
  /// Result size after any limit (count_only's only output).
  std::size_t result_size = 0;
  std::size_t shards_answered = 0;
  std::size_t shards_missed = 0;
  /// Sums of the per-shard QueryStats over the answering shards.
  std::size_t elements_scanned = 0;
  double predicted_micros = 0.0;
  /// End-to-end wall time of this Serve call (admission to gather).
  double wall_micros = 0.0;

  bool ok() const { return status == ServeStatus::kOk; }
  /// True when the result may be missing elements (any non-kOk state).
  bool partial() const { return status != ServeStatus::kOk; }
};

/// Cumulative serving counters since construction (all queries, all
/// threads).  Snapshot via ShardedEngine::counters().
struct ServeCounters {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  /// kExpired admissions + kPartial gathers (per query, not per shard).
  std::uint64_t deadline_misses = 0;
  /// Queries that ran to a gather (kOk + kPartial).
  std::uint64_t served = 0;
  /// Queries currently between admission and gather.
  std::size_t in_flight = 0;
};

/// A value-semantic handle owning one logical set, split into per-shard
/// prepared structures (one PreparedSet per shard, empty shards
/// included).  Copies share the underlying structures.  Built by
/// ShardedEngine::Prepare; usable only with the engine that built it.
class ShardedSet {
 public:
  ShardedSet() = default;

  bool empty_handle() const { return shards_.empty(); }
  /// Total elements across all shards.
  std::size_t size() const { return total_; }
  std::size_t num_shards() const { return shards_.size(); }
  /// Elements held by shard `s`.
  std::size_t shard_size(std::size_t s) const { return shards_[s].size(); }
  /// The per-shard prepared structure (for introspection/tests).
  const PreparedSet& shard(std::size_t s) const { return shards_[s]; }

 private:
  friend class ShardedEngine;
  ShardedSet(std::shared_ptr<const int> tag, std::vector<PreparedSet> shards,
             std::size_t total)
      : tag_(std::move(tag)), shards_(std::move(shards)), total_(total) {}

  std::shared_ptr<const int> tag_;  // identity of the owning engine
  std::vector<PreparedSet> shards_;
  std::size_t total_ = 0;
};

/// A boolean expression over sharded sets — the serving-tier mirror of
/// fsi::Expr (api/expr.h): And/Or/Diff/AtLeast/None with ShardedSet
/// leaves.  Because every shard owns a contiguous id range and all of
/// the algebra's operations are element-local, evaluating the projected
/// per-shard expression on each shard and concatenating in shard order
/// is bitwise-identical to single-engine evaluation over the unsharded
/// corpus.  Value-semantic and immutable, like Expr.
class ShardedExpr {
 public:
  ShardedExpr() = default;

  /// Leaf over one sharded set.  Throws on an empty handle.
  static ShardedExpr Set(const ShardedSet& set);
  /// Intersection / union of >= 1 subexpressions (throws on zero
  /// children or empty-handle children, like the Expr builders).
  static ShardedExpr And(std::vector<ShardedExpr> children);
  static ShardedExpr Or(std::vector<ShardedExpr> children);
  /// Difference include \ exclude.
  static ShardedExpr Diff(ShardedExpr include, ShardedExpr exclude);
  /// t-of-k threshold (children counted with multiplicity; throws on
  /// threshold == 0; threshold > k is valid and always empty).
  static ShardedExpr AtLeast(std::size_t threshold,
                             std::vector<ShardedExpr> children);
  /// The constant empty set.
  static ShardedExpr None();

  bool empty_handle() const { return node_ == nullptr; }
  ExprKind kind() const { return node_->kind; }
  std::size_t num_children() const { return node_->children.size(); }
  const ShardedExpr& child(std::size_t i) const { return node_->children[i]; }
  std::size_t threshold() const { return node_->threshold; }
  const ShardedSet& leaf() const { return node_->leaf; }
  std::size_t num_leaves() const;

 private:
  friend class ShardedEngine;
  struct Node {
    ExprKind kind = ExprKind::kNone;
    std::vector<ShardedExpr> children;
    std::size_t threshold = 0;
    ShardedSet leaf;
  };
  explicit ShardedExpr(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  /// The same tree with every leaf replaced by its shard-`s` prepared
  /// structure — what each shard task evaluates.
  Expr Project(std::size_t s) const;

  std::shared_ptr<const Node> node_;
};

struct LoadedShardedSnapshot;

/// S per-shard engines behind one shard map, serving scatter-gather
/// queries with admission control and per-query deadlines.  Immovable
/// (it owns the scatter ThreadPool); share it by reference — Serve and
/// Prepare are const and thread-safe.
class ShardedEngine {
 public:
  explicit ShardedEngine(ShardedEngineOptions options = {});

  /// Splits one sorted, duplicate-free set by the shard map and
  /// preprocesses each slice in its shard's engine.  Validation follows
  /// the engine's ValidationPolicy, on the whole set before splitting.
  ShardedSet Prepare(std::span<const Elem> set) const;
  ShardedSet Prepare(std::initializer_list<Elem> set) const {
    return Prepare(std::span<const Elem>(set.begin(), set.size()));
  }

  /// Serves one conjunctive query over sharded sets: admission check,
  /// scatter one task per shard, gather until done or deadline.  Every
  /// handle must be non-empty and built by this engine, and the query
  /// arity must fit the per-shard algorithm — violations throw
  /// std::invalid_argument on the calling thread (never a partial
  /// scatter).  Thread-safe: call from any number of front-end threads.
  ServeResult Serve(std::span<const ShardedSet* const> sets,
                    ServeOptions options = {}) const;
  ServeResult Serve(std::initializer_list<const ShardedSet*> sets,
                    ServeOptions options = {}) const {
    return Serve(std::span<const ShardedSet* const>(sets.begin(), sets.size()),
                 options);
  }

  /// Serves one boolean-expression query (And/Or/Diff/AtLeast over
  /// sharded sets): the expression is projected onto each shard,
  /// evaluated there by the shard's engine (api/expr.h — including its
  /// optimizer and memoization cache), and gathered by concatenation —
  /// bitwise-identical to single-engine evaluation for complete (kOk)
  /// results.  Same admission/deadline semantics as the conjunctive
  /// Serve; every leaf must be built by this engine.  Expression queries
  /// have no arity limit.
  ServeResult Serve(const ShardedExpr& expr, ServeOptions options = {}) const;

  /// One query of a served batch: the sharded sets to intersect.
  using ShardedQuery = std::vector<const ShardedSet*>;

  /// Serves a query log sequentially from this thread (each query still
  /// fans out over all shards) and fills batch_stats() with the merged
  /// latency percentiles (p50/p95/p99/max), throughput and the
  /// deadline-miss/rejection counts.  Mirrors BatchRunner's driver
  /// convention: one thread drives a batch; use concurrent Serve calls
  /// for a multi-frontend deployment.
  std::vector<ServeResult> ServeBatch(std::span<const ShardedQuery> queries,
                                      ServeOptions options = {});

  /// Statistics of the most recent ServeBatch.
  const BatchStats& batch_stats() const { return batch_stats_; }

  /// Cumulative serving counters (thread-safe snapshot).
  ServeCounters counters() const;

  // Per-shard snapshot persistence (docs/SERVING.md, "Per-shard
  // snapshots"): `path` holds a small shard-map manifest, and each shard
  // writes an independent engine image to `path + ".shard<i>"` — shards
  // cold-start independently, each mmap'd zero-copy
  // (docs/PERSISTENCE.md).

  /// Saves the shard manifest and one engine image per shard.  `sets`
  /// must all be built by this engine; their order is preserved by Load.
  void SaveSnapshot(const std::string& path,
                    std::span<const ShardedSet* const> sets) const;
  void SaveSnapshot(const std::string& path,
                    std::initializer_list<const ShardedSet*> sets) const {
    SaveSnapshot(path,
                 std::span<const ShardedSet* const>(sets.begin(), sets.size()));
  }

  /// Runtime options for LoadSnapshot (the persisted side — shard
  /// count, universe bound, spec, seed — comes from the files).
  struct LoadOptions {
    SnapshotLoadOptions snapshot = {};
    std::size_t num_threads = 0;
    std::size_t max_in_flight = 1024;
    std::chrono::microseconds default_deadline{0};
  };

  /// Loads a snapshot saved by SaveSnapshot: reads the manifest,
  /// mmap-loads every shard image, reassembles the sharded sets (same
  /// order as at save).  Throws storage::SnapshotError on anything
  /// malformed or missing.
  static LoadedShardedSnapshot LoadSnapshot(const std::string& path,
                                            LoadOptions options);
  static LoadedShardedSnapshot LoadSnapshot(const std::string& path);

  std::size_t num_shards() const { return map_.num_shards(); }
  const ShardMap& shard_map() const { return map_; }
  /// The per-shard engine (its spec/seed are uniform across shards).
  const Engine& shard_engine(std::size_t s) const { return engines_[s]; }
  std::size_t num_threads() const { return pool_.num_threads(); }
  const ShardedEngineOptions& options() const { return options_; }

 private:
  struct QueryState;  // the shared scatter-gather state of one query

  /// The LoadSnapshot tail: adopts already-loaded per-shard engines and
  /// the identity tag its reassembled sets were built with.
  ShardedEngine(ShardedEngineOptions options, std::vector<Engine> engines,
                std::shared_ptr<const int> tag);

  /// Validates handles/arity and throws std::invalid_argument on misuse.
  void CheckQuery(std::span<const ShardedSet* const> sets) const;
  /// Leaf validation for expression queries (non-empty handles, built by
  /// this engine).
  void CheckExpr(const ShardedExpr& expr) const;
  /// The shared scatter-gather core: admission, deadline resolution,
  /// one task per shard, gather until complete or deadline.  `state`
  /// arrives with its per-shard inputs (flat handles or projected
  /// expressions) already filled.
  ServeResult ServeScattered(std::shared_ptr<QueryState> state,
                             ServeOptions options, Timer& wall) const;

  ShardedEngineOptions options_;
  ShardMap map_;
  std::vector<Engine> engines_;  // one per shard
  std::shared_ptr<const int> tag_;
  mutable ThreadPool pool_;
  mutable AdmissionController admission_;
  mutable std::atomic<std::uint64_t> deadline_misses_{0};
  mutable std::atomic<std::uint64_t> served_{0};
  BatchStats batch_stats_;
};

/// The result of ShardedEngine::LoadSnapshot: the reconstructed engine,
/// the sharded sets (same order as at save), and one load report per
/// shard image.
struct LoadedShardedSnapshot {
  ShardedEngine engine;
  std::vector<ShardedSet> sets;
  std::vector<SnapshotInfo> shard_infos;
};

inline LoadedShardedSnapshot ShardedEngine::LoadSnapshot(
    const std::string& path) {
  return LoadSnapshot(path, LoadOptions{});
}

}  // namespace fsi

#endif  // FSI_SERVE_SHARDED_ENGINE_H_
