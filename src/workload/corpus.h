// Simulated "real data" workload (DESIGN.md §3, Substitutions).
//
// The paper's real-data experiments run the 10^4 most frequent Bing queries
// (2009) against 8M Wikipedia pages.  Neither asset is available, so this
// module synthesizes a corpus and a query workload that reproduce the
// *statistics the paper reports as the drivers of algorithm performance*:
//
//   query lengths:  68% 2-keyword, 23% 3-kw, 6% 4-kw (remainder 5-kw);
//   size ratios:    mean |L1|/|L2| ≈ 0.21 (2-kw), 0.31 (3-kw), 0.36 (4-kw),
//                   mean |L1|/|Lk| ≈ 0.09 (3-kw) / 0.06 (4-kw);
//   selectivity:    mean |∩ L_i| / |L1| ≈ 0.19.
//
// Mechanism: term document-frequencies follow a Zipf law (as in any natural
// corpus); documents carry a popularity weight, and each term's posting
// list is drawn with probability proportional to that weight.  Shared
// popularity tilt produces the positive co-occurrence correlation that
// yields realistic (non-negligible) intersection ratios; query terms are
// drawn with a frequency bias, mimicking the head-heavy query log.

#ifndef FSI_WORKLOAD_CORPUS_H_
#define FSI_WORKLOAD_CORPUS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/algorithm.h"
#include "util/rng.h"

namespace fsi {

/// Discrete Zipf(s) sampler over ranks [0, n) via inverse-CDF binary search.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double s);

  std::size_t Sample(Xoshiro256& rng) const;

  /// Unnormalized weight of rank i: (i+1)^-s.
  double Weight(std::size_t i) const;

 private:
  double s_;
  std::vector<double> cdf_;
};

/// A synthetic document corpus with Zipfian term frequencies and
/// popularity-correlated postings.
class SyntheticCorpus {
 public:
  struct Options {
    std::size_t num_docs = 1 << 20;
    std::size_t vocabulary = 20000;
    /// Zipf exponent of the term document-frequency distribution.
    double term_zipf = 1.05;
    /// Document-frequency ceiling/floor as a fraction of num_docs.
    double max_df_fraction = 0.20;
    std::size_t min_df = 64;
    /// Zipf exponent of the document popularity tilt; larger values mean
    /// more co-occurrence (higher intersection ratios).
    double doc_zipf = 0.6;
    std::uint64_t seed = 0x2b992ddfa23249d6ULL;
  };

  explicit SyntheticCorpus(const Options& options);

  std::size_t num_terms() const { return postings_.size(); }
  std::size_t num_docs() const { return num_docs_; }

  /// Posting list (sorted doc ids) of term `t`; terms are ordered by
  /// descending document frequency (rank 0 = most frequent).
  const ElemList& postings(std::size_t t) const { return postings_[t]; }

 private:
  std::size_t num_docs_;
  std::vector<ElemList> postings_;
};

/// One conjunctive query: term ids into a SyntheticCorpus.
using TermQuery = std::vector<std::size_t>;

/// A Bing-like query workload over a corpus.
class QueryWorkload {
 public:
  struct Options {
    std::size_t num_queries = 1000;
    /// Keyword-count distribution (2, 3, 4, 5 keywords).
    double p2 = 0.68, p3 = 0.23, p4 = 0.06, p5 = 0.03;
    /// Term-sampling bias: rank drawn from Zipf(query_zipf) over the
    /// vocabulary, favouring frequent terms as real query logs do.
    double query_zipf = 1.3;
    std::uint64_t seed = 0x0c6e40ba7aa0d2aeULL;
  };

  QueryWorkload(const SyntheticCorpus& corpus, const Options& options);

  const std::vector<TermQuery>& queries() const { return queries_; }

  /// Measured workload statistics, for reporting against the paper's.
  struct Stats {
    double frac2 = 0, frac3 = 0, frac4 = 0, frac5 = 0;
    double mean_ratio_12 = 0;        // |L1|/|L2|, all queries
    double mean_ratio_1k = 0;        // |L1|/|Lk|, k >= 3 queries
    double mean_selectivity = 0;     // |intersection| / |L1|
  };
  Stats ComputeStats(const SyntheticCorpus& corpus) const;

 private:
  std::vector<TermQuery> queries_;
};

}  // namespace fsi

#endif  // FSI_WORKLOAD_CORPUS_H_
