#include "workload/synthetic.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace fsi {

ElemList SampleSortedSet(std::size_t n, std::uint64_t universe,
                         Xoshiro256& rng) {
  if (n > universe) {
    throw std::invalid_argument("SampleSortedSet: n exceeds universe");
  }
  ElemList out;
  out.reserve(n);
  if (universe > 0 && n >= universe / 4) {
    // Dense case: selection sampling (Knuth 3.4.2 S) — one pass, exact.
    std::uint64_t remaining_pool = universe;
    std::size_t remaining_need = n;
    for (std::uint64_t x = 0; x < universe && remaining_need > 0; ++x) {
      // P(select x) = remaining_need / remaining_pool.
      if (rng.Below(remaining_pool) < remaining_need) {
        out.push_back(static_cast<Elem>(x));
        --remaining_need;
      }
      --remaining_pool;
    }
    return out;
  }
  // Sparse case: rejection sampling into a hash set, then sort.
  std::unordered_set<Elem> seen;
  seen.reserve(n * 2);
  while (seen.size() < n) {
    seen.insert(static_cast<Elem>(rng.Below(universe)));
  }
  out.assign(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ElemList> GenerateIntersectingSets(
    const std::vector<std::size_t>& sizes, std::size_t r,
    std::uint64_t universe, Xoshiro256& rng) {
  std::size_t k = sizes.size();
  std::size_t total = 0;
  for (std::size_t n : sizes) {
    if (r > n) {
      throw std::invalid_argument(
          "GenerateIntersectingSets: r exceeds a set size");
    }
    total += n - r;
  }
  total += r;
  if (total > universe) {
    throw std::invalid_argument(
        "GenerateIntersectingSets: universe too small for disjoint parts");
  }
  // One big distinct sample, then deal it out: first r elements are the
  // shared core, the rest are private.  A random shuffle removes any
  // correlation between value ranges and roles.
  ElemList pool = SampleSortedSet(total, universe, rng);
  for (std::size_t i = pool.size(); i > 1; --i) {
    std::swap(pool[i - 1], pool[rng.Below(i)]);
  }
  std::vector<ElemList> sets(k);
  std::size_t cursor = r;
  for (std::size_t s = 0; s < k; ++s) {
    ElemList& set = sets[s];
    set.assign(pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(r));
    set.insert(set.end(),
               pool.begin() + static_cast<std::ptrdiff_t>(cursor),
               pool.begin() + static_cast<std::ptrdiff_t>(cursor + sizes[s] - r));
    cursor += sizes[s] - r;
    std::sort(set.begin(), set.end());
  }
  return sets;
}

std::vector<ElemList> GenerateUniformSets(std::size_t k, std::size_t n,
                                          std::uint64_t universe,
                                          Xoshiro256& rng) {
  std::vector<ElemList> sets;
  sets.reserve(k);
  for (std::size_t s = 0; s < k; ++s) {
    sets.push_back(SampleSortedSet(n, universe, rng));
  }
  return sets;
}

}  // namespace fsi
