// Synthetic workload generation (Section 4, "Datasets": "sets are generated
// randomly (and uniformly) from a universe Σ").
//
// Two generation modes back the paper's synthetic experiments:
//  * controlled intersection — sample a common core of exactly r elements
//    plus pairwise-disjoint private remainders, so |L1 ∩ ... ∩ Lk| == r
//    precisely (Figures 4, 5, 8 and the size-ratio sweep fix r as a
//    percentage of the smallest list);
//  * plain uniform — every set drawn independently from the universe
//    (Figure 6 draws ids "randomly generated using a uniform distribution
//    over [0, 2*10^8]").

#ifndef FSI_WORKLOAD_SYNTHETIC_H_
#define FSI_WORKLOAD_SYNTHETIC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/algorithm.h"
#include "util/rng.h"

namespace fsi {

/// Samples `n` distinct elements uniformly from [0, universe), sorted
/// ascending.  Requires n <= universe.
ElemList SampleSortedSet(std::size_t n, std::uint64_t universe,
                         Xoshiro256& rng);

/// Generates k sets of the given sizes whose full intersection is *exactly*
/// `r` elements: a shared core of r elements plus mutually disjoint
/// remainders (so no accidental extra full-intersection members; pairwise
/// overlaps beyond the core are absent, which matches the paper's
/// "intersection size fixed at x% of the list size" setup).
/// Requires r <= min(sizes) and sum(sizes) - (k-1)*r <= universe.
std::vector<ElemList> GenerateIntersectingSets(
    const std::vector<std::size_t>& sizes, std::size_t r,
    std::uint64_t universe, Xoshiro256& rng);

/// Generates k independent uniform sets (Figure 6 mode).
std::vector<ElemList> GenerateUniformSets(std::size_t k, std::size_t n,
                                          std::uint64_t universe,
                                          Xoshiro256& rng);

}  // namespace fsi

#endif  // FSI_WORKLOAD_SYNTHETIC_H_
