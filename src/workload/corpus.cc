#include "workload/corpus.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "baseline/merge.h"

namespace fsi {

ZipfDistribution::ZipfDistribution(std::size_t n, double s) : s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: empty support");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += Weight(i);
    cdf_[i] = acc;
  }
  for (double& c : cdf_) c /= acc;
}

double ZipfDistribution::Weight(std::size_t i) const {
  return std::pow(static_cast<double>(i + 1), -s_);
}

std::size_t ZipfDistribution::Sample(Xoshiro256& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

SyntheticCorpus::SyntheticCorpus(const Options& options)
    : num_docs_(options.num_docs) {
  Xoshiro256 rng(options.seed);
  // Document popularity: doc j has weight (j+1)^-doc_zipf; the cumulative
  // weight array drives inverse-CDF sampling.  (Using the id itself as the
  // popularity rank keeps postings trivially sorted after sampling.)
  std::vector<double> doc_cdf(num_docs_);
  double acc = 0.0;
  for (std::size_t j = 0; j < num_docs_; ++j) {
    acc += std::pow(static_cast<double>(j + 1), -options.doc_zipf);
    doc_cdf[j] = acc;
  }
  for (double& c : doc_cdf) c /= acc;

  auto max_df = static_cast<std::size_t>(
      options.max_df_fraction * static_cast<double>(num_docs_));
  postings_.resize(options.vocabulary);
  std::unordered_set<Elem> seen;
  for (std::size_t t = 0; t < options.vocabulary; ++t) {
    double raw = static_cast<double>(max_df) *
                 std::pow(static_cast<double>(t + 1), -options.term_zipf);
    std::size_t df = std::clamp(static_cast<std::size_t>(raw),
                                options.min_df, max_df);
    seen.clear();
    seen.reserve(df * 2);
    while (seen.size() < df) {
      double u = rng.NextDouble();
      auto it = std::lower_bound(doc_cdf.begin(), doc_cdf.end(), u);
      if (it == doc_cdf.end()) --it;
      seen.insert(static_cast<Elem>(it - doc_cdf.begin()));
    }
    ElemList& list = postings_[t];
    list.assign(seen.begin(), seen.end());
    std::sort(list.begin(), list.end());
  }
}

QueryWorkload::QueryWorkload(const SyntheticCorpus& corpus,
                             const Options& options) {
  Xoshiro256 rng(options.seed);
  ZipfDistribution term_rank(corpus.num_terms(), options.query_zipf);
  queries_.reserve(options.num_queries);
  while (queries_.size() < options.num_queries) {
    double u = rng.NextDouble();
    std::size_t k = 2;
    if (u < options.p2) {
      k = 2;
    } else if (u < options.p2 + options.p3) {
      k = 3;
    } else if (u < options.p2 + options.p3 + options.p4) {
      k = 4;
    } else {
      k = 5;
    }
    TermQuery q;
    while (q.size() < k) {
      std::size_t t = term_rank.Sample(rng);
      if (std::find(q.begin(), q.end(), t) == q.end()) q.push_back(t);
    }
    queries_.push_back(std::move(q));
  }
}

QueryWorkload::Stats QueryWorkload::ComputeStats(
    const SyntheticCorpus& corpus) const {
  Stats st;
  std::size_t count[4] = {0, 0, 0, 0};  // queries of 2/3/4/5 keywords
  double ratio12_sum = 0;
  double ratio1k_sum = 0;
  std::size_t ratio1k_count = 0;
  double sel_sum = 0;
  for (const TermQuery& q : queries_) {
    std::vector<std::size_t> sizes;
    std::vector<std::span<const Elem>> lists;
    for (std::size_t t : q) {
      sizes.push_back(corpus.postings(t).size());
    }
    std::sort(sizes.begin(), sizes.end());
    count[std::min<std::size_t>(q.size(), 5) - 2]++;
    ratio12_sum += static_cast<double>(sizes[0]) /
                   static_cast<double>(std::max<std::size_t>(sizes[1], 1));
    if (q.size() >= 3) {
      ratio1k_sum += static_cast<double>(sizes[0]) /
                     static_cast<double>(std::max<std::size_t>(sizes.back(), 1));
      ++ratio1k_count;
    }
    // Selectivity needs the true intersection.
    std::vector<std::span<const Elem>> spans;
    for (std::size_t t : q) spans.push_back(corpus.postings(t));
    ElemList result;
    MergeIntersectK(spans, &result);
    sel_sum += static_cast<double>(result.size()) /
               static_cast<double>(std::max<std::size_t>(sizes[0], 1));
  }
  auto n = static_cast<double>(queries_.size());
  st.frac2 = static_cast<double>(count[0]) / n;
  st.frac3 = static_cast<double>(count[1]) / n;
  st.frac4 = static_cast<double>(count[2]) / n;
  st.frac5 = static_cast<double>(count[3]) / n;
  st.mean_ratio_12 = ratio12_sum / n;
  st.mean_ratio_1k =
      ratio1k_count == 0 ? 0 : ratio1k_sum / static_cast<double>(ratio1k_count);
  st.mean_selectivity = sel_sum / n;
  return st;
}

}  // namespace fsi
