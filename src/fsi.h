// Canonical public entry point for the fsi library.
//
//   #include "fsi.h"
//
//   fsi::Engine engine("Hybrid");
//   fsi::PreparedSet a = engine.Prepare(list_a);
//   fsi::PreparedSet b = engine.Prepare(list_b);
//   fsi::ElemList both = engine.Query({&a, &b}).Materialize();
//
// Pulls in the Engine/PreparedSet/Query API (api/engine.h), the concurrent
// batch layer (api/batch_runner.h), the algorithm registry (api/registry.h)
// and, for callers that still drive algorithms directly, the raw algorithm
// interface and legacy CreateAlgorithm shims (core/intersector.h).

#ifndef FSI_FSI_H_
#define FSI_FSI_H_

#include "api/batch_runner.h"  // BatchRunner, BatchStats, ThreadPool
#include "api/engine.h"    // Engine, PreparedSet, Query, QueryStats
#include "api/epoch.h"     // EpochManager, BackgroundCompactor (mutable sets)
#include "api/expr.h"      // Expr boolean algebra, ExprCache memoization
#include "api/planner.h"   // PlannerAlgorithm, QueryPlan, PlannerCalibration
#include "api/registry.h"  // AlgorithmRegistry, AlgorithmDescriptor
#include "core/intersector.h"  // raw API + CreateAlgorithm shims
#include "serve/sharded_engine.h"  // ShardedEngine scatter-gather serving tier
#include "simd/cpu_features.h"  // SIMD dispatch introspection (ActiveLevel)
#include "storage/snapshot.h"  // snapshot container (SaveSnapshot/LoadSnapshot)

#endif  // FSI_FSI_H_
