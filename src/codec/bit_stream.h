// MSB-first bit streams.
//
// Substrate for the compressed structures of Section 4.1 and Appendix B:
// γ-/δ-coded posting lists (Merge_Delta, Lookup_Delta, RanGroupScan_Delta)
// and the Lowbits block format.  Writing is append-only; reading is a
// sequential cursor with O(1) Skip for fixed-width fields.

#ifndef FSI_CODEC_BIT_STREAM_H_
#define FSI_CODEC_BIT_STREAM_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fsi {

/// Append-only bit sink; bits are stored MSB-first inside 64-bit words.
class BitWriter {
 public:
  /// Appends the `bits` low-order bits of `value`, most significant first.
  /// Precondition: 0 <= bits <= 64 and value < 2^bits.
  void Write(std::uint64_t value, int bits) {
    assert(bits >= 0 && bits <= 64);
    assert(bits == 64 || (value >> bits) == 0);
    while (bits > 0) {
      if (fill_ == 64) {
        buffer_.push_back(0);
        fill_ = 0;
      }
      int room = 64 - fill_;
      int take = bits < room ? bits : room;
      std::uint64_t chunk =
          (bits == 64 && take == 64) ? value : (value >> (bits - take));
      chunk &= take == 64 ? ~std::uint64_t{0}
                          : ((std::uint64_t{1} << take) - 1);
      buffer_.back() |= chunk << (room - take);
      fill_ += take;
      bits -= take;
    }
  }

  /// Appends a single bit.
  void WriteBit(bool bit) { Write(bit ? 1 : 0, 1); }

  /// Appends `n` in unary: n zero bits followed by a one bit (so 0 → "1",
  /// 2 → "001").  Matches the |L^z_i| encoding of Appendix B.
  void WriteUnary(std::uint64_t n) {
    while (n >= 64) {
      Write(0, 64);
      n -= 64;
    }
    Write(1, static_cast<int>(n) + 1);
  }

  /// Total number of bits written so far.
  std::size_t BitCount() const {
    return buffer_.empty() ? 0 : (buffer_.size() - 1) * 64 + fill_;
  }

  /// Storage size in 64-bit words.
  std::size_t SizeInWords() const { return buffer_.size(); }

  const std::vector<std::uint64_t>& buffer() const { return buffer_; }
  std::vector<std::uint64_t> TakeBuffer() { return std::move(buffer_); }

 private:
  std::vector<std::uint64_t> buffer_;
  int fill_ = 64;  // bits used in buffer_.back(); 64 forces a fresh word
};

/// Sequential bit cursor over a word buffer produced by BitWriter.
class BitReader {
 public:
  BitReader(const std::uint64_t* data, std::size_t bit_count)
      : data_(data), bit_count_(bit_count) {}

  explicit BitReader(const std::vector<std::uint64_t>& buf)
      : BitReader(buf.data(), buf.size() * 64) {}

  /// Reads `bits` bits MSB-first.  Precondition: bits <= 64 and enough
  /// bits remain.
  std::uint64_t Read(int bits) {
    assert(bits >= 0 && bits <= 64);
    assert(pos_ + static_cast<std::size_t>(bits) <= bit_count_);
    std::uint64_t out = 0;
    int need = bits;
    while (need > 0) {
      std::size_t word = pos_ >> 6;
      int offset = static_cast<int>(pos_ & 63);
      int avail = 64 - offset;
      int take = need < avail ? need : avail;
      std::uint64_t chunk = data_[word] << offset;  // align MSB
      chunk >>= (64 - take);
      out = take == 64 ? chunk : ((out << take) | chunk);
      pos_ += static_cast<std::size_t>(take);
      need -= take;
    }
    return out;
  }

  bool ReadBit() { return Read(1) != 0; }

  /// Reads a unary-coded value (count of zeros before the terminating one).
  std::uint64_t ReadUnary() {
    std::uint64_t n = 0;
    while (true) {
      std::size_t word = pos_ >> 6;
      int offset = static_cast<int>(pos_ & 63);
      std::uint64_t chunk = data_[word] << offset;
      if (chunk == 0) {
        n += static_cast<std::uint64_t>(64 - offset);
        pos_ += static_cast<std::size_t>(64 - offset);
        assert(pos_ < bit_count_);
        continue;
      }
      int zeros = std::countl_zero(chunk);
      n += static_cast<std::uint64_t>(zeros);
      pos_ += static_cast<std::size_t>(zeros) + 1;  // consume the 1-bit too
      return n;
    }
  }

  void Skip(std::size_t bits) { pos_ += bits; }

  /// Repositions the cursor to an absolute bit offset (skip-pointer jumps
  /// in the block-compressed structures).  Precondition: pos <= bit_count.
  void SeekTo(std::size_t pos) {
    assert(pos <= bit_count_);
    pos_ = pos;
  }

  std::size_t position() const { return pos_; }
  std::size_t bit_count() const { return bit_count_; }
  bool AtEnd() const { return pos_ >= bit_count_; }

 private:
  const std::uint64_t* data_;
  std::size_t bit_count_;
  std::size_t pos_ = 0;
};

}  // namespace fsi

#endif  // FSI_CODEC_BIT_STREAM_H_
