// Elias γ- and δ-codes (Witten, Moffat & Bell [23], p.116).
//
// These are the "standard techniques" the paper uses in Section 4.1 to
// compress the sequentially-accessed posting data of Merge, Lookup and
// RanGroupScan.  Both codes encode positive integers (>= 1); posting lists
// are encoded as γ/δ-coded gaps (first element + successive differences).

#ifndef FSI_CODEC_ELIAS_H_
#define FSI_CODEC_ELIAS_H_

#include <cstdint>

#include "codec/bit_stream.h"
#include "util/bits.h"

namespace fsi {

/// γ-code of x >= 1: unary(floor(log2 x)) followed by the floor(log2 x)
/// low-order bits of x.
inline void WriteGamma(BitWriter& out, std::uint64_t x) {
  int n = FloorLog2(x);
  out.WriteUnary(static_cast<std::uint64_t>(n));
  if (n > 0) out.Write(x & ((std::uint64_t{1} << n) - 1), n);
}

inline std::uint64_t ReadGamma(BitReader& in) {
  int n = static_cast<int>(in.ReadUnary());
  std::uint64_t low = n > 0 ? in.Read(n) : 0;
  return (std::uint64_t{1} << n) | low;
}

/// δ-code of x >= 1: γ-code of (floor(log2 x) + 1) followed by the low bits
/// of x.  Asymptotically shorter than γ for large values.
inline void WriteDelta(BitWriter& out, std::uint64_t x) {
  int n = FloorLog2(x);
  WriteGamma(out, static_cast<std::uint64_t>(n) + 1);
  if (n > 0) out.Write(x & ((std::uint64_t{1} << n) - 1), n);
}

inline std::uint64_t ReadDelta(BitReader& in) {
  int n = static_cast<int>(ReadGamma(in)) - 1;
  std::uint64_t low = n > 0 ? in.Read(n) : 0;
  return (std::uint64_t{1} << n) | low;
}

/// Bit length of the γ-code of x (for space accounting).
inline int GammaBits(std::uint64_t x) { return 2 * FloorLog2(x) + 1; }

/// Bit length of the δ-code of x.
inline int DeltaBits(std::uint64_t x) {
  int n = FloorLog2(x);
  return GammaBits(static_cast<std::uint64_t>(n) + 1) + n;
}

}  // namespace fsi

#endif  // FSI_CODEC_ELIAS_H_
