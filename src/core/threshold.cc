#include "core/threshold.h"

#include <algorithm>
#include <stdexcept>

namespace fsi {

ElemList ThresholdIntersection::AtLeast(
    std::span<const PreprocessedSet* const> sets, std::size_t threshold) const {
  std::size_t k = sets.size();
  if (threshold < 1 || threshold > k) {
    throw std::invalid_argument("ThresholdIntersection: threshold out of range");
  }
  ElemList out;
  if (threshold == k) {
    // Full intersection: the image-filtered fast path.
    scan_->Intersect(sets, &out);
    return out;
  }
  std::vector<const ScanSet*> scans;
  scans.reserve(k);
  for (const PreprocessedSet* s : sets) scans.push_back(&As<ScanSet>(*s));

  // Count-merge the k g-ordered arrays.  Window census pruning: align all
  // sets at the finest resolution present; windows where fewer than
  // `threshold` sets are non-empty cannot contribute.
  int tmax = 0;
  for (const ScanSet* s : scans) tmax = std::max(tmax, s->t());
  const int b = scan_->permutation().domain_bits();

  std::vector<std::uint32_t> pos(k, 0);
  std::vector<std::uint32_t> result_gvals;
  for (std::uint64_t z = 0; z < (std::uint64_t{1} << tmax); ++z) {
    const std::uint64_t win_lo = z << (b - tmax);
    const std::uint64_t win_hi = (z + 1) << (b - tmax);
    // Census: position every cursor at the window start; count live sets.
    std::size_t live = 0;
    for (std::size_t i = 0; i < k; ++i) {
      std::uint64_t zi = z >> (tmax - scans[i]->t());
      auto [lo, hi] = scans[i]->GroupRange(zi);
      std::uint32_t c = std::max(pos[i], lo);
      std::span<const std::uint32_t> gv = scans[i]->gvals();
      while (c < hi && gv[c] < win_lo) ++c;
      pos[i] = c;
      live += (c < hi && gv[c] < win_hi);
    }
    if (live < threshold) continue;
    // Count-merge inside the window: repeatedly take the minimum head.
    while (true) {
      std::uint32_t min_gv = ~std::uint32_t{0};
      bool any = false;
      for (std::size_t i = 0; i < k; ++i) {
        std::span<const std::uint32_t> gv = scans[i]->gvals();
        if (pos[i] < gv.size() && gv[pos[i]] < win_hi) {
          any = true;
          min_gv = std::min(min_gv, gv[pos[i]]);
        }
      }
      if (!any) break;
      std::size_t count = 0;
      for (std::size_t i = 0; i < k; ++i) {
        std::span<const std::uint32_t> gv = scans[i]->gvals();
        if (pos[i] < gv.size() && gv[pos[i]] == min_gv) {
          ++count;
          ++pos[i];
        }
      }
      if (count >= threshold) result_gvals.push_back(min_gv);
    }
  }
  out.reserve(result_gvals.size());
  for (std::uint32_t gv : result_gvals) {
    out.push_back(static_cast<Elem>(scan_->permutation().Invert(gv)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fsi
