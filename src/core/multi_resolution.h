// The multi-resolution partition structure of Section 3.2.1 (Figure 2).
//
// A set L_i is ordered by a random permutation g; the resolution-t partition
// groups elements by the t most significant bits of g(x), so every group
// L^z_i is a contiguous interval of the g-ordered array.  For each
// resolution and group the structure stores:
//   * the interval boundaries  left(L^z_i) / right(L^z_i),
//   * the single-word image    h(L^z_i)  under the word hash h,
//   * first(y, L^z_i): the position of the first element of the group with
//     h-value y, packed in O(log |L^z_i|) bits per entry;
// plus one global next(x) array linking each position to the next position
// (in g-order) with the same h-value.  Following first → next → ... until
// the right boundary enumerates the inverted mapping h^{-1}(y, L^z_i) in
// g-order — the ordered access IntersectSmall's linear merge requires.
//
// Space: sum over t of 2^t group images/boundaries is O(n) words, and the
// packed first tables take sum_t 2^t * w * O(log(n/2^t)/w) = O(n) words
// (Theorem 3.8 / A.4).  Build time is O(n log n) — one O(n) pass per
// resolution after an initial sort.

#ifndef FSI_CORE_MULTI_RESOLUTION_H_
#define FSI_CORE_MULTI_RESOLUTION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/algorithm.h"
#include "hash/feistel.h"
#include "hash/universal_hash.h"
#include "util/bits.h"
#include "util/packed_array.h"

namespace fsi {

/// Position sentinel: "no such element".
inline constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;

/// The preprocessed form shared by RanGroup (full structure) and, in its
/// g-ordered-array part, by HashBin.
class MultiResolutionSet : public PreprocessedSet {
 public:
  /// Builds the structure.  `g` supplies the permutation order, `h` the
  /// word images.  `set` must be sorted and duplicate-free, with every
  /// element below 2^g.domain_bits().
  ///
  /// Note on hashing: the paper applies h to the original element x; we
  /// apply it to g(x).  Since g is a bijection, h∘g is drawn from an equally
  /// 2-universal family, and using g(x) lets the structure store only the
  /// g-ordered values (originals are recovered via g^{-1}).
  /// When `single_resolution` is true, only the default resolution
  /// t_i = ceil(log2(n_i / sqrt(w))) is materialized — sufficient for
  /// Algorithm 4 ("when the group size t_i depends only on n_i,
  /// single-resolution in pre-processing suffices", end of Section 3.2.1)
  /// and much smaller; the full multi-resolution build is required for the
  /// query-size-dependent choices of Theorems 3.4/3.5.
  MultiResolutionSet(std::span<const Elem> set, const FeistelPermutation& g,
                     const WordHash& h, bool single_resolution = false);

  /// Whether resolution t was materialized.
  bool HasResolution(int t) const {
    return t >= 0 && t <= max_resolution() &&
           !resolutions_[static_cast<std::size_t>(t)].group_start.empty();
  }

  std::size_t size() const override { return gvals_.size(); }
  std::size_t SizeInWords() const override;

  /// Number of resolutions built; valid t is [0, max_resolution()].
  int max_resolution() const {
    return static_cast<int>(resolutions_.size()) - 1;
  }

  /// g-ordered values; ascending.
  std::span<const std::uint32_t> gvals() const { return gvals_; }

  /// h-value of the element at position `pos`.
  int hval(std::uint32_t pos) const { return hvals_[pos]; }

  /// Next position after `pos` with the same h-value, or kNoPos.
  std::uint32_t NextPos(std::uint32_t pos) const { return next_[pos]; }

  /// Half-open position interval [left, right) of group z at resolution t.
  std::pair<std::uint32_t, std::uint32_t> GroupRange(int t,
                                                     std::uint64_t z) const {
    const Resolution& res = resolutions_[static_cast<std::size_t>(t)];
    return {res.group_start[z], res.group_start[z + 1]};
  }

  /// Word image h(L^z) of group z at resolution t.
  Word Image(int t, std::uint64_t z) const {
    return resolutions_[static_cast<std::size_t>(t)].images[z];
  }

  /// Absolute position of the first element of group z (resolution t) with
  /// h-value y, or kNoPos if the group has none.
  std::uint32_t FirstPos(int t, std::uint64_t z, int y) const {
    const Resolution& res = resolutions_[static_cast<std::size_t>(t)];
    std::uint64_t off = res.first.Get(z * kWordBits + static_cast<std::size_t>(y));
    if (off == res.first.max_value()) return kNoPos;
    return res.group_start[z] + static_cast<std::uint32_t>(off);
  }

  /// The t for which groups have ~sqrt(w) expected elements — the paper's
  /// default resolution choice t_i = ceil(log2(n_i / sqrt(w))), clamped to
  /// the available range (Algorithm 4 / Theorem 3.7).
  int DefaultResolution() const;

  /// Clamps an arbitrary requested resolution into the valid range.
  int ClampResolution(int t) const {
    if (t < 0) return 0;
    if (t > max_resolution()) return max_resolution();
    return t;
  }

 private:
  struct Resolution {
    std::vector<std::uint32_t> group_start;  // 2^t + 1 offsets
    std::vector<Word> images;                // 2^t word images
    PackedArray first;                       // 2^t * w packed offsets
  };

  int domain_bits_;
  std::vector<std::uint32_t> gvals_;  // ascending g-values
  std::vector<std::uint8_t> hvals_;   // h-value per position
  std::vector<std::uint32_t> next_;   // same-h successor per position
  std::vector<Resolution> resolutions_;
};

}  // namespace fsi

#endif  // FSI_CORE_MULTI_RESOLUTION_H_
