// t-threshold queries: elements contained in at least t of k sets.
//
// The t-threshold problem generalizes intersection (t = k) and union
// (t = 1); it is the other problem studied by the adaptive-intersection
// line of work the paper builds on (Barbay & Kenyon [3], cited in §2), and
// the natural relaxation used by search engines for "match most terms"
// semantics.
//
// Implementation: all structures share the permutation g, so the k
// g-ordered value arrays can be count-merged in one pass; a tournament
// loser-tree keeps the merge at O(n log k).  Two prunings connect this to
// the paper's machinery:
//   * t == k delegates to the wrapped RanGroupScan (full intersection,
//     image filtering applies);
//   * for t < k, a group-level census skips every finest-resolution window
//     where fewer than t sets have any element at all (group lengths are
//     free to read; no hashing needed for this weaker test).

#ifndef FSI_CORE_THRESHOLD_H_
#define FSI_CORE_THRESHOLD_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/ran_group_scan.h"

namespace fsi {

/// Threshold queries over RanGroupScan structures.
class ThresholdIntersection {
 public:
  /// Keeps a non-owning pointer; `scan` must outlive this object and must
  /// be the instance whose Preprocess produced the queried ScanSets.
  explicit ThresholdIntersection(const RanGroupScanIntersection* scan)
      : scan_(scan) {}

  /// Elements present in at least `threshold` of `sets` (1 <= threshold
  /// <= sets.size()), sorted ascending.
  ElemList AtLeast(std::span<const PreprocessedSet* const> sets,
                   std::size_t threshold) const;

 private:
  const RanGroupScanIntersection* scan_;
};

}  // namespace fsi

#endif  // FSI_CORE_THRESHOLD_H_
