#include "core/int_group.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/rng.h"

namespace fsi {

FixedGroupSet::FixedGroupSet(std::span<const Elem> set, const WordHash& h,
                             std::size_t group_size)
    : group_size_(group_size) {
  DebugCheckSortedUnique(set, "IntGroup");
  std::size_t n = set.size();
  elems_.assign(set.begin(), set.end());
  hvals_.resize(n);
  std::size_t groups = group_size_ == 0 ? 0 : (n + group_size_ - 1) / group_size_;
  images_.assign(groups, 0);
  mins_.resize(groups);
  maxs_.resize(groups);
  for (std::size_t i = 0; i < n; ++i) {
    hvals_[i] = static_cast<std::uint8_t>(h(elems_[i]));
  }
  std::vector<std::uint32_t> order;
  for (std::size_t p = 0; p < groups; ++p) {
    auto [lo, hi] = GroupRange(p);
    mins_[p] = elems_[lo];      // value order still intact here
    maxs_[p] = elems_[hi - 1];
    // Reorder the group by (h(x), x) so each h^{-1}(y, .) is a contiguous,
    // value-ordered run.
    order.resize(hi - lo);
    std::iota(order.begin(), order.end(), static_cast<std::uint32_t>(lo));
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (hvals_[a] != hvals_[b]) return hvals_[a] < hvals_[b];
                return elems_[a] < elems_[b];
              });
    std::vector<Elem> tmp_e(order.size());
    std::vector<std::uint8_t> tmp_h(order.size());
    for (std::size_t j = 0; j < order.size(); ++j) {
      tmp_e[j] = elems_[order[j]];
      tmp_h[j] = hvals_[order[j]];
      images_[p] |= WordBit(tmp_h[j]);
    }
    std::copy(tmp_e.begin(), tmp_e.end(),
              elems_.begin() + static_cast<std::ptrdiff_t>(lo));
    std::copy(tmp_h.begin(), tmp_h.end(),
              hvals_.begin() + static_cast<std::ptrdiff_t>(lo));
  }
}

std::size_t FixedGroupSet::SizeInWords() const {
  return (elems_.size() * sizeof(Elem) + 7) / 8 + (hvals_.size() + 7) / 8 +
         images_.size() + (mins_.size() * sizeof(Elem) + 7) / 8 +
         (maxs_.size() * sizeof(Elem) + 7) / 8;
}

IntGroupIntersection::IntGroupIntersection(const Options& options)
    : options_(options),
      h_(SplitMix64(options.seed).Next()),
      kernels_(&simd::Select(options.simd)) {
  if (options.group_size < 1 || options.group_size > 256) {
    throw std::invalid_argument("IntGroup: group_size must be in [1, 256]");
  }
}

std::unique_ptr<PreprocessedSet> IntGroupIntersection::Preprocess(
    std::span<const Elem> set) const {
  return std::make_unique<FixedGroupSet>(set, h_, options_.group_size);
}

namespace {

/// IntersectSmall (Algorithm 2) on (h, x)-ordered groups: AND the images,
/// then merge the contiguous h-runs per surviving y.  Appends matches in
/// (y, value) order; the caller restores global value order with one final
/// sort.
void IntersectSmall(const simd::Kernels& kernels, const FixedGroupSet& a,
                    std::size_t p, const FixedGroupSet& b, std::size_t q,
                    ElemList* out) {
  Word h_and = a.Image(p) & b.Image(q);
  if (h_and == 0) return;
  auto [alo, ahi] = a.GroupRange(p);
  auto [blo, bhi] = b.GroupRange(q);
  if (simd::Vectorized(kernels) && ahi - alo <= 64 && bhi - blo <= 64) {
    // Vector tiers probe group a against group b directly: one broadcast
    // compare covers 4/8 elements of b, no run bookkeeping.  Emission in
    // a's storage order is (h(x), x) order — exactly the (y, value) order
    // the scalar run merge below produces, since h is shared, so the two
    // strategies are bit-identical.  Very large configured groups (s > 64)
    // would make the all-pairs probe quadratic; they take the scalar path.
    kernels.match_any(a.elems().data() + alo, ahi - alo,
                      b.elems().data() + blo, bhi - blo, out);
    return;
  }
  std::span<const std::uint8_t> ha = a.hvals();
  std::span<const std::uint8_t> hb = b.hvals();
  std::span<const Elem> ea = a.elems();
  std::span<const Elem> eb = b.elems();
  std::size_t ia = alo;
  std::size_t ib = blo;
  ForEachBit(h_and, [&](int y) {
    auto uy = static_cast<std::uint8_t>(y);
    // h-runs appear in ascending y order, so cursors only move forward.
    while (ia < ahi && ha[ia] < uy) ++ia;
    while (ib < bhi && hb[ib] < uy) ++ib;
    // Linear merge of the two runs (both value-ordered).
    while (ia < ahi && ib < bhi && ha[ia] == uy && hb[ib] == uy) {
      if (ea[ia] == eb[ib]) {
        out->push_back(ea[ia]);
        ++ia;
        ++ib;
      } else if (ea[ia] < eb[ib]) {
        ++ia;
      } else {
        ++ib;
      }
    }
    // Skip whatever remains of the runs.
    while (ia < ahi && ha[ia] == uy) ++ia;
    while (ib < bhi && hb[ib] == uy) ++ib;
  });
}

}  // namespace

void IntGroupIntersection::Intersect(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  IntersectUnordered(sets, out);
  std::sort(out->begin(), out->end());
}

void IntGroupIntersection::IntersectUnordered(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  if (sets.size() > 2) {
    throw std::invalid_argument(
        "IntGroup: fixed-width partitions support two-set queries only "
        "(Section 3.1)");
  }
  if (sets.empty()) return;
  const auto& a = As<FixedGroupSet>(*sets[0]);
  if (sets.size() == 1) {
    out->assign(a.elems().begin(), a.elems().end());
    std::sort(out->begin(), out->end());
    return;
  }
  const auto& b = As<FixedGroupSet>(*sets[1]);
  if (a.size() == 0 || b.size() == 0) return;
  // Algorithm 1: advance over group pairs by value-range overlap.
  std::size_t p = 0;
  std::size_t q = 0;
  while (p < a.num_groups() && q < b.num_groups()) {
    if (b.GroupMin(q) > a.GroupMax(p)) {
      ++p;
    } else if (a.GroupMin(p) > b.GroupMax(q)) {
      ++q;
    } else {
      IntersectSmall(*kernels_, a, p, b, q, out);
      if (a.GroupMax(p) < b.GroupMax(q)) {
        ++p;
      } else {
        ++q;
      }
    }
  }
}

}  // namespace fsi
