// Common interface for all set-intersection algorithms.
//
// The paper's framework (Section 3, "Framework") separates a pre-processing
// stage — each set is reorganised once and annotated with index structures —
// from an online stage that intersects k >= 2 preprocessed sets.  Every
// algorithm in this library (the paper's four contributions, their
// compressed variants, and all nine competitor baselines) implements the
// interface below so the test suite, the benchmark harness and the examples
// can treat them uniformly.

#ifndef FSI_CORE_ALGORITHM_H_
#define FSI_CORE_ALGORITHM_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace fsi {

/// Element (document id) type.  The paper's experiments draw ids from
/// [0, 2*10^8]; 32 bits cover every workload here.
using Elem = std::uint32_t;

/// A sorted, duplicate-free list of elements — the canonical input format
/// (what an inverted index stores as a posting list).
using ElemList = std::vector<Elem>;

/// Seed every randomized algorithm derives its hash functions from when
/// the caller does not provide one (CreateAlgorithm, AlgorithmRegistry
/// and EngineOptions all default to this).
inline constexpr std::uint64_t kDefaultAlgorithmSeed = 0x6a09e667f3bcc908ULL;

/// Validates that `set` is strictly increasing; throws std::invalid_argument
/// otherwise.  O(n).  Called by fsi::Engine::Prepare when its
/// ValidationPolicy enables full validation, and by
/// DebugCheckSortedUnique in Debug builds.
inline void CheckSortedUnique(std::span<const Elem> set,
                              std::string_view algorithm) {
  for (std::size_t i = 1; i < set.size(); ++i) {
    if (set[i] <= set[i - 1]) {
      throw std::invalid_argument(
          std::string(algorithm) +
          ": input set must be sorted and duplicate-free");
    }
  }
}

/// Debug-gated input validation, called by every Preprocess implementation.
/// Full O(n) validation in Debug builds; a no-op in Release, where the
/// fsi::Engine's ValidationPolicy decides whether inputs are checked
/// (callers of the raw algorithm API are trusted there).
inline void DebugCheckSortedUnique(std::span<const Elem> set,
                                   std::string_view algorithm) {
#ifndef NDEBUG
  CheckSortedUnique(set, algorithm);
#else
  (void)set;
  (void)algorithm;
#endif
}

/// A per-set structure produced by pre-processing.  Concrete algorithms
/// subclass this; the online stage downcasts to its own type.
class PreprocessedSet {
 public:
  virtual ~PreprocessedSet() = default;

  /// Number of elements in the underlying set.
  virtual std::size_t size() const = 0;

  /// Total size of the structure in 64-bit machine words, including the
  /// element data itself — the measure used by the paper's "Size of the
  /// Data Structure" experiment.
  virtual std::size_t SizeInWords() const = 0;

  /// Number of groups in the partition-based structures (2^t for the
  /// randomized-partition algorithms); 0 when the structure has no group
  /// decomposition.  Feeds the Engine's per-query statistics.
  virtual std::uint64_t NumGroups() const { return 0; }
};

/// An intersection algorithm: a named pair of (Preprocess, Intersect).
///
/// Thread-compatibility: a const IntersectionAlgorithm and const
/// PreprocessedSets may be shared across threads; Intersect only mutates
/// `out` and per-call scratch.
class IntersectionAlgorithm {
 public:
  virtual ~IntersectionAlgorithm() = default;

  /// Human-readable name matching the paper's figures (e.g. "RanGroupScan").
  virtual std::string_view name() const = 0;

  /// Builds this algorithm's structure for one set.  `set` must be sorted
  /// and duplicate-free.  O(n log n) time, O(n) space (Theorems 3.4, 3.8,
  /// 3.10, 3.11).
  virtual std::unique_ptr<PreprocessedSet> Preprocess(
      std::span<const Elem> set) const = 0;

  /// Computes the intersection of `sets` (k >= 1; every pointer must come
  /// from this algorithm's Preprocess).  The result is sorted ascending and
  /// appended to an empty `out`.
  virtual void Intersect(std::span<const PreprocessedSet* const> sets,
                         ElemList* out) const = 0;

  /// Same result *set*, but in unspecified order.  The paper's partition-
  /// based algorithms emit the union of per-group intersections in
  /// permutation order; forcing document-id order costs an extra
  /// O(r log r), which dominates exactly in the large-r regime Figure 5
  /// studies.  The benchmark harness times this entry point (as the paper
  /// does); callers needing document order use Intersect().
  virtual void IntersectUnordered(std::span<const PreprocessedSet* const> sets,
                                  ElemList* out) const {
    Intersect(sets, out);
  }

  /// Whether the algorithm supports k-way queries (IntGroup, e.g., is
  /// specified for k == 2 only; see Section 3.1 "Limitations").
  virtual std::size_t max_query_sets() const { return SIZE_MAX; }

  /// Convenience wrapper: preprocesses and intersects plain lists in one
  /// call (used by tests and examples; benchmarks pre-build the structures).
  ElemList IntersectLists(std::span<const ElemList> lists) const;
};

/// Downcast helper with a debug-friendly failure mode.
template <typename T>
const T& As(const PreprocessedSet& set) {
  return static_cast<const T&>(set);
}

}  // namespace fsi

#endif  // FSI_CORE_ALGORITHM_H_
