#include "core/hash_bin.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/bits.h"
#include "util/rng.h"

namespace fsi {

double HashBinIntersection::StepCost(const StepCostQuery& q,
                                     const CostConstants& c) {
  double n1 = static_cast<double>(q.small_size);
  double n2 = static_cast<double>(q.large_size);
  double log_ratio = std::log2(2.0 + (n1 > 0 ? n2 / n1 : n2));
  return c.hashbin_ns * n1 * log_ratio + c.scan_result_ns * q.est_result;
}

namespace {

/// First index in `gv[lo, n)` with value >= x: exponential probe + binary
/// search, expected O(log distance).
std::size_t GallopGval(std::span<const std::uint32_t> gv, std::size_t lo,
                       std::uint64_t x) {
  std::size_t n = gv.size();
  if (lo >= n || gv[lo] >= x) return lo;
  std::size_t step = 1;
  std::size_t prev = lo;
  std::size_t cur = lo + 1;
  while (cur < n && gv[cur] < x) {
    prev = cur;
    step *= 2;
    cur = lo + step;
  }
  if (cur > n) cur = n;
  auto it = std::lower_bound(gv.begin() + static_cast<std::ptrdiff_t>(prev) + 1,
                             gv.begin() + static_cast<std::ptrdiff_t>(cur),
                             x);
  return static_cast<std::size_t>(it - gv.begin());
}

}  // namespace

GOrderedSet::GOrderedSet(std::span<const Elem> set,
                         const FeistelPermutation& g) {
  DebugCheckSortedUnique(set, "HashBin");
  if (!set.empty() && g.domain_bits() < 32 &&
      set.back() >= (Elem{1} << g.domain_bits())) {
    throw std::invalid_argument(
        "HashBin: element outside the permutation domain");
  }
  gvals_.resize(set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    gvals_[i] = static_cast<std::uint32_t>(g.Apply(set[i]));
  }
  std::sort(gvals_.begin(), gvals_.end());
}

void HashBinIntersectGvals(
    std::span<const std::span<const std::uint32_t>> gval_lists,
    int domain_bits, std::vector<std::uint32_t>* out_gvals) {
  std::size_t k = gval_lists.size();
  std::span<const std::uint32_t> lead = gval_lists[0];
  if (lead.empty()) return;
  // t = ceil(log2 n1): the smaller set has ~1 element per group.
  int t = std::min(CeilLog2(lead.size()), domain_bits);
  int shift = domain_bits - t;

  // Rolling cursors: group windows are ascending in g-value space, so every
  // boundary gallop starts from the previous one.  (Thread-local: short
  // queries are allocation-sensitive.)
  thread_local std::vector<std::size_t> win_lo;
  win_lo.assign(k, 0);
  thread_local std::vector<std::size_t> win_hi;
  win_hi.assign(k, 0);

  std::size_t p = 0;
  while (p < lead.size()) {
    std::uint64_t z = static_cast<std::uint64_t>(lead[p]) >> shift;
    // The lead set's group is the run of positions sharing prefix z.
    std::size_t group_end = p + 1;
    while (group_end < lead.size() &&
           (static_cast<std::uint64_t>(lead[group_end]) >> shift) == z) {
      ++group_end;
    }
    // Locate the group window [lo, hi) in every other list.
    std::uint64_t range_lo = z << shift;
    std::uint64_t range_hi = (z + 1) << shift;
    bool any_empty = false;
    for (std::size_t i = 1; i < k; ++i) {
      std::span<const std::uint32_t> gv = gval_lists[i];
      std::size_t lo = GallopGval(gv, win_hi[i], range_lo);
      std::size_t hi = GallopGval(gv, lo, range_hi);
      win_lo[i] = lo;
      win_hi[i] = hi;
      if (lo == hi) {
        any_empty = true;
        break;
      }
    }
    if (!any_empty) {
      for (std::size_t q = p; q < group_end; ++q) {
        std::uint32_t x = lead[q];
        bool in_all = true;
        for (std::size_t i = 1; i < k; ++i) {
          std::span<const std::uint32_t> gv = gval_lists[i];
          auto first = gv.begin() + static_cast<std::ptrdiff_t>(win_lo[i]);
          auto last = gv.begin() + static_cast<std::ptrdiff_t>(win_hi[i]);
          if (!std::binary_search(first, last, x)) {
            in_all = false;
            break;
          }
        }
        if (in_all) out_gvals->push_back(x);
      }
    }
    p = group_end;
  }
}

HashBinIntersection::HashBinIntersection(const Options& options)
    : options_(options),
      g_(options.universe_bits, SplitMix64(options.seed).Next()) {}

std::unique_ptr<PreprocessedSet> HashBinIntersection::Preprocess(
    std::span<const Elem> set) const {
  return std::make_unique<GOrderedSet>(set, g_);
}

void HashBinIntersection::Intersect(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  IntersectUnordered(sets, out);
  std::sort(out->begin(), out->end());
}

void HashBinIntersection::IntersectUnordered(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  std::size_t k = sets.size();
  if (k == 0) return;
  thread_local std::vector<const GOrderedSet*> sorted;
  sorted.clear();
  sorted.reserve(k);
  for (const PreprocessedSet* s : sets) sorted.push_back(&As<GOrderedSet>(*s));
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const GOrderedSet* a, const GOrderedSet* b) {
                     return a->size() < b->size();
                   });
  thread_local std::vector<std::uint32_t> result_gvals;
  result_gvals.clear();
  if (sorted[0]->size() == 0) return;
  if (k == 1) {
    result_gvals.assign(sorted[0]->gvals().begin(), sorted[0]->gvals().end());
  } else {
    thread_local std::vector<std::span<const std::uint32_t>> lists;
    lists.clear();
    lists.reserve(k);
    for (const GOrderedSet* s : sorted) lists.push_back(s->gvals());
    HashBinIntersectGvals(lists, g_.domain_bits(), &result_gvals);
  }
  out->reserve(result_gvals.size());
  for (std::uint32_t gv : result_gvals) {
    out->push_back(static_cast<Elem>(g_.Invert(gv)));
  }
}

}  // namespace fsi
