// Binary serialization of pre-processed structures.
//
// The paper's deployment story is an in-memory search index: posting lists
// are pre-processed once (offline, at index build time) and queried many
// times.  For that to work across process restarts the structures must be
// persistable — this module provides a versioned little-endian binary
// format for the RanGroupScan structure (the recommended default) and a
// whole-index container.
//
// Format (all integers little-endian):
//   file   := magic:u64 version:u32 count:u32 (set)*
//   set    := t:u32 m:u32 n:u64
//             group_start: (2^t + 1) * u32
//             images:      (2^t * m) * u64
//             gvals:       n * u32
//             crc:u64                          (FNV-1a over the set payload)
//
// The serialized structure embeds no hash-function state: a loaded set is
// only valid for the SAME RanGroupScanIntersection configuration (seed,
// universe_bits, m) that produced it.  Callers persist those options next
// to the file; Save/Load verify m and reject mismatches, and the CRC
// rejects torn or corrupted files.

#ifndef FSI_CORE_SERIALIZATION_H_
#define FSI_CORE_SERIALIZATION_H_

#include <iosfwd>
#include <memory>
#include <vector>

#include "core/ran_group_scan.h"

namespace fsi {

class StructureSerializer {
 public:
  /// Serializes `sets` (all produced by one RanGroupScanIntersection).
  /// Throws std::runtime_error on stream failure.
  static void Save(const std::vector<const ScanSet*>& sets,
                   std::ostream& out);

  /// Loads a file produced by Save.  `expected_m` must equal the m of the
  /// algorithm instance that will query the sets.  Throws
  /// std::runtime_error on format/CRC/m mismatch.
  static std::vector<std::unique_ptr<ScanSet>> Load(std::istream& in,
                                                    int expected_m);
};

}  // namespace fsi

#endif  // FSI_CORE_SERIALIZATION_H_
