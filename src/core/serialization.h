// Legacy binary serialization of RanGroupScan structures — DEPRECATED.
//
// This module predates the storage subsystem and survives only as a
// compatibility shim: Save/Load now delegate to the versioned snapshot
// container (storage/snapshot.h), so the bytes it produces are a regular
// snapshot file (set table + payload sections, CRC64-guarded) rather
// than the old ad-hoc "FSISCAN1" stream, and the old stream-parsing
// duplication is gone.  New code should use Engine::SaveSnapshot /
// Engine::LoadSnapshot (api/engine.h), which persist whole engines —
// every representation, planner calibration included — and load
// zero-copy via mmap.  See docs/PERSISTENCE.md.
//
// Semantics kept for existing callers: the serialized structure embeds no
// hash-function state, so a loaded set is only valid for the SAME
// RanGroupScanIntersection configuration (seed, universe_bits, m) that
// produced it; Load verifies m and rejects mismatches; every failure
// (bad magic, truncation, checksum, foreign m) throws std::runtime_error
// (storage::SnapshotError derives from it).

#ifndef FSI_CORE_SERIALIZATION_H_
#define FSI_CORE_SERIALIZATION_H_

#include <iosfwd>
#include <memory>
#include <vector>

#include "core/ran_group_scan.h"

namespace fsi {

/// DEPRECATED: use Engine::SaveSnapshot/LoadSnapshot (api/engine.h).
/// Kept (without an attribute, so -Werror builds of existing callers stay
/// green) until the last caller migrates; see docs/PERSISTENCE.md.
class StructureSerializer {
 public:
  /// Serializes `sets` (all produced by one RanGroupScanIntersection).
  /// Throws std::runtime_error on stream failure.
  static void Save(const std::vector<const ScanSet*>& sets,
                   std::ostream& out);

  /// Loads a file produced by Save.  `expected_m` must equal the m of the
  /// algorithm instance that will query the sets.  Throws
  /// std::runtime_error on format/CRC/m mismatch.
  static std::vector<std::unique_ptr<ScanSet>> Load(std::istream& in,
                                                    int expected_m);
};

}  // namespace fsi

#endif  // FSI_CORE_SERIALIZATION_H_
