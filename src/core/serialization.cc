#include "core/serialization.h"

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace fsi {
namespace {

constexpr std::uint64_t kMagic = 0x4653495343414E31ULL;  // "FSISCAN1"
constexpr std::uint32_t kVersion = 1;

/// Incremental FNV-1a over raw bytes.
class Fnv1a {
 public:
  void Update(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001B3ULL;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

void WriteRaw(std::ostream& out, const void* data, std::size_t bytes,
              Fnv1a* crc) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  if (!out) throw std::runtime_error("StructureSerializer: write failed");
  if (crc != nullptr) crc->Update(data, bytes);
}

void ReadRaw(std::istream& in, void* data, std::size_t bytes, Fnv1a* crc) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (!in) throw std::runtime_error("StructureSerializer: truncated file");
  if (crc != nullptr) crc->Update(data, bytes);
}

template <typename T>
void WriteScalar(std::ostream& out, T value, Fnv1a* crc) {
  WriteRaw(out, &value, sizeof(T), crc);
}

template <typename T>
T ReadScalar(std::istream& in, Fnv1a* crc) {
  T value;
  ReadRaw(in, &value, sizeof(T), crc);
  return value;
}

template <typename T>
void WriteVector(std::ostream& out, const std::vector<T>& v, Fnv1a* crc) {
  if (!v.empty()) WriteRaw(out, v.data(), v.size() * sizeof(T), crc);
}

template <typename T>
void ReadVector(std::istream& in, std::vector<T>* v, std::size_t count,
                Fnv1a* crc) {
  v->resize(count);
  if (count > 0) ReadRaw(in, v->data(), count * sizeof(T), crc);
}

}  // namespace

void StructureSerializer::Save(const std::vector<const ScanSet*>& sets,
                               std::ostream& out) {
  WriteScalar<std::uint64_t>(out, kMagic, nullptr);
  WriteScalar<std::uint32_t>(out, kVersion, nullptr);
  WriteScalar<std::uint32_t>(out, static_cast<std::uint32_t>(sets.size()),
                             nullptr);
  for (const ScanSet* set : sets) {
    Fnv1a crc;
    WriteScalar<std::uint32_t>(out, static_cast<std::uint32_t>(set->t_), &crc);
    WriteScalar<std::uint32_t>(out, static_cast<std::uint32_t>(set->m_), &crc);
    WriteScalar<std::uint64_t>(out, set->gvals_.size(), &crc);
    WriteVector(out, set->group_start_, &crc);
    WriteVector(out, set->images_, &crc);
    WriteVector(out, set->gvals_, &crc);
    WriteScalar<std::uint64_t>(out, crc.value(), nullptr);
  }
  out.flush();
  if (!out) throw std::runtime_error("StructureSerializer: flush failed");
}

std::vector<std::unique_ptr<ScanSet>> StructureSerializer::Load(
    std::istream& in, int expected_m) {
  if (ReadScalar<std::uint64_t>(in, nullptr) != kMagic) {
    throw std::runtime_error("StructureSerializer: bad magic");
  }
  if (ReadScalar<std::uint32_t>(in, nullptr) != kVersion) {
    throw std::runtime_error("StructureSerializer: unsupported version");
  }
  auto count = ReadScalar<std::uint32_t>(in, nullptr);
  std::vector<std::unique_ptr<ScanSet>> sets;
  sets.reserve(count);
  for (std::uint32_t s = 0; s < count; ++s) {
    Fnv1a crc;
    auto t = static_cast<int>(ReadScalar<std::uint32_t>(in, &crc));
    auto m = static_cast<int>(ReadScalar<std::uint32_t>(in, &crc));
    auto n = ReadScalar<std::uint64_t>(in, &crc);
    if (t < 0 || t > 32 || m < 1 || m > 64) {
      throw std::runtime_error("StructureSerializer: implausible header");
    }
    if (m != expected_m) {
      throw std::runtime_error(
          "StructureSerializer: structure built with a different m");
    }
    auto set = std::unique_ptr<ScanSet>(new ScanSet());
    set->t_ = t;
    set->m_ = m;
    std::size_t groups = std::size_t{1} << t;
    ReadVector(in, &set->group_start_, groups + 1, &crc);
    ReadVector(in, &set->images_, groups * static_cast<std::size_t>(m), &crc);
    ReadVector(in, &set->gvals_, n, &crc);
    auto stored_crc = ReadScalar<std::uint64_t>(in, nullptr);
    if (stored_crc != crc.value()) {
      throw std::runtime_error("StructureSerializer: checksum mismatch");
    }
    // Structural sanity: offsets monotone and consistent with n.
    if (set->group_start_.front() != 0 || set->group_start_.back() != n) {
      throw std::runtime_error("StructureSerializer: corrupt group offsets");
    }
    sets.push_back(std::move(set));
  }
  return sets;
}

}  // namespace fsi
