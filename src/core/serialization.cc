#include "core/serialization.h"

#include <cstddef>
#include <cstring>
#include <istream>
#include <iterator>
#include <ostream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "storage/layout.h"
#include "storage/snapshot.h"

namespace fsi {

void StructureSerializer::Save(const std::vector<const ScanSet*>& sets,
                               std::ostream& out) {
  storage::PayloadWriter payload;
  std::vector<storage::SetRecord> records;
  records.reserve(sets.size());
  for (const ScanSet* set : sets) {
    storage::SetRecord record;
    set->WriteFlat(payload, record);
    records.push_back(record);
  }
  storage::SnapshotWriter writer(out);
  writer.AddSection(
      storage::kSectionSetTable,
      std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(records.data()),
          records.size() * sizeof(storage::SetRecord)),
      storage::kSectionFlagCritical);
  writer.AddSection(storage::kSectionPayload, payload.bytes(),
                    storage::kSectionFlagCritical);
  writer.Finish();
}

std::vector<std::unique_ptr<ScanSet>> StructureSerializer::Load(
    std::istream& in, int expected_m) {
  // The legacy interface is stream-based, so the bytes are slurped rather
  // than mapped; Engine::LoadSnapshot is the zero-copy path.
  std::vector<char> buffer((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  storage::SnapshotReader reader(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(buffer.data()), buffer.size()));
  const auto table =
      reader.RequireSection(storage::kSectionSetTable, "set table");
  const auto payload =
      reader.RequireSection(storage::kSectionPayload, "payload");
  if (table.size() % sizeof(storage::SetRecord) != 0) {
    throw storage::SnapshotError(storage::SnapshotErrorCode::kCorrupt,
                                 "StructureSerializer: corrupt set table");
  }
  const std::size_t count = table.size() / sizeof(storage::SetRecord);
  std::vector<std::unique_ptr<ScanSet>> sets;
  sets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    storage::SetRecord record;
    std::memcpy(&record, table.data() + i * sizeof(record), sizeof(record));
    if (record.kind != static_cast<std::uint32_t>(storage::SetKind::kScan)) {
      throw storage::SnapshotError(
          storage::SnapshotErrorCode::kCorrupt,
          "StructureSerializer: not a RanGroupScan structure file");
    }
    if (static_cast<int>(record.m) != expected_m) {
      throw std::runtime_error(
          "StructureSerializer: structure built with a different m");
    }
    // Deep-copy out of the transient buffer: the legacy contract is an
    // owning structure with no backing-file lifetime to manage.
    const auto group_start = storage::ResolveSpan<std::uint32_t>(
        payload, record.group_start, "ScanSet.group_start");
    const auto images =
        storage::ResolveSpan<Word>(payload, record.images, "ScanSet.images");
    const auto gvals = storage::ResolveSpan<std::uint32_t>(
        payload, record.gvals, "ScanSet.gvals");
    sets.push_back(ScanSet::FromParts(
        record.t, static_cast<int>(record.m),
        std::vector<std::uint32_t>(group_start.begin(), group_start.end()),
        std::vector<Word>(images.begin(), images.end()),
        std::vector<std::uint32_t>(gvals.begin(), gvals.end())));
  }
  return sets;
}

}  // namespace fsi
