// The sorted delta tier of a mutable prepared set (PR 6).
//
// A mutable set is published to readers as an immutable value,
// MutableSetState: the preprocessed *base* structure built by the engine's
// algorithm, the sorted base element array it was built from, and a
// DeltaSnapshot — a sorted insert buffer plus sorted erase tombstones.
// The logical ("effective") set is
//
//     effective = (base \ erases) ∪ inserts
//
// under three invariants the writer maintains on every transition:
//
//     inserts ∩ base  = ∅      (an insert of a base member is a no-op,
//                               unless it revokes a tombstone)
//     erases  ⊆ base           (erasing a non-member is a no-op)
//     inserts ∩ erases = ∅     (immediate: they partition around base)
//
// States are copy-on-write: Insert/Erase build a *new* DeltaSnapshot
// (O(|delta|) vector copy) and publish a new state; readers hold cheap
// shared_ptr copies, so a snapshot taken mid-query stays valid across any
// number of later mutations and compactions.  This file is the pure-value
// layer: state types, the writer-side transitions, and the query-time
// fixup algorithms that merge a delta into a base-intersection result via
// the SIMD kernel table.  The concurrency machinery (epochs, compaction,
// the writer lock) lives in api/epoch.h.

#ifndef FSI_CORE_DELTA_SET_H_
#define FSI_CORE_DELTA_SET_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "core/algorithm.h"
#include "core/cost.h"
#include "simd/intersect_kernels.h"

namespace fsi {

/// The mutation tier of one mutable set: sorted insert buffer + sorted
/// erase tombstones, both immutable and shared (copy-on-write).  A null
/// pointer means "empty" (the common steady state after compaction).
struct DeltaSnapshot {
  std::shared_ptr<const ElemList> inserts;
  std::shared_ptr<const ElemList> erases;

  std::span<const Elem> insert_span() const {
    return inserts ? std::span<const Elem>(*inserts) : std::span<const Elem>();
  }
  std::span<const Elem> erase_span() const {
    return erases ? std::span<const Elem>(*erases) : std::span<const Elem>();
  }
  std::size_t size() const {
    return insert_span().size() + erase_span().size();
  }
  bool empty() const { return size() == 0; }
};

/// One published version of a mutable set.  Immutable once published;
/// readers copy the whole struct (five shared_ptr/scalar fields) under an
/// epoch guard and then own a consistent snapshot outright.
struct MutableSetState {
  /// The engine algorithm's structure over `base` (never null).
  std::shared_ptr<const PreprocessedSet> structure;
  /// The sorted element array `structure` was built from (never null).
  std::shared_ptr<const ElemList> base;
  DeltaSnapshot delta;
  /// |effective| = |base| - |erases| + |inserts|.
  std::size_t live_size = 0;
  /// Monotone per-set version; bumped by every mutation and compaction.
  std::uint64_t version = 0;
};

/// Writer-side transition for Insert(value).  Returns the successor delta
/// when the effective set changes, std::nullopt for a no-op (value already
/// effective-present).  Pure: never mutates its inputs.
std::optional<DeltaSnapshot> DeltaInsert(std::span<const Elem> base,
                                         const DeltaSnapshot& delta,
                                         Elem value);

/// Writer-side transition for Erase(value); std::nullopt when value is not
/// effective-present.
std::optional<DeltaSnapshot> DeltaErase(std::span<const Elem> base,
                                        const DeltaSnapshot& delta,
                                        Elem value);

/// Membership in the effective set (sorted binary-search probes).
bool EffectiveContains(std::span<const Elem> base, const DeltaSnapshot& delta,
                       Elem value, const simd::Kernels& kernels);

/// Materializes the effective element list (base \ erases) ∪ inserts in
/// sorted order — the compaction rebuild input.
ElemList MergeEffective(std::span<const Elem> base, const DeltaSnapshot& delta);

/// Query-time fixup, step 1 (tombstones): removes every member of sorted
/// `erases` from `*result` in place.  The ordered variant is a two-cursor
/// linear merge (one compare per result element); the unordered variant
/// screens each element through a Bloom-style one-bit gate built from the
/// tombstones and only falls back to the vectorized lower_bound on a hit.
void SubtractSortedInPlace(ElemList* result, std::span<const Elem> erases,
                           const simd::Kernels& kernels);
void SubtractUnorderedInPlace(ElemList* result, std::span<const Elem> erases,
                              const simd::Kernels& kernels);

/// Query-time fixup, step 2a (candidates): the sorted duplicate-free union
/// of the insert buffers of all query sets.  Any element newly joining the
/// intersection must come from here — an element absent from every insert
/// buffer is in every effective set iff it is in every base, and then the
/// base intersection already found it.
ElemList UnionInsertBuffers(std::span<const DeltaSnapshot* const> deltas);

/// Query-time fixup, step 2b: filters `*candidates` in place to those in
/// the effective set (binary-search probes into base/delta).  Preserves
/// order.
void FilterByEffectiveMembership(ElemList* candidates,
                                 std::span<const Elem> base,
                                 const DeltaSnapshot& delta,
                                 const simd::Kernels& kernels);

/// Query-time fixup, step 2c: intersects sorted `*candidates` in place with
/// a sorted element span, using galloping probes with an advancing cursor —
/// O(|candidates| · log) rather than a full O(|elems|) merge, which matters
/// because the candidate list is tiny next to a full set.
void IntersectWithSortedSpan(ElemList* candidates, std::span<const Elem> elems,
                             const simd::Kernels& kernels);

/// Query-time fixup, step 3: folds sorted `extra` (disjoint from *result)
/// into sorted `*result` by linear merge.
void MergeSortedDisjointInPlace(ElemList* result, std::span<const Elem> extra,
                                const simd::Kernels& kernels);

/// Cost-model hook: predicted microseconds of the delta fixup for a query
/// with `num_sets` input sets whose base intersection is estimated at
/// `est_result` elements, given the total tombstone and insert-buffer
/// volumes across the query's mutable sets.  Mirrors the shape of the
/// planner's step costs (core/cost.h): tombstone subtraction is a merge
/// walk, candidate filtering is num_sets galloping probes per candidate.
double DeltaFixupMicros(std::size_t num_sets, double est_result,
                        std::size_t total_erases, std::size_t total_inserts,
                        std::size_t max_base_size, const CostConstants& cost);

}  // namespace fsi

#endif  // FSI_CORE_DELTA_SET_H_
