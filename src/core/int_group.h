// IntGroup: intersection via fixed-width partitions (Section 3.1,
// Algorithms 1 & 2).
//
// Pre-processing sorts each set and cuts it into groups of sqrt(w) = 8
// consecutive elements; each group carries the single-word image h(L^p) of
// its elements under the word hash h.  Online (Algorithm 1), the two group
// sequences are scanned in parallel; pairs with overlapping value ranges are
// intersected by IntersectSmall (Algorithm 2): AND the images, then for each
// surviving h-value y linearly merge the inverted mappings h^{-1}(y, .).
//
// Inverted mappings are stored implicitly: within a group, elements are
// reordered by (h(x), x), so every h^{-1}(y, L^p) is a contiguous run, the
// runs appear in ascending y order, and elements inside a run are in value
// order — "the order of these elements is identical across different
// h^{-1}(y, L^j_i)'s and L_i's", which is what lets two runs be intersected
// by a linear merge.  Expected time O((n1+n2)/sqrt(w) + r) (Theorem 3.3).
//
// The group width is configurable (default sqrt(w)); the A.1.1 analysis of
// group-size effects is exercised by the abl_group_width benchmark.
// As Section 3.1 notes ("Limitations of Fixed-Width Partitions"), the
// scheme does not extend past two sets, so max_query_sets() == 2.

#ifndef FSI_CORE_INT_GROUP_H_
#define FSI_CORE_INT_GROUP_H_

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/algorithm.h"
#include "hash/universal_hash.h"
#include "simd/intersect_kernels.h"
#include "util/bits.h"

namespace fsi {

/// Preprocessed form: value-partitioned groups with (h, x)-ordered contents.
class FixedGroupSet : public PreprocessedSet {
 public:
  FixedGroupSet(std::span<const Elem> set, const WordHash& h,
                std::size_t group_size);

  std::size_t size() const override { return elems_.size(); }
  std::size_t SizeInWords() const override;

  std::size_t group_size() const { return group_size_; }
  std::size_t num_groups() const { return images_.size(); }

  Word Image(std::size_t p) const { return images_[p]; }
  Elem GroupMin(std::size_t p) const { return mins_[p]; }
  Elem GroupMax(std::size_t p) const { return maxs_[p]; }

  /// Half-open element-position range of group p.
  std::pair<std::size_t, std::size_t> GroupRange(std::size_t p) const {
    std::size_t lo = p * group_size_;
    std::size_t hi = lo + group_size_;
    if (hi > elems_.size()) hi = elems_.size();
    return {lo, hi};
  }

  std::span<const Elem> elems() const { return elems_; }
  std::span<const std::uint8_t> hvals() const { return hvals_; }

 private:
  std::size_t group_size_;
  std::vector<Elem> elems_;          // grouped, (h, x)-ordered within groups
  std::vector<std::uint8_t> hvals_;  // h(x) per stored element
  std::vector<Word> images_;         // h(L^p) per group
  std::vector<Elem> mins_;           // inf(L^p)
  std::vector<Elem> maxs_;           // sup(L^p)
};

class IntGroupIntersection : public IntersectionAlgorithm {
 public:
  struct Options {
    std::uint64_t seed = 0x082efa98ec4e6c89ULL;
    /// Elements per group; the paper's choice is sqrt(w) = 8 (Theorem 3.3
    /// and A.1.1 analyse the trade-off).
    std::size_t group_size = kSqrtWordBits;
    /// Kernel tier for the group-vs-group comparison (registry option key
    /// "simd": auto|off).  The vector tiers compare one element against a
    /// whole group per broadcast; the scalar tier walks the (h, x)-ordered
    /// runs.  Output is bit-identical either way.
    simd::Mode simd = simd::Mode::kAuto;
  };

  IntGroupIntersection() : IntGroupIntersection(Options()) {}
  explicit IntGroupIntersection(const Options& options);

  std::string_view name() const override { return "IntGroup"; }

  std::unique_ptr<PreprocessedSet> Preprocess(
      std::span<const Elem> set) const override;

  void Intersect(std::span<const PreprocessedSet* const> sets,
                 ElemList* out) const override;

  void IntersectUnordered(std::span<const PreprocessedSet* const> sets,
                          ElemList* out) const override;

  std::size_t max_query_sets() const override { return 2; }

 private:
  Options options_;
  WordHash h_;
  const simd::Kernels* kernels_;
};

}  // namespace fsi

#endif  // FSI_CORE_INT_GROUP_H_
