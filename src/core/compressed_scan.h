// Compressed RanGroupScan (Section 4.1 + Appendix B).
//
// Three codecs over the same group-block format (Appendix B):
//   [unary |L^z|] [m image words, present only if |L^z| > 0] [elements]
//
//  * kLowbits — the paper's own scheme: since z = g_t(x) is the element's
//    position in the stream, only the low (b - t) bits of g(x) are stored,
//    at a *fixed* width.  Decoding is a shift-or, and an entire skipped
//    group costs one O(1) bit-cursor jump — this is why Lowbits wins
//    Figure 8 by a wide margin.
//  * kGamma / kDelta — the standard Elias codes ([23] p.116) over in-group
//    gaps.  Variable width: a filtered group must still be decoded (and
//    discarded) to find the next block, so decompression dominates.
//
// Online processing is Algorithm 5 run over k sequential bit streams: group
// headers are consumed in z order (every group id of every set is visited
// ascending, so a strictly forward cursor suffices), images feed the
// memoized filter, and only surviving windows decode their elements.

#ifndef FSI_CORE_COMPRESSED_SCAN_H_
#define FSI_CORE_COMPRESSED_SCAN_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "codec/bit_stream.h"
#include "core/algorithm.h"
#include "hash/feistel.h"
#include "hash/universal_hash.h"
#include "util/bits.h"

namespace fsi {

enum class ScanCodec { kLowbits, kGamma, kDelta };

/// Preprocessed form: one bit stream of group blocks.
class CompressedScanSet : public PreprocessedSet {
 public:
  CompressedScanSet(std::span<const Elem> set, const FeistelPermutation& g,
                    const WordHashFamily& hashes, int t, ScanCodec codec);

  std::size_t size() const override { return n_; }
  std::size_t SizeInWords() const override { return bits_.size() + 2; }

  int t() const { return t_; }
  ScanCodec codec() const { return codec_; }
  const std::vector<std::uint64_t>& bits() const { return bits_; }
  std::size_t bit_count() const { return bit_count_; }

 private:
  std::size_t n_;
  int t_;
  ScanCodec codec_;
  std::vector<std::uint64_t> bits_;
  std::size_t bit_count_;
};

class CompressedScanIntersection : public IntersectionAlgorithm {
 public:
  struct Options {
    std::uint64_t seed = 0xbe5466cf34e90c6cULL;  // matches RanGroupScan
    int universe_bits = 32;
    /// Section 4.1 uses m = 1 for the compressed experiments ("since we are
    /// interested in small structures here").
    int m = 1;
    ScanCodec codec = ScanCodec::kLowbits;
  };

  CompressedScanIntersection() : CompressedScanIntersection(Options()) {}
  explicit CompressedScanIntersection(const Options& options);

  std::string_view name() const override { return name_; }

  std::unique_ptr<PreprocessedSet> Preprocess(
      std::span<const Elem> set) const override;

  void Intersect(std::span<const PreprocessedSet* const> sets,
                 ElemList* out) const override;

  void IntersectUnordered(std::span<const PreprocessedSet* const> sets,
                          ElemList* out) const override;

 private:
  Options options_;
  std::string name_;
  FeistelPermutation g_;
  WordHashFamily hashes_;
};

}  // namespace fsi

#endif  // FSI_CORE_COMPRESSED_SCAN_H_
