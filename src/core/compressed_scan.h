// Compressed RanGroupScan (Section 4.1 + Appendix B).
//
// Three codecs over the same group-block format (Appendix B):
//   [unary |L^z|] [m image words, present only if |L^z| > 0] [elements]
//
//  * kLowbits — the paper's own scheme: since z = g_t(x) is the element's
//    position in the stream, only the low (b - t) bits of g(x) are stored,
//    at a *fixed* width.  Decoding is a shift-or, and an entire skipped
//    group costs one O(1) bit-cursor jump — this is why Lowbits wins
//    Figure 8 by a wide margin.
//  * kGamma / kDelta — the standard Elias codes ([23] p.116) over in-group
//    gaps.  Variable width: a filtered group must still be decoded (and
//    discarded) to find the next block, so decompression dominates.
//
// The stream is organized as fixed-size decode blocks: every kSkipStride-th
// group's bit offset is recorded in a skip directory built at encode time,
// so intersection can gallop over dead regions (the Algorithm-5 image
// filter frequently eliminates whole runs of groups) without touching the
// bits in between — for the Elias codecs this removes the
// decode-to-discard penalty for skipped strides.  Surviving blocks decode
// through the vectorized kernels in simd/decode_kernels.h (fixed-width
// unpack for Lowbits, gap prefix-sum for γ/δ), selected per algorithm
// instance with the standard "simd=auto|off" option.
//
// Online processing is Algorithm 5 run over k bit streams: group headers
// are consumed in z order (forward cursor + skip-directory jumps), images
// feed the memoized filter, and only surviving windows decode elements.

#ifndef FSI_CORE_COMPRESSED_SCAN_H_
#define FSI_CORE_COMPRESSED_SCAN_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "codec/bit_stream.h"
#include "core/algorithm.h"
#include "core/cost.h"
#include "hash/feistel.h"
#include "hash/universal_hash.h"
#include "simd/decode_kernels.h"
#include "util/bits.h"

namespace fsi {

enum class ScanCodec { kLowbits, kGamma, kDelta };

/// Preprocessed form: one bit stream of group blocks plus a skip directory.
class CompressedScanSet : public PreprocessedSet {
 public:
  /// Groups per decode block: one skip-directory entry (the absolute bit
  /// offset of the block's first group header) every kSkipStride groups.
  static constexpr std::uint64_t kSkipStride = 8;

  CompressedScanSet(std::span<const Elem> set, const FeistelPermutation& g,
                    const WordHashFamily& hashes, int t, ScanCodec codec);

  std::size_t size() const override { return n_; }
  std::size_t SizeInWords() const override {
    return bits_.size() + skips_.size() + 2;
  }

  int t() const { return t_; }
  ScanCodec codec() const { return codec_; }
  const std::vector<std::uint64_t>& bits() const { return bits_; }
  std::size_t bit_count() const { return bit_count_; }
  /// Bit offset of group (i * kSkipStride)'s header, i per directory slot.
  const std::vector<std::uint64_t>& skips() const { return skips_; }
  /// Largest original element (0 for an empty set) — the planner's
  /// universe bound without decoding.
  Elem max_elem() const { return max_elem_; }

  /// Rebuilds a set from snapshot parts (owning copies of the arrays).
  /// Runs the same full-stream validation as Validate(); throws
  /// storage::SnapshotError(kCorrupt) on any malformed input.
  static std::unique_ptr<CompressedScanSet> FromParts(
      std::size_t n, int t, ScanCodec codec, Elem max_elem,
      std::vector<std::uint64_t> bits, std::size_t bit_count,
      std::vector<std::uint64_t> skips, int m, int domain_bits);

  /// Checked walk of the whole stream: every read bounds-checked against
  /// bit_count, group lengths sum to n, skip directory matches the actual
  /// block offsets, the stream ends exactly at bit_count.  Throws
  /// storage::SnapshotError(kCorrupt) on violation.  After this passes,
  /// the (assert-only) runtime decode paths cannot read out of bounds.
  void Validate(int m, int domain_bits) const;

 private:
  CompressedScanSet() = default;

  std::size_t n_ = 0;
  int t_ = 0;
  ScanCodec codec_ = ScanCodec::kLowbits;
  Elem max_elem_ = 0;
  std::vector<std::uint64_t> bits_;
  std::size_t bit_count_ = 0;
  std::vector<std::uint64_t> skips_;
};

class CompressedScanIntersection : public IntersectionAlgorithm {
 public:
  struct Options {
    std::uint64_t seed = 0xbe5466cf34e90c6cULL;  // matches RanGroupScan
    int universe_bits = 32;
    /// Section 4.1 uses m = 1 for the compressed experiments ("since we are
    /// interested in small structures here").
    int m = 1;
    ScanCodec codec = ScanCodec::kLowbits;
    /// Decode kernel tier (registry option key "simd": auto|off).  kAuto
    /// dispatches on the CPU at startup; kOff keeps the scalar loops.
    /// Output is bit-identical either way.
    simd::Mode simd = simd::Mode::kAuto;
  };

  CompressedScanIntersection() : CompressedScanIntersection(Options()) {}
  explicit CompressedScanIntersection(const Options& options);

  /// Planner cost hook (core/cost.h): every surviving block must be
  /// decoded before it can be scanned, so the per-element constant is the
  /// calibrated decode+scan rate —
  /// cost = decode_ns * (n1 + n2) + scan_result_ns * r.
  static double StepCost(const StepCostQuery& q, const CostConstants& c);

  std::string_view name() const override { return name_; }

  std::unique_ptr<PreprocessedSet> Preprocess(
      std::span<const Elem> set) const override;

  void Intersect(std::span<const PreprocessedSet* const> sets,
                 ElemList* out) const override;

  void IntersectUnordered(std::span<const PreprocessedSet* const> sets,
                          ElemList* out) const override;

  const FeistelPermutation& permutation() const { return g_; }
  int m() const { return options_.m; }

 private:
  Options options_;
  std::string name_;
  FeistelPermutation g_;
  WordHashFamily hashes_;
  const simd::DecodeKernels* decode_;
};

}  // namespace fsi

#endif  // FSI_CORE_COMPRESSED_SCAN_H_
