// RanGroup: intersection via randomized partitions (Section 3.2,
// Algorithms 3 & 4) on top of the multi-resolution structure (Section 3.2.1).
//
// Pre-processing partitions each set L_i by the t_i most significant bits of
// a shared random permutation g; each group L^z_i carries a single-word hash
// image h(L^z_i) and inverted mappings (first/next chains).  Online, for
// each finest group id z_k, the t_i-prefixes z_i select one group per set;
// IntersectSmall (Algorithm 2, extended to k sets) first ANDs the k word
// images and only touches elements whose h-value survives — in expectation
// O(1) spurious element pairs per group combination (Theorems 3.5-3.7:
// O(n/sqrt(w) + kr) total for k sets).
//
// Two refinements from the paper's appendix are implemented:
//   * partial ANDs of images are memoized across group ids sharing prefixes
//     (A.3(a)), so image words are fetched O(sum_i 2^t_i) times in total;
//   * a zero partial AND at level i skips *all* z_k sharing that z_i prefix.

#ifndef FSI_CORE_RAN_GROUP_H_
#define FSI_CORE_RAN_GROUP_H_

#include <memory>
#include <span>
#include <string_view>

#include "core/algorithm.h"
#include "core/multi_resolution.h"
#include "hash/feistel.h"
#include "hash/universal_hash.h"

namespace fsi {

class RanGroupIntersection : public IntersectionAlgorithm {
 public:
  struct Options {
    /// Seed for the shared permutation g and word hash h.
    std::uint64_t seed = 0xa4093822299f31d0ULL;
    /// Even number of bits covering the element universe.
    int universe_bits = 32;
    /// For two-set queries, use the balanced resolution of Theorem 3.5
    /// (t1 = t2 = ceil(log sqrt(n1*n2/w)), expected O(sqrt(n1 n2 / w) + r))
    /// instead of the size-dependent resolutions of Theorem 3.6.
    bool two_set_optimal = true;
    /// Materialize only the default resolution per set (end of
    /// Section 3.2.1): smaller structures, but two_set_optimal is then
    /// unavailable and is ignored.
    bool single_resolution = false;
  };

  RanGroupIntersection() : RanGroupIntersection(Options()) {}
  explicit RanGroupIntersection(const Options& options);

  std::string_view name() const override { return "RanGroup"; }

  std::unique_ptr<PreprocessedSet> Preprocess(
      std::span<const Elem> set) const override;

  void Intersect(std::span<const PreprocessedSet* const> sets,
                 ElemList* out) const override;

  void IntersectUnordered(std::span<const PreprocessedSet* const> sets,
                          ElemList* out) const override;

  const FeistelPermutation& permutation() const { return g_; }

 private:
  Options options_;
  FeistelPermutation g_;
  WordHash h_;
};

}  // namespace fsi

#endif  // FSI_CORE_RAN_GROUP_H_
