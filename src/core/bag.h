// Bag (multiset) intersection.
//
// Section 3 of the paper: "Our approach can be extended to bag semantics by
// additionally storing element frequency."  This module implements that
// extension: a Bag is a sorted list of (element, count) pairs; bag
// intersection keeps each common element with the *minimum* of its counts
// (standard multiset-intersection semantics, as in SQL INTERSECT ALL).
//
// The design follows the paper's suggestion literally: the distinct
// elements are intersected by any IntersectionAlgorithm (so all the speed
// of the group-filtering machinery carries over), and frequencies are then
// resolved by rank lookups into the per-bag count arrays.

#ifndef FSI_CORE_BAG_H_
#define FSI_CORE_BAG_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/algorithm.h"

namespace fsi {

/// One element with its multiplicity.
struct BagEntry {
  Elem element;
  std::uint32_t count;

  friend bool operator==(const BagEntry&, const BagEntry&) = default;
};

/// A preprocessed bag: the distinct-element structure of the wrapped
/// algorithm plus a parallel count array.
class PreprocessedBag {
 public:
  PreprocessedBag(std::unique_ptr<PreprocessedSet> distinct,
                  std::vector<Elem> elements, std::vector<std::uint32_t> counts)
      : distinct_(std::move(distinct)),
        elements_(std::move(elements)),
        counts_(std::move(counts)) {}

  const PreprocessedSet* distinct() const { return distinct_.get(); }

  /// Multiplicity of `x` (0 if absent).  O(log n).
  std::uint32_t CountOf(Elem x) const;

  std::size_t distinct_size() const { return elements_.size(); }

  std::size_t SizeInWords() const {
    return distinct_->SizeInWords() +
           (elements_.size() * sizeof(Elem) + 7) / 8 +
           (counts_.size() * sizeof(std::uint32_t) + 7) / 8;
  }

 private:
  std::unique_ptr<PreprocessedSet> distinct_;
  std::vector<Elem> elements_;          // sorted distinct elements
  std::vector<std::uint32_t> counts_;   // parallel multiplicities
};

/// Bag intersection on top of any set-intersection algorithm.
class BagIntersection {
 public:
  /// Keeps a non-owning pointer; `algorithm` must outlive this object.
  explicit BagIntersection(const IntersectionAlgorithm* algorithm)
      : algorithm_(algorithm) {}

  /// Pre-processes a bag given as sorted (element, count) pairs with
  /// strictly increasing elements and counts >= 1.
  std::unique_ptr<PreprocessedBag> Preprocess(
      std::span<const BagEntry> bag) const;

  /// Convenience: pre-processes a sorted multiset given with repetitions
  /// (e.g. {1, 1, 2, 5, 5, 5}).
  std::unique_ptr<PreprocessedBag> PreprocessMultiset(
      std::span<const Elem> multiset) const;

  /// Intersects k >= 1 bags: common elements with minimum multiplicities,
  /// sorted by element.
  std::vector<BagEntry> Intersect(
      std::span<const PreprocessedBag* const> bags) const;

 private:
  const IntersectionAlgorithm* algorithm_;
};

}  // namespace fsi

#endif  // FSI_CORE_BAG_H_
