#include "core/intersector.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "api/registry.h"

namespace fsi {

double HybridIntersection::StepCost(const StepCostQuery& q,
                                    const CostConstants& c) {
  return std::min(RanGroupScanIntersection::StepCost(q, c),
                  HashBinIntersection::StepCost(q, c));
}

HybridIntersection::HybridIntersection(const Options& options)
    : options_(options), scan_(options.scan) {}

std::unique_ptr<PreprocessedSet> HybridIntersection::Preprocess(
    std::span<const Elem> set) const {
  return scan_.Preprocess(set);
}

void HybridIntersection::Intersect(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  IntersectUnordered(sets, out);
  std::sort(out->begin(), out->end());
}

void HybridIntersection::IntersectUnordered(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  std::size_t k = sets.size();
  if (k < 2) {
    scan_.IntersectUnordered(sets, out);
    return;
  }
  std::size_t min_n = SIZE_MAX;
  std::size_t max_n = 0;
  for (const PreprocessedSet* s : sets) {
    min_n = std::min(min_n, s->size());
    max_n = std::max(max_n, s->size());
  }
  if (min_n == 0) return;
  double ratio = static_cast<double>(max_n) / static_cast<double>(min_n);
  if (ratio < options_.skew_threshold) {
    scan_.IntersectUnordered(sets, out);
    return;
  }
  // HashBin path on the shared structure: ScanSet's g-value array is
  // globally ascending, which is all HashBin needs.
  thread_local std::vector<const ScanSet*> sorted;
  sorted.clear();
  sorted.reserve(k);
  for (const PreprocessedSet* s : sets) sorted.push_back(&As<ScanSet>(*s));
  std::stable_sort(
      sorted.begin(), sorted.end(),
      [](const ScanSet* a, const ScanSet* b) { return a->size() < b->size(); });
  thread_local std::vector<std::span<const std::uint32_t>> lists;
  lists.clear();
  lists.reserve(k);
  for (const ScanSet* s : sorted) lists.push_back(s->gvals());
  thread_local std::vector<std::uint32_t> result_gvals;
  result_gvals.clear();
  HashBinIntersectGvals(lists, scan_.permutation().domain_bits(),
                        &result_gvals);
  out->reserve(result_gvals.size());
  for (std::uint32_t gv : result_gvals) {
    out->push_back(static_cast<Elem>(scan_.permutation().Invert(gv)));
  }
}

// Legacy entry points, kept as thin shims over the descriptor registry
// (api/registry.h) — the former if-chain lives there as self-contained
// descriptors with option-string parsing.

std::unique_ptr<IntersectionAlgorithm> CreateAlgorithm(std::string_view name,
                                                       std::uint64_t seed) {
  return AlgorithmRegistry::Global().Create(name, seed);
}

std::vector<std::string_view> UncompressedAlgorithmNames() {
  return AlgorithmRegistry::Global().Names(/*compressed=*/false,
                                           /*include_hidden=*/false);
}

std::vector<std::string_view> CompressedAlgorithmNames() {
  return AlgorithmRegistry::Global().Names(/*compressed=*/true,
                                           /*include_hidden=*/false);
}

}  // namespace fsi
