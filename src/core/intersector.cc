#include "core/intersector.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "baseline/adaptive.h"
#include "baseline/baeza_yates.h"
#include "baseline/bpp.h"
#include "baseline/compressed_baselines.h"
#include "baseline/hash_intersect.h"
#include "baseline/lookup.h"
#include "baseline/merge.h"
#include "baseline/skip_list_intersect.h"
#include "baseline/small_adaptive.h"
#include "baseline/svs.h"
#include "core/compressed_scan.h"
#include "core/int_group.h"
#include "core/ran_group.h"

namespace fsi {

HybridIntersection::HybridIntersection(const Options& options)
    : options_(options), scan_(options.scan) {}

std::unique_ptr<PreprocessedSet> HybridIntersection::Preprocess(
    std::span<const Elem> set) const {
  return scan_.Preprocess(set);
}

void HybridIntersection::Intersect(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  IntersectUnordered(sets, out);
  std::sort(out->begin(), out->end());
}

void HybridIntersection::IntersectUnordered(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  std::size_t k = sets.size();
  if (k < 2) {
    scan_.IntersectUnordered(sets, out);
    return;
  }
  std::size_t min_n = SIZE_MAX;
  std::size_t max_n = 0;
  for (const PreprocessedSet* s : sets) {
    min_n = std::min(min_n, s->size());
    max_n = std::max(max_n, s->size());
  }
  if (min_n == 0) return;
  double ratio = static_cast<double>(max_n) / static_cast<double>(min_n);
  if (ratio < options_.skew_threshold) {
    scan_.IntersectUnordered(sets, out);
    return;
  }
  // HashBin path on the shared structure: ScanSet's g-value array is
  // globally ascending, which is all HashBin needs.
  thread_local std::vector<const ScanSet*> sorted;
  sorted.clear();
  sorted.reserve(k);
  for (const PreprocessedSet* s : sets) sorted.push_back(&As<ScanSet>(*s));
  std::stable_sort(
      sorted.begin(), sorted.end(),
      [](const ScanSet* a, const ScanSet* b) { return a->size() < b->size(); });
  thread_local std::vector<std::span<const std::uint32_t>> lists;
  lists.clear();
  lists.reserve(k);
  for (const ScanSet* s : sorted) lists.push_back(s->gvals());
  thread_local std::vector<std::uint32_t> result_gvals;
  result_gvals.clear();
  HashBinIntersectGvals(lists, scan_.permutation().domain_bits(),
                        &result_gvals);
  out->reserve(result_gvals.size());
  for (std::uint32_t gv : result_gvals) {
    out->push_back(static_cast<Elem>(scan_.permutation().Invert(gv)));
  }
}

std::unique_ptr<IntersectionAlgorithm> CreateAlgorithm(std::string_view name,
                                                       std::uint64_t seed) {
  if (name == "Merge") return std::make_unique<MergeIntersection>();
  if (name == "SkipList") return std::make_unique<SkipListIntersection>(seed);
  if (name == "Hash") return std::make_unique<HashIntersection>(seed);
  if (name == "BPP") return std::make_unique<BppIntersection>(seed);
  if (name == "Lookup") return std::make_unique<LookupIntersection>();
  if (name == "SvS") return std::make_unique<SvsIntersection>();
  if (name == "Adaptive") return std::make_unique<AdaptiveIntersection>();
  if (name == "BaezaYates") {
    return std::make_unique<BaezaYatesIntersection>();
  }
  if (name == "SmallAdaptive") {
    return std::make_unique<SmallAdaptiveIntersection>();
  }
  if (name == "IntGroup") {
    IntGroupIntersection::Options o;
    o.seed = seed;
    return std::make_unique<IntGroupIntersection>(o);
  }
  if (name == "RanGroup") {
    RanGroupIntersection::Options o;
    o.seed = seed;
    return std::make_unique<RanGroupIntersection>(o);
  }
  if (name == "RanGroupScan" || name == "RanGroupScan2") {
    RanGroupScanIntersection::Options o;
    o.seed = seed;
    o.m = (name == "RanGroupScan2") ? 2 : 4;
    return std::make_unique<RanGroupScanIntersection>(o);
  }
  if (name == "HashBin") {
    HashBinIntersection::Options o;
    o.seed = seed;
    return std::make_unique<HashBinIntersection>(o);
  }
  if (name == "Hybrid") {
    HybridIntersection::Options o;
    o.scan.seed = seed;
    return std::make_unique<HybridIntersection>(o);
  }
  if (name == "Merge_Gamma") {
    return std::make_unique<CompressedMergeIntersection>(EliasCodec::kGamma);
  }
  if (name == "Merge_Delta") {
    return std::make_unique<CompressedMergeIntersection>(EliasCodec::kDelta);
  }
  if (name == "Lookup_Gamma") {
    return std::make_unique<CompressedLookupIntersection>(EliasCodec::kGamma);
  }
  if (name == "Lookup_Delta") {
    return std::make_unique<CompressedLookupIntersection>(EliasCodec::kDelta);
  }
  if (name == "RanGroupScan_Lowbits" || name == "RanGroupScan_Gamma" ||
      name == "RanGroupScan_Delta") {
    CompressedScanIntersection::Options o;
    o.seed = seed;
    o.codec = name == "RanGroupScan_Lowbits" ? ScanCodec::kLowbits
              : name == "RanGroupScan_Gamma" ? ScanCodec::kGamma
                                             : ScanCodec::kDelta;
    return std::make_unique<CompressedScanIntersection>(o);
  }
  throw std::invalid_argument("CreateAlgorithm: unknown algorithm '" +
                              std::string(name) + "'");
}

std::vector<std::string_view> UncompressedAlgorithmNames() {
  return {"Merge",      "SkipList",   "Hash",         "BPP",
          "Lookup",     "SvS",        "Adaptive",     "BaezaYates",
          "SmallAdaptive", "IntGroup", "RanGroup",    "RanGroupScan",
          "HashBin",    "Hybrid"};
}

std::vector<std::string_view> CompressedAlgorithmNames() {
  return {"Merge_Gamma",        "Merge_Delta",        "Lookup_Gamma",
          "Lookup_Delta",       "RanGroupScan_Lowbits", "RanGroupScan_Gamma",
          "RanGroupScan_Delta"};
}

}  // namespace fsi
