#include "core/ran_group.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace fsi {

RanGroupIntersection::RanGroupIntersection(const Options& options)
    : options_(options),
      g_(options.universe_bits, SplitMix64(options.seed).Next()),
      h_(SplitMix64(options.seed ^ 0x452821e638d01377ULL).Next()) {}

std::unique_ptr<PreprocessedSet> RanGroupIntersection::Preprocess(
    std::span<const Elem> set) const {
  return std::make_unique<MultiResolutionSet>(set, g_, h_,
                                              options_.single_resolution);
}

void RanGroupIntersection::Intersect(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  IntersectUnordered(sets, out);
  std::sort(out->begin(), out->end());
}

void RanGroupIntersection::IntersectUnordered(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  std::size_t k = sets.size();
  if (k == 0) return;
  std::vector<const MultiResolutionSet*> sorted;
  sorted.reserve(k);
  for (const PreprocessedSet* s : sets) {
    sorted.push_back(&As<MultiResolutionSet>(*s));
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const MultiResolutionSet* a,
                      const MultiResolutionSet* b) {
                     return a->size() < b->size();
                   });
  std::vector<std::uint32_t> result_gvals;
  if (sorted[0]->size() == 0) return;
  if (k == 1) {
    result_gvals.assign(sorted[0]->gvals().begin(), sorted[0]->gvals().end());
  } else {
    // --- Resolution choice -------------------------------------------------
    std::vector<int> t(k);
    if (k == 2 && options_.two_set_optimal && !options_.single_resolution) {
      // Theorem 3.5: t1 = t2 = ceil(log2 sqrt(n1*n2/w)).
      double n1 = static_cast<double>(sorted[0]->size());
      double n2 = static_cast<double>(sorted[1]->size());
      int bal = static_cast<int>(
          std::ceil(0.5 * std::log2(std::max(1.0, n1 * n2 / kWordBits))));
      t[0] = sorted[0]->ClampResolution(bal);
      t[1] = sorted[1]->ClampResolution(bal);
    } else {
      // Theorems 3.6 / 3.7: t_i = ceil(log2(n_i / sqrt(w))).
      for (std::size_t i = 0; i < k; ++i) {
        t[i] = sorted[i]->DefaultResolution();
      }
    }
    // The prefix relation requires t_1 <= t_2 <= ... <= t_k.
    for (std::size_t i = k - 1; i > 0; --i) {
      t[i - 1] = std::min(t[i - 1], t[i]);
    }
    for (std::size_t i = 0; i < k; ++i) {
      if (!sorted[i]->HasResolution(t[i])) {
        throw std::logic_error(
            "RanGroup: required resolution not materialized (structure was "
            "built single-resolution?)");
      }
    }

    // --- Algorithm 4 main loop --------------------------------------------
    int tk = t[k - 1];
    std::uint64_t zk_count = std::uint64_t{1} << tk;
    std::vector<Word> partial(k, 0);
    std::vector<std::uint64_t> prev_z(k, ~std::uint64_t{0});
    std::vector<std::uint32_t> pos(k);
    std::vector<std::uint32_t> end(k);
    std::uint64_t zk = 0;
    while (zk < zk_count) {
      // Find the shallowest level whose group id changed; recompute the
      // memoized partial ANDs from there (A.3(a)).
      std::size_t level = k;
      for (std::size_t i = 0; i < k; ++i) {
        std::uint64_t zi = zk >> (tk - t[i]);
        if (zi != prev_z[i]) {
          level = i;
          break;
        }
      }
      bool dead = false;
      for (std::size_t i = level; i < k; ++i) {
        std::uint64_t zi = zk >> (tk - t[i]);
        prev_z[i] = zi;
        Word img = sorted[i]->Image(t[i], zi);
        partial[i] = (i == 0 ? img : (partial[i - 1] & img));
        if (partial[i] == 0) {
          // No element of any finer group can survive: skip every z_k that
          // shares this z_i prefix.
          zk = (zi + 1) << (tk - t[i]);
          for (std::size_t j = i; j < k; ++j) prev_z[j] = ~std::uint64_t{0};
          dead = true;
          break;
        }
      }
      if (dead) continue;

      // Extended IntersectSmall (Algorithm 2): for each surviving h-value y,
      // linearly merge the k chains h^{-1}(y, L^{z_i}_i) in g-order.
      Word image_and = partial[k - 1];
      ForEachBit(image_and, [&](int y) {
        for (std::size_t i = 0; i < k; ++i) {
          std::uint64_t zi = zk >> (tk - t[i]);
          auto [lo, hi] = sorted[i]->GroupRange(t[i], zi);
          (void)lo;
          pos[i] = sorted[i]->FirstPos(t[i], zi, y);
          end[i] = hi;
          if (pos[i] == kNoPos) return;  // empty chain: nothing for this y
        }
        // Round-robin k-pointer merge keyed on gval (g is shared, so equal
        // elements have equal gvals across sets).
        std::uint32_t cand = sorted[0]->gvals()[pos[0]];
        std::size_t agree = 1;
        std::size_t i = 1 % k;
        while (true) {
          const MultiResolutionSet& si = *sorted[i];
          std::uint32_t p = pos[i];
          while (p != kNoPos && p < end[i] && si.gvals()[p] < cand) {
            p = si.NextPos(p);
          }
          if (p == kNoPos || p >= end[i]) return;  // chain i exhausted
          pos[i] = p;
          if (si.gvals()[p] == cand) {
            if (++agree == k) {
              result_gvals.push_back(cand);
              std::uint32_t q = si.NextPos(p);
              if (q == kNoPos || q >= end[i]) return;
              pos[i] = q;
              cand = si.gvals()[q];
              agree = 1;
            }
          } else {
            cand = si.gvals()[p];
            agree = 1;
          }
          i = (i + 1) % k;
        }
      });
      ++zk;
    }
  }

  // Recover original elements and restore value order.
  out->reserve(result_gvals.size());
  for (std::uint32_t gv : result_gvals) {
    out->push_back(static_cast<Elem>(g_.Invert(gv)));
  }
}

}  // namespace fsi
