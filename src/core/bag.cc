#include "core/bag.h"

#include <algorithm>
#include <stdexcept>

namespace fsi {

std::uint32_t PreprocessedBag::CountOf(Elem x) const {
  auto it = std::lower_bound(elements_.begin(), elements_.end(), x);
  if (it == elements_.end() || *it != x) return 0;
  return counts_[static_cast<std::size_t>(it - elements_.begin())];
}

std::unique_ptr<PreprocessedBag> BagIntersection::Preprocess(
    std::span<const BagEntry> bag) const {
  std::vector<Elem> elements;
  std::vector<std::uint32_t> counts;
  elements.reserve(bag.size());
  counts.reserve(bag.size());
  for (std::size_t i = 0; i < bag.size(); ++i) {
    if (bag[i].count == 0) {
      throw std::invalid_argument("BagIntersection: zero multiplicity");
    }
    if (i > 0 && bag[i].element <= bag[i - 1].element) {
      throw std::invalid_argument(
          "BagIntersection: entries must be sorted with distinct elements");
    }
    elements.push_back(bag[i].element);
    counts.push_back(bag[i].count);
  }
  auto distinct = algorithm_->Preprocess(elements);
  return std::make_unique<PreprocessedBag>(std::move(distinct),
                                           std::move(elements),
                                           std::move(counts));
}

std::unique_ptr<PreprocessedBag> BagIntersection::PreprocessMultiset(
    std::span<const Elem> multiset) const {
  std::vector<BagEntry> bag;
  for (std::size_t i = 0; i < multiset.size(); ++i) {
    if (i > 0 && multiset[i] < multiset[i - 1]) {
      throw std::invalid_argument("BagIntersection: multiset must be sorted");
    }
    if (!bag.empty() && bag.back().element == multiset[i]) {
      ++bag.back().count;
    } else {
      bag.push_back({multiset[i], 1});
    }
  }
  return Preprocess(bag);
}

std::vector<BagEntry> BagIntersection::Intersect(
    std::span<const PreprocessedBag* const> bags) const {
  std::vector<BagEntry> result;
  if (bags.empty()) return result;
  // Distinct-element intersection through the wrapped algorithm.
  std::vector<const PreprocessedSet*> sets;
  sets.reserve(bags.size());
  for (const PreprocessedBag* b : bags) sets.push_back(b->distinct());
  ElemList common;
  algorithm_->Intersect(sets, &common);
  // Frequency resolution: min count across bags.
  result.reserve(common.size());
  for (Elem x : common) {
    std::uint32_t min_count = ~std::uint32_t{0};
    for (const PreprocessedBag* b : bags) {
      min_count = std::min(min_count, b->CountOf(x));
    }
    result.push_back({x, min_count});
  }
  return result;
}

}  // namespace fsi
