#include "core/algorithm.h"

namespace fsi {

ElemList IntersectionAlgorithm::IntersectLists(
    std::span<const ElemList> lists) const {
  std::vector<std::unique_ptr<PreprocessedSet>> owned;
  owned.reserve(lists.size());
  std::vector<const PreprocessedSet*> views;
  views.reserve(lists.size());
  for (const ElemList& list : lists) {
    owned.push_back(Preprocess(list));
    views.push_back(owned.back().get());
  }
  ElemList out;
  Intersect(views, &out);
  return out;
}

}  // namespace fsi
