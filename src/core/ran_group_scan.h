// RanGroupScan: the "simple" randomized-partition algorithm (Section 3.3,
// Algorithm 5) — the paper's best performer in practice.
//
// Pre-processing (Section 3.3.1, Figure 3): each set is partitioned once by
// g_{t_i} with t_i = ceil(log2(n_i / sqrt(w))); per group we keep m word
// images h_1(L^z), ..., h_m(L^z) and the group's elements.  No inverted
// mappings — "trading off a complex O(1)-access for a simple scan over a
// short block of data".
//
// Online (Algorithm 5): for each finest group id z_k, AND the m image words
// across the k sets; if any of the m ANDs is zero the combination provably
// has an empty intersection and is skipped (successful filtering,
// Lemmas A.1/A.3); otherwise the k groups are intersected by a plain linear
// merge.  Partial ANDs are memoized across shared prefixes (A.5.3), giving
// the O(mn/sqrt(w)) filtering term of Theorem 3.9.
//
// Implementation notes:
//  * We store g-values (ascending) rather than raw elements; g is shared
//    across sets and bijective, so merging on g-values is exact and the
//    original ids are recovered via g^{-1} only for the r results.
//  * The paper's Figure-3 block layout is kept as structure-of-arrays
//    (group offsets / image words / value array) — same content, same
//    sequential access pattern, friendlier typed accessors.

#ifndef FSI_CORE_RAN_GROUP_SCAN_H_
#define FSI_CORE_RAN_GROUP_SCAN_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/algorithm.h"
#include "core/cost.h"
#include "hash/feistel.h"
#include "hash/universal_hash.h"
#include "simd/intersect_kernels.h"
#include "storage/layout.h"
#include "util/bits.h"

namespace fsi {

/// The preprocessed form of one set for RanGroupScan.
class ScanSet : public PreprocessedSet {
 public:
  /// Builds the structure; t is the resolution (number of prefix bits).
  ScanSet(std::span<const Elem> set, const FeistelPermutation& g,
          const WordHashFamily& hashes, int t);

  std::size_t size() const override { return gvals_.size(); }
  std::size_t SizeInWords() const override;

  int t() const { return t_; }
  int m() const { return m_; }
  std::uint64_t num_groups() const { return std::uint64_t{1} << t_; }
  std::uint64_t NumGroups() const override { return num_groups(); }

  /// Half-open position range of group z.
  std::pair<std::uint32_t, std::uint32_t> GroupRange(std::uint64_t z) const {
    return {group_start_[z], group_start_[z + 1]};
  }

  /// j-th hash image word of group z (j in [0, m)).
  Word Image(std::uint64_t z, int j) const {
    return images_[z * static_cast<std::uint64_t>(m_) +
                   static_cast<std::uint64_t>(j)];
  }

  /// Ascending g-values of all elements.
  std::span<const std::uint32_t> gvals() const { return gvals_.view(); }

  /// The two other arrays, for serialization and inspection.
  std::span<const std::uint32_t> group_starts() const {
    return group_start_.view();
  }
  std::span<const Word> images() const { return images_.view(); }

  /// Appends the three arrays to `payload` and fills the record's refs,
  /// kind (kScan), t and m.
  void WriteFlat(storage::PayloadWriter& payload,
                 storage::SetRecord& record) const;

  /// Reconstructs a ScanSet whose spans alias `payload` (zero-copy; the
  /// backing bytes must outlive it).  Validates shape invariants (t/m
  /// domain, array sizes, monotone offsets) and throws
  /// storage::SnapshotError(kCorrupt) on violation.
  static std::unique_ptr<ScanSet> ViewFlat(std::span<const std::byte> payload,
                                           const storage::SetRecord& record);

  /// Builds an owning ScanSet from already-materialized arrays (the legacy
  /// StructureSerializer load path).  Same validation as ViewFlat.
  static std::unique_ptr<ScanSet> FromParts(
      int t, int m, std::vector<std::uint32_t> group_start,
      std::vector<Word> images, std::vector<std::uint32_t> gvals);

 private:
  ScanSet(int t, int m, storage::FlatArray<std::uint32_t> group_start,
          storage::FlatArray<Word> images,
          storage::FlatArray<std::uint32_t> gvals);

  /// Throws storage::SnapshotError(kCorrupt) unless the arrays form a
  /// plausible structure (cheap shape checks, not a content audit).
  void Validate() const;

  int t_;
  int m_;
  storage::FlatArray<std::uint32_t> group_start_;  // 2^t + 1
  storage::FlatArray<Word> images_;                // 2^t * m, group-major
  storage::FlatArray<std::uint32_t> gvals_;        // ascending
};

class RanGroupScanIntersection : public IntersectionAlgorithm {
 public:
  struct Options {
    /// Seed for the shared permutation g and hash family h_1..h_m.
    std::uint64_t seed = 0xbe5466cf34e90c6cULL;
    /// Even number of bits covering the element universe.
    int universe_bits = 32;
    /// Number of hash images per group; the paper uses m = 4 by default and
    /// m = 2 for the multi-keyword and compressed experiments.
    int m = 4;
    /// Disable the A.5.3 optimizations (prefix-AND memoization, prefix
    /// skipping, and the aligned fast path) — ablation only.  Every z_k then
    /// recomputes all k*m partial ANDs and advances one step at a time.
    bool memoize = true;
    /// Target expected group width: the resolution is chosen as
    /// t_i = ceil(log2(n_i / group_width)).  The paper's choice is
    /// sqrt(w) = 8; wider groups trade filtering effectiveness for fewer
    /// image words (registry option key "w").
    std::size_t group_width = kSqrtWordBits;
    /// Kernel tier for the two-set group merges (registry option key
    /// "simd": auto|off).  kAuto dispatches on the CPU at startup; kOff
    /// keeps the scalar loops.  Output is bit-identical either way.
    simd::Mode simd = simd::Mode::kAuto;
  };

  RanGroupScanIntersection() : RanGroupScanIntersection(Options()) {}
  explicit RanGroupScanIntersection(const Options& options);

  /// Planner cost hook (core/cost.h): the Theorem 3.9 bound
  /// O(mn/sqrt(w) + r) with the m/sqrt(w) factor folded into the calibrated
  /// constant — cost = scan_ns * (n1 + n2) + scan_result_ns * r.
  static double StepCost(const StepCostQuery& q, const CostConstants& c);

  std::string_view name() const override { return name_; }

  std::unique_ptr<PreprocessedSet> Preprocess(
      std::span<const Elem> set) const override;

  void Intersect(std::span<const PreprocessedSet* const> sets,
                 ElemList* out) const override;

  void IntersectUnordered(std::span<const PreprocessedSet* const> sets,
                          ElemList* out) const override;

  const FeistelPermutation& permutation() const { return g_; }
  const WordHashFamily& hashes() const { return hashes_; }
  int m() const { return options_.m; }

 private:
  Options options_;
  std::string name_;
  FeistelPermutation g_;
  WordHashFamily hashes_;
  const simd::Kernels* kernels_;
};

}  // namespace fsi

#endif  // FSI_CORE_RAN_GROUP_SCAN_H_
