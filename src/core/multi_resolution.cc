#include "core/multi_resolution.h"

#include <algorithm>
#include <stdexcept>

namespace fsi {

MultiResolutionSet::MultiResolutionSet(std::span<const Elem> set,
                                       const FeistelPermutation& g,
                                       const WordHash& h,
                                       bool single_resolution)
    : domain_bits_(g.domain_bits()) {
  DebugCheckSortedUnique(set, "MultiResolutionSet");
  if (domain_bits_ > 32) {
    throw std::invalid_argument(
        "MultiResolutionSet: permutation domain wider than 32 bits");
  }
  if (!set.empty() && domain_bits_ < 32 &&
      set.back() >= (Elem{1} << domain_bits_)) {
    throw std::invalid_argument(
        "MultiResolutionSet: element outside the permutation domain");
  }
  std::size_t n = set.size();
  gvals_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t gv = g.Apply(set[i]);
    gvals_[i] = static_cast<std::uint32_t>(gv);
  }
  // g is a bijection, so sorting by g(x) both orders the elements for the
  // interval property and makes every gval unique.
  std::sort(gvals_.begin(), gvals_.end());

  hvals_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    hvals_[i] = static_cast<std::uint8_t>(h(gvals_[i]));
  }

  // next(x): scan right-to-left, remembering the most recent position of
  // each h-value.
  next_.assign(n, kNoPos);
  std::uint32_t last_seen[kWordBits];
  std::fill(std::begin(last_seen), std::end(last_seen), kNoPos);
  for (std::size_t ii = n; ii > 0; --ii) {
    auto i = static_cast<std::uint32_t>(ii - 1);
    next_[i] = last_seen[hvals_[i]];
    last_seen[hvals_[i]] = i;
  }

  // Resolutions t = 0 .. min(ceil(log2 n), domain_bits): the finest useful
  // partition has ~1 element per group.
  int max_t = std::min(CeilLog2(std::max<std::uint64_t>(n, 1)), domain_bits_);
  resolutions_.resize(static_cast<std::size_t>(max_t) + 1);
  int only_t = single_resolution ? DefaultResolution() : -1;
  for (int t = 0; t <= max_t; ++t) {
    if (only_t >= 0 && t != only_t) continue;
    Resolution& res = resolutions_[static_cast<std::size_t>(t)];
    std::size_t groups = std::size_t{1} << t;
    int shift = domain_bits_ - t;

    // Boundaries by counting sort over the t-bit prefixes.
    res.group_start.assign(groups + 1, 0);
    for (std::uint32_t gv : gvals_) {
      ++res.group_start[(static_cast<std::uint64_t>(gv) >> shift) + 1];
    }
    for (std::size_t z = 1; z <= groups; ++z) {
      res.group_start[z] += res.group_start[z - 1];
    }

    // Word images and packed first-offsets.
    std::uint32_t max_group = 0;
    for (std::size_t z = 0; z < groups; ++z) {
      max_group = std::max(max_group,
                           res.group_start[z + 1] - res.group_start[z]);
    }
    int field_bits = std::max(1, CeilLog2(max_group + 2));
    res.images.assign(groups, 0);
    res.first = PackedArray(groups * kWordBits, field_bits);
    const std::uint64_t absent = res.first.max_value();
    for (std::size_t f = 0; f < res.first.size(); ++f) res.first.Set(f, absent);
    for (std::size_t z = 0; z < groups; ++z) {
      for (std::uint32_t i = res.group_start[z]; i < res.group_start[z + 1];
           ++i) {
        int y = hvals_[i];
        res.images[z] |= WordBit(y);
        std::size_t field = z * kWordBits + static_cast<std::size_t>(y);
        if (res.first.Get(field) == absent) {
          res.first.Set(field, i - res.group_start[z]);
        }
      }
    }
  }
}

int MultiResolutionSet::DefaultResolution() const {
  std::uint64_t n = gvals_.size();
  if (n <= kSqrtWordBits) return 0;
  return ClampResolution(CeilLog2((n + kSqrtWordBits - 1) / kSqrtWordBits));
}

std::size_t MultiResolutionSet::SizeInWords() const {
  std::size_t words = (gvals_.size() * sizeof(std::uint32_t) + 7) / 8;
  words += (hvals_.size() + 7) / 8;
  words += (next_.size() * sizeof(std::uint32_t) + 7) / 8;
  for (const Resolution& res : resolutions_) {
    words += (res.group_start.size() * sizeof(std::uint32_t) + 7) / 8;
    words += res.images.size();
    words += res.first.SizeInWords();
  }
  return words;
}

}  // namespace fsi
