// The cost-model vocabulary shared by the planner and the algorithms.
//
// The paper's central empirical result (Figure 7) is that no single
// intersection algorithm wins everywhere: the best choice depends on the
// set-size ratio, the intersection density and machine constants.  The
// planner (api/planner.h) chooses online from the asymptotic bounds the
// paper proves — O(n1 + n2) for a merge scan, O(n1 log(n2/n1)) for the
// galloping and HashBin families (Theorem 3.11), O(mn/sqrt(w) + r) for
// RanGroupScan (Theorem 3.9) — turned into wall-clock predictions by a
// handful of calibrated per-machine constants.
//
// Algorithms advertise their formula through a cost hook on their registry
// descriptor (AlgorithmDescriptor::cost): a pure function from the features
// of one pairwise intersection step to predicted nanoseconds.  Algorithms
// without a hook are invisible to the planner (intersect_cli --list shows
// which is which).

#ifndef FSI_CORE_COST_H_
#define FSI_CORE_COST_H_

#include <cstddef>

namespace fsi {

/// Features of one pairwise intersection step, as known at planning time.
/// For steps after the first, `small_size` is the *estimated* size of the
/// running intermediate result (density-corrected, see api/planner.h).
struct StepCostQuery {
  /// Size of the smaller input (n1 in the paper's bounds).
  std::size_t small_size = 0;
  /// Size of the larger input (n2).
  std::size_t large_size = 0;
  /// Estimated intersection size r of this step (clamped to small_size).
  double est_result = 0.0;
};

/// Per-machine unit costs, in nanoseconds per element-operation.  The
/// defaults below are conservative figures for a current x86-64 core with
/// the dispatched SIMD kernels; PlannerCalibration (api/planner.h) replaces
/// them with values measured on the running machine unless
/// FSI_PLANNER_CALIBRATION=off pins these exact numbers (deterministic CI).
struct CostConstants {
  /// Merge scan: ns per element touched (cost = merge_ns * (n1 + n2)).
  double merge_ns = 0.45;
  /// Galloping search (SvS): ns per small-set element per log2 of the size
  /// ratio (cost = gallop_ns * n1 * log2(2 + n2/n1)).
  double gallop_ns = 3.0;
  /// RanGroupScan: ns per element through the group filter + merge, with
  /// the paper's m/sqrt(w) factors folded in for the instance's fixed m and
  /// group width (cost = scan_ns * (n1 + n2) + result term).
  double scan_ns = 0.7;
  /// HashBin: ns per small-set element per log2 of the size ratio — the
  /// Theorem 3.11 bound O(n1 log(n2/n1)) with its own constant
  /// (cost = hashbin_ns * n1 * log2(2 + n2/n1)).
  double hashbin_ns = 4.0;
  /// Per result element for the comparison-based algorithms: append and
  /// final handling (cost += result_ns * est_result).
  double result_ns = 6.0;
  /// Per result element for the randomized-partition algorithms
  /// (RanGroupScan, HashBin): the g^-1 inversion, the document-order sort,
  /// and the surviving-group verification work that scales with the
  /// intersection density (cost += scan_result_ns * est_result).  This is
  /// why Merge overtakes the partition algorithms in the dense regime the
  /// paper's Figure 5 studies.
  double scan_result_ns = 60.0;
  /// Compressed structures (Section 4.1): ns per element through block
  /// decode + group filter + merge.  Strictly larger than scan_ns — the
  /// premium the space-budget dial weighs a compressed representation's
  /// bytes saved against (cost = decode_ns * (n1 + n2) + result term).
  double decode_ns = 2.0;
};

/// A registry cost hook: predicted nanoseconds for one pairwise step.
/// Must be pure (planning happens concurrently from many threads).
using StepCostFn = double (*)(const StepCostQuery&, const CostConstants&);

}  // namespace fsi

#endif  // FSI_CORE_COST_H_
