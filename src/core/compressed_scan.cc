#include "core/compressed_scan.h"

#include <algorithm>
#include <stdexcept>

#include "codec/elias.h"
#include "storage/snapshot.h"
#include "util/rng.h"

namespace fsi {

CompressedScanSet::CompressedScanSet(std::span<const Elem> set,
                                     const FeistelPermutation& g,
                                     const WordHashFamily& hashes, int t,
                                     ScanCodec codec)
    : n_(set.size()),
      t_(t),
      codec_(codec),
      max_elem_(set.empty() ? 0 : set.back()) {
  DebugCheckSortedUnique(set, "CompressedScan");
  if (!set.empty() && g.domain_bits() < 32 &&
      set.back() >= (Elem{1} << g.domain_bits())) {
    throw std::invalid_argument(
        "CompressedScan: element outside the permutation domain");
  }
  std::vector<std::uint32_t> gvals(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    gvals[i] = static_cast<std::uint32_t>(g.Apply(set[i]));
  }
  std::sort(gvals.begin(), gvals.end());

  const int b = g.domain_bits();
  const int low_bits = b - t_;
  const std::uint64_t low_mask =
      low_bits >= 64 ? ~std::uint64_t{0}
                     : ((std::uint64_t{1} << low_bits) - 1);
  const int m = hashes.size();
  BitWriter w;
  std::size_t i = 0;
  for (std::uint64_t z = 0; z < (std::uint64_t{1} << t_); ++z) {
    // Decode-block boundary: record where this stride of groups starts.
    if (z % kSkipStride == 0) skips_.push_back(w.BitCount());
    std::uint64_t win_hi = (z + 1) << low_bits;
    std::size_t begin = i;
    while (i < n_ && gvals[i] < win_hi) ++i;
    std::uint32_t len = static_cast<std::uint32_t>(i - begin);
    w.WriteUnary(len);
    if (len == 0) continue;
    // m image words.
    std::vector<Word> images(static_cast<std::size_t>(m), 0);
    for (std::size_t e = begin; e < i; ++e) {
      hashes.AccumulateImages(gvals[e], images.data());
    }
    for (Word img : images) w.Write(img, 64);
    // Elements.
    if (codec_ == ScanCodec::kLowbits) {
      for (std::size_t e = begin; e < i; ++e) {
        w.Write(gvals[e] & low_mask, low_bits);
      }
    } else {
      std::uint64_t prev = (z << low_bits);  // window base; first gap >= 1?
      for (std::size_t e = begin; e < i; ++e) {
        // Gap = gval - prev + 1 for the first element (gval may equal the
        // base), then strictly positive diffs thereafter.
        std::uint64_t gap = gvals[e] - prev + (e == begin ? 1 : 0);
        if (codec_ == ScanCodec::kGamma) {
          WriteGamma(w, gap);
        } else {
          WriteDelta(w, gap);
        }
        prev = gvals[e];
      }
    }
  }
  bit_count_ = w.BitCount();
  bits_ = w.TakeBuffer();
}

namespace {

[[noreturn]] void CorruptStream(const char* what) {
  throw storage::SnapshotError(storage::SnapshotErrorCode::kCorrupt,
                               std::string("snapshot: compressed set: ") +
                                   what);
}

/// Bounds-checked unary read over untrusted bits: false when the
/// terminating 1-bit lies at or past bit_count.
bool ReadUnaryChecked(const std::uint64_t* data, std::size_t bit_count,
                      std::size_t* pos, std::uint64_t* out) {
  std::uint64_t n = 0;
  std::size_t p = *pos;
  while (true) {
    if (p >= bit_count) return false;
    std::size_t word = p >> 6;
    int offset = static_cast<int>(p & 63);
    std::uint64_t chunk = data[word] << offset;
    if (chunk == 0) {
      n += static_cast<std::uint64_t>(64 - offset);
      p += static_cast<std::size_t>(64 - offset);
      continue;
    }
    int zeros = std::countl_zero(chunk);
    if (p + static_cast<std::size_t>(zeros) >= bit_count) return false;
    *pos = p + static_cast<std::size_t>(zeros) + 1;
    *out = n + static_cast<std::uint64_t>(zeros);
    return true;
  }
}

bool ReadBitsChecked(BitReader* r, int bits, std::uint64_t* out) {
  if (r->position() + static_cast<std::size_t>(bits) > r->bit_count()) {
    return false;
  }
  *out = r->Read(bits);
  return true;
}

/// Checked γ/δ gap read; rejects length prefixes a 32-bit universe cannot
/// produce (so no shift is ever UB and no gap overflows the window math).
bool ReadGapChecked(const std::uint64_t* data, BitReader* r, ScanCodec codec,
                    std::uint64_t* out) {
  std::size_t pos = r->position();
  std::uint64_t n = 0;
  if (!ReadUnaryChecked(data, r->bit_count(), &pos, &n)) return false;
  r->SeekTo(pos);
  if (codec == ScanCodec::kDelta) {
    // δ: the unary value codes γ(len+1); recover len = 2^n | low - 1.
    if (n > 6) return false;  // γ(len+1) with len <= 33 needs n <= 6
    std::uint64_t low = 0;
    if (n > 0 && !ReadBitsChecked(r, static_cast<int>(n), &low)) return false;
    n = ((std::uint64_t{1} << n) | low) - 1;
  }
  if (n > 33) return false;  // gaps fit in 33 bits for a 32-bit universe
  std::uint64_t low = 0;
  if (n > 0 && !ReadBitsChecked(r, static_cast<int>(n), &low)) return false;
  *out = (std::uint64_t{1} << n) | low;
  return true;
}

}  // namespace

void CompressedScanSet::Validate(int m, int domain_bits) const {
  if (t_ < 0 || t_ > domain_bits || domain_bits > 32) {
    CorruptStream("resolution outside the permutation domain");
  }
  if (m < 1 || m > 64) CorruptStream("implausible image count");
  if (bit_count_ > bits_.size() * 64) {
    CorruptStream("bit count exceeds backing words");
  }
  const std::uint64_t num_groups = std::uint64_t{1} << t_;
  const std::size_t expect_skips =
      static_cast<std::size_t>((num_groups + kSkipStride - 1) / kSkipStride);
  if (skips_.size() != expect_skips) {
    CorruptStream("skip directory size mismatch");
  }
  const int low_bits = domain_bits - t_;
  BitReader r(bits_.data(), bit_count_);
  std::uint64_t total = 0;
  for (std::uint64_t z = 0; z < num_groups; ++z) {
    if (z % kSkipStride == 0 && skips_[z / kSkipStride] != r.position()) {
      CorruptStream("skip pointer does not match block offset");
    }
    std::size_t pos = r.position();
    std::uint64_t len = 0;
    if (!ReadUnaryChecked(bits_.data(), bit_count_, &pos, &len)) {
      CorruptStream("truncated group header");
    }
    r.SeekTo(pos);
    if (len == 0) continue;
    total += len;
    if (total > n_) CorruptStream("group lengths exceed set size");
    for (int j = 0; j < m; ++j) {
      std::uint64_t img = 0;
      if (!ReadBitsChecked(&r, 64, &img)) CorruptStream("truncated images");
    }
    if (codec_ == ScanCodec::kLowbits) {
      std::uint64_t want = len * static_cast<std::uint64_t>(low_bits);
      if (r.position() + want > bit_count_) {
        CorruptStream("truncated element block");
      }
      r.Skip(static_cast<std::size_t>(want));
    } else {
      for (std::uint64_t e = 0; e < len; ++e) {
        std::uint64_t gap = 0;
        if (!ReadGapChecked(bits_.data(), &r, codec_, &gap)) {
          CorruptStream("malformed gap code");
        }
      }
    }
  }
  if (total != n_) CorruptStream("group lengths do not sum to set size");
  if (r.position() != bit_count_) CorruptStream("trailing bits after stream");
}

std::unique_ptr<CompressedScanSet> CompressedScanSet::FromParts(
    std::size_t n, int t, ScanCodec codec, Elem max_elem,
    std::vector<std::uint64_t> bits, std::size_t bit_count,
    std::vector<std::uint64_t> skips, int m, int domain_bits) {
  auto set = std::unique_ptr<CompressedScanSet>(new CompressedScanSet());
  set->n_ = n;
  set->t_ = t;
  set->codec_ = codec;
  set->max_elem_ = max_elem;
  set->bits_ = std::move(bits);
  set->bit_count_ = bit_count;
  set->skips_ = std::move(skips);
  set->Validate(m, domain_bits);
  return set;
}

CompressedScanIntersection::CompressedScanIntersection(const Options& options)
    : options_(options),
      g_(options.universe_bits, SplitMix64(options.seed).Next()),
      hashes_(options.m, SplitMix64(options.seed ^ 0xc0ac29b7c97c50ddULL)
                             .Next()),
      decode_(&simd::SelectDecode(options.simd)) {
  if (options.m < 1) {
    throw std::invalid_argument("CompressedScan: m must be >= 1");
  }
  switch (options.codec) {
    case ScanCodec::kLowbits:
      name_ = "RanGroupScan_Lowbits";
      break;
    case ScanCodec::kGamma:
      name_ = "RanGroupScan_Gamma";
      break;
    case ScanCodec::kDelta:
      name_ = "RanGroupScan_Delta";
      break;
  }
}

double CompressedScanIntersection::StepCost(const StepCostQuery& q,
                                            const CostConstants& c) {
  return c.decode_ns * static_cast<double>(q.small_size + q.large_size) +
         c.scan_result_ns * q.est_result;
}

std::unique_ptr<PreprocessedSet> CompressedScanIntersection::Preprocess(
    std::span<const Elem> set) const {
  std::uint64_t n = set.size();
  int t = 0;
  if (n > kSqrtWordBits) {
    t = CeilLog2((n + kSqrtWordBits - 1) / kSqrtWordBits);
  }
  t = std::min(t, g_.domain_bits());
  return std::make_unique<CompressedScanSet>(set, g_, hashes_, t,
                                             options_.codec);
}

namespace {

/// A forward-only cursor over one set's block stream.  Jumps over whole
/// strides of groups through the skip directory; within a stride it walks
/// group headers sequentially.
class GroupCursor {
 public:
  GroupCursor(const CompressedScanSet& set, int m, int domain_bits,
              const simd::DecodeKernels* decode)
      : set_(set),
        reader_(set.bits().data(), set.bit_count()),
        decode_(decode),
        m_(m),
        low_bits_(domain_bits - set.t()),
        images_(static_cast<std::size_t>(m), 0) {}

  /// Moves the cursor to group z (z must be >= the current group).
  void LoadGroup(std::uint64_t z) {
    // Skip-pointer jump: when the target lies in a later decode block,
    // seek straight to that block's first header instead of consuming
    // every header (and, for γ/δ, every element) in between.
    const std::uint64_t target_block = z / CompressedScanSet::kSkipStride;
    const std::uint64_t target_group =
        target_block * CompressedScanSet::kSkipStride;
    if (target_group > next_group_) {
      reader_.SeekTo(set_.skips()[static_cast<std::size_t>(target_block)]);
      next_group_ = target_group;
      pending_ = false;
      decoded_ = false;
      len_ = 0;
      scan_idx_ = 0;
    }
    while (next_group_ <= z) {
      ConsumePendingElements();
      len_ = static_cast<std::uint32_t>(reader_.ReadUnary());
      if (len_ > 0) {
        for (int j = 0; j < m_; ++j) {
          images_[static_cast<std::size_t>(j)] = reader_.Read(64);
        }
        pending_ = true;
      } else {
        std::fill(images_.begin(), images_.end(), 0);
        pending_ = false;
      }
      current_group_ = next_group_;
      ++next_group_;
      decoded_ = false;
      scan_idx_ = 0;
    }
  }

  std::uint32_t len() const { return len_; }
  Word image(int j) const { return images_[static_cast<std::size_t>(j)]; }

  /// Decodes the current group's g-values (idempotent per group) through
  /// the selected kernel tier.
  const std::vector<std::uint32_t>& DecodeElements() {
    if (!decoded_) {
      elems_.resize(len_);
      const std::uint32_t base =
          static_cast<std::uint32_t>(current_group_ << low_bits_);
      if (set_.codec() == ScanCodec::kLowbits) {
        decode_->unpack_bits(set_.bits().data(), set_.bits().size(),
                             reader_.position(), low_bits_, base,
                             elems_.data(), len_);
        reader_.Skip(static_cast<std::size_t>(len_) *
                     static_cast<std::size_t>(low_bits_));
      } else {
        // Gap reads are inherently serial; the gap -> absolute conversion
        // vectorizes.  The first gap was written one high (the element may
        // equal the window base).
        for (std::uint32_t e = 0; e < len_; ++e) {
          std::uint64_t gap = set_.codec() == ScanCodec::kGamma
                                  ? ReadGamma(reader_)
                                  : ReadDelta(reader_);
          elems_[e] = static_cast<std::uint32_t>(gap);
        }
        if (len_ > 0) elems_[0] -= 1;
        decode_->prefix_sum(elems_.data(), len_, base);
      }
      pending_ = false;
      decoded_ = true;
      scan_idx_ = 0;
    }
    return elems_;
  }

  /// Rolling index into the decoded group (windows ascend within a group).
  std::size_t scan_idx() const { return scan_idx_; }
  void set_scan_idx(std::size_t i) { scan_idx_ = i; }

 private:
  void ConsumePendingElements() {
    if (!pending_) return;
    if (set_.codec() == ScanCodec::kLowbits) {
      // O(1) skip — the Lowbits advantage.
      reader_.Skip(static_cast<std::size_t>(len_) *
                   static_cast<std::size_t>(low_bits_));
    } else {
      // Variable-width codes must be decoded to be skipped.
      for (std::uint32_t e = 0; e < len_; ++e) {
        if (set_.codec() == ScanCodec::kGamma) {
          (void)ReadGamma(reader_);
        } else {
          (void)ReadDelta(reader_);
        }
      }
    }
    pending_ = false;
  }

  const CompressedScanSet& set_;
  BitReader reader_;
  const simd::DecodeKernels* decode_;
  int m_;
  int low_bits_;
  std::uint64_t current_group_ = 0;
  std::uint64_t next_group_ = 0;
  std::uint32_t len_ = 0;
  bool pending_ = false;
  bool decoded_ = false;
  std::vector<Word> images_;
  std::vector<std::uint32_t> elems_;
  std::size_t scan_idx_ = 0;
};

}  // namespace

void CompressedScanIntersection::Intersect(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  IntersectUnordered(sets, out);
  std::sort(out->begin(), out->end());
}

void CompressedScanIntersection::IntersectUnordered(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  std::size_t k = sets.size();
  if (k == 0) return;
  std::vector<const CompressedScanSet*> sorted;
  sorted.reserve(k);
  for (const PreprocessedSet* s : sets) {
    sorted.push_back(&As<CompressedScanSet>(*s));
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const CompressedScanSet* a, const CompressedScanSet* b) {
                     return a->size() < b->size();
                   });
  std::vector<std::uint32_t> result_gvals;
  const int b = g_.domain_bits();
  const int m = options_.m;
  if (sorted[0]->size() == 0) return;
  if (k == 1) {
    GroupCursor cur(*sorted[0], m, b, decode_);
    for (std::uint64_t z = 0; z < (std::uint64_t{1} << sorted[0]->t()); ++z) {
      cur.LoadGroup(z);
      if (cur.len() == 0) continue;
      const auto& gv = cur.DecodeElements();
      result_gvals.insert(result_gvals.end(), gv.begin(), gv.end());
    }
  } else {
    std::vector<int> t(k);
    for (std::size_t i = 0; i < k; ++i) t[i] = sorted[i]->t();
    for (std::size_t i = k - 1; i > 0; --i) {
      if (t[i - 1] > t[i]) {
        throw std::logic_error("CompressedScan: inconsistent resolutions");
      }
    }
    const int tk = t[k - 1];
    const std::uint64_t zk_count = std::uint64_t{1} << tk;

    std::vector<GroupCursor> cursors;
    cursors.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      cursors.emplace_back(*sorted[i], m, b, decode_);
    }
    std::vector<Word> partial(k * static_cast<std::size_t>(m), 0);
    std::vector<std::uint64_t> prev_z(k, ~std::uint64_t{0});

    std::uint64_t zk = 0;
    while (zk < zk_count) {
      std::size_t level = k;
      for (std::size_t i = 0; i < k; ++i) {
        if ((zk >> (tk - t[i])) != prev_z[i]) {
          level = i;
          break;
        }
      }
      bool dead = false;
      for (std::size_t i = level; i < k; ++i) {
        std::uint64_t zi = zk >> (tk - t[i]);
        prev_z[i] = zi;
        cursors[i].LoadGroup(zi);
        bool any_zero = false;
        for (int j = 0; j < m; ++j) {
          Word img = cursors[i].image(j);
          Word p = (i == 0) ? img : (partial[(i - 1) * m + j] & img);
          partial[i * static_cast<std::size_t>(m) + j] = p;
          any_zero |= (p == 0);
        }
        if (any_zero) {
          zk = (zi + 1) << (tk - t[i]);
          for (std::size_t jj = i; jj < k; ++jj) {
            prev_z[jj] = ~std::uint64_t{0};
          }
          dead = true;
          break;
        }
      }
      if (dead) continue;

      // Verification merge over the z_k window.
      const std::uint64_t win_lo = zk << (b - tk);
      const std::uint64_t win_hi = (zk + 1) << (b - tk);
      // Per-set: decode the group, position the rolling index at win_lo.
      bool empty_window = false;
      std::vector<std::span<const std::uint32_t>> gv(k);
      std::vector<std::size_t> pos(k);
      std::vector<std::size_t> lim(k);
      for (std::size_t i = 0; i < k; ++i) {
        const auto& decoded = cursors[i].DecodeElements();
        gv[i] = decoded;
        std::size_t c = cursors[i].scan_idx();
        while (c < decoded.size() && decoded[c] < win_lo) ++c;
        cursors[i].set_scan_idx(c);
        pos[i] = c;
        lim[i] = decoded.size();
        if (c >= decoded.size() || decoded[c] >= win_hi) {
          empty_window = true;
          break;
        }
      }
      if (!empty_window) {
        std::uint32_t cand = gv[0][pos[0]];
        std::size_t agree = 1;
        std::size_t i = 1;
        while (true) {
          std::size_t p = pos[i];
          while (p < lim[i] && gv[i][p] < cand) ++p;
          pos[i] = p;
          if (cursors[i].scan_idx() < p) cursors[i].set_scan_idx(p);
          if (p >= lim[i] || gv[i][p] >= win_hi) break;
          if (gv[i][p] == cand) {
            if (++agree == k) {
              result_gvals.push_back(cand);
              ++pos[i];
              if (cursors[i].scan_idx() < pos[i]) {
                cursors[i].set_scan_idx(pos[i]);
              }
              if (pos[i] >= lim[i] || gv[i][pos[i]] >= win_hi) break;
              cand = gv[i][pos[i]];
              agree = 1;
            }
          } else {
            cand = gv[i][p];
            agree = 1;
          }
          i = (i + 1) % k;
        }
      }
      ++zk;
    }
  }

  out->reserve(result_gvals.size());
  for (std::uint32_t gvv : result_gvals) {
    out->push_back(static_cast<Elem>(g_.Invert(gvv)));
  }
}

}  // namespace fsi
