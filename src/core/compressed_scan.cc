#include "core/compressed_scan.h"

#include <algorithm>
#include <stdexcept>

#include "codec/elias.h"
#include "util/rng.h"

namespace fsi {

CompressedScanSet::CompressedScanSet(std::span<const Elem> set,
                                     const FeistelPermutation& g,
                                     const WordHashFamily& hashes, int t,
                                     ScanCodec codec)
    : n_(set.size()), t_(t), codec_(codec) {
  DebugCheckSortedUnique(set, "CompressedScan");
  if (!set.empty() && g.domain_bits() < 32 &&
      set.back() >= (Elem{1} << g.domain_bits())) {
    throw std::invalid_argument(
        "CompressedScan: element outside the permutation domain");
  }
  std::vector<std::uint32_t> gvals(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    gvals[i] = static_cast<std::uint32_t>(g.Apply(set[i]));
  }
  std::sort(gvals.begin(), gvals.end());

  const int b = g.domain_bits();
  const int low_bits = b - t_;
  const std::uint64_t low_mask =
      low_bits >= 64 ? ~std::uint64_t{0}
                     : ((std::uint64_t{1} << low_bits) - 1);
  const int m = hashes.size();
  BitWriter w;
  std::size_t i = 0;
  for (std::uint64_t z = 0; z < (std::uint64_t{1} << t_); ++z) {
    std::uint64_t win_hi = (z + 1) << low_bits;
    std::size_t begin = i;
    while (i < n_ && gvals[i] < win_hi) ++i;
    std::uint32_t len = static_cast<std::uint32_t>(i - begin);
    w.WriteUnary(len);
    if (len == 0) continue;
    // m image words.
    std::vector<Word> images(static_cast<std::size_t>(m), 0);
    for (std::size_t e = begin; e < i; ++e) {
      hashes.AccumulateImages(gvals[e], images.data());
    }
    for (Word img : images) w.Write(img, 64);
    // Elements.
    if (codec_ == ScanCodec::kLowbits) {
      for (std::size_t e = begin; e < i; ++e) {
        w.Write(gvals[e] & low_mask, low_bits);
      }
    } else {
      std::uint64_t prev = (z << low_bits);  // window base; first gap >= 1?
      for (std::size_t e = begin; e < i; ++e) {
        // Gap = gval - prev + 1 for the first element (gval may equal the
        // base), then strictly positive diffs thereafter.
        std::uint64_t gap = gvals[e] - prev + (e == begin ? 1 : 0);
        if (codec_ == ScanCodec::kGamma) {
          WriteGamma(w, gap);
        } else {
          WriteDelta(w, gap);
        }
        prev = gvals[e];
      }
    }
  }
  bit_count_ = w.BitCount();
  bits_ = w.TakeBuffer();
}

CompressedScanIntersection::CompressedScanIntersection(const Options& options)
    : options_(options),
      g_(options.universe_bits, SplitMix64(options.seed).Next()),
      hashes_(options.m, SplitMix64(options.seed ^ 0xc0ac29b7c97c50ddULL)
                             .Next()) {
  if (options.m < 1) {
    throw std::invalid_argument("CompressedScan: m must be >= 1");
  }
  switch (options.codec) {
    case ScanCodec::kLowbits:
      name_ = "RanGroupScan_Lowbits";
      break;
    case ScanCodec::kGamma:
      name_ = "RanGroupScan_Gamma";
      break;
    case ScanCodec::kDelta:
      name_ = "RanGroupScan_Delta";
      break;
  }
}

std::unique_ptr<PreprocessedSet> CompressedScanIntersection::Preprocess(
    std::span<const Elem> set) const {
  std::uint64_t n = set.size();
  int t = 0;
  if (n > kSqrtWordBits) {
    t = CeilLog2((n + kSqrtWordBits - 1) / kSqrtWordBits);
  }
  t = std::min(t, g_.domain_bits());
  return std::make_unique<CompressedScanSet>(set, g_, hashes_, t,
                                             options_.codec);
}

namespace {

/// A forward-only cursor over one set's block stream.
class GroupCursor {
 public:
  GroupCursor(const CompressedScanSet& set, int m, int domain_bits)
      : set_(set),
        reader_(set.bits().data(), set.bit_count()),
        m_(m),
        low_bits_(domain_bits - set.t()),
        low_mask_(low_bits_ >= 64 ? ~std::uint64_t{0}
                                  : ((std::uint64_t{1} << low_bits_) - 1)),
        images_(static_cast<std::size_t>(m), 0) {}

  /// Moves the cursor to group z (z must be >= the current group).
  void LoadGroup(std::uint64_t z) {
    while (next_group_ <= z) {
      ConsumePendingElements();
      len_ = static_cast<std::uint32_t>(reader_.ReadUnary());
      if (len_ > 0) {
        for (int j = 0; j < m_; ++j) images_[static_cast<std::size_t>(j)] = reader_.Read(64);
        pending_ = true;
      } else {
        std::fill(images_.begin(), images_.end(), 0);
        pending_ = false;
      }
      current_group_ = next_group_;
      ++next_group_;
      decoded_ = false;
      scan_idx_ = 0;
    }
  }

  std::uint32_t len() const { return len_; }
  Word image(int j) const { return images_[static_cast<std::size_t>(j)]; }

  /// Decodes the current group's g-values (idempotent per group).
  const std::vector<std::uint32_t>& DecodeElements() {
    if (!decoded_) {
      elems_.clear();
      elems_.reserve(len_);
      std::uint64_t base = current_group_ << low_bits_;
      if (set_.codec() == ScanCodec::kLowbits) {
        for (std::uint32_t e = 0; e < len_; ++e) {
          elems_.push_back(
              static_cast<std::uint32_t>(base | reader_.Read(low_bits_)));
        }
      } else {
        std::uint64_t prev = base;
        for (std::uint32_t e = 0; e < len_; ++e) {
          std::uint64_t gap = set_.codec() == ScanCodec::kGamma
                                  ? ReadGamma(reader_)
                                  : ReadDelta(reader_);
          prev += gap - (e == 0 ? 1 : 0);
          elems_.push_back(static_cast<std::uint32_t>(prev));
        }
      }
      pending_ = false;
      decoded_ = true;
      scan_idx_ = 0;
    }
    return elems_;
  }

  /// Rolling index into the decoded group (windows ascend within a group).
  std::size_t scan_idx() const { return scan_idx_; }
  void set_scan_idx(std::size_t i) { scan_idx_ = i; }

 private:
  void ConsumePendingElements() {
    if (!pending_) return;
    if (set_.codec() == ScanCodec::kLowbits) {
      // O(1) skip — the Lowbits advantage.
      reader_.Skip(static_cast<std::size_t>(len_) *
                   static_cast<std::size_t>(low_bits_));
    } else {
      // Variable-width codes must be decoded to be skipped.
      for (std::uint32_t e = 0; e < len_; ++e) {
        if (set_.codec() == ScanCodec::kGamma) {
          (void)ReadGamma(reader_);
        } else {
          (void)ReadDelta(reader_);
        }
      }
    }
    pending_ = false;
  }

  const CompressedScanSet& set_;
  BitReader reader_;
  int m_;
  int low_bits_;
  std::uint64_t low_mask_;
  std::uint64_t current_group_ = 0;
  std::uint64_t next_group_ = 0;
  std::uint32_t len_ = 0;
  bool pending_ = false;
  bool decoded_ = false;
  std::vector<Word> images_;
  std::vector<std::uint32_t> elems_;
  std::size_t scan_idx_ = 0;
};

}  // namespace

void CompressedScanIntersection::Intersect(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  IntersectUnordered(sets, out);
  std::sort(out->begin(), out->end());
}

void CompressedScanIntersection::IntersectUnordered(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  std::size_t k = sets.size();
  if (k == 0) return;
  std::vector<const CompressedScanSet*> sorted;
  sorted.reserve(k);
  for (const PreprocessedSet* s : sets) {
    sorted.push_back(&As<CompressedScanSet>(*s));
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const CompressedScanSet* a, const CompressedScanSet* b) {
                     return a->size() < b->size();
                   });
  std::vector<std::uint32_t> result_gvals;
  const int b = g_.domain_bits();
  const int m = options_.m;
  if (sorted[0]->size() == 0) return;
  if (k == 1) {
    GroupCursor cur(*sorted[0], m, b);
    for (std::uint64_t z = 0; z < (std::uint64_t{1} << sorted[0]->t()); ++z) {
      cur.LoadGroup(z);
      if (cur.len() == 0) continue;
      const auto& gv = cur.DecodeElements();
      result_gvals.insert(result_gvals.end(), gv.begin(), gv.end());
    }
  } else {
    std::vector<int> t(k);
    for (std::size_t i = 0; i < k; ++i) t[i] = sorted[i]->t();
    for (std::size_t i = k - 1; i > 0; --i) {
      if (t[i - 1] > t[i]) {
        throw std::logic_error("CompressedScan: inconsistent resolutions");
      }
    }
    const int tk = t[k - 1];
    const std::uint64_t zk_count = std::uint64_t{1} << tk;

    std::vector<GroupCursor> cursors;
    cursors.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      cursors.emplace_back(*sorted[i], m, b);
    }
    std::vector<Word> partial(k * static_cast<std::size_t>(m), 0);
    std::vector<std::uint64_t> prev_z(k, ~std::uint64_t{0});

    std::uint64_t zk = 0;
    while (zk < zk_count) {
      std::size_t level = k;
      for (std::size_t i = 0; i < k; ++i) {
        if ((zk >> (tk - t[i])) != prev_z[i]) {
          level = i;
          break;
        }
      }
      bool dead = false;
      for (std::size_t i = level; i < k; ++i) {
        std::uint64_t zi = zk >> (tk - t[i]);
        prev_z[i] = zi;
        cursors[i].LoadGroup(zi);
        bool any_zero = false;
        for (int j = 0; j < m; ++j) {
          Word img = cursors[i].image(j);
          Word p = (i == 0) ? img : (partial[(i - 1) * m + j] & img);
          partial[i * static_cast<std::size_t>(m) + j] = p;
          any_zero |= (p == 0);
        }
        if (any_zero) {
          zk = (zi + 1) << (tk - t[i]);
          for (std::size_t jj = i; jj < k; ++jj) {
            prev_z[jj] = ~std::uint64_t{0};
          }
          dead = true;
          break;
        }
      }
      if (dead) continue;

      // Verification merge over the z_k window.
      const std::uint64_t win_lo = zk << (b - tk);
      const std::uint64_t win_hi = (zk + 1) << (b - tk);
      // Per-set: decode the group, position the rolling index at win_lo.
      bool empty_window = false;
      std::vector<std::span<const std::uint32_t>> gv(k);
      std::vector<std::size_t> pos(k);
      std::vector<std::size_t> lim(k);
      for (std::size_t i = 0; i < k; ++i) {
        std::uint64_t zi = zk >> (tk - t[i]);
        (void)zi;
        const auto& decoded = cursors[i].DecodeElements();
        gv[i] = decoded;
        std::size_t c = cursors[i].scan_idx();
        while (c < decoded.size() && decoded[c] < win_lo) ++c;
        cursors[i].set_scan_idx(c);
        pos[i] = c;
        lim[i] = decoded.size();
        if (c >= decoded.size() || decoded[c] >= win_hi) {
          empty_window = true;
          break;
        }
      }
      if (!empty_window) {
        std::uint32_t cand = gv[0][pos[0]];
        std::size_t agree = 1;
        std::size_t i = 1;
        while (true) {
          std::size_t p = pos[i];
          while (p < lim[i] && gv[i][p] < cand) ++p;
          pos[i] = p;
          if (cursors[i].scan_idx() < p) cursors[i].set_scan_idx(p);
          if (p >= lim[i] || gv[i][p] >= win_hi) break;
          if (gv[i][p] == cand) {
            if (++agree == k) {
              result_gvals.push_back(cand);
              ++pos[i];
              if (cursors[i].scan_idx() < pos[i]) {
                cursors[i].set_scan_idx(pos[i]);
              }
              if (pos[i] >= lim[i] || gv[i][pos[i]] >= win_hi) break;
              cand = gv[i][pos[i]];
              agree = 1;
            }
          } else {
            cand = gv[i][p];
            agree = 1;
          }
          i = (i + 1) % k;
        }
      }
      ++zk;
    }
  }

  out->reserve(result_gvals.size());
  for (std::uint32_t gvv : result_gvals) {
    out->push_back(static_cast<Elem>(g_.Invert(gvv)));
  }
}

}  // namespace fsi
