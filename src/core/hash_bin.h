// HashBin: intersecting small and large sets (Section 3.4).
//
// Both sets are viewed at resolution t = ceil(log2 n1) of the shared
// permutation g, so the smaller set has O(1) expected elements per group
// and the larger O(n2/n1).  For every element x of the smaller set's group
// L^z_1, a binary search over the *g-values* of L^z_2 (which are sorted,
// even though the raw elements inside a group are not — A.6.1) decides
// membership.  Expected time O(n1 log(n2/n1)) (Theorem 3.11) — the
// SmallAdaptive bound with a much simpler online phase.  For k > 2 sets, x
// is looked up in L^z_i only if it was found in L^z_2, ..., L^z_{i-1}.
//
// The structure needed is just the g-ordered value array plus group
// boundaries, i.e. a stripped-down multi-resolution structure; boundaries
// are recovered online by galloping, so pre-processing stores only the
// sorted g-values (O(n) space, Theorem 3.11).

#ifndef FSI_CORE_HASH_BIN_H_
#define FSI_CORE_HASH_BIN_H_

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/algorithm.h"
#include "core/cost.h"
#include "hash/feistel.h"

namespace fsi {

/// Preprocessed form: the set in g-order.
class GOrderedSet : public PreprocessedSet {
 public:
  GOrderedSet(std::span<const Elem> set, const FeistelPermutation& g);

  std::size_t size() const override { return gvals_.size(); }

  std::size_t SizeInWords() const override {
    return (gvals_.size() * sizeof(std::uint32_t) + 7) / 8;
  }

  std::span<const std::uint32_t> gvals() const { return gvals_; }

 private:
  std::vector<std::uint32_t> gvals_;
};

/// Core routine shared with the hybrid facade: intersects k >= 2 g-value
/// arrays (each ascending, same permutation, `domain_bits`-bit domain),
/// ordered smallest-first, appending matching g-values to `out_gvals`.
void HashBinIntersectGvals(
    std::span<const std::span<const std::uint32_t>> gval_lists,
    int domain_bits, std::vector<std::uint32_t>* out_gvals);

class HashBinIntersection : public IntersectionAlgorithm {
 public:
  struct Options {
    std::uint64_t seed = 0x3f84d5b5b5470917ULL;
    int universe_bits = 32;
  };

  HashBinIntersection() : HashBinIntersection(Options()) {}
  explicit HashBinIntersection(const Options& options);

  /// Planner cost hook (core/cost.h): the Theorem 3.11 bound
  /// O(n1 log(n2/n1)) — cost = hashbin_ns * n1 * log2(2 + n2/n1), plus the
  /// partition-family per-result term scan_result_ns (the g^-1 inversions
  /// and document-order sort).
  static double StepCost(const StepCostQuery& q, const CostConstants& c);

  std::string_view name() const override { return "HashBin"; }

  std::unique_ptr<PreprocessedSet> Preprocess(
      std::span<const Elem> set) const override;

  void Intersect(std::span<const PreprocessedSet* const> sets,
                 ElemList* out) const override;

  void IntersectUnordered(std::span<const PreprocessedSet* const> sets,
                          ElemList* out) const override;

  const FeistelPermutation& permutation() const { return g_; }

 private:
  Options options_;
  FeistelPermutation g_;
};

}  // namespace fsi

#endif  // FSI_CORE_HASH_BIN_H_
