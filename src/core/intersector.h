// Algorithm facade and registry.
//
// HybridIntersection implements the online algorithm choice the paper
// closes Section 3.4 with: "since [HashBin] is based on the same structure
// as the algorithm introduced in Section 3.2, we can make the choice
// between algorithms online, based on n1/n2".  One pre-processed structure
// (the RanGroupScan block layout, whose g-value array is globally sorted)
// serves both algorithms; queries with heavily skewed set sizes take the
// HashBin path, balanced ones take RanGroupScan.
//
// CreateAlgorithm() instantiates any algorithm in the library by its
// paper name — the single entry point used by the benchmark harness, the
// property-test sweep and the examples.

#ifndef FSI_CORE_INTERSECTOR_H_
#define FSI_CORE_INTERSECTOR_H_

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/algorithm.h"
#include "core/cost.h"
#include "core/hash_bin.h"
#include "core/ran_group_scan.h"

namespace fsi {

class HybridIntersection : public IntersectionAlgorithm {
 public:
  struct Options {
    RanGroupScanIntersection::Options scan;
    /// Size-ratio threshold above which the HashBin path is taken.  The
    /// paper proposes switching near sr = 32; in this implementation the
    /// scan path already walks only the smaller set's windows (see
    /// ran_group_scan.cc), which subsumes HashBin's advantage, so the
    /// switch is off by default (infinite threshold).  Set a finite value
    /// to restore the paper's online choice.
    double skew_threshold = 1e300;
  };

  HybridIntersection() : HybridIntersection(Options()) {}
  explicit HybridIntersection(const Options& options);

  /// Planner cost hook (core/cost.h): the facade takes whichever of its two
  /// paths is cheaper — min(RanGroupScan::StepCost, HashBin::StepCost).
  static double StepCost(const StepCostQuery& q, const CostConstants& c);

  std::string_view name() const override { return "Hybrid"; }

  std::unique_ptr<PreprocessedSet> Preprocess(
      std::span<const Elem> set) const override;

  void Intersect(std::span<const PreprocessedSet* const> sets,
                 ElemList* out) const override;

  void IntersectUnordered(std::span<const PreprocessedSet* const> sets,
                          ElemList* out) const override;

 private:
  Options options_;
  RanGroupScanIntersection scan_;
};

/// Creates an algorithm by its paper name — a thin shim over
/// fsi::AlgorithmRegistry (api/registry.h), which is the canonical way to
/// enumerate and construct algorithms.  Recognised names:
///   Merge, SkipList, Hash, BPP, Lookup, SvS, Adaptive, BaezaYates,
///   SmallAdaptive, IntGroup, RanGroup, RanGroupScan, RanGroupScan2
///   (m = 2), HashBin, Hybrid, Merge_Gamma, Merge_Delta, Lookup_Gamma,
///   Lookup_Delta, RanGroupScan_Lowbits, RanGroupScan_Gamma,
///   RanGroupScan_Delta.
/// Registry option-spec strings (e.g. "RanGroupScan:m=2,w=4") are also
/// accepted.  Throws std::invalid_argument for unknown names or options.
/// All randomized algorithms derive their internal hash functions from
/// `seed`.
std::unique_ptr<IntersectionAlgorithm> CreateAlgorithm(
    std::string_view name, std::uint64_t seed = kDefaultAlgorithmSeed);

/// Names of the uncompressed algorithms (the Section 4 cast).
std::vector<std::string_view> UncompressedAlgorithmNames();

/// Names of the compressed algorithms (the Section 4.1 cast).
std::vector<std::string_view> CompressedAlgorithmNames();

}  // namespace fsi

#endif  // FSI_CORE_INTERSECTOR_H_
