#include "core/ran_group_scan.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace fsi {

double RanGroupScanIntersection::StepCost(const StepCostQuery& q,
                                          const CostConstants& c) {
  return c.scan_ns * static_cast<double>(q.small_size + q.large_size) +
         c.scan_result_ns * q.est_result;
}

ScanSet::ScanSet(std::span<const Elem> set, const FeistelPermutation& g,
                 const WordHashFamily& hashes, int t)
    : t_(t), m_(hashes.size()) {
  DebugCheckSortedUnique(set, "RanGroupScan");
  if (!set.empty() && g.domain_bits() < 32 &&
      set.back() >= (Elem{1} << g.domain_bits())) {
    throw std::invalid_argument(
        "RanGroupScan: element outside the permutation domain");
  }
  std::size_t n = set.size();
  std::vector<std::uint32_t> gvals(n);
  for (std::size_t i = 0; i < n; ++i) {
    gvals[i] = static_cast<std::uint32_t>(g.Apply(set[i]));
  }
  std::sort(gvals.begin(), gvals.end());

  std::uint64_t groups = std::uint64_t{1} << t_;
  int shift = g.domain_bits() - t_;
  std::vector<std::uint32_t> group_start(groups + 1, 0);
  for (std::uint32_t gv : gvals) {
    ++group_start[(static_cast<std::uint64_t>(gv) >> shift) + 1];
  }
  for (std::size_t z = 1; z <= groups; ++z) {
    group_start[z] += group_start[z - 1];
  }
  std::vector<Word> images(groups * static_cast<std::uint64_t>(m_), 0);
  for (std::uint64_t z = 0; z < groups; ++z) {
    Word* img = &images[z * static_cast<std::uint64_t>(m_)];
    for (std::uint32_t i = group_start[z]; i < group_start[z + 1]; ++i) {
      hashes.AccumulateImages(gvals[i], img);
    }
  }
  group_start_ = storage::FlatArray<std::uint32_t>(std::move(group_start));
  images_ = storage::FlatArray<Word>(std::move(images));
  gvals_ = storage::FlatArray<std::uint32_t>(std::move(gvals));
}

ScanSet::ScanSet(int t, int m, storage::FlatArray<std::uint32_t> group_start,
                 storage::FlatArray<Word> images,
                 storage::FlatArray<std::uint32_t> gvals)
    : t_(t),
      m_(m),
      group_start_(std::move(group_start)),
      images_(std::move(images)),
      gvals_(std::move(gvals)) {
  Validate();
}

void ScanSet::Validate() const {
  using storage::SnapshotError;
  using storage::SnapshotErrorCode;
  if (t_ < 0 || t_ > 32 || m_ < 1 || m_ > 64) {
    throw SnapshotError(SnapshotErrorCode::kCorrupt,
                        "ScanSet: implausible header (t=" +
                            std::to_string(t_) + ", m=" +
                            std::to_string(m_) + ")");
  }
  const std::uint64_t groups = std::uint64_t{1} << t_;
  if (group_start_.size() != groups + 1 ||
      images_.size() != groups * static_cast<std::uint64_t>(m_)) {
    throw SnapshotError(SnapshotErrorCode::kCorrupt,
                        "ScanSet: array sizes inconsistent with t/m");
  }
  if (group_start_.front() != 0 || group_start_.back() != gvals_.size()) {
    throw SnapshotError(SnapshotErrorCode::kCorrupt,
                        "ScanSet: corrupt group offsets");
  }
  for (std::size_t z = 1; z < group_start_.size(); ++z) {
    if (group_start_[z] < group_start_[z - 1]) {
      throw SnapshotError(SnapshotErrorCode::kCorrupt,
                          "ScanSet: corrupt group offsets");
    }
  }
}

void ScanSet::WriteFlat(storage::PayloadWriter& payload,
                        storage::SetRecord& record) const {
  record.kind = static_cast<std::uint32_t>(storage::SetKind::kScan);
  record.t = t_;
  record.m = static_cast<std::uint32_t>(m_);
  record.group_start = payload.Append(group_start_.view());
  record.images = payload.Append(images_.view());
  record.gvals = payload.Append(gvals_.view());
}

std::unique_ptr<ScanSet> ScanSet::ViewFlat(std::span<const std::byte> payload,
                                           const storage::SetRecord& record) {
  return std::unique_ptr<ScanSet>(new ScanSet(
      record.t, static_cast<int>(record.m),
      storage::FlatArray<std::uint32_t>::View(storage::ResolveSpan<std::uint32_t>(
          payload, record.group_start, "ScanSet.group_start")),
      storage::FlatArray<Word>::View(
          storage::ResolveSpan<Word>(payload, record.images, "ScanSet.images")),
      storage::FlatArray<std::uint32_t>::View(storage::ResolveSpan<std::uint32_t>(
          payload, record.gvals, "ScanSet.gvals"))));
}

std::unique_ptr<ScanSet> ScanSet::FromParts(
    int t, int m, std::vector<std::uint32_t> group_start,
    std::vector<Word> images, std::vector<std::uint32_t> gvals) {
  return std::unique_ptr<ScanSet>(
      new ScanSet(t, m, storage::FlatArray<std::uint32_t>(std::move(group_start)),
                  storage::FlatArray<Word>(std::move(images)),
                  storage::FlatArray<std::uint32_t>(std::move(gvals))));
}

std::size_t ScanSet::SizeInWords() const {
  return (gvals_.size() * sizeof(std::uint32_t) + 7) / 8 +
         (group_start_.size() * sizeof(std::uint32_t) + 7) / 8 +
         images_.size();
}

RanGroupScanIntersection::RanGroupScanIntersection(const Options& options)
    : options_(options),
      name_("RanGroupScan"),
      g_(options.universe_bits, SplitMix64(options.seed).Next()),
      hashes_(options.m, SplitMix64(options.seed ^ 0xc0ac29b7c97c50ddULL)
                             .Next()),
      kernels_(&simd::Select(options.simd)) {
  if (options.m < 1) {
    throw std::invalid_argument("RanGroupScan: m must be >= 1");
  }
  if (options.group_width < 1) {
    throw std::invalid_argument("RanGroupScan: group_width must be >= 1");
  }
}

std::unique_ptr<PreprocessedSet> RanGroupScanIntersection::Preprocess(
    std::span<const Elem> set) const {
  // t_i = ceil(log2(n_i / sqrt(w))), clamped into [0, domain_bits]
  // (Theorem 3.9 and Section 3.3.1: the resolution depends only on |L_i|,
  // so a single partitioning per set suffices).
  std::uint64_t n = set.size();
  const std::uint64_t width = options_.group_width;
  int t = 0;
  if (n > width) {
    t = CeilLog2((n + width - 1) / width);
  }
  t = std::min(t, g_.domain_bits());
  return std::make_unique<ScanSet>(set, g_, hashes_, t);
}

void RanGroupScanIntersection::Intersect(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  IntersectUnordered(sets, out);
  std::sort(out->begin(), out->end());
}

void RanGroupScanIntersection::IntersectUnordered(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  std::size_t k = sets.size();
  if (k == 0) return;
  // Scratch is thread-local: queries on short posting lists run in a few
  // microseconds, where per-call allocation would dominate.
  thread_local std::vector<const ScanSet*> sorted;
  sorted.clear();
  sorted.reserve(k);
  for (const PreprocessedSet* s : sets) sorted.push_back(&As<ScanSet>(*s));
  std::stable_sort(
      sorted.begin(), sorted.end(),
      [](const ScanSet* a, const ScanSet* b) { return a->size() < b->size(); });

  thread_local std::vector<std::uint32_t> result_gvals;
  result_gvals.clear();
  if (sorted[0]->size() == 0) return;
  if (k == 1) {
    result_gvals.assign(sorted[0]->gvals().begin(), sorted[0]->gvals().end());
  } else {
    const int m = options_.m;
    const int b = g_.domain_bits();
    // Resolutions come from pre-processing; enforce t_1 <= ... <= t_k so the
    // prefix relation of Algorithm 5 holds even for equal-size sets.
    thread_local std::vector<int> t;
    t.assign(k, 0);
    for (std::size_t i = 0; i < k; ++i) t[i] = sorted[i]->t();
    for (std::size_t i = k - 1; i > 0; --i) {
      t[i - 1] = std::min(t[i - 1], t[i]);
      if (t[i - 1] != sorted[i - 1]->t()) {
        // A mismatched resolution would need a rebuild; in practice sizes
        // are ascending so this never triggers — guard anyway.
        throw std::logic_error("RanGroupScan: inconsistent resolutions");
      }
    }
    const int tk = t[k - 1];
    const std::uint64_t zk_count = std::uint64_t{1} << tk;

    // Fast path 1: two sets at any resolutions t1 <= t2 (the dominant query
    // shape).  z_k iterates set 2's groups; set 1's matching group is the
    // prefix, tracked with one rolling cursor — the per-window vector
    // machinery of the general path is unnecessary.  When t1 == t2 the
    // window equals the group pair and the cursor advances trivially.
    bool aligned = options_.memoize;
    for (std::size_t i = 0; i + 1 < k; ++i) aligned &= (t[i] == t[i + 1]);
    if (k == 2 && options_.memoize) {
      const ScanSet& a = *sorted[0];
      const ScanSet& b2 = *sorted[1];
      const int dt = t[1] - t[0];
      const int low_bits = b - t[1];
      std::span<const std::uint32_t> ga = a.gvals();
      std::span<const std::uint32_t> gb = b2.gvals();
      // Only z_2 windows containing elements of the *smaller* set can
      // contribute, so walk the smaller set's g-values and visit each
      // distinct t2-prefix once — min(n1, n2/sqrt(w)) image tests instead
      // of n2/sqrt(w).  (Windows the loop skips have an empty set-1 side,
      // exactly what Algorithm 5's verification would conclude.)
      if (dt == 0) {
        // Equal resolutions: groups align one-to-one and the prefix runs
        // are exactly the groups — skip the run detection.
        for (std::uint64_t z = 0; z < zk_count; ++z) {
          bool survives = true;
          for (int j = 0; j < m; ++j) {
            if ((a.Image(z, j) & b2.Image(z, j)) == 0) {
              survives = false;
              break;
            }
          }
          if (!survives) continue;
          // The surviving group pair resolves through the kernel layer:
          // one broadcast compares a g-value against a whole group on the
          // vector tiers (the paper's word-level group-vs-element idea at
          // lane width), the scalar tier is the original two-pointer loop.
          auto [alo, ahi] = a.GroupRange(z);
          auto [blo, bhi] = b2.GroupRange(z);
          kernels_->intersect_pair(ga.data() + alo, ahi - alo,
                                   gb.data() + blo, bhi - blo, &result_gvals);
        }
        goto done_two_set;
      }
      {
      std::uint32_t ca = 0;
      const std::uint32_t na = static_cast<std::uint32_t>(ga.size());
      while (ca < na) {
        const std::uint64_t z2 = static_cast<std::uint64_t>(ga[ca]) >> low_bits;
        const std::uint64_t z1 = z2 >> dt;
        // The run of set-1 elements sharing this window.
        std::uint32_t ra = ca + 1;
        while (ra < na &&
               (static_cast<std::uint64_t>(ga[ra]) >> low_bits) == z2) {
          ++ra;
        }
        bool survives = true;
        for (int j = 0; j < m; ++j) {
          if ((a.Image(z1, j) & b2.Image(z2, j)) == 0) {
            survives = false;
            break;
          }
        }
        if (survives) {
          auto [blo, bhi] = b2.GroupRange(z2);  // group z2 == the window
          kernels_->intersect_pair(ga.data() + ca, ra - ca,
                                   gb.data() + blo, bhi - blo, &result_gvals);
        }
        ca = ra;
      }
      }
    done_two_set:;
    } else if (aligned && k >= 3) {
      // Fast path 2: k sets at one shared resolution — group tuples align
      // one-to-one; AND all k*m images, then round-robin merge the groups.
      std::span<const std::uint32_t> g0 = sorted[0]->gvals();
      thread_local std::vector<std::uint32_t> pos_a;
      thread_local std::vector<std::uint32_t> lim_a;
      pos_a.assign(k, 0);
      lim_a.assign(k, 0);
      for (std::uint64_t z = 0; z < zk_count; ++z) {
        bool survives = true;
        for (int j = 0; j < m && survives; ++j) {
          Word acc = sorted[0]->Image(z, j);
          for (std::size_t i = 1; i < k && acc != 0; ++i) {
            acc &= sorted[i]->Image(z, j);
          }
          survives = (acc != 0);
        }
        if (!survives) continue;
        bool empty_group = false;
        for (std::size_t i = 0; i < k; ++i) {
          auto [lo, hi] = sorted[i]->GroupRange(z);
          pos_a[i] = lo;
          lim_a[i] = hi;
          empty_group |= (lo == hi);
        }
        if (empty_group) continue;
        std::uint32_t cand = g0[pos_a[0]];
        std::size_t agree = 1;
        std::size_t i = 1;
        while (true) {
          std::span<const std::uint32_t> gv = sorted[i]->gvals();
          std::uint32_t p = pos_a[i];
          while (p < lim_a[i] && gv[p] < cand) ++p;
          pos_a[i] = p;
          if (p >= lim_a[i]) break;
          if (gv[p] == cand) {
            if (++agree == k) {
              result_gvals.push_back(cand);
              ++pos_a[i];
              if (pos_a[i] >= lim_a[i]) break;
              cand = gv[pos_a[i]];
              agree = 1;
            }
          } else {
            cand = gv[p];
            agree = 1;
          }
          i = (i + 1) % k;
        }
      }
    } else if (options_.memoize) {
      // Fast path 3: k >= 3 sets at mixed resolutions — the run-based walk
      // of fast path 1 generalized.  Only windows holding elements of the
      // smallest set can contribute; per surviving window the other sets'
      // groups are clipped to the window with monotone rolling cursors.
      const ScanSet& lead = *sorted[0];
      const int tk = t[k - 1];
      const int low_bits = b - tk;
      std::span<const std::uint32_t> gl = lead.gvals();
      const std::uint32_t nl = static_cast<std::uint32_t>(gl.size());
      thread_local std::vector<std::uint32_t> cur;
      cur.assign(k, 0);
      thread_local std::vector<std::uint32_t> pos_r;
      pos_r.assign(k, 0);
      thread_local std::vector<std::uint32_t> lim_r;
      lim_r.assign(k, 0);
      std::uint32_t ca = 0;
      while (ca < nl) {
        const std::uint64_t zk =
            static_cast<std::uint64_t>(gl[ca]) >> low_bits;
        std::uint32_t ra = ca + 1;
        while (ra < nl &&
               (static_cast<std::uint64_t>(gl[ra]) >> low_bits) == zk) {
          ++ra;
        }
        bool survives = true;
        for (int j = 0; j < m && survives; ++j) {
          Word acc = sorted[0]->Image(zk >> (tk - t[0]), j);
          for (std::size_t i = 1; i < k && acc != 0; ++i) {
            acc &= sorted[i]->Image(zk >> (tk - t[i]), j);
          }
          survives = (acc != 0);
        }
        if (survives) {
          const std::uint64_t win_lo = zk << low_bits;
          const std::uint64_t win_hi = (zk + 1) << low_bits;
          bool empty_window = false;
          pos_r[0] = ca;
          lim_r[0] = ra;
          for (std::size_t i = 1; i < k; ++i) {
            std::uint64_t zi = zk >> (tk - t[i]);
            auto [lo, hi] = sorted[i]->GroupRange(zi);
            std::uint32_t c = std::max(cur[i], lo);
            std::span<const std::uint32_t> gv = sorted[i]->gvals();
            while (c < hi && gv[c] < win_lo) ++c;
            cur[i] = c;
            pos_r[i] = c;
            lim_r[i] = hi;
            if (c >= hi || gv[c] >= win_hi) {
              empty_window = true;
              break;
            }
          }
          if (!empty_window) {
            std::uint32_t cand = gl[pos_r[0]];
            std::size_t agree = 1;
            std::size_t i = 1;
            while (true) {
              std::span<const std::uint32_t> gv = sorted[i]->gvals();
              std::uint32_t p = pos_r[i];
              while (p < lim_r[i] && gv[p] < cand) ++p;
              pos_r[i] = p;
              if (i != 0 && cur[i] < p) cur[i] = p;
              if (p >= lim_r[i] || gv[p] >= win_hi) break;
              if (gv[p] == cand) {
                if (++agree == k) {
                  result_gvals.push_back(cand);
                  ++pos_r[i];
                  if (i != 0 && cur[i] < pos_r[i]) cur[i] = pos_r[i];
                  if (pos_r[i] >= lim_r[i] || gv[pos_r[i]] >= win_hi) break;
                  cand = gv[pos_r[i]];
                  agree = 1;
                }
              } else {
                cand = gv[p];
                agree = 1;
              }
              i = (i + 1) % k;
            }
          }
        }
        ca = ra;
      }
    } else {
    // Memoized partial ANDs: partial[i*m + j] = AND of image j over sets
    // 0..i (A.5.3).
    thread_local std::vector<Word> partial;
    partial.assign(k * static_cast<std::size_t>(m), 0);
    thread_local std::vector<std::uint64_t> prev_z;
    prev_z.assign(k, ~std::uint64_t{0});
    // Rolling per-set cursors; monotone because z_k only increases.
    thread_local std::vector<std::uint32_t> cursor;
    cursor.assign(k, 0);
    thread_local std::vector<std::uint32_t> pos;
    pos.assign(k, 0);
    thread_local std::vector<std::uint32_t> lim;
    lim.assign(k, 0);

    std::uint64_t zk = 0;
    while (zk < zk_count) {
      std::size_t level = k;
      if (options_.memoize) {
        for (std::size_t i = 0; i < k; ++i) {
          if ((zk >> (tk - t[i])) != prev_z[i]) {
            level = i;
            break;
          }
        }
      } else {
        level = 0;
      }
      bool dead = false;
      for (std::size_t i = level; i < k; ++i) {
        std::uint64_t zi = zk >> (tk - t[i]);
        prev_z[i] = zi;
        Word alive = ~Word{0};
        for (int j = 0; j < m; ++j) {
          Word img = sorted[i]->Image(zi, j);
          Word p = (i == 0) ? img : (partial[(i - 1) * m + j] & img);
          partial[i * static_cast<std::size_t>(m) + j] = p;
          alive &= (p != 0) ? ~Word{0} : 0;
        }
        if (alive == 0) {
          // Some h_j already proves emptiness for this whole prefix.
          if (options_.memoize) {
            zk = (zi + 1) << (tk - t[i]);
            for (std::size_t jj = i; jj < k; ++jj) {
              prev_z[jj] = ~std::uint64_t{0};
            }
          } else {
            ++zk;
          }
          dead = true;
          break;
        }
      }
      if (dead) continue;

      // Verification: linear merge of the k groups restricted to the z_k
      // window of g-value space (Algorithm 5 line 4).
      const std::uint64_t win_lo = zk << (b - tk);
      const std::uint64_t win_hi = (zk + 1) << (b - tk);
      bool empty_window = false;
      for (std::size_t i = 0; i < k; ++i) {
        std::uint64_t zi = zk >> (tk - t[i]);
        auto [lo, hi] = sorted[i]->GroupRange(zi);
        std::uint32_t c = std::max(cursor[i], lo);
        std::span<const std::uint32_t> gv = sorted[i]->gvals();
        while (c < hi && gv[c] < win_lo) ++c;
        cursor[i] = c;
        pos[i] = c;
        lim[i] = hi;
        if (c >= hi || gv[c] >= win_hi) {
          empty_window = true;
          break;
        }
      }
      if (!empty_window) {
        // Round-robin candidate merge inside the window.
        std::uint32_t cand = sorted[0]->gvals()[pos[0]];
        std::size_t agree = 1;
        std::size_t i = 1;
        while (true) {
          std::span<const std::uint32_t> gv = sorted[i]->gvals();
          std::uint32_t p = pos[i];
          while (p < lim[i] && gv[p] < cand) ++p;
          pos[i] = p;
          cursor[i] = std::max(cursor[i], p);
          if (p >= lim[i] || gv[p] >= win_hi) break;
          if (gv[p] == cand) {
            if (++agree == k) {
              result_gvals.push_back(cand);
              ++pos[i];
              cursor[i] = std::max(cursor[i], pos[i]);
              if (pos[i] >= lim[i] || gv[pos[i]] >= win_hi) break;
              cand = gv[pos[i]];
              agree = 1;
            }
          } else {
            cand = gv[p];
            agree = 1;
          }
          i = (i + 1) % k;
        }
      }
      ++zk;
    }
    }  // general path
  }

  out->reserve(result_gvals.size());
  for (std::uint32_t gv : result_gvals) {
    out->push_back(static_cast<Elem>(g_.Invert(gv)));
  }
}

}  // namespace fsi
