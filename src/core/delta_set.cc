#include "core/delta_set.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace fsi {
namespace {

/// First index with sorted[i] >= x (plain binary search; the kernel table
/// is used where the call sites are hot).
std::size_t LowerBoundIndex(std::span<const Elem> sorted, Elem x) {
  return static_cast<std::size_t>(
      std::lower_bound(sorted.begin(), sorted.end(), x) - sorted.begin());
}

bool SortedContains(std::span<const Elem> sorted, Elem x) {
  std::size_t i = LowerBoundIndex(sorted, x);
  return i < sorted.size() && sorted[i] == x;
}

/// Copy of `list` with `value` spliced in at its sorted position.
std::shared_ptr<const ElemList> WithValue(std::span<const Elem> list,
                                          Elem value) {
  auto out = std::make_shared<ElemList>();
  out->reserve(list.size() + 1);
  std::size_t at = LowerBoundIndex(list, value);
  out->insert(out->end(), list.begin(), list.begin() + at);
  out->push_back(value);
  out->insert(out->end(), list.begin() + at, list.end());
  return out;
}

/// Copy of `list` without `value`; null when the copy would be empty.
std::shared_ptr<const ElemList> WithoutValue(std::span<const Elem> list,
                                             Elem value) {
  if (list.size() == 1) return nullptr;
  auto out = std::make_shared<ElemList>();
  out->reserve(list.size() - 1);
  for (Elem e : list) {
    if (e != value) out->push_back(e);
  }
  return out;
}

}  // namespace

std::optional<DeltaSnapshot> DeltaInsert(std::span<const Elem> base,
                                         const DeltaSnapshot& delta,
                                         Elem value) {
  if (SortedContains(delta.erase_span(), value)) {
    // Revoke the tombstone: value returns through the base tier.
    return DeltaSnapshot{delta.inserts, WithoutValue(delta.erase_span(),
                                                     value)};
  }
  if (SortedContains(base, value)) return std::nullopt;  // already present
  if (SortedContains(delta.insert_span(), value)) return std::nullopt;
  return DeltaSnapshot{WithValue(delta.insert_span(), value), delta.erases};
}

std::optional<DeltaSnapshot> DeltaErase(std::span<const Elem> base,
                                        const DeltaSnapshot& delta,
                                        Elem value) {
  if (SortedContains(delta.insert_span(), value)) {
    return DeltaSnapshot{WithoutValue(delta.insert_span(), value),
                         delta.erases};
  }
  if (SortedContains(delta.erase_span(), value)) return std::nullopt;
  if (!SortedContains(base, value)) return std::nullopt;  // never present
  return DeltaSnapshot{delta.inserts, WithValue(delta.erase_span(), value)};
}

bool EffectiveContains(std::span<const Elem> base, const DeltaSnapshot& delta,
                       Elem value, const simd::Kernels& kernels) {
  std::span<const Elem> erases = delta.erase_span();
  if (!erases.empty()) {
    std::size_t i = kernels.lower_bound(erases.data(), erases.size(), value);
    if (i < erases.size() && erases[i] == value) return false;
  }
  std::span<const Elem> inserts = delta.insert_span();
  if (!inserts.empty()) {
    std::size_t i = kernels.lower_bound(inserts.data(), inserts.size(), value);
    if (i < inserts.size() && inserts[i] == value) return true;
  }
  std::size_t i = kernels.lower_bound(base.data(), base.size(), value);
  return i < base.size() && base[i] == value;
}

ElemList MergeEffective(std::span<const Elem> base,
                        const DeltaSnapshot& delta) {
  std::span<const Elem> inserts = delta.insert_span();
  std::span<const Elem> erases = delta.erase_span();
  ElemList out;
  out.reserve(base.size() - erases.size() + inserts.size());
  std::size_t bi = 0, ii = 0, ei = 0;
  while (bi < base.size() || ii < inserts.size()) {
    // inserts ∩ base = ∅, so strict comparison fully orders the merge.
    if (ii < inserts.size() &&
        (bi == base.size() || inserts[ii] < base[bi])) {
      out.push_back(inserts[ii++]);
      continue;
    }
    Elem b = base[bi++];
    while (ei < erases.size() && erases[ei] < b) ++ei;  // erases ⊆ base
    if (ei < erases.size() && erases[ei] == b) {
      ++ei;
      continue;  // tombstoned
    }
    out.push_back(b);
  }
  return out;
}

void SubtractSortedInPlace(ElemList* result, std::span<const Elem> erases,
                           const simd::Kernels& kernels) {
  if (erases.empty() || result->empty()) return;
  ElemList& r = *result;
  // Two-cursor merge: both sides are sorted, so the erase cursor only
  // ever advances — O(|result| + |erases|) with one compare per result
  // element on the hot path (a per-element search would cost a function
  // call plus O(log) probes each, an order of magnitude more).
  std::size_t write = 0;
  std::size_t ei = 0;
  const std::size_t en = erases.size();
  for (std::size_t i = 0; i < r.size(); ++i) {
    Elem x = r[i];
    while (ei < en && erases[ei] < x) ++ei;
    if (ei < en && erases[ei] == x) {
      ++ei;
      continue;  // tombstoned
    }
    r[write++] = x;
  }
  r.resize(write);
  (void)kernels;
}

namespace {

/// Two independent bucket indices into one 64-bit word of a Bloom gate,
/// derived from a single multiplicative scramble (the low bits of nearby
/// doc ids collide, the scrambled high bits do not).
struct GateHash {
  std::size_t word;
  std::uint64_t probe;  // the two bits to test/set within that word
};

inline GateHash HashIntoGate(Elem x, std::size_t word_mask) {
  std::uint64_t h = static_cast<std::uint64_t>(x) * 0x9E3779B97F4A7C15ULL;
  std::uint64_t bit_a = (h >> 32) & 63;
  std::uint64_t bit_b = (h >> 38) & 63;
  return GateHash{static_cast<std::size_t>((h >> 44)) & word_mask,
                  (1ull << bit_a) | (1ull << bit_b)};
}

}  // namespace

void SubtractUnorderedInPlace(ElemList* result, std::span<const Elem> erases,
                              const simd::Kernels& kernels) {
  if (erases.empty() || result->empty()) return;
  ElemList& r = *result;
  // The result is unordered, so every element must be screened — keep the
  // common case (not tombstoned) to one L1 load: a blocked Bloom gate
  // (two bits per key inside a single 64-bit word, ~32 bits budgeted per
  // tombstone) rejects almost every element with one load and one AND.
  // The scan is read-only; tombstoned survivors are swapped out from the
  // back afterwards, which is legal precisely because this is the
  // unordered path.
  // ≥16 bits per tombstone: small enough to stay L1-resident next to the
  // streamed result (a larger gate has fewer false positives but loses
  // more to cache misses than the rare fallback searches cost).
  std::size_t words = 1;
  while (words * 4 < erases.size()) words <<= 1;
  words = std::min<std::size_t>(words, 1u << 16);  // cap the gate at 512 KiB
  const std::size_t word_mask = words - 1;
  std::vector<std::uint64_t> gate(words, 0);
  for (Elem e : erases) {
    GateHash g = HashIntoGate(e, word_mask);
    gate[g.word] |= g.probe;
  }
  std::vector<std::size_t> hits;
  for (std::size_t i = 0; i < r.size(); ++i) {
    GateHash g = HashIntoGate(r[i], word_mask);
    if ((gate[g.word] & g.probe) != g.probe) continue;  // definitely live
    std::size_t ei = kernels.lower_bound(erases.data(), erases.size(), r[i]);
    if (ei < erases.size() && erases[ei] == r[i]) hits.push_back(i);
  }
  // Swap-remove back to front so earlier recorded indices stay valid.
  std::size_t end = r.size();
  for (std::size_t j = hits.size(); j > 0; --j) {
    r[hits[j - 1]] = r[--end];
  }
  r.resize(end);
}

ElemList UnionInsertBuffers(std::span<const DeltaSnapshot* const> deltas) {
  ElemList out;
  std::size_t contributing = 0;
  for (const DeltaSnapshot* delta : deltas) {
    std::span<const Elem> inserts = delta->insert_span();
    if (!inserts.empty()) ++contributing;
    out.insert(out.end(), inserts.begin(), inserts.end());
  }
  // Each buffer is already sorted and duplicate-free; only a genuine
  // multi-set union needs the sort.
  if (contributing > 1) {
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return out;
}

void FilterByEffectiveMembership(ElemList* candidates,
                                 std::span<const Elem> base,
                                 const DeltaSnapshot& delta,
                                 const simd::Kernels& kernels) {
  ElemList& c = *candidates;
  // Candidates arrive sorted, and so are all three membership tiers, so
  // every cursor only moves forward: the delta tiers (comparable in size
  // to the candidate list) advance linearly, and the large base is only
  // gallop-probed for candidates the insert buffer did not already admit.
  // The common case — a candidate from this very set's insert buffer —
  // resolves with two linear-cursor compares and never touches base.
  std::span<const Elem> erases = delta.erase_span();
  std::span<const Elem> inserts = delta.insert_span();
  std::size_t write = 0, ei = 0, ii = 0, bi = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    Elem x = c[i];
    while (ei < erases.size() && erases[ei] < x) ++ei;
    if (ei < erases.size() && erases[ei] == x) continue;  // tombstoned
    while (ii < inserts.size() && inserts[ii] < x) ++ii;
    if (ii < inserts.size() && inserts[ii] == x) {
      c[write++] = x;  // pending insert
      continue;
    }
    if (bi < base.size()) {
      bi = kernels.gallop_ge(base.data(), base.size(), bi, x);
      if (bi < base.size() && base[bi] == x) c[write++] = x;
    }
  }
  c.resize(write);
}

void IntersectWithSortedSpan(ElemList* candidates, std::span<const Elem> elems,
                             const simd::Kernels& kernels) {
  ElemList& c = *candidates;
  if (c.empty()) return;
  if (elems.empty()) {
    c.clear();
    return;
  }
  // Candidates are few (one per pending insert); the companion span can be
  // the whole set. Galloping probes with an advancing cursor cost
  // O(|c| · log(|elems| / |c|)) versus O(|elems|) for a full merge.
  std::size_t write = 0;
  std::size_t at = 0;
  for (std::size_t i = 0; i < c.size() && at < elems.size(); ++i) {
    Elem x = c[i];
    at = kernels.gallop_ge(elems.data(), elems.size(), at, x);
    if (at < elems.size() && elems[at] == x) c[write++] = x;
  }
  c.resize(write);
}

void MergeSortedDisjointInPlace(ElemList* result, std::span<const Elem> extra,
                                const simd::Kernels& kernels) {
  if (extra.empty()) return;
  ElemList& r = *result;
  std::size_t old_size = r.size();
  r.resize(old_size + extra.size());
  // Backward merge, so the in-place write never overtakes the read cursor.
  std::size_t ri = old_size;
  std::size_t xi = extra.size();
  std::size_t write = r.size();
  while (xi > 0) {
    if (ri > 0 && r[ri - 1] > extra[xi - 1]) {
      r[--write] = r[--ri];
    } else {
      r[--write] = extra[--xi];
    }
  }
  (void)kernels;  // the scalar backward merge is already branch-light here
}

double DeltaFixupMicros(std::size_t num_sets, double est_result,
                        std::size_t total_erases, std::size_t total_inserts,
                        std::size_t max_base_size, const CostConstants& cost) {
  if (total_erases == 0 && total_inserts == 0) return 0.0;
  double micros = 0.0;
  if (total_erases > 0) {
    // Tombstone subtraction: a merge walk over the result plus galloping
    // hops across the tombstone arrays.
    micros += 1e-3 * cost.merge_ns *
              (est_result + static_cast<double>(total_erases));
  }
  if (total_inserts > 0) {
    // Candidate filtering: every candidate is probed in each of the k
    // sets with a log-cost galloping search.
    double probes = static_cast<double>(total_inserts) *
                    static_cast<double>(num_sets);
    double log_n = std::log2(2.0 + static_cast<double>(max_base_size));
    micros += 1e-3 * cost.gallop_ns * probes * log_n;
  }
  return micros;
}

}  // namespace fsi
