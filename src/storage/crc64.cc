#include "storage/crc64.h"

#include <bit>
#include <cstring>

namespace fsi::storage {
namespace {

// Reflected form of the ECMA-182 polynomial (CRC-64/XZ).
constexpr std::uint64_t kPoly = 0xC96C5795D7870F42ULL;

// tables[0] is the classic bytewise table; tables[k] advances a byte that
// sits k positions deeper in the 16-byte gulp (slice-by-16: two 8-byte
// words per step, with the CRC folded into the first — the second word's
// tables bake in an extra 8-byte shift).
struct Crc64Tables {
  std::uint64_t t[16][256];

  Crc64Tables() {
    for (unsigned i = 0; i < 256; ++i) {
      std::uint64_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (unsigned i = 0; i < 256; ++i) {
      for (int k = 1; k < 16; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
      }
    }
  }
};

const Crc64Tables& Tables() {
  static const Crc64Tables tables;
  return tables;
}

}  // namespace

std::uint64_t Crc64(const void* data, std::size_t bytes, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  const Crc64Tables& tb = Tables();
  std::uint64_t crc = ~seed;
  // The wide gulp folds the low half of the running CRC into the input
  // words directly, which is only correct when the in-memory word order
  // matches the reflected bit order — i.e. on little-endian hosts.  The
  // snapshot format is little-endian-only anyway; big-endian hosts take
  // the bytewise loop below.
  if constexpr (std::endian::native == std::endian::little) {
    while (bytes >= 16) {
      std::uint64_t a, b;
      std::memcpy(&a, p, 8);
      std::memcpy(&b, p + 8, 8);
      a ^= crc;
      crc = tb.t[15][a & 0xFF] ^ tb.t[14][(a >> 8) & 0xFF] ^
            tb.t[13][(a >> 16) & 0xFF] ^ tb.t[12][(a >> 24) & 0xFF] ^
            tb.t[11][(a >> 32) & 0xFF] ^ tb.t[10][(a >> 40) & 0xFF] ^
            tb.t[9][(a >> 48) & 0xFF] ^ tb.t[8][a >> 56] ^
            tb.t[7][b & 0xFF] ^ tb.t[6][(b >> 8) & 0xFF] ^
            tb.t[5][(b >> 16) & 0xFF] ^ tb.t[4][(b >> 24) & 0xFF] ^
            tb.t[3][(b >> 32) & 0xFF] ^ tb.t[2][(b >> 40) & 0xFF] ^
            tb.t[1][(b >> 48) & 0xFF] ^ tb.t[0][b >> 56];
      p += 16;
      bytes -= 16;
    }
    while (bytes >= 8) {
      std::uint64_t chunk;
      std::memcpy(&chunk, p, 8);
      crc ^= chunk;
      crc = tb.t[7][crc & 0xFF] ^ tb.t[6][(crc >> 8) & 0xFF] ^
            tb.t[5][(crc >> 16) & 0xFF] ^ tb.t[4][(crc >> 24) & 0xFF] ^
            tb.t[3][(crc >> 32) & 0xFF] ^ tb.t[2][(crc >> 40) & 0xFF] ^
            tb.t[1][(crc >> 48) & 0xFF] ^ tb.t[0][crc >> 56];
      p += 8;
      bytes -= 8;
    }
  }
  while (bytes-- > 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace fsi::storage
