#include "storage/mapped_file.h"

#include <cerrno>
#include <cstring>
#include <fstream>

#include "storage/layout.h"

#if defined(__unix__) || defined(__APPLE__)
#define FSI_STORAGE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace fsi::storage {
namespace {

[[noreturn]] void ThrowIo(const std::string& path, const char* op) {
  throw SnapshotError(SnapshotErrorCode::kIo,
                      "snapshot: cannot " + std::string(op) + " '" + path +
                          "': " + std::strerror(errno));
}

}  // namespace

MappedFile::MappedFile(const std::string& path, bool prefault)
    : path_(path) {
#if FSI_STORAGE_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) ThrowIo(path, "open");
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    ThrowIo(path, "stat");
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    // mmap(0) is EINVAL; an empty file is simply an empty span (the
    // reader will reject it as truncated, with a better message).
    ::close(fd);
    return;
  }
  int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
  if (prefault) flags |= MAP_POPULATE;
#endif
  void* map = ::mmap(nullptr, size_, PROT_READ, flags, fd, 0);
#ifdef MAP_POPULATE
  if (map == MAP_FAILED && prefault) {
    // Some filesystems reject MAP_POPULATE; the hint is best-effort.
    map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  }
#endif
  // The fd is not needed once the mapping exists.
  ::close(fd);
  if (map == MAP_FAILED) ThrowIo(path, "mmap");
  if (prefault) {
    // The caller reads the file end to end next (the CRC pass) —
    // tell the readahead machinery.
    ::posix_madvise(map, size_, POSIX_MADV_SEQUENTIAL);
  }
  data_ = static_cast<const std::byte*>(map);
  mapped_ = true;
#else
  (void)prefault;
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) ThrowIo(path, "open");
  const std::streamoff end = in.tellg();
  if (end < 0) ThrowIo(path, "stat");
  size_ = static_cast<std::size_t>(end);
  fallback_.resize(size_);
  in.seekg(0);
  if (size_ > 0 &&
      !in.read(reinterpret_cast<char*>(fallback_.data()),
               static_cast<std::streamsize>(size_))) {
    ThrowIo(path, "read");
  }
  data_ = fallback_.data();
#endif
}

MappedFile::~MappedFile() {
#if FSI_STORAGE_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
}

}  // namespace fsi::storage
