// Read-only file mapping for zero-copy snapshot loads.
//
// On POSIX hosts the file is mmap'ed PROT_READ/MAP_PRIVATE so loading a
// snapshot is O(1): pages fault in lazily as queries touch them, the OS
// page cache shares one physical copy across processes, and corpora
// larger than RAM stay queryable.  Hosts without mmap fall back to a
// plain heap read (load_mode() == "read") — same bytes, eager cost.
//
// Lifetime rule: every structure loaded zero-copy from a snapshot aliases
// this mapping.  Engine::LoadSnapshot threads a shared_ptr<MappedFile>
// into each loaded PreparedSet's deleter, so the mapping lives exactly as
// long as the last handle onto it — callers never manage it by hand.

#ifndef FSI_STORAGE_MAPPED_FILE_H_
#define FSI_STORAGE_MAPPED_FILE_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace fsi::storage {

class MappedFile {
 public:
  /// Maps (or reads) `path`.  Throws SnapshotError(kIo) when the file
  /// cannot be opened, stat'ed, or mapped.  `prefault` hints that the
  /// caller is about to touch every page (a checksum-verifying load):
  /// where supported the kernel populates the mapping up front
  /// (MAP_POPULATE), which is much cheaper than faulting page by page.
  /// Pass false to keep loads lazy (pages fault in as queries touch them).
  explicit MappedFile(const std::string& path, bool prefault = false);
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::span<const std::byte> bytes() const noexcept {
    return {data_, size_};
  }
  std::size_t size() const noexcept { return size_; }
  const std::string& path() const noexcept { return path_; }

  /// True when bytes() aliases an actual mmap (pages lazily); false on
  /// the heap-read fallback.
  bool mapped() const noexcept { return mapped_; }

  /// "mmap" or "read" — what --stats and SnapshotInfo report.
  const char* load_mode() const noexcept { return mapped_ ? "mmap" : "read"; }

 private:
  std::string path_;
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::byte> fallback_;  // owns the bytes when !mapped_
};

}  // namespace fsi::storage

#endif  // FSI_STORAGE_MAPPED_FILE_H_
