// The versioned snapshot container: a section-table file format whose
// payload sections are the in-memory layouts (see storage/layout.h).
//
// File layout (all integers little-endian):
//
//   offset  size  field
//   ------  ----  ---------------------------------------------------
//        0    64  FileHeader (magic, version, endian + ABI stamps,
//                 section-table offset/count, file size, header CRC64)
//       64     —  sections, each padded to a 64-byte boundary
//        …     —  section table: section_count × SectionEntry (40 B)
//
// Sections are typed blobs; the well-known types are below.  Readers skip
// entries whose type they don't recognize — unless kSectionFlagCritical
// is set, in which case an unknown type means "a future writer put
// something here you must understand", and the read fails with
// kBadVersion.  That is the forward-compatibility contract: minor-version
// additions are new non-critical sections; layout breaks bump
// kFormatVersionMajor.
//
// Integrity: every section carries its CRC-64/XZ; the header carries its
// own over the first 56 bytes.  SnapshotReader verifies header → version
// → endianness → ABI → bounds → per-section CRC before anything aliases
// the bytes, so a corrupt file yields a typed SnapshotError, never UB.
//
// SnapshotWriter targets any seekable std::ostream (the header is patched
// in place at Finish); SnapshotReader reads a byte span — typically a
// MappedFile's — and owns nothing.

#ifndef FSI_STORAGE_SNAPSHOT_H_
#define FSI_STORAGE_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "storage/layout.h"

namespace fsi::storage {

/// "FSISNAP1" read as a little-endian u64.
inline constexpr std::uint64_t kSnapshotMagic = 0x3150414E53495346ULL;

inline constexpr std::uint32_t kFormatVersionMajor = 1;
inline constexpr std::uint32_t kFormatVersionMinor = 0;

/// Written as the literal 0x01020304; reads back differently on a
/// foreign-endian host, which is how we detect one.
inline constexpr std::uint32_t kEndianStamp = 0x01020304;

// Well-known section types.  0 is reserved (never valid).
inline constexpr std::uint32_t kSectionEngineMeta = 1;   // spec/seed/set count
inline constexpr std::uint32_t kSectionCalibration = 2;  // planner JSON
inline constexpr std::uint32_t kSectionSetTable = 3;     // SetRecord array
inline constexpr std::uint32_t kSectionPayload = 4;      // flat arrays
inline constexpr std::uint32_t kSectionTermTable = 5;    // InvertedIndex terms
/// Compressed-set records (api/engine_snapshot.cc): sets whose SetRecord
/// kind is kElements but which were prepared under a space budget carry a
/// block-compressed image here.  Deliberately NOT critical: old readers
/// skip it and rebuild uncompressed from the elements — forward compatible.
inline constexpr std::uint32_t kSectionCompressed = 6;

/// Set on sections a reader must understand to use the file at all.
inline constexpr std::uint32_t kSectionFlagCritical = 1u << 0;

struct FileHeader {
  std::uint64_t magic = kSnapshotMagic;
  std::uint32_t version_major = kFormatVersionMajor;
  std::uint32_t version_minor = kFormatVersionMinor;
  std::uint32_t endian = kEndianStamp;
  std::uint16_t elem_size = 4;  // sizeof(fsi::Elem)
  std::uint16_t word_size = 8;  // sizeof(fsi::Word)
  std::uint64_t table_offset = 0;
  std::uint32_t section_count = 0;
  std::uint32_t reserved0 = 0;
  std::uint64_t file_size = 0;
  std::uint64_t reserved1 = 0;
  std::uint64_t header_crc = 0;  // CRC-64/XZ over bytes [0, 56)
};
static_assert(sizeof(FileHeader) == 64 &&
              std::is_trivially_copyable_v<FileHeader>);

/// Bytes of the header covered by header_crc.
inline constexpr std::size_t kHeaderCrcBytes =
    sizeof(FileHeader) - sizeof(std::uint64_t);

struct SectionEntry {
  std::uint32_t type = 0;
  std::uint32_t flags = 0;
  std::uint64_t offset = 0;  // from start of file; 64-byte aligned
  std::uint64_t size = 0;    // exact payload bytes (padding not included)
  std::uint64_t crc64 = 0;   // CRC-64/XZ of the payload bytes
  std::uint64_t reserved = 0;
};
static_assert(sizeof(SectionEntry) == 40 &&
              std::is_trivially_copyable_v<SectionEntry>);

/// Streams a snapshot: header placeholder, sections (64-byte aligned,
/// CRC'd as they pass through), section table, then seeks back to patch
/// the header.  The stream must therefore be seekable.  Refuses to run on
/// big-endian hosts (the format is little-endian and the writer does not
/// byte-swap).
class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::ostream& out);

  /// Appends one section.  Sections are laid out in call order.
  void AddSection(std::uint32_t type, std::span<const std::byte> bytes,
                  std::uint32_t flags = 0);

  /// Writes the section table, patches the header, flushes.  Must be
  /// called exactly once; no AddSection after.  Throws
  /// SnapshotError(kIo) if the stream went bad.
  void Finish();

  std::size_t bytes_written() const noexcept { return offset_; }

 private:
  void WriteRaw(const void* data, std::size_t bytes);
  void PadTo(std::size_t alignment);

  std::ostream& out_;
  std::vector<SectionEntry> entries_;
  std::size_t offset_ = 0;  // bytes written so far
  bool finished_ = false;
};

/// Validates and indexes a snapshot held in `file` (not owned — typically
/// a MappedFile's bytes, which must outlive the reader and anything
/// resolved out of it).  All validation happens in the constructor.
class SnapshotReader {
 public:
  struct Options {
    /// Verify per-section CRC64s (the header CRC is always checked).
    /// Costs one linear pass over the file; on by default because it is
    /// the only thing standing between a bit flip and wrong results.
    bool verify_checksums = true;
  };

  explicit SnapshotReader(std::span<const std::byte> file)
      : SnapshotReader(file, Options()) {}
  SnapshotReader(std::span<const std::byte> file, Options options);

  const FileHeader& header() const noexcept { return header_; }
  std::span<const SectionEntry> entries() const noexcept { return entries_; }

  /// Bytes of the first section of `type`, or nullopt when absent.
  std::optional<std::span<const std::byte>> Section(
      std::uint32_t type) const noexcept;

  /// Like Section, but a missing section throws SnapshotError(kCorrupt).
  std::span<const std::byte> RequireSection(std::uint32_t type,
                                            const char* what) const;

  /// The whole file as loaded (for "does this span alias the mapping?"
  /// checks and size reporting).
  std::span<const std::byte> file() const noexcept { return file_; }

 private:
  std::span<const std::byte> file_;
  FileHeader header_;
  std::vector<SectionEntry> entries_;
};

}  // namespace fsi::storage

#endif  // FSI_STORAGE_SNAPSHOT_H_
