// CRC-64/XZ (reflected ECMA-182 polynomial) — the per-section checksum of
// the snapshot format (storage/snapshot.h).
//
// Snapshot payloads are tens to hundreds of megabytes and are checksummed
// on every load, so the implementation is slice-by-8 (~8 bytes per table
// round) rather than the bytewise loop: on commodity hardware that is the
// difference between the CRC pass costing less than the page-in and the
// CRC pass dominating cold start.

#ifndef FSI_STORAGE_CRC64_H_
#define FSI_STORAGE_CRC64_H_

#include <cstddef>
#include <cstdint>

namespace fsi::storage {

/// CRC-64/XZ of `bytes` bytes at `data`.  Check value:
/// Crc64("123456789", 9) == 0x995DC9BBDF1939FA.
///
/// Incremental use: feed the previous return value back as `seed` —
/// Crc64(b, n1 + n2) == Crc64(b + n1, n2, Crc64(b, n1)).
std::uint64_t Crc64(const void* data, std::size_t bytes,
                    std::uint64_t seed = 0);

}  // namespace fsi::storage

#endif  // FSI_STORAGE_CRC64_H_
