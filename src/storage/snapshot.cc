#include "storage/snapshot.h"

#include <bit>
#include <cstring>
#include <ostream>
#include <string>

#include "storage/crc64.h"

namespace fsi::storage {
namespace {

[[noreturn]] void Fail(SnapshotErrorCode code, const std::string& what) {
  throw SnapshotError(code, "snapshot: " + what);
}

// std::byteswap is C++23; this build is C++20.
constexpr std::uint64_t Bswap64(std::uint64_t v) {
  v = ((v & 0x00FF00FF00FF00FFULL) << 8) | ((v >> 8) & 0x00FF00FF00FF00FFULL);
  v = ((v & 0x0000FFFF0000FFFFULL) << 16) |
      ((v >> 16) & 0x0000FFFF0000FFFFULL);
  return (v << 32) | (v >> 32);
}

}  // namespace

// ---------------------------------------------------------------------------
// SnapshotWriter

SnapshotWriter::SnapshotWriter(std::ostream& out) : out_(out) {
  if constexpr (std::endian::native != std::endian::little) {
    Fail(SnapshotErrorCode::kForeignEndian,
         "writing snapshots requires a little-endian host");
  }
  // Placeholder header; Finish() seeks back and writes the real one.
  FileHeader header;
  WriteRaw(&header, sizeof(header));
}

void SnapshotWriter::WriteRaw(const void* data, std::size_t bytes) {
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(bytes));
  if (!out_) Fail(SnapshotErrorCode::kIo, "write failed");
  offset_ += bytes;
}

void SnapshotWriter::PadTo(std::size_t alignment) {
  static constexpr char kZeros[kFlatAlignment] = {};
  const std::size_t rem = offset_ % alignment;
  if (rem != 0) WriteRaw(kZeros, alignment - rem);
}

void SnapshotWriter::AddSection(std::uint32_t type,
                                std::span<const std::byte> bytes,
                                std::uint32_t flags) {
  if (finished_) Fail(SnapshotErrorCode::kIo, "AddSection after Finish");
  PadTo(kFlatAlignment);
  SectionEntry entry;
  entry.type = type;
  entry.flags = flags;
  entry.offset = offset_;
  entry.size = bytes.size();
  entry.crc64 = Crc64(bytes.data(), bytes.size());
  entries_.push_back(entry);
  if (!bytes.empty()) WriteRaw(bytes.data(), bytes.size());
}

void SnapshotWriter::Finish() {
  if (finished_) Fail(SnapshotErrorCode::kIo, "Finish called twice");
  finished_ = true;
  PadTo(kFlatAlignment);
  const std::size_t table_offset = offset_;
  if (!entries_.empty()) {
    WriteRaw(entries_.data(), entries_.size() * sizeof(SectionEntry));
  }

  FileHeader header;
  header.table_offset = table_offset;
  header.section_count = static_cast<std::uint32_t>(entries_.size());
  header.file_size = offset_;
  header.header_crc = Crc64(&header, kHeaderCrcBytes);

  out_.seekp(0);
  if (!out_) Fail(SnapshotErrorCode::kIo, "seek failed (stream not seekable?)");
  out_.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out_.seekp(static_cast<std::streamoff>(offset_));
  out_.flush();
  if (!out_) Fail(SnapshotErrorCode::kIo, "write failed");
}

// ---------------------------------------------------------------------------
// SnapshotReader

SnapshotReader::SnapshotReader(std::span<const std::byte> file,
                               Options options)
    : file_(file) {
  if (file_.size() < sizeof(FileHeader)) {
    Fail(SnapshotErrorCode::kTruncated,
         "file smaller than header (" + std::to_string(file_.size()) +
             " bytes)");
  }
  std::memcpy(&header_, file_.data(), sizeof(header_));

  if (header_.magic != kSnapshotMagic) {
    // A foreign-endian header also garbles the magic; distinguish the
    // byte-swapped magic so the error says what actually happened.
    if (header_.magic == Bswap64(kSnapshotMagic)) {
      Fail(SnapshotErrorCode::kForeignEndian,
           "file written on a foreign-endian host");
    }
    Fail(SnapshotErrorCode::kBadMagic, "bad magic (not a snapshot file)");
  }
  if (header_.endian != kEndianStamp) {
    Fail(SnapshotErrorCode::kForeignEndian,
         "file written on a foreign-endian host");
  }
  if (Crc64(file_.data(), kHeaderCrcBytes) != header_.header_crc) {
    Fail(SnapshotErrorCode::kChecksum, "header checksum mismatch");
  }
  if (header_.version_major != kFormatVersionMajor) {
    Fail(SnapshotErrorCode::kBadVersion,
         "format version " + std::to_string(header_.version_major) + "." +
             std::to_string(header_.version_minor) +
             " (this build reads " + std::to_string(kFormatVersionMajor) +
             ".x)");
  }
  if (header_.elem_size != sizeof(std::uint32_t) ||
      header_.word_size != sizeof(std::uint64_t)) {
    Fail(SnapshotErrorCode::kAbiMismatch,
         "element/word width mismatch (file: " +
             std::to_string(header_.elem_size) + "/" +
             std::to_string(header_.word_size) + ", build: 4/8)");
  }
  if (header_.file_size > file_.size()) {
    Fail(SnapshotErrorCode::kTruncated,
         "file truncated (header says " + std::to_string(header_.file_size) +
             " bytes, have " + std::to_string(file_.size()) + ")");
  }

  const std::uint64_t table_bytes =
      std::uint64_t{header_.section_count} * sizeof(SectionEntry);
  if (header_.table_offset > header_.file_size ||
      table_bytes > header_.file_size - header_.table_offset) {
    Fail(SnapshotErrorCode::kTruncated, "section table out of bounds");
  }
  entries_.resize(header_.section_count);
  if (table_bytes > 0) {
    std::memcpy(entries_.data(), file_.data() + header_.table_offset,
                table_bytes);
  }

  for (const SectionEntry& entry : entries_) {
    if (entry.offset % kFlatAlignment != 0) {
      Fail(SnapshotErrorCode::kCorrupt,
           "section " + std::to_string(entry.type) + " misaligned");
    }
    if (entry.offset > header_.file_size ||
        entry.size > header_.file_size - entry.offset) {
      Fail(SnapshotErrorCode::kTruncated,
           "section " + std::to_string(entry.type) + " out of bounds");
    }
    if (options.verify_checksums &&
        Crc64(file_.data() + entry.offset, entry.size) != entry.crc64) {
      Fail(SnapshotErrorCode::kChecksum,
           "section " + std::to_string(entry.type) + " checksum mismatch");
    }
    // Unknown section types are skipped (minor-version additions land
    // here) unless the writer marked them critical.
    if ((entry.flags & kSectionFlagCritical) != 0 &&
        entry.type > kSectionTermTable) {
      Fail(SnapshotErrorCode::kBadVersion,
           "unknown critical section " + std::to_string(entry.type) +
               " (written by a newer version)");
    }
  }
}

std::optional<std::span<const std::byte>> SnapshotReader::Section(
    std::uint32_t type) const noexcept {
  for (const SectionEntry& entry : entries_) {
    if (entry.type == type) {
      return file_.subspan(entry.offset, entry.size);
    }
  }
  return std::nullopt;
}

std::span<const std::byte> SnapshotReader::RequireSection(
    std::uint32_t type, const char* what) const {
  if (auto bytes = Section(type)) return *bytes;
  Fail(SnapshotErrorCode::kCorrupt,
       std::string("missing required section: ") + what);
}

}  // namespace fsi::storage
