// Relocatable flat layouts — the vocabulary shared by the in-memory
// structures and the on-disk snapshot format (storage/snapshot.h).
//
// The design rule of the snapshot subsystem is that payload sections ARE
// the in-memory layouts: a structure's arrays are written as 64-byte-
// aligned little-endian blobs addressed by (offset, count) pairs relative
// to the payload section, so a loaded structure's spans can point straight
// into the mmap'ed file with no copy or parse.  Three pieces make that
// work:
//
//   FlatRef      an (offset, count) pair — a pointer that survives
//                relocation because it is relative to the payload base;
//   FlatArray<T> a maybe-owned array: structures store their arrays in it
//                so the same type works freshly built (owning a vector)
//                and snapshot-loaded (borrowing a span of the mapping);
//   PayloadWriter / ResolveSpan<T>
//                the two sides of the contract — append an array and get
//                its FlatRef; resolve a FlatRef against a loaded payload
//                with overflow-safe bounds and alignment checks.
//
// Everything that can go wrong at load time throws SnapshotError, which
// carries a typed code so callers (and the corruption-matrix tests) can
// distinguish "file truncated" from "checksum mismatch" from "built on a
// big-endian machine".  Corrupt data must produce a typed error, never UB
// — but note the threat model: payloads are CRC64-guarded, so the checks
// here defend against corruption and version skew, not against an
// adversary who crafts a file with matching checksums.

#ifndef FSI_STORAGE_LAYOUT_H_
#define FSI_STORAGE_LAYOUT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace fsi::storage {

/// Every array in a payload section starts on a 64-byte boundary: cache-
/// line aligned, and a multiple of every element alignment we store.
inline constexpr std::size_t kFlatAlignment = 64;

/// What failed while reading a snapshot.  See SnapshotError.
enum class SnapshotErrorCode {
  kIo,            // open/stat/map/read failed (errno-level problem)
  kBadMagic,      // not a snapshot file at all
  kBadVersion,    // major version (or critical section) from the future
  kForeignEndian, // written on a big-endian host
  kAbiMismatch,   // element/word width differs from this build
  kTruncated,     // file shorter than its own header/section table claims
  kChecksum,      // CRC64 mismatch on the header or a section
  kCorrupt,       // structurally invalid contents (bad offsets, counts…)
};

/// Thrown by everything in storage/ on a malformed or unreadable file.
/// Derives from std::runtime_error so pre-existing callers of the legacy
/// StructureSerializer keep catching what they always caught.
class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(SnapshotErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  SnapshotErrorCode code() const noexcept { return code_; }

 private:
  SnapshotErrorCode code_;
};

/// A relocatable array reference: `count` elements starting `offset` bytes
/// into the payload section.  offset is byte-granular (always a multiple
/// of kFlatAlignment as written); count is in elements, not bytes.
struct FlatRef {
  std::uint64_t offset = 0;
  std::uint64_t count = 0;
};
static_assert(sizeof(FlatRef) == 16 && std::is_trivially_copyable_v<FlatRef>);

/// Discriminator of a serialized prepared-set record (SetRecord::kind).
enum class SetKind : std::uint32_t {
  kPlain = 0,     // PlainSet: elems
  kScan = 1,      // ScanSet: group_start + images + gvals (+ t, m)
  kPlanned = 2,   // PlannedSet: PlainSet arrays + ScanSet arrays
  kElements = 3,  // raw sorted elements; load re-runs Preprocess()
  kMutable = 4,   // raw sorted elements; load re-prepares as mutable
};

/// One prepared set in the snapshot's set table.  Fixed-size POD so the
/// set table is itself a flat array.  Unused refs stay (0, 0).
struct SetRecord {
  std::uint32_t kind = 0;      // SetKind
  std::int32_t t = 0;          // ScanSet log2(#groups)
  std::uint32_t m = 0;         // ScanSet words per group
  std::uint32_t reserved = 0;
  FlatRef elems;               // kPlain/kPlanned/kElements/kMutable
  FlatRef group_start;         // kScan/kPlanned
  FlatRef images;              // kScan/kPlanned
  FlatRef gvals;               // kScan/kPlanned
};
static_assert(sizeof(SetRecord) == 80 &&
              std::is_trivially_copyable_v<SetRecord>);

/// A maybe-owned flat array.  Freshly built structures own their storage
/// (moved-in vector); snapshot-loaded structures borrow a span of the
/// mapped file, whose lifetime the loader guarantees outlives them.
/// Either way readers see one interface: data/size/operator[]/view.
template <typename T>
class FlatArray {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  FlatArray() = default;

  /// Owning: adopts the vector.
  explicit FlatArray(std::vector<T> owned)
      : owned_(std::move(owned)), view_(owned_), borrowed_(false) {}

  /// Borrowing: aliases `view` without copying.  The caller keeps the
  /// backing bytes (the snapshot mapping) alive for this array's lifetime.
  static FlatArray View(std::span<const T> view) {
    FlatArray a;
    a.view_ = view;
    a.borrowed_ = true;
    return a;
  }

  // An owning FlatArray's view_ points into its own vector, so copies and
  // moves must re-point the view at the destination's storage; a borrowed
  // view is copied verbatim.
  FlatArray(const FlatArray& other)
      : owned_(other.owned_),
        view_(other.borrowed_ ? other.view_ : std::span<const T>(owned_)),
        borrowed_(other.borrowed_) {}
  FlatArray(FlatArray&& other) noexcept
      : owned_(std::move(other.owned_)),
        view_(other.borrowed_ ? other.view_ : std::span<const T>(owned_)),
        borrowed_(other.borrowed_) {
    other.view_ = {};
    other.borrowed_ = false;
  }
  FlatArray& operator=(const FlatArray& other) {
    if (this != &other) {
      owned_ = other.owned_;
      borrowed_ = other.borrowed_;
      view_ = borrowed_ ? other.view_ : std::span<const T>(owned_);
    }
    return *this;
  }
  FlatArray& operator=(FlatArray&& other) noexcept {
    if (this != &other) {
      owned_ = std::move(other.owned_);
      borrowed_ = other.borrowed_;
      view_ = borrowed_ ? other.view_ : std::span<const T>(owned_);
      other.view_ = {};
      other.borrowed_ = false;
    }
    return *this;
  }

  const T* data() const noexcept { return view_.data(); }
  std::size_t size() const noexcept { return view_.size(); }
  bool empty() const noexcept { return view_.empty(); }
  const T& operator[](std::size_t i) const noexcept { return view_[i]; }
  std::span<const T> view() const noexcept { return view_; }
  const T* begin() const noexcept { return view_.data(); }
  const T* end() const noexcept { return view_.data() + view_.size(); }
  const T& front() const noexcept { return view_.front(); }
  const T& back() const noexcept { return view_.back(); }

  /// True when this array aliases external storage (a snapshot mapping).
  bool borrowed() const noexcept { return borrowed_; }

 private:
  std::vector<T> owned_;
  std::span<const T> view_;
  bool borrowed_ = false;
};

/// Accumulates a payload section in memory: each Append pads to a 64-byte
/// boundary, copies the array, and returns its FlatRef.  The finished
/// byte buffer becomes the snapshot's payload section verbatim.
class PayloadWriter {
 public:
  template <typename T>
  FlatRef Append(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t aligned =
        (bytes_.size() + kFlatAlignment - 1) & ~(kFlatAlignment - 1);
    bytes_.resize(aligned, std::byte{0});
    FlatRef ref{aligned, values.size()};
    if (!values.empty()) {
      const std::size_t nbytes = values.size() * sizeof(T);
      bytes_.resize(aligned + nbytes);
      std::memcpy(bytes_.data() + aligned, values.data(), nbytes);
    }
    return ref;
  }

  std::span<const std::byte> bytes() const noexcept { return bytes_; }
  std::size_t size() const noexcept { return bytes_.size(); }

 private:
  std::vector<std::byte> bytes_;
};

/// Resolves a FlatRef against a loaded payload section: bounds- and
/// alignment-checked (overflow-safely), returning a span that aliases
/// `payload`.  Throws SnapshotError(kCorrupt) on any violation.
template <typename T>
std::span<const T> ResolveSpan(std::span<const std::byte> payload,
                               FlatRef ref, const char* what) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (ref.count == 0) return {};
  if (ref.count > std::numeric_limits<std::uint64_t>::max() / sizeof(T)) {
    throw SnapshotError(SnapshotErrorCode::kCorrupt,
                        std::string("snapshot: implausible count for ") +
                            what);
  }
  const std::uint64_t nbytes = ref.count * sizeof(T);
  if (ref.offset > payload.size() || nbytes > payload.size() - ref.offset) {
    throw SnapshotError(
        SnapshotErrorCode::kCorrupt,
        std::string("snapshot: ") + what + " reference out of bounds");
  }
  const std::byte* base = payload.data() + ref.offset;
  if (reinterpret_cast<std::uintptr_t>(base) % alignof(T) != 0) {
    throw SnapshotError(
        SnapshotErrorCode::kCorrupt,
        std::string("snapshot: ") + what + " reference misaligned");
  }
  return std::span<const T>(reinterpret_cast<const T*>(base), ref.count);
}

}  // namespace fsi::storage

#endif  // FSI_STORAGE_LAYOUT_H_
