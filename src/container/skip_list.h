// Static skip list after Pugh's "A skip list cookbook" [18].
//
// Substrate for the paper's "SkipList" baseline (Section 4 competitor (ii)).
// As the paper's implementation notes say, we "follow [18], with
// simplifications since we are focusing on static data and do not need fast
// insertion/deletion": the list is built once from a sorted array, tower
// heights are drawn geometrically (p = 1/2, as in the cookbook), and all
// forward pointers live in one contiguous arena.
//
// The intersection-relevant operation is SeekGreaterEqual(x): find the first
// element >= x in expected O(log n) by descending from the head tower.

#ifndef FSI_CONTAINER_SKIP_LIST_H_
#define FSI_CONTAINER_SKIP_LIST_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace fsi {

/// Immutable skip list over a sorted sequence of keys.
template <typename Key>
class SkipList {
 public:
  static constexpr int kMaxLevel = 32;
  /// Sentinel node index meaning "end of list".
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  SkipList() = default;

  /// Builds from sorted unique keys (at most 2^32 - 1 of them).
  explicit SkipList(std::span<const Key> sorted_keys,
                    std::uint64_t seed = 0xc1f651c67c62c6e0ULL) {
    Build(sorted_keys, seed);
  }

  void Build(std::span<const Key> sorted_keys, std::uint64_t seed) {
    n_ = static_cast<std::uint32_t>(sorted_keys.size());
    keys_.assign(sorted_keys.begin(), sorted_keys.end());
    tower_offset_.assign(n_ + 1, 0);
    Xoshiro256 rng(seed);
    levels_ = 1;
    std::vector<std::uint8_t> heights(n_);
    std::uint32_t total = 0;
    for (std::uint32_t i = 0; i < n_; ++i) {
      int h = 1;
      while (h < kMaxLevel && (rng.Next() & 1) != 0) ++h;  // p = 1/2
      heights[i] = static_cast<std::uint8_t>(h);
      if (h > levels_) levels_ = h;
      tower_offset_[i] = total;
      total += static_cast<std::uint32_t>(h);
    }
    tower_offset_[n_] = total;
    forward_.assign(total, kNil);
    head_.assign(static_cast<std::size_t>(levels_), kNil);
    // Link level by level, right to left, tracking the most recent node seen
    // at each level.
    std::vector<std::uint32_t> last(static_cast<std::size_t>(levels_), kNil);
    for (std::uint32_t ii = n_; ii > 0; --ii) {
      std::uint32_t i = ii - 1;
      for (int l = 0; l < heights[i]; ++l) {
        forward_[tower_offset_[i] + static_cast<std::uint32_t>(l)] =
            last[static_cast<std::size_t>(l)];
        last[static_cast<std::size_t>(l)] = i;
      }
    }
    head_ = last;
  }

  std::uint32_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Key at node index i (node indices are sorted-rank order).
  Key key(std::uint32_t i) const { return keys_[i]; }

  /// Index of the first node with key >= x; size() when none.  The `hint`
  /// is a lower-bound cursor from a previous search: if the hinted node
  /// already satisfies the query we return it in O(1).
  std::uint32_t SeekGreaterEqual(Key x, std::uint32_t hint = 0) const {
    if (hint >= n_) return n_;
    if (keys_[hint] >= x) return hint;
    // Descend from the head tower.
    std::uint32_t cur = kNil;  // kNil plays the role of the head node
    for (int l = levels_ - 1; l >= 0; --l) {
      std::uint32_t nxt = (cur == kNil)
                              ? head_[static_cast<std::size_t>(l)]
                              : ForwardAt(cur, l);
      while (nxt != kNil && keys_[nxt] < x) {
        cur = nxt;
        nxt = ForwardAt(cur, l);
      }
    }
    std::uint32_t ans = (cur == kNil) ? head_[0] : ForwardAt(cur, 0);
    return ans == kNil ? n_ : ans;
  }

  /// True iff x is present.
  bool Contains(Key x) const {
    std::uint32_t i = SeekGreaterEqual(x, 0);
    return i < n_ && keys_[i] == x;
  }

  /// Heap footprint in 64-bit words (for the space experiments).
  std::size_t SizeInWords() const {
    std::size_t bytes = keys_.size() * sizeof(Key) +
                        forward_.size() * sizeof(std::uint32_t) +
                        tower_offset_.size() * sizeof(std::uint32_t) +
                        head_.size() * sizeof(std::uint32_t);
    return (bytes + 7) / 8;
  }

 private:
  std::uint32_t ForwardAt(std::uint32_t node, int level) const {
    return forward_[tower_offset_[node] + static_cast<std::uint32_t>(level)];
  }

  std::uint32_t n_ = 0;
  int levels_ = 1;
  std::vector<Key> keys_;
  std::vector<std::uint32_t> tower_offset_;  // n_ + 1 entries
  std::vector<std::uint32_t> forward_;       // flat tower arena
  std::vector<std::uint32_t> head_;          // head tower
};

}  // namespace fsi

#endif  // FSI_CONTAINER_SKIP_LIST_H_
