// A lock-free concurrent skip list (Herlihy & Shavit ch. 14.4 / Fraser's
// mark-before-unlink design) backing the point-lookup tier of mutable
// prepared sets (api/epoch.h).
//
// The static SkipList in container/skip_list.h is build-once/read-only —
// exactly the property PR 6 removes.  This sibling supports concurrent
// Insert / Erase / Contains with no locks anywhere:
//
//  * Every forward pointer is a tagged word: bit 0 of `next[level]` marks
//    the *owning* node as logically deleted ("mark-before-unlink").  An
//    Erase first CASes the mark into the victim's level-0 pointer — that
//    CAS is the linearization point — and only then unlinks the node
//    physically.  Readers that encounter a marked node either help unlink
//    it (Find) or skip over it without writing (Contains).
//  * Insert linearizes at the CAS that links the new node at level 0;
//    upper-level links are filled in afterwards and are pure accelerators
//    (a node is *in the set* iff it is reachable at level 0 and unmarked).
//  * Unlinked nodes may still be visible to concurrent traversals, so they
//    are never freed in place: they go through a retire hook.  By default
//    retired nodes park on an internal Treiber stack freed by the
//    destructor ("leak until teardown" — fine for bounded delta tiers);
//    api/epoch.h plugs in epoch-based reclamation instead, in which case
//    *every* operation must run under an fsi::EpochGuard.
//
// Memory ordering: publication of a node's key rides the release CAS that
// links it; traversals load forward pointers with acquire.  No seq_cst and
// no standalone fences — every synchronizing edge is a same-variable
// release/acquire pair, which TSan models exactly.
//
// The tower height is capped at kMaxHeight = 16 (fine up to ~2^16 expected
// elements, merely slower beyond) and drawn from a per-list atomic LCG, so
// no coordination is needed on the random stream.

#ifndef FSI_CONTAINER_CONCURRENT_SKIP_LIST_H_
#define FSI_CONTAINER_CONCURRENT_SKIP_LIST_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

namespace fsi {

/// Retire hook: called with an unlinked node allocation and the function
/// that frees it, once no concurrent traversal can still hold the pointer.
using SkipListRetireFn = void (*)(void* context, void* node,
                                  void (*deleter)(void*));

/// Lock-free sorted set of `Key` (an unsigned integral or anything with
/// `<` / `==` and cheap copies).  All public member functions are safe to
/// call concurrently from any number of threads.
template <typename Key>
class ConcurrentSkipList {
 public:
  static constexpr int kMaxHeight = 16;

  ConcurrentSkipList() : ConcurrentSkipList(nullptr, nullptr) {}

  /// With a retire hook: unlinked nodes are handed to `retire(context,
  /// node, deleter)` instead of the internal garbage stack.  The hook must
  /// defer `deleter(node)` until concurrent traversals have drained (e.g.
  /// via epoch reclamation); the destructor then only frees nodes still
  /// *linked*, so the hook must eventually free what it was given.
  ConcurrentSkipList(SkipListRetireFn retire, void* retire_context)
      : retire_(retire),
        retire_context_(retire_context),
        head_(AllocNode(Key{}, kMaxHeight)) {
    for (int level = 0; level < kMaxHeight; ++level) {
      head_->next[level].store(0, std::memory_order_relaxed);
    }
  }

  ConcurrentSkipList(const ConcurrentSkipList&) = delete;
  ConcurrentSkipList& operator=(const ConcurrentSkipList&) = delete;

  /// Not thread-safe: requires external quiescence (no concurrent ops).
  ~ConcurrentSkipList() {
    Node* node = StripNode(head_->next[0].load(std::memory_order_relaxed));
    while (node != nullptr) {
      Node* next = StripNode(node->next[0].load(std::memory_order_relaxed));
      FreeNode(node);
      node = next;
    }
    FreeNode(head_);
    Node* garbage = garbage_.load(std::memory_order_relaxed);
    while (garbage != nullptr) {
      Node* next = garbage->garbage_next;
      FreeNode(garbage);
      garbage = next;
    }
  }

  /// Inserts `key`; returns false when already present.  Linearizes at the
  /// level-0 link CAS (or at the Find that saw the key present).
  bool Insert(Key key) {
    int height = RandomHeight();
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    for (;;) {
      if (Find(key, preds, succs)) return false;
      Node* node = AllocNode(key, height);
      for (int level = 0; level < height; ++level) {
        node->next[level].store(PackNode(succs[level]),
                                std::memory_order_relaxed);
      }
      // The release CAS publishes the node (key + tower) at level 0.
      std::uintptr_t expected = PackNode(succs[0]);
      if (!preds[0]->next[0].compare_exchange_strong(
              expected, PackNode(node), std::memory_order_release,
              std::memory_order_relaxed)) {
        FreeNode(node);  // never published; free in place
        continue;
      }
      LinkUpperLevels(node, height, preds, succs);
      return true;
    }
  }

  /// Erases `key`; returns false when absent (or when a concurrent Erase
  /// won the race).  Linearizes at the CAS that marks the victim's level-0
  /// forward pointer.
  bool Erase(Key key) {
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    if (!Find(key, preds, succs)) return false;
    Node* victim = succs[0];
    // Mark the accelerator levels top-down first, so helpers stop using
    // them before the logical deletion below.
    for (int level = victim->height - 1; level >= 1; --level) {
      std::uintptr_t word = victim->next[level].load(std::memory_order_acquire);
      while (!IsMarked(word)) {
        victim->next[level].compare_exchange_weak(word, word | kMark,
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire);
      }
    }
    // Level 0: exactly one thread wins the mark and owns the deletion.
    std::uintptr_t word = victim->next[0].load(std::memory_order_acquire);
    for (;;) {
      if (IsMarked(word)) return false;  // a concurrent Erase won
      if (victim->next[0].compare_exchange_weak(word, word | kMark,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
        Find(key, preds, succs);  // physically unlink at every level
        Retire(victim);
        return true;
      }
    }
  }

  /// Wait-free-in-practice membership probe: never writes shared memory
  /// (skips marked nodes instead of helping to unlink them).
  bool Contains(Key key) const {
    const Node* pred = head_;
    const Node* curr = nullptr;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      curr = StripNode(pred->next[level].load(std::memory_order_acquire));
      for (;;) {
        if (curr == nullptr) break;
        std::uintptr_t succ_word =
            curr->next[level].load(std::memory_order_acquire);
        while (IsMarked(succ_word)) {  // skip logically deleted nodes
          curr = StripNode(succ_word);
          if (curr == nullptr) break;
          succ_word = curr->next[level].load(std::memory_order_acquire);
        }
        if (curr == nullptr) break;
        if (curr->key < key) {
          pred = curr;
          curr = StripNode(succ_word);
        } else {
          break;
        }
      }
    }
    return curr != nullptr && curr->key == key;
  }

  /// O(n) snapshot count of unmarked level-0 nodes (test/debug helper; the
  /// value is a moment-in-time approximation under concurrent mutation).
  std::size_t SizeSlow() const {
    std::size_t count = 0;
    const Node* node = StripNode(head_->next[0].load(std::memory_order_acquire));
    while (node != nullptr) {
      std::uintptr_t word = node->next[0].load(std::memory_order_acquire);
      if (!IsMarked(word)) ++count;
      node = StripNode(word);
    }
    return count;
  }

 private:
  static constexpr std::uintptr_t kMark = 1;

  struct Node {
    Key key;
    int height;
    Node* garbage_next;  // Treiber-stack link, used only after unlink
    std::atomic<std::uintptr_t> next[1];  // [height] words; bit 0 = marked
  };

  static Node* AllocNode(Key key, int height) {
    static_assert(alignof(Node) >= 2, "tag bit needs an alignment bit");
    std::size_t bytes = sizeof(Node) + static_cast<std::size_t>(height - 1) *
                                           sizeof(std::atomic<std::uintptr_t>);
    Node* node = static_cast<Node*>(::operator new(bytes, std::align_val_t{
                                                              alignof(Node)}));
    node->key = key;
    node->height = height;
    node->garbage_next = nullptr;
    return node;
  }

  static void FreeNode(void* node) {
    ::operator delete(node, std::align_val_t{alignof(Node)});
  }

  static bool IsMarked(std::uintptr_t word) { return (word & kMark) != 0; }
  static std::uintptr_t PackNode(const Node* node) {
    return reinterpret_cast<std::uintptr_t>(node);
  }
  static Node* StripNode(std::uintptr_t word) {
    return reinterpret_cast<Node*>(word & ~kMark);
  }

  /// Herlihy-Shavit find: fills preds/succs with the unmarked neighbours
  /// of `key` at every level, physically unlinking any marked node on the
  /// search path (including a marked node equal to `key` — which is why a
  /// retired node is guaranteed fully unlinked: the deleter's own Find
  /// walks straight to it at every level it still occupies).  Returns
  /// whether an unmarked node with `key` was found.
  bool Find(Key key, Node** preds, Node** succs) {
  retry:
    Node* pred = head_;
    Node* curr = nullptr;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      curr = StripNode(pred->next[level].load(std::memory_order_acquire));
      for (;;) {
        if (curr == nullptr) break;
        std::uintptr_t succ_word =
            curr->next[level].load(std::memory_order_acquire);
        while (IsMarked(succ_word)) {
          // Help: swing pred past the marked curr.
          std::uintptr_t expected = PackNode(curr);
          if (!pred->next[level].compare_exchange_strong(
                  expected, succ_word & ~kMark, std::memory_order_acq_rel,
                  std::memory_order_acquire)) {
            goto retry;  // pred changed (or got marked) under us
          }
          curr = StripNode(succ_word);
          if (curr == nullptr) break;
          succ_word = curr->next[level].load(std::memory_order_acquire);
        }
        if (curr == nullptr) break;
        if (curr->key < key) {
          pred = curr;
          curr = StripNode(succ_word);
        } else {
          break;
        }
      }
      preds[level] = pred;
      succs[level] = curr;
    }
    return curr != nullptr && curr->key == key;
  }

  /// Links `node` at levels [1, height).  Purely an accelerator: failures
  /// (concurrent deletion of `node`) abandon the remaining levels.
  void LinkUpperLevels(Node* node, int height, Node** preds, Node** succs) {
    for (int level = 1; level < height; ++level) {
      for (;;) {
        std::uintptr_t node_word =
            node->next[level].load(std::memory_order_acquire);
        if (IsMarked(node_word)) return;  // node is being deleted
        // Refresh node's forward pointer to the current successor first,
        // so the link CAS below never publishes a stale tower.
        if (StripNode(node_word) != succs[level]) {
          if (!node->next[level].compare_exchange_strong(
                  node_word, PackNode(succs[level]),
                  std::memory_order_acq_rel, std::memory_order_acquire)) {
            continue;
          }
        }
        std::uintptr_t expected = PackNode(succs[level]);
        if (preds[level]->next[level].compare_exchange_strong(
                expected, PackNode(node), std::memory_order_acq_rel,
                std::memory_order_acquire)) {
          break;
        }
        // Neighbourhood changed: recompute it; stop if node is gone.
        if (!Find(node->key, preds, succs) || succs[0] != node) return;
      }
    }
  }

  void Retire(Node* node) {
    if (retire_ != nullptr) {
      retire_(retire_context_, node, &FreeNode);
      return;
    }
    Node* top = garbage_.load(std::memory_order_relaxed);
    do {
      node->garbage_next = top;
    } while (!garbage_.compare_exchange_weak(top, node,
                                             std::memory_order_release,
                                             std::memory_order_relaxed));
  }

  /// Geometric(1/2) height in [1, kMaxHeight] from a racy-but-harmless
  /// atomic LCG (collisions merely correlate tower heights).
  int RandomHeight() {
    std::uint64_t s =
        rng_state_.fetch_add(0x9E3779B97F4A7C15ull, std::memory_order_relaxed);
    s ^= s >> 30;
    s *= 0xBF58476D1CE4E5B9ull;
    s ^= s >> 27;
    s *= 0x94D049BB133111EBull;
    s ^= s >> 31;
    int height = 1;
    while (height < kMaxHeight && (s & 1) != 0) {
      ++height;
      s >>= 1;
    }
    return height;
  }

  SkipListRetireFn retire_;
  void* retire_context_;
  Node* head_;
  std::atomic<Node*> garbage_{nullptr};
  std::atomic<std::uint64_t> rng_state_{0x106689D45497FDB5ull};
};

}  // namespace fsi

#endif  // FSI_CONTAINER_CONCURRENT_SKIP_LIST_H_
