// Open-addressing hash set for 32/64-bit integer keys.
//
// Substrate for the paper's "Hash" baseline (Section 4 competitor (iii)):
// "we iterate over the smallest set L1, looking up every element x in
// hash-table representations of L2, ..., Lk".  We build our own table
// rather than std::unordered_set so the probe sequence is a single cache
// line in the common case and the space accounting (SizeInWords) is exact.
//
// Linear probing with a multiply-shift hash, power-of-two capacity and a
// fixed load factor of 1/2.  Keys are immutable after Build (the paper's
// scenario is static set data), so no deletion support is needed.

#ifndef FSI_CONTAINER_HASH_SET_H_
#define FSI_CONTAINER_HASH_SET_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/bits.h"
#include "util/rng.h"

namespace fsi {

/// Static integer hash set with linear probing.
template <typename Key>
class HashSet {
 public:
  HashSet() = default;

  /// Builds the table from `keys` (need not be sorted; duplicates collapse).
  explicit HashSet(std::span<const Key> keys,
                   std::uint64_t seed = 0x8f3a91c2b4d5e6f7ULL) {
    Build(keys, seed);
  }

  void Build(std::span<const Key> keys, std::uint64_t seed) {
    multiplier_ = SplitMix64(seed).Next() | 1;
    std::size_t capacity = 16;
    while (capacity < keys.size() * 2) capacity *= 2;
    shift_ = 64 - CeilLog2(capacity);
    slots_.assign(capacity, kEmpty);
    size_ = 0;
    for (Key k : keys) Insert(k);
  }

  /// True iff `key` is in the set.  Average O(1).
  bool Contains(Key key) const {
    if (slots_.empty()) return false;
    std::size_t mask = slots_.size() - 1;
    std::size_t i = Slot(key);
    while (true) {
      std::uint64_t s = slots_[i];
      if (s == kEmpty) return false;
      if (s == static_cast<std::uint64_t>(key)) return true;
      i = (i + 1) & mask;
    }
  }

  std::size_t size() const { return size_; }

  /// Total heap footprint in 64-bit words (for the space experiments).
  std::size_t SizeInWords() const { return slots_.size(); }

 private:
  // Sentinel: ~0 marks an empty slot, so keys must be < 2^64 - 1.  All
  // callers store 32-bit document IDs widened to 64 bits, which can never
  // collide with the sentinel.
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  std::size_t Slot(Key key) const {
    return static_cast<std::size_t>(
        (multiplier_ * static_cast<std::uint64_t>(key)) >> shift_);
  }

  void Insert(Key key) {
    std::size_t mask = slots_.size() - 1;
    std::size_t i = Slot(key);
    while (true) {
      std::uint64_t s = slots_[i];
      if (s == static_cast<std::uint64_t>(key)) return;  // duplicate
      if (s == kEmpty) {
        slots_[i] = static_cast<std::uint64_t>(key);
        ++size_;
        return;
      }
      i = (i + 1) & mask;
    }
  }

  std::vector<std::uint64_t> slots_;
  std::uint64_t multiplier_ = 1;
  int shift_ = 64;
  std::size_t size_ = 0;
};

}  // namespace fsi

#endif  // FSI_CONTAINER_HASH_SET_H_
