#include "baseline/hash_intersect.h"

#include <algorithm>

namespace fsi {

std::unique_ptr<PreprocessedSet> HashIntersection::Preprocess(
    std::span<const Elem> set) const {
  DebugCheckSortedUnique(set, name());
  return std::make_unique<HashedSet>(set, seed_);
}

void HashIntersection::Intersect(std::span<const PreprocessedSet* const> sets,
                                 ElemList* out) const {
  std::vector<const HashedSet*> sorted;
  sorted.reserve(sets.size());
  for (const PreprocessedSet* s : sets) sorted.push_back(&As<HashedSet>(*s));
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const HashedSet* a, const HashedSet* b) {
                     return a->size() < b->size();
                   });
  if (sorted.empty()) return;
  // Scan the smallest set; probe the others' tables, cheapest filter first.
  for (Elem x : sorted[0]->elems()) {
    bool in_all = true;
    for (std::size_t s = 1; s < sorted.size(); ++s) {
      if (!sorted[s]->table().Contains(x)) {
        in_all = false;
        break;
      }
    }
    if (in_all) out->push_back(x);
  }
}

}  // namespace fsi
