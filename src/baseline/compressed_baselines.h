// Compressed Merge and Lookup (Section 4.1).
//
// The paper compares its compressed structures against the standard
// compressed inverted-index representations: posting lists stored as Elias
// γ-/δ-coded gaps, intersected by streaming decode (Merge_Gamma/_Delta), and
// the Sanders-Transier bucket structure with γ-/δ-coded in-bucket values and
// an uncompressed bucket directory (Lookup_Gamma/_Delta).

#ifndef FSI_BASELINE_COMPRESSED_BASELINES_H_
#define FSI_BASELINE_COMPRESSED_BASELINES_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "codec/bit_stream.h"
#include "core/algorithm.h"
#include "core/cost.h"

namespace fsi {

enum class EliasCodec { kGamma, kDelta };

// ---------------------------------------------------------------------------
// Merge over gap-coded streams
// ---------------------------------------------------------------------------

/// Preprocessed form: one gap-coded bit stream for the whole list.
class CompressedPlainSet : public PreprocessedSet {
 public:
  CompressedPlainSet(std::span<const Elem> set, EliasCodec codec);

  std::size_t size() const override { return n_; }
  std::size_t SizeInWords() const override { return bits_.size() + 1; }

  EliasCodec codec() const { return codec_; }
  const std::vector<std::uint64_t>& bits() const { return bits_; }
  std::size_t bit_count() const { return bit_count_; }

  /// Decodes the full list (used by tests and by cascaded k-way queries).
  ElemList Decode() const;

 private:
  std::size_t n_;
  EliasCodec codec_;
  std::vector<std::uint64_t> bits_;
  std::size_t bit_count_;
};

class CompressedMergeIntersection : public IntersectionAlgorithm {
 public:
  explicit CompressedMergeIntersection(EliasCodec codec);

  /// Planner cost hook (core/cost.h): both streams are decoded end to end —
  /// cost = decode_ns * (n1 + n2) + result_ns * r.
  static double StepCost(const StepCostQuery& q, const CostConstants& c);

  std::string_view name() const override { return name_; }

  std::unique_ptr<PreprocessedSet> Preprocess(
      std::span<const Elem> set) const override;

  void Intersect(std::span<const PreprocessedSet* const> sets,
                 ElemList* out) const override;

 private:
  EliasCodec codec_;
  std::string name_;
};

// ---------------------------------------------------------------------------
// Lookup over per-bucket gap-coded streams
// ---------------------------------------------------------------------------

/// Preprocessed form: bucket directory (bit offsets) + gap-coded buckets.
class CompressedLookupSet : public PreprocessedSet {
 public:
  CompressedLookupSet(std::span<const Elem> set, EliasCodec codec,
                      int bucket_bits);

  std::size_t size() const override { return n_; }
  std::size_t SizeInWords() const override {
    return bits_.size() +
           (dir_.size() * sizeof(std::uint32_t) + 7) / 8 + 1;
  }

  EliasCodec codec() const { return codec_; }
  int bucket_bits() const { return bucket_bits_; }
  std::uint32_t num_buckets() const {
    return static_cast<std::uint32_t>(dir_.size()) - 1;
  }

  /// Decodes bucket `bkt` into `out` (cleared first).  Out-of-range buckets
  /// decode to empty.
  void DecodeBucket(std::uint32_t bkt, std::vector<Elem>* out) const;

 private:
  std::size_t n_;
  EliasCodec codec_;
  int bucket_bits_;
  std::vector<std::uint64_t> bits_;
  std::vector<std::uint32_t> dir_;  // bit offset per bucket, +1 sentinel
};

class CompressedLookupIntersection : public IntersectionAlgorithm {
 public:
  explicit CompressedLookupIntersection(EliasCodec codec,
                                        int bucket_size = 32);

  /// Planner cost hook: the small set decodes fully, each of its elements
  /// decodes one bucket of the larger set — the Theorem 3.11 shape with
  /// the decode constant: cost = decode_ns * n1 * log2(2 + n2/n1)
  /// + result_ns * r.
  static double StepCost(const StepCostQuery& q, const CostConstants& c);

  std::string_view name() const override { return name_; }

  std::unique_ptr<PreprocessedSet> Preprocess(
      std::span<const Elem> set) const override;

  void Intersect(std::span<const PreprocessedSet* const> sets,
                 ElemList* out) const override;

 private:
  EliasCodec codec_;
  int bucket_bits_;
  std::string name_;
};

}  // namespace fsi

#endif  // FSI_BASELINE_COMPRESSED_BASELINES_H_
