#include "baseline/compressed_baselines.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "codec/elias.h"
#include "util/bits.h"

namespace fsi {
namespace {

std::uint64_t ReadCode(BitReader& r, EliasCodec codec) {
  return codec == EliasCodec::kGamma ? ReadGamma(r) : ReadDelta(r);
}

void WriteCode(BitWriter& w, EliasCodec codec, std::uint64_t v) {
  if (codec == EliasCodec::kGamma) {
    WriteGamma(w, v);
  } else {
    WriteDelta(w, v);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// CompressedPlainSet / Merge
// ---------------------------------------------------------------------------

CompressedPlainSet::CompressedPlainSet(std::span<const Elem> set,
                                       EliasCodec codec)
    : n_(set.size()), codec_(codec) {
  DebugCheckSortedUnique(set, "CompressedMerge");
  BitWriter w;
  Elem prev = 0;
  for (std::size_t i = 0; i < set.size(); ++i) {
    // First value coded as value + 1 (ids may be 0); then strict gaps.
    std::uint64_t gap = static_cast<std::uint64_t>(set[i]) - prev +
                        (i == 0 ? 1 : 0);
    WriteCode(w, codec_, gap);
    prev = set[i];
  }
  bit_count_ = w.BitCount();
  bits_ = w.TakeBuffer();
}

ElemList CompressedPlainSet::Decode() const {
  ElemList out;
  out.reserve(n_);
  BitReader r(bits_.data(), bit_count_);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    prev += ReadCode(r, codec_) - (i == 0 ? 1 : 0);
    out.push_back(static_cast<Elem>(prev));
  }
  return out;
}

double CompressedMergeIntersection::StepCost(const StepCostQuery& q,
                                             const CostConstants& c) {
  return c.decode_ns * static_cast<double>(q.small_size + q.large_size) +
         c.result_ns * q.est_result;
}

double CompressedLookupIntersection::StepCost(const StepCostQuery& q,
                                              const CostConstants& c) {
  const double n1 = static_cast<double>(q.small_size);
  const double n2 = static_cast<double>(q.large_size);
  const double ratio = n1 > 0 ? n2 / n1 : n2;
  return c.decode_ns * n1 * std::log2(2.0 + ratio) + c.result_ns * q.est_result;
}

CompressedMergeIntersection::CompressedMergeIntersection(EliasCodec codec)
    : codec_(codec),
      name_(codec == EliasCodec::kGamma ? "Merge_Gamma" : "Merge_Delta") {}

std::unique_ptr<PreprocessedSet> CompressedMergeIntersection::Preprocess(
    std::span<const Elem> set) const {
  return std::make_unique<CompressedPlainSet>(set, codec_);
}

void CompressedMergeIntersection::Intersect(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  std::size_t k = sets.size();
  if (k == 0) return;
  std::vector<const CompressedPlainSet*> lists;
  lists.reserve(k);
  for (const PreprocessedSet* s : sets) {
    lists.push_back(&As<CompressedPlainSet>(*s));
  }
  if (k == 1) {
    *out = lists[0]->Decode();
    return;
  }
  // Streaming k-way scan: per-list decoder state (reader, current value,
  // remaining count).
  struct Stream {
    BitReader reader;
    std::uint64_t value = 0;
    std::size_t remaining = 0;
    EliasCodec codec;
    bool Advance() {  // move to next value; false when exhausted
      if (remaining == 0) return false;
      --remaining;
      value += ReadCode(reader, codec);
      return true;
    }
  };
  std::vector<Stream> streams;
  streams.reserve(k);
  for (const CompressedPlainSet* l : lists) {
    if (l->size() == 0) return;
    Stream s{BitReader(l->bits().data(), l->bit_count()), 0, l->size(),
             l->codec()};
    // Prime with the first value (coded as value + 1).
    s.value = ReadCode(s.reader, s.codec) - 1;
    --s.remaining;
    streams.push_back(std::move(s));
  }
  std::uint64_t cand = streams[0].value;
  std::size_t agree = 1;
  std::size_t i = 1;
  while (true) {
    Stream& si = streams[i];
    while (si.value < cand) {
      if (!si.Advance()) return;
    }
    if (si.value == cand) {
      if (++agree == k) {
        out->push_back(static_cast<Elem>(cand));
        if (!si.Advance()) return;
        cand = si.value;
        agree = 1;
      }
    } else {
      cand = si.value;
      agree = 1;
    }
    i = (i + 1) % k;
  }
}

// ---------------------------------------------------------------------------
// CompressedLookupSet / Lookup
// ---------------------------------------------------------------------------

CompressedLookupSet::CompressedLookupSet(std::span<const Elem> set,
                                         EliasCodec codec, int bucket_bits)
    : n_(set.size()), codec_(codec), bucket_bits_(bucket_bits) {
  DebugCheckSortedUnique(set, "CompressedLookup");
  // Keep the directory O(n) on sparse id ranges (see LookupSet).
  while (bucket_bits_ < 31 && !set.empty() &&
         (static_cast<std::uint64_t>(set.back()) >> bucket_bits_) >
             4 * set.size()) {
    ++bucket_bits_;
  }
  std::uint32_t max_bucket = set.empty() ? 0 : (set.back() >> bucket_bits_);
  dir_.assign(max_bucket + 2, 0);
  BitWriter w;
  std::size_t i = 0;
  for (std::uint32_t b = 0; b <= max_bucket; ++b) {
    dir_[b] = static_cast<std::uint32_t>(w.BitCount());
    std::uint64_t base = static_cast<std::uint64_t>(b) << bucket_bits_;
    std::uint64_t prev = base;
    bool first = true;
    while (i < set.size() && (set[i] >> bucket_bits_) == b) {
      std::uint64_t gap = set[i] - prev + (first ? 1 : 0);
      WriteCode(w, codec_, gap);
      prev = set[i];
      first = false;
      ++i;
    }
  }
  dir_.back() = static_cast<std::uint32_t>(w.BitCount());
  bits_ = w.TakeBuffer();
}

void CompressedLookupSet::DecodeBucket(std::uint32_t bkt,
                                       std::vector<Elem>* out) const {
  out->clear();
  if (bkt + 1 >= dir_.size()) return;
  std::uint32_t lo = dir_[bkt];
  std::uint32_t hi = dir_[bkt + 1];
  if (lo == hi) return;
  BitReader r(bits_.data(), hi);
  r.Skip(lo);
  std::uint64_t prev = static_cast<std::uint64_t>(bkt) << bucket_bits_;
  bool first = true;
  while (r.position() < hi) {
    prev += ReadCode(r, codec_) - (first ? 1 : 0);
    first = false;
    out->push_back(static_cast<Elem>(prev));
  }
}

CompressedLookupIntersection::CompressedLookupIntersection(EliasCodec codec,
                                                           int bucket_size)
    : codec_(codec),
      name_(codec == EliasCodec::kGamma ? "Lookup_Gamma" : "Lookup_Delta") {
  if (bucket_size <= 0 || (bucket_size & (bucket_size - 1)) != 0) {
    throw std::invalid_argument(
        "CompressedLookup: bucket_size must be a power of two");
  }
  bucket_bits_ = FloorLog2(static_cast<std::uint64_t>(bucket_size));
}

std::unique_ptr<PreprocessedSet> CompressedLookupIntersection::Preprocess(
    std::span<const Elem> set) const {
  return std::make_unique<CompressedLookupSet>(set, codec_, bucket_bits_);
}

void CompressedLookupIntersection::Intersect(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  std::size_t k = sets.size();
  if (k == 0) return;
  std::vector<const CompressedLookupSet*> sorted;
  sorted.reserve(k);
  for (const PreprocessedSet* s : sets) {
    sorted.push_back(&As<CompressedLookupSet>(*s));
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const CompressedLookupSet* a,
                      const CompressedLookupSet* b) {
                     return a->size() < b->size();
                   });
  if (sorted[0]->size() == 0) return;
  if (k == 1) {
    std::vector<Elem> bucket;
    for (std::uint32_t b = 0; b < sorted[0]->num_buckets(); ++b) {
      sorted[0]->DecodeBucket(b, &bucket);
      out->insert(out->end(), bucket.begin(), bucket.end());
    }
    return;
  }
  // Decode the smallest set bucket-by-bucket; probe each element in the
  // other sets' matching buckets (decoded once per distinct bucket, cached).
  std::vector<std::vector<Elem>> cache(k);
  std::vector<std::uint32_t> cached_bucket(k, 0xFFFFFFFFu);
  std::vector<Elem> lead_bucket;
  for (std::uint32_t b = 0; b < sorted[0]->num_buckets(); ++b) {
    sorted[0]->DecodeBucket(b, &lead_bucket);
    for (Elem x : lead_bucket) {
      bool in_all = true;
      for (std::size_t s = 1; s < k; ++s) {
        std::uint32_t xb = x >> sorted[s]->bucket_bits();
        if (cached_bucket[s] != xb) {
          sorted[s]->DecodeBucket(xb, &cache[s]);
          cached_bucket[s] = xb;
        }
        if (!std::binary_search(cache[s].begin(), cache[s].end(), x)) {
          in_all = false;
          break;
        }
      }
      if (in_all) out->push_back(x);
    }
  }
}

}  // namespace fsi
