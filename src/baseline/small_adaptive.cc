#include "baseline/small_adaptive.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "baseline/plain_set.h"

namespace fsi {

std::unique_ptr<PreprocessedSet> SmallAdaptiveIntersection::Preprocess(
    std::span<const Elem> set) const {
  DebugCheckSortedUnique(set, name());
  return std::make_unique<PlainSet>(set);
}

void SmallAdaptiveIntersection::Intersect(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  std::size_t k = sets.size();
  if (k == 0) return;
  std::vector<std::span<const Elem>> lists;
  lists.reserve(k);
  for (const PreprocessedSet* s : sets) {
    lists.push_back(As<PlainSet>(*s).elems());
  }
  if (k == 1) {
    out->assign(lists[0].begin(), lists[0].end());
    return;
  }
  std::vector<std::size_t> pos(k, 0);
  std::vector<std::size_t> order(k);  // set indices, smallest remainder first
  std::iota(order.begin(), order.end(), 0);
  auto remaining = [&](std::size_t s) { return lists[s].size() - pos[s]; };
  while (true) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return remaining(a) < remaining(b);
    });
    std::size_t lead = order[0];
    if (pos[lead] >= lists[lead].size()) return;
    Elem e = lists[lead][pos[lead]++];
    bool in_all = true;
    for (std::size_t j = 1; j < k; ++j) {
      std::size_t s = order[j];
      std::size_t p = GallopGreaterEqual(lists[s], pos[s], e);
      pos[s] = p;
      if (p >= lists[s].size()) return;  // s exhausted; nothing more can match
      if (lists[s][p] != e) {
        in_all = false;
        break;
      }
      pos[s] = p + 1;  // consume the confirmed occurrence
    }
    if (in_all) out->push_back(e);
  }
}

}  // namespace fsi
