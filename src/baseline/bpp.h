// BPP: the hash-image intersection of Bille, Pagh & Pagh, "Fast Evaluation
// of Union-Intersection Expressions" [6] — simplified for small w, as the
// paper's own evaluation does ("we also simplified the bit-manipulation in
// BPP [6] so that it works faster in practice for small w").
//
// The mechanism of [6] is universe reduction over the *whole set*: every
// element is mapped by a hash h to a short code, the two code multisets are
// intersected (in [6] word-packed, log w codes per word, with bit-parallel
// merging), the surviving codes are mapped back through h^{-1}, and false
// positives are removed.  Crucially there is no value-range partitioning,
// so — unlike the host paper's algorithms — nothing can be skipped: every
// element's code participates in the merge.  That is exactly the cost
// profile the paper measures ("a number of complex operations ... hidden as
// a constant in the O()-notation").
//
// Our simplification: 16-bit codes stored as a sorted array (the packed
// word-parallel merge of [6] is emulated by a plain run-merge over the
// sorted codes); elements are stored reordered by (code, element) so each
// code's pre-image is a contiguous, value-ordered run and false-positive
// removal is a linear merge of runs.  Two-set queries only, as benchmarked
// in the paper (Figure 4).

#ifndef FSI_BASELINE_BPP_H_
#define FSI_BASELINE_BPP_H_

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/algorithm.h"
#include "hash/universal_hash.h"

namespace fsi {

/// Preprocessed form: elements sorted by (code, value) with their parallel
/// 16-bit code array.
class BppSet : public PreprocessedSet {
 public:
  BppSet(std::span<const Elem> set, const UniversalHash& code_hash);

  std::size_t size() const override { return elems_.size(); }
  std::size_t SizeInWords() const override;

  std::span<const Elem> elems() const { return elems_; }
  std::span<const std::uint16_t> codes() const { return codes_; }

 private:
  std::vector<Elem> elems_;           // reordered by (code, value)
  std::vector<std::uint16_t> codes_;  // ascending
};

class BppIntersection : public IntersectionAlgorithm {
 public:
  explicit BppIntersection(std::uint64_t seed = 0x13198a2e03707344ULL)
      : code_hash_(16, seed) {}

  std::string_view name() const override { return "BPP"; }

  std::unique_ptr<PreprocessedSet> Preprocess(
      std::span<const Elem> set) const override;

  void Intersect(std::span<const PreprocessedSet* const> sets,
                 ElemList* out) const override;

  void IntersectUnordered(std::span<const PreprocessedSet* const> sets,
                          ElemList* out) const override;

  std::size_t max_query_sets() const override { return 2; }

 private:
  UniversalHash code_hash_;
};

}  // namespace fsi

#endif  // FSI_BASELINE_BPP_H_
