#include "baseline/bpp.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace fsi {

BppSet::BppSet(std::span<const Elem> set, const UniversalHash& code_hash) {
  std::size_t n = set.size();
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::uint16_t> raw(n);
  for (std::size_t i = 0; i < n; ++i) {
    raw[i] = static_cast<std::uint16_t>(code_hash(set[i]));
  }
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (raw[a] != raw[b]) return raw[a] < raw[b];
              return set[a] < set[b];
            });
  elems_.resize(n);
  codes_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    elems_[i] = set[order[i]];
    codes_[i] = raw[order[i]];
  }
}

std::size_t BppSet::SizeInWords() const {
  return (elems_.size() * sizeof(Elem) + 7) / 8 +
         (codes_.size() * sizeof(std::uint16_t) + 7) / 8;
}

std::unique_ptr<PreprocessedSet> BppIntersection::Preprocess(
    std::span<const Elem> set) const {
  DebugCheckSortedUnique(set, name());
  return std::make_unique<BppSet>(set, code_hash_);
}

void BppIntersection::Intersect(std::span<const PreprocessedSet* const> sets,
                                ElemList* out) const {
  IntersectUnordered(sets, out);
  std::sort(out->begin(), out->end());
}

void BppIntersection::IntersectUnordered(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  if (sets.size() > 2) {
    throw std::invalid_argument("BPP: supports two-set queries only");
  }
  if (sets.empty()) return;
  const auto& a = As<BppSet>(*sets[0]);
  if (sets.size() == 1) {
    out->assign(a.elems().begin(), a.elems().end());
    std::sort(out->begin(), out->end());
    return;
  }
  const auto& b = As<BppSet>(*sets[1]);
  std::span<const std::uint16_t> ca = a.codes();
  std::span<const std::uint16_t> cb = b.codes();
  std::span<const Elem> ea = a.elems();
  std::span<const Elem> eb = b.elems();
  // Merge over the sorted code sequences; matching codes identify candidate
  // runs whose pre-images are verified by a value merge (false-positive
  // removal).
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < ca.size() && ib < cb.size()) {
    std::uint16_t code_a = ca[ia];
    std::uint16_t code_b = cb[ib];
    if (code_a < code_b) {
      ++ia;
    } else if (code_b < code_a) {
      ++ib;
    } else {
      // Runs of equal code: value-ordered linear merge.
      std::uint16_t code = code_a;
      while (ia < ca.size() && ib < cb.size() && ca[ia] == code &&
             cb[ib] == code) {
        if (ea[ia] == eb[ib]) {
          out->push_back(ea[ia]);
          ++ia;
          ++ib;
        } else if (ea[ia] < eb[ib]) {
          ++ia;
        } else {
          ++ib;
        }
      }
      while (ia < ca.size() && ca[ia] == code) ++ia;
      while (ib < cb.size() && cb[ib] == code) ++ib;
    }
  }
}

}  // namespace fsi
