// SkipList: intersection over skip-list representations (Pugh [18]).
//
// The paper's competitor (ii).  The smallest set is scanned in order; every
// element is sought in the other sets' skip lists.  Seeks use the lists'
// O(log n) descent; cursors are monotone so repeated seeks never move
// backwards.

#ifndef FSI_BASELINE_SKIP_LIST_INTERSECT_H_
#define FSI_BASELINE_SKIP_LIST_INTERSECT_H_

#include <memory>
#include <span>
#include <string_view>

#include "container/skip_list.h"
#include "core/algorithm.h"

namespace fsi {

/// Preprocessed form: a static skip list over the set.
class SkipListSet : public PreprocessedSet {
 public:
  SkipListSet(std::span<const Elem> set, std::uint64_t seed)
      : list_(set, seed) {}

  std::size_t size() const override { return list_.size(); }
  std::size_t SizeInWords() const override { return list_.SizeInWords(); }

  const SkipList<Elem>& list() const { return list_; }

 private:
  SkipList<Elem> list_;
};

class SkipListIntersection : public IntersectionAlgorithm {
 public:
  explicit SkipListIntersection(std::uint64_t seed = 0x243f6a8885a308d3ULL)
      : seed_(seed) {}

  std::string_view name() const override { return "SkipList"; }

  std::unique_ptr<PreprocessedSet> Preprocess(
      std::span<const Elem> set) const override;

  void Intersect(std::span<const PreprocessedSet* const> sets,
                 ElemList* out) const override;

 private:
  std::uint64_t seed_;
};

}  // namespace fsi

#endif  // FSI_BASELINE_SKIP_LIST_INTERSECT_H_
