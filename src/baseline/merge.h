// Merge: intersection by parallel scan of sorted lists.
//
// The paper's competitor (i): "set intersection based on a simple parallel
// scan of inverted indexes".  Despite its simplicity it is the paper's
// strongest baseline on symmetric inputs, so our implementation keeps the
// inner loop branch-light as the paper's own does ("we tried to minimize the
// number of branches in the inner loop").
//
// Two sets: the textbook two-pointer merge step, O(n1 + n2).
// k sets:   a candidate-advance scan over all k cursors simultaneously.

#ifndef FSI_BASELINE_MERGE_H_
#define FSI_BASELINE_MERGE_H_

#include <memory>
#include <span>
#include <string_view>

#include "core/algorithm.h"
#include "core/cost.h"
#include "simd/intersect_kernels.h"

namespace fsi {

class MergeIntersection : public IntersectionAlgorithm {
 public:
  /// Planner cost hook (core/cost.h): the parallel scan touches every
  /// element once — cost = merge_ns * (n1 + n2), plus the shared
  /// per-result term.
  static double StepCost(const StepCostQuery& q, const CostConstants& c);

  /// `simd` selects the two-set inner-loop kernel tier: kAuto runs the
  /// CPU-dispatched block merge (registry spec "Merge" or "Merge:simd=auto"),
  /// kOff the scalar two-pointer loop ("Merge:simd=off").  Results are
  /// bit-identical either way.
  explicit MergeIntersection(simd::Mode simd = simd::Mode::kAuto)
      : kernels_(&simd::Select(simd)) {}

  std::string_view name() const override { return "Merge"; }

  std::unique_ptr<PreprocessedSet> Preprocess(
      std::span<const Elem> set) const override;

  void Intersect(std::span<const PreprocessedSet* const> sets,
                 ElemList* out) const override;

 private:
  const simd::Kernels* kernels_;
};

/// Free-function two-pointer intersection of raw sorted spans; reused by the
/// small-group "linear merge" steps inside the paper's own algorithms
/// (Algorithm 2 line 3 and Algorithm 5 line 4) and by tests as ground truth.
void MergeIntersect(std::span<const Elem> a, std::span<const Elem> b,
                    ElemList* out);

/// k-way candidate-advance scan over raw sorted spans (k >= 1).
void MergeIntersectK(std::span<const std::span<const Elem>> lists,
                     ElemList* out);

}  // namespace fsi

#endif  // FSI_BASELINE_MERGE_H_
