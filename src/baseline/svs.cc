#include "baseline/svs.h"

#include <vector>

#include "baseline/plain_set.h"

namespace fsi {

std::unique_ptr<PreprocessedSet> SvsIntersection::Preprocess(
    std::span<const Elem> set) const {
  DebugCheckSortedUnique(set, name());
  return std::make_unique<PlainSet>(set);
}

void SvsIntersection::Intersect(std::span<const PreprocessedSet* const> sets,
                                ElemList* out) const {
  std::vector<const PlainSet*> sorted = SortBySize(sets);
  if (sorted.empty()) return;
  out->assign(sorted[0]->elems().begin(), sorted[0]->elems().end());
  ElemList next;
  for (std::size_t s = 1; s < sorted.size() && !out->empty(); ++s) {
    std::span<const Elem> big = sorted[s]->elems();
    next.clear();
    next.reserve(out->size());
    std::size_t cursor = 0;
    for (Elem x : *out) {
      cursor = kernels_->gallop_ge(big.data(), big.size(), cursor, x);
      if (cursor == big.size()) break;
      if (big[cursor] == x) next.push_back(x);
    }
    out->swap(next);
  }
}

}  // namespace fsi
