#include "baseline/svs.h"

#include <cmath>
#include <vector>

#include "baseline/plain_set.h"

namespace fsi {

double SvsIntersection::StepCost(const StepCostQuery& q,
                                 const CostConstants& c) {
  double n1 = static_cast<double>(q.small_size);
  double n2 = static_cast<double>(q.large_size);
  double log_ratio = std::log2(2.0 + (n1 > 0 ? n2 / n1 : n2));
  return c.gallop_ns * n1 * log_ratio + c.result_ns * q.est_result;
}

std::unique_ptr<PreprocessedSet> SvsIntersection::Preprocess(
    std::span<const Elem> set) const {
  DebugCheckSortedUnique(set, name());
  return std::make_unique<PlainSet>(set);
}

void GallopEliminate(const simd::Kernels& kernels,
                     std::span<const Elem> candidates,
                     std::span<const Elem> big, ElemList* out) {
  std::size_t cursor = 0;
  for (Elem x : candidates) {
    cursor = kernels.gallop_ge(big.data(), big.size(), cursor, x);
    if (cursor == big.size()) break;
    if (big[cursor] == x) out->push_back(x);
  }
}

void SvsIntersection::Intersect(std::span<const PreprocessedSet* const> sets,
                                ElemList* out) const {
  std::vector<const PlainSet*> sorted = SortBySize(sets);
  if (sorted.empty()) return;
  out->assign(sorted[0]->elems().begin(), sorted[0]->elems().end());
  ElemList next;
  for (std::size_t s = 1; s < sorted.size() && !out->empty(); ++s) {
    next.clear();
    next.reserve(out->size());
    GallopEliminate(*kernels_, *out, sorted[s]->elems(), &next);
    out->swap(next);
  }
}

}  // namespace fsi
