// PlainSet: the trivial preprocessed form shared by the comparison-based
// baselines (Merge, SvS, Adaptive, BaezaYates, SmallAdaptive).
//
// It is exactly an uncompressed inverted-index posting list: the sorted
// element array, stored contiguously ("we also store postings in consecutive
// memory addresses to speed up parallel scans", Section 4 Implementation).

#ifndef FSI_BASELINE_PLAIN_SET_H_
#define FSI_BASELINE_PLAIN_SET_H_

#include <memory>
#include <span>
#include <vector>

#include "core/algorithm.h"
#include "storage/layout.h"

namespace fsi {

/// A sorted element array; the baseline "structure" and the space yardstick
/// (the paper reports every structure's size relative to this one).
///
/// Storage is a storage::FlatArray so the same type serves freshly
/// prepared sets (owning) and snapshot-loaded ones (borrowing a span of
/// the mmap'ed file — see docs/PERSISTENCE.md).
class PlainSet : public PreprocessedSet {
 public:
  explicit PlainSet(std::span<const Elem> set)
      : elems_(std::vector<Elem>(set.begin(), set.end())) {}

  std::size_t size() const override { return elems_.size(); }

  std::size_t SizeInWords() const override {
    return (elems_.size() * sizeof(Elem) + 7) / 8;
  }

  std::span<const Elem> elems() const { return elems_.view(); }

  /// Appends the element array to `payload` and fills the elems ref (and
  /// kind, unless the caller is composing a larger record).
  void WriteFlat(storage::PayloadWriter& payload,
                 storage::SetRecord& record) const {
    record.kind = static_cast<std::uint32_t>(storage::SetKind::kPlain);
    record.elems = payload.Append(elems_.view());
  }

  /// Reconstructs a PlainSet whose span aliases `payload` (zero-copy).
  /// The backing bytes must outlive the returned set.
  static std::unique_ptr<PlainSet> ViewFlat(
      std::span<const std::byte> payload, const storage::SetRecord& record) {
    return std::unique_ptr<PlainSet>(new PlainSet(storage::FlatArray<Elem>::View(
        storage::ResolveSpan<Elem>(payload, record.elems, "PlainSet.elems"))));
  }

 private:
  explicit PlainSet(storage::FlatArray<Elem> elems)
      : elems_(std::move(elems)) {}

  storage::FlatArray<Elem> elems_;
};

/// Sorts a k-way query by set size ascending (the adaptive baselines and the
/// k-way generalizations of [5] all process sets smallest-first).
std::vector<const PlainSet*> SortBySize(
    std::span<const PreprocessedSet* const> sets);

/// Galloping (exponential + binary) search: index of the first element
/// >= x in sorted[lo, n), expected O(log distance).  The workhorse of the
/// adaptive algorithms [12, 13, 1, 2, 5].
std::size_t GallopGreaterEqual(std::span<const Elem> sorted, std::size_t lo,
                               Elem x);

}  // namespace fsi

#endif  // FSI_BASELINE_PLAIN_SET_H_
