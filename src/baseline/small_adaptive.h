// SmallAdaptive: the hybrid adaptive algorithm of Barbay, López-Ortiz, Lu &
// Salinger [5] ("An experimental investigation of set intersection
// algorithms for text searching").
//
// The paper's competitor (vi), and the algorithm whose
// O(n1 log(n2/n1))-style asymmetric bound HashBin (Section 3.4) matches
// with simpler online processing.  Each round:
//   1. order the sets by *remaining* size (the suffix not yet consumed);
//   2. take the first element e of the set with the smallest remainder;
//   3. gallop for e through the other sets in increasing remainder order,
//      consuming the scanned prefixes; stop at the first miss;
//   4. if every set confirmed e, emit it.
// Re-ranking after every element makes it adaptive to local density changes.

#ifndef FSI_BASELINE_SMALL_ADAPTIVE_H_
#define FSI_BASELINE_SMALL_ADAPTIVE_H_

#include <memory>
#include <span>
#include <string_view>

#include "core/algorithm.h"

namespace fsi {

class SmallAdaptiveIntersection : public IntersectionAlgorithm {
 public:
  std::string_view name() const override { return "SmallAdaptive"; }

  std::unique_ptr<PreprocessedSet> Preprocess(
      std::span<const Elem> set) const override;

  void Intersect(std::span<const PreprocessedSet* const> sets,
                 ElemList* out) const override;
};

}  // namespace fsi

#endif  // FSI_BASELINE_SMALL_ADAPTIVE_H_
