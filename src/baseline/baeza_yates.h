// BaezaYates: the double-binary-search intersection of Baeza-Yates [1] /
// Baeza-Yates & Salinger [2].
//
// Two sets: take the median of the smaller set, binary-search it in the
// larger; recurse on the two halves on each side.  Emitting the left
// recursion, then the median hit, then the right recursion keeps the output
// sorted without a post-sort.  k sets: as in the paper ("BaezaYates is
// generalized to handle more than two sets as in [5]"): sort by size,
// intersect the two smallest, then the result with the next set, and so on.

#ifndef FSI_BASELINE_BAEZA_YATES_H_
#define FSI_BASELINE_BAEZA_YATES_H_

#include <memory>
#include <span>
#include <string_view>

#include "core/algorithm.h"

namespace fsi {

class BaezaYatesIntersection : public IntersectionAlgorithm {
 public:
  std::string_view name() const override { return "BaezaYates"; }

  std::unique_ptr<PreprocessedSet> Preprocess(
      std::span<const Elem> set) const override;

  void Intersect(std::span<const PreprocessedSet* const> sets,
                 ElemList* out) const override;
};

}  // namespace fsi

#endif  // FSI_BASELINE_BAEZA_YATES_H_
