// BaezaYates: the double-binary-search intersection of Baeza-Yates [1] /
// Baeza-Yates & Salinger [2].
//
// Two sets: take the median of the smaller set, binary-search it in the
// larger; recurse on the two halves on each side.  Emitting the left
// recursion, then the median hit, then the right recursion keeps the output
// sorted without a post-sort.  k sets: as in the paper ("BaezaYates is
// generalized to handle more than two sets as in [5]"): sort by size,
// intersect the two smallest, then the result with the next set, and so on.

#ifndef FSI_BASELINE_BAEZA_YATES_H_
#define FSI_BASELINE_BAEZA_YATES_H_

#include <memory>
#include <span>
#include <string_view>

#include "core/algorithm.h"
#include "simd/intersect_kernels.h"

namespace fsi {

class BaezaYatesIntersection : public IntersectionAlgorithm {
 public:
  /// `simd` selects the median-probe kernel tier (registry option
  /// "BaezaYates:simd=auto|off"): each recursion step binary-searches the
  /// median in the larger range; the vector tiers resolve the final search
  /// window with broadcast compares.
  explicit BaezaYatesIntersection(simd::Mode simd = simd::Mode::kAuto)
      : kernels_(&simd::Select(simd)) {}

  std::string_view name() const override { return "BaezaYates"; }

  std::unique_ptr<PreprocessedSet> Preprocess(
      std::span<const Elem> set) const override;

  void Intersect(std::span<const PreprocessedSet* const> sets,
                 ElemList* out) const override;

 private:
  const simd::Kernels* kernels_;
};

}  // namespace fsi

#endif  // FSI_BASELINE_BAEZA_YATES_H_
