// Lookup: the two-level single-value bucket representation of Sanders &
// Transier [19, 21] for integer inverted indices in main memory.
//
// The paper's competitor (v), run with bucket size B = 32 ("the best value
// in our and the authors' experience").  The universe is cut into aligned
// buckets of B consecutive ids; each set stores, besides its sorted element
// array, an offset table mapping bucket id -> first element position.  An
// intersection iterates the smaller set and jumps straight into the matching
// bucket of the larger set — a random access ("lookup") instead of a search.

#ifndef FSI_BASELINE_LOOKUP_H_
#define FSI_BASELINE_LOOKUP_H_

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/algorithm.h"

namespace fsi {

/// Preprocessed form: sorted elements + bucket offset table.
class LookupSet : public PreprocessedSet {
 public:
  LookupSet(std::span<const Elem> set, int bucket_bits);

  std::size_t size() const override { return elems_.size(); }
  std::size_t SizeInWords() const override;

  std::span<const Elem> elems() const { return elems_; }

  /// Half-open element range [first, second) of bucket b; empty range when
  /// the bucket is beyond the set's maximum.
  std::pair<std::uint32_t, std::uint32_t> BucketRange(std::uint32_t b) const {
    if (b + 1 >= bucket_start_.size()) return {0, 0};
    return {bucket_start_[b], bucket_start_[b + 1]};
  }

  int bucket_bits() const { return bucket_bits_; }

 private:
  int bucket_bits_;
  std::vector<Elem> elems_;
  std::vector<std::uint32_t> bucket_start_;  // max_bucket + 2 entries
};

class LookupIntersection : public IntersectionAlgorithm {
 public:
  /// `bucket_size` must be a power of two; the paper uses 32.
  explicit LookupIntersection(int bucket_size = 32);

  std::string_view name() const override { return "Lookup"; }

  std::unique_ptr<PreprocessedSet> Preprocess(
      std::span<const Elem> set) const override;

  void Intersect(std::span<const PreprocessedSet* const> sets,
                 ElemList* out) const override;

 private:
  int bucket_bits_;
};

}  // namespace fsi

#endif  // FSI_BASELINE_LOOKUP_H_
