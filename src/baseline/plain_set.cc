#include "baseline/plain_set.h"

#include <algorithm>

namespace fsi {

std::vector<const PlainSet*> SortBySize(
    std::span<const PreprocessedSet* const> sets) {
  std::vector<const PlainSet*> sorted;
  sorted.reserve(sets.size());
  for (const PreprocessedSet* s : sets) {
    sorted.push_back(&As<PlainSet>(*s));
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const PlainSet* a, const PlainSet* b) {
                     return a->size() < b->size();
                   });
  return sorted;
}

std::size_t GallopGreaterEqual(std::span<const Elem> sorted, std::size_t lo,
                               Elem x) {
  std::size_t n = sorted.size();
  if (lo >= n || sorted[lo] >= x) return lo;
  // Exponential probe: double the step until we overshoot.
  std::size_t step = 1;
  std::size_t prev = lo;
  std::size_t cur = lo + 1;
  while (cur < n && sorted[cur] < x) {
    prev = cur;
    step *= 2;
    cur = lo + step;
  }
  if (cur > n) cur = n;
  // Binary search in (prev, cur].
  auto it = std::lower_bound(sorted.begin() + static_cast<std::ptrdiff_t>(prev) + 1,
                             sorted.begin() + static_cast<std::ptrdiff_t>(cur), x);
  return static_cast<std::size_t>(it - sorted.begin());
}

}  // namespace fsi
