#include "baseline/plain_set.h"

#include <algorithm>

#include "simd/intersect_kernels.h"

namespace fsi {

std::vector<const PlainSet*> SortBySize(
    std::span<const PreprocessedSet* const> sets) {
  std::vector<const PlainSet*> sorted;
  sorted.reserve(sets.size());
  for (const PreprocessedSet* s : sets) {
    sorted.push_back(&As<PlainSet>(*s));
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const PlainSet* a, const PlainSet* b) {
                     return a->size() < b->size();
                   });
  return sorted;
}

std::size_t GallopGreaterEqual(std::span<const Elem> sorted, std::size_t lo,
                               Elem x) {
  // One definition for the whole library: the scalar kernel is the original
  // exponential-probe + binary-search loop (src/simd/intersect_kernels.cc).
  return simd::ScalarKernels().gallop_ge(sorted.data(), sorted.size(), lo, x);
}

}  // namespace fsi
