#include "baseline/baeza_yates.h"

#include <algorithm>
#include <vector>

#include "baseline/plain_set.h"

namespace fsi {
namespace {

// Recursive core: intersect small[slo, shi) with big[blo, bhi), appending
// matches in sorted order.
void ByRecurse(std::span<const Elem> small, std::size_t slo, std::size_t shi,
               std::span<const Elem> big, std::size_t blo, std::size_t bhi,
               ElemList* out) {
  if (slo >= shi || blo >= bhi) return;
  // Always recurse on the smaller of the two ranges.
  if (shi - slo > bhi - blo) {
    ByRecurse(big, blo, bhi, small, slo, shi, out);
    return;
  }
  std::size_t mid = slo + (shi - slo) / 2;
  Elem median = small[mid];
  auto first = big.begin() + static_cast<std::ptrdiff_t>(blo);
  auto last = big.begin() + static_cast<std::ptrdiff_t>(bhi);
  auto it = std::lower_bound(first, last, median);
  auto bpos = static_cast<std::size_t>(it - big.begin());
  bool found = it != last && *it == median;
  ByRecurse(small, slo, mid, big, blo, bpos, out);
  if (found) out->push_back(median);
  ByRecurse(small, mid + 1, shi, big, bpos + (found ? 1 : 0), bhi, out);
}

}  // namespace

std::unique_ptr<PreprocessedSet> BaezaYatesIntersection::Preprocess(
    std::span<const Elem> set) const {
  DebugCheckSortedUnique(set, name());
  return std::make_unique<PlainSet>(set);
}

void BaezaYatesIntersection::Intersect(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  std::vector<const PlainSet*> sorted = SortBySize(sets);
  if (sorted.empty()) return;
  out->assign(sorted[0]->elems().begin(), sorted[0]->elems().end());
  ElemList next;
  for (std::size_t s = 1; s < sorted.size() && !out->empty(); ++s) {
    std::span<const Elem> big = sorted[s]->elems();
    next.clear();
    ByRecurse(*out, 0, out->size(), big, 0, big.size(), &next);
    out->swap(next);
  }
}

}  // namespace fsi
