#include "baseline/baeza_yates.h"

#include <algorithm>
#include <vector>

#include "baseline/plain_set.h"

namespace fsi {
namespace {

// Recursive core: intersect small[slo, shi) with big[blo, bhi), appending
// matches in sorted order.  The median probe goes through the kernel
// layer: scalar std::lower_bound under simd=off, a vectorized final
// window otherwise — the returned index (and thus the output) is
// identical.
void ByRecurse(const simd::Kernels& kernels, std::span<const Elem> small,
               std::size_t slo, std::size_t shi, std::span<const Elem> big,
               std::size_t blo, std::size_t bhi, ElemList* out) {
  if (slo >= shi || blo >= bhi) return;
  // Always recurse on the smaller of the two ranges.
  if (shi - slo > bhi - blo) {
    ByRecurse(kernels, big, blo, bhi, small, slo, shi, out);
    return;
  }
  std::size_t mid = slo + (shi - slo) / 2;
  Elem median = small[mid];
  std::size_t bpos =
      blo + kernels.lower_bound(big.data() + blo, bhi - blo, median);
  bool found = bpos != bhi && big[bpos] == median;
  ByRecurse(kernels, small, slo, mid, big, blo, bpos, out);
  if (found) out->push_back(median);
  ByRecurse(kernels, small, mid + 1, shi, big, bpos + (found ? 1 : 0), bhi,
            out);
}

}  // namespace

std::unique_ptr<PreprocessedSet> BaezaYatesIntersection::Preprocess(
    std::span<const Elem> set) const {
  DebugCheckSortedUnique(set, name());
  return std::make_unique<PlainSet>(set);
}

void BaezaYatesIntersection::Intersect(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  std::vector<const PlainSet*> sorted = SortBySize(sets);
  if (sorted.empty()) return;
  out->assign(sorted[0]->elems().begin(), sorted[0]->elems().end());
  ElemList next;
  for (std::size_t s = 1; s < sorted.size() && !out->empty(); ++s) {
    std::span<const Elem> big = sorted[s]->elems();
    next.clear();
    ByRecurse(*kernels_, *out, 0, out->size(), big, 0, big.size(), &next);
    out->swap(next);
  }
}

}  // namespace fsi
