#include "baseline/adaptive.h"

#include <vector>

#include "baseline/plain_set.h"

namespace fsi {

std::unique_ptr<PreprocessedSet> AdaptiveIntersection::Preprocess(
    std::span<const Elem> set) const {
  DebugCheckSortedUnique(set, name());
  return std::make_unique<PlainSet>(set);
}

void AdaptiveIntersection::Intersect(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  std::vector<const PlainSet*> sorted = SortBySize(sets);
  std::size_t k = sorted.size();
  if (k == 0) return;
  if (sorted[0]->elems().empty()) return;
  if (k == 1) {
    out->assign(sorted[0]->elems().begin(), sorted[0]->elems().end());
    return;
  }
  std::vector<std::size_t> pos(k, 0);
  Elem eliminator = sorted[0]->elems()[0];
  pos[0] = 1;
  std::size_t agree = 1;
  std::size_t i = 1;
  while (true) {
    std::span<const Elem> li = sorted[i]->elems();
    std::size_t p = GallopGreaterEqual(li, pos[i], eliminator);
    if (p == li.size()) return;  // list i exhausted: intersection complete
    if (li[p] == eliminator) {
      pos[i] = p;  // leave cursor on the match; it may be re-confirmed later
      if (++agree == k) {
        out->push_back(eliminator);
        pos[i] = p + 1;
        if (pos[i] == li.size()) return;
        eliminator = li[pos[i]];
        ++pos[i];
        agree = 1;
      }
    } else {
      pos[i] = p;
      eliminator = li[p];  // overshoot: list i supplies the new eliminator
      ++pos[i];
      agree = 1;
    }
    i = (i + 1) % k;
  }
}

}  // namespace fsi
