// SvS ("smallest vs. smallest") with galloping search.
//
// The classic adaptive baseline ([12, 13, 3]; best-performing adaptive
// algorithm in several of the paper's experiments): sort the query sets by
// size, take the smallest as the candidate set, and for each further set
// keep only the candidates found by galloping search, processing sets in
// increasing size order.  O(n1 log(n2/n1))-style behaviour on skewed inputs.

#ifndef FSI_BASELINE_SVS_H_
#define FSI_BASELINE_SVS_H_

#include <memory>
#include <span>
#include <string_view>

#include "core/algorithm.h"
#include "core/cost.h"
#include "simd/intersect_kernels.h"

namespace fsi {

class SvsIntersection : public IntersectionAlgorithm {
 public:
  /// Planner cost hook (core/cost.h): each candidate gallops into the
  /// larger set — cost = gallop_ns * n1 * log2(2 + n2/n1), plus the shared
  /// per-result term.
  static double StepCost(const StepCostQuery& q, const CostConstants& c);

  /// `simd` selects the gallop-probe kernel tier (registry option
  /// "SvS:simd=auto|off"): the exponential probe is identical, but the
  /// bracketed window resolves via broadcast-compare on the vector tiers.
  explicit SvsIntersection(simd::Mode simd = simd::Mode::kAuto)
      : kernels_(&simd::Select(simd)) {}

  std::string_view name() const override { return "SvS"; }

  std::unique_ptr<PreprocessedSet> Preprocess(
      std::span<const Elem> set) const override;

  void Intersect(std::span<const PreprocessedSet* const> sets,
                 ElemList* out) const override;

 private:
  const simd::Kernels* kernels_;
};

/// One SvS elimination round: appends every element of `candidates` found
/// in `big` (both sorted, duplicate-free) to `out`, galloping a monotone
/// cursor through `big`.  Shared by SvsIntersection's per-set loop and the
/// planner's chained gallop steps (api/planner.cc).
void GallopEliminate(const simd::Kernels& kernels,
                     std::span<const Elem> candidates,
                     std::span<const Elem> big, ElemList* out);

}  // namespace fsi

#endif  // FSI_BASELINE_SVS_H_
