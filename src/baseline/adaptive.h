// Adaptive: the round-robin "eliminator" algorithm of Demaine, López-Ortiz
// & Munro [12, 13].
//
// The paper's competitor family (vi).  The algorithm maintains an
// eliminator element and cycles over the k sets, galloping for the
// eliminator in each; a set that overshoots supplies the new eliminator.
// An element confirmed by all k sets is output.  The number of comparisons
// adapts to how interleaved the sets are.

#ifndef FSI_BASELINE_ADAPTIVE_H_
#define FSI_BASELINE_ADAPTIVE_H_

#include <memory>
#include <span>
#include <string_view>

#include "core/algorithm.h"

namespace fsi {

class AdaptiveIntersection : public IntersectionAlgorithm {
 public:
  std::string_view name() const override { return "Adaptive"; }

  std::unique_ptr<PreprocessedSet> Preprocess(
      std::span<const Elem> set) const override;

  void Intersect(std::span<const PreprocessedSet* const> sets,
                 ElemList* out) const override;
};

}  // namespace fsi

#endif  // FSI_BASELINE_ADAPTIVE_H_
