#include "baseline/merge.h"

#include <vector>

#include "baseline/plain_set.h"

namespace fsi {

double MergeIntersection::StepCost(const StepCostQuery& q,
                                   const CostConstants& c) {
  return c.merge_ns * static_cast<double>(q.small_size + q.large_size) +
         c.result_ns * q.est_result;
}

std::unique_ptr<PreprocessedSet> MergeIntersection::Preprocess(
    std::span<const Elem> set) const {
  DebugCheckSortedUnique(set, name());
  return std::make_unique<PlainSet>(set);
}

void MergeIntersect(std::span<const Elem> a, std::span<const Elem> b,
                    ElemList* out) {
  // The scalar kernel is the original branch-light two-pointer loop; this
  // free function stays scalar on purpose — it is the ground truth the
  // tests compare every vectorized path against.
  simd::ScalarKernels().intersect_pair(a.data(), a.size(), b.data(), b.size(),
                                       out);
}

void MergeIntersectK(std::span<const std::span<const Elem>> lists,
                     ElemList* out) {
  if (lists.empty()) return;
  if (lists.size() == 1) {
    out->assign(lists[0].begin(), lists[0].end());
    return;
  }
  if (lists.size() == 2) {
    MergeIntersect(lists[0], lists[1], out);
    return;
  }
  // Round-robin candidate-advance: `candidate` is the current largest head;
  // `agree` counts how many consecutive lists confirmed it.  Every list,
  // including list 0, participates in confirmation.
  std::size_t k = lists.size();
  std::vector<std::size_t> pos(k, 0);
  if (lists[0].empty()) return;
  Elem candidate = lists[0][0];
  std::size_t agree = 1;
  std::size_t i = 1;
  while (true) {
    std::span<const Elem> li = lists[i];
    std::size_t p = pos[i];
    while (p < li.size() && li[p] < candidate) ++p;
    pos[i] = p;
    if (p == li.size()) return;  // some list exhausted: done
    if (li[p] == candidate) {
      if (++agree == k) {
        out->push_back(candidate);
        if (++pos[i] == li.size()) return;
        candidate = li[pos[i]];
        agree = 1;
      }
    } else {
      candidate = li[p];  // overshoot: new, larger candidate from list i
      agree = 1;
    }
    i = (i + 1) % k;
  }
}

void MergeIntersection::Intersect(std::span<const PreprocessedSet* const> sets,
                                  ElemList* out) const {
  std::vector<std::span<const Elem>> lists;
  lists.reserve(sets.size());
  for (const PreprocessedSet* s : sets) {
    lists.push_back(As<PlainSet>(*s).elems());
  }
  if (lists.size() == 2) {
    // The dominant query shape takes the kernel layer: block-wise merge on
    // SSE/AVX2 machines, the classic two-pointer loop under simd=off /
    // FSI_FORCE_SCALAR.  Identical output either way.
    kernels_->intersect_pair(lists[0].data(), lists[0].size(),
                             lists[1].data(), lists[1].size(), out);
    return;
  }
  MergeIntersectK(lists, out);
}

}  // namespace fsi
