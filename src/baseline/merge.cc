#include "baseline/merge.h"

#include <vector>

#include "baseline/plain_set.h"

namespace fsi {

std::unique_ptr<PreprocessedSet> MergeIntersection::Preprocess(
    std::span<const Elem> set) const {
  DebugCheckSortedUnique(set, name());
  return std::make_unique<PlainSet>(set);
}

void MergeIntersect(std::span<const Elem> a, std::span<const Elem> b,
                    ElemList* out) {
  const Elem* pa = a.data();
  const Elem* ea = pa + a.size();
  const Elem* pb = b.data();
  const Elem* eb = pb + b.size();
  while (pa < ea && pb < eb) {
    Elem va = *pa;
    Elem vb = *pb;
    if (va == vb) {
      out->push_back(va);
      ++pa;
      ++pb;
    } else {
      // Branch-light advance: exactly one cursor moves.
      pa += (va < vb);
      pb += (vb < va);
    }
  }
}

void MergeIntersectK(std::span<const std::span<const Elem>> lists,
                     ElemList* out) {
  if (lists.empty()) return;
  if (lists.size() == 1) {
    out->assign(lists[0].begin(), lists[0].end());
    return;
  }
  if (lists.size() == 2) {
    MergeIntersect(lists[0], lists[1], out);
    return;
  }
  // Round-robin candidate-advance: `candidate` is the current largest head;
  // `agree` counts how many consecutive lists confirmed it.  Every list,
  // including list 0, participates in confirmation.
  std::size_t k = lists.size();
  std::vector<std::size_t> pos(k, 0);
  if (lists[0].empty()) return;
  Elem candidate = lists[0][0];
  std::size_t agree = 1;
  std::size_t i = 1;
  while (true) {
    std::span<const Elem> li = lists[i];
    std::size_t p = pos[i];
    while (p < li.size() && li[p] < candidate) ++p;
    pos[i] = p;
    if (p == li.size()) return;  // some list exhausted: done
    if (li[p] == candidate) {
      if (++agree == k) {
        out->push_back(candidate);
        if (++pos[i] == li.size()) return;
        candidate = li[pos[i]];
        agree = 1;
      }
    } else {
      candidate = li[p];  // overshoot: new, larger candidate from list i
      agree = 1;
    }
    i = (i + 1) % k;
  }
}

void MergeIntersection::Intersect(std::span<const PreprocessedSet* const> sets,
                                  ElemList* out) const {
  std::vector<std::span<const Elem>> lists;
  lists.reserve(sets.size());
  for (const PreprocessedSet* s : sets) {
    lists.push_back(As<PlainSet>(*s).elems());
  }
  MergeIntersectK(lists, out);
}

}  // namespace fsi
