#include "baseline/lookup.h"

#include <algorithm>
#include <stdexcept>

#include "util/bits.h"

namespace fsi {

LookupSet::LookupSet(std::span<const Elem> set, int bucket_bits)
    : bucket_bits_(bucket_bits), elems_(set.begin(), set.end()) {
  // The directory has one entry per bucket of the *universe up to
  // max(L_i)*.  [19, 21] size buckets for dense doc-id spaces; when the
  // list is far sparser than its id range, widen the buckets so the
  // directory stays O(n) instead of O(universe).
  while (bucket_bits_ < 31 &&
         !elems_.empty() &&
         (static_cast<std::uint64_t>(elems_.back()) >> bucket_bits_) >
             4 * elems_.size()) {
    ++bucket_bits_;
  }
  std::uint32_t max_bucket =
      elems_.empty() ? 0 : (elems_.back() >> bucket_bits_);
  bucket_start_.assign(max_bucket + 2, 0);
  // Counting pass: bucket_start_[b + 1] accumulates the size of bucket b,
  // then a prefix sum turns counts into offsets.
  for (Elem x : elems_) ++bucket_start_[(x >> bucket_bits_) + 1];
  for (std::size_t b = 1; b < bucket_start_.size(); ++b) {
    bucket_start_[b] += bucket_start_[b - 1];
  }
}

std::size_t LookupSet::SizeInWords() const {
  return (elems_.size() * sizeof(Elem) + 7) / 8 +
         (bucket_start_.size() * sizeof(std::uint32_t) + 7) / 8;
}

LookupIntersection::LookupIntersection(int bucket_size) {
  if (bucket_size <= 0 || (bucket_size & (bucket_size - 1)) != 0) {
    throw std::invalid_argument("Lookup: bucket_size must be a power of two");
  }
  bucket_bits_ = FloorLog2(static_cast<std::uint64_t>(bucket_size));
}

std::unique_ptr<PreprocessedSet> LookupIntersection::Preprocess(
    std::span<const Elem> set) const {
  DebugCheckSortedUnique(set, name());
  return std::make_unique<LookupSet>(set, bucket_bits_);
}

void LookupIntersection::Intersect(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  std::vector<const LookupSet*> sorted;
  sorted.reserve(sets.size());
  for (const PreprocessedSet* s : sets) sorted.push_back(&As<LookupSet>(*s));
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const LookupSet* a, const LookupSet* b) {
                     return a->size() < b->size();
                   });
  if (sorted.empty()) return;
  // Cascade smallest-first; candidates are filtered one set at a time, each
  // probe being a bucket lookup + short in-bucket scan.
  out->assign(sorted[0]->elems().begin(), sorted[0]->elems().end());
  ElemList next;
  for (std::size_t s = 1; s < sorted.size() && !out->empty(); ++s) {
    const LookupSet& big = *sorted[s];
    std::span<const Elem> be = big.elems();
    next.clear();
    next.reserve(out->size());
    for (Elem x : *out) {
      auto [lo, hi] = big.BucketRange(x >> big.bucket_bits());
      // Buckets hold <= B elements; a linear scan beats binary search here.
      for (std::uint32_t i = lo; i < hi; ++i) {
        if (be[i] == x) {
          next.push_back(x);
          break;
        }
        if (be[i] > x) break;
      }
    }
    out->swap(next);
  }
}

}  // namespace fsi
