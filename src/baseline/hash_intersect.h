// Hash: intersection via hash-table probes.
//
// The paper's competitor (iii): "we iterate over the smallest set L1,
// looking up every element x ∈ L1 in hash-table representations of
// L2, ..., Lk".  Expected O(min_i |L_i|) — unbeatable for extremely skewed
// size ratios (the paper finds it best for sr >= 100) but slow for balanced
// ones because every probe is a dependent random memory access.

#ifndef FSI_BASELINE_HASH_INTERSECT_H_
#define FSI_BASELINE_HASH_INTERSECT_H_

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "container/hash_set.h"
#include "core/algorithm.h"

namespace fsi {

/// Preprocessed form: the sorted elements plus a linear-probing hash table
/// over them.
class HashedSet : public PreprocessedSet {
 public:
  HashedSet(std::span<const Elem> set, std::uint64_t seed)
      : elems_(set.begin(), set.end()), table_(elems_, seed) {}

  std::size_t size() const override { return elems_.size(); }

  std::size_t SizeInWords() const override {
    return (elems_.size() * sizeof(Elem) + 7) / 8 + table_.SizeInWords();
  }

  std::span<const Elem> elems() const { return elems_; }
  const HashSet<Elem>& table() const { return table_; }

 private:
  std::vector<Elem> elems_;
  HashSet<Elem> table_;
};

class HashIntersection : public IntersectionAlgorithm {
 public:
  explicit HashIntersection(std::uint64_t seed = 0x9b2c01d4e5f60718ULL)
      : seed_(seed) {}

  std::string_view name() const override { return "Hash"; }

  std::unique_ptr<PreprocessedSet> Preprocess(
      std::span<const Elem> set) const override;

  void Intersect(std::span<const PreprocessedSet* const> sets,
                 ElemList* out) const override;

 private:
  std::uint64_t seed_;
};

}  // namespace fsi

#endif  // FSI_BASELINE_HASH_INTERSECT_H_
