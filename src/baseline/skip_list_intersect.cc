#include "baseline/skip_list_intersect.h"

#include <algorithm>
#include <vector>

namespace fsi {

std::unique_ptr<PreprocessedSet> SkipListIntersection::Preprocess(
    std::span<const Elem> set) const {
  DebugCheckSortedUnique(set, name());
  return std::make_unique<SkipListSet>(set, seed_);
}

void SkipListIntersection::Intersect(
    std::span<const PreprocessedSet* const> sets, ElemList* out) const {
  std::vector<const SkipListSet*> sorted;
  sorted.reserve(sets.size());
  for (const PreprocessedSet* s : sets) sorted.push_back(&As<SkipListSet>(*s));
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const SkipListSet* a, const SkipListSet* b) {
                     return a->size() < b->size();
                   });
  if (sorted.empty()) return;
  const SkipList<Elem>& lead = sorted[0]->list();
  std::size_t k = sorted.size();
  std::vector<std::uint32_t> cursor(k, 0);
  for (std::uint32_t i = 0; i < lead.size(); ++i) {
    Elem x = lead.key(i);
    bool in_all = true;
    for (std::size_t s = 1; s < k; ++s) {
      const SkipList<Elem>& other = sorted[s]->list();
      std::uint32_t c = other.SeekGreaterEqual(x, cursor[s]);
      cursor[s] = c;
      if (c >= other.size()) return;  // other set exhausted
      if (other.key(c) != x) {
        in_all = false;
        break;
      }
    }
    if (in_all) out->push_back(x);
  }
}

}  // namespace fsi
