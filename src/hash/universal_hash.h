// 2-universal hash functions.
//
// The paper needs two kinds of hash functions (Section 3):
//   h : Σ → [w]        — maps elements into bit positions of a machine word
//                        (the "word representation" of a small group's image);
//   h_1..h_m : Σ → [w] — m independent such functions for Algorithm 5's
//                        filtering test.
//
// We implement the classic multiply-shift family (Dietzfelbinger et al.):
//   h_{a,b}(x) = (a*x + b) >> (64 - d)
// with a odd, which is 2-universal for d-bit outputs.  All proofs in the
// paper's appendix (e.g. Eq. (4): Pr[h(x1) = h(x2)] <= 1/w) only require
// 2-universality, which this family provides.

#ifndef FSI_HASH_UNIVERSAL_HASH_H_
#define FSI_HASH_UNIVERSAL_HASH_H_

#include <cstdint>
#include <vector>

#include "util/bits.h"
#include "util/rng.h"

namespace fsi {

/// One member of the multiply-shift 2-universal family with a d-bit range,
/// i.e. h : uint64 → [0, 2^d).
class UniversalHash {
 public:
  /// Constructs a hash function with `out_bits`-bit output, drawn from the
  /// family using `seed`.
  UniversalHash(int out_bits, std::uint64_t seed)
      : shift_(64 - out_bits),
        a_(SplitMix64(seed).Next() | 1),  // multiplier must be odd
        b_(SplitMix64(seed ^ 0x5851F42D4C957F2DULL).Next()) {}

  /// Number of output bits d.
  int out_bits() const { return 64 - shift_; }

  /// Evaluates the hash; result is in [0, 2^d).
  std::uint64_t operator()(std::uint64_t x) const {
    return (a_ * x + b_) >> shift_;
  }

 private:
  int shift_;
  std::uint64_t a_;
  std::uint64_t b_;
};

/// h : Σ → [w]: the word-position hash used to build single-word images of
/// small groups.  Output is a bit index in [0, 64).
class WordHash {
 public:
  explicit WordHash(std::uint64_t seed) : hash_(kLogWordBits, seed) {}

  /// Bit position for element x.
  int operator()(std::uint64_t x) const { return static_cast<int>(hash_(x)); }

  /// Word representation (single set bit) of h(x).
  Word Image(std::uint64_t x) const { return WordBit((*this)(x)); }

 private:
  UniversalHash hash_;
};

/// A family h_1, ..., h_m of independent WordHash functions (Algorithm 5
/// uses m of them to boost the empty-group filtering probability,
/// Lemma A.1/A.3).
class WordHashFamily {
 public:
  WordHashFamily(int m, std::uint64_t seed) {
    SplitMix64 sm(seed);
    hashes_.reserve(static_cast<std::size_t>(m));
    for (int j = 0; j < m; ++j) hashes_.emplace_back(sm.Next());
  }

  int size() const { return static_cast<int>(hashes_.size()); }

  const WordHash& operator[](int j) const {
    return hashes_[static_cast<std::size_t>(j)];
  }

  /// The m-word image vector [h_1(x), ..., h_m(x)] OR-ed into `images`.
  void AccumulateImages(std::uint64_t x, Word* images) const {
    for (std::size_t j = 0; j < hashes_.size(); ++j) {
      images[j] |= hashes_[j].Image(x);
    }
  }

 private:
  std::vector<WordHash> hashes_;
};

}  // namespace fsi

#endif  // FSI_HASH_UNIVERSAL_HASH_H_
