// A bijective pseudo-random permutation g : Σ → Σ.
//
// Section 3.2.1 of the paper chooses g as "a random permutation of Σ"; the
// experimental setup (Section 4) uses "a random permutation of the document
// IDs".  A permutation — rather than a mere hash — matters in three places:
//   1. the multi-resolution structure orders elements by g(x), so every
//      group L^z_i = {x : g_t(x) = z} is a *contiguous interval*;
//   2. HashBin binary-searches on g(x) inside a group (A.6.1), which needs
//      g to be injective;
//   3. the Lowbits compression (Appendix B) stores g(x) mod 2^(b-t) and
//      reconstructs g(x) exactly by prepending z = g_t(x), then inverts g.
//
// Materializing a random permutation of a 2^32 universe is infeasible
// (16 GiB), so we build a keyed 4-round Feistel network: a classic
// construction that yields a bijection on {0,1}^b for any even b, with
// pseudo-random behaviour far exceeding the 2-universality our proofs need.

#ifndef FSI_HASH_FEISTEL_H_
#define FSI_HASH_FEISTEL_H_

#include <cstdint>
#include <stdexcept>

#include "util/rng.h"

namespace fsi {

/// Keyed bijection over {0,1}^domain_bits (domain_bits even, in [2, 64]).
class FeistelPermutation {
 public:
  static constexpr int kRounds = 4;

  /// `domain_bits` must be even; the permutation acts on [0, 2^domain_bits).
  FeistelPermutation(int domain_bits, std::uint64_t seed)
      : domain_bits_(ValidatedDomainBits(domain_bits)),
        half_bits_(domain_bits / 2),
        half_mask_((domain_bits == 64 ? ~std::uint64_t{0}
                                      : (std::uint64_t{1} << domain_bits) - 1) >>
                   (domain_bits / 2)) {
    SplitMix64 sm(seed);
    for (auto& k : keys_) k = sm.Next();
  }

  int domain_bits() const { return domain_bits_; }

  /// Domain size 2^domain_bits (saturates at 2^64 - epsilon semantics: for
  /// domain_bits == 64 callers should treat the domain as all of uint64).
  std::uint64_t domain_size() const {
    return domain_bits_ == 64 ? 0 : std::uint64_t{1} << domain_bits_;
  }

  /// Forward permutation g(x).  Precondition: x < 2^domain_bits.
  std::uint64_t Apply(std::uint64_t x) const {
    std::uint64_t left = x >> half_bits_;
    std::uint64_t right = x & half_mask_;
    for (int r = 0; r < kRounds; ++r) {
      std::uint64_t next = left ^ Round(right, keys_[r]);
      left = right;
      right = next;
    }
    return (left << half_bits_) | right;
  }

  /// Inverse permutation g^{-1}(y).  Precondition: y < 2^domain_bits.
  std::uint64_t Invert(std::uint64_t y) const {
    std::uint64_t left = y >> half_bits_;
    std::uint64_t right = y & half_mask_;
    for (int r = kRounds - 1; r >= 0; --r) {
      std::uint64_t prev = right ^ Round(left, keys_[r]);
      right = left;
      left = prev;
    }
    return (left << half_bits_) | right;
  }

  /// g_t(x): the t most significant bits of g(x) — the group id of x in the
  /// resolution-t partition (Section 3.2).  t in [0, domain_bits].
  std::uint64_t Prefix(std::uint64_t x, int t) const {
    return t == 0 ? 0 : Apply(x) >> (domain_bits_ - t);
  }

 private:
  // Validation must run before the member initializers shift by
  // domain_bits — an out-of-range value would be UB there.
  static int ValidatedDomainBits(int domain_bits) {
    if (domain_bits < 2 || domain_bits > 64 || domain_bits % 2 != 0) {
      throw std::invalid_argument(
          "FeistelPermutation: domain_bits must be even and in [2, 64]");
    }
    return domain_bits;
  }

  /// Round function: any fixed function of (half, key) works for a Feistel
  /// bijection; we use one SplitMix-style mix truncated to the half width.
  std::uint64_t Round(std::uint64_t half, std::uint64_t key) const {
    return Mix64(half ^ key) & half_mask_;
  }

  int domain_bits_;
  int half_bits_;
  std::uint64_t half_mask_;
  std::uint64_t keys_[kRounds];
};

}  // namespace fsi

#endif  // FSI_HASH_FEISTEL_H_
