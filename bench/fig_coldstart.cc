// Cold-start: preparing an engine from raw lists vs mmap-loading a saved
// snapshot (docs/PERSISTENCE.md).
//
// "coldstart/prepare" is what a process restart costs without
// persistence: pre-process every list into its structure (the planner's
// startup calibration is disabled so the comparison isolates structure
// construction — with calibration the gap is larger still).
// "coldstart/load" is Engine::LoadSnapshot on the same image: validate
// the header, CRC the sections, alias the flat arrays straight out of
// the mapping.  CI gates the ratio at >= 10x (bench_summary.py,
// cold_start_speedup).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace {

using namespace fsi;
using namespace fsi::bench;

// Calibration-free planner spec: both sides build/load the same
// structures, and the prepare side is not billed for the one-off
// planner measurement.
constexpr const char kSpec[] = "Planner:calibration=off";

std::size_t NumLists() { return FullScale() ? 64 : 32; }
std::size_t ListSize() { return FullScale() ? 1 << 20 : 1 << 17; }

const std::vector<ElemList>& Lists() {
  static const std::vector<ElemList>* lists = [] {
    Xoshiro256 rng(0xC01D57A27ULL);
    auto* out = new std::vector<ElemList>;
    for (std::size_t i = 0; i < NumLists(); ++i) {
      out->push_back(SampleSortedSet(
          ListSize(), 8 * static_cast<std::uint64_t>(ListSize()), rng));
    }
    return out;
  }();
  return *lists;
}

std::string TmpSnapshotPath() {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/fsi_coldstart.snap";
}

const std::string& SnapshotPath() {
  static const std::string* path = [] {
    auto* p = new std::string(TmpSnapshotPath());
    Engine engine(kSpec);
    std::vector<PreparedSet> prepared;
    for (const ElemList& l : Lists()) prepared.push_back(engine.Prepare(l));
    engine.SaveSnapshot(*p, std::span<const PreparedSet>(prepared));
    return p;
  }();
  return *path;
}

void BM_Prepare(benchmark::State& state) {
  const auto& lists = Lists();
  std::size_t elements = 0;
  for (const auto& l : lists) elements += l.size();
  for (auto _ : state) {
    Engine engine(kSpec);
    std::vector<PreparedSet> prepared;
    prepared.reserve(lists.size());
    for (const ElemList& l : lists) prepared.push_back(engine.Prepare(l));
    benchmark::DoNotOptimize(prepared.data());
  }
  state.counters["sets"] = static_cast<double>(lists.size());
  state.counters["elements"] = static_cast<double>(elements);
}

void BM_Load(benchmark::State& state) {
  const std::string& path = SnapshotPath();
  std::size_t mapped = 0;
  for (auto _ : state) {
    LoadedSnapshot loaded = Engine::LoadSnapshot(path);
    mapped = loaded.info.mapped_bytes;
    benchmark::DoNotOptimize(loaded.sets.data());
  }
  state.counters["sets"] = static_cast<double>(Lists().size());
  state.counters["mapped_MiB"] = static_cast<double>(mapped) / (1 << 20);
}

void RegisterAll() {
  benchmark::RegisterBenchmark("coldstart/prepare", BM_Prepare)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(FullScale() ? 1 : 4);
  benchmark::RegisterBenchmark("coldstart/load", BM_Load)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(FullScale() ? 4 : 16);
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::remove(SnapshotPath().c_str());
  return 0;
}
