// Boolean query algebra: evaluation cost and memoization payoff across
// OR-width × tree depth × cache hit-rate (api/expr.h, docs/ALGEBRA.md).
//
// Each configuration builds one expression tree over fixed-seed posting
// lists — alternating OR (fan-out `width`) and AND levels down to
// `depth` — and evaluates it through Engine::Query(Expr) at a controlled
// ExprCache hit rate:
//   * hit:0   — the cache is cleared before every evaluation (cold);
//   * hit:50  — cleared before every second evaluation;
//   * hit:100 — warmed once, every timed evaluation is a root hit.
//
// scripts/bench_summary.py condenses the export into the
// ``query_algebra`` section of BENCH_pr.json, whose memoized speedup
// (hit:0 time over hit:100 time, best configuration) CI gates at >= 5x —
// the result cache must make hot subtree re-evaluation essentially free.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "api/expr.h"
#include "bench/bench_util.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace {

using namespace fsi;
using namespace fsi::bench;

/// One prepared configuration: the engine, its leaves, and the tree.
struct Ctx {
  Engine engine;
  std::vector<PreparedSet> sets;
  Expr expr;
};

/// Alternating OR/AND tree: OR at the root (and every even level) with
/// `width` children, AND pairs at odd levels, distinct leaves throughout
/// — wide unions of selective conjunctions, the filtered-search shape.
Expr BuildTree(const std::vector<PreparedSet>& sets, std::size_t width,
               std::size_t depth, std::size_t* next_leaf) {
  if (depth == 0) {
    const PreparedSet& leaf = sets[*next_leaf % sets.size()];
    ++*next_leaf;
    return Expr::Set(leaf);
  }
  const bool or_level = (depth % 2) == 0;
  const std::size_t fan = or_level ? width : 2;
  std::vector<Expr> children;
  children.reserve(fan);
  for (std::size_t i = 0; i < fan; ++i) {
    children.push_back(BuildTree(sets, width, depth - 1, next_leaf));
  }
  return or_level ? Expr::Or(std::move(children))
                  : Expr::And(std::move(children));
}

Ctx& GetCtx(std::size_t width, std::size_t depth) {
  static std::map<std::tuple<std::size_t, std::size_t>,
                  std::unique_ptr<Ctx>>
      cache;
  auto key = std::make_tuple(width, depth);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto ctx = std::make_unique<Ctx>();
    const std::size_t n = FullScale() ? 200000 : 20000;
    const std::uint64_t universe = FullScale() ? (1ull << 26) : (1ull << 22);
    Xoshiro256 rng(17);
    for (int i = 0; i < 24; ++i) {
      ctx->sets.push_back(
          ctx->engine.Prepare(SampleSortedSet(n, universe, rng)));
    }
    std::size_t next_leaf = 0;
    ctx->expr = BuildTree(ctx->sets, width, depth, &next_leaf);
    it = cache.emplace(key, std::move(ctx)).first;
  }
  return *it->second;
}

void BM_Algebra(benchmark::State& state, std::size_t width, std::size_t depth,
                int hit_pct) {
  Ctx& ctx = GetCtx(width, depth);
  ElemList out;
  fsi::Query query = ctx.engine.Query(ctx.expr);
  if (hit_pct == 100) query.ExecuteInto(&out);  // warm every entry
  std::size_t evals = 0;
  for (auto _ : state) {
    if (hit_pct == 0 || (hit_pct == 50 && evals % 2 == 0)) {
      state.PauseTiming();
      ctx.engine.expr_cache()->Clear();
      state.ResumeTiming();
    }
    query.ExecuteInto(&out);
    benchmark::DoNotOptimize(out.data());
    ++evals;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(evals));
  state.counters["width"] = static_cast<double>(width);
  state.counters["depth"] = static_cast<double>(depth);
  state.counters["hit_pct"] = static_cast<double>(hit_pct);
  state.counters["result_size"] = static_cast<double>(out.size());
  state.counters["num_leaves"] = static_cast<double>(ctx.expr.num_leaves());
}

void RegisterAll() {
  const std::vector<std::size_t> widths = {2, 4, 8};
  const std::vector<std::size_t> depths = {2, 3, 4};
  const std::vector<int> hit_rates = {0, 50, 100};
  for (std::size_t width : widths) {
    for (std::size_t depth : depths) {
      for (int hit : hit_rates) {
        const std::string name =
            "algebra/width:" + std::to_string(width) +
            "/depth:" + std::to_string(depth) + "/hit:" + std::to_string(hit);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [width, depth, hit](benchmark::State& state) {
              BM_Algebra(state, width, depth, hit);
            })
            ->Unit(benchmark::kMicrosecond);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
