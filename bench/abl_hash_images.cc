// Ablation (Section 3.3 / Theorem 3.9): RanGroupScan's m trade-off.
//
// More hash images filter more empty group combinations (the
// max(n, k n_k)/alpha(w)^m term shrinks) but cost more memory and more AND
// work per combination (the m n/sqrt(w) term grows).  The paper settles on
// m = 4 for 2-set and m = 2 for multi-set queries; this sweep reproduces
// the curve behind that choice, for k = 2 and k = 4.

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "core/ran_group_scan.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace {

using namespace fsi;
using namespace fsi::bench;

const std::vector<ElemList>& Workload(std::size_t k) {
  static std::map<std::size_t, std::vector<ElemList>> cache;
  auto it = cache.find(k);
  if (it == cache.end()) {
    std::size_t n = FullScale() ? 4000000 : (1 << 18);
    Xoshiro256 rng(0xAB800 + k);
    std::vector<std::size_t> sizes(k, n);
    it = cache.emplace(k, GenerateIntersectingSets(
                              sizes, n / 100,
                              20 * static_cast<std::uint64_t>(n) * k, rng))
             .first;
  }
  return it->second;
}

void RegisterAll() {
  for (std::size_t k : {2u, 4u}) {
    for (int m : {1, 2, 3, 4, 6, 8}) {
      std::string label = "abl_hash_images/k:" + std::to_string(k) +
                          "/m:" + std::to_string(m);
      benchmark::RegisterBenchmark(
          label.c_str(),
          [k, m](benchmark::State& st) {
            RanGroupScanIntersection::Options o;
            o.m = m;
            RanGroupScanIntersection alg(o);
            const auto& lists = Workload(k);
            std::vector<std::unique_ptr<PreprocessedSet>> owned;
            std::vector<const PreprocessedSet*> views;
            for (const auto& l : lists) {
              owned.push_back(alg.Preprocess(l));
              views.push_back(owned.back().get());
            }
            ElemList out;
            for (auto _ : st) {
              out.clear();
              alg.Intersect(views, &out);
              benchmark::DoNotOptimize(out.data());
            }
            st.counters["result_size"] = static_cast<double>(out.size());
            double words = 0;
            for (const auto& s : owned) {
              words += static_cast<double>(s->SizeInWords());
            }
            st.counters["struct_MiB"] = words * 8.0 / (1 << 20);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(FullScale() ? 2 : 16);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
