// Shared driver for the simulated real-data experiments (Figures 7 and 12,
// and the compressed real-data table).
//
// Builds the synthetic Bing/Wikipedia stand-in (DESIGN.md §3), pre-processes
// every queried posting list under each algorithm, runs the whole query
// workload, and reports per-algorithm mean times normalized to Merge —
// exactly the presentation of Figure 7.

#ifndef FSI_BENCH_REAL_WORKLOAD_H_
#define FSI_BENCH_REAL_WORKLOAD_H_

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "util/stats.h"
#include "util/timer.h"
#include "workload/corpus.h"

namespace fsi::bench {

struct RealWorkloadResult {
  // Mean per-query milliseconds, overall and by keyword count (2..5).
  double mean_ms = 0;
  std::map<std::size_t, double> mean_ms_by_k;
  double worst_ms = 0;
  double best_share = 0;  // fraction of queries where this algorithm won
};

class RealWorkloadDriver {
 public:
  RealWorkloadDriver() {
    // The corpus must be large enough that posting lists outgrow the CPU
    // caches — the regime of the paper's 8M-page Wikipedia corpus, and the
    // regime where Hash's random probes and SkipList's pointer chasing
    // fall behind (Section 4).
    SyntheticCorpus::Options co;
    co.num_docs = FullScale() ? (8u << 20) : (1u << 20);
    co.vocabulary = FullScale() ? 50000 : 10000;
    corpus_ = std::make_unique<SyntheticCorpus>(co);
    QueryWorkload::Options qo;
    qo.num_queries = FullScale() ? 10000 : 1000;
    workload_ = std::make_unique<QueryWorkload>(*corpus_, qo);
  }

  const SyntheticCorpus& corpus() const { return *corpus_; }
  const QueryWorkload& workload() const { return *workload_; }

  void PrintWorkloadStats() const {
    auto st = workload_->ComputeStats(*corpus_);
    std::printf(
        "workload stats (paper targets in parentheses):\n"
        "  2-kw %.2f (0.68)  3-kw %.2f (0.23)  4-kw %.2f (0.06)  5-kw %.2f "
        "(0.03)\n"
        "  mean |L1|/|L2| %.2f (~0.21-0.36)  mean |L1|/|Lk| %.2f "
        "(~0.06-0.09)\n"
        "  mean r/|L1| %.2f (0.19)\n\n",
        st.frac2, st.frac3, st.frac4, st.frac5, st.mean_ratio_12,
        st.mean_ratio_1k, st.mean_selectivity);
  }

  /// Runs the full workload under each algorithm; fills per-query times.
  std::map<std::string, RealWorkloadResult> Run(
      const std::vector<std::string>& algorithms) const {
    // Per-query times per algorithm, for the win-share computation.
    std::map<std::string, std::vector<double>> times;
    for (const std::string& name : algorithms) {
      std::fprintf(stderr, "  preprocessing + running %s...\n", name.c_str());
      auto alg = CreateAlgorithm(name);
      // Pre-process each distinct queried term once.
      std::map<std::size_t, std::unique_ptr<PreprocessedSet>> structures;
      for (const TermQuery& q : workload_->queries()) {
        for (std::size_t term : q) {
          if (!structures.count(term)) {
            structures[term] = alg->Preprocess(corpus_->postings(term));
          }
        }
      }
      std::vector<double>& per_query = times[name];
      per_query.reserve(workload_->queries().size());
      ElemList out;
      for (const TermQuery& q : workload_->queries()) {
        std::vector<const PreprocessedSet*> sets;
        for (std::size_t term : q) sets.push_back(structures[term].get());
        Timer timer;
        out.clear();
        alg->Intersect(sets, &out);
        per_query.push_back(timer.ElapsedMillis());
      }
    }
    // Aggregate.
    std::map<std::string, RealWorkloadResult> results;
    std::size_t nq = workload_->queries().size();
    for (const std::string& name : algorithms) {
      RealWorkloadResult& r = results[name];
      const auto& pq = times[name];
      std::map<std::size_t, SampleStats> by_k;
      SampleStats all;
      for (std::size_t i = 0; i < nq; ++i) {
        all.Add(pq[i]);
        by_k[workload_->queries()[i].size()].Add(pq[i]);
      }
      r.mean_ms = all.Mean();
      r.worst_ms = all.Max();
      for (auto& [k, st] : by_k) r.mean_ms_by_k[k] = st.Mean();
      std::size_t wins = 0;
      for (std::size_t i = 0; i < nq; ++i) {
        bool best = true;
        for (const std::string& other : algorithms) {
          if (times[other][i] < pq[i]) {
            best = false;
            break;
          }
        }
        wins += best;
      }
      r.best_share = static_cast<double>(wins) / static_cast<double>(nq);
    }
    return results;
  }

 private:
  std::unique_ptr<SyntheticCorpus> corpus_;
  std::unique_ptr<QueryWorkload> workload_;
};

}  // namespace fsi::bench

#endif  // FSI_BENCH_REAL_WORKLOAD_H_
