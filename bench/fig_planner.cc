// Planner evaluation on the real workload: fsi::PlannerAlgorithm vs every
// static algorithm choice, on the Figure-7 simulated Bing/Wikipedia
// query log.
//
// The paper's point (Figure 7) is that no static choice wins everywhere;
// the planner's job is to track the per-query winner from its cost model
// alone.  This harness reports:
//   * the fig07-style mean-time table with the planner as one more row;
//   * planner_vs_best_static / planner_vs_worst_static — the planner's
//     mean time over the best (worst) static algorithm's mean, overall
//     and per query class (k = 2..5 keywords);
//   * predicted_within_2x — the fraction of queries whose cost-model
//     prediction (QueryStats::predicted_micros) lands within 2x of the
//     measured wall time.
//
// The trailing key-value lines are parsed by scripts/bench_summary.py into
// the planner_vs_best_static section of BENCH_pr.json; CI fails the
// bench-smoke job when the planner is more than 15% worse than the best
// static choice.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/real_workload.h"

int main() {
  using namespace fsi;
  using namespace fsi::bench;
  RealWorkloadDriver driver;
  driver.PrintWorkloadStats();

  const std::vector<std::string> statics = {"Merge", "SvS", "RanGroupScan",
                                            "HashBin", "Hybrid"};
  std::vector<std::string> algorithms = statics;
  algorithms.push_back("Planner");
  auto results = driver.Run(algorithms);

  std::printf("fig_planner: planner vs static choice, %zu queries\n",
              driver.workload().queries().size());
  std::printf("%-16s %12s %12s %10s\n", "algorithm", "mean_ms", "worst_ms",
              "win_share");
  for (const auto& name : algorithms) {
    const auto& r = results[name];
    std::printf("%-16s %12.4f %12.4f %9.1f%%\n", name.c_str(), r.mean_ms,
                r.worst_ms, r.best_share * 100.0);
  }

  // Best/worst static mean, overall and per keyword count.
  double best_mean = 1e300, worst_mean = 0.0;
  for (const auto& name : statics) {
    best_mean = std::min(best_mean, results[name].mean_ms);
    worst_mean = std::max(worst_mean, results[name].mean_ms);
  }
  const double planner_mean = results["Planner"].mean_ms;
  std::printf("\nplanner_vs_best_static %.3f\n", planner_mean / best_mean);
  std::printf("planner_vs_worst_static %.3f\n", planner_mean / worst_mean);
  for (const auto& [k, planner_k] : results["Planner"].mean_ms_by_k) {
    double best_k = 1e300;
    for (const auto& name : statics) {
      const auto& by_k = results[name].mean_ms_by_k;
      auto it = by_k.find(k);
      if (it != by_k.end()) best_k = std::min(best_k, it->second);
    }
    std::printf("planner_vs_best_k%zu %.3f\n", k, planner_k / best_k);
  }

  // Prediction accuracy: run the query log through the Engine API (which
  // fills QueryStats::predicted_micros from the calibrated cost model) and
  // compare prediction to the best-of-3 measured wall time per query.
  Engine engine;  // the zero-config planner path
  std::map<std::size_t, PreparedSet> prepared;
  for (const TermQuery& q : driver.workload().queries()) {
    for (std::size_t term : q) {
      if (!prepared.count(term)) {
        prepared.emplace(term, engine.Prepare(driver.corpus().postings(term)));
      }
    }
  }
  std::size_t within = 0;
  std::size_t total = 0;
  ElemList out;
  for (const TermQuery& q : driver.workload().queries()) {
    std::vector<const PreparedSet*> sets;
    for (std::size_t term : q) sets.push_back(&prepared.at(term));
    fsi::Query query = engine.Query(sets);
    double wall = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      wall = std::min(wall, query.ExecuteInto(&out).wall_micros);
    }
    const double predicted = query.stats().predicted_micros;
    const double ratio = predicted > wall ? predicted / wall : wall / predicted;
    within += (predicted > 0.0 && ratio <= 2.0);
    ++total;
  }
  std::printf("predicted_within_2x %.3f\n",
              static_cast<double>(within) / static_cast<double>(total));
  return 0;
}
