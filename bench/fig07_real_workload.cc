// Figure 7: "Normalized Execution Time on a Real Workload".
//
// Simulated Bing-queries-over-Wikipedia workload (DESIGN.md §3).  The paper
// normalizes mean per-query time to Merge = 1 and reports:
//   * RanGroupScan best overall (won 61.6% of queries), RanGroup (16%),
//     HashBin (7.7%) — HashBin beats Merge even outside its design regime;
//   * among competitors, Lookup best in 6.4% and SvS in 3.6% of queries;
//     SvS outperforms Merge and Lookup on this workload.

#include <algorithm>
#include <cstdio>

#include "bench/real_workload.h"

int main() {
  using namespace fsi::bench;
  RealWorkloadDriver driver;
  driver.PrintWorkloadStats();
  std::vector<std::string> algorithms = {
      "Merge",   "SkipList",      "Hash",    "Lookup",      "SvS",
      "Adaptive", "BaezaYates",   "SmallAdaptive", "HashBin",
      "RanGroup", "RanGroupScan", "Hybrid"};
  auto results = driver.Run(algorithms);
  double merge_mean = results["Merge"].mean_ms;
  std::printf("fig07: normalized mean query time (Merge = 1.0), %zu queries\n",
              driver.workload().queries().size());
  std::printf("%-16s %12s %12s %10s\n", "algorithm", "normalized",
              "mean_ms", "win_share");
  for (const auto& name : algorithms) {
    const auto& r = results[name];
    std::printf("%-16s %12.3f %12.4f %9.1f%%\n", name.c_str(),
                r.mean_ms / merge_mean, r.mean_ms, r.best_share * 100.0);
  }
  return 0;
}
