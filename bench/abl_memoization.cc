// Ablation (A.5.3): partial-AND memoization and prefix skipping in
// Algorithm 5.
//
// The O(mn/sqrt(w)) filtering term of Theorem 3.9 depends on reusing
// partial image ANDs across group ids that share prefixes, and on skipping
// every z_k under a prefix once some h_j AND is zero.  With the
// optimizations disabled, each of the n_k/sqrt(w) iterations recomputes
// k*m ANDs and advances one step at a time.  The gap widens with k and
// with size skew (more groups share each coarse prefix).

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/ran_group_scan.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace {

using namespace fsi;
using namespace fsi::bench;

const std::vector<ElemList>& Workload(int shape) {
  static std::map<int, std::vector<ElemList>> cache;
  auto it = cache.find(shape);
  if (it == cache.end()) {
    std::size_t n = FullScale() ? 2000000 : (1 << 17);
    Xoshiro256 rng(0xAB900 + shape);
    std::vector<std::size_t> sizes;
    switch (shape) {
      case 0:  // balanced pair
        sizes = {n, n};
        break;
      case 1:  // skewed pair (prefix sharing matters)
        sizes = {n / 64, n};
        break;
      default:  // four sets
        sizes = {n / 8, n / 4, n / 2, n};
        break;
    }
    it = cache.emplace(shape, GenerateIntersectingSets(
                                  sizes, sizes[0] / 100 + 1,
                                  20 * static_cast<std::uint64_t>(n), rng))
             .first;
  }
  return it->second;
}

void RegisterAll() {
  const char* shape_names[] = {"balanced2", "skewed2", "four_sets"};
  for (int shape : {0, 1, 2}) {
    for (bool memoize : {true, false}) {
      std::string label = std::string("abl_memoization/") +
                          shape_names[shape] +
                          (memoize ? "/memoized" : "/naive");
      benchmark::RegisterBenchmark(
          label.c_str(),
          [shape, memoize](benchmark::State& st) {
            RanGroupScanIntersection::Options o;
            o.memoize = memoize;
            RanGroupScanIntersection alg(o);
            const auto& lists = Workload(shape);
            std::vector<std::unique_ptr<PreprocessedSet>> owned;
            std::vector<const PreprocessedSet*> views;
            for (const auto& l : lists) {
              owned.push_back(alg.Preprocess(l));
              views.push_back(owned.back().get());
            }
            ElemList out;
            for (auto _ : st) {
              out.clear();
              alg.Intersect(views, &out);
              benchmark::DoNotOptimize(out.data());
            }
            st.counters["result_size"] = static_cast<double>(out.size());
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(FullScale() ? 2 : 8);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
