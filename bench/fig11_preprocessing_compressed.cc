// Figure 11 (Appendix C.1): "Preprocessing Overhead (with compression)".
//
// Construction time of the compressed structures vs sorting.  The paper
// finds the Lowbits scheme significantly cheaper to build than the γ/δ
// alternatives (fixed-width fields vs per-value variable-length coding).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace {

using namespace fsi;
using namespace fsi::bench;

const ElemList& SortedSet(std::size_t n) {
  static std::map<std::size_t, ElemList> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    Xoshiro256 rng(0xF161100 + n);
    it = cache.emplace(n, SampleSortedSet(n, 8 * static_cast<std::uint64_t>(n), rng))
             .first;
  }
  return it->second;
}

void RegisterAll() {
  std::vector<std::int64_t> sizes;
  if (FullScale()) {
    sizes = {65536, 262144, 1048576, 4194304, 8388608};
  } else {
    sizes = {1 << 14, 1 << 16, 1 << 18};
  }
  benchmark::RegisterBenchmark(
      "fig11/Sorting",
      [](benchmark::State& st) {
        std::size_t n = static_cast<std::size_t>(st.range(0));
        ElemList shuffled = SortedSet(n);
        Xoshiro256 rng(9);
        for (std::size_t i = shuffled.size(); i > 1; --i) {
          std::swap(shuffled[i - 1], shuffled[rng.Below(i)]);
        }
        for (auto _ : st) {
          ElemList copy = shuffled;
          std::sort(copy.begin(), copy.end());
          benchmark::DoNotOptimize(copy.data());
        }
      })
      ->ArgsProduct({{sizes}})
      ->Unit(benchmark::kMillisecond)
      ->Iterations(FullScale() ? 1 : 4);

  // Construction is encode-bound (serial BitWriter), so the decode-tier
  // option must not move these numbers; the ":simd=off" Lowbits row is
  // the control demonstrating that.
  const std::vector<std::string> algorithms = {
      "RanGroupScan_Lowbits", "RanGroupScan_Lowbits:simd=off",
      "RanGroupScan_Gamma",   "RanGroupScan_Delta",
      "Merge_Gamma",          "Merge_Delta",
      "Lookup_Delta"};
  for (const auto& alg : algorithms) {
    for (auto n : sizes) {
      std::string label = "fig11/" + alg + "/n:" + std::to_string(n);
      benchmark::RegisterBenchmark(
          label.c_str(),
          [alg, n](benchmark::State& st) {
            const ElemList& set = SortedSet(static_cast<std::size_t>(n));
            auto algorithm = CreateAlgorithm(alg);
            for (auto _ : st) {
              auto pre = algorithm->Preprocess(set);
              benchmark::DoNotOptimize(pre.get());
            }
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(FullScale() ? 1 : 4);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
