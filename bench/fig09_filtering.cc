// Figure 9 (Appendix A.5.2): "Filtering Performance in Experiments".
//
// P("successful filtering") — the probability that a pair of small groups
// with an *empty* intersection is detected as empty by the m word images —
// measured for m in {1, 2, 4, 6, 8} on (a) the synthetic Figure-4 workload
// (r = 1% of n) and (b) the simulated real workload's posting lists.
// The paper finds both curves similar (real slightly better) and far above
// the theoretical bounds of Lemmas A.1/A.3 (~0.34 for m = 1, w = 64).
//
// Not a timing experiment — prints a plain table.

#include <cstdio>
#include <vector>

#include "core/ran_group_scan.h"
#include "util/rng.h"
#include "workload/corpus.h"
#include "workload/synthetic.h"

namespace {

using namespace fsi;

/// Measures the successful-filtering probability for two preprocessed sets
/// under one RanGroupScan instance: walk aligned group pairs; among pairs
/// whose true window intersection is empty, count those whose image AND is
/// zero for at least one of the m hashes.
struct FilterCounts {
  std::size_t empty_pairs = 0;
  std::size_t filtered = 0;
};

FilterCounts MeasurePair(const RanGroupScanIntersection& alg,
                         const ElemList& l1, const ElemList& l2) {
  FilterCounts counts;
  auto p1 = alg.Preprocess(l1);
  auto p2 = alg.Preprocess(l2);
  const auto& a = fsi::As<ScanSet>(*p1);
  const auto& b = fsi::As<ScanSet>(*p2);
  const ScanSet& fine = a.t() >= b.t() ? a : b;
  const ScanSet& coarse = a.t() >= b.t() ? b : a;
  int tf = fine.t();
  int tc = coarse.t();
  int m = fine.m();
  for (std::uint64_t zf = 0; zf < fine.num_groups(); ++zf) {
    std::uint64_t zc = zf >> (tf - tc);
    auto [flo, fhi] = fine.GroupRange(zf);
    auto [clo, chi] = coarse.GroupRange(zc);
    if (flo == fhi || clo == chi) continue;  // skip trivially empty groups
    // True emptiness of the window intersection (merge on g-values).
    bool empty = true;
    std::uint32_t i = flo;
    std::uint32_t j = clo;
    while (i < fhi && j < chi) {
      if (fine.gvals()[i] == coarse.gvals()[j]) {
        empty = false;
        break;
      }
      if (fine.gvals()[i] < coarse.gvals()[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    if (!empty) continue;
    ++counts.empty_pairs;
    for (int h = 0; h < m; ++h) {
      if ((fine.Image(zf, h) & coarse.Image(zc, h)) == 0) {
        ++counts.filtered;
        break;
      }
    }
  }
  return counts;
}

}  // namespace

int main() {
  std::printf("fig09: P(successful filtering) vs m  (Lemma A.1 bound for "
              "m=1: 0.3436)\n");
  std::printf("%4s %18s %18s\n", "m", "synthetic", "real(simulated)");

  // Synthetic: Figure-4 style pair.
  Xoshiro256 rng(0xF160900);
  auto synth = GenerateIntersectingSets({1 << 17, 1 << 17}, (1 << 17) / 100,
                                        1 << 20, rng);
  // Simulated real: two mid-frequency posting lists of the corpus.
  SyntheticCorpus::Options co;
  co.num_docs = 1 << 18;
  co.vocabulary = 4000;
  SyntheticCorpus corpus(co);
  const ElemList& real1 = corpus.postings(40);
  const ElemList& real2 = corpus.postings(55);

  for (int m : {1, 2, 4, 6, 8}) {
    RanGroupScanIntersection::Options o;
    o.m = m;
    RanGroupScanIntersection alg(o);
    FilterCounts s = MeasurePair(alg, synth[0], synth[1]);
    FilterCounts r = MeasurePair(alg, real1, real2);
    double ps = s.empty_pairs
                    ? static_cast<double>(s.filtered) /
                          static_cast<double>(s.empty_pairs)
                    : 0.0;
    double pr = r.empty_pairs
                    ? static_cast<double>(r.filtered) /
                          static_cast<double>(r.empty_pairs)
                    : 0.0;
    std::printf("%4d %12.3f (%6zu) %12.3f (%6zu)\n", m, ps, s.empty_pairs, pr,
                r.empty_pairs);
  }
  return 0;
}
