// Shared helpers for the per-figure benchmark binaries.
//
// Every bench binary regenerates one table or figure of the paper's
// evaluation (see DESIGN.md §2).  Defaults are scaled down so the whole
// suite runs in minutes on one core; set FSI_BENCH_FULL=1 to run at paper
// scale (10M-element sets, 10^4-query workloads).

#ifndef FSI_BENCH_BENCH_UTIL_H_
#define FSI_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "api/registry.h"
#include "core/algorithm.h"
#include "core/intersector.h"  // raw CreateAlgorithm for preprocessing benches

namespace fsi::bench {

/// True when FSI_BENCH_FULL=1: paper-scale workloads.
inline bool FullScale() {
  const char* env = std::getenv("FSI_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

/// A query ready to run: the engine, its owning prepared-set handles, and
/// a prebuilt reusable Query (constructed once so the timed loop measures
/// only the intersection, exactly like the paper's harness).
struct PreparedQuery {
  Engine engine;
  std::vector<PreparedSet> sets;
  mutable fsi::Query query;

  /// Computes the result *set* (order unspecified) — what the paper times;
  /// see IntersectionAlgorithm::IntersectUnordered.
  void Run(ElemList* out) const { query.ExecuteInto(out); }

  std::size_t StructureWords() const {
    std::size_t words = 0;
    for (const PreparedSet& s : sets) words += s.SizeInWords();
    return words;
  }
};

/// Builds a PreparedQuery for the registry spec `spec` (a name, optionally
/// with options: "RanGroupScan:m=2") over `lists`.
inline PreparedQuery Prepare(std::string_view spec,
                             const std::vector<ElemList>& lists,
                             std::uint64_t seed = kDefaultAlgorithmSeed) {
  Engine engine(spec, {.seed = seed});
  std::vector<PreparedSet> sets;
  sets.reserve(lists.size());
  for (const ElemList& l : lists) sets.push_back(engine.Prepare(l));
  fsi::Query query = engine.Query(sets);
  query.Unordered();
  return PreparedQuery{std::move(engine), std::move(sets), std::move(query)};
}

/// google-benchmark body: repeatedly runs the prepared query.  Reports the
/// result size as a counter so series can be sanity-checked against the
/// workload definition.
inline void RunPrepared(benchmark::State& state, const PreparedQuery& query) {
  ElemList out;
  for (auto _ : state) {
    query.Run(&out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["result_size"] =
      static_cast<double>(out.size());
  state.counters["struct_MiB"] =
      static_cast<double>(query.StructureWords()) * 8.0 / (1 << 20);
}

}  // namespace fsi::bench

#endif  // FSI_BENCH_BENCH_UTIL_H_
