// Shared helpers for the per-figure benchmark binaries.
//
// Every bench binary regenerates one table or figure of the paper's
// evaluation (see DESIGN.md §2).  Defaults are scaled down so the whole
// suite runs in minutes on one core; set FSI_BENCH_FULL=1 to run at paper
// scale (10M-element sets, 10^4-query workloads).

#ifndef FSI_BENCH_BENCH_UTIL_H_
#define FSI_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithm.h"
#include "core/intersector.h"

namespace fsi::bench {

/// True when FSI_BENCH_FULL=1: paper-scale workloads.
inline bool FullScale() {
  const char* env = std::getenv("FSI_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

/// A query ready to run: the algorithm, its preprocessed sets, and views.
struct PreparedQuery {
  std::unique_ptr<IntersectionAlgorithm> algorithm;
  std::vector<std::unique_ptr<PreprocessedSet>> owned;
  std::vector<const PreprocessedSet*> views;

  /// Computes the result *set* (order unspecified) — what the paper times;
  /// see IntersectionAlgorithm::IntersectUnordered.
  void Run(ElemList* out) const {
    out->clear();
    algorithm->IntersectUnordered(views, out);
  }

  std::size_t StructureWords() const {
    std::size_t words = 0;
    for (const auto& s : owned) words += s->SizeInWords();
    return words;
  }
};

/// Builds a PreparedQuery for `name` over `lists`.
inline PreparedQuery Prepare(std::string_view name,
                             const std::vector<ElemList>& lists,
                             std::uint64_t seed = 0x6a09e667f3bcc908ULL) {
  PreparedQuery q;
  q.algorithm = CreateAlgorithm(name, seed);
  for (const ElemList& l : lists) {
    q.owned.push_back(q.algorithm->Preprocess(l));
    q.views.push_back(q.owned.back().get());
  }
  return q;
}

/// google-benchmark body: repeatedly runs the prepared query.  Reports the
/// result size as a counter so series can be sanity-checked against the
/// workload definition.
inline void RunPrepared(benchmark::State& state, const PreparedQuery& query) {
  ElemList out;
  for (auto _ : state) {
    query.Run(&out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["result_size"] =
      static_cast<double>(out.size());
  state.counters["struct_MiB"] =
      static_cast<double>(query.StructureWords()) * 8.0 / (1 << 20);
}

}  // namespace fsi::bench

#endif  // FSI_BENCH_BENCH_UTIL_H_
