// Section 4.1's real-data compressed experiment (reported in text).
//
// Runs the compressed variants over the simulated real workload and
// reports: speedup of RanGroupScan_Lowbits vs each baseline (paper: 8.4x
// vs Merge+δ, 9.1x vs Merge+γ, 5.7x vs Lookup+δ, 6.2x vs Lookup+γ),
// space relative to uncompressed postings (paper: Lowbits 66%, Merge
// 26-28%, Lookup 35-37%), and worst-case single-query latency ratios
// (paper: Merge+δ worst case 5.2x the Lowbits worst case, etc.).

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/real_workload.h"

int main() {
  using namespace fsi;
  using namespace fsi::bench;
  RealWorkloadDriver driver;
  driver.PrintWorkloadStats();
  std::vector<std::string> algorithms = {
      "RanGroupScan_Lowbits", "RanGroupScan_Delta", "Merge_Delta",
      "Merge_Gamma",          "Lookup_Delta",       "Lookup_Gamma",
      "Merge"};
  auto results = driver.Run(algorithms);

  // Space: preprocess all queried posting lists once per structure.
  std::map<std::string, double> space_words;
  for (const auto& name : algorithms) {
    auto alg = CreateAlgorithm(name);
    double words = 0;
    std::map<std::size_t, bool> seen;
    for (const TermQuery& q : driver.workload().queries()) {
      for (std::size_t term : q) {
        if (!seen[term]) {
          seen[term] = true;
          words += static_cast<double>(
              alg->Preprocess(driver.corpus().postings(term))->SizeInWords());
        }
      }
    }
    space_words[name] = words;
  }

  const auto& lowbits = results["RanGroupScan_Lowbits"];
  std::printf("tab_compressed_real: RanGroupScan_Lowbits vs baselines\n");
  std::printf("%-22s %10s %12s %12s %14s\n", "algorithm", "mean_ms",
              "speedup_LB", "worst_ms", "space_vs_plain");
  for (const auto& name : algorithms) {
    const auto& r = results[name];
    std::printf("%-22s %10.4f %11.1fx %12.4f %13.0f%%\n", name.c_str(),
                r.mean_ms, r.mean_ms / lowbits.mean_ms, r.worst_ms,
                100.0 * space_words[name] / space_words["Merge"]);
  }
  std::printf("\nworst-case latency ratio vs Lowbits (paper: Merge+delta "
              "5.2x, Merge+gamma 5.6x, Lookup+delta 4.4x, Lookup+gamma "
              "4.9x):\n");
  for (const auto& name :
       {"Merge_Delta", "Merge_Gamma", "Lookup_Delta", "Lookup_Gamma"}) {
    std::printf("  %-14s %5.1fx\n", name,
                results[name].worst_ms / lowbits.worst_ms);
  }
  return 0;
}
