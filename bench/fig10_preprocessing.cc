// Figure 10 (Appendix C.1): "Preprocessing Overhead" (uncompressed).
//
// Construction time of each structure vs set size, against an in-memory
// quicksort baseline (all structures require sorted input, so sorting is
// the natural yardstick).  The paper finds the additional construction
// overhead to be a small multiple of the sorting cost.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace {

using namespace fsi;
using namespace fsi::bench;

const ElemList& SortedSet(std::size_t n) {
  static std::map<std::size_t, ElemList> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    Xoshiro256 rng(0xF161000 + n);
    it = cache.emplace(n, SampleSortedSet(n, 20 * static_cast<std::uint64_t>(n), rng))
             .first;
  }
  return it->second;
}

void BM_Sorting(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  const ElemList& sorted = SortedSet(n);
  // Shuffle a copy once; each iteration sorts a fresh copy.
  ElemList shuffled = sorted;
  Xoshiro256 rng(7);
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.Below(i)]);
  }
  for (auto _ : state) {
    ElemList copy = shuffled;
    std::sort(copy.begin(), copy.end());
    benchmark::DoNotOptimize(copy.data());
  }
}

void RegisterAll() {
  std::vector<std::int64_t> sizes;
  if (FullScale()) {
    sizes = {1000000, 2000000, 4000000, 8000000, 10000000};
  } else {
    sizes = {1 << 15, 1 << 17, 1 << 19};
  }
  for (auto n : sizes) {
    benchmark::RegisterBenchmark("fig10/Sorting", BM_Sorting)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(FullScale() ? 1 : 4);
  }
  const std::vector<std::string> algorithms = {
      "HashBin", "IntGroup", "RanGroup", "RanGroupScan", "Merge", "Lookup",
      "SkipList", "Hash"};
  for (const auto& alg : algorithms) {
    for (auto n : sizes) {
      std::string label = "fig10/" + alg + "/n:" + std::to_string(n);
      benchmark::RegisterBenchmark(
          label.c_str(),
          [alg, n](benchmark::State& st) {
            const ElemList& set = SortedSet(static_cast<std::size_t>(n));
            auto algorithm = CreateAlgorithm(alg);
            for (auto _ : st) {
              auto pre = algorithm->Preprocess(set);
              benchmark::DoNotOptimize(pre.get());
            }
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(FullScale() ? 1 : 4);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
