// Figure 8: "Running Time and Space Requirement" for compressed structures
// (Section 4.1).
//
// Two equal-size sets (128K..8M postings in the paper; scaled by default),
// r = 1% of n.  Series: Merge_Delta, Lookup_Delta, RanGroupScan_Delta and
// RanGroupScan_Lowbits (all with m = 1, per the paper).  Findings:
//   * RanGroupScan beats the compressed baselines at equal codec, because
//     their decompression dominates;
//   * the Lowbits codec improves on RanGroupScan_Delta significantly
//     (filtered groups are skipped in O(1) instead of decoded);
//   * space: RanGroupScan_Lowbits is 1.3-1.9x the compressed inverted index
//     and 1.2-1.6x the compressed Lookup structure — the struct_MiB counter
//     reports the measured sizes.
//   * γ-coding results are indistinguishable from δ (the binaries include
//     both; the paper omitted γ from the plot for this reason).

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace {

using namespace fsi;
using namespace fsi::bench;

const std::vector<ElemList>& Workload(std::size_t n) {
  static std::map<std::size_t, std::vector<ElemList>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    Xoshiro256 rng(0xF160800 + n);
    // The paper's compressed experiments emulate postings: dense doc-id
    // space (gaps are small, so compression bites).
    std::uint64_t universe = 8 * static_cast<std::uint64_t>(n);
    it = cache.emplace(n,
                       GenerateIntersectingSets({n, n}, n / 100, universe, rng))
             .first;
  }
  return it->second;
}

void RegisterAll() {
  std::vector<std::size_t> sizes;
  if (FullScale()) {
    sizes = {131072, 262144, 524288, 1048576, 2097152, 4194304, 8388608};
  } else {
    sizes = {1 << 14, 1 << 15, 1 << 16, 1 << 17, 1 << 18};
  }
  const std::vector<std::string> algorithms = {
      "Merge_Delta",          "Merge_Gamma",       "Lookup_Delta",
      "Lookup_Gamma",         "RanGroupScan_Delta", "RanGroupScan_Gamma",
      "RanGroupScan_Lowbits", "Merge"};
  for (const auto& alg : algorithms) {
    for (std::size_t n : sizes) {
      std::string label = "fig08/" + alg + "/n:" + std::to_string(n);
      long iterations = std::max<long>(1, static_cast<long>((1 << 20) / n));
      benchmark::RegisterBenchmark(
          label.c_str(),
          [alg, n](benchmark::State& st) {
            PreparedQuery q = Prepare(alg, Workload(n));
            RunPrepared(st, q);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(iterations);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
