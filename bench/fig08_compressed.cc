// Figure 8: "Running Time and Space Requirement" for compressed structures
// (Section 4.1).
//
// Two equal-size sets (128K..8M postings in the paper; scaled by default),
// r = 1% of n.  Series: Merge_Delta, Lookup_Delta, RanGroupScan_Delta and
// RanGroupScan_Lowbits (all with m = 1, per the paper).  Findings:
//   * RanGroupScan beats the compressed baselines at equal codec, because
//     their decompression dominates;
//   * the Lowbits codec improves on RanGroupScan_Delta significantly
//     (filtered groups are skipped in O(1) instead of decoded);
//   * space: RanGroupScan_Lowbits is 1.3-1.9x the compressed inverted index
//     and 1.2-1.6x the compressed Lookup structure — the struct_MiB counter
//     reports the measured sizes.
//   * γ-coding results are indistinguishable from δ (the binaries include
//     both; the paper omitted γ from the plot for this reason).
//
// Decode is no longer scalar-only: the block decoders dispatch through
// simd/decode_kernels.h, so every compressed series runs twice — the
// default ":simd=auto" (CPU-dispatched unpack/prefix-sum kernels) and
// ":simd=off" (the scalar reference).  bench_summary.py's
// compressed_decode section reports the auto/off ratio; CI gates the
// Lowbits rows at >= 1.5x on AVX2 runners.

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "codec/bit_stream.h"
#include "simd/decode_kernels.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace {

using namespace fsi;
using namespace fsi::bench;

const std::vector<ElemList>& Workload(std::size_t n) {
  static std::map<std::size_t, std::vector<ElemList>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    Xoshiro256 rng(0xF160800 + n);
    // The paper's compressed experiments emulate postings: dense doc-id
    // space (gaps are small, so compression bites).
    std::uint64_t universe = 8 * static_cast<std::uint64_t>(n);
    it = cache.emplace(n,
                       GenerateIntersectingSets({n, n}, n / 100, universe, rng))
             .first;
  }
  return it->second;
}

// Pure decode-kernel throughput: unpack a flat buffer of ~1M packed
// fields through the dispatched vs scalar kernel tables.  The whole-query
// rows above decode one ~8-element group at a time, where vector setup
// cost cancels the win (the kernel falls back to scalar below 16 fields);
// these rows measure the kernels at the block sizes where SIMD pays.
// bench_summary.py's compressed_decode section and the CI >= 1.5x AVX2
// gate read these rows, not the whole-query ones.
void RegisterDecodeKernelRows() {
  const std::size_t kFields = FullScale() ? (1 << 22) : (1 << 20);
  for (int width : {8, 13, 21}) {
    for (bool dispatched : {true, false}) {
      std::string label = "fig08/decode_kernel/w:" + std::to_string(width) +
                          (dispatched ? "/simd:auto" : "/simd:off");
      benchmark::RegisterBenchmark(
          label.c_str(),
          [width, dispatched, kFields](benchmark::State& st) {
            static std::map<int, std::vector<std::uint64_t>> packed;
            auto it = packed.find(width);
            if (it == packed.end()) {
              BitWriter w;
              Xoshiro256 rng(0xDEC0DE + width);
              for (std::size_t i = 0; i < kFields; ++i) {
                w.Write(rng.Next() & ((std::uint64_t{1} << width) - 1), width);
              }
              w.Write(0, 64);  // straddle slack so every field is in bounds
              it = packed.emplace(width, w.TakeBuffer()).first;
            }
            const std::vector<std::uint64_t>& words = it->second;
            const simd::DecodeKernels& kernels =
                dispatched ? simd::DispatchedDecodeKernels()
                           : simd::ScalarDecodeKernels();
            std::vector<std::uint32_t> out(kFields);
            for (auto _ : st) {
              kernels.unpack_bits(words.data(), words.size(), 0, width, 0,
                                  out.data(), kFields);
              benchmark::DoNotOptimize(out.data());
              benchmark::ClobberMemory();
            }
            st.counters["elems_per_s"] = benchmark::Counter(
                static_cast<double>(st.iterations()) *
                    static_cast<double>(kFields),
                benchmark::Counter::kIsRate);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void RegisterAll() {
  std::vector<std::size_t> sizes;
  if (FullScale()) {
    sizes = {131072, 262144, 524288, 1048576, 2097152, 4194304, 8388608};
  } else {
    sizes = {1 << 14, 1 << 15, 1 << 16, 1 << 17, 1 << 18};
  }
  // Every compressed series in both decode tiers; Merge is the
  // uncompressed reference.
  const std::vector<std::string> algorithms = {
      "Merge_Delta",
      "Merge_Gamma",
      "Lookup_Delta",
      "Lookup_Gamma",
      "RanGroupScan_Delta",
      "RanGroupScan_Delta:simd=off",
      "RanGroupScan_Gamma",
      "RanGroupScan_Gamma:simd=off",
      "RanGroupScan_Lowbits",
      "RanGroupScan_Lowbits:simd=off",
      "Merge"};
  for (const auto& alg : algorithms) {
    for (std::size_t n : sizes) {
      std::string label = "fig08/" + alg + "/n:" + std::to_string(n);
      long iterations = std::max<long>(1, static_cast<long>((1 << 20) / n));
      benchmark::RegisterBenchmark(
          label.c_str(),
          [alg, n](benchmark::State& st) {
            PreparedQuery q = Prepare(alg, Workload(n));
            RunPrepared(st, q);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(iterations);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  RegisterDecodeKernelRows();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
