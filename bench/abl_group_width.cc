// Ablation (A.1.1): effect of the IntGroup group width s on running time.
//
// The analysis minimizes T(s1, s2) = n1/s1 + n2/s2 + r under s1*s2 <= w and
// yields s = sqrt(w) = 8 for equal sizes; smaller groups pay more group-
// pair overhead, larger ones break the E[collisions] = O(1) guarantee
// (Equation 4 requires s1*s2 <= w).  This sweep validates the "magical
// number" empirically.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.h"
#include "core/int_group.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace {

using namespace fsi;
using namespace fsi::bench;

const std::vector<ElemList>& Workload() {
  static std::vector<ElemList> lists = [] {
    std::size_t n = FullScale() ? 4000000 : (1 << 18);
    Xoshiro256 rng(0xAB700);
    return GenerateIntersectingSets({n, n}, n / 100,
                                    8 * static_cast<std::uint64_t>(n), rng);
  }();
  return lists;
}

void RegisterAll() {
  for (std::size_t s : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    std::string label = "abl_group_width/s:" + std::to_string(s);
    benchmark::RegisterBenchmark(
        label.c_str(),
        [s](benchmark::State& st) {
          IntGroupIntersection::Options o;
          o.group_size = s;
          IntGroupIntersection alg(o);
          const auto& lists = Workload();
          std::vector<std::unique_ptr<PreprocessedSet>> owned;
          std::vector<const PreprocessedSet*> views;
          for (const auto& l : lists) {
            owned.push_back(alg.Preprocess(l));
            views.push_back(owned.back().get());
          }
          ElemList out;
          for (auto _ : st) {
            out.clear();
            alg.Intersect(views, &out);
            benchmark::DoNotOptimize(out.data());
          }
          st.counters["result_size"] = static_cast<double>(out.size());
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(FullScale() ? 2 : 16);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
