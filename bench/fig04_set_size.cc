// Figure 4: "Varying the Set Size".
//
// Two synthetic sets of equal size n (1M..10M in the paper; scaled down by
// default), |L1 ∩ L2| fixed at 1% of n.  Series: one benchmark per
// (algorithm, n).  Paper's findings to compare against:
//   * RanGroupScan and IntGroup fastest (RanGroupScan 40-50% faster than
//     Merge); RanGroup ~ IntGroup;
//   * Merge beats the remaining "sophisticated" algorithms;
//   * then Lookup, then the adaptive algorithms;
//   * Hash, SkipList and BPP are the slowest;
//   * relative order does not change with n.

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace {

using namespace fsi;
using namespace fsi::bench;

const std::vector<ElemList>& Workload(std::size_t n) {
  static std::map<std::size_t, std::vector<ElemList>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    Xoshiro256 rng(0xF160400 + n);
    std::size_t r = n / 100;  // 1% intersection
    std::uint64_t universe = std::max<std::uint64_t>(8 * n, 1 << 20);
    it = cache.emplace(n, GenerateIntersectingSets({n, n}, r, universe, rng))
             .first;
  }
  return it->second;
}

void RegisterAll() {
  std::vector<std::size_t> sizes;
  if (FullScale()) {
    sizes = {1000000, 2000000, 4000000, 6000000, 8000000, 10000000};
  } else {
    sizes = {1 << 15, 1 << 16, 1 << 17, 1 << 18};
  }
  const std::vector<std::string> algorithms = {
      "Merge",    "SkipList", "Hash",     "IntGroup",     "BPP",
      "Adaptive", "SvS",      "Lookup",   "RanGroup",     "RanGroupScan"};
  for (const auto& alg : algorithms) {
    for (std::size_t n : sizes) {
      std::string label = "fig04/" + alg + "/n:" + std::to_string(n);
      long iterations =
          std::max<long>(1, static_cast<long>((1 << 22) / n));
      benchmark::RegisterBenchmark(
          label.c_str(),
          [alg, n](benchmark::State& st) {
            PreparedQuery q = Prepare(alg, Workload(n));
            RunPrepared(st, q);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(iterations);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
