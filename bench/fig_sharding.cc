// Sharded scatter-gather scaling: shard count × scatter threads × query
// mix (docs/SERVING.md).
//
// Each configuration builds one ShardedEngine over a fixed-seed corpus
// and serves a fixed query log via ServeBatch (no deadline: the run
// measures scatter parallelism, not degradation).  "shards:1" is the
// serial baseline — a single per-shard engine answering on one pool
// task — so the items_per_second ratio of shards:8 over shards:1 at the
// same thread count is the speedup the serving layer buys on one query's
// wall-clock.  Per-config p50/p95/p99 latency counters feed the
// ``sharding_scaling`` table of scripts/bench_summary.py; CI gates the
// 8-shard speedup at >= 3x on its 4-core runners (docs/BENCHMARKS.md).
//
// Query mixes:
//  * broad — two large lists with a fat intersection (the expensive
//    head-query shape where sharding matters most);
//  * multi — four mid-size lists, selective result (the many-term
//    conjunctive shape of EMBANKS-style keyword search).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "bench/bench_util.h"
#include "serve/sharded_engine.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace {

using namespace fsi;
using namespace fsi::bench;

constexpr std::size_t kBatch = 24;  // queries per ServeBatch iteration

// The universe and list sizes are chosen so one query costs ~1ms serially
// in Release: chunky enough that an 8-way scatter's per-shard slice
// (~1/8 of that) still dwarfs the per-task overhead — the regime the
// serving layer targets, and the one the CI gate measures.
Elem Universe() {
  return FullScale() ? Elem{1} << 25 : Elem{1} << 22;
}

struct Mix {
  const char* name;
  std::uint64_t seed;
  std::vector<std::size_t> sizes;
  std::size_t intersection;
};

const std::vector<Mix>& Mixes() {
  static const std::vector<Mix>* mixes = [] {
    const std::size_t scale = FullScale() ? 4 : 1;
    return new std::vector<Mix>{
        {"broad", 0x5AA2D1A601ULL,
         {scale * 1500000, scale * 1200000}, scale * 200000},
        {"multi", 0x5AA2D1A602ULL,
         {scale * 600000, scale * 480000, scale * 400000, scale * 320000},
         scale * 30000},
    };
  }();
  return *mixes;
}

const std::vector<ElemList>& Lists(const Mix& mix) {
  static std::map<std::string, std::vector<ElemList>> cache;
  auto it = cache.find(mix.name);
  if (it == cache.end()) {
    Xoshiro256 rng(mix.seed);
    it = cache.emplace(mix.name,
                       GenerateIntersectingSets(mix.sizes, mix.intersection,
                                                Universe(), rng))
             .first;
  }
  return it->second;
}

/// One built configuration: the engine, its sharded sets, and a log of
/// kBatch identical-shape queries.  Only the most recent configuration is
/// kept (each registration runs once, in order), so peak memory is one
/// engine's structures, not sixteen.
struct Ctx {
  ShardedEngine engine;
  std::vector<ShardedSet> sets;
  std::vector<ShardedEngine::ShardedQuery> log;
};

Ctx& GetCtx(const Mix& mix, std::size_t shards, std::size_t threads) {
  using Key = std::tuple<std::string, std::size_t, std::size_t>;
  static Key cached_key;
  static std::unique_ptr<Ctx> cached;
  const Key key{mix.name, shards, threads};
  if (cached == nullptr || key != cached_key) {
    cached.reset();  // free the previous engine before building the next
    auto ctx = std::unique_ptr<Ctx>(
        new Ctx{ShardedEngine({.num_shards = shards,
                               .universe_bound = Universe(),
                               .num_threads = threads}),
                {},
                {}});
    const std::vector<ElemList>& lists = Lists(mix);
    ctx->sets.reserve(lists.size());
    for (const ElemList& list : lists) {
      ctx->sets.push_back(ctx->engine.Prepare(list));
    }
    ShardedEngine::ShardedQuery query;
    for (const ShardedSet& set : ctx->sets) query.push_back(&set);
    ctx->log.assign(kBatch, query);
    cached = std::move(ctx);
    cached_key = key;
  }
  return *cached;
}

void BM_Sharding(benchmark::State& state, const Mix& mix, std::size_t shards,
                 std::size_t threads) {
  Ctx& ctx = GetCtx(mix, shards, threads);
  std::size_t served = 0;
  std::size_t result_size = 0;
  for (auto _ : state) {
    std::vector<ServeResult> results = ctx.engine.ServeBatch(ctx.log);
    benchmark::DoNotOptimize(results.data());
    served += results.size();
    result_size = results.front().result_size;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(served));
  const BatchStats& stats = ctx.engine.batch_stats();
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["p50_us"] = stats.p50_micros;
  state.counters["p95_us"] = stats.p95_micros;
  state.counters["p99_us"] = stats.p99_micros;
  state.counters["result_size"] = static_cast<double>(result_size);
}

void RegisterAll() {
  const std::vector<std::size_t> shard_counts = {1, 2, 4, 8};
  const std::vector<std::size_t> thread_counts = {2, 4};
  for (const Mix& mix : Mixes()) {
    for (std::size_t threads : thread_counts) {
      for (std::size_t shards : shard_counts) {
        const std::string name = std::string("sharding/") + mix.name +
                                 "/shards:" + std::to_string(shards) +
                                 "/threads:" + std::to_string(threads);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [&mix, shards, threads](benchmark::State& state) {
              BM_Sharding(state, mix, shards, threads);
            })
            ->Unit(benchmark::kMillisecond)
            ->UseRealTime()
            ->MeasureProcessCPUTime()
            ->Iterations(FullScale() ? 8 : 3);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
