// "Size of the Data Structure" (Section 4, reported in text).
//
// The paper reports structure sizes relative to an uncompressed posting
// list (one word per element in their C implementation): +37% for
// RanGroupScan m=2, +63% for m=4, +75% for IntGroup, +87% for RanGroup.
// We print the measured words-per-element of every structure and the
// overhead relative to the PlainSet baseline.  Our element storage is
// 32-bit (half a word), so absolute ratios differ; the *ordering* and the
// m-dependence are the comparable shape.
//
// Not a timing experiment — prints a plain table.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/ran_group.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace {

using namespace fsi;
using namespace fsi::bench;

}  // namespace

int main() {
  std::size_t n = FullScale() ? 10000000 : (1 << 20);
  Xoshiro256 rng(0xF1605B0);
  ElemList set = SampleSortedSet(n, 20 * static_cast<std::uint64_t>(n), rng);
  std::vector<ElemList> lists = {set};

  struct Row {
    std::string name;
    std::string note;
  };
  std::vector<Row> rows = {
      {"Merge", "uncompressed posting list (baseline)"},
      {"Lookup", "bucket directory, B=32"},
      {"SkipList", "towers + forward pointers"},
      {"Hash", "linear-probing table, load 1/2"},
      {"BPP", "16-bit codes"},
      {"IntGroup", "paper: +75%"},
      {"RanGroupScan2", "m=2; paper: +37%"},
      {"RanGroupScan", "m=4; paper: +63%"},
      {"RanGroup", "multi-resolution (Thm 3.4/3.5 support)"},
      {"HashBin", "g-ordered values only"},
      {"Merge_Delta", "delta-coded gaps"},
      {"Lookup_Delta", "delta-coded buckets"},
      {"RanGroupScan_Lowbits", "Appendix B encoding, m=1"},
      {"RanGroupScan_Delta", "delta-coded groups, m=1"},
  };

  std::printf("tab_space: structure sizes, n=%zu elements\n", n);
  std::printf("%-24s %14s %12s %10s  %s\n", "structure", "words", "words/elem",
              "overhead", "note");
  double baseline = 0;
  for (const Row& row : rows) {
    PreparedQuery q = Prepare(row.name, lists);
    double words = static_cast<double>(q.StructureWords());
    double per_elem = words / static_cast<double>(n);
    if (row.name == "Merge") baseline = words;
    std::printf("%-24s %14.0f %12.3f %+9.0f%%  %s\n", row.name.c_str(), words,
                per_elem, (words / baseline - 1.0) * 100.0,
                row.note.c_str());
  }

  // RanGroup in the single-resolution mode actually used by Algorithm 4.
  {
    RanGroupIntersection::Options o;
    o.single_resolution = true;
    RanGroupIntersection alg(o);
    auto pre = alg.Preprocess(set);
    double words = static_cast<double>(pre->SizeInWords());
    std::printf("%-24s %14.0f %12.3f %+9.0f%%  %s\n",
                "RanGroup_single_res", words,
                words / static_cast<double>(n),
                (words / baseline - 1.0) * 100.0,
                "one resolution (Thm 3.7 mode); paper: +87%");
  }

  // The space-budget dial (EngineOptions::space_budget_bytes): a Planner
  // corpus of mixed-length sets prepared under shrinking budgets.  The
  // footprint column is Engine::SpaceUsedBytes(); the compressed column
  // counts sets the dial flipped to the block-compressed representation.
  {
    Xoshiro256 dial_rng(0xD1A1);
    std::vector<ElemList> corpus;
    const std::size_t base_n = FullScale() ? 200000 : 20000;
    for (std::size_t i = 1; i <= 8; ++i) {
      corpus.push_back(SampleSortedSet(
          base_n * i, 20 * static_cast<std::uint64_t>(base_n) * i, dial_rng));
    }
    std::size_t full_bytes = 0;
    {
      Engine unlimited("Planner:calibration=off");
      for (const ElemList& l : corpus) {
        full_bytes += unlimited.Prepare(l).SizeInWords() * sizeof(Word);
      }
    }
    std::printf("\ntab_space: the space-budget dial, %zu sets, "
                "uncompressed footprint %.1f MiB\n",
                corpus.size(), full_bytes / (1024.0 * 1024.0));
    std::printf("%-24s %14s %12s %10s\n", "budget", "used_bytes",
                "used_MiB", "compressed");
    const std::vector<std::pair<std::string, std::size_t>> budgets = {
        {"unlimited(0)", 0},
        {"full", full_bytes},
        {"1/2", full_bytes / 2},
        {"1/4", full_bytes / 4},
        {"1B", 1},
    };
    for (const auto& [label, budget] : budgets) {
      Engine engine("Planner:calibration=off",
                    EngineOptions{.space_budget_bytes = budget,
                                  .min_compress_size = 0});
      std::vector<PreparedSet> prepared =
          engine.PrepareBatch(std::span<const ElemList>(corpus));
      std::size_t compressed = 0;
      for (const PreparedSet& s : prepared) compressed += s.compressed();
      std::printf("%-24s %14zu %12.1f %7zu/%zu\n", label.c_str(),
                  engine.SpaceUsedBytes(),
                  engine.SpaceUsedBytes() / (1024.0 * 1024.0), compressed,
                  prepared.size());
    }
  }
  return 0;
}
