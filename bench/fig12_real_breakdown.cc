// Figure 12 (Appendix C.2): real-workload breakdown by number of keywords.
//
// Same simulated workload as Figure 7, with mean times reported separately
// for 2-, 3- and 4-keyword queries, normalized to Merge within each class.
// Paper's findings: Merge degrades as k grows (it cannot exploit
// asymmetry); Hash improves with k but stays near-worst; for 4-keyword
// queries RanGroup slightly outperforms RanGroupScan.

#include <cstdio>

#include "bench/real_workload.h"

int main() {
  using namespace fsi::bench;
  RealWorkloadDriver driver;
  driver.PrintWorkloadStats();
  std::vector<std::string> algorithms = {
      "Merge",   "Hash",   "Lookup",  "SvS",          "SmallAdaptive",
      "HashBin", "RanGroup", "RanGroupScan", "Hybrid"};
  auto results = driver.Run(algorithms);
  std::printf("fig12: normalized mean query time by keyword count\n");
  std::printf("%-16s", "algorithm");
  for (std::size_t k : {2u, 3u, 4u, 5u}) std::printf(" %8s%zu", "k=", k);
  std::printf("\n");
  for (const auto& name : algorithms) {
    std::printf("%-16s", name.c_str());
    for (std::size_t k : {2u, 3u, 4u, 5u}) {
      double merge = results["Merge"].mean_ms_by_k.count(k)
                         ? results["Merge"].mean_ms_by_k[k]
                         : 0.0;
      double mine = results[name].mean_ms_by_k.count(k)
                        ? results[name].mean_ms_by_k[k]
                        : 0.0;
      if (merge > 0) {
        std::printf(" %9.3f", mine / merge);
      } else {
        std::printf(" %9s", "-");
      }
    }
    std::printf("\n");
  }
  return 0;
}
