// Figure 6: "Varying the Number of Keywords".
//
// k = 2, 3, 4 sets of equal size (10M in the paper; scaled by default), ids
// drawn uniformly and independently from [0, 2*10^8] (scaled), so overlaps
// are incidental.  RanGroupScan uses m = 2 hash images here, as in the
// paper.  Findings to compare against:
//   * RanGroupScan fastest, and the margin grows with k (more sets => more
//     empty image ANDs => more skipped groups);
//   * RanGroup next; Merge again beats the sophisticated baselines;
//   * IntGroup is absent (it is two-set only).

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace {

using namespace fsi;
using namespace fsi::bench;

std::size_t SetSize() { return FullScale() ? 10000000 : (1 << 18); }

const std::vector<ElemList>& Workload(std::size_t k) {
  static std::map<std::size_t, std::vector<ElemList>> cache;
  auto it = cache.find(k);
  if (it == cache.end()) {
    std::size_t n = SetSize();
    // Paper: universe 2*10^8 for n = 10^7, i.e. 20x the set size.
    std::uint64_t universe = 20 * static_cast<std::uint64_t>(n);
    Xoshiro256 rng(0xF160600 + k);
    it = cache.emplace(k, GenerateUniformSets(k, n, universe, rng)).first;
  }
  return it->second;
}

void RegisterAll() {
  const std::vector<std::string> algorithms = {
      "Merge", "SkipList",   "Hash",         "Adaptive", "SvS",
      "Lookup", "RanGroup",  "RanGroupScan2"};
  for (const auto& alg : algorithms) {
    for (std::size_t k : {2u, 3u, 4u}) {
      std::string label = "fig06/" + alg + "/k:" + std::to_string(k);
      benchmark::RegisterBenchmark(
          label.c_str(),
          [alg, k](benchmark::State& st) {
            PreparedQuery q = Prepare(alg, Workload(k));
            RunPrepared(st, q);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(FullScale() ? 1 : 8);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
