// "Varying the Sets Size Ratios" (Section 4, reported in text).
//
// |L2| fixed (10M in the paper; scaled by default), |L1| swept so the ratio
// sr = |L2|/|L1| covers 1..625; r = 1% of |L1|.  Paper's findings:
//   * sr < 32: RanGroupScan best;
//   * 32 <= sr < 100: Lookup and Hash best;
//   * sr >= 100: Hash best, then Lookup and HashBin;
//   * HashBin and RanGroupScan always close to the best performer
//     (robustness claim), adaptive algorithms slower than RanGroupScan for
//     sr <= 200 and slower than HashBin everywhere.

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace {

using namespace fsi;
using namespace fsi::bench;

std::size_t BigSize() { return FullScale() ? 10000000 : (1 << 18); }

const std::vector<ElemList>& Workload(std::size_t sr) {
  static std::map<std::size_t, std::vector<ElemList>> cache;
  auto it = cache.find(sr);
  if (it == cache.end()) {
    std::size_t n2 = BigSize();
    std::size_t n1 = std::max<std::size_t>(n2 / sr, 16);
    Xoshiro256 rng(0xF1605A0 + sr);
    std::uint64_t universe = std::max<std::uint64_t>(8 * n2, 1 << 20);
    it = cache
             .emplace(sr, GenerateIntersectingSets(
                              {n1, n2}, std::max<std::size_t>(n1 / 100, 1),
                              universe, rng))
             .first;
  }
  return it->second;
}

void RegisterAll() {
  std::vector<std::size_t> ratios = {1, 4, 16, 32, 64, 100, 200, 400, 625};
  const std::vector<std::string> algorithms = {
      "Merge",   "Hash",     "Lookup",       "SvS",   "Adaptive",
      "SmallAdaptive", "HashBin", "RanGroupScan", "Hybrid"};
  for (const auto& alg : algorithms) {
    for (std::size_t sr : ratios) {
      std::string label = "ratio/" + alg + "/sr:" + std::to_string(sr);
      benchmark::RegisterBenchmark(
          label.c_str(),
          [alg, sr](benchmark::State& st) {
            PreparedQuery q = Prepare(alg, Workload(sr));
            RunPrepared(st, q);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(FullScale() ? 1 : 8);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
