// Figure 5: "Varying the Intersection Size".
//
// Two sets of fixed size n (10M in the paper; scaled by default), with
// r = |L1 ∩ L2| swept from tiny to n.  Paper's findings:
//   * RanGroupScan / IntGroup fastest while r < 0.7 n;
//   * for r > 0.7 n Merge takes over, with RanGroupScan a close 2nd all the
//     way to r = n;
//   * RanGroup slightly outperforms Merge for r < 0.5 n;
//   * Lookup next, SvS/Adaptive best among the adaptive family.

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace {

using namespace fsi;
using namespace fsi::bench;

std::size_t SetSize() { return FullScale() ? 10000000 : (1 << 18); }

const std::vector<ElemList>& Workload(std::size_t r) {
  static std::map<std::size_t, std::vector<ElemList>> cache;
  auto it = cache.find(r);
  if (it == cache.end()) {
    std::size_t n = SetSize();
    Xoshiro256 rng(0xF160500 + r);
    std::uint64_t universe = std::max<std::uint64_t>(8 * n, 1 << 20);
    it = cache.emplace(r, GenerateIntersectingSets({n, n}, r, universe, rng))
             .first;
  }
  return it->second;
}

void RegisterAll() {
  std::size_t n = SetSize();
  // Sweep r as fractions of n, bracketing the 0.7 crossover.
  std::vector<double> fractions = {0.0001, 0.001, 0.01, 0.1, 0.3,
                                   0.5,    0.7,   0.9,  1.0};
  const std::vector<std::string> algorithms = {
      "Merge",  "SkipList", "Hash",     "Adaptive",  "SvS",
      "Lookup", "IntGroup", "RanGroup", "RanGroupScan"};
  for (const auto& alg : algorithms) {
    for (double f : fractions) {
      auto r = static_cast<std::size_t>(f * static_cast<double>(n));
      std::string label = "fig05/" + alg + "/r_frac:" + std::to_string(f);
      long iterations = std::max<long>(1, static_cast<long>((1 << 21) / n));
      benchmark::RegisterBenchmark(
          label.c_str(),
          [alg, r](benchmark::State& st) {
            PreparedQuery q = Prepare(alg, Workload(r));
            RunPrepared(st, q);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(iterations);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
