// Mutation overhead (beyond the paper): query latency as a function of
// the delta-tier fill fraction of a mutable prepared set, the cost of
// compaction, and sustained single-writer mutation throughput.
//
// The paper's structures are build-once; PR 6's mutable sets bolt a
// sorted delta tier (insert buffer + erase tombstones, core/delta_set.h)
// onto an unchanged base structure, which every query then folds in.
// The question this harness answers: what does that fixup cost at 0 / 1 /
// 5 / 10 / 20 % fill, and does compaction restore the baseline?
//
// Read the output as two curves plus two scalars:
//   mutation/query_vs_fill/fill:F   k=2 intersection latency with the
//                                   mutable operand carrying an F% delta
//                                   (fill:0 is the freshly-prepared
//                                   baseline the others are judged by),
//                                   on the default ordered sink whose
//                                   fixup is two linear merges;
//   mutation/query_vs_fill_unordered/fill:F
//                                   the same with .Unordered(), which
//                                   must instead screen every result
//                                   element against the tombstones
//                                   (Bloom-gated probes — a full extra
//                                   pass, so the ratio is higher);
//   mutation/post_compaction        the same query after Compact() — the
//                                   delta is gone, so this should sit on
//                                   the fill:0 baseline again;
//   mutation/compact_cost/fill:F    one synchronous Compact() of an F%
//                                   delta (rebuild + publish);
//   mutation/insert_throughput      Insert() calls per second against a
//                                   large base (delta skip-list + COW
//                                   publish per call).
//
//   ./build/bench/fig_mutation
//   ./build/bench/fig_mutation --benchmark_format=json  # CI artifact
//
// scripts/bench_summary.py turns the JSON into the `mutation_overhead`
// section of BENCH_pr.json (overhead ratios vs the fill:0 baseline).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace {

using namespace fsi;
using namespace fsi::bench;

std::size_t BaseSize() { return FullScale() ? (1u << 21) : (1u << 17); }
constexpr std::uint64_t kUniverse = 1ull << 26;

// The shared immutable workload: one base list, one companion the queries
// intersect it with (~50% overlap), and a disjoint pool of fresh values
// for inserts.  Built once per binary.
struct Workload {
  ElemList base;
  ElemList companion;
  ElemList fresh;  // values not in `base`, for inserts

  static const Workload& Get() {
    static Workload* w = [] {
      auto* out = new Workload();
      Xoshiro256 rng(0x4d5721ULL);
      out->base = SampleSortedSet(BaseSize(), kUniverse, rng);
      // Companion: every other base element plus private elements.
      ElemList priv = SampleSortedSet(BaseSize() / 2, kUniverse, rng);
      for (std::size_t i = 0; i < out->base.size(); i += 2) {
        out->companion.push_back(out->base[i]);
      }
      out->companion.insert(out->companion.end(), priv.begin(), priv.end());
      std::sort(out->companion.begin(), out->companion.end());
      out->companion.erase(
          std::unique(out->companion.begin(), out->companion.end()),
          out->companion.end());
      // Fresh values: offset past the universe, so never in base.
      for (std::size_t i = 0; i < out->base.size(); ++i) {
        out->fresh.push_back(static_cast<Elem>(kUniverse + 2 * i));
      }
      return out;
    }();
    return *w;
  }
};

// Mutates `set` until its delta holds `fill_pct`% of the base size:
// half fresh inserts, half erases of existing base elements.
void FillDelta(PreparedSet& set, int fill_pct) {
  const Workload& w = Workload::Get();
  std::size_t target = w.base.size() * static_cast<std::size_t>(fill_pct) / 100;
  std::size_t half = target / 2;
  for (std::size_t i = 0; i < half; ++i) set.Insert(w.fresh[i]);
  // Erase odd-index base elements (the even ones feed the companion, so
  // the base part of the result stays comparable across fill levels).
  for (std::size_t i = 0; i < target - half; ++i) {
    set.Erase(w.base[2 * i + 1]);
  }
}

void QueryVsFill(benchmark::State& state) {
  const int fill_pct = static_cast<int>(state.range(0));
  const bool unordered = state.range(1) != 0;
  const Workload& w = Workload::Get();
  Engine engine;  // zero-config planner, as a production caller would use
  // Manual compaction only: the point is to hold the delta at the target
  // fill across the whole timed loop.
  PreparedSet target =
      engine.PrepareMutable(w.base, {.background_compaction = false});
  PreparedSet companion = engine.Prepare(w.companion);
  FillDelta(target, fill_pct);
  fsi::Query query = engine.Query({&target, &companion});
  if (unordered) query.Unordered();
  ElemList out;
  for (auto _ : state) {
    query.ExecuteInto(&out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["fill_pct"] = static_cast<double>(fill_pct);
  state.counters["delta"] = static_cast<double>(target.delta_size());
  state.counters["result_size"] = static_cast<double>(out.size());
}

void PostCompaction(benchmark::State& state) {
  const Workload& w = Workload::Get();
  Engine engine;
  PreparedSet target =
      engine.PrepareMutable(w.base, {.background_compaction = false});
  PreparedSet companion = engine.Prepare(w.companion);
  FillDelta(target, 10);
  target.Compact();  // fold the 10% delta back into the base structure
  fsi::Query query = engine.Query({&target, &companion});
  ElemList out;
  for (auto _ : state) {
    query.ExecuteInto(&out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["delta"] = static_cast<double>(target.delta_size());
  state.counters["result_size"] = static_cast<double>(out.size());
}

void CompactCost(benchmark::State& state) {
  const int fill_pct = static_cast<int>(state.range(0));
  const Workload& w = Workload::Get();
  Engine engine;
  for (auto _ : state) {
    state.PauseTiming();  // refill the delta outside the measurement
    PreparedSet target =
        engine.PrepareMutable(w.base, {.background_compaction = false});
    FillDelta(target, fill_pct);
    state.ResumeTiming();
    target.Compact();
    benchmark::DoNotOptimize(target.delta_size());
  }
  state.counters["fill_pct"] = static_cast<double>(fill_pct);
  state.counters["base_n"] = static_cast<double>(w.base.size());
}

void InsertThroughput(benchmark::State& state) {
  const Workload& w = Workload::Get();
  Engine engine;
  // Background compaction on — this measures the production write path,
  // periodic rebuild scheduling included.
  PreparedSet target = engine.PrepareMutable(w.base);
  std::size_t i = 0;
  for (auto _ : state) {
    // Cycle through fresh values; wrap with erases so the set stays
    // bounded on long runs.
    Elem x = w.fresh[i % w.fresh.size()];
    if (i < w.fresh.size()) {
      target.Insert(x);
    } else {
      target.Erase(x);
    }
    if (++i == 2 * w.fresh.size()) i = 0;
    benchmark::DoNotOptimize(i);
  }
  target.WaitForCompaction();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["base_n"] = static_cast<double>(w.base.size());
}

void RegisterAll() {
  for (int fill : {0, 1, 5, 10, 20}) {
    // Headline curve: the default (document-id-ordered) sink, whose fixup
    // is a pair of linear merges.  CI gates on this one.
    std::string label = "mutation/query_vs_fill/fill:" + std::to_string(fill);
    benchmark::RegisterBenchmark(label.c_str(), QueryVsFill)
        ->Args({fill, 0})
        ->Unit(benchmark::kMicrosecond);
    // The unordered sink pays an extra full pass over the result (Bloom-
    // gated tombstone probes), so it is reported as its own curve.
    std::string ulabel =
        "mutation/query_vs_fill_unordered/fill:" + std::to_string(fill);
    benchmark::RegisterBenchmark(ulabel.c_str(), QueryVsFill)
        ->Args({fill, 1})
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::RegisterBenchmark("mutation/post_compaction", PostCompaction)
      ->Unit(benchmark::kMicrosecond);
  for (int fill : {1, 5, 10, 20}) {
    std::string label = "mutation/compact_cost/fill:" + std::to_string(fill);
    benchmark::RegisterBenchmark(label.c_str(), CompactCost)
        ->Arg(fill)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("mutation/insert_throughput", InsertThroughput)
      ->Unit(benchmark::kMicrosecond);
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
