// Figure 13 (beyond the paper): thread-scaling of concurrent batch
// execution over shared prepared structures.
//
// The paper's setting is an interactive search tier — many small
// conjunctive queries served at high throughput.  Its experiments are
// single-threaded; this harness measures what the Engine thread-safety
// contract buys at the system level: one Engine, every queried posting
// list preprocessed once, and a Bing-like query log executed by
// fsi::BatchRunner at 1/2/4/8 workers.
//
// Read the output as a scaling curve: for each algorithm,
// `items_per_second` (queries/s) at threads:1 is the single-threaded
// baseline; the workload is embarrassingly parallel over read-only
// structures, so throughput should scale near-linearly until the memory
// bus or the physical core count saturates.  Counters report the merged
// BatchStats of the last batch (p95 per-query latency, per-query data
// volume) — tail latency should stay flat while throughput climbs.
//
//   ./build/bench/fig13_concurrency
//   ./build/bench/fig13_concurrency --benchmark_format=json  # CI artifact

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "api/batch_runner.h"
#include "bench/bench_util.h"
#include "workload/corpus.h"

namespace {

using namespace fsi;
using namespace fsi::bench;

// One corpus + query log for the whole binary (fixed seeds inside the
// corpus/workload defaults keep every run and every CI job comparable).
struct Log {
  SyntheticCorpus corpus;
  QueryWorkload workload;  // built over `corpus` (declared after it)

  Log(const SyntheticCorpus::Options& co, const QueryWorkload::Options& qo)
      : corpus(co), workload(corpus, qo) {}

  static const Log& Get() {
    static Log* log = [] {
      SyntheticCorpus::Options co;
      co.num_docs = FullScale() ? (1u << 20) : (1u << 17);
      co.vocabulary = FullScale() ? 20000 : 4000;
      QueryWorkload::Options qo;
      qo.num_queries = FullScale() ? 4096 : 512;
      return new Log(co, qo);
    }();
    return *log;
  }
};

// Per-algorithm batch state: every distinct queried term preprocessed
// once, the query log resolved to prepared-set pointers.
struct BatchState {
  Engine engine;
  std::vector<PreparedSet> structures;
  std::vector<BatchQuery> queries;
};

const BatchState& State(const std::string& spec) {
  static std::map<std::string, BatchState>* cache =
      new std::map<std::string, BatchState>();
  auto it = cache->find(spec);
  if (it != cache->end()) return it->second;

  const Log& log = Log::Get();
  Engine engine(spec);
  std::map<std::size_t, std::size_t> slot;  // term -> structures index
  std::vector<PreparedSet> structures;
  for (const TermQuery& q : log.workload.queries()) {
    for (std::size_t term : q) {
      if (slot.try_emplace(term, structures.size()).second) {
        structures.push_back(engine.Prepare(log.corpus.postings(term)));
      }
    }
  }
  std::vector<BatchQuery> queries;
  queries.reserve(log.workload.queries().size());
  for (const TermQuery& q : log.workload.queries()) {
    BatchQuery bq;
    bq.reserve(q.size());
    for (std::size_t term : q) bq.push_back(&structures[slot[term]]);
    queries.push_back(std::move(bq));
  }
  it = cache->emplace(spec, BatchState{std::move(engine),
                                       std::move(structures),
                                       std::move(queries)})
           .first;
  return it->second;
}

void RegisterAll() {
  const std::vector<std::string> algorithms = {"Merge", "SvS", "Hybrid",
                                               "RanGroupScan"};
  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  for (const auto& alg : algorithms) {
    for (std::size_t threads : thread_counts) {
      std::string label =
          "fig13/" + alg + "/threads:" + std::to_string(threads);
      benchmark::RegisterBenchmark(
          label.c_str(),
          [alg, threads](benchmark::State& st) {
            const BatchState& state = State(alg);
            // One runner (and pool) per benchmark; iterations reuse it,
            // so the timed loop measures execution, not thread spawning.
            BatchRunner runner(state.engine, {.num_threads = threads});
            for (auto _ : st) {
              auto counts = runner.Count(state.queries);
              benchmark::DoNotOptimize(counts.data());
            }
            st.SetItemsProcessed(static_cast<std::int64_t>(st.iterations()) *
                                 static_cast<std::int64_t>(
                                     state.queries.size()));
            st.counters["threads"] = static_cast<double>(threads);
            st.counters["p95_us"] = runner.stats().p95_micros;
            st.counters["scanned_per_query"] =
                static_cast<double>(runner.stats().elements_scanned) /
                static_cast<double>(state.queries.size());
          })
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime()
          ->MeasureProcessCPUTime();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
