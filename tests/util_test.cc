// Tests for the measurement utilities (timer, statistics accumulators)
// that the benchmark harness and examples rely on.

#include <gtest/gtest.h>

#include "util/stats.h"
#include "util/timer.h"

namespace fsi {
namespace {

TEST(TimerTest, MonotoneNonNegative) {
  Timer t;
  std::int64_t a = t.ElapsedNanos();
  std::int64_t b = t.ElapsedNanos();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

TEST(TimerTest, ResetRestarts) {
  Timer t;
  volatile std::int64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  (void)sink;
  std::int64_t before = t.ElapsedNanos();
  t.Reset();
  EXPECT_LE(t.ElapsedNanos(), before);
}

TEST(TimerTest, MillisMatchesNanos) {
  Timer t;
  double ms = t.ElapsedMillis();
  EXPECT_GE(ms, 0.0);
}

TEST(SampleStatsTest, EmptyIsZero) {
  SampleStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Min(), 0.0);
  EXPECT_EQ(s.Max(), 0.0);
  EXPECT_EQ(s.Percentile(0.5), 0.0);
  EXPECT_EQ(s.StdDev(), 0.0);
}

TEST(SampleStatsTest, BasicAggregates) {
  SampleStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  // Sample standard deviation of the classic example is ~2.138.
  EXPECT_NEAR(s.StdDev(), 2.138, 0.01);
}

TEST(SampleStatsTest, PercentileInterpolation) {
  SampleStats s;
  for (double v : {10.0, 20.0, 30.0, 40.0, 50.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.25), 20.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.125), 15.0);  // halfway between ranks
}

TEST(SampleStatsTest, SingleSample) {
  SampleStats s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.99), 42.0);
  EXPECT_EQ(s.StdDev(), 0.0);
}

TEST(SampleStatsTest, UnsortedInsertionOrder) {
  SampleStats s;
  for (double v : {9.0, 1.0, 5.0, 3.0, 7.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
}

}  // namespace
}  // namespace fsi
