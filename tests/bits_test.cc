#include "util/bits.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace fsi {
namespace {

TEST(BitsTest, WordBit) {
  EXPECT_EQ(WordBit(0), 1u);
  EXPECT_EQ(WordBit(1), 2u);
  EXPECT_EQ(WordBit(63), 0x8000000000000000ULL);
}

TEST(BitsTest, LowestBitMatchesPaperFootnoteIdentity) {
  // Footnote 1: lowbit = ((v - 1) XOR v) AND v.
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    Word v = rng.Next();
    if (v == 0) continue;
    Word expected = ((v - 1) ^ v) & v;
    EXPECT_EQ(LowestBit(v), expected);
  }
}

TEST(BitsTest, LowestBitIndex) {
  for (int y = 0; y < 64; ++y) {
    EXPECT_EQ(LowestBitIndex(WordBit(y)), y);
    // Adding higher bits must not change the lowest index.
    Word v = WordBit(y) | (y < 63 ? WordBit(63) : 0);
    EXPECT_EQ(LowestBitIndex(v), y);
  }
}

TEST(BitsTest, PopCount) {
  EXPECT_EQ(PopCount(0), 0);
  EXPECT_EQ(PopCount(~Word{0}), 64);
  EXPECT_EQ(PopCount(0x5555555555555555ULL), 32);
}

TEST(BitsTest, FloorCeilLog2) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(4), 2);
  EXPECT_EQ(FloorLog2(~std::uint64_t{0}), 63);
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(4), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(std::uint64_t{1} << 32), 32);
}

TEST(BitsTest, ForEachBitEnumeratesAscending) {
  Word v = WordBit(3) | WordBit(17) | WordBit(42) | WordBit(63);
  std::vector<int> seen;
  ForEachBit(v, [&](int y) { seen.push_back(y); });
  EXPECT_EQ(seen, (std::vector<int>{3, 17, 42, 63}));
}

TEST(BitsTest, ForEachBitEmptyWord) {
  int count = 0;
  ForEachBit(0, [&](int) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(BitsTest, ForEachBitFullWord) {
  std::vector<int> seen;
  ForEachBit(~Word{0}, [&](int y) { seen.push_back(y); });
  ASSERT_EQ(seen.size(), 64u);
  for (int y = 0; y < 64; ++y) EXPECT_EQ(seen[static_cast<size_t>(y)], y);
}

TEST(BitsTest, SwarHasByte) {
  Word packed = 0;
  std::uint8_t bytes[8] = {3, 7, 7, 255, 0, 19, 200, 42};
  for (int i = 0; i < 8; ++i) {
    packed |= static_cast<Word>(bytes[i]) << (i * 8);
  }
  for (int b = 0; b < 256; ++b) {
    bool expected = false;
    for (std::uint8_t v : bytes) expected |= (v == b);
    EXPECT_EQ(HasByte(packed, static_cast<std::uint8_t>(b)), expected)
        << "byte " << b;
  }
}

TEST(BitsTest, SwarHasZeroByte) {
  EXPECT_TRUE(HasZeroByte(0x0001020304050607ULL));
  EXPECT_FALSE(HasZeroByte(0x0101010101010101ULL));
  EXPECT_TRUE(HasZeroByte(0));
}

}  // namespace
}  // namespace fsi
