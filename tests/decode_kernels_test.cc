// Equivalence and robustness tests for the decode kernel layer
// (simd/decode_kernels.h) and the bit-level codecs underneath it.
//
//  * Kernel level: every vector tier the machine can execute produces
//    bit-identical results to the scalar tier for unpack_bits and
//    prefix_sum, on adversarial inputs — every width in [0, 32], every
//    in-word bit offset, counts straddling the 4/8-lane boundaries,
//    all-ones payloads, zero payloads, empty and single-element runs,
//    and exact-fit buffers whose last field ends on the very last bit
//    (the "never reads past words_len" contract, checked under ASan).
//  * Codec level: fixed-seed fuzz of BitWriter/BitReader and the Elias
//    γ/δ codes — random write scripts round-trip exactly.  The iteration
//    count scales with FSI_STRESS_ITERS (nightly CI runs 10x).

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "codec/bit_stream.h"
#include "codec/elias.h"
#include "simd/decode_kernels.h"

namespace fsi {
namespace {

using simd::DecodeKernels;
using simd::DecodeKernelsForLevel;
using simd::ScalarDecodeKernels;

std::size_t StressIters() {
  const char* env = std::getenv("FSI_STRESS_ITERS");
  if (env == nullptr) return 1;
  long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<std::size_t>(v) : 1;
}

std::vector<simd::Level> AvailableLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  const simd::Level best = simd::DetectCpuLevel();
  if (best >= simd::Level::kSse) levels.push_back(simd::Level::kSse);
  if (best >= simd::Level::kAvx2) levels.push_back(simd::Level::kAvx2);
  return levels;
}

// Packs `count` fields of `width` bits MSB-first starting at bit_offset,
// via the production BitWriter — the ground-truth encoder.
std::vector<std::uint64_t> PackFields(const std::vector<std::uint32_t>& vals,
                                      std::size_t bit_offset, int width) {
  BitWriter writer;
  if (bit_offset > 0) {
    // Pad with an alternating pattern so an off-by-one read picks up
    // garbage rather than convenient zeros.
    for (std::size_t i = 0; i < bit_offset; ++i) writer.WriteBit(i % 3 == 0);
  }
  for (std::uint32_t v : vals) {
    writer.Write(width == 32 ? v : (v & ((std::uint64_t{1} << width) - 1)),
                 width);
  }
  return writer.TakeBuffer();
}

// ---------------------------------------------------------------------------
// unpack_bits: every tier vs the scalar reference.
// ---------------------------------------------------------------------------

TEST(DecodeKernelTest, AllTiersMatchScalarAcrossWidthsAndOffsets) {
  std::mt19937_64 rng(0xDEC0DE);
  const DecodeKernels& scalar = ScalarDecodeKernels();
  for (simd::Level level : AvailableLevels()) {
    const DecodeKernels& tier = DecodeKernelsForLevel(level);
    for (int width = 0; width <= 32; ++width) {
      const std::uint64_t mask =
          width == 32 ? ~std::uint64_t{0} >> 32
                      : (std::uint64_t{1} << width) - 1;
      // Offsets probing word starts, mid-word, and word-straddling fields.
      for (std::size_t offset : {std::size_t{0}, std::size_t{1},
                                 std::size_t{7}, std::size_t{31},
                                 std::size_t{63}, std::size_t{64},
                                 std::size_t{65}, std::size_t{127}}) {
        // Counts straddling the SSE (4) and AVX2 (8) lane widths.
        for (std::size_t count : {std::size_t{0}, std::size_t{1},
                                  std::size_t{3}, std::size_t{4},
                                  std::size_t{5}, std::size_t{8},
                                  std::size_t{9}, std::size_t{31},
                                  std::size_t{64}, std::size_t{100}}) {
          std::vector<std::uint32_t> vals(count);
          for (auto& v : vals) {
            v = static_cast<std::uint32_t>(rng()) & mask;
          }
          const std::vector<std::uint64_t> words =
              PackFields(vals, offset, width);
          const std::uint32_t base = static_cast<std::uint32_t>(rng());
          std::vector<std::uint32_t> want(count), got(count);
          scalar.unpack_bits(words.data(), words.size(), offset, width, base,
                             want.data(), count);
          tier.unpack_bits(words.data(), words.size(), offset, width, base,
                           got.data(), count);
          ASSERT_EQ(want, got) << "level=" << static_cast<int>(level)
                               << " width=" << width << " offset=" << offset
                               << " count=" << count;
          // The scalar reference itself must invert the pack exactly.
          for (std::size_t i = 0; i < count; ++i) {
            ASSERT_EQ(want[i],
                      static_cast<std::uint32_t>(vals[i] + base))
                << "width=" << width << " i=" << i;
          }
        }
      }
    }
  }
}

TEST(DecodeKernelTest, MaxAndZeroValuedFields) {
  // All-ones payloads (every field at its width's max) and all-zeros, at
  // the uint32 extremes with a base that wraps.
  for (simd::Level level : AvailableLevels()) {
    const DecodeKernels& tier = DecodeKernelsForLevel(level);
    for (int width : {1, 7, 8, 16, 17, 31, 32}) {
      const std::uint32_t max_field = static_cast<std::uint32_t>(
          width == 32 ? ~std::uint32_t{0} : (std::uint32_t{1} << width) - 1);
      for (std::uint32_t fill : {std::uint32_t{0}, max_field}) {
        const std::size_t count = 17;
        std::vector<std::uint32_t> vals(count, fill);
        const std::vector<std::uint64_t> words = PackFields(vals, 5, width);
        std::vector<std::uint32_t> got(count);
        const std::uint32_t base = std::numeric_limits<std::uint32_t>::max();
        tier.unpack_bits(words.data(), words.size(), 5, width, base,
                         got.data(), count);
        for (std::size_t i = 0; i < count; ++i) {
          ASSERT_EQ(got[i], static_cast<std::uint32_t>(fill + base))
              << "level=" << static_cast<int>(level) << " width=" << width;
        }
      }
    }
  }
}

TEST(DecodeKernelTest, ExactFitBufferNeverReadsPast) {
  // The last field ends on the very last bit of the heap allocation; any
  // over-read past words + words_len trips ASan.
  std::mt19937_64 rng(0xF17);
  for (simd::Level level : AvailableLevels()) {
    const DecodeKernels& tier = DecodeKernelsForLevel(level);
    for (int width : {1, 3, 8, 13, 32}) {
      for (std::size_t count : {std::size_t{1}, std::size_t{4},
                                std::size_t{9}, std::size_t{64}}) {
        const std::size_t total_bits = count * static_cast<std::size_t>(width);
        const std::size_t offset = (64 - total_bits % 64) % 64;
        std::vector<std::uint32_t> vals(count);
        const std::uint64_t mask = width == 32
                                       ? ~std::uint64_t{0} >> 32
                                       : (std::uint64_t{1} << width) - 1;
        for (auto& v : vals) v = static_cast<std::uint32_t>(rng()) & mask;
        std::vector<std::uint64_t> packed = PackFields(vals, offset, width);
        ASSERT_EQ(offset + total_bits, packed.size() * 64);
        // Re-home into an exactly-sized fresh allocation: ASan red-zones
        // begin immediately after the last word.
        std::vector<std::uint64_t> words(packed);
        words.shrink_to_fit();
        std::vector<std::uint32_t> got(count);
        tier.unpack_bits(words.data(), words.size(), offset, width,
                         /*base=*/0, got.data(), count);
        for (std::size_t i = 0; i < count; ++i) {
          ASSERT_EQ(got[i], vals[i])
              << "level=" << static_cast<int>(level) << " width=" << width
              << " count=" << count;
        }
      }
    }
  }
}

TEST(DecodeKernelTest, EmptyRunIsANoOp) {
  const std::uint64_t word = 0xA5A5A5A5A5A5A5A5ULL;
  for (simd::Level level : AvailableLevels()) {
    const DecodeKernels& tier = DecodeKernelsForLevel(level);
    std::uint32_t sentinel = 0xCAFE;
    tier.unpack_bits(&word, 1, 0, 13, 7, &sentinel, 0);
    EXPECT_EQ(sentinel, 0xCAFEu);  // untouched
    tier.prefix_sum(&sentinel, 0, 99);
    EXPECT_EQ(sentinel, 0xCAFEu);
  }
}

// ---------------------------------------------------------------------------
// prefix_sum: every tier vs scalar, including uint32 wraparound.
// ---------------------------------------------------------------------------

TEST(DecodeKernelTest, PrefixSumMatchesScalarWithWraparound) {
  std::mt19937_64 rng(0x5E9);
  const DecodeKernels& scalar = ScalarDecodeKernels();
  for (simd::Level level : AvailableLevels()) {
    const DecodeKernels& tier = DecodeKernelsForLevel(level);
    for (std::size_t count : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                              std::size_t{4}, std::size_t{5}, std::size_t{7},
                              std::size_t{8}, std::size_t{9}, std::size_t{16},
                              std::size_t{33}, std::size_t{1000}}) {
      std::vector<std::uint32_t> vals(count);
      // Large gaps force wraparound partway through the run.
      for (auto& v : vals) v = static_cast<std::uint32_t>(rng());
      std::vector<std::uint32_t> want = vals, got = vals;
      const std::uint32_t base = static_cast<std::uint32_t>(rng());
      scalar.prefix_sum(want.data(), count, base);
      tier.prefix_sum(got.data(), count, base);
      ASSERT_EQ(want, got) << "level=" << static_cast<int>(level)
                           << " count=" << count;
      // Reference semantics: inclusive scan with carry-in.
      std::uint32_t acc = base;
      for (std::size_t i = 0; i < count; ++i) {
        acc += vals[i];
        ASSERT_EQ(want[i], acc) << "i=" << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Codec fuzz: BitWriter/BitReader and Elias γ/δ round-trips, fixed seed,
// scaled by FSI_STRESS_ITERS.
// ---------------------------------------------------------------------------

TEST(CodecFuzzTest, BitStreamRandomScriptsRoundTrip) {
  const std::size_t iters = 50 * StressIters();
  std::mt19937_64 rng(0xB175);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    // A script is a sequence of (kind, value) ops; replay it through a
    // reader and require exact recovery.
    struct Op {
      int kind;  // 0 = fixed-width, 1 = unary
      std::uint64_t value;
      int bits;
    };
    std::vector<Op> script;
    BitWriter writer;
    const std::size_t ops = 1 + rng() % 200;
    for (std::size_t i = 0; i < ops; ++i) {
      Op op;
      op.kind = rng() % 2;
      if (op.kind == 0) {
        op.bits = static_cast<int>(rng() % 65);
        op.value = op.bits == 64
                       ? rng()
                       : rng() & ((std::uint64_t{1} << op.bits) - 1);
        writer.Write(op.value, op.bits);
      } else {
        op.value = rng() % 300;  // exercises the >= 64-zeros path
        op.bits = 0;
        writer.WriteUnary(op.value);
      }
      script.push_back(op);
    }
    const std::size_t bit_count = writer.BitCount();
    const std::vector<std::uint64_t> words = writer.TakeBuffer();
    BitReader reader(words.data(), bit_count);
    for (const Op& op : script) {
      if (op.kind == 0) {
        ASSERT_EQ(reader.Read(op.bits), op.value) << "iter " << iter;
      } else {
        ASSERT_EQ(reader.ReadUnary(), op.value) << "iter " << iter;
      }
    }
    ASSERT_EQ(reader.position(), bit_count);
  }
}

TEST(CodecFuzzTest, EliasGammaDeltaRoundTrip) {
  const std::size_t iters = 50 * StressIters();
  std::mt19937_64 rng(0xE11A5);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    std::vector<std::uint64_t> values;
    const std::size_t n = 1 + rng() % 500;
    for (std::size_t i = 0; i < n; ++i) {
      // Bias toward small values (the gap regime) but include the full
      // 64-bit range; γ/δ encode strictly positive integers.
      const int magnitude = static_cast<int>(rng() % 64);
      std::uint64_t v = (rng() & ((std::uint64_t{1} << magnitude) - 1)) | 1;
      values.push_back(v);
    }
    BitWriter gw, dw;
    std::size_t gamma_bits = 0, delta_bits = 0;
    for (std::uint64_t v : values) {
      WriteGamma(gw, v);
      WriteDelta(dw, v);
      gamma_bits += static_cast<std::size_t>(GammaBits(v));
      delta_bits += static_cast<std::size_t>(DeltaBits(v));
    }
    // The size formulas must agree with the actual stream length.
    ASSERT_EQ(gw.BitCount(), gamma_bits) << "iter " << iter;
    ASSERT_EQ(dw.BitCount(), delta_bits) << "iter " << iter;
    const auto gwords = gw.buffer();
    const auto dwords = dw.buffer();
    BitReader gr(gwords.data(), gamma_bits);
    BitReader dr(dwords.data(), delta_bits);
    for (std::uint64_t v : values) {
      ASSERT_EQ(ReadGamma(gr), v) << "iter " << iter;
      ASSERT_EQ(ReadDelta(dr), v) << "iter " << iter;
    }
    ASSERT_EQ(gr.position(), gamma_bits);
    ASSERT_EQ(dr.position(), delta_bits);
  }
}

}  // namespace
}  // namespace fsi
