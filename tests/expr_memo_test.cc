// Memoization tests for the expression result cache (api/expr.h).
//
// The contract under test: a cache hit returns a result bitwise
// identical to the cold evaluation it memoized; a mutable-leaf Insert or
// Erase bumps the leaf's version, changing every enclosing node's
// fingerprint, so no query after a write can be served a pre-write
// result.  The concurrency test drives expression batches through
// BatchRunner while a writer churns the leaves — run it under TSan (the
// CI sanitizer legs do) to check the cache's internal locking.

#include "api/expr.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "api/batch_runner.h"
#include "api/engine.h"

namespace fsi {
namespace {

std::size_t StressIters() {
  const char* env = std::getenv("FSI_STRESS_ITERS");
  if (env == nullptr) return 1;
  long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<std::size_t>(v) : 1;
}

TEST(ExprMemoTest, HitIsBitwiseIdenticalToColdEvaluation) {
  Engine engine;
  ASSERT_NE(engine.expr_cache(), nullptr);
  PreparedSet a = engine.Prepare({1, 3, 5, 7, 9, 11});
  PreparedSet b = engine.Prepare({2, 3, 5, 8, 9, 12});
  PreparedSet c = engine.Prepare({5, 9, 12, 40});
  Expr expr = Expr::Diff(Expr::Or({Expr::Set(a), Expr::Set(c)}), Expr::Set(b));

  const ExprCacheStats before = engine.expr_cache()->stats();
  const ElemList cold = engine.Query(expr).Materialize();
  const ExprCacheStats after_cold = engine.expr_cache()->stats();
  EXPECT_GT(after_cold.misses, before.misses);
  EXPECT_GT(after_cold.insertions, before.insertions);

  const ElemList warm = engine.Query(expr).Materialize();
  const ExprCacheStats after_warm = engine.expr_cache()->stats();
  EXPECT_EQ(warm, cold);
  EXPECT_GT(after_warm.hits, after_cold.hits);
  // The warm run re-used the root's entry: no new insertion needed.
  EXPECT_EQ(after_warm.insertions, after_cold.insertions);
}

TEST(ExprMemoTest, StructurallyEqualTreesShareEntries) {
  Engine engine;
  PreparedSet a = engine.Prepare({1, 2, 3, 8});
  PreparedSet b = engine.Prepare({2, 3, 4, 8});
  // Two independently built but structurally identical trees: the second
  // query must hit the entries the first one inserted.
  const ElemList r1 =
      engine.Query(Expr::And({Expr::Set(a), Expr::Set(b)})).Materialize();
  const ExprCacheStats mid = engine.expr_cache()->stats();
  const ElemList r2 =
      engine.Query(Expr::And({Expr::Set(a), Expr::Set(b)})).Materialize();
  const ExprCacheStats end = engine.expr_cache()->stats();
  EXPECT_EQ(r1, r2);
  EXPECT_GT(end.hits, mid.hits);
}

TEST(ExprMemoTest, SharedSubtreeHitsAcrossDifferentQueries) {
  Engine engine;
  PreparedSet a = engine.Prepare({1, 3, 5, 7});
  PreparedSet b = engine.Prepare({3, 5, 8});
  PreparedSet c = engine.Prepare({5, 7, 8});
  Expr shared = Expr::And({Expr::Set(a), Expr::Set(b)});

  engine.Query(shared).Materialize();  // populates the subtree's entry
  const ExprCacheStats mid = engine.expr_cache()->stats();
  // A different enclosing query containing the same subtree.
  const ElemList combined =
      engine.Query(Expr::Or({shared, Expr::Set(c)})).Materialize();
  const ExprCacheStats end = engine.expr_cache()->stats();
  EXPECT_EQ(combined, (ElemList{3, 5, 7, 8}));
  EXPECT_GT(end.hits, mid.hits);
}

TEST(ExprMemoTest, InsertInvalidatesThroughVersionBump) {
  Engine engine;
  PreparedSet a = engine.PrepareMutable({1, 3, 5});
  PreparedSet b = engine.Prepare({3, 5, 9});
  Expr expr = Expr::Or({Expr::Set(a), Expr::Set(b)});

  EXPECT_EQ(engine.Query(expr).Materialize(), (ElemList{1, 3, 5, 9}));
  a.Insert(2);
  // The leaf's version changed, so the old entry's key can never match —
  // the result must include the new element immediately.
  EXPECT_EQ(engine.Query(expr).Materialize(), (ElemList{1, 2, 3, 5, 9}));
  a.Erase(1);
  EXPECT_EQ(engine.Query(expr).Materialize(), (ElemList{2, 3, 5, 9}));
  // Stability: with no further writes, repetition hits and stays equal.
  const ExprCacheStats mid = engine.expr_cache()->stats();
  EXPECT_EQ(engine.Query(expr).Materialize(), (ElemList{2, 3, 5, 9}));
  EXPECT_GT(engine.expr_cache()->stats().hits, mid.hits);
}

TEST(ExprMemoTest, DisabledCacheStillCorrect) {
  EngineOptions options;
  options.expr_cache_bytes = 0;
  Engine engine("Planner", options);
  EXPECT_EQ(engine.expr_cache(), nullptr);
  PreparedSet a = engine.Prepare({1, 2, 3});
  PreparedSet b = engine.Prepare({2, 3, 4});
  Expr expr = Expr::And({Expr::Set(a), Expr::Set(b)});
  EXPECT_EQ(engine.Query(expr).Materialize(), (ElemList{2, 3}));
  EXPECT_EQ(engine.Query(expr).Materialize(), (ElemList{2, 3}));
}

TEST(ExprMemoTest, TinyCacheEvictsButStaysCorrect) {
  EngineOptions options;
  options.expr_cache_bytes = 512;  // a handful of entries at most
  Engine engine("Planner", options);
  std::vector<PreparedSet> sets;
  for (Elem base = 0; base < 40; ++base) {
    sets.push_back(engine.Prepare({base, base + 100, base + 200}));
  }
  for (std::size_t i = 0; i + 1 < sets.size(); ++i) {
    Expr expr = Expr::Or({Expr::Set(sets[i]), Expr::Set(sets[i + 1])});
    const ElemList got = engine.Query(expr).Materialize();
    const Elem lo = static_cast<Elem>(i);
    EXPECT_EQ(got, (ElemList{lo, lo + 1, lo + 100, lo + 101, lo + 200,
                             lo + 201}));
  }
  const ExprCacheStats stats = engine.expr_cache()->stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, 512u);
}

// Concurrent expression batches racing leaf writes.  Correctness here is
// the snapshot contract: each query observes, per leaf, one consistent
// version — so every result must be a union/difference of *some*
// version's contents, which we bound with invariants rather than exact
// oracles.  TSan verifies the cache and snapshot synchronization.
TEST(ExprMemoTest, ConcurrentBatchTrafficUnderChurn) {
  const std::size_t rounds = 20 * StressIters();
  Engine engine;
  PreparedSet a = engine.PrepareMutable({10, 20, 30, 40});
  PreparedSet b = engine.PrepareMutable({20, 40, 60});
  PreparedSet fixed = engine.Prepare({10, 20, 30, 40, 50, 60, 70, 80, 90});

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Elem e = 100;
    while (!stop.load(std::memory_order_relaxed)) {
      a.Insert(e % 90);
      b.Insert((e + 7) % 90);
      a.Erase((e + 31) % 90);
      b.Erase((e + 13) % 90);
      ++e;
    }
  });

  BatchRunner runner(engine, {.num_threads = 4});
  std::vector<Expr> exprs;
  for (int i = 0; i < 32; ++i) {
    // All three shapes; every result is a subset of `fixed`'s contents
    // plus the writer's churn range [0, 90).
    exprs.push_back(Expr::And({Expr::Set(a), Expr::Set(fixed)}));
    exprs.push_back(Expr::Or({Expr::Set(a), Expr::Set(b)}));
    exprs.push_back(Expr::Diff(Expr::Set(fixed), Expr::Set(b)));
    exprs.push_back(
        Expr::AtLeast(2, {Expr::Set(a), Expr::Set(b), Expr::Set(fixed)}));
  }
  for (std::size_t round = 0; round < rounds; ++round) {
    std::vector<ElemList> results =
        runner.Materialize(std::span<const Expr>(exprs));
    ASSERT_EQ(results.size(), exprs.size());
    for (const ElemList& r : results) {
      EXPECT_TRUE(std::is_sorted(r.begin(), r.end()));
      EXPECT_EQ(std::adjacent_find(r.begin(), r.end()), r.end());
      if (!r.empty()) EXPECT_LT(r.back(), 100u);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  // Quiesced: the engine must now agree exactly with a fresh oracle
  // computed from the final contents.
  ElemList final_a = engine.Query(Expr::Set(a)).Materialize();
  ElemList final_b = engine.Query(Expr::Set(b)).Materialize();
  ElemList expect_or;
  std::set_union(final_a.begin(), final_a.end(), final_b.begin(),
                 final_b.end(), std::back_inserter(expect_or));
  EXPECT_EQ(engine.Query(Expr::Or({Expr::Set(a), Expr::Set(b)})).Materialize(),
            expect_or);
}

}  // namespace
}  // namespace fsi
