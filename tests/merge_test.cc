#include "baseline/merge.h"

#include "api/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"
#include "workload/synthetic.h"

namespace fsi {
namespace {

ElemList StdIntersect(const ElemList& a, const ElemList& b) {
  ElemList out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

TEST(MergeTest, TwoWayBasic) {
  ElemList a = {1, 3, 5, 7, 9};
  ElemList b = {3, 4, 5, 6, 9, 10};
  ElemList out;
  MergeIntersect(a, b, &out);
  EXPECT_EQ(out, (ElemList{3, 5, 9}));
}

TEST(MergeTest, TwoWayDisjoint) {
  ElemList a = {1, 2, 3};
  ElemList b = {4, 5, 6};
  ElemList out;
  MergeIntersect(a, b, &out);
  EXPECT_TRUE(out.empty());
}

TEST(MergeTest, TwoWayIdentical) {
  ElemList a = {10, 20, 30};
  ElemList out;
  MergeIntersect(a, a, &out);
  EXPECT_EQ(out, a);
}

TEST(MergeTest, TwoWayEmpty) {
  ElemList a = {};
  ElemList b = {1, 2};
  ElemList out;
  MergeIntersect(a, b, &out);
  EXPECT_TRUE(out.empty());
  MergeIntersect(b, a, &out);
  EXPECT_TRUE(out.empty());
}

TEST(MergeTest, TwoWayAgainstStdRandom) {
  Xoshiro256 rng(81);
  for (int trial = 0; trial < 50; ++trial) {
    std::size_t n1 = 1 + rng.Below(500);
    std::size_t n2 = 1 + rng.Below(500);
    ElemList a = SampleSortedSet(n1, 2000, rng);
    ElemList b = SampleSortedSet(n2, 2000, rng);
    ElemList out;
    MergeIntersect(a, b, &out);
    EXPECT_EQ(out, StdIntersect(a, b));
  }
}

TEST(MergeTest, KWayMatchesCascadedTwoWay) {
  Xoshiro256 rng(83);
  for (int trial = 0; trial < 40; ++trial) {
    std::size_t k = 2 + rng.Below(5);
    std::vector<ElemList> lists;
    for (std::size_t i = 0; i < k; ++i) {
      lists.push_back(SampleSortedSet(100 + rng.Below(400), 1500, rng));
    }
    ElemList expected = lists[0];
    for (std::size_t i = 1; i < k; ++i) {
      expected = StdIntersect(expected, lists[i]);
    }
    std::vector<std::span<const Elem>> spans(lists.begin(), lists.end());
    ElemList out;
    MergeIntersectK(spans, &out);
    EXPECT_EQ(out, expected) << "k=" << k;
  }
}

TEST(MergeTest, KWaySingleList) {
  ElemList a = {1, 5, 9};
  std::vector<std::span<const Elem>> spans = {a};
  ElemList out;
  MergeIntersectK(spans, &out);
  EXPECT_EQ(out, a);
}

TEST(MergeTest, KWayOneEmptyList) {
  ElemList a = {1, 5, 9};
  ElemList b = {};
  ElemList c = {1, 9};
  std::vector<std::span<const Elem>> spans = {a, b, c};
  ElemList out;
  MergeIntersectK(spans, &out);
  EXPECT_TRUE(out.empty());
}

TEST(MergeTest, AlgorithmInterface) {
  MergeIntersection alg;
  EXPECT_EQ(alg.name(), "Merge");
  std::vector<ElemList> lists = {{1, 2, 3, 4}, {2, 4, 6}, {0, 2, 4, 8}};
  EXPECT_EQ(alg.IntersectLists(lists), (ElemList{2, 4}));
}

TEST(MergeTest, PrepareRejectsInvalidInputWhenValidationEnabled) {
  // Full validation is an Engine ValidationPolicy: explicit kFull checks in
  // every build type; the raw Preprocess path validates in Debug only.
  Engine engine("Merge", {.validation = ValidationPolicy::kFull});
  ElemList bad = {3, 1, 2};
  EXPECT_THROW(engine.Prepare(bad), std::invalid_argument);
  ElemList dup = {1, 1, 2};
  EXPECT_THROW(engine.Prepare(dup), std::invalid_argument);
#ifndef NDEBUG
  MergeIntersection alg;
  EXPECT_THROW(alg.Preprocess(bad), std::invalid_argument);
  EXPECT_THROW(alg.Preprocess(dup), std::invalid_argument);
#endif
}

}  // namespace
}  // namespace fsi
