#include "hash/universal_hash.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "util/rng.h"

namespace fsi {
namespace {

TEST(UniversalHashTest, OutputRange) {
  for (int bits : {1, 4, 6, 16, 32}) {
    UniversalHash h(bits, 99);
    std::uint64_t limit = std::uint64_t{1} << bits;
    Xoshiro256 rng(1);
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(h(rng.Next()), limit);
    }
    EXPECT_EQ(h.out_bits(), bits);
  }
}

TEST(UniversalHashTest, Deterministic) {
  UniversalHash h1(6, 123);
  UniversalHash h2(6, 123);
  for (std::uint64_t x = 0; x < 100; ++x) EXPECT_EQ(h1(x), h2(x));
}

TEST(UniversalHashTest, CollisionProbabilityNearUniversalBound) {
  // 2-universality: Pr[h(x1) = h(x2)] <= 1/2^d over the family.  Estimate
  // over many random family members and a fixed pair; the empirical rate
  // should be within 3x of 1/64 for d = 6 (generous statistical slack).
  const int kTrials = 20000;
  SplitMix64 seeds(2024);
  int collisions = 0;
  for (int i = 0; i < kTrials; ++i) {
    WordHash h(seeds.Next());
    if (h(123456789) == h(987654321)) ++collisions;
  }
  double rate = static_cast<double>(collisions) / kTrials;
  EXPECT_LT(rate, 3.0 / 64);
  EXPECT_GT(rate, 0.0);  // some collisions must occur at this sample size
}

TEST(WordHashTest, ImageIsSingleBitOfHashValue) {
  WordHash h(7);
  for (std::uint64_t x = 0; x < 500; ++x) {
    int y = h(x);
    ASSERT_GE(y, 0);
    ASSERT_LT(y, 64);
    EXPECT_EQ(h.Image(x), WordBit(y));
  }
}

TEST(WordHashTest, ValuesRoughlyUniform) {
  WordHash h(31337);
  std::array<int, 64> counts{};
  const int kSamples = 64 * 1000;
  Xoshiro256 rng(9);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[static_cast<std::size_t>(h(rng.Next()))];
  }
  for (int c : counts) {
    // Expect 1000 per bucket; allow +-40%.
    EXPECT_GT(c, 600);
    EXPECT_LT(c, 1400);
  }
}

TEST(WordHashFamilyTest, IndependentMembers) {
  WordHashFamily fam(4, 555);
  ASSERT_EQ(fam.size(), 4);
  // Members must not be identical functions.
  int differing = 0;
  for (std::uint64_t x = 0; x < 64; ++x) {
    if (fam[0](x) != fam[1](x)) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(WordHashFamilyTest, AccumulateImagesMatchesMembers) {
  WordHashFamily fam(3, 77);
  Word images[3] = {0, 0, 0};
  fam.AccumulateImages(42, images);
  fam.AccumulateImages(43, images);
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ(images[j], fam[j].Image(42) | fam[j].Image(43));
  }
}

}  // namespace
}  // namespace fsi
