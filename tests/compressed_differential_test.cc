// The oracle-differential compression suite: a space-budget engine whose
// every set is compressed must be bitwise-identical to the uncompressed
// planner engine everywhere results can be observed —
//
//   * every Query sink (Materialize / Count / Unordered / Limit / Visit),
//   * boolean expression trees (And / Or / Diff / AtLeast),
//   * the sharded serving tier at shard counts {1, 2, 4, 8},
//   * mutable-set churn composed with compressed sets in one query,
//   * the snapshot round trip (compressed sections restore compressed),
//   * the InvertedIndex built over a budgeted engine.
//
// The oracle is std::set_intersection over the raw lists where results
// are re-derivable, and the budget-0 engine elsewhere.  Corpora sweep
// densities from near-disjoint to fully dense.  The corruption matrix
// extends the snapshot one: malformed compressed sections must produce a
// typed storage::SnapshotError — never an out-of-bounds read (the ASan
// leg enforces the "never" part).  FSI_STRESS_ITERS scales the random
// sweeps (nightly CI runs 10x).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fsi.h"
#include "index/inverted_index.h"
#include "storage/mapped_file.h"
#include "storage/snapshot.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace fsi {
namespace {

using storage::SnapshotError;
using storage::SnapshotErrorCode;

std::size_t StressIters() {
  const char* env = std::getenv("FSI_STRESS_ITERS");
  if (env == nullptr) return 1;
  long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<std::size_t>(v) : 1;
}

ElemList GroundTruth(const std::vector<ElemList>& lists) {
  if (lists.empty()) return {};
  ElemList acc = lists[0];
  for (std::size_t i = 1; i < lists.size(); ++i) {
    ElemList next;
    std::set_intersection(acc.begin(), acc.end(), lists[i].begin(),
                          lists[i].end(), std::back_inserter(next));
    acc.swap(next);
  }
  return acc;
}

/// The engine under test: every set over the 1-byte budget, no hot/small
/// carve-out — the all-compressed extreme.
Engine CompressedEngine() {
  return Engine("Planner:calibration=off",
                EngineOptions{.space_budget_bytes = 1,
                              .min_compress_size = 0});
}

/// The oracle engine: identical spec, unlimited space.
Engine UncompressedEngine() { return Engine("Planner:calibration=off"); }

std::vector<PreparedSet> PrepareAll(const Engine& engine,
                                    const std::vector<ElemList>& lists) {
  std::vector<PreparedSet> prepared;
  prepared.reserve(lists.size());
  for (const ElemList& l : lists) prepared.push_back(engine.Prepare(l));
  return prepared;
}

std::vector<const PreparedSet*> Pointers(
    const std::vector<PreparedSet>& prepared) {
  std::vector<const PreparedSet*> ptrs;
  for (const PreparedSet& s : prepared) ptrs.push_back(&s);
  return ptrs;
}

/// Density-swept corpora: the same shapes at intersection densities from
/// ~0% to 100% of the smallest list.
std::vector<std::vector<ElemList>> DensityCorpora(Xoshiro256& rng) {
  std::vector<std::vector<ElemList>> corpora;
  const std::vector<std::size_t> sizes = {300, 1200, 5000};
  for (std::size_t r : {std::size_t{0}, std::size_t{3}, std::size_t{30},
                        std::size_t{150}, std::size_t{300}}) {
    corpora.push_back(GenerateIntersectingSets(sizes, r, 1 << 20, rng));
  }
  // A dense small-universe pair (every element adjacent to the other
  // set's) and a single-element overlap.
  corpora.push_back(GenerateIntersectingSets({2000, 2000}, 1000, 1 << 12,
                                             rng));
  corpora.push_back(GenerateIntersectingSets({2, 4000}, 1, 1 << 20, rng));
  return corpora;
}

// ---------------------------------------------------------------------------
// Every sink, every density.
// ---------------------------------------------------------------------------

TEST(CompressedDifferentialTest, EverySinkBitwiseIdentical) {
  Xoshiro256 rng(0xD1FF);
  Engine plain = UncompressedEngine();
  Engine comp = CompressedEngine();
  std::size_t corpus_id = 0;
  for (const auto& lists : DensityCorpora(rng)) {
    SCOPED_TRACE("corpus " + std::to_string(corpus_id++));
    auto p = PrepareAll(plain, lists);
    auto c = PrepareAll(comp, lists);
    for (const PreparedSet& s : c) ASSERT_TRUE(s.compressed());
    const ElemList truth = GroundTruth(lists);

    // Materialize (ordered).
    EXPECT_EQ(plain.Query(p).Materialize(), truth);
    EXPECT_EQ(comp.Query(c).Materialize(), truth);
    // Count.
    EXPECT_EQ(comp.Query(c).Count(), truth.size());
    // Unordered: same multiset of elements.
    ElemList unordered = comp.Query(c).Unordered().Materialize();
    std::sort(unordered.begin(), unordered.end());
    EXPECT_EQ(unordered, truth);
    // Limit.
    const std::size_t limit = truth.size() / 2;
    ElemList limited = comp.Query(c).Limit(limit).Materialize();
    EXPECT_EQ(limited,
              ElemList(truth.begin(),
                       truth.begin() + static_cast<std::ptrdiff_t>(limit)));
    // Visit.
    ElemList visited;
    comp.Query(c).Visit([&visited](Elem e) { visited.push_back(e); });
    std::sort(visited.begin(), visited.end());
    EXPECT_EQ(visited, truth);
  }
}

TEST(CompressedDifferentialTest, PairwiseRandomSweep) {
  const std::size_t iters = 20 * StressIters();
  Xoshiro256 rng(0xABCD);
  Engine plain = UncompressedEngine();
  Engine comp = CompressedEngine();
  for (std::size_t iter = 0; iter < iters; ++iter) {
    const std::size_t n1 = 1 + rng.Next() % 3000;
    const std::size_t n2 = 1 + rng.Next() % 3000;
    const std::size_t r = rng.Next() % (std::min(n1, n2) + 1);
    const auto lists =
        GenerateIntersectingSets({n1, n2}, r, 1 << 21, rng);
    auto p = PrepareAll(plain, lists);
    auto c = PrepareAll(comp, lists);
    ASSERT_EQ(comp.Query(c).Materialize(), plain.Query(p).Materialize())
        << "iter " << iter << " n1=" << n1 << " n2=" << n2 << " r=" << r;
  }
}

// ---------------------------------------------------------------------------
// Expression trees.
// ---------------------------------------------------------------------------

TEST(CompressedDifferentialTest, ExpressionTreesMatch) {
  Xoshiro256 rng(0xE59);
  Engine plain = UncompressedEngine();
  Engine comp = CompressedEngine();
  const auto lists =
      GenerateIntersectingSets({400, 900, 2500, 6000}, 80, 1 << 20, rng);
  auto p = PrepareAll(plain, lists);
  auto c = PrepareAll(comp, lists);

  // The same tree built over each engine's sets.
  const auto build = [](const std::vector<PreparedSet>& s) {
    std::vector<Expr> all;
    for (const PreparedSet& x : s) all.push_back(Expr::Set(x));
    // ((s0 & s1) | (s2 \ s3)) and an at-least-2 over everything.
    Expr tree = Expr::Or({Expr::And({all[0], all[1]}),
                          Expr::Diff(all[2], all[3])});
    Expr atleast = Expr::AtLeast(2, {all[0], all[1], all[2], all[3]});
    return std::pair<Expr, Expr>(std::move(tree), std::move(atleast));
  };
  auto [ptree, patleast] = build(p);
  auto [ctree, catleast] = build(c);
  EXPECT_EQ(comp.Query(ctree).Materialize(), plain.Query(ptree).Materialize());
  EXPECT_EQ(comp.Query(catleast).Materialize(),
            plain.Query(patleast).Materialize());
  EXPECT_EQ(comp.Query(ctree).Count(), plain.Query(ptree).Count());
  // Run the tree twice: the second pass may hit the ExprCache — results
  // must not change.
  EXPECT_EQ(comp.Query(ctree).Materialize(), plain.Query(ptree).Materialize());
}

// ---------------------------------------------------------------------------
// The sharded serving tier.
// ---------------------------------------------------------------------------

TEST(CompressedDifferentialTest, ShardedServeMatchesAcrossShardCounts) {
  Xoshiro256 rng(0x5A4D);
  const auto lists =
      GenerateIntersectingSets({800, 2000, 7000}, 120, 1 << 20, rng);
  const ElemList truth = GroundTruth(lists);
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ShardedEngine engine({.num_shards = shards,
                          .universe_bound = 1 << 20,
                          .spec = "Planner:calibration=off",
                          .space_budget_bytes = 1,
                          .min_compress_size = 0});
    std::vector<ShardedSet> sets;
    for (const ElemList& l : lists) sets.push_back(engine.Prepare(l));
    // Every non-empty shard slice of every set must be compressed.
    for (const ShardedSet& s : sets) {
      for (std::size_t i = 0; i < s.num_shards(); ++i) {
        if (s.shard_size(i) > 0) {
          EXPECT_TRUE(s.shard(i).compressed());
        }
      }
    }
    ServeResult flat = engine.Serve({&sets[0], &sets[1], &sets[2]});
    ASSERT_TRUE(flat.ok());
    EXPECT_EQ(flat.elems, truth);
    // An expression query through the same tier.
    ShardedExpr expr = ShardedExpr::And(
        {ShardedExpr::Set(sets[0]),
         ShardedExpr::Or({ShardedExpr::Set(sets[1]),
                          ShardedExpr::Set(sets[2])})});
    ElemList expr_truth;
    {
      Engine plain = UncompressedEngine();
      auto p = PrepareAll(plain, lists);
      Expr tree = Expr::And(
          {Expr::Set(p[0]), Expr::Or({Expr::Set(p[1]), Expr::Set(p[2])})});
      expr_truth = plain.Query(tree).Materialize();
    }
    ServeResult served = engine.Serve(expr);
    ASSERT_TRUE(served.ok());
    EXPECT_EQ(served.elems, expr_truth);
  }
}

// ---------------------------------------------------------------------------
// Mutable churn composed with compressed sets.
// ---------------------------------------------------------------------------

TEST(CompressedDifferentialTest, MutableChurnAgainstCompressedSets) {
  Xoshiro256 rng(0xC4A2);
  Engine comp = CompressedEngine();
  const auto lists = GenerateIntersectingSets({1000, 4000}, 200, 1 << 18, rng);
  PreparedSet fixed = comp.Prepare(lists[1]);
  ASSERT_TRUE(fixed.compressed());
  PreparedSet churn = comp.PrepareMutable(lists[0]);
  ASSERT_FALSE(churn.compressed());  // mutable sets stay uncompressed

  ElemList live = lists[0];  // the oracle's view of the mutable set
  const std::size_t rounds = 30 * StressIters();
  for (std::size_t round = 0; round < rounds; ++round) {
    const Elem e = static_cast<Elem>(rng.Next() % (1 << 18));
    if (rng.Next() % 2 == 0) {
      churn.Insert(e);
      auto it = std::lower_bound(live.begin(), live.end(), e);
      if (it == live.end() || *it != e) live.insert(it, e);
    } else {
      churn.Erase(e);
      auto it = std::lower_bound(live.begin(), live.end(), e);
      if (it != live.end() && *it == e) live.erase(it);
    }
    if (round % 5 == 4) {
      ElemList truth;
      std::set_intersection(live.begin(), live.end(), lists[1].begin(),
                            lists[1].end(), std::back_inserter(truth));
      ASSERT_EQ(comp.Query({&churn, &fixed}).Materialize(), truth)
          << "round " << round;
      ASSERT_EQ(comp.Query({&churn, &fixed}).Count(), truth.size());
    }
  }
}

// ---------------------------------------------------------------------------
// Snapshot round trip: compressed sets persist compressed.
// ---------------------------------------------------------------------------

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "fsi_cdiff_" + name;
}

TEST(CompressedSnapshotTest, RoundTripRestoresCompressedRepresentation) {
  const std::string path = TempPath("roundtrip");
  Xoshiro256 rng(0x57AB);
  const auto lists =
      GenerateIntersectingSets({1500, 3000, 9000}, 150, 1 << 20, rng);
  const ElemList truth = GroundTruth(lists);
  {
    Engine comp = CompressedEngine();
    auto prepared = PrepareAll(comp, lists);
    for (const PreparedSet& s : prepared) ASSERT_TRUE(s.compressed());
    comp.SaveSnapshot(path, std::span<const PreparedSet>(prepared));
  }
  LoadedSnapshot loaded = Engine::LoadSnapshot(path);
  EXPECT_EQ(loaded.info.sets_compressed, lists.size());
  EXPECT_EQ(loaded.info.sets_rebuilt, 0u);
  ASSERT_EQ(loaded.sets.size(), lists.size());
  for (const PreparedSet& s : loaded.sets) {
    EXPECT_TRUE(s.compressed());
  }
  EXPECT_EQ(loaded.engine.Query(Pointers(loaded.sets)).Materialize(), truth);
  std::remove(path.c_str());
}

TEST(CompressedSnapshotTest, IndexOverBudgetedEngineRoundTrips) {
  const std::string path = TempPath("index");
  std::vector<std::vector<std::string>> docs;
  // ~1500 docs over 4 terms: long enough postings to be worth compressing.
  for (std::size_t i = 0; i < 1500; ++i) {
    std::vector<std::string> terms = {"common"};
    if (i % 2 == 0) terms.push_back("even");
    if (i % 3 == 0) terms.push_back("third");
    if (i % 7 == 0) terms.push_back("seventh");
    docs.push_back(std::move(terms));
  }
  ElemList want_even_third;
  {
    InvertedIndex index(CompressedEngine());
    for (std::size_t i = 0; i < docs.size(); ++i) {
      index.AddDocument(static_cast<Elem>(i + 1), docs[i]);
    }
    index.Finalize();
    want_even_third = index.Query(std::vector<std::string>{"even", "third"});
    // The oracle: multiples of 6 (shifted by the 1-based doc id).
    ASSERT_FALSE(want_even_third.empty());
    for (Elem e : want_even_third) ASSERT_EQ((e - 1) % 6, 0u);
    index.Save(path);
  }
  SnapshotInfo info;
  InvertedIndex reloaded = InvertedIndex::Open(path, {}, &info);
  EXPECT_GT(info.sets_compressed, 0u);
  EXPECT_EQ(reloaded.Query(std::vector<std::string>{"even", "third"}),
            want_even_third);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Corruption matrix: malformed compressed sections are typed errors.
// ---------------------------------------------------------------------------

class CompressedCorruptionTest : public testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs each test as its own process, possibly
    // in parallel — a shared path would let one test truncate the file
    // under another's mmap.
    path_ = TempPath(
        std::string("corrupt_") +
        testing::UnitTest::GetInstance()->current_test_info()->name());
    Xoshiro256 rng(0xBAD);
    const auto lists =
        GenerateIntersectingSets({700, 1400}, 60, 1 << 18, rng);
    Engine comp = CompressedEngine();
    auto prepared = PrepareAll(comp, lists);
    for (const PreparedSet& s : prepared) ASSERT_TRUE(s.compressed());
    comp.SaveSnapshot(path_, std::span<const PreparedSet>(prepared));

    std::ifstream in(path_, std::ios::binary);
    std::vector<char> chars((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    bytes_.resize(chars.size());
    std::memcpy(bytes_.data(), chars.data(), chars.size());

    // Locate the compressed section via the container's own reader.
    storage::SnapshotReader reader(bytes_);
    for (const storage::SectionEntry& e : reader.entries()) {
      if (e.type == storage::kSectionCompressed) {
        section_offset_ = static_cast<std::size_t>(e.offset);
        section_size_ = static_cast<std::size_t>(e.size);
      }
    }
    ASSERT_GT(section_size_, 0u) << "compressed section missing";
  }

  void TearDown() override { std::remove(path_.c_str()); }

  /// Patches the in-memory image back to disk and loads with checksum
  /// verification OFF, so the test exercises the structural validation
  /// behind the CRC, not the CRC itself.  Returns the error code, or
  /// nullopt if the load succeeded.
  std::optional<SnapshotErrorCode> PatchedLoadError() {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes_.data()),
              static_cast<std::streamsize>(bytes_.size()));
    out.close();
    try {
      (void)Engine::LoadSnapshot(path_, {.verify_checksums = false});
    } catch (const SnapshotError& e) {
      return e.code();
    }
    return std::nullopt;
  }

  /// The byte offset of field `field_offset` inside compressed record `i`.
  std::size_t RecordField(std::size_t i, std::size_t field_offset) const {
    return section_offset_ + i * 72 + field_offset;
  }

  void Patch64(std::size_t at, std::uint64_t value) {
    std::memcpy(bytes_.data() + at, &value, sizeof(value));
  }
  void Patch32(std::size_t at, std::uint32_t value) {
    std::memcpy(bytes_.data() + at, &value, sizeof(value));
  }

  std::string path_;
  std::vector<std::byte> bytes_;
  std::size_t section_offset_ = 0;
  std::size_t section_size_ = 0;
};

TEST_F(CompressedCorruptionTest, BitFlipIsCaughtByTheChecksumWhenOn) {
  bytes_[section_offset_ + section_size_ / 2] ^= std::byte{0x10};
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes_.data()),
            static_cast<std::streamsize>(bytes_.size()));
  out.close();
  try {
    (void)Engine::LoadSnapshot(path_);  // verify_checksums defaults on
    FAIL() << "corrupt section loaded";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), SnapshotErrorCode::kChecksum);
  }
}

TEST_F(CompressedCorruptionTest, OutOfRangeSetIndex) {
  Patch32(RecordField(0, 0), 0xFFFF);  // set_index far past set_count
  auto code = PatchedLoadError();
  ASSERT_TRUE(code.has_value());
  EXPECT_EQ(*code, SnapshotErrorCode::kCorrupt);
}

TEST_F(CompressedCorruptionTest, DuplicateSetIndex) {
  // Both records claim set 0.
  std::uint32_t first = 0;
  std::memcpy(&first, bytes_.data() + RecordField(0, 0), sizeof(first));
  Patch32(RecordField(1, 0), first);
  auto code = PatchedLoadError();
  ASSERT_TRUE(code.has_value());
  EXPECT_EQ(*code, SnapshotErrorCode::kCorrupt);
}

TEST_F(CompressedCorruptionTest, UnknownCodec) {
  Patch32(RecordField(0, 4), 77);
  auto code = PatchedLoadError();
  ASSERT_TRUE(code.has_value());
  EXPECT_EQ(*code, SnapshotErrorCode::kCorrupt);
}

TEST_F(CompressedCorruptionTest, ImageCountMismatch) {
  Patch32(RecordField(0, 12), 9);  // m != the engine's compressed m
  auto code = PatchedLoadError();
  ASSERT_TRUE(code.has_value());
  EXPECT_EQ(*code, SnapshotErrorCode::kCorrupt);
}

TEST_F(CompressedCorruptionTest, BitsRefOutOfPayloadBounds) {
  Patch64(RecordField(0, 40), std::uint64_t{1} << 40);  // bits.offset
  auto code = PatchedLoadError();
  ASSERT_TRUE(code.has_value());
  EXPECT_EQ(*code, SnapshotErrorCode::kCorrupt);
}

TEST_F(CompressedCorruptionTest, SkipsRefOutOfPayloadBounds) {
  Patch64(RecordField(0, 56), std::uint64_t{1} << 40);  // skips.offset
  auto code = PatchedLoadError();
  ASSERT_TRUE(code.has_value());
  EXPECT_EQ(*code, SnapshotErrorCode::kCorrupt);
}

TEST_F(CompressedCorruptionTest, BitCountBeyondTheBitsArray) {
  Patch64(RecordField(0, 32), std::uint64_t{1} << 30);  // bit_count
  auto code = PatchedLoadError();
  ASSERT_TRUE(code.has_value());
  EXPECT_EQ(*code, SnapshotErrorCode::kCorrupt);
}

TEST_F(CompressedCorruptionTest, InflatedElementCount) {
  Patch64(RecordField(0, 16), std::uint64_t{1} << 30);  // n
  auto code = PatchedLoadError();
  ASSERT_TRUE(code.has_value());
  EXPECT_EQ(*code, SnapshotErrorCode::kCorrupt);
}

TEST_F(CompressedCorruptionTest, TruncatedSectionNotARecordMultiple) {
  // Shrink the section's declared size by one byte (the entry is not
  // itself checksummed; the structural size check must fire).
  storage::SnapshotReader reader(bytes_);
  const auto entries = reader.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].type == storage::kSectionCompressed) {
      const std::size_t entry_at =
          static_cast<std::size_t>(reader.header().table_offset) +
          i * sizeof(storage::SectionEntry) +
          offsetof(storage::SectionEntry, size);
      Patch64(entry_at, entries[i].size - 1);
    }
  }
  auto code = PatchedLoadError();
  ASSERT_TRUE(code.has_value());
  EXPECT_EQ(*code, SnapshotErrorCode::kCorrupt);
}

TEST_F(CompressedCorruptionTest, FuzzedRecordBytesNeverCrash) {
  // Randomly clobber compressed-record fields; every outcome must be a
  // clean load or a typed SnapshotError — never UB (ASan enforces).
  const std::size_t iters = 40 * StressIters();
  Xoshiro256 rng(0xF022);
  const std::vector<std::byte> pristine = bytes_;
  for (std::size_t iter = 0; iter < iters; ++iter) {
    bytes_ = pristine;
    const std::size_t flips = 1 + rng.Next() % 8;
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t at = section_offset_ + rng.Next() % section_size_;
      bytes_[at] ^= std::byte{static_cast<unsigned char>(
          1u << (rng.Next() % 8))};
    }
    (void)PatchedLoadError();  // either outcome is fine; crashing is not
  }
}

}  // namespace
}  // namespace fsi
