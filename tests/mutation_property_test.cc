// Differential property tests for mutable sets (Engine::PrepareMutable).
//
// The core invariant of the mutability layer: after ANY interleaving of
// Insert / Erase / Compact on a mutable set, every query over it returns
// results bitwise identical to a fresh Engine querying sets prepared from
// the equivalent final content.  Randomized mutation scripts are replayed
// against a std::set<Elem> model and the two worlds compared across every
// registered algorithm (including hidden ones) and every sink —
// Materialize, ExecuteInto, Count, Unordered, Visit, Limit.
//
// FSI_STRESS_ITERS multiplies the number of random scripts per algorithm
// (default 1; the nightly CI leg runs 10) with per-iteration fixed seeds,
// so every failure is reproducible from the test name + iteration alone.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "fsi.h"
#include "index/inverted_index.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace fsi {
namespace {

std::size_t StressIters() {
  const char* env = std::getenv("FSI_STRESS_ITERS");
  if (env == nullptr) return 1;
  long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<std::size_t>(v) : 1;
}

ElemList GroundTruth(const std::vector<ElemList>& lists) {
  if (lists.empty()) return {};
  ElemList acc = lists[0];
  for (std::size_t i = 1; i < lists.size(); ++i) {
    ElemList next;
    std::set_intersection(acc.begin(), acc.end(), lists[i].begin(),
                          lists[i].end(), std::back_inserter(next));
    acc.swap(next);
  }
  return acc;
}

ElemList ToList(const std::set<Elem>& model) {
  return ElemList(model.begin(), model.end());
}

// Runs one query through every sink of both engines and demands bitwise
// agreement with `expected` everywhere.  `mutated` queries the live
// mutable handles; `fresh_sets` are the same effective contents prepared
// immutably on a fresh engine.
void ExpectAllSinksAgree(const Engine& engine,
                         const std::vector<const PreparedSet*>& mutated,
                         const Engine& fresh_engine,
                         const std::vector<const PreparedSet*>& fresh_sets,
                         const ElemList& expected, const std::string& label) {
  EXPECT_EQ(engine.Query(mutated).Materialize(), expected) << label;
  EXPECT_EQ(fresh_engine.Query(fresh_sets).Materialize(), expected) << label;

  ElemList into;
  QueryStats stats = engine.Query(mutated).ExecuteInto(&into);
  EXPECT_EQ(into, expected) << label;
  EXPECT_EQ(stats.result_size, expected.size()) << label;

  EXPECT_EQ(engine.Query(mutated).Count(), expected.size()) << label;

  ElemList unordered = engine.Query(mutated).Unordered().Materialize();
  std::sort(unordered.begin(), unordered.end());
  EXPECT_EQ(unordered, expected) << label;

  ElemList visited;
  engine.Query(mutated).Visit([&](Elem e) { visited.push_back(e); });
  EXPECT_EQ(visited, expected) << label;

  std::size_t cap = std::min<std::size_t>(3, expected.size());
  ElemList limited = engine.Query(mutated).Limit(cap).Materialize();
  ElemList head(expected.begin(), expected.begin() + cap);
  EXPECT_EQ(limited, head) << label;
}

Engine MakeEngine(const std::string& name) {
  // The planner's calibration probe is environment-dependent; pin the
  // built-in constants so plans (and thus execution paths) are
  // deterministic across machines.
  if (name == "Planner" || name == "auto") {
    return Engine("Planner:calibration=off");
  }
  return Engine(name, {.validation = ValidationPolicy::kFull});
}

// ---------------------------------------------------------------------------
// Randomized differential scripts, every algorithm x every sink.
// ---------------------------------------------------------------------------

class MutationAlgorithmTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MutationAlgorithmTest, RandomScriptsMatchFreshEngine) {
  const std::string& name = GetParam();
  Engine engine = MakeEngine(name);
  const std::size_t iters = 2 * StressIters();
  for (std::size_t iter = 0; iter < iters; ++iter) {
    Xoshiro256 rng(0x5e7c0de5ULL + 977 * iter);
    const std::uint64_t universe = 1 << 18;

    // Two immutable companions plus one mutable protagonist (IntGroup has
    // arity 2, so it gets a single companion).
    std::vector<std::size_t> sizes = {400, 700, 2400};
    if (sizes.size() > engine.max_query_sets()) sizes.resize(2);
    auto lists = GenerateIntersectingSets(sizes, 60, universe, rng);

    // Manual compaction only: the script decides exactly when the delta
    // tier folds into the base, covering base-heavy, delta-heavy and
    // just-compacted shapes.  (Background compaction is exercised by
    // read_while_write_test.cc.)
    PreparedSet target = engine.PrepareMutable(
        lists[0], {.background_compaction = false});
    std::set<Elem> model(lists[0].begin(), lists[0].end());

    std::vector<PreparedSet> companions;
    for (std::size_t i = 1; i < lists.size(); ++i) {
      companions.push_back(engine.Prepare(lists[i]));
    }

    const std::size_t kOps = 300;
    std::uint64_t last_version = target.version();
    for (std::size_t op = 0; op < kOps; ++op) {
      switch (rng.Below(6)) {
        case 0: {  // insert a fresh element
          Elem x = static_cast<Elem>(rng.Below(universe));
          EXPECT_EQ(target.Insert(x), model.insert(x).second);
          break;
        }
        case 1: {  // insert an element already present (no-op path)
          if (model.empty()) break;
          Elem x = *std::next(model.begin(),
                              static_cast<long>(rng.Below(model.size())));
          EXPECT_FALSE(target.Insert(x));
          break;
        }
        case 2: {  // erase an element of the current effective set
          if (model.empty()) break;
          Elem x = *std::next(model.begin(),
                              static_cast<long>(rng.Below(model.size())));
          EXPECT_TRUE(target.Erase(x));
          model.erase(x);
          break;
        }
        case 3: {  // erase a random value (usually missing: no-op path)
          Elem x = static_cast<Elem>(rng.Below(universe));
          EXPECT_EQ(target.Erase(x), model.erase(x) > 0);
          break;
        }
        case 4: {  // tombstone revocation: erase a member, reinsert it
          if (model.empty()) break;
          Elem x = *std::next(model.begin(),
                              static_cast<long>(rng.Below(model.size())));
          EXPECT_TRUE(target.Erase(x));
          EXPECT_TRUE(target.Insert(x));
          break;
        }
        case 5: {  // occasional synchronous compaction
          if (rng.Below(10) == 0) {
            target.Compact();
            EXPECT_EQ(target.delta_size(), 0u);
          }
          break;
        }
      }
      // Mutations (and compactions) bump the version; no-ops never do.
      EXPECT_GE(target.version(), last_version);
      last_version = target.version();
      if (op % 37 == 0) {
        Elem probe = static_cast<Elem>(rng.Below(universe));
        EXPECT_EQ(target.Contains(probe), model.count(probe) > 0);
      }
    }

    EXPECT_EQ(target.size(), model.size());

    // The differential check: the mutated world vs a fresh engine
    // prepared from the model's final content.
    Engine fresh = MakeEngine(name);
    std::vector<ElemList> final_lists;
    final_lists.push_back(ToList(model));
    for (std::size_t i = 1; i < lists.size(); ++i) {
      final_lists.push_back(lists[i]);
    }
    ElemList expected = GroundTruth(final_lists);

    std::vector<PreparedSet> fresh_prepared;
    for (const ElemList& l : final_lists) fresh_prepared.push_back(fresh.Prepare(l));

    std::vector<const PreparedSet*> mutated{&target};
    std::vector<const PreparedSet*> fresh_sets{&fresh_prepared[0]};
    for (std::size_t i = 0; i < companions.size(); ++i) {
      mutated.push_back(&companions[i]);
      fresh_sets.push_back(&fresh_prepared[i + 1]);
    }
    std::string label = name + " iter=" + std::to_string(iter) +
                        " delta=" + std::to_string(target.delta_size());
    ExpectAllSinksAgree(engine, mutated, fresh, fresh_sets, expected, label);

    // And once more after folding the remaining delta into the base: the
    // compacted structure must be indistinguishable too.
    target.Compact();
    EXPECT_EQ(target.delta_size(), 0u);
    ExpectAllSinksAgree(engine, mutated, fresh, fresh_sets, expected,
                        label + " post-compact");
  }
}

TEST_P(MutationAlgorithmTest, AllMutableQueryMatchesFreshEngine) {
  const std::string& name = GetParam();
  Engine engine = MakeEngine(name);
  Engine fresh = MakeEngine(name);
  Xoshiro256 rng(0xa11e11ULL);
  std::vector<std::size_t> sizes = {300, 500, 800};
  if (sizes.size() > engine.max_query_sets()) sizes.resize(2);
  auto lists = GenerateIntersectingSets(sizes, 45, 1 << 17, rng);

  std::vector<PreparedSet> mutable_sets;
  std::vector<std::set<Elem>> models;
  for (const ElemList& l : lists) {
    mutable_sets.push_back(
        engine.PrepareMutable(l, {.background_compaction = false}));
    models.emplace_back(l.begin(), l.end());
  }
  // Mutate every set, so the fixup handles tombstones and insert buffers
  // from several sets of one query at once.
  for (std::size_t s = 0; s < mutable_sets.size(); ++s) {
    for (std::size_t op = 0; op < 120; ++op) {
      Elem x = static_cast<Elem>(rng.Below(1 << 17));
      if (rng.Below(2) == 0) {
        EXPECT_EQ(mutable_sets[s].Insert(x), models[s].insert(x).second);
      } else {
        EXPECT_EQ(mutable_sets[s].Erase(x), models[s].erase(x) > 0);
      }
    }
  }

  std::vector<ElemList> final_lists;
  for (const auto& m : models) final_lists.push_back(ToList(m));
  ElemList expected = GroundTruth(final_lists);

  std::vector<PreparedSet> fresh_prepared;
  for (const ElemList& l : final_lists) fresh_prepared.push_back(fresh.Prepare(l));
  std::vector<const PreparedSet*> mutated, fresh_sets;
  for (std::size_t i = 0; i < mutable_sets.size(); ++i) {
    mutated.push_back(&mutable_sets[i]);
    fresh_sets.push_back(&fresh_prepared[i]);
  }
  ExpectAllSinksAgree(engine, mutated, fresh, fresh_sets, expected, name);
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredAlgorithms, MutationAlgorithmTest,
    ::testing::ValuesIn([] {
      std::vector<std::string> names;
      for (auto n : AlgorithmRegistry::Global().Names(/*include_hidden=*/true))
        names.emplace_back(n);
      return names;
    }()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// ---------------------------------------------------------------------------
// Deterministic edge cases (default planner engine).
// ---------------------------------------------------------------------------

TEST(MutationEdgeTest, MutationOnImmutableHandleThrows) {
  Engine engine("Merge");
  PreparedSet s = engine.Prepare({1, 2, 3});
  EXPECT_FALSE(s.is_mutable());
  EXPECT_THROW(s.Insert(4), std::logic_error);
  EXPECT_THROW(s.Erase(1), std::logic_error);
  EXPECT_THROW(s.Compact(), std::logic_error);
}

TEST(MutationEdgeTest, InsertEraseReturnValues) {
  Engine engine("Planner:calibration=off");
  PreparedSet s = engine.PrepareMutable({10, 20, 30});
  EXPECT_TRUE(s.is_mutable());
  EXPECT_FALSE(s.Insert(20));   // already in the base
  EXPECT_TRUE(s.Insert(25));
  EXPECT_FALSE(s.Insert(25));   // already in the insert buffer
  EXPECT_TRUE(s.Erase(10));
  EXPECT_FALSE(s.Erase(10));    // already tombstoned
  EXPECT_FALSE(s.Erase(999));   // never present
  EXPECT_TRUE(s.Erase(25));     // cancels the buffered insert
  EXPECT_EQ(s.size(), 2u);      // {20, 30}
  EXPECT_TRUE(s.Contains(20));
  EXPECT_TRUE(s.Contains(30));
  EXPECT_FALSE(s.Contains(10));
  EXPECT_FALSE(s.Contains(25));
}

TEST(MutationEdgeTest, TombstoneRevocationRestoresTheBaseElement) {
  Engine engine("Planner:calibration=off");
  PreparedSet s = engine.PrepareMutable({5, 6, 7});
  EXPECT_TRUE(s.Erase(6));
  EXPECT_FALSE(s.Contains(6));
  EXPECT_TRUE(s.Insert(6));  // revokes the tombstone
  EXPECT_TRUE(s.Contains(6));
  EXPECT_EQ(s.size(), 3u);
  PreparedSet other = engine.Prepare({6, 7, 8});
  EXPECT_EQ(engine.Query({&s, &other}).Materialize(), (ElemList{6, 7}));
}

TEST(MutationEdgeTest, DeltaOnlySetGrowsFromEmptyBase) {
  Engine engine("Planner:calibration=off");
  PreparedSet s =
      engine.PrepareMutable(std::span<const Elem>{},
                            {.background_compaction = false});
  EXPECT_EQ(s.size(), 0u);
  for (Elem x : {9, 1, 5, 3, 7}) EXPECT_TRUE(s.Insert(x));
  EXPECT_EQ(s.size(), 5u);
  PreparedSet other = engine.Prepare({1, 2, 3, 4, 5});
  EXPECT_EQ(engine.Query({&s, &other}).Materialize(), (ElemList{1, 3, 5}));
  s.Compact();
  EXPECT_EQ(engine.Query({&s, &other}).Materialize(), (ElemList{1, 3, 5}));
}

TEST(MutationEdgeTest, EraseToEmptyAndBack) {
  Engine engine("Planner:calibration=off");
  PreparedSet s = engine.PrepareMutable({1, 2, 3});
  for (Elem x : {1, 2, 3}) EXPECT_TRUE(s.Erase(x));
  EXPECT_EQ(s.size(), 0u);
  PreparedSet other = engine.Prepare({1, 2, 3});
  EXPECT_EQ(engine.Query({&s, &other}).Count(), 0u);
  EXPECT_TRUE(s.Insert(2));
  EXPECT_EQ(engine.Query({&s, &other}).Materialize(), (ElemList{2}));
}

TEST(MutationEdgeTest, SingleSetQueryReturnsTheEffectiveSet) {
  Engine engine("Planner:calibration=off");
  PreparedSet s = engine.PrepareMutable({2, 4, 6, 8});
  s.Insert(5);
  s.Erase(4);
  EXPECT_EQ(engine.Query({&s}).Materialize(), (ElemList{2, 5, 6, 8}));
}

TEST(MutationEdgeTest, ExplainAppendsDeltaMergeStepOnlyWhenDeltaNonEmpty) {
  Engine engine("Planner:calibration=off");
  PreparedSet a = engine.PrepareMutable({1, 2, 3, 4, 5, 6, 7, 8});
  PreparedSet b = engine.Prepare({2, 4, 6, 8, 10});
  QueryPlan clean = engine.Query({&a, &b}).Explain();
  for (const PlanStep& step : clean.steps) {
    EXPECT_NE(step.algorithm, "DeltaMerge");
  }
  a.Insert(9);
  a.Erase(2);
  QueryPlan dirty = engine.Query({&a, &b}).Explain();
  ASSERT_FALSE(dirty.steps.empty());
  EXPECT_EQ(dirty.steps.back().algorithm, "DeltaMerge");
  EXPECT_EQ(dirty.steps.back().right_size, a.delta_size());
}

TEST(MutationEdgeTest, PredictedMicrosIncludesTheFixupTerm) {
  Engine engine("Planner:calibration=off");
  ElemList big;
  for (Elem x = 0; x < 4000; ++x) big.push_back(2 * x);
  PreparedSet a = engine.PrepareMutable(big, {.background_compaction = false});
  PreparedSet b = engine.Prepare(big);
  ElemList out;
  double clean = engine.Query({&a, &b}).ExecuteInto(&out).predicted_micros;
  for (Elem x = 0; x < 400; ++x) a.Insert(2 * x + 1);
  double dirty = engine.Query({&a, &b}).ExecuteInto(&out).predicted_micros;
  EXPECT_GT(dirty, clean);
}

TEST(MutationEdgeTest, CopiedHandlesShareTheMutableSet) {
  Engine engine("Planner:calibration=off");
  PreparedSet s = engine.PrepareMutable({1, 2, 3});
  PreparedSet copy = s;
  EXPECT_TRUE(copy.Insert(4));
  EXPECT_TRUE(s.Contains(4));
  EXPECT_EQ(s.version(), copy.version());
}

TEST(MutationEdgeTest, QueryOutlivesTheHandleAndTheEngine) {
  ElemList expected;
  fsi::Query query = [] {
    Engine engine("Planner:calibration=off");
    PreparedSet a = engine.PrepareMutable({1, 3, 5, 7});
    PreparedSet b = engine.Prepare({3, 5, 9});
    a.Insert(9);
    return engine.Query({&a, &b});
  }();
  // Engine and handles are gone; the query holds shared ownership.
  EXPECT_EQ(query.Materialize(), (ElemList{3, 5, 9}));
}

// ---------------------------------------------------------------------------
// Background-compaction policy.
// ---------------------------------------------------------------------------

TEST(MutationCompactionTest, BackgroundCompactionDrainsTheDelta) {
  Engine engine("Planner:calibration=off");
  ElemList base;
  for (Elem x = 0; x < 2000; ++x) base.push_back(3 * x);
  // Tiny thresholds so the trigger fires during the loop.
  PreparedSet s = engine.PrepareMutable(
      base, {.compact_fill = 0.01, .compact_min = 16});
  std::set<Elem> model(base.begin(), base.end());
  Xoshiro256 rng(0xc0ffeeULL);
  for (std::size_t op = 0; op < 500; ++op) {
    Elem x = static_cast<Elem>(rng.Below(6000));
    if (rng.Below(2) == 0) {
      EXPECT_EQ(s.Insert(x), model.insert(x).second);
    } else {
      EXPECT_EQ(s.Erase(x), model.erase(x) > 0);
    }
  }
  s.WaitForCompaction();
  // The trigger fired at least once, so the remaining delta sits below
  // the threshold (new mutations may have landed after the last rebuild).
  EXPECT_LE(s.delta_size(), std::max<std::size_t>(16, model.size() / 100) +
                                 500);
  EXPECT_EQ(s.size(), model.size());
  Engine fresh("Planner:calibration=off");
  PreparedSet expected = fresh.Prepare(ToList(model));
  EXPECT_EQ(engine.Query({&s}).Materialize(),
            fresh.Query({&expected}).Materialize());
}

TEST(MutationCompactionTest, ManualCompactIsIdempotent) {
  Engine engine("Planner:calibration=off");
  PreparedSet s = engine.PrepareMutable({1, 2, 3},
                                        {.background_compaction = false});
  s.Insert(4);
  std::uint64_t before = s.version();
  s.Compact();
  EXPECT_EQ(s.delta_size(), 0u);
  EXPECT_GT(s.version(), before);
  std::uint64_t after = s.version();
  s.Compact();  // nothing to fold: must not rebuild again
  EXPECT_EQ(s.version(), after);
}

// ---------------------------------------------------------------------------
// Updatable InvertedIndex: InsertDocument / EraseDocument differential.
// ---------------------------------------------------------------------------

std::vector<std::string> Terms(std::initializer_list<const char*> ts) {
  return std::vector<std::string>(ts.begin(), ts.end());
}

TEST(UpdatableIndexTest, InsertEraseMatchesARebuiltIndex) {
  const std::size_t iters = StressIters();
  for (std::size_t iter = 0; iter < iters; ++iter) {
    Xoshiro256 rng(0x1d1ce5ULL + iter);
    const std::vector<std::string> vocab = {"a", "b", "c", "d", "e",
                                            "f", "g", "h"};
    // docs[d] = the term set of document d; model of the final corpus.
    std::map<Elem, std::vector<std::string>> docs;

    InvertedIndex live(Engine("Planner:calibration=off"));
    for (Elem d = 1; d <= 40; ++d) {
      std::vector<std::string> terms;
      for (const auto& t : vocab) {
        if (rng.Below(3) == 0) terms.push_back(t);
      }
      live.AddDocument(d, terms);
      docs[d] = terms;
    }
    live.FinalizeUpdatable({.background_compaction = false});

    // A burst of live updates: new documents, deletions, re-inserts.
    for (std::size_t op = 0; op < 60; ++op) {
      if (rng.Below(3) != 0 || docs.empty()) {
        Elem d = static_cast<Elem>(1000 + op);
        std::vector<std::string> terms;
        for (const auto& t : vocab) {
          if (rng.Below(3) == 0) terms.push_back(t);
        }
        if (terms.empty()) terms.push_back(vocab[rng.Below(vocab.size())]);
        EXPECT_EQ(live.InsertDocument(d, terms), terms.size());
        docs[d] = terms;
      } else {
        auto it = std::next(docs.begin(),
                            static_cast<long>(rng.Below(docs.size())));
        EXPECT_EQ(live.EraseDocument(it->first, it->second),
                  it->second.size());
        docs.erase(it);
      }
    }

    // Rebuild a read-only index from the final corpus state.
    InvertedIndex rebuilt(Engine("Planner:calibration=off"));
    for (const auto& [d, terms] : docs) rebuilt.AddDocument(d, terms);
    rebuilt.Finalize();

    for (const auto& q : {Terms({"a"}), Terms({"a", "b"}),
                          Terms({"c", "e", "g"}), Terms({"h", "d"})}) {
      EXPECT_EQ(live.Query(q), rebuilt.Query(q));
      EXPECT_EQ(live.CountMatching(q), rebuilt.CountMatching(q));
    }
    for (const auto& t : vocab) {
      EXPECT_EQ(live.DocumentFrequency(t), rebuilt.DocumentFrequency(t));
    }
  }
}

TEST(UpdatableIndexTest, InsertDocumentCreatesUnseenTerms) {
  InvertedIndex index{Engine("Planner:calibration=off")};
  index.AddDocument(1, Terms({"old"}));
  index.FinalizeUpdatable();
  EXPECT_EQ(index.num_terms(), 1u);
  EXPECT_EQ(index.InsertDocument(2, Terms({"old", "new"})), 2u);
  EXPECT_EQ(index.num_terms(), 2u);
  EXPECT_EQ(index.Query(Terms({"new"})), (ElemList{2}));
  EXPECT_EQ(index.Query(Terms({"old", "new"})), (ElemList{2}));
  // Unknown terms in EraseDocument are a no-op, not an error.
  EXPECT_EQ(index.EraseDocument(2, Terms({"absent"})), 0u);
  // Erasing the last document of a term leaves an empty posting behind.
  EXPECT_EQ(index.EraseDocument(2, Terms({"new"})), 1u);
  EXPECT_EQ(index.Query(Terms({"new"})), ElemList{});
  EXPECT_EQ(index.DocumentFrequency("new"), 0u);
}

TEST(UpdatableIndexTest, ReadOnlyIndexRejectsUpdates) {
  InvertedIndex index{Engine("Planner:calibration=off")};
  index.AddDocument(1, Terms({"x"}));
  index.Finalize();
  EXPECT_FALSE(index.updatable());
  EXPECT_THROW(index.InsertDocument(2, Terms({"x"})), std::logic_error);
  EXPECT_THROW(index.EraseDocument(1, Terms({"x"})), std::logic_error);
}

}  // namespace
}  // namespace fsi
