// Read-while-write verification for mutable sets: lock-free readers
// (Query terminals, BatchRunner workers, Contains probes) racing live
// Insert/Erase writers and background compaction.  Built to run under
// ThreadSanitizer — the tsan CI preset executes this binary with full
// race detection — but every check is also a functional assertion that
// holds in any build.
//
// The centrepiece is snapshot validation by versioned markers: a writer
// steps a mutable set through V precomputed versions, each tagged by a
// unique marker element and a monotone prefix of inserted/erased
// elements.  Because queries snapshot atomically, EVERY observed result
// must decode to one of the few states that exist at some instant —
// a torn read (half-applied version) would produce a marker/prefix
// combination no instantaneous state ever had.
//
// FSI_STRESS_ITERS scales the version counts and churn volume (default
// 1; the nightly CI leg runs 10).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fsi.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace fsi {
namespace {

std::size_t StressIters() {
  const char* env = std::getenv("FSI_STRESS_ITERS");
  if (env == nullptr) return 1;
  long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<std::size_t>(v) : 1;
}

// ---------------------------------------------------------------------------
// Versioned-marker snapshot validation.
// ---------------------------------------------------------------------------
//
// Element layout (disjoint ranges):
//   base        [0, kBaseUniverse)        static members of the set
//   D-pool      [kDPool, kDPool + V]      erased one per version, in order
//   E-pool      [kEPool, kEPool + V]      inserted one per version, in order
//   markers     [kMarker, kMarker + V]    exactly one live per version
//
// Version v of the mutable set is
//   (base_sample \ {D_1..D_v}) U {E_1..E_v} U {M_v}
// and the transition v -> v+1 applies, in this order:
//   Erase(D_{v+1});  Insert(E_{v+1});  Insert(M_{v+1});  Erase(M_v).
//
// The only instantaneous states during the transition are therefore
// (writing c = erased-D count, e = inserted-E count, M = live markers):
//   (v,   v,   {M_v})            the version itself
//   (v+1, v,   {M_v})            after the D erase
//   (v+1, v+1, {M_v})            after the E insert
//   (v+1, v+1, {M_v, M_v+1})     both markers live
//   (v+1, v+1, {M_v+1})          = version v+1
// ValidateObservation() accepts exactly this set and nothing else.

constexpr Elem kBaseUniverse = 1 << 20;
constexpr Elem kDPool = 1 << 20;
constexpr Elem kEPool = 1 << 21;
constexpr Elem kMarker = 1 << 22;

struct MarkerWorld {
  ElemList companion;      // the immutable co-set every query intersects
  ElemList base_expected;  // (base part of the result) -- constant
  std::size_t versions = 0;
};

// Decodes one observed result and checks it against the state machine
// above.  Returns the highest live marker's version (what the snapshot
// had committed), or -1 with a test failure on an impossible state.
long ValidateObservation(const MarkerWorld& world, const ElemList& result,
                         const std::string& label) {
  ElemList base_part;
  std::vector<long> d_remaining, e_present, markers;
  for (Elem x : result) {
    if (x >= kMarker) {
      markers.push_back(static_cast<long>(x - kMarker));
    } else if (x >= kEPool) {
      e_present.push_back(static_cast<long>(x - kEPool));
    } else if (x >= kDPool) {
      d_remaining.push_back(static_cast<long>(x - kDPool));
    } else {
      base_part.push_back(x);
    }
  }
  EXPECT_EQ(base_part, world.base_expected) << label;
  EXPECT_TRUE(std::is_sorted(result.begin(), result.end())) << label;

  // Markers: one, or two consecutive.
  if (markers.empty() || markers.size() > 2) {
    ADD_FAILURE() << label << ": " << markers.size() << " markers observed";
    return -1;
  }
  long h = markers.back();
  if (markers.size() == 2 && markers[0] != h - 1) {
    ADD_FAILURE() << label << ": non-consecutive markers " << markers[0]
                  << "," << h;
    return -1;
  }

  // E-pool: must be exactly the prefix E_1..E_e.
  long e = static_cast<long>(e_present.size());
  for (long i = 0; i < e; ++i) {
    EXPECT_EQ(e_present[static_cast<std::size_t>(i)], i + 1) << label;
  }
  // D-pool: must be exactly the suffix D_{c+1}..D_V.
  long c = static_cast<long>(world.versions) -
           static_cast<long>(d_remaining.size());
  for (std::size_t i = 0; i < d_remaining.size(); ++i) {
    EXPECT_EQ(d_remaining[i], c + 1 + static_cast<long>(i)) << label;
  }

  // The (c, e, markers) combination must be one of the five legal states.
  bool valid;
  if (markers.size() == 2) {
    valid = (c == h && e == h);
  } else {
    valid = (c == h && e == h) || (c == h + 1 && e == h) ||
            (c == h + 1 && e == h + 1);
  }
  EXPECT_TRUE(valid) << label << ": impossible snapshot c=" << c << " e=" << e
                     << " marker=" << h << " (" << markers.size() << " live)";
  return h;
}

TEST(ReadWhileWriteTest, EveryBatchResultDecodesToAValidSnapshot) {
  const std::size_t versions = 256 * StressIters();
  Engine engine("Planner:calibration=off");
  Xoshiro256 rng(0xbeefULL);

  ElemList base = SampleSortedSet(4000, kBaseUniverse, rng);
  // D-pool elements live in the base (they get erased); E-pool and marker
  // elements do not (they get inserted).
  ElemList initial = base;
  for (std::size_t v = 1; v <= versions; ++v) {
    initial.push_back(kDPool + static_cast<Elem>(v));
  }
  initial.push_back(kMarker + 0);  // version-0 marker
  std::sort(initial.begin(), initial.end());

  // The companion contains half the base sample plus every special
  // element, so each query result carries the full version fingerprint.
  MarkerWorld world;
  world.versions = versions;
  for (std::size_t i = 0; i < base.size(); i += 2) {
    world.companion.push_back(base[i]);
    world.base_expected.push_back(base[i]);
  }
  for (std::size_t v = 1; v <= versions; ++v) {
    world.companion.push_back(kDPool + static_cast<Elem>(v));
    world.companion.push_back(kEPool + static_cast<Elem>(v));
  }
  for (std::size_t v = 0; v <= versions; ++v) {
    world.companion.push_back(kMarker + static_cast<Elem>(v));
  }
  std::sort(world.companion.begin(), world.companion.end());

  PreparedSet target = engine.PrepareMutable(
      initial, {.compact_fill = 0.02, .compact_min = 8});
  PreparedSet companion = engine.Prepare(world.companion);

  std::atomic<long> writer_version{0};
  std::atomic<bool> start{false};
  std::atomic<bool> done{false};
  std::thread writer([&] {
    while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
    for (std::size_t v = 1; v <= versions; ++v) {
      ASSERT_TRUE(target.Erase(kDPool + static_cast<Elem>(v)));
      ASSERT_TRUE(target.Insert(kEPool + static_cast<Elem>(v)));
      ASSERT_TRUE(target.Insert(kMarker + static_cast<Elem>(v)));
      ASSERT_TRUE(target.Erase(kMarker + static_cast<Elem>(v - 1)));
      writer_version.store(static_cast<long>(v), std::memory_order_release);
      std::this_thread::yield();  // give reader snapshots room to interleave
    }
    done.store(true, std::memory_order_release);
  });

  // Readers: BatchRunner batches racing the writer.  Each batch records
  // the writer's committed version bracket [lo, hi]; every result must
  // decode to a marker inside (or adjacent to) that bracket.
  BatchRunner runner(engine, {.num_threads = 4});
  std::vector<BatchQuery> queries(32, BatchQuery{&target, &companion});
  std::size_t batches = 0;
  start.store(true, std::memory_order_release);
  while (!done.load(std::memory_order_acquire) || batches < 4) {
    long lo = writer_version.load(std::memory_order_acquire);
    std::vector<ElemList> results = runner.Materialize(queries);
    long hi = writer_version.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < results.size(); ++i) {
      long h = ValidateObservation(
          world, results[i],
          "batch " + std::to_string(batches) + " query " + std::to_string(i));
      if (h < 0) continue;
      // A snapshot taken inside the batch window can also catch the
      // in-flight transition to hi+1.
      EXPECT_GE(h, lo) << "observed version older than the batch start";
      EXPECT_LE(h, hi + 1) << "observed version newer than the batch end";
    }
    ++batches;
  }
  writer.join();

  // Quiescent: the final state is exactly version V.
  target.WaitForCompaction();
  ElemList last = engine.Query({&target, &companion}).Materialize();
  EXPECT_EQ(ValidateObservation(world, last, "final"),
            static_cast<long>(versions));
  EXPECT_GE(batches, 4u);
}

// ---------------------------------------------------------------------------
// Heavy churn with aggressive background compaction.
// ---------------------------------------------------------------------------

TEST(ReadWhileWriteTest, ChurnWithCompactionConvergesToTheModel) {
  const std::size_t ops_per_writer = 2000 * StressIters();
  Engine engine("Planner:calibration=off");
  Xoshiro256 rng(0x9d2cULL);
  ElemList base = SampleSortedSet(3000, 1 << 16, rng);
  PreparedSet target = engine.PrepareMutable(
      base, {.compact_fill = 0.005, .compact_min = 8});
  PreparedSet probe_set = engine.Prepare(SampleSortedSet(2000, 1 << 16, rng));

  // Two writers own disjoint key ranges above the base universe, so each
  // can track its own final state without coordination.
  constexpr Elem kWriterPool = 1 << 16;
  constexpr Elem kWriterRange = 1 << 14;
  std::vector<std::set<Elem>> owned(2);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      Xoshiro256 wrng(0x77aaULL + w);
      Elem lo = kWriterPool + static_cast<Elem>(w) * kWriterRange;
      for (std::size_t op = 0; op < ops_per_writer; ++op) {
        Elem x = lo + static_cast<Elem>(wrng.Below(kWriterRange));
        if (wrng.Below(3) != 0) {
          EXPECT_EQ(target.Insert(x), owned[w].insert(x).second);
        } else {
          EXPECT_EQ(target.Erase(x), owned[w].erase(x) > 0);
        }
      }
    });
  }
  // Readers: invariants that hold at every instant — base elements below
  // the writer pools are never mutated, and results stay sorted/unique.
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        ElemList out = engine.Query({&target}).Unordered().Materialize();
        std::sort(out.begin(), out.end());
        EXPECT_TRUE(std::adjacent_find(out.begin(), out.end()) == out.end())
            << "duplicate element in a snapshot";
        // The static base prefix must be present verbatim in every
        // snapshot.
        ElemList prefix(out.begin(),
                        std::lower_bound(out.begin(), out.end(), kWriterPool));
        EXPECT_EQ(prefix, base);
        EXPECT_TRUE(target.Contains(base[0]));
        EXPECT_FALSE(target.Contains(kWriterPool + 2 * kWriterRange));
        engine.Query({&target, &probe_set}).Count();  // exercise k=2 fixup
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  target.WaitForCompaction();
  std::set<Elem> model(base.begin(), base.end());
  for (const auto& o : owned) model.insert(o.begin(), o.end());
  EXPECT_EQ(target.size(), model.size());
  ElemList final_list = engine.Query({&target}).Materialize();
  EXPECT_EQ(final_list, ElemList(model.begin(), model.end()));
}

// ---------------------------------------------------------------------------
// Same-key races: exactly one winner.
// ---------------------------------------------------------------------------

TEST(ReadWhileWriteTest, ConcurrentSameKeyInsertHasExactlyOneWinner) {
  const std::size_t values = 200 * StressIters();
  Engine engine("Planner:calibration=off");
  PreparedSet target = engine.PrepareMutable(
      {1, 2, 3}, {.background_compaction = false});
  constexpr std::size_t kThreads = 4;
  std::vector<std::size_t> wins(kThreads, 0);
  std::vector<std::size_t> erase_wins(kThreads, 0);
  {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t v = 0; v < values; ++v) {
          Elem x = 1000 + static_cast<Elem>(v);
          if (target.Insert(x)) ++wins[t];
          // Erase of a value that may or may not exist yet: the sum of
          // successful erases per value can be 0..inserts, but never more
          // than the successful inserts (checked in aggregate below).
          Elem missing = 500000 + static_cast<Elem>(v);
          if (target.Erase(missing)) ++erase_wins[t];
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  // Every value was inserted by exactly one thread.
  EXPECT_EQ(wins[0] + wins[1] + wins[2] + wins[3], values);
  // The missing values were never present: no erase can have succeeded.
  EXPECT_EQ(erase_wins[0] + erase_wins[1] + erase_wins[2] + erase_wins[3],
            0u);
  EXPECT_EQ(target.size(), 3 + values);
}

// ---------------------------------------------------------------------------
// Lifetime edges: dropping handles mid-compaction, engine teardown.
// ---------------------------------------------------------------------------

TEST(ReadWhileWriteTest, DroppingHandlesDuringScheduledCompactionIsSafe) {
  const std::size_t rounds = 50 * StressIters();
  Engine engine("Planner:calibration=off");
  Xoshiro256 rng(0xd00dULL);
  for (std::size_t round = 0; round < rounds; ++round) {
    ElemList base = SampleSortedSet(500, 1 << 14, rng);
    PreparedSet s = engine.PrepareMutable(
        base, {.compact_fill = 0.001, .compact_min = 1});
    // Each mutation crosses the trigger, scheduling background rebuilds.
    for (Elem x = 0; x < 20; ++x) {
      s.Insert(static_cast<Elem>(1 << 14) + x);
    }
    // Drop the handle immediately: the scheduled task holds shared
    // ownership of the core and must complete (or no-op) without
    // touching freed memory.
  }
  BackgroundCompactor::Global().Drain();
}

TEST(ReadWhileWriteTest, QueryKeepsItsSnapshotAcrossCompaction) {
  Engine engine("Planner:calibration=off");
  PreparedSet s = engine.PrepareMutable({1, 2, 3, 4, 5},
                                        {.background_compaction = false});
  fsi::Query query = engine.Query({&s});
  EXPECT_EQ(query.Materialize(), (ElemList{1, 2, 3, 4, 5}));
  s.Erase(3);
  s.Compact();
  s.Insert(9);
  // Terminals re-snapshot per run: the same Query object sees the new
  // state, not the one from build time.
  EXPECT_EQ(query.Materialize(), (ElemList{1, 2, 4, 5, 9}));
}

}  // namespace
}  // namespace fsi
