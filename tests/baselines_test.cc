// Unit tests for baseline-specific machinery (galloping search, BPP
// signatures, Lookup bucket ranges) beyond the shared property sweep.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baseline/bpp.h"
#include "baseline/lookup.h"
#include "baseline/plain_set.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace fsi {
namespace {

TEST(GallopTest, MatchesLowerBound) {
  Xoshiro256 rng(71);
  ElemList sorted = SampleSortedSet(2000, 1 << 16, rng);
  for (int trial = 0; trial < 2000; ++trial) {
    Elem x = static_cast<Elem>(rng.Below(1 << 16));
    std::size_t lo = rng.Below(sorted.size());
    std::size_t expected = static_cast<std::size_t>(
        std::lower_bound(sorted.begin() + static_cast<std::ptrdiff_t>(lo),
                         sorted.end(), x) -
        sorted.begin());
    EXPECT_EQ(GallopGreaterEqual(sorted, lo, x), expected);
  }
}

TEST(GallopTest, EdgeCases) {
  ElemList sorted = {10, 20, 30};
  EXPECT_EQ(GallopGreaterEqual(sorted, 0, 5), 0u);
  EXPECT_EQ(GallopGreaterEqual(sorted, 0, 10), 0u);
  EXPECT_EQ(GallopGreaterEqual(sorted, 0, 35), 3u);
  EXPECT_EQ(GallopGreaterEqual(sorted, 3, 10), 3u);  // start at end
  ElemList empty;
  EXPECT_EQ(GallopGreaterEqual(empty, 0, 1), 0u);
}

TEST(LookupSetTest, BucketRangesCoverList) {
  Xoshiro256 rng(72);
  ElemList set = SampleSortedSet(5000, 1 << 18, rng);
  LookupSet ls(set, 5);
  std::size_t covered = 0;
  std::uint32_t max_bucket = set.back() >> 5;
  for (std::uint32_t b = 0; b <= max_bucket; ++b) {
    auto [lo, hi] = ls.BucketRange(b);
    for (std::uint32_t i = lo; i < hi; ++i) {
      ASSERT_EQ(set[i] >> 5, b);
    }
    covered += hi - lo;
  }
  EXPECT_EQ(covered, set.size());
  // Beyond the maximum bucket: empty.
  auto [lo, hi] = ls.BucketRange(max_bucket + 100);
  EXPECT_EQ(lo, hi);
}

TEST(LookupTest, RejectsNonPowerOfTwoBucket) {
  EXPECT_THROW(LookupIntersection(33), std::invalid_argument);
  EXPECT_THROW(LookupIntersection(0), std::invalid_argument);
  EXPECT_NO_THROW(LookupIntersection(32));
}

TEST(BppSetTest, CodeOrderInvariants) {
  UniversalHash code_hash(16, 123);
  Xoshiro256 rng(73);
  ElemList set = SampleSortedSet(500, 1 << 20, rng);
  BppSet s(set, code_hash);
  ASSERT_EQ(s.size(), set.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    // Codes match the hash of the stored element.
    ASSERT_EQ(s.codes()[i], static_cast<std::uint16_t>(code_hash(s.elems()[i])));
    if (i > 0) {
      // (code, value) order.
      bool ordered = s.codes()[i - 1] < s.codes()[i] ||
                     (s.codes()[i - 1] == s.codes()[i] &&
                      s.elems()[i - 1] < s.elems()[i]);
      ASSERT_TRUE(ordered) << i;
    }
  }
  // The stored elements are a permutation of the input.
  ElemList sorted_elems(s.elems().begin(), s.elems().end());
  std::sort(sorted_elems.begin(), sorted_elems.end());
  EXPECT_EQ(sorted_elems, set);
}

TEST(BppTest, RejectsMoreThanTwoSets) {
  BppIntersection alg;
  ElemList a = {1, 2, 3};
  auto p1 = alg.Preprocess(a);
  auto p2 = alg.Preprocess(a);
  auto p3 = alg.Preprocess(a);
  std::vector<const PreprocessedSet*> sets = {p1.get(), p2.get(), p3.get()};
  ElemList out;
  EXPECT_THROW(alg.Intersect(sets, &out), std::invalid_argument);
}

TEST(SortBySizeTest, StableAscending) {
  ElemList a = {1, 2, 3};
  ElemList b = {1};
  ElemList c = {1, 2};
  PlainSet pa(a), pb(b), pc(c);
  std::vector<const PreprocessedSet*> sets = {&pa, &pb, &pc};
  auto sorted = SortBySize(sets);
  EXPECT_EQ(sorted[0]->size(), 1u);
  EXPECT_EQ(sorted[1]->size(), 2u);
  EXPECT_EQ(sorted[2]->size(), 3u);
}

}  // namespace
}  // namespace fsi
