// Tests for the cost-model query planner (api/planner.h): cost hooks on
// the registry descriptors, the zero-config Engine default path, plan
// shape and Explain(), calibration determinism and JSON round-trips, and
// planner-vs-explicit-spec result equality across every registered
// algorithm and sink.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "fsi.h"
#include "index/inverted_index.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace fsi {
namespace {

ElemList GroundTruth(const std::vector<ElemList>& lists) {
  if (lists.empty()) return {};
  ElemList acc = lists[0];
  for (std::size_t i = 1; i < lists.size(); ++i) {
    ElemList next;
    std::set_intersection(acc.begin(), acc.end(), lists[i].begin(),
                          lists[i].end(), std::back_inserter(next));
    acc.swap(next);
  }
  return acc;
}

std::vector<PreparedSet> PrepareAll(const Engine& engine,
                                    const std::vector<ElemList>& lists) {
  std::vector<PreparedSet> prepared;
  prepared.reserve(lists.size());
  for (const ElemList& l : lists) prepared.push_back(engine.Prepare(l));
  return prepared;
}

// A deterministic planner engine for plan-shape tests: calibration=off pins
// the built-in constants regardless of the environment.
Engine DeterministicPlanner() { return Engine("Planner:calibration=off"); }

// ---------------------------------------------------------------------------
// Registry cost hooks.
// ---------------------------------------------------------------------------

TEST(CostHookTest, PortfolioDescriptorsPublishCosts) {
  auto& registry = AlgorithmRegistry::Global();
  // Portfolio members plus the compressed algorithms: the planner prices
  // the compressed representation with these hooks.
  for (const char* name :
       {"Merge", "SvS", "RanGroupScan", "HashBin", "Hybrid", "Merge_Gamma",
        "Merge_Delta", "Lookup_Gamma", "Lookup_Delta", "RanGroupScan_Lowbits",
        "RanGroupScan_Gamma", "RanGroupScan_Delta"}) {
    const AlgorithmDescriptor* d = registry.Find(name);
    ASSERT_NE(d, nullptr) << name;
    EXPECT_NE(d->cost, nullptr) << name;
  }
  for (const char* name : {"Adaptive", "SkipList", "Hash", "Lookup",
                           "Planner"}) {
    const AlgorithmDescriptor* d = registry.Find(name);
    ASSERT_NE(d, nullptr) << name;
    EXPECT_EQ(d->cost, nullptr) << name;
  }
}

TEST(CostHookTest, FormulasFollowThePaperBounds) {
  CostConstants c;  // built-in defaults
  StepCostQuery balanced{10000, 10000, 100.0};
  StepCostQuery skewed{100, 1000000, 10.0};
  auto& registry = AlgorithmRegistry::Global();
  auto cost = [&](const char* name, const StepCostQuery& q) {
    return registry.Find(name)->cost(q, c);
  };
  // Balanced: the linear-scan families beat the gallop family.
  EXPECT_LT(cost("Merge", balanced), cost("SvS", balanced));
  // Heavily skewed: galloping beats scanning a million elements.
  EXPECT_LT(cost("SvS", skewed), cost("Merge", skewed));
  // Hybrid is the min of its two paths.
  EXPECT_DOUBLE_EQ(cost("Hybrid", skewed),
                   std::min(cost("RanGroupScan", skewed),
                            cost("HashBin", skewed)));
}

// ---------------------------------------------------------------------------
// The zero-config default path.
// ---------------------------------------------------------------------------

TEST(PlannerEngineTest, DefaultEngineIsThePlanner) {
  Engine engine;
  EXPECT_EQ(engine.algorithm_name(), "Planner");
  PreparedSet a = engine.Prepare({1, 3, 5, 7});
  PreparedSet b = engine.Prepare({3, 4, 7, 9});
  EXPECT_EQ(engine.Query({&a, &b}).Materialize(), (ElemList{3, 7}));
}

TEST(PlannerEngineTest, AutoAliasResolvesHidden) {
  Engine engine("auto");
  EXPECT_EQ(engine.algorithm_name(), "Planner");
  auto visible = AlgorithmRegistry::Global().Names(/*include_hidden=*/false);
  EXPECT_EQ(std::find(visible.begin(), visible.end(), "auto"), visible.end());
  auto all = AlgorithmRegistry::Global().Names(/*include_hidden=*/true);
  EXPECT_NE(std::find(all.begin(), all.end(), "auto"), all.end());
}

TEST(PlannerEngineTest, PlannedSetExposesBothStructures) {
  Engine engine = DeterministicPlanner();
  PreparedSet a = engine.Prepare({10, 20, 30, 40, 50});
  EXPECT_EQ(a.size(), 5u);
  EXPECT_EQ(a.algorithm_name(), "Planner");
  const auto* planned = dynamic_cast<const PlannedSet*>(a.raw());
  ASSERT_NE(planned, nullptr);
  EXPECT_GT(planned->NumGroups(), 0u);  // the scan structure is present
  // The composite is strictly larger than the plain array alone.
  EXPECT_GT(a.SizeInWords(), (5 * sizeof(Elem) + 7) / 8);
}

// ---------------------------------------------------------------------------
// Edge cases: k = 1, empty sets, empty queries, equal sizes, density.
// ---------------------------------------------------------------------------

TEST(PlannerEdgeCaseTest, SingleSetQueryReturnsTheSet) {
  Engine engine = DeterministicPlanner();
  ElemList list = {2, 4, 6, 8};
  PreparedSet a = engine.Prepare(list);
  EXPECT_EQ(engine.Query({&a}).Materialize(), list);
  EXPECT_EQ(engine.Query({&a}).Count(), list.size());
  QueryPlan plan = engine.Query({&a}).Explain();
  EXPECT_TRUE(plan.planned);
  EXPECT_TRUE(plan.steps.empty());
  EXPECT_EQ(plan.est_result, 4.0);
}

TEST(PlannerEdgeCaseTest, EmptyInputSetShortCircuits) {
  Engine engine = DeterministicPlanner();
  PreparedSet empty = engine.Prepare(std::initializer_list<Elem>{});
  PreparedSet full = engine.Prepare({1, 2, 3});
  EXPECT_TRUE(engine.Query({&empty, &full}).Materialize().empty());
  EXPECT_TRUE(engine.Query({&full, &empty}).Materialize().empty());
  EXPECT_TRUE(engine.Query({&empty, &empty}).Materialize().empty());
  EXPECT_EQ(engine.Query({&full, &empty}).Count(), 0u);
  QueryPlan plan = engine.Query({&full, &empty}).Explain();
  EXPECT_TRUE(plan.steps.empty());  // trivially empty: no steps to run
  EXPECT_EQ(plan.est_result, 0.0);
}

TEST(PlannerEdgeCaseTest, EmptyQueryMaterializesEmpty) {
  Engine engine = DeterministicPlanner();
  EXPECT_TRUE(engine.Query({}).Materialize().empty());
}

TEST(PlannerEdgeCaseTest, AllEqualSizesKeepsStableOrder) {
  Engine engine = DeterministicPlanner();
  Xoshiro256 rng(7);
  auto lists = GenerateIntersectingSets({500, 500, 500}, 31, 1 << 18, rng);
  auto prepared = PrepareAll(engine, lists);
  EXPECT_EQ(engine.Query(prepared).Materialize(), GroundTruth(lists));
  QueryPlan plan = engine.Query(prepared).Explain();
  EXPECT_EQ(plan.order, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(plan.steps.size(), 2u);
}

TEST(PlannerEdgeCaseTest, AdversarialDensity) {
  Engine engine = DeterministicPlanner();
  // Identical sets: 100% density, the Figure-5 large-r regime.
  ElemList dense;
  for (Elem i = 0; i < 4096; ++i) dense.push_back(i * 3);
  PreparedSet a = engine.Prepare(dense);
  PreparedSet b = engine.Prepare(dense);
  EXPECT_EQ(engine.Query({&a, &b}).Materialize(), dense);
  // Disjoint sets over interleaved values: 0% density, every element
  // adjacent to the other set's.
  ElemList odd;
  for (Elem i = 0; i < 4096; ++i) odd.push_back(i * 3 + 1);
  PreparedSet c = engine.Prepare(odd);
  EXPECT_TRUE(engine.Query({&a, &c}).Materialize().empty());
  EXPECT_EQ(engine.Query({&a, &c}).Count(), 0u);
}

TEST(PlannerEdgeCaseTest, HighArityQueries) {
  Engine engine = DeterministicPlanner();
  Xoshiro256 rng(11);
  auto lists =
      GenerateIntersectingSets({100, 200, 400, 800, 1600, 3200}, 9, 1 << 20,
                               rng);
  auto prepared = PrepareAll(engine, lists);
  EXPECT_EQ(engine.Query(prepared).Materialize(), GroundTruth(lists));
  EXPECT_EQ(engine.Query(prepared).Explain().steps.size(), 5u);
}

// ---------------------------------------------------------------------------
// Plans and Explain().
// ---------------------------------------------------------------------------

TEST(ExplainTest, OrdersSetsSmallestFirst) {
  Engine engine = DeterministicPlanner();
  Xoshiro256 rng(3);
  auto lists = GenerateIntersectingSets({40000, 300, 5000}, 13, 1 << 22, rng);
  auto prepared = PrepareAll(engine, lists);
  fsi::Query query = engine.Query(prepared);
  QueryPlan plan = query.Explain();
  EXPECT_TRUE(plan.planned);
  EXPECT_EQ(plan.order, (std::vector<std::size_t>{1, 2, 0}));
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps[0].left_size, 300u);
  EXPECT_EQ(plan.steps[0].right_size, 5000u);
  EXPECT_FALSE(plan.steps[0].left_estimated);
  EXPECT_TRUE(plan.steps[1].left_estimated);
  EXPECT_EQ(plan.steps[1].right_size, 40000u);
  EXPECT_GT(plan.predicted_micros, 0.0);
  // The prediction is mirrored into the structural stats before execution.
  EXPECT_DOUBLE_EQ(query.stats().predicted_micros, plan.predicted_micros);
  // Every step names a portfolio algorithm, and the rendering mentions it.
  std::string text = plan.ToString();
  for (const PlanStep& step : plan.steps) {
    EXPECT_NE(text.find(step.algorithm), std::string::npos);
  }
}

TEST(ExplainTest, ExplicitSpecEnginePseudoPlan) {
  Engine engine("Merge");
  Xoshiro256 rng(5);
  auto lists = GenerateIntersectingSets({1000, 2000}, 10, 1 << 20, rng);
  auto prepared = PrepareAll(engine, lists);
  fsi::Query query = engine.Query(prepared);
  QueryPlan plan = query.Explain();
  EXPECT_FALSE(plan.planned);
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].algorithm, "Merge");
  EXPECT_GT(plan.predicted_micros, 0.0);  // Merge publishes a cost hook
  EXPECT_DOUBLE_EQ(query.stats().predicted_micros, plan.predicted_micros);

  // An algorithm without a cost hook predicts nothing.
  Engine no_hook("Adaptive");
  auto prepared2 = PrepareAll(no_hook, lists);
  fsi::Query query2 = no_hook.Query(prepared2);
  EXPECT_EQ(query2.Explain().predicted_micros, 0.0);
  EXPECT_EQ(query2.stats().predicted_micros, 0.0);
}

TEST(ExplainTest, SkewSelectsAGallopFamilyBalancedSelectsAScanFamily) {
  // With the built-in constants the model must reproduce the paper's
  // regimes: heavy skew -> a log-bound algorithm (SvS or HashBin);
  // balanced high-density -> a linear-scan algorithm (Merge/RanGroupScan).
  Engine engine = DeterministicPlanner();
  Xoshiro256 rng(9);
  auto skewed = GenerateIntersectingSets({50, 200000}, 5, 1 << 24, rng);
  auto prepared = PrepareAll(engine, skewed);
  QueryPlan skew_plan = engine.Query(prepared).Explain();
  ASSERT_EQ(skew_plan.steps.size(), 1u);
  EXPECT_TRUE(skew_plan.steps[0].algorithm == "SvS" ||
              skew_plan.steps[0].algorithm == "HashBin")
      << skew_plan.steps[0].algorithm;

  auto balanced = GenerateIntersectingSets({30000, 30000}, 3000, 1 << 17, rng);
  auto prepared2 = PrepareAll(engine, balanced);
  QueryPlan flat_plan = engine.Query(prepared2).Explain();
  ASSERT_EQ(flat_plan.steps.size(), 1u);
  EXPECT_TRUE(flat_plan.steps[0].algorithm == "Merge" ||
              flat_plan.steps[0].algorithm == "RanGroupScan")
      << flat_plan.steps[0].algorithm;
}

TEST(ExplainTest, MixedChainPlansExecuteCorrectly) {
  // Constants rigged so the balanced first step prefers RanGroupScan while
  // the heavily skewed final step prefers galloping — a non-uniform chain
  // (a uniform scan plan would pay scan_ns over the whole 500k-element
  // set; a uniform gallop plan overpays on the balanced first step).
  CostConstants rigged;
  rigged.merge_ns = 1.0;
  rigged.scan_ns = 0.1;
  rigged.gallop_ns = 1.0;
  rigged.scan_result_ns = 0.001;
  PlannerAlgorithm::Options options;
  options.constants = rigged;
  Engine engine(std::make_unique<PlannerAlgorithm>(options));
  Xoshiro256 rng(13);
  auto lists =
      GenerateIntersectingSets({3000, 4000, 500000}, 111, 1 << 20, rng);
  auto prepared = PrepareAll(engine, lists);
  QueryPlan plan = engine.Query(prepared).Explain();
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps[0].algorithm, "RanGroupScan");
  EXPECT_EQ(plan.steps[1].algorithm, "SvS");
  EXPECT_FALSE(plan.uniform);
  EXPECT_EQ(engine.Query(prepared).Materialize(), GroundTruth(lists));
  ElemList unordered = engine.Query(prepared).Unordered().Materialize();
  std::sort(unordered.begin(), unordered.end());
  EXPECT_EQ(unordered, GroundTruth(lists));
}

// ---------------------------------------------------------------------------
// Calibration: determinism, JSON round-trip, the measured sweep.
// ---------------------------------------------------------------------------

TEST(CalibrationTest, CalibrationOffIsDeterministic) {
  Engine a = DeterministicPlanner();
  Engine b = DeterministicPlanner();
  const auto& alg_a = dynamic_cast<const PlannerAlgorithm&>(a.algorithm());
  const auto& alg_b = dynamic_cast<const PlannerAlgorithm&>(b.algorithm());
  EXPECT_EQ(alg_a.calibration_source(), "default");
  const CostConstants defaults;
  EXPECT_EQ(alg_a.constants().merge_ns, defaults.merge_ns);
  EXPECT_EQ(alg_a.constants().scan_ns, defaults.scan_ns);
  EXPECT_EQ(alg_a.constants().gallop_ns, alg_b.constants().gallop_ns);
  // Identical constants => identical plans, run to run and engine to
  // engine.
  Xoshiro256 rng(21);
  auto lists = GenerateIntersectingSets({700, 900, 40000}, 17, 1 << 20, rng);
  auto pa = PrepareAll(a, lists);
  auto pb = PrepareAll(b, lists);
  EXPECT_EQ(a.Query(pa).Explain().ToString(), b.Query(pb).Explain().ToString());
}

TEST(CalibrationTest, JsonRoundTrip) {
  PlannerCalibration cal;
  cal.constants.merge_ns = 0.375;
  cal.constants.gallop_ns = 2.25;
  cal.constants.scan_ns = 1.5;
  cal.constants.hashbin_ns = 8.125;
  cal.constants.result_ns = 5.5;
  cal.constants.scan_result_ns = 77.25;
  cal.source = "measured";
  PlannerCalibration parsed = PlannerCalibration::FromJson(cal.ToJson());
  EXPECT_EQ(parsed.source, "json");
  EXPECT_DOUBLE_EQ(parsed.constants.merge_ns, 0.375);
  EXPECT_DOUBLE_EQ(parsed.constants.gallop_ns, 2.25);
  EXPECT_DOUBLE_EQ(parsed.constants.scan_ns, 1.5);
  EXPECT_DOUBLE_EQ(parsed.constants.hashbin_ns, 8.125);
  EXPECT_DOUBLE_EQ(parsed.constants.result_ns, 5.5);
  EXPECT_DOUBLE_EQ(parsed.constants.scan_result_ns, 77.25);
}

TEST(CalibrationTest, MalformedJsonThrows) {
  EXPECT_THROW(PlannerCalibration::FromJson("{}"), std::invalid_argument);
  EXPECT_THROW(PlannerCalibration::FromJson("not json at all"),
               std::invalid_argument);
  EXPECT_THROW(
      PlannerCalibration::FromJson(
          "{\"merge_ns\": 1, \"gallop_ns\": 1, \"scan_ns\": 1, "
          "\"hashbin_ns\": 1, \"result_ns\": 1, \"scan_result_ns\": bogus}"),
      std::invalid_argument);
  EXPECT_THROW(
      PlannerCalibration::FromJson(
          "{\"merge_ns\": -3, \"gallop_ns\": 1, \"scan_ns\": 1, "
          "\"hashbin_ns\": 1, \"result_ns\": 1, \"scan_result_ns\": 1}"),
      std::invalid_argument);
}

TEST(CalibrationTest, MeasuredSweepProducesSaneConstants) {
  PlannerCalibration measured = PlannerCalibration::Measure();
  EXPECT_EQ(measured.source, "measured");
  for (double v :
       {measured.constants.merge_ns, measured.constants.gallop_ns,
        measured.constants.scan_ns, measured.constants.hashbin_ns,
        measured.constants.scan_result_ns}) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 2001.0);
  }
}

// ---------------------------------------------------------------------------
// Planner-vs-explicit-spec equality, every registered algorithm x sink.
// ---------------------------------------------------------------------------

class PlannerAgreementTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PlannerAgreementTest, MatchesExplicitSpecAcrossSinks) {
  const std::string& name = GetParam();
  Engine explicit_engine(name, {.validation = ValidationPolicy::kFull});
  Engine planner = DeterministicPlanner();
  Xoshiro256 rng(0xfeedULL);
  std::vector<std::vector<std::size_t>> shapes = {{600, 800},
                                                  {90, 1200, 20000}};
  for (const auto& sizes : shapes) {
    if (sizes.size() > explicit_engine.max_query_sets()) continue;
    auto lists = GenerateIntersectingSets(sizes, 23, 1 << 20, rng);
    auto expected = GroundTruth(lists);

    auto pe = PrepareAll(explicit_engine, lists);
    auto pp = PrepareAll(planner, lists);

    // The explicit engine agrees with ground truth...
    EXPECT_EQ(explicit_engine.Query(pe).Materialize(), expected) << name;
    // ...and the planner agrees with it through every sink.
    EXPECT_EQ(planner.Query(pp).Materialize(), expected) << name;
    ElemList unordered = planner.Query(pp).Unordered().Materialize();
    std::sort(unordered.begin(), unordered.end());
    EXPECT_EQ(unordered, expected) << name;
    EXPECT_EQ(planner.Query(pp).Count(), expected.size()) << name;
    ElemList into;
    planner.Query(pp).ExecuteInto(&into);
    EXPECT_EQ(into, expected) << name;
    ElemList visited;
    planner.Query(pp).Visit([&](Elem e) { visited.push_back(e); });
    EXPECT_EQ(visited, expected) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredAlgorithms, PlannerAgreementTest,
    ::testing::ValuesIn([] {
      std::vector<std::string> names;
      for (auto n : AlgorithmRegistry::Global().Names(/*include_hidden=*/true))
        names.emplace_back(n);
      return names;
    }()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// ---------------------------------------------------------------------------
// Planner-aware BatchRunner and InvertedIndex.
// ---------------------------------------------------------------------------

TEST(PlannerBatchTest, BatchRunnerMatchesSerialAndSumsPredictions) {
  Engine engine = DeterministicPlanner();
  Xoshiro256 rng(31);
  std::vector<std::vector<ElemList>> workloads;
  workloads.push_back(GenerateIntersectingSets({500, 700}, 19, 1 << 18, rng));
  workloads.push_back(
      GenerateIntersectingSets({60, 900, 30000}, 7, 1 << 22, rng));
  workloads.push_back(GenerateIntersectingSets({2000, 2000}, 400, 1 << 16,
                                               rng));
  std::vector<std::vector<PreparedSet>> prepared;
  std::vector<BatchQuery> batch;
  for (const auto& lists : workloads) {
    prepared.push_back(PrepareAll(engine, lists));
    BatchQuery q;
    for (const PreparedSet& s : prepared.back()) q.push_back(&s);
    batch.push_back(std::move(q));
  }
  BatchRunner runner(engine, {.num_threads = 4});
  std::vector<ElemList> results = runner.Materialize(batch);
  ASSERT_EQ(results.size(), workloads.size());
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    EXPECT_EQ(results[i], GroundTruth(workloads[i])) << "query " << i;
  }
  // The merged stats carry the cost model's forecast of the whole batch.
  EXPECT_GT(runner.stats().predicted_micros, 0.0);
}

TEST(PlannerIndexTest, DefaultConstructedIndexUsesThePlanner) {
  InvertedIndex index;
  EXPECT_EQ(index.engine().algorithm_name(), "Planner");
  std::vector<std::vector<std::string>> docs = {
      {"fast", "set", "intersection"},
      {"fast", "planner"},
      {"set", "planner", "intersection"},
      {"fast", "set", "planner"},
  };
  for (std::size_t i = 0; i < docs.size(); ++i) {
    index.AddDocument(static_cast<Elem>(i + 1), docs[i]);
  }
  index.Finalize();
  std::vector<std::string> q = {"fast", "set"};
  QueryStats stats;
  EXPECT_EQ(index.Query(q, &stats), (ElemList{1, 4}));
  EXPECT_EQ(index.CountMatching(q), 2u);
  std::vector<std::vector<std::string>> log = {q, {"planner"}, {"unknown"}};
  auto batched = index.BatchMatch(log);
  ASSERT_EQ(batched.size(), 3u);
  EXPECT_EQ(batched[0], (ElemList{1, 4}));
  EXPECT_EQ(batched[1], (ElemList{2, 3, 4}));
  EXPECT_TRUE(batched[2].empty());
}

// ---------------------------------------------------------------------------
// The space-budget dial: representation choice, Explain evidence,
// determinism.
// ---------------------------------------------------------------------------

// A deterministic planner engine with a space budget.
Engine BudgetPlanner(std::size_t budget, std::size_t min_compress = 0) {
  return Engine("Planner:calibration=off",
                EngineOptions{.space_budget_bytes = budget,
                              .min_compress_size = min_compress});
}

TEST(SpaceBudgetTest, ZeroBudgetKeepsEverythingUncompressed) {
  Engine engine = DeterministicPlanner();  // space_budget_bytes == 0
  Xoshiro256 rng(101);
  auto lists = GenerateIntersectingSets({2000, 4000, 8000}, 50, 1 << 20, rng);
  auto prepared = PrepareAll(engine, lists);
  for (const PreparedSet& s : prepared) EXPECT_FALSE(s.compressed());
  EXPECT_EQ(engine.SpaceUsedBytes(), 0u);  // no budget, no accounting
  EXPECT_EQ(engine.Query(prepared).Materialize(), GroundTruth(lists));
}

TEST(SpaceBudgetTest, BudgetRequiresThePlannerEngine) {
  EXPECT_THROW(Engine("Merge", EngineOptions{.space_budget_bytes = 1}),
               std::invalid_argument);
  EXPECT_THROW(Engine("RanGroupScan", EngineOptions{.space_budget_bytes = 1}),
               std::invalid_argument);
  // The planner accepts it.
  EXPECT_NO_THROW(
      Engine("Planner:calibration=off", EngineOptions{.space_budget_bytes = 1}));
}

TEST(SpaceBudgetTest, TinyBudgetCompressesAndStaysCorrect) {
  Engine engine = BudgetPlanner(1);  // everything over budget immediately
  Xoshiro256 rng(103);
  auto lists = GenerateIntersectingSets({1500, 3000, 6000}, 40, 1 << 20, rng);
  auto prepared = PrepareAll(engine, lists);
  for (const PreparedSet& s : prepared) EXPECT_TRUE(s.compressed());
  EXPECT_GT(engine.SpaceUsedBytes(), 0u);
  // Bitwise-identical results despite the representation change.
  EXPECT_EQ(engine.Query(prepared).Materialize(), GroundTruth(lists));
  EXPECT_EQ(engine.Query(prepared).Count(), GroundTruth(lists).size());
}

TEST(SpaceBudgetTest, HugeBudgetChangesNothing) {
  Engine engine = BudgetPlanner(std::size_t{1} << 40);
  Xoshiro256 rng(105);
  auto lists = GenerateIntersectingSets({2000, 4000}, 30, 1 << 20, rng);
  auto prepared = PrepareAll(engine, lists);
  for (const PreparedSet& s : prepared) EXPECT_FALSE(s.compressed());
  EXPECT_GT(engine.SpaceUsedBytes(), 0u);  // accounted, under budget
  EXPECT_LE(engine.SpaceUsedBytes(), std::size_t{1} << 40);
  EXPECT_EQ(engine.Query(prepared).Materialize(), GroundTruth(lists));
}

TEST(SpaceBudgetTest, MinCompressSizeKeepsSmallSetsFast) {
  // Tiny budget but a min_compress_size floor: small sets stay
  // uncompressed even though the budget is blown.
  Engine engine = BudgetPlanner(1, /*min_compress=*/1024);
  Xoshiro256 rng(107);
  auto lists = GenerateIntersectingSets({100, 5000}, 20, 1 << 20, rng);
  auto prepared = PrepareAll(engine, lists);
  EXPECT_FALSE(prepared[0].compressed());  // 100 < 1024
  EXPECT_TRUE(prepared[1].compressed());   // 5000 >= 1024, over budget
  EXPECT_EQ(engine.Query(prepared).Materialize(), GroundTruth(lists));
}

TEST(SpaceBudgetTest, BatchPicksThePredictedCheapestSplit) {
  Xoshiro256 rng(109);
  auto lists =
      GenerateIntersectingSets({1200, 2400, 4800, 9600}, 60, 1 << 21, rng);
  // Measure the uncompressed footprint first.
  Engine unlimited = DeterministicPlanner();
  std::size_t full_bytes = 0;
  for (const PreparedSet& s : PrepareAll(unlimited, lists)) {
    full_bytes += s.SizeInWords() * sizeof(std::uint64_t);
  }
  // A mid-range budget: roughly half the uncompressed footprint.
  Engine engine = BudgetPlanner(full_bytes / 2);
  std::vector<PreparedSet> prepared =
      engine.PrepareBatch(std::span<const ElemList>(lists));
  ASSERT_EQ(prepared.size(), lists.size());
  std::size_t compressed = 0;
  for (const PreparedSet& s : prepared) compressed += s.compressed() ? 1 : 0;
  // The greedy split compresses something but not everything.
  EXPECT_GT(compressed, 0u);
  EXPECT_LT(compressed, lists.size());
  EXPECT_LE(engine.SpaceUsedBytes(), full_bytes / 2);
  EXPECT_EQ(engine.Query(prepared).Materialize(), GroundTruth(lists));
}

TEST(SpaceBudgetTest, ExplainShowsTheRepresentation) {
  Engine engine = BudgetPlanner(1);
  Xoshiro256 rng(111);
  auto lists = GenerateIntersectingSets({1000, 2000, 4000}, 25, 1 << 20, rng);
  auto prepared = PrepareAll(engine, lists);
  QueryPlan plan = engine.Query(prepared).Explain();
  EXPECT_TRUE(plan.planned);
  EXPECT_EQ(plan.compressed_inputs, 3u);
  ASSERT_EQ(plan.steps.size(), 2u);
  for (const PlanStep& step : plan.steps) {
    EXPECT_EQ(step.algorithm, "RanGroupScan_Lowbits");
  }
  const std::string text = plan.ToString();
  EXPECT_NE(text.find("representation: 3 of 3 inputs compressed"),
            std::string::npos)
      << text;
  // An uncompressed engine's rendering never mentions representation.
  Engine plain_engine = DeterministicPlanner();
  auto plain = PrepareAll(plain_engine, lists);
  EXPECT_EQ(plain_engine.Query(plain).Explain().ToString().find(
                "representation:"),
            std::string::npos);
}

TEST(SpaceBudgetTest, MixedRepresentationQueriesPlanAndExecute) {
  // One engine, one compressed set (prepared while over budget) and one
  // uncompressed set (small enough for the min_compress_size carve-out).
  Engine engine = BudgetPlanner(1, /*min_compress=*/1024);
  Xoshiro256 rng(113);
  auto lists = GenerateIntersectingSets({500, 6000}, 35, 1 << 20, rng);
  auto prepared = PrepareAll(engine, lists);
  ASSERT_FALSE(prepared[0].compressed());
  ASSERT_TRUE(prepared[1].compressed());
  QueryPlan plan = engine.Query(prepared).Explain();
  EXPECT_EQ(plan.compressed_inputs, 1u);
  EXPECT_EQ(engine.Query(prepared).Materialize(), GroundTruth(lists));
}

TEST(SpaceBudgetTest, CalibrationOffWithBudgetIsDeterministic) {
  Xoshiro256 rng(115);
  auto lists = GenerateIntersectingSets({1000, 3000, 9000}, 45, 1 << 21, rng);
  auto explain = [&lists]() {
    Engine engine = BudgetPlanner(1);
    auto prepared = PrepareAll(engine, lists);
    return engine.Query(prepared).Explain().ToString();
  };
  const std::string first = explain();
  EXPECT_EQ(first, explain());  // same spec, same budget, same plan text
}

TEST(SpaceBudgetTest, SingleCompressedSetDecodesThroughQuery) {
  Engine engine = BudgetPlanner(1);
  Xoshiro256 rng(117);
  auto lists = GenerateIntersectingSets({4000}, 0, 1 << 20, rng);
  PreparedSet a = engine.Prepare(lists[0]);
  ASSERT_TRUE(a.compressed());
  EXPECT_EQ(a.size(), lists[0].size());
  EXPECT_EQ(engine.Query({&a}).Materialize(), lists[0]);
  EXPECT_EQ(engine.Query({&a}).Count(), lists[0].size());
}

}  // namespace
}  // namespace fsi
