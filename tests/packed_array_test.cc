#include "util/packed_array.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace fsi {
namespace {

TEST(PackedArrayTest, ZeroInitialized) {
  PackedArray a(100, 7);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(a.Get(i), 0u);
}

TEST(PackedArrayTest, SetGetRoundTripAllWidths) {
  Xoshiro256 rng(41);
  for (int bits = 1; bits <= 57; ++bits) {
    PackedArray a(257, bits);
    std::vector<std::uint64_t> expected(257);
    for (std::size_t i = 0; i < 257; ++i) {
      expected[i] = rng.Next() & a.max_value();
      a.Set(i, expected[i]);
    }
    for (std::size_t i = 0; i < 257; ++i) {
      EXPECT_EQ(a.Get(i), expected[i]) << "bits=" << bits << " i=" << i;
    }
  }
}

TEST(PackedArrayTest, OverwriteDoesNotDisturbNeighbours) {
  PackedArray a(64, 13);
  for (std::size_t i = 0; i < 64; ++i) a.Set(i, i * 31 % a.max_value());
  a.Set(20, a.max_value());
  a.Set(21, 0);
  for (std::size_t i = 0; i < 64; ++i) {
    std::uint64_t expected = (i == 20)   ? a.max_value()
                             : (i == 21) ? 0
                                         : i * 31 % a.max_value();
    EXPECT_EQ(a.Get(i), expected) << i;
  }
}

TEST(PackedArrayTest, MaxValue) {
  EXPECT_EQ(PackedArray(1, 1).max_value(), 1u);
  EXPECT_EQ(PackedArray(1, 8).max_value(), 255u);
  EXPECT_EQ(PackedArray(1, 57).max_value(), (1ULL << 57) - 1);
}

TEST(PackedArrayTest, SizeInWordsIsLinear) {
  PackedArray a(1000, 4);  // 4000 bits ~ 63 words + slack
  EXPECT_LE(a.SizeInWords(), 66u);
  EXPECT_GE(a.SizeInWords(), 63u);
}

TEST(PackedArrayTest, FieldsStraddlingWordBoundary) {
  // With 57-bit fields nearly every field straddles a boundary.
  PackedArray a(100, 57);
  for (std::size_t i = 0; i < 100; ++i) a.Set(i, (i * 0x123456789ULL) & a.max_value());
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Get(i), (i * 0x123456789ULL) & a.max_value());
  }
}

}  // namespace
}  // namespace fsi
